// Package repro_test is the benchmark harness that regenerates every table
// and figure of Du & Mathur, "Testing for Software Vulnerability Using
// Environment Perturbation" (DSN 2000), plus the ablations DESIGN.md calls
// out. Each benchmark performs the full experiment per iteration and
// fails loudly if the regenerated numbers drift from the paper's.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/ftpget"
	"repro/internal/apps/lpr"
	"repro/internal/apps/maildrop"
	"repro/internal/apps/matrix"
	"repro/internal/apps/ntreg"
	"repro/internal/apps/turnin"
	"repro/internal/baseline/ava"
	"repro/internal/baseline/fuzz"
	"repro/internal/baseline/tocttou"
	"repro/internal/core/coord"
	"repro/internal/core/coverage"
	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/core/report"
	"repro/internal/core/sched"
	"repro/internal/core/store"
	"repro/internal/interpose"
	"repro/internal/sim/proc"
	"repro/internal/vulndb"
)

// --- Tables 1-4: the Section 2.4 vulnerability-database classification ---

// BenchmarkTable1HighLevelClassification regenerates Table 1:
// 142 classified flaws = 81 indirect (57%) + 48 direct (34%) + 13 others (9%).
func BenchmarkTable1HighLevelClassification(b *testing.B) {
	db := vulndb.Load()
	var s vulndb.Stats
	for i := 0; i < b.N; i++ {
		s = db.Classify()
	}
	if s.Indirect != 81 || s.Direct != 48 || s.Others != 13 {
		b.Fatalf("Table 1 = %d/%d/%d, paper reports 81/48/13", s.Indirect, s.Direct, s.Others)
	}
	b.ReportMetric(float64(s.Classified), "classified")
	b.Logf("\n%s", vulndb.Table1(s))
}

// BenchmarkTable2IndirectClassification regenerates Table 2:
// user 51, env 17, file 5, network 8, process 0.
func BenchmarkTable2IndirectClassification(b *testing.B) {
	db := vulndb.Load()
	var s vulndb.Stats
	for i := 0; i < b.N; i++ {
		s = db.Classify()
	}
	got := [5]int{
		s.IndirectByOrigin[eai.OriginUserInput],
		s.IndirectByOrigin[eai.OriginEnvVar],
		s.IndirectByOrigin[eai.OriginFileInput],
		s.IndirectByOrigin[eai.OriginNetworkInput],
		s.IndirectByOrigin[eai.OriginProcessInput],
	}
	if got != [5]int{51, 17, 5, 8, 0} {
		b.Fatalf("Table 2 = %v, paper reports [51 17 5 8 0]", got)
	}
	b.Logf("\n%s", vulndb.Table2(s))
}

// BenchmarkTable3DirectClassification regenerates Table 3:
// file system 42, network 5, process 1.
func BenchmarkTable3DirectClassification(b *testing.B) {
	db := vulndb.Load()
	var s vulndb.Stats
	for i := 0; i < b.N; i++ {
		s = db.Classify()
	}
	got := [3]int{
		s.DirectByEntity[eai.EntityFileSystem],
		s.DirectByEntity[eai.EntityNetwork],
		s.DirectByEntity[eai.EntityProcess],
	}
	if got != [3]int{42, 5, 1} {
		b.Fatalf("Table 3 = %v, paper reports [42 5 1]", got)
	}
	b.Logf("\n%s", vulndb.Table3(s))
}

// BenchmarkTable4FileSystemFaults regenerates Table 4: existence 20,
// symlink 6, permission 6, ownership 3, invariance 6, workdir 1.
func BenchmarkTable4FileSystemFaults(b *testing.B) {
	db := vulndb.Load()
	var s vulndb.Stats
	for i := 0; i < b.N; i++ {
		s = db.Classify()
	}
	got := [6]int{
		s.FSByAttr[eai.AttrExistence], s.FSByAttr[eai.AttrSymlink],
		s.FSByAttr[eai.AttrPermission], s.FSByAttr[eai.AttrOwnership],
		s.FSByAttr[eai.AttrContentInvariance], s.FSByAttr[eai.AttrWorkingDirectory],
	}
	if got != [6]int{20, 6, 6, 3, 6, 1} {
		b.Fatalf("Table 4 = %v, paper reports [20 6 6 3 6 1]", got)
	}
	b.Logf("\n%s", vulndb.Table4(s))
}

// --- Tables 5-6: the fault catalogs ---

// BenchmarkTable5IndirectCatalog materialises the full indirect catalog
// and applies every mutator, verifying the published row shape.
func BenchmarkTable5IndirectCatalog(b *testing.B) {
	sample := []byte("/usr/local/bin:/usr/bin")
	var n int
	for i := 0; i < b.N; i++ {
		n = 0
		for _, f := range eai.AllIndirect() {
			_ = f.Mutate(sample)
			n++
		}
	}
	if n != 32 {
		b.Fatalf("catalog has %d faults, want 32", n)
	}
	b.ReportMetric(float64(n), "faults")
	b.Logf("\n%s", report.Table5())
}

// BenchmarkTable6DirectCatalog materialises the direct catalog and applies
// every file-system perturbation against a live world.
func BenchmarkTable6DirectCatalog(b *testing.B) {
	var applied int
	for i := 0; i < b.N; i++ {
		applied = 0
		k, l := lpr.World(lpr.Vulnerable)()
		for _, f := range eai.CatalogDirect(eai.EntityFileSystem) {
			ctx := &eai.Ctx{
				Kern:   k,
				Call:   &interpose.Call{Site: "lpr:create", Op: interpose.OpCreate, Kind: interpose.KindFile, Path: lpr.SpoolFile},
				Cwd:    l.Cwd,
				SetCwd: func(string) {},
				Cfg:    eai.Config{Attacker: proc.NewCred(666, 666)}.WithDefaults(),
			}
			if f.Applies(ctx) {
				if err := f.Apply(ctx); err != nil {
					b.Fatalf("%s: %v", f.ID, err)
				}
				applied++
			}
		}
	}
	if applied == 0 {
		b.Fatal("no direct faults applied")
	}
	b.ReportMetric(float64(len(eai.AllDirect())), "catalog_faults")
	b.Logf("\n%s", report.Table6())
}

// --- Figures ---

// BenchmarkFigure1InteractionModel demonstrates the two propagation paths
// of Figure 1 on the same program: an indirect fault arriving through an
// input value (1a) and a direct fault acting through the environment
// entity (1b).
func BenchmarkFigure1InteractionModel(b *testing.B) {
	var indirect, direct int
	for i := 0; i < b.N; i++ {
		cInd := lpr.Campaign(lpr.Vulnerable)
		cInd.Sites = []string{"lpr:arg-file"}
		resInd, err := inject.RunWith(cInd, inject.Options{OnlyIndirect: true})
		if err != nil {
			b.Fatal(err)
		}
		indirect = len(resInd.Injections)

		resDir, err := inject.RunWith(lpr.CreateSiteCampaign(lpr.Vulnerable), inject.Options{OnlyDirect: true})
		if err != nil {
			b.Fatal(err)
		}
		direct = len(resDir.Injections)
	}
	if indirect == 0 || direct == 0 {
		b.Fatalf("paths not exercised: indirect=%d direct=%d", indirect, direct)
	}
	b.ReportMetric(float64(indirect), "indirect_path")
	b.ReportMetric(float64(direct), "direct_path")
}

// BenchmarkFigure2AdequacyMetric regenerates the four sample points of the
// two-dimensional adequacy metric from real campaigns.
func BenchmarkFigure2AdequacyMetric(b *testing.B) {
	var regions [4]coverage.Region
	for i := 0; i < b.N; i++ {
		// Point 1 (inadequate): one site of the vulnerable turnin.
		p1 := turnin.Campaign(turnin.Vulnerable)
		p1.Sites = []string{"turnin:open-projlist"}
		r1 := mustRun(b, p1)
		// Point 2 (narrow): one site of the fixed turnin.
		p2 := turnin.Campaign(turnin.Fixed)
		p2.Sites = []string{"turnin:open-config"}
		r2 := mustRun(b, p2)
		// Point 3 (insecure): full campaign against the vulnerable lpr.
		r3 := mustRun(b, lpr.CreateSiteCampaign(lpr.Vulnerable))
		// Point 4 (safe): full campaign against the fixed turnin.
		r4 := mustRun(b, turnin.Campaign(turnin.Fixed))

		// Thresholds are per-axis tester policy (the paper draws the split
		// qualitatively); the fixed turnin's extra validation sites dilute
		// its interaction coverage, hence the 0.4 split for point 4.
		regions = [4]coverage.Region{
			coverage.ClassifyAt(r1.Metric(), 0.5, 0.9),
			coverage.ClassifyAt(r2.Metric(), 0.5, 0.9),
			coverage.ClassifyAt(r3.Metric(), 0.2, 0.9),
			coverage.ClassifyAt(r4.Metric(), 0.4, 0.9),
		}
	}
	want := [4]coverage.Region{
		coverage.RegionInadequate, coverage.RegionNarrow,
		coverage.RegionInsecure, coverage.RegionSafe,
	}
	if regions != want {
		b.Fatalf("Figure 2 regions = %v, want %v", regions, want)
	}
}

// --- Case studies ---

// BenchmarkSection34Lpr regenerates the lpr walk-through: 4 applicable
// attributes at the create point, 4 violations.
func BenchmarkSection34Lpr(b *testing.B) {
	var res *inject.Result
	for i := 0; i < b.N; i++ {
		res = mustRun(b, lpr.CreateSiteCampaign(lpr.Vulnerable))
	}
	m := res.Metric()
	if m.FaultsInjected != 4 || m.Violations() != 4 {
		b.Fatalf("lpr create site = %d injected / %d violations, paper reports 4/4",
			m.FaultsInjected, m.Violations())
	}
	b.ReportMetric(float64(m.FaultsInjected), "injected")
	b.ReportMetric(float64(m.Violations()), "violations")
}

// BenchmarkSection41Turnin regenerates the turnin campaign: 8 interaction
// places, 41 perturbations, 9 violations.
func BenchmarkSection41Turnin(b *testing.B) {
	var res *inject.Result
	for i := 0; i < b.N; i++ {
		res = mustRun(b, turnin.Campaign(turnin.Vulnerable))
	}
	m := res.Metric()
	if m.PointsPerturbed != 8 || m.FaultsInjected != 41 || m.Violations() != 9 {
		b.Fatalf("turnin = %d places / %d perturbations / %d violations, paper reports 8/41/9",
			m.PointsPerturbed, m.FaultsInjected, m.Violations())
	}
	b.ReportMetric(float64(m.PointsPerturbed), "places")
	b.ReportMetric(float64(m.FaultsInjected), "perturbations")
	b.ReportMetric(float64(m.Violations()), "violations")
	b.Logf("\n%s", report.Campaign(res))
}

// BenchmarkSection42Registry regenerates the NT registry survey: 29
// unprotected keys, 9 exploited, 20 suspected.
func BenchmarkSection42Registry(b *testing.B) {
	var s *ntreg.Survey
	for i := 0; i < b.N; i++ {
		var err error
		s, err = ntreg.RunSurvey(false)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(s.UnprotectedKeys) != 29 || len(s.ExploitedKeys) != 9 || len(s.SuspectedKeys) != 20 {
		b.Fatalf("registry survey = %d unprotected / %d exploited / %d suspected, paper reports 29/9/20",
			len(s.UnprotectedKeys), len(s.ExploitedKeys), len(s.SuspectedKeys))
	}
	b.ReportMetric(float64(len(s.UnprotectedKeys)), "unprotected")
	b.ReportMetric(float64(len(s.ExploitedKeys)), "exploited")
	b.ReportMetric(float64(len(s.SuspectedKeys)), "suspected")
}

// --- Section 5 comparisons ---

// BenchmarkBaselineFuzzComparison regenerates the Miller crash-rate
// comparison: random input crashes 25-40% of the utility suite.
func BenchmarkBaselineFuzzComparison(b *testing.B) {
	var crashed, total int
	for i := 0; i < b.N; i++ {
		results, c := fuzz.RunSuite(fuzz.UtilitySuite(), fuzz.Options{Trials: 40, Seed: 1})
		crashed, total = c, len(results)
	}
	rate := float64(crashed) / float64(total)
	if rate < 0.25 || rate > 0.40 {
		b.Fatalf("crash rate = %.2f, outside Miller's 25-40%% band", rate)
	}
	b.ReportMetric(rate, "crash_rate")
}

// BenchmarkBaselineAVAComparison regenerates the complementarity claim:
// at the same 41-run budget, EAI finds the semantic violations AVA's
// random internal-state corruption does not.
func BenchmarkBaselineAVAComparison(b *testing.B) {
	var eaiSem, avaSem int
	for i := 0; i < b.N; i++ {
		c := turnin.Campaign(turnin.Vulnerable)
		res := mustRun(b, c)
		eaiSem = 0
		for _, in := range res.Violations() {
			for _, v := range in.Violations {
				if v.Kind == policy.KindConfidentiality || v.Kind == policy.KindIntegrity {
					eaiSem++
				}
			}
		}
		avaRes := ava.Run("turnin", c.World, c.Policy, ava.Options{Trials: 41, Seed: 4})
		avaSem = avaRes.ViolationKinds[policy.KindConfidentiality] +
			avaRes.ViolationKinds[policy.KindIntegrity]
	}
	if avaSem >= eaiSem {
		b.Fatalf("AVA semantic findings (%d) >= EAI (%d); the paper's complementarity claim inverted",
			avaSem, eaiSem)
	}
	b.ReportMetric(float64(eaiSem), "eai_semantic")
	b.ReportMetric(float64(avaSem), "ava_semantic")
}

// BenchmarkBaselineTOCTTOU regenerates the Bishop-Dilger comparison: the
// static pattern flags turnin's check-use windows but is blind to lpr's
// checkless creat, which EAI defeats four ways.
func BenchmarkBaselineTOCTTOU(b *testing.B) {
	var turninFindings, lprSpoolFindings int
	for i := 0; i < b.N; i++ {
		kt, lt := turnin.World(turnin.Vulnerable)()
		pt := kt.NewProc(lt.Cred, lt.Env, lt.Cwd, lt.Args...)
		if _, crash := kt.Run(pt, lt.Prog); crash != nil {
			b.Fatal(crash)
		}
		turninFindings = len(tocttou.AnalyzeDirs(kt.Bus.Trace()))

		kl, ll := lpr.World(lpr.Vulnerable)()
		pl := kl.NewProc(ll.Cred, ll.Env, ll.Cwd, ll.Args...)
		if _, crash := kl.Run(pl, ll.Prog); crash != nil {
			b.Fatal(crash)
		}
		lprSpoolFindings = 0
		for _, f := range tocttou.AnalyzeDirs(kl.Bus.Trace()) {
			if f.Object == lpr.SpoolFile {
				lprSpoolFindings++
			}
		}
	}
	if turninFindings == 0 {
		b.Fatal("TOCTTOU detector found nothing in turnin")
	}
	if lprSpoolFindings != 0 {
		b.Fatal("TOCTTOU detector flagged lpr's checkless creat; blind spot expected")
	}
	b.ReportMetric(float64(turninFindings), "turnin_findings")
	b.ReportMetric(float64(lprSpoolFindings), "lpr_spool_findings")
}

// --- Ablations (DESIGN.md Section 5) ---

// BenchmarkAblationSemanticVsRandom measures violations found per injected
// run: Table 5/6 semantic patterns versus uniformly random corruption at
// the same budget.
func BenchmarkAblationSemanticVsRandom(b *testing.B) {
	var semanticYield, randomYield float64
	for i := 0; i < b.N; i++ {
		c := turnin.Campaign(turnin.Vulnerable)
		res := mustRun(b, c)
		semanticYield = float64(res.Metric().Violations()) / float64(res.Metric().FaultsInjected)

		avaRes := ava.Run("turnin", c.World, c.Policy, ava.Options{Trials: 41, Seed: 10})
		randomYield = float64(avaRes.Violations) / float64(avaRes.Trials)
	}
	if semanticYield <= randomYield {
		b.Fatalf("semantic yield %.3f <= random yield %.3f; Table 5 patterns should dominate",
			semanticYield, randomYield)
	}
	b.ReportMetric(semanticYield, "semantic_yield")
	b.ReportMetric(randomYield, "random_yield")
}

// BenchmarkAblationInjectionTiming shows why Section 3.3 step 6 injects
// direct faults *before* the interaction point: injected after, the lpr
// TOCTTOU family disappears.
func BenchmarkAblationInjectionTiming(b *testing.B) {
	var before, after int
	for i := 0; i < b.N; i++ {
		rb := mustRun(b, lpr.CreateSiteCampaign(lpr.Vulnerable))
		before = rb.Metric().Violations()
		ra, err := inject.RunWith(lpr.CreateSiteCampaign(lpr.Vulnerable),
			inject.Options{DirectAfterPoint: true})
		if err != nil {
			b.Fatal(err)
		}
		after = ra.Metric().Violations()
	}
	if before <= after {
		b.Fatalf("before-point violations (%d) <= after-point (%d)", before, after)
	}
	b.ReportMetric(float64(before), "before_point")
	b.ReportMetric(float64(after), "after_point")
}

// BenchmarkAblationPointDedup measures campaign cost with and without the
// same-object fault suppression (the paper's future-work static
// equivalence analysis, realised dynamically).
func BenchmarkAblationPointDedup(b *testing.B) {
	var withDedup, withoutDedup, vWith, vWithout int
	for i := 0; i < b.N; i++ {
		c := turnin.Campaign(turnin.Vulnerable)
		rd := mustRun(b, c)
		withDedup, vWith = rd.Metric().FaultsInjected, rd.Metric().Violations()
		rn, err := inject.RunWith(c, inject.Options{NoObjectDedup: true})
		if err != nil {
			b.Fatal(err)
		}
		withoutDedup, vWithout = rn.Metric().FaultsInjected, rn.Metric().Violations()
	}
	if withoutDedup <= withDedup {
		b.Fatalf("no-dedup cost (%d) <= dedup cost (%d)", withoutDedup, withDedup)
	}
	if vWithout < vWith {
		b.Fatalf("dedup lost violations: %d -> %d", vWithout, vWith)
	}
	b.ReportMetric(float64(withDedup), "runs_dedup")
	b.ReportMetric(float64(withoutDedup), "runs_nodedup")
}

// BenchmarkAblationFixedVariants verifies the fault-removal assumption of
// Section 3.2: after repairs, every campaign reaches fault coverage 1.0.
func BenchmarkAblationFixedVariants(b *testing.B) {
	campaigns := []inject.Campaign{
		lpr.Campaign(lpr.Fixed),
		turnin.Campaign(turnin.Fixed),
		maildrop.Campaign(maildrop.Fixed),
		ftpget.Campaign(ftpget.Fixed),
	}
	var minFC float64
	for i := 0; i < b.N; i++ {
		minFC = 1
		for _, c := range campaigns {
			res := mustRun(b, c)
			if fc := res.Metric().FaultCoverage(); fc < minFC {
				minFC = fc
			}
		}
	}
	if minFC < 1 {
		b.Fatalf("a fixed variant has fault coverage %.3f < 1.0", minFC)
	}
	b.ReportMetric(minFC, "min_fault_coverage")
}

// --- Suite scheduling (internal/core/sched) ---

// suiteViolations totals the violations across a suite run, the
// invariant both suite benchmarks must agree on.
func suiteViolations(b *testing.B, sr *sched.SuiteResult) int {
	b.Helper()
	if failed := sr.Failed(); len(failed) != 0 {
		b.Fatalf("suite campaigns failed: %v", failed)
	}
	total := 0
	for _, c := range sr.Campaigns {
		total += c.Result.Metric().Violations()
	}
	return total
}

// BenchmarkSuiteSequential is the baseline: the whole catalog on one
// worker, equivalent to looping inject.Run over every campaign.
func BenchmarkSuiteSequential(b *testing.B) {
	jobs := apps.SuiteJobs()
	var violations int
	for i := 0; i < b.N; i++ {
		violations = suiteViolations(b, sched.RunSuite(jobs, sched.SuiteOptions{Workers: 1}))
	}
	b.ReportMetric(float64(violations), "violations")
}

// BenchmarkSuiteParallel runs the same catalog across all CPUs; the
// speedup over BenchmarkSuiteSequential is the scheduler's win.
func BenchmarkSuiteParallel(b *testing.B) {
	jobs := apps.SuiteJobs()
	var violations int
	for i := 0; i < b.N; i++ {
		violations = suiteViolations(b, sched.RunSuite(jobs, sched.SuiteOptions{Workers: runtime.GOMAXPROCS(0)}))
	}
	b.ReportMetric(float64(violations), "violations")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// skewedSuiteJobs is the unbalanced workload for the scheduling
// benchmarks: a few expensive campaigns (turnin plans 41 runs each)
// buried in a field of cheap ones (lpr-create-site plans 4), so a
// campaign-granularity partition leaves whoever draws the turnins
// running long after everyone else is idle.
func skewedSuiteJobs(b *testing.B) []sched.Job {
	heavy, err := apps.Lookup("turnin")
	if err != nil {
		b.Fatal(err)
	}
	light, err := apps.Lookup("lpr-create-site")
	if err != nil {
		b.Fatal(err)
	}
	var jobs []sched.Job
	for i := 0; i < 15; i++ {
		spec := light
		if i%5 == 0 { // jobs 0, 5, 10 are heavy
			spec = heavy
		}
		jobs = append(jobs, sched.Job{Name: spec.Name, Variant: "vulnerable", Build: spec.Vulnerable})
	}
	return jobs
}

// BenchmarkSuiteWorkStealing runs the skewed catalog through the
// run-granularity work-stealing dispatcher on all CPUs: the heavy
// campaigns' runs spread across every worker, so wall-clock tracks
// total work, not the largest campaign.
func BenchmarkSuiteWorkStealing(b *testing.B) {
	jobs := skewedSuiteJobs(b)
	var violations int
	for i := 0; i < b.N; i++ {
		violations = suiteViolations(b, sched.RunSuite(jobs, sched.SuiteOptions{Workers: runtime.GOMAXPROCS(0)}))
	}
	b.ReportMetric(float64(violations), "violations")
}

// BenchmarkSuiteStaticShards is the scheduling baseline the dispatcher
// replaces: the same skewed catalog split into GOMAXPROCS static
// campaign-granularity partitions (the cross-machine `-shard k/n`
// model), each running its jobs on one worker. The gap to
// BenchmarkSuiteWorkStealing is the cost of not rebalancing: the
// shards that draw the heavy campaigns finish last while the rest sit
// idle.
func BenchmarkSuiteStaticShards(b *testing.B) {
	jobs := skewedSuiteJobs(b)
	n := runtime.GOMAXPROCS(0)
	if n > len(jobs) {
		n = len(jobs)
	}
	var violations int
	for i := 0; i < b.N; i++ {
		// Collect per-shard results and judge them on the benchmark
		// goroutine — b.Fatalf must not run on a worker goroutine.
		results := make([]*sched.SuiteResult, n)
		var wg sync.WaitGroup
		for k := 1; k <= n; k++ {
			shardJobs, _ := sched.ShardJobs(jobs, sched.ShardSpec{K: k, N: n})
			wg.Add(1)
			go func(k int, shardJobs []sched.Job) {
				defer wg.Done()
				results[k-1] = sched.RunSuite(shardJobs, sched.SuiteOptions{Workers: 1})
			}(k, shardJobs)
		}
		wg.Wait()
		total := 0
		for _, sr := range results {
			total += suiteViolations(b, sr)
		}
		violations = total
	}
	b.ReportMetric(float64(violations), "violations")
}

// twoMachineSkewedJobs is the adversarial catalog for the two-machine
// scheduling benchmarks: every heavy campaign — turnin swept with
// nodedup, an order of magnitude costlier than the lights — sits at an
// even index, so the static round-robin -shard 1/2 partition hands all
// of them to machine 1 while machine 2 draws only lpr-create-site (4
// runs each). This is the worst case the ROADMAP's "k/n split across
// machines is still static" item describes — and exactly the catalog
// shape (a few expensive cells in a big grid) the matrix option sweeps
// produce.
func twoMachineSkewedJobs(b *testing.B) []sched.Job {
	heavy, err := apps.Lookup("turnin")
	if err != nil {
		b.Fatal(err)
	}
	light, err := apps.Lookup("lpr-create-site")
	if err != nil {
		b.Fatal(err)
	}
	nodedup := &inject.Options{NoObjectDedup: true}
	var jobs []sched.Job
	for i := 0; i < 20; i++ {
		job := sched.Job{Name: light.Name, Variant: "vulnerable", Build: light.Vulnerable}
		if i%2 == 0 { // heavies on every even index — all on shard 1/2
			job = sched.Job{Name: heavy.Name, Variant: "vulnerable+nodedup", Build: heavy.Vulnerable, Engine: nodedup}
		}
		jobs = append(jobs, job)
	}
	return jobs
}

// twoMachineWorkers sizes each simulated machine's dispatcher. With a
// single CPU the two "machines" would just timeslice one core — total
// wall equals total work regardless of scheduling, so neither static
// nor dynamic assignment can win and the comparison is meaningless;
// skip rather than report noise.
func twoMachineWorkers(b *testing.B) int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		b.Skip("two-machine scheduling benchmarks need >= 2 CPUs")
	}
	return n / 2
}

// BenchmarkSuiteTwoMachinesStatic models today's cross-machine story
// on the skewed catalog: two "machines" (goroutines with half the CPUs
// each) own static -shard 1/2 and 2/2 partitions. Wall time is the
// slower shard — the machine that drew every heavy campaign — while
// the other machine sits idle after finishing.
func BenchmarkSuiteTwoMachinesStatic(b *testing.B) {
	jobs := twoMachineSkewedJobs(b)
	perMachine := twoMachineWorkers(b)
	var violations int
	for i := 0; i < b.N; i++ {
		results := make([]*sched.SuiteResult, 2)
		var wg sync.WaitGroup
		for k := 1; k <= 2; k++ {
			shardJobs, _ := sched.ShardJobs(jobs, sched.ShardSpec{K: k, N: 2})
			wg.Add(1)
			go func(k int, shardJobs []sched.Job) {
				defer wg.Done()
				results[k-1] = sched.RunSuite(shardJobs, sched.SuiteOptions{Workers: perMachine})
			}(k, shardJobs)
		}
		wg.Wait()
		violations = suiteViolations(b, results[0]) + suiteViolations(b, results[1])
	}
	b.ReportMetric(float64(violations), "violations")
}

// BenchmarkSuiteTwoMachinesCoord replaces the static split with the
// distributed coordinator: the same two machines claim campaigns from
// one lease-based queue over real HTTP, so whichever machine finishes
// its claims early just claims more — the win over
// BenchmarkSuiteTwoMachinesStatic is the straggler time dynamic
// claiming eliminates.
func BenchmarkSuiteTwoMachinesCoord(b *testing.B) {
	jobs := twoMachineSkewedJobs(b)
	catalog := make([]string, len(jobs))
	for i, j := range jobs {
		catalog[i] = j.Label()
	}
	perMachine := twoMachineWorkers(b)
	var violations int
	for i := 0; i < b.N; i++ {
		co := coord.New(catalog, coord.Options{})
		srv := httptest.NewServer(coord.NewServer(co))
		results := make([]*sched.SuiteResult, 2)
		var wg sync.WaitGroup
		for m := 0; m < 2; m++ {
			cl, err := coord.Dial(srv.URL)
			if err != nil {
				b.Fatal(err)
			}
			if err := cl.Register(fmt.Sprintf("m%d", m), catalog); err != nil {
				b.Fatal(err)
			}
			src, err := coord.NewSource(cl, jobs)
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(m int, src *coord.Source) {
				defer wg.Done()
				defer src.Close()
				results[m] = sched.RunSuiteFrom(src, sched.SuiteOptions{Workers: perMachine})
			}(m, src)
		}
		wg.Wait()
		srv.Close()
		violations = suiteViolations(b, results[0]) + suiteViolations(b, results[1])
	}
	b.ReportMetric(float64(violations), "violations")
}

// BenchmarkSuiteMatrix runs the expanded campaign matrix — option
// sweeps, site cuts, and multi-site compositions, an order of
// magnitude beyond the base catalog — through the work-stealing
// dispatcher at full width, cold and then against a warm result
// store: the catalog size the dispatcher and cache were built for.
// The warm pass must replay every cell (100% hits) or the fingerprint
// independence of the matrix cells has broken.
func BenchmarkSuiteMatrix(b *testing.B) {
	jobs := matrix.SuiteJobs()
	if len(jobs) < 10*len(apps.SuiteJobs()) {
		b.Fatalf("matrix emits %d jobs, want >= 10x the base catalog", len(jobs))
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		var runs int
		for i := 0; i < b.N; i++ {
			sr := sched.RunSuite(jobs, sched.SuiteOptions{Workers: runtime.GOMAXPROCS(0)})
			runs = 0
			for _, c := range sr.Campaigns {
				if c.Err != nil {
					b.Fatalf("%s: %v", c.Job.Label(), c.Err)
				}
				runs += len(c.Result.Injections)
			}
		}
		b.ReportMetric(float64(len(jobs)), "campaigns")
		b.ReportMetric(float64(runs), "runs")
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		seed := sched.RunSuite(jobs, sched.SuiteOptions{Workers: runtime.GOMAXPROCS(0), Cache: st})
		if len(seed.Failed()) != 0 {
			b.Fatalf("seed run failed: %v", seed.Failed())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sr := sched.RunSuite(jobs, sched.SuiteOptions{Workers: runtime.GOMAXPROCS(0), Cache: st})
			if hits := sr.CacheHits(); hits != len(jobs) {
				b.Fatalf("warm pass replayed %d/%d campaigns", hits, len(jobs))
			}
		}
		b.ReportMetric(float64(len(jobs)), "campaigns")
	})
}

// --- World snapshots (copy-on-write fork vs fresh build) ---

// BenchmarkWorldSnapshotFork measures the per-run world cost with the
// snapshot seam on: every iteration forks the app's memoized frozen
// image — the price each injection run now pays for a private world.
func BenchmarkWorldSnapshotFork(b *testing.B) {
	for _, spec := range apps.Catalog() {
		c := spec.Vulnerable()
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			c.World() // prime the package image outside the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.World()
			}
		})
	}
}

// BenchmarkWorldFreshBuild is the same worlds with snapshots disabled —
// the full construction cost every injection run paid before the seam.
// The gap to BenchmarkWorldSnapshotFork is the tentpole win.
func BenchmarkWorldFreshBuild(b *testing.B) {
	inject.SetWorldSnapshots(false)
	defer inject.SetWorldSnapshots(true)
	for _, spec := range apps.Catalog() {
		c := spec.Vulnerable()
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.World()
			}
		})
	}
}

// BenchmarkInterpositionOverhead measures the cost the bus adds per
// syscall, with and without trace recording.
func BenchmarkInterpositionOverhead(b *testing.B) {
	k, l := lpr.World(lpr.Vulnerable)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	b.Run("recording", func(b *testing.B) {
		k.Bus.SetRecording(true)
		for i := 0; i < b.N; i++ {
			_, _ = p.Stat("bench:stat", "/etc/passwd")
		}
	})
	b.Run("silent", func(b *testing.B) {
		k.Bus.SetRecording(false)
		for i := 0; i < b.N; i++ {
			_, _ = p.Stat("bench:stat", "/etc/passwd")
		}
	})
}

// mustRun is the bench-side campaign runner.
func mustRun(b *testing.B, c inject.Campaign) *inject.Result {
	b.Helper()
	res, err := inject.Run(c)
	if err != nil {
		b.Fatal(err)
	}
	return res
}
