package ntreg

import (
	"strings"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
)

// ntPolicy is shared by the module campaigns: the invoker is an
// administrator, the attacker an unprivileged user, and each module's
// legitimate write range is its trusted prefix.
func ntPolicy(trusted ...string) policy.Policy {
	return policy.Policy{
		Invoker:           proc.NewCred(AdminUID, 0),
		Attacker:          proc.NewCred(AttackerUID, AttackerUID),
		TrustedWritePaths: trusted,
	}
}

// FontCleanCampaign perturbs the four font keys the cleanup module
// consumes. The registry value-content fault rewrites each unprotected key
// to name the boot configuration file.
func FontCleanCampaign(prog kernel.Program) inject.Campaign {
	return inject.Campaign{
		Name:   "ntreg-fontclean",
		World:  World(prog),
		Policy: ntPolicy(FontDir),
		Faults: eai.Config{
			Attacker:    proc.NewCred(AttackerUID, AttackerUID),
			WriteTarget: BootConfig,
		},
		Sites: []string{
			"fontclean:regget-cleanup", "fontclean:regget-temp",
			"fontclean:regget-cache", "fontclean:regget-preview",
		},
	}
}

// ScrSaveCampaign perturbs the three launcher keys; the value-content
// fault points each at the attacker's binary.
func ScrSaveCampaign(prog kernel.Program) inject.Campaign {
	return inject.Campaign{
		Name:   "ntreg-scrsave",
		World:  World(prog),
		Policy: ntPolicy(),
		Faults: eai.Config{
			Attacker:    proc.NewCred(AttackerUID, AttackerUID),
			WriteTarget: AttackerBin,
		},
		Sites: []string{
			"scrsave:regget-main", "scrsave:regget-helper", "scrsave:regget-agent",
		},
	}
}

// UpdaterCampaign perturbs the two updater keys toward the boot
// configuration file.
func UpdaterCampaign(prog kernel.Program) inject.Campaign {
	return inject.Campaign{
		Name:   "ntreg-updater",
		World:  World(prog),
		Policy: ntPolicy(SystemDir),
		Faults: eai.Config{
			Attacker:    proc.NewCred(AttackerUID, AttackerUID),
			WriteTarget: BootConfig,
		},
		Sites: []string{"updater:regget-target", "updater:regget-manifest"},
	}
}

// LogondCampaign perturbs the logon module's profile file — the key
// itself is protected, so the perturbable surface is the trustability of
// the directory contents the key names (the paper's second NT finding).
func LogondCampaign(prog kernel.Program) inject.Campaign {
	return inject.Campaign{
		Name:   "ntreg-logond",
		World:  World(prog, "user"),
		Policy: ntPolicy(),
		Faults: eai.Config{
			Attacker: proc.NewCred(AttackerUID, AttackerUID),
			// Content faults substitute an attacker profile whose startup
			// points at the attacker's binary.
			AttackerContent: []byte("startup=" + AttackerBin + "\n"),
			// A read-context symlink on the profile points at the
			// attacker's staged profile.
			ReadTargetOverrides: map[string]string{
				ProfileDir + "/user.prof": "/users/mallory/evil.prof",
			},
		},
		Sites: []string{"logond:open-profile", "logond:read-profile"},
	}
}

// ModuleCampaigns returns the three unprotected-key campaigns in report
// order, built over the given variant selector (Vulnerable or Fixed).
func ModuleCampaigns(fixed bool) []inject.Campaign {
	if fixed {
		return []inject.Campaign{
			FontCleanCampaign(FontCleanFixed),
			ScrSaveCampaign(ScrSaveFixed),
			UpdaterCampaign(UpdaterFixed),
		}
	}
	return []inject.Campaign{
		FontCleanCampaign(FontClean),
		ScrSaveCampaign(ScrSave),
		UpdaterCampaign(Updater),
	}
}

// Survey is the Section 4.2 result: the unprotected-key inventory and
// which keys were exploited.
type Survey struct {
	// UnprotectedKeys is every key writable by Everyone (the static-
	// analysis inventory).
	UnprotectedKeys []string
	// ExploitedKeys are consumed keys whose perturbation produced a
	// security violation.
	ExploitedKeys []string
	// SuspectedKeys are unprotected keys with no analysed consumer.
	SuspectedKeys []string
	// Results holds the per-module campaign results.
	Results []*inject.Result
}

// RunSurvey executes the three module campaigns and assembles the
// Section 4.2 numbers: 29 unprotected keys, 9 exploited, 20 suspected.
func RunSurvey(fixed bool) (*Survey, error) {
	k, _ := World(func(p *kernel.Proc) int { return 0 })()
	s := &Survey{UnprotectedKeys: k.Reg.UnprotectedKeys()}

	exploited := map[string]bool{}
	for _, c := range ModuleCampaigns(fixed) {
		res, err := inject.Run(c)
		if err != nil {
			return nil, err
		}
		s.Results = append(s.Results, res)
		for _, in := range res.Violations() {
			if in.Class != eai.ClassDirect || in.Attr != eai.AttrRegValueContent {
				continue
			}
			// The perturbed key is the object path of the regget site's
			// first clean-trace event.
			for _, ev := range res.CleanTrace {
				if ev.Call.Site == in.Site {
					exploited[ev.Call.Path] = true
					break
				}
			}
		}
	}
	consumed := map[string]bool{}
	for _, key := range append(append(append([]string{}, FontCleanKeys...), ScrSaveKeys...), UpdaterKeys...) {
		consumed[key] = true
	}
	for _, key := range s.UnprotectedKeys {
		switch {
		case exploited[key]:
			s.ExploitedKeys = append(s.ExploitedKeys, key)
		case !consumed[key]:
			s.SuspectedKeys = append(s.SuspectedKeys, key)
		}
	}
	return s, nil
}

// KeyOfSite maps a regget site name back to the registry key it reads
// (for reports).
func KeyOfSite(site string) string {
	all := map[string]string{}
	names := []string{"cleanup", "temp", "cache", "preview"}
	for i, k := range FontCleanKeys {
		all["fontclean:regget-"+names[i]] = k
	}
	snames := []string{"main", "helper", "agent"}
	for i, k := range ScrSaveKeys {
		all["scrsave:regget-"+snames[i]] = k
	}
	all["updater:regget-target"] = UpdaterKeys[0]
	all["updater:regget-manifest"] = UpdaterKeys[1]
	if k, ok := all[site]; ok {
		return k
	}
	if strings.HasPrefix(site, "logond:") {
		return LogonKey
	}
	return ""
}
