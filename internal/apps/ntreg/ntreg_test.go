package ntreg

import (
	"strings"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/sim/kernel"
)

func runClean(t *testing.T, prog kernel.Program, args ...string) (*kernel.Kernel, *kernel.Proc, int) {
	t.Helper()
	k, l := World(prog, args...)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	exit, crash := k.Run(p, l.Prog)
	if crash != nil {
		t.Fatalf("clean run crashed: %v", crash)
	}
	return k, p, exit
}

func TestFontCleanCleanRun(t *testing.T) {
	t.Parallel()
	k, _, exit := runClean(t, FontClean)
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	for _, f := range []string{"old.fon", "tmp1.fon", "cache.fon", "preview.fon"} {
		if k.FS.Exists(FontDir + "/" + f) {
			t.Errorf("%s not cleaned", f)
		}
	}
	if !k.FS.Exists(BootConfig) {
		t.Error("boot config gone on a clean run")
	}
}

func TestScrSaveCleanRun(t *testing.T) {
	t.Parallel()
	_, p, exit := runClean(t, ScrSave)
	if exit != 0 {
		t.Fatalf("exit = %d, stderr = %s", exit, p.Stderr.String())
	}
}

func TestUpdaterCleanRun(t *testing.T) {
	t.Parallel()
	k, _, exit := runClean(t, Updater)
	if exit != 0 {
		t.Fatal("updater failed")
	}
	data, err := k.FS.ReadFile(SystemDir + "/kernel.dll")
	if err != nil || !strings.Contains(string(data), "v2") {
		t.Errorf("kernel.dll = %q, %v", data, err)
	}
}

func TestLogondCleanRun(t *testing.T) {
	t.Parallel()
	_, p, exit := runClean(t, Logond, "user")
	if exit != 0 {
		t.Fatalf("exit = %d, stderr = %s", exit, p.Stderr.String())
	}
	if !strings.Contains(p.Stdout.String(), "logon complete") {
		t.Errorf("stdout = %q", p.Stdout.String())
	}
}

func TestFixedModulesCleanRuns(t *testing.T) {
	t.Parallel()
	for name, prog := range map[string]kernel.Program{
		"fontclean": FontCleanFixed,
		"scrsave":   ScrSaveFixed,
		"updater":   UpdaterFixed,
	} {
		if _, p, exit := runClean(t, prog); exit != 0 {
			t.Errorf("%s fixed clean run exit = %d, stderr = %s", name, exit, p.Stderr.String())
		}
	}
	if _, p, exit := runClean(t, LogondFixed, "user"); exit != 0 {
		t.Errorf("logond fixed exit = %d, stderr = %s", exit, p.Stderr.String())
	}
}

// TestSection42Survey pins the paper's numbers: 29 unprotected keys, 9
// exploited, 20 suspected.
func TestSection42Survey(t *testing.T) {
	t.Parallel()
	s, err := RunSurvey(false)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.UnprotectedKeys); got != 29 {
		t.Errorf("unprotected keys = %d, want 29", got)
	}
	if got := len(s.ExploitedKeys); got != 9 {
		t.Errorf("exploited keys = %d, want 9: %v", got, s.ExploitedKeys)
		for _, res := range s.Results {
			for _, in := range res.Violations() {
				t.Logf("  %s %s -> %v", in.Point, in.FaultID, in.Violations)
			}
		}
	}
	if got := len(s.SuspectedKeys); got != 20 {
		t.Errorf("suspected keys = %d, want 20", got)
	}
}

// TestFontDeleteFinding reproduces the narrated font-key exploit: the key
// is rewritten to name a security-critical file, and the administrator-run
// module deletes it.
func TestFontDeleteFinding(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(FontCleanCampaign(FontClean))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range res.Violations() {
		for _, v := range in.Violations {
			if v.Kind == policy.KindIntegrity && v.Object == BootConfig {
				found = true
			}
		}
	}
	if !found {
		t.Error("no boot-config deletion via rewritten font key")
	}
}

// TestScrSaveExecFinding: the launcher keys hand the attacker privileged
// execution.
func TestScrSaveExecFinding(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(ScrSaveCampaign(ScrSave))
	if err != nil {
		t.Fatal(err)
	}
	execs := 0
	for _, in := range res.Violations() {
		for _, v := range in.Violations {
			if v.Kind == policy.KindUntrustedExec && v.Object == AttackerBin {
				execs++
			}
		}
	}
	if execs != 3 {
		t.Errorf("untrusted-exec violations = %d, want 3 (one per launcher key)", execs)
	}
}

// TestLogondTrustabilityFinding reproduces the logon-module exploit: the
// profile the module trusts is swapped for attacker content and the
// attacker's startup program runs privileged.
func TestLogondTrustabilityFinding(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(LogondCampaign(Logond))
	if err != nil {
		t.Fatal(err)
	}
	byAttr := map[eai.Attr]bool{}
	for _, in := range res.Violations() {
		for _, v := range in.Violations {
			if v.Kind == policy.KindUntrustedExec {
				byAttr[in.Attr] = true
			}
		}
	}
	if !byAttr[eai.AttrContentInvariance] {
		t.Error("profile content perturbation did not reach untrusted exec")
	}
	if !byAttr[eai.AttrSymlink] {
		t.Error("profile symlink perturbation did not reach untrusted exec")
	}
}

// TestProtectedKeyNotPerturbable: the logon key itself is protected, so
// the registry value-content fault must not be planned for it.
func TestProtectedKeyNotPerturbable(t *testing.T) {
	t.Parallel()
	c := LogondCampaign(Logond)
	c.Sites = []string{"logond:regget-profiledir"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Injections {
		if in.Class == eai.ClassDirect {
			t.Errorf("direct fault %s planned for protected key", in.FaultID)
		}
	}
}

// TestFixedSurveyToleratesAll: with the repaired modules the same
// perturbations yield zero exploited keys.
func TestFixedSurveyToleratesAll(t *testing.T) {
	t.Parallel()
	s, err := RunSurvey(true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.ExploitedKeys); got != 0 {
		t.Errorf("fixed modules: exploited keys = %d, want 0: %v", got, s.ExploitedKeys)
	}
	if got := len(s.UnprotectedKeys); got != 29 {
		t.Errorf("unprotected inventory unchanged by fixes: %d", got)
	}
}

func TestKeyOfSite(t *testing.T) {
	t.Parallel()
	if got := KeyOfSite("fontclean:regget-cleanup"); got != FontCleanKeys[0] {
		t.Errorf("KeyOfSite = %q", got)
	}
	if got := KeyOfSite("updater:regget-manifest"); got != UpdaterKeys[1] {
		t.Errorf("KeyOfSite = %q", got)
	}
	if got := KeyOfSite("logond:open-profile"); got != LogonKey {
		t.Errorf("KeyOfSite = %q", got)
	}
	if got := KeyOfSite("unknown:site"); got != "" {
		t.Errorf("KeyOfSite = %q", got)
	}
}

// TestFixedLogondSurvives: the repaired logon module tolerates the same
// campaign.
func TestFixedLogondSurvives(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(LogondCampaign(LogondFixed))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Injections {
		if !in.Tolerated() {
			t.Errorf("fixed logond violated under %s: %v", in.FaultID, in.Violations)
		}
	}
}
