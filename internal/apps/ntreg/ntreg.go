// Package ntreg reproduces the Windows NT registry case study of
// Section 4.2. The paper found 29 registry keys in NT 4.0 (SP3) writable
// by every user, exploited 9 of them through the modules that consume
// them, and speculated the remaining 20 share the vulnerabilities. Per the
// Microsoft agreement the paper names no keys, only the two module
// behaviours: a module that deletes the file a font key names, and a logon
// module that loads profiles from a directory a key names without checking
// the directory's trustability.
//
// This package builds that world structurally: three privileged consumer
// modules (font cleanup, screen-saver launcher, updater) reading 9
// unprotected keys, 20 unconsumed unprotected keys, and the logon module
// reading a *protected* key whose named directory is perturbable.
package ntreg

import (
	"strings"

	"repro/internal/core/inject"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
	"repro/internal/sim/registry"
)

// SourceVersion identifies this package's world builder and program
// variants for source-level result caching: it becomes part of every
// campaign's inject.Campaign.Source identity (see apps.SuiteJobs).
// Bump it whenever the world construction or a program variant changes
// behaviour, or stale cached results will replay for the old code.
const SourceVersion = "1"

// Principals. The consumer modules run as Administrator (euid 0); the
// attacker is an ordinary authenticated user.
const (
	AdminUID    = 0
	AttackerUID = 666
	UserUID     = 100
)

// Filesystem landmarks (UNIX-style paths standing in for the NT ones).
const (
	BootConfig  = "/etc/boot.cfg"           // the "security critical file"
	FontDir     = "/windows/fonts"          // legitimate font storage
	SystemDir   = "/windows/system32"       // trusted binaries
	ProfileDir  = "/profiles"               // per-user logon profiles
	AttackerBin = "/users/mallory/evil.exe" // attacker-controlled program
)

// The nine consumed unprotected keys (4 + 3 + 2).
var (
	FontCleanKeys = []string{
		`HKLM\Software\Fonts\Cleanup`,
		`HKLM\Software\Fonts\Temp`,
		`HKLM\Software\Fonts\Cache`,
		`HKLM\Software\Fonts\Preview`,
	}
	ScrSaveKeys = []string{
		`HKLM\Software\ScrSave\Main`,
		`HKLM\Software\ScrSave\Helper`,
		`HKLM\Software\ScrSave\Agent`,
	}
	UpdaterKeys = []string{
		`HKLM\Software\Updater\Target`,
		`HKLM\Software\Updater\Manifest`,
	}
	// LogonKey is protected: the logon vulnerability is in trusting the
	// *directory* the key names, not in the key's ACL.
	LogonKey = `HKLM\Software\Logon`
)

// UnconsumedKeyCount is the number of additional unprotected keys whose
// consumers the paper could not analyse ("we speculate that the same
// vulnerabilities exist for those 20 keys as well").
const UnconsumedKeyCount = 20

// World builds the NT machine: registry hives, the protected system
// files, the font store, user profiles, and the attacker's staging area.
// The machine image is identical for every module and argument list, so
// one memoized snapshot serves all of them; the variant enters through the
// launch description only.
func World(prog kernel.Program, args ...string) inject.Factory {
	return image.FactoryWith(func(l inject.Launch) inject.Launch {
		l.Prog = prog
		l.Args = append([]string{"module"}, args...)
		return l
	})
}

// image memoizes the variant-independent NT world; runs fork it
// copy-on-write (registry hives are deep-cloned per fork).
var image = inject.NewWorldImage(func() (*kernel.Kernel, inject.Launch) {
	{
		k := kernel.New()
		k.Users.Add(proc.User{Name: "admin", UID: AdminUID, GID: 0})
		k.Users.Add(proc.User{Name: "user", UID: UserUID, GID: UserUID})
		k.Users.Add(proc.User{Name: "mallory", UID: AttackerUID, GID: AttackerUID})

		must(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
		must(k.FS.WriteFile(BootConfig, []byte("boot-loader-configuration v4.0\n"), 0o644, 0, 0))
		must(k.FS.WriteFile("/etc/passwd", []byte("root:x:0:0\n"), 0o644, 0, 0))
		must(k.FS.WriteFile("/etc/shadow", []byte("root:$1$NTSECRET$:1:\n"), 0o600, 0, 0))
		must(k.FS.MkdirAll("/", FontDir, 0o755, 0, 0))
		for _, f := range []string{"old.fon", "tmp1.fon", "cache.fon", "preview.fon"} {
			must(k.FS.WriteFile(FontDir+"/"+f, []byte("fontdata "+f+"\n"), 0o644, 0, 0))
		}
		must(k.FS.MkdirAll("/", SystemDir, 0o755, 0, 0))
		for _, b := range []string{"scrsave.exe", "scrhelper.exe", "scragent.exe", "userinit.exe"} {
			must(k.FS.WriteFile(SystemDir+"/"+b, []byte("MZ"), 0o755, 0, 0))
		}
		must(k.FS.WriteFile(SystemDir+"/kernel.dll", []byte("MZ kernel v1\n"), 0o644, 0, 0))
		must(k.FS.WriteFile(SystemDir+"/manifest.txt", []byte("installed: kernel v1\n"), 0o644, 0, 0))
		must(k.FS.MkdirAll("/", "/windows/updates", 0o755, 0, 0))
		must(k.FS.WriteFile("/windows/updates/kernel-v2.dll", []byte("MZ kernel v2\n"), 0o644, 0, 0))
		must(k.FS.MkdirAll("/", ProfileDir, 0o755, 0, 0))
		must(k.FS.WriteFile(ProfileDir+"/user.prof",
			[]byte("wallpaper=/windows/wall.bmp\nstartup="+SystemDir+"/userinit.exe\n"), 0o644, 0, 0))
		must(k.FS.MkdirAll("/", "/users/mallory", 0o755, AttackerUID, AttackerUID))
		must(k.FS.WriteFile(AttackerBin, []byte("MZ evil"), 0o777, AttackerUID, AttackerUID))
		must(k.FS.WriteFile("/users/mallory/evil.prof",
			[]byte("startup="+AttackerBin+"\n"), 0o644, AttackerUID, AttackerUID))
		must(k.FS.MkdirAll("/", "/tmp", 0o777, 0, 0))

		reg := registry.New()
		k.Reg = reg
		addKey := func(path, value string, acl registry.ACL) {
			if _, err := reg.CreateKey(path, acl); err != nil {
				panic(err)
			}
			if err := reg.SetString(path, "Path", value, registry.System); err != nil {
				panic(err)
			}
		}
		addKey(FontCleanKeys[0], FontDir+"/old.fon", registry.UnprotectedACL())
		addKey(FontCleanKeys[1], FontDir+"/tmp1.fon", registry.UnprotectedACL())
		addKey(FontCleanKeys[2], FontDir+"/cache.fon", registry.UnprotectedACL())
		addKey(FontCleanKeys[3], FontDir+"/preview.fon", registry.UnprotectedACL())
		addKey(ScrSaveKeys[0], SystemDir+"/scrsave.exe", registry.UnprotectedACL())
		addKey(ScrSaveKeys[1], SystemDir+"/scrhelper.exe", registry.UnprotectedACL())
		addKey(ScrSaveKeys[2], SystemDir+"/scragent.exe", registry.UnprotectedACL())
		addKey(UpdaterKeys[0], SystemDir+"/kernel.dll", registry.UnprotectedACL())
		addKey(UpdaterKeys[1], SystemDir+"/manifest.txt", registry.UnprotectedACL())
		// The protected logon key.
		addKey(LogonKey, ProfileDir, registry.DefaultACL())
		// The 20 unconsumed unprotected keys.
		for i := 0; i < UnconsumedKeyCount; i++ {
			addKey(vendorKey(i), "/windows/vendor", registry.UnprotectedACL())
		}

		return k, inject.Launch{
			Cred: proc.NewCred(AdminUID, 0), // administrators run the modules
			Env:  proc.NewEnv("PATH", SystemDir),
			Cwd:  "/",
		}
	}
})

func vendorKey(i int) string {
	return `HKLM\Software\Vendor` + string(rune('A'+i)) + `\Settings`
}

// maxPath mirrors the NT MAX_PATH validation the modules perform on
// registry values (so overlong-value perturbations are tolerated — the
// keys' danger is semantic, not a buffer issue).
const maxPath = 260

func regPath(p *kernel.Proc, site, key string) (string, bool) {
	v, err := p.RegGetString(site, key, "Path")
	if err != nil {
		p.Eprintf("module: cannot read %s: %v\n", key, err)
		return "", false
	}
	if len(v) == 0 || len(v) >= maxPath || !strings.HasPrefix(v, "/") {
		p.Eprintf("module: bad path in %s\n", key)
		return "", false
	}
	for i := 0; i < len(v); i++ {
		if v[i] < 0x20 || v[i] > 0x7e {
			p.Eprintf("module: malformed path in %s\n", key)
			return "", false
		}
	}
	return v, true
}

// FontClean is the Section 4.2 font module: for each cleanup key it
// deletes the file the key names — with no check that the file is a font.
// "when administrators run this module, they will actually delete the file
// specified by this registry key regardless of whether this file is a font
// file or a security critical file."
func FontClean(p *kernel.Proc) int {
	sites := []string{"cleanup", "temp", "cache", "preview"}
	for i, key := range FontCleanKeys {
		path, ok := regPath(p, "fontclean:regget-"+sites[i], key)
		if !ok {
			continue
		}
		if err := p.Unlink("fontclean:unlink-"+sites[i], path); err != nil {
			p.Eprintf("fontclean: %s: %v\n", path, err)
			continue
		}
		p.Printf("removed %s\n", path)
	}
	return 0
}

// FontCleanFixed refuses to delete anything outside the font store.
func FontCleanFixed(p *kernel.Proc) int {
	sites := []string{"cleanup", "temp", "cache", "preview"}
	for i, key := range FontCleanKeys {
		path, ok := regPath(p, "fontclean:regget-"+sites[i], key)
		if !ok {
			continue
		}
		if !strings.HasPrefix(path, FontDir+"/") || strings.Contains(path, "..") {
			p.Eprintf("fontclean: refusing path outside font store: %s\n", path)
			continue
		}
		if st, err := p.Lstat("fontclean:lstat-"+sites[i], path); err != nil || st.Symlink {
			p.Eprintf("fontclean: refusing symlink %s\n", path)
			continue
		}
		if err := p.Unlink("fontclean:unlink-"+sites[i], path); err != nil {
			continue
		}
		p.Printf("removed %s\n", path)
	}
	return 0
}

// ScrSave launches the screen-saver binaries the keys name, as the
// privileged desktop session.
func ScrSave(p *kernel.Proc) int {
	sites := []string{"main", "helper", "agent"}
	for i, key := range ScrSaveKeys {
		path, ok := regPath(p, "scrsave:regget-"+sites[i], key)
		if !ok {
			continue
		}
		if _, err := p.Exec("scrsave:exec-"+sites[i], path); err != nil {
			p.Eprintf("scrsave: %s: %v\n", path, err)
		}
	}
	return 0
}

// ScrSaveFixed verifies the binary is rooted in the system directory and
// not writable by unprivileged users before launching it.
func ScrSaveFixed(p *kernel.Proc) int {
	sites := []string{"main", "helper", "agent"}
	for i, key := range ScrSaveKeys {
		path, ok := regPath(p, "scrsave:regget-"+sites[i], key)
		if !ok {
			continue
		}
		if !strings.HasPrefix(path, SystemDir+"/") {
			p.Eprintf("scrsave: untrusted binary %s\n", path)
			continue
		}
		// Ownership check atomic with the exec (no stat-exec race).
		if _, err := p.ExecTrusted("scrsave:exec-"+sites[i], path, 0); err != nil {
			p.Eprintf("scrsave: %s: %v\n", path, err)
		}
	}
	return 0
}

// Updater installs the staged update over the file one key names and
// rewrites the manifest file the other names.
func Updater(p *kernel.Proc) int {
	update, err := p.ReadFile("updater:src", "/windows/updates/kernel-v2.dll")
	if err != nil {
		p.Eprintf("updater: no staged update: %v\n", err)
		return 1
	}
	target, ok := regPath(p, "updater:regget-target", UpdaterKeys[0])
	if ok {
		if f, err := p.Create("updater:write-target", target, 0o644); err == nil {
			if _, err := p.Write("updater:write-target-data", f, update); err == nil {
				p.Printf("installed update to %s\n", target)
			}
			p.Close(f)
		} else {
			p.Eprintf("updater: %s: %v\n", target, err)
		}
	}
	manifest, ok := regPath(p, "updater:regget-manifest", UpdaterKeys[1])
	if ok {
		if f, err := p.Create("updater:write-manifest", manifest, 0o644); err == nil {
			_, _ = p.Write("updater:write-manifest-data", f, []byte("installed: kernel v2\n"))
			p.Close(f)
		}
	}
	return 0
}

// UpdaterFixed writes only inside the system directory.
func UpdaterFixed(p *kernel.Proc) int {
	update, err := p.ReadFile("updater:src", "/windows/updates/kernel-v2.dll")
	if err != nil {
		return 1
	}
	install := func(getSite, key, writeSite string, data []byte) {
		path, ok := regPath(p, getSite, key)
		if !ok {
			return
		}
		if !strings.HasPrefix(path, SystemDir+"/") || strings.Contains(path, "..") {
			p.Eprintf("updater: refusing path outside system dir: %s\n", path)
			return
		}
		if st, err := p.Lstat("updater:lstat-"+key, path); err == nil && st.Symlink {
			p.Eprintf("updater: refusing symlink %s\n", path)
			return
		}
		if f, err := p.Create(writeSite, path, 0o644); err == nil {
			_, _ = p.Write(writeSite+"-data", f, data)
			p.Close(f)
		}
	}
	install("updater:regget-target", UpdaterKeys[0], "updater:write-target", update)
	install("updater:regget-manifest", UpdaterKeys[1], "updater:write-manifest", []byte("installed: kernel v2\n"))
	return 0
}

// Logond is the logon module: it finds the user's profile in the
// directory named by the (protected) logon key and executes the profile's
// startup program — without checking the trustability of the directory or
// file. "whenever a user logons, the logon module will go to the untrusted
// directory, and grab a specified profile for you."
func Logond(p *kernel.Proc) int {
	user := p.Arg("logond:arg-user", 1)
	if user == "" {
		return 2
	}
	dir, err := p.RegGetString("logond:regget-profiledir", LogonKey, "Path")
	if err != nil {
		p.Eprintf("logond: no profile directory configured\n")
		return 1
	}
	pf, err := p.Open("logond:open-profile", dir+"/"+user+".prof", kernel.ORead, 0)
	if err != nil {
		p.Eprintf("logond: no profile for %s\n", user)
		return 1
	}
	data, err := p.ReadAll("logond:read-profile", pf)
	p.Close(pf)
	if err != nil {
		return 1
	}
	for _, line := range strings.Split(string(data), "\n") {
		if startup, found := strings.CutPrefix(line, "startup="); found {
			if _, err := p.Exec("logond:exec-startup", startup, startup); err != nil {
				p.Eprintf("logond: startup failed: %v\n", err)
			}
		}
	}
	p.Printf("logon complete for %s\n", user)
	return 0
}

// LogondFixed validates the profile chain: the directory and profile must
// be owned by the system and not writable by others, and the startup
// program must live in the system directory.
func LogondFixed(p *kernel.Proc) int {
	user := p.Arg("logond:arg-user", 1)
	if user == "" {
		return 2
	}
	dir, err := p.RegGetString("logond:regget-profiledir", LogonKey, "Path")
	if err != nil {
		return 1
	}
	if st, err := p.Lstat("logond:lstat-dir", dir); err != nil || st.Symlink || st.UID != 0 || st.Mode&0o022 != 0 {
		p.Eprintf("logond: profile directory untrusted\n")
		return 1
	}
	profPath := dir + "/" + user + ".prof"
	if st, err := p.Lstat("logond:lstat-profile", profPath); err != nil || st.Symlink || st.UID != 0 || st.Mode&0o022 != 0 {
		p.Eprintf("logond: profile untrusted\n")
		return 1
	}
	pf, err := p.Open("logond:open-profile", profPath, kernel.ORead, 0)
	if err != nil {
		return 1
	}
	data, err := p.ReadAll("logond:read-profile", pf)
	p.Close(pf)
	if err != nil {
		return 1
	}
	for _, line := range strings.Split(string(data), "\n") {
		if startup, found := strings.CutPrefix(line, "startup="); found {
			if !strings.HasPrefix(startup, SystemDir+"/") {
				p.Eprintf("logond: refusing startup outside system dir: %s\n", startup)
				continue
			}
			// Ownership check atomic with the exec (no stat-exec race).
			if _, err := p.ExecTrusted("logond:exec-startup", startup, 0, startup); err != nil {
				p.Eprintf("logond: untrusted startup %s: %v\n", startup, err)
			}
		}
	}
	p.Printf("logon complete for %s\n", user)
	return 0
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
