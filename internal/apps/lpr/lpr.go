// Package lpr ports the BSD lpr case study of Section 3.4: a set-UID-root
// print spooler that creats a control file in the spool directory without
// O_EXCL, so a pre-planted file or symbolic link redirects its privileged
// write.
package lpr

import (
	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
)

// SourceVersion identifies this package's world builder and program
// variants for source-level result caching: it becomes part of every
// campaign's inject.Campaign.Source identity (see apps.SuiteJobs).
// Bump it whenever the world construction or a program variant changes
// behaviour, or stale cached results will replay for the old code.
const SourceVersion = "1"

// Spool locations, fixed as in the BSD original.
const (
	SpoolDir  = "/var/spool/lpd"
	SpoolFile = SpoolDir + "/cfa001"
)

// Users of the lpr world.
const (
	InvokerUID  = 100 // alice, the printing user
	AttackerUID = 666 // mallory
)

// Vulnerable is the paper's lpr: creat() with no O_EXCL and no check that
// the spool file is fresh.
//
//	f = create(n, 0660);
//	if (f<0) { printf("%s: cannot create %s", name, n); cleanup(); }
//	...
//	if (write(f, buf, i)!=i) { printf("%s: %s: temp file write error\n", ...); }
func Vulnerable(p *kernel.Proc) int {
	name := p.Arg("lpr:arg-file", 1)
	if name == "" {
		p.Eprintf("usage: lpr file\n")
		return 2
	}
	src, err := p.Open("lpr:open-input", name, kernel.ORead, 0)
	if err != nil {
		p.Eprintf("lpr: cannot open %s: %v\n", name, err)
		return 1
	}
	buf, err := p.ReadAll("lpr:read-input", src)
	p.Close(src)
	if err != nil {
		p.Eprintf("lpr: read error: %v\n", err)
		return 1
	}

	f, err := p.Create("lpr:create", SpoolFile, 0o660)
	if err != nil {
		p.Eprintf("lpr: cannot create %s\n", SpoolFile)
		return 1
	}
	defer p.Close(f)
	if _, err := p.Write("lpr:write", f, buf); err != nil {
		p.Eprintf("lpr: %s: temp file write error\n", SpoolFile)
		return 1
	}
	p.Printf("job queued: %s\n", name)
	return 0
}

// Fixed is the repaired lpr: it refuses a pre-existing spool file
// (O_EXCL), refuses to follow a planted symlink, and verifies the fresh
// file's ownership before writing.
func Fixed(p *kernel.Proc) int {
	name := p.Arg("lpr:arg-file", 1)
	if name == "" {
		p.Eprintf("usage: lpr file\n")
		return 2
	}
	src, err := p.Open("lpr:open-input", name, kernel.ORead, 0)
	if err != nil {
		p.Eprintf("lpr: cannot open %s: %v\n", name, err)
		return 1
	}
	buf, err := p.ReadAll("lpr:read-input", src)
	p.Close(src)
	if err != nil {
		p.Eprintf("lpr: read error: %v\n", err)
		return 1
	}

	// A symlink at the spool path is an attack even before open: creat
	// would follow it.
	if st, err := p.Lstat("lpr:lstat-spool", SpoolFile); err == nil && st.Symlink {
		p.Eprintf("lpr: spool file is a symlink, refusing\n")
		return 1
	}
	f, err := p.Open("lpr:create", SpoolFile, kernel.OWrite|kernel.OCreate|kernel.OExcl, 0o660)
	if err != nil {
		p.Eprintf("lpr: spool file unsafe: %v\n", err)
		return 1
	}
	defer p.Close(f)
	if _, err := p.Write("lpr:write", f, buf); err != nil {
		p.Eprintf("lpr: %s: temp file write error\n", SpoolFile)
		return 1
	}
	p.Printf("job queued: %s\n", name)
	return 0
}

// image memoizes the lpr world: its content is identical for every program
// variant, so one frozen snapshot serves the whole catalog and each run
// forks it copy-on-write.
var image = inject.NewWorldImage(func() (*kernel.Kernel, inject.Launch) {
	k := kernel.New()
	k.Users.Add(proc.User{Name: "alice", UID: InvokerUID, GID: InvokerUID})
	k.Users.Add(proc.User{Name: "mallory", UID: AttackerUID, GID: AttackerUID})
	must(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
	must(k.FS.WriteFile("/etc/passwd", []byte("root:x:0:0:root:/:/bin/sh\nalice:x:100:100::/home/alice:/bin/sh\n"), 0o644, 0, 0))
	must(k.FS.WriteFile("/etc/shadow", []byte("root:$1$SECRETHASH$abcdef:10000:\n"), 0o600, 0, 0))
	must(k.FS.MkdirAll("/", SpoolDir, 0o777, 0, 0))
	must(k.FS.MkdirAll("/", "/home/alice", 0o755, InvokerUID, InvokerUID))
	must(k.FS.WriteFile("/home/alice/doc.txt", []byte("the document to print\n"), 0o644, InvokerUID, InvokerUID))
	must(k.FS.MkdirAll("/", "/tmp", 0o777, 0, 0))
	return k, inject.Launch{
		Cred: proc.Cred{UID: InvokerUID, GID: InvokerUID, EUID: 0, EGID: 0}, // set-UID root
		Env:  proc.NewEnv("PATH", "/usr/bin:/bin", "HOME", "/home/alice"),
		Cwd:  "/home/alice",
		Args: []string{"lpr", "doc.txt"},
	}
})

// World builds the lpr environment: a world-writable spool directory (the
// precondition for the attack — any user may queue jobs), the invoker's
// document, and the protected system files the attack aims at.
func World(prog kernel.Program) inject.Factory {
	return image.FactoryWith(func(l inject.Launch) inject.Launch {
		l.Prog = prog
		return l
	})
}

// Campaign returns the full lpr fault-injection campaign.
func Campaign(prog kernel.Program) inject.Campaign {
	return inject.Campaign{
		Name:  "lpr",
		World: World(prog),
		Policy: policy.Policy{
			Invoker:  proc.NewCred(InvokerUID, InvokerUID),
			Attacker: proc.NewCred(AttackerUID, AttackerUID),
		},
		Faults: eai.Config{Attacker: proc.NewCred(AttackerUID, AttackerUID)},
		Semantics: map[string]eai.Semantic{
			"lpr:arg-file":   eai.SemFileName,
			"lpr:read-input": eai.SemRaw,
		},
	}
}

// CreateSiteCampaign returns the Section 3.4 walk-through: perturbation of
// the create interaction point only.
func CreateSiteCampaign(prog kernel.Program) inject.Campaign {
	c := Campaign(prog)
	c.Sites = []string{"lpr:create"}
	return c
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
