package lpr

import (
	"strings"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
)

func TestCleanRun(t *testing.T) {
	t.Parallel()
	k, l := World(Vulnerable)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	exit, crash := k.Run(p, l.Prog)
	if crash != nil || exit != 0 {
		t.Fatalf("clean run: exit %d, crash %v, stderr %s", exit, crash, p.Stderr.String())
	}
	data, err := k.FS.ReadFile(SpoolFile)
	if err != nil || !strings.Contains(string(data), "document to print") {
		t.Errorf("spool = %q, %v", data, err)
	}
}

// TestSection34Walkthrough reproduces the paper's lpr example: at the
// create interaction point, attributes 1-4 (existence, ownership,
// permission, symbolic link) are applicable and all four defeat the
// vulnerable lpr; content/name invariance and working directory are not
// applicable for a first-time absolute-path file.
func TestSection34Walkthrough(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(CreateSiteCampaign(Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Injections) != 4 {
		t.Fatalf("injections = %d, want 4", len(res.Injections))
	}
	wantAttrs := map[eai.Attr]bool{
		eai.AttrExistence: true, eai.AttrOwnership: true,
		eai.AttrPermission: true, eai.AttrSymlink: true,
	}
	for _, in := range res.Injections {
		if !wantAttrs[in.Attr] {
			t.Errorf("unexpected attribute %v", in.Attr)
		}
		if in.Tolerated() {
			t.Errorf("attribute %v tolerated; the paper detects violations for all four", in.Attr)
		}
	}
}

// TestPasswordFileAttack: "when the file is linked to the password file,
// the password file is modified by lpr".
func TestPasswordFileAttack(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(CreateSiteCampaign(Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range res.Injections {
		if in.Attr != eai.AttrSymlink {
			continue
		}
		for _, v := range in.Violations {
			if v.Kind == policy.KindIntegrity && v.Object == "/etc/passwd" {
				found = true
			}
		}
	}
	if !found {
		t.Error("symlink perturbation did not modify /etc/passwd")
	}
}

func TestFixedLprSurvives(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(CreateSiteCampaign(Fixed))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Injections {
		if !in.Tolerated() {
			t.Errorf("fixed lpr violated under %v: %v", in.Attr, in.Violations)
		}
	}
	if res.Metric().FaultCoverage() != 1 {
		t.Errorf("fixed fault coverage = %v", res.Metric().FaultCoverage())
	}
}

func TestFullCampaign(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(Campaign(Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	// Sites: arg-file (5 file-name faults), open-input (7 direct on the
	// relative-path document, working-directory included), read-input (2
	// raw indirect; direct deduped), create (4 direct), write (fully
	// deduped against create, so never perturbed).
	if got := len(res.Injections); got != 18 {
		t.Errorf("injections = %d, want 18", got)
		for _, in := range res.Injections {
			t.Logf("  %s %s", in.Point, in.FaultID)
		}
	}
	// The create-site faults still violate in the full campaign.
	if got := res.Metric().Violations(); got < 4 {
		t.Errorf("violations = %d, want >= 4", got)
	}
	// Adequacy: 4 of 5 sites perturbed (the write site's object faults all
	// dedup against the create site).
	m := res.Metric()
	if m.InteractionCoverage() != 0.8 {
		t.Errorf("interaction coverage = %v, want 0.8 (sites: %v of %v)",
			m.InteractionCoverage(), res.PerturbedSites, res.TotalSites)
	}
}

func TestVulnerableVsFixedCoverageGap(t *testing.T) {
	t.Parallel()
	vuln, err := inject.Run(Campaign(Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := inject.Run(Campaign(Fixed))
	if err != nil {
		t.Fatal(err)
	}
	if vuln.Metric().FaultCoverage() >= fixed.Metric().FaultCoverage() {
		t.Errorf("vulnerable FC %v should be below fixed FC %v",
			vuln.Metric().FaultCoverage(), fixed.Metric().FaultCoverage())
	}
}
