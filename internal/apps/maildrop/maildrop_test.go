package maildrop

import (
	"strings"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
)

func TestCleanRun(t *testing.T) {
	t.Parallel()
	k, l := World(Vulnerable)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	exit, crash := k.Run(p, l.Prog)
	if crash != nil || exit != 0 {
		t.Fatalf("clean run: exit %d, crash %v, stderr %s", exit, crash, p.Stderr.String())
	}
	box, err := k.FS.ReadFile(MailDir + "/alice")
	if err != nil || !strings.Contains(string(box), "hello alice") {
		t.Errorf("mailbox = %q, %v", box, err)
	}
}

func TestCleanRunFixed(t *testing.T) {
	t.Parallel()
	k, l := World(Fixed)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	exit, crash := k.Run(p, l.Prog)
	if crash != nil || exit != 0 {
		t.Fatalf("fixed clean run: exit %d, crash %v, stderr %s", exit, crash, p.Stderr.String())
	}
}

// TestPATHHijack reproduces the classic environment-variable attack of
// Table 5: prepending an untrusted directory to PATH makes the privileged
// delivery agent exec the attacker's sendmail.
func TestPATHHijack(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"maildrop:exec-sendmail:PATH!implicit"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// SemPathList: 5 perturbations on the implicit PATH read.
	if len(res.Injections) != 5 {
		t.Fatalf("injections = %d, want 5", len(res.Injections))
	}
	hijacked := false
	for _, in := range res.Injections {
		if !strings.HasSuffix(in.FaultID, "insert-untrusted-path") {
			continue
		}
		for _, v := range in.Violations {
			if v.Kind == policy.KindUntrustedExec && v.Object == HijackDir+"/sendmail" {
				hijacked = true
			}
		}
	}
	if !hijacked {
		t.Error("insert-untrusted-path did not hijack the exec")
		for _, in := range res.Injections {
			t.Logf("  %s -> %v", in.FaultID, in.Violations)
		}
	}
}

// TestExecObjectPerturbation: ownership perturbation of the relay binary
// is accepted by the vulnerable agent and refused by the fixed one.
func TestExecObjectPerturbation(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"maildrop:exec-sendmail"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	var sawOwnershipViolation bool
	for _, in := range res.Injections {
		if in.Attr == eai.AttrOwnership && !in.Tolerated() {
			sawOwnershipViolation = true
		}
	}
	if !sawOwnershipViolation {
		t.Error("vulnerable maildrop tolerated an attacker-owned relay binary")
	}

	fixedRes, err := inject.Run(func() inject.Campaign {
		fc := Campaign(Fixed)
		fc.Sites = []string{"maildrop:exec-sendmail"}
		return fc
	}())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range fixedRes.Injections {
		if !in.Tolerated() {
			t.Errorf("fixed maildrop violated under %s: %v", in.FaultID, in.Violations)
		}
	}
}

func TestFullCampaignVulnerableVsFixed(t *testing.T) {
	t.Parallel()
	vuln, err := inject.Run(Campaign(Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	if vuln.Metric().Violations() < 2 {
		t.Errorf("vulnerable violations = %d, want >= 2 (PATH hijack + binary ownership)",
			vuln.Metric().Violations())
	}
	fixed, err := inject.Run(Campaign(Fixed))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range fixed.Injections {
		if !in.Tolerated() {
			t.Errorf("fixed maildrop violated under %s at %s: %v", in.FaultID, in.Point, in.Violations)
		}
	}
}

// TestProcessInputFaults: the Table 6 process-entity perturbations apply
// at the queue site and the agent handles them without privilege misuse
// (the forged message is delivered — a toleration in our policy's terms —
// or rejected by the fixed variant).
func TestProcessInputFaults(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"maildrop:recv-queue"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	var direct, indirect int
	for _, in := range res.Injections {
		switch in.Class {
		case eai.ClassDirect:
			direct++
			if in.Attr != eai.AttrMsgAuthenticity && in.Attr != eai.AttrTrustability &&
				in.Attr != eai.AttrServiceAvail {
				t.Errorf("unexpected process attr %v", in.Attr)
			}
		case eai.ClassIndirect:
			indirect++
			if in.Sem != eai.SemProcMessage {
				t.Errorf("sem = %v", in.Sem)
			}
		}
	}
	if direct != 3 || indirect != 2 {
		t.Errorf("direct/indirect = %d/%d, want 3/2", direct, indirect)
	}
}

// TestUmaskPerturbation: the zero-mask fault of Table 5 is injected at the
// UMASK read.
func TestUmaskPerturbation(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"maildrop:getenv-umask"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Injections) != 1 || !strings.HasSuffix(res.Injections[0].FaultID, "zero-mask") {
		t.Fatalf("injections = %+v", res.Injections)
	}
}

func TestParseOctal(t *testing.T) {
	t.Parallel()
	tests := []struct {
		in   string
		want uint16
	}{
		{"077", 0o077},
		{"22", 0o022},
		{"0", 0},
		{"junk", 0o022},
		{"8", 0o022},
	}
	for _, tt := range tests {
		if got := parseOctal(tt.in); uint16(got) != tt.want {
			t.Errorf("parseOctal(%q) = %o, want %o", tt.in, uint16(got), tt.want)
		}
	}
}
