// Package maildrop is a local mail delivery agent exercising the
// environment-variable rows of Table 5: the PATH list an exec implicitly
// consults (the paper's example of an internal entity used invisibly by a
// system call) and a permission mask taken from the environment. Its
// process-input channel exercises the Table 6 process entity.
package maildrop

import (
	"strings"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
	"repro/internal/sim/vfs"
)

// SourceVersion identifies this package's world builder and program
// variants for source-level result caching: it becomes part of every
// campaign's inject.Campaign.Source identity (see apps.SuiteJobs).
// Bump it whenever the world construction or a program variant changes
// behaviour, or stale cached results will replay for the old code.
const SourceVersion = "1"

// World identities and landmarks.
const (
	InvokerUID  = 100
	AttackerUID = 666

	MailDir  = "/var/mail"
	Sendmail = "/usr/bin/sendmail"
	// HijackDir is where the Table 5 insert-untrusted-path perturbation
	// points; the world stages an attacker binary there.
	HijackDir = "/tmp/attacker/bin"
)

// Vulnerable delivers the queued message and notifies the remote relay by
// exec'ing "sendmail" through PATH, applying whatever umask the
// environment supplies, and trusting the queued message blindly.
func Vulnerable(p *kernel.Proc) int {
	msg, err := p.MsgRecv("maildrop:recv-queue", "mailqueue")
	if err != nil {
		p.Eprintf("maildrop: queue empty\n")
		return 1
	}
	to := ""
	for _, line := range strings.Split(string(msg), "\n") {
		if rest, ok := strings.CutPrefix(line, "To: "); ok {
			to = rest
			break
		}
	}
	if to == "" || strings.ContainsAny(to, "/\x00") {
		p.Eprintf("maildrop: no recipient\n")
		return 1
	}

	// Trust the environment's delivery umask.
	if um := p.Getenv("maildrop:getenv-umask", "UMASK"); um != "" {
		p.SetUmask(parseOctal(um))
	}

	box, err := p.Open("maildrop:open-box", MailDir+"/"+to,
		kernel.OWrite|kernel.OCreate|kernel.OAppend, 0o600)
	if err != nil {
		p.Eprintf("maildrop: cannot open mailbox: %v\n", err)
		return 1
	}
	if _, err := p.Write("maildrop:write-box", box, append(msg, '\n')); err != nil {
		p.Close(box)
		return 1
	}
	p.Close(box)

	// Notify the relay — a bare command name, resolved through PATH.
	if _, err := p.Exec("maildrop:exec-sendmail", "sendmail", "sendmail", "-N", to); err != nil {
		p.Eprintf("maildrop: relay notification failed: %v\n", err)
		return 1
	}
	p.Printf("delivered to %s\n", to)
	return 0
}

// Fixed pins the relay binary to an absolute path, verifies its ownership
// before exec, clamps the delivery umask, and validates queued messages.
func Fixed(p *kernel.Proc) int {
	msg, err := p.MsgRecv("maildrop:recv-queue", "mailqueue")
	if err != nil {
		p.Eprintf("maildrop: queue empty\n")
		return 1
	}
	if len(msg) > 64*1024 || !strings.HasPrefix(string(msg), "From: ") {
		p.Eprintf("maildrop: malformed queue entry\n")
		return 1
	}
	to := ""
	for _, line := range strings.Split(string(msg), "\n") {
		if rest, ok := strings.CutPrefix(line, "To: "); ok {
			to = rest
			break
		}
	}
	if to == "" || strings.ContainsAny(to, "/\x00") || len(to) > 64 {
		p.Eprintf("maildrop: bad recipient\n")
		return 1
	}

	// The delivery mask is policy, not environment: clamp to at least
	// owner-only regardless of what the environment says.
	if um := p.Getenv("maildrop:getenv-umask", "UMASK"); um != "" {
		mask := parseOctal(um)
		if mask&0o077 != 0o077 {
			mask |= 0o077
		}
		p.SetUmask(mask)
	}

	box, err := p.Open("maildrop:open-box", MailDir+"/"+to,
		kernel.OWrite|kernel.OCreate|kernel.OAppend, 0o600)
	if err != nil {
		return 1
	}
	if _, err := p.Write("maildrop:write-box", box, append(msg, '\n')); err != nil {
		p.Close(box)
		return 1
	}
	p.Close(box)

	// Absolute path, ownership check atomic with the exec, no PATH
	// involvement.
	if _, err := p.ExecTrusted("maildrop:exec-sendmail", Sendmail, 0, "sendmail", "-N", to); err != nil {
		p.Eprintf("maildrop: relay binary untrusted: %v\n", err)
		return 1
	}
	p.Printf("delivered to %s\n", to)
	return 0
}

func parseOctal(s string) vfs.Mode {
	var m vfs.Mode
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '7' {
			return 0o022
		}
		m = m<<3 | vfs.Mode(s[i]-'0')
	}
	return m & 0o777
}

// World stages the mail spool, the real relay binary, and — crucially —
// the attacker's sendmail in the directory the untrusted-path perturbation
// prepends.
func World(prog kernel.Program) inject.Factory {
	return image.FactoryWith(func(l inject.Launch) inject.Launch {
		l.Prog = prog
		return l
	})
}

// image memoizes the variant-independent maildrop world; runs fork it
// copy-on-write (mailbox queues are deep-copied per fork).
var image = inject.NewWorldImage(func() (*kernel.Kernel, inject.Launch) {
	k := kernel.New()
	k.Users.Add(proc.User{Name: "alice", UID: InvokerUID, GID: InvokerUID})
	k.Users.Add(proc.User{Name: "mallory", UID: AttackerUID, GID: AttackerUID})
	must(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
	must(k.FS.WriteFile("/etc/passwd", []byte("root:x:0:0\n"), 0o644, 0, 0))
	must(k.FS.WriteFile("/etc/shadow", []byte("root:$1$MAILHASH$:1:\n"), 0o600, 0, 0))
	must(k.FS.MkdirAll("/", MailDir, 0o755, 0, 0))
	must(k.FS.WriteFile(MailDir+"/alice", []byte("From: bob\nTo: alice\n\nolder mail\n"), 0o600, InvokerUID, InvokerUID))
	must(k.FS.MkdirAll("/", "/usr/bin", 0o755, 0, 0))
	must(k.FS.WriteFile(Sendmail, []byte("#!"), 0o755, 0, 0))
	must(k.FS.MkdirAll("/", HijackDir, 0o777, AttackerUID, AttackerUID))
	must(k.FS.WriteFile(HijackDir+"/sendmail", []byte("#!"), 0o777, AttackerUID, AttackerUID))
	must(k.FS.MkdirAll("/", "/tmp", 0o777, 0, 0))
	k.PostMessage("mailqueue", []byte("From: bob\nTo: alice\n\nhello alice\n"))
	return k, inject.Launch{
		Cred: proc.Cred{UID: InvokerUID, GID: InvokerUID, EUID: 0, EGID: 0},
		Env:  proc.NewEnv("PATH", "/usr/bin:/bin", "UMASK", "077"),
		Cwd:  "/",
		Args: []string{"maildrop"},
	}
})

// Campaign perturbs the delivery agent's input channels: the queue, the
// environment mask, the implicit PATH lookup, and the exec object.
func Campaign(prog kernel.Program) inject.Campaign {
	return inject.Campaign{
		Name:  "maildrop",
		World: World(prog),
		Policy: policy.Policy{
			Invoker:           proc.NewCred(InvokerUID, InvokerUID),
			Attacker:          proc.NewCred(AttackerUID, AttackerUID),
			TrustedWritePaths: []string{MailDir},
		},
		Faults: eai.Config{Attacker: proc.NewCred(AttackerUID, AttackerUID)},
		Sites: []string{
			"maildrop:recv-queue",
			"maildrop:getenv-umask",
			"maildrop:exec-sendmail:PATH!implicit",
			"maildrop:exec-sendmail",
		},
		Semantics: map[string]eai.Semantic{
			"maildrop:getenv-umask": eai.SemPermMask,
			"maildrop:recv-queue":   eai.SemProcMessage,
		},
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
