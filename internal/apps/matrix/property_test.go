package matrix_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/apps/matrix"
	"repro/internal/core/report"
	"repro/internal/core/sched"
	"repro/internal/core/store"
)

// propertyJobs is the bounded matrix slice the equivalence properties
// run over: every cell of two solo apps and one composition — option
// sweeps, site cuts and both program variants included — small enough
// for -race, wide enough to cross every axis.
func propertyJobs(t *testing.T) []sched.Job {
	t.Helper()
	var jobs []sched.Job
	for _, pattern := range []string{"lpr/*", "untar/*", "lpr+turnin/*"} {
		sel := sched.FilterJobs(matrix.SuiteJobs(), pattern)
		if len(sel) == 0 {
			t.Fatalf("matrix slice %q is empty", pattern)
		}
		jobs = append(jobs, sel...)
	}
	return jobs
}

// renderSuite renders the full deterministic report surface for
// equivalence comparison: the summary table plus the clustered
// findings plus the per-axis matrix rollup.
func renderSuite(sr *sched.SuiteResult) string {
	return report.SuiteRun(sr) + "\n" + report.Clusters(sched.ClusterSuite(sr)) + "\n" + report.Matrix(sr)
}

// TestMatrixShardMergeEquivalence is the partition property: for
// n = 2, 3, 5, running the matrix slice as n independent sharded
// processes and merging the artifacts must reproduce the unsharded
// suite report byte for byte.
func TestMatrixShardMergeEquivalence(t *testing.T) {
	t.Parallel()
	jobs := propertyJobs(t)
	catalog := make([]string, len(jobs))
	for i, j := range jobs {
		catalog[i] = j.Label()
	}
	want := renderSuite(sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4}))

	for _, n := range []int{2, 3, 5} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			for k := 1; k <= n; k++ {
				spec := sched.ShardSpec{K: k, N: n}
				shardJobs, indices := sched.ShardJobs(jobs, spec)
				sr := sched.RunSuite(shardJobs, sched.SuiteOptions{Workers: 4, Cache: st})
				if len(sr.Failed()) != 0 {
					t.Fatalf("shard %s failed: %v", spec, sr.Failed())
				}
				if err := st.WriteShard(spec, catalog, indices, sr); err != nil {
					t.Fatal(err)
				}
			}
			merged, infos, err := st.MergeShards()
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != n {
				t.Fatalf("merged %d artifacts, want %d", len(infos), n)
			}
			if got := renderSuite(merged); got != want {
				t.Errorf("merged report diverges from unsharded run:\n--- merged ---\n%s\n--- unsharded ---\n%s", got, want)
			}
		})
	}
}

// TestMatrixWarmCacheEquivalence is the replay property: a second run
// against the same store must replay every cell from the cache — every
// one a source-level hit — and render the byte-identical report.
func TestMatrixWarmCacheEquivalence(t *testing.T) {
	t.Parallel()
	jobs := propertyJobs(t)
	st, err := store.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	cold := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4, Cache: st})
	if len(cold.Failed()) != 0 {
		t.Fatalf("cold run failed: %v", cold.Failed())
	}
	if hits := cold.CacheHits(); hits != 0 {
		t.Fatalf("cold run replayed %d campaigns from an empty store", hits)
	}
	for _, c := range cold.Campaigns {
		if c.CacheErr != nil {
			t.Fatalf("%s: cache write-back failed: %v", c.Job.Label(), c.CacheErr)
		}
	}

	warm := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4, Cache: st})
	if hits := warm.CacheHits(); hits != len(jobs) {
		t.Fatalf("warm run replayed %d/%d campaigns; every matrix cell must cache independently", hits, len(jobs))
	}
	for _, c := range warm.Campaigns {
		if !c.CachedSource {
			t.Errorf("%s replayed from the plan fingerprint only; source stamp missing", c.Job.Label())
		}
	}
	if got, want := renderSuite(warm), renderSuite(cold); got != want {
		t.Errorf("warm report diverges from cold run")
	}
}

// TestMatrixFingerprintsDistinct is the cache-independence property:
// across the matrix slice, no two cells share a plan or source
// fingerprint (distinct cells must never alias one store entry).
func TestMatrixFingerprintsDistinct(t *testing.T) {
	t.Parallel()
	jobs := propertyJobs(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sr := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4, Cache: st})
	plan := map[string]string{}
	source := map[string]string{}
	for _, c := range sr.Campaigns {
		if c.Err != nil {
			t.Fatalf("%s: %v", c.Job.Label(), c.Err)
		}
		if c.Fingerprint == "" || c.SourceFingerprint == "" {
			t.Fatalf("%s: missing fingerprint (plan %q, source %q)", c.Job.Label(), c.Fingerprint, c.SourceFingerprint)
		}
		if prev, dup := plan[c.Fingerprint]; dup {
			t.Errorf("cells %s and %s share plan fingerprint", prev, c.Job.Label())
		}
		if prev, dup := source[c.SourceFingerprint]; dup {
			t.Errorf("cells %s and %s share source fingerprint", prev, c.Job.Label())
		}
		plan[c.Fingerprint] = c.Job.Label()
		source[c.SourceFingerprint] = c.Job.Label()
	}
}
