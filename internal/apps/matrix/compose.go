package matrix

import (
	"strings"
	"sync"

	"repro/internal/apps"
	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/sim/kernel"
	"repro/internal/sim/vfs"
)

// Compose builds a multi-site campaign spec from two or more member
// specs: one campaign whose world is the members' worlds merged and
// whose run executes every member program in sequence, so the clean
// trace — and with it the perturbable interaction-point surface —
// composes the members' traces. The paper's catalog perturbs one
// program per campaign; composition is the scenario-diversity axis the
// matrix adds on top: faults planted for one member's interaction
// points are live while the *other* members run, so cross-application
// propagation (lpr's spool attack corrupting the world turnin then
// trusts) is observable under the same oracle.
//
// Merge rules, all first-member-wins so a pair (a,b) is a perturbation
// of a's world rather than an unpredictable blend: filesystem nodes,
// fault-config scalars and read-target overrides come from the
// earliest member that defines them; users, mailboxes, semantics maps
// and trusted write paths are unioned; the network and registry
// substrates attach from the first member that has one. The launch
// (credentials, environment, cwd) is the first member's; later members
// run as their own processes inside the merged kernel with their own
// launch parameters, and their stdout is appended to the composite
// process's so the confidentiality oracle sees every member's output.
func Compose(members ...apps.Spec) apps.Spec {
	if len(members) < 2 {
		panic("matrix: Compose needs at least two member specs")
	}
	names := make([]string, len(members))
	sources := make([]string, len(members))
	for i, m := range members {
		names[i] = m.Name
		sources[i] = m.Source
	}
	name := strings.Join(names, "+")
	build := func(variant func(apps.Spec) func() inject.Campaign) func() inject.Campaign {
		// One memoized world image per variant: matrix cells regenerate
		// the campaign value per cell, but the merged composition world is
		// identical across cells (only engine options and site cuts
		// differ), so every cell forks one shared frozen snapshot instead
		// of re-grafting the member worlds. The launch carries the member
		// programs, so the image cannot be shared across variants.
		var (
			imgOnce sync.Once
			img     *inject.WorldImage
		)
		return func() inject.Campaign {
			cs := make([]inject.Campaign, len(members))
			for i, m := range members {
				cs[i] = variant(m)()
			}
			c := composeCampaign(name, cs)
			imgOnce.Do(func() { img = inject.NewWorldImage(c.World) })
			c.World = img.Factory()
			return c
		}
	}
	return apps.Spec{
		Name:       name,
		Source:     strings.Join(sources, "+"),
		Paper:      "multi-site composition (matrix axis; not a paper campaign)",
		Vulnerable: build(func(s apps.Spec) func() inject.Campaign { return s.Vulnerable }),
		Fixed:      build(func(s apps.Spec) func() inject.Campaign { return s.Fixed }),
	}
}

// composeCampaign merges member campaigns into one.
func composeCampaign(name string, members []inject.Campaign) inject.Campaign {
	c := inject.Campaign{
		Name:      name,
		World:     composeWorld(members),
		Policy:    composePolicy(members),
		Faults:    composeFaults(members),
		Sites:     composeSites(members),
		Semantics: composeSemantics(members),
	}
	return c
}

// composeWorld builds the merged kernel and the sequential launch.
func composeWorld(members []inject.Campaign) inject.Factory {
	return func() (*kernel.Kernel, inject.Launch) {
		base, first := members[0].World()
		launches := []inject.Launch{first}
		for _, m := range members[1:] {
			k, l := m.World()
			graftWorld(base, k)
			launches = append(launches, l)
		}
		launch := first
		launch.Prog = composeProgram(launches)
		return base, launch
	}
}

// composeProgram runs each member program in order inside one kernel.
// The first member runs on the launch process itself; later members get
// their own processes with their member launch parameters, and their
// output is folded into the launch process's stdout/stderr so the
// oracle observes it. The composite exit code is the first non-zero
// member exit. A simulated memory error in any member unwinds to
// kernel.Run's recover exactly as it would in a solo campaign.
func composeProgram(launches []inject.Launch) kernel.Program {
	return func(p *kernel.Proc) int {
		exit := launches[0].Prog(p)
		for _, l := range launches[1:] {
			q := p.K.NewProc(l.Cred, l.Env.Clone(), l.Cwd, l.Args...)
			e := func() int {
				// Fold the member's output in even when it crashes —
				// the panic unwinds to kernel.Run's recover, and the
				// oracle must still see what the member printed first
				// (a leak followed by a crash is still a leak).
				defer func() {
					p.Stdout.Write(q.Stdout.Bytes())
					p.Stderr.Write(q.Stderr.Bytes())
				}()
				return l.Prog(q)
			}()
			if exit == 0 {
				exit = e
			}
		}
		return exit
	}
}

// graftWorld merges the src kernel's state into dst. Existing dst state
// wins every conflict; graft errors (a file under a path dst holds as a
// non-directory, say) are deliberately ignored — the merge is a
// deterministic best effort, and a member program that misses a file
// simply fails the way the oracle can observe.
func graftWorld(dst, src *kernel.Kernel) {
	for _, u := range src.Users.All() {
		// Guard by uid AND name: Users.Add replaces both indexes, so a
		// same-named account at a different uid would clobber the first
		// member's name lookup.
		if _, ok := dst.Users.ByUID(u.UID); ok {
			continue
		}
		if _, ok := dst.Users.ByName(u.Name); ok {
			continue
		}
		dst.Users.Add(u)
	}
	src.FS.Walk(func(p string, n *vfs.Inode) {
		if p == "/" {
			return
		}
		if _, err := dst.FS.LookupNoFollow("/", p); err == nil {
			return
		}
		switch n.Type {
		case vfs.TypeDir:
			dst.FS.Mkdir("/", p, n.Mode, n.UID, n.GID)
		case vfs.TypeRegular:
			dst.FS.WriteFile(p, n.Data, n.Mode, n.UID, n.GID)
		case vfs.TypeSymlink:
			dst.FS.Symlink("/", n.Target, p, n.UID, n.GID)
		}
	})
	if dst.Net == nil {
		dst.Net = src.Net
	}
	if dst.Reg == nil {
		dst.Reg = src.Reg
	}
	for _, name := range src.MailboxNames() {
		if len(dst.PeekMailbox(name)) == 0 {
			dst.SetMailbox(name, src.PeekMailbox(name))
		}
	}
}

// composePolicy keeps the first member's principals and oracle knobs
// and unions the trusted write paths, so every member's legitimate
// writes stay non-violations.
func composePolicy(members []inject.Campaign) policy.Policy {
	pol := members[0].Policy
	var trusted []string
	for _, m := range members {
		trusted = append(trusted, m.Policy.TrustedWritePaths...)
	}
	pol.TrustedWritePaths = trusted
	return pol
}

// composeFaults merges the members' fault configurations: first member
// wins each scalar, read-target overrides union with first-wins per
// object.
func composeFaults(members []inject.Campaign) eai.Config {
	cfg := members[0].Faults
	overrides := map[string]string{}
	for obj, t := range cfg.ReadTargetOverrides {
		overrides[obj] = t
	}
	for _, m := range members[1:] {
		f := m.Faults
		if cfg.AttackerDir == "" {
			cfg.AttackerDir = f.AttackerDir
		}
		if cfg.ReadTarget == "" {
			cfg.ReadTarget = f.ReadTarget
		}
		if cfg.WriteTarget == "" {
			cfg.WriteTarget = f.WriteTarget
		}
		if cfg.DirTarget == "" {
			cfg.DirTarget = f.DirTarget
		}
		if len(cfg.AttackerContent) == 0 {
			cfg.AttackerContent = f.AttackerContent
		}
		if cfg.EvilHost == "" {
			cfg.EvilHost = f.EvilHost
		}
		for obj, t := range f.ReadTargetOverrides {
			if _, ok := overrides[obj]; !ok {
				overrides[obj] = t
			}
		}
	}
	if len(overrides) > 0 {
		cfg.ReadTargetOverrides = overrides
	}
	return cfg
}

// composeSites unions the members' site selections. All members
// unrestricted composes to unrestricted; otherwise an unrestricted
// member contributes its whole surface as "<prefix>:*" patterns
// derived from its own clean trace (site labels carry the program's
// prefix, which may differ from the campaign name — ntreg-updater
// labels its sites "updater:..."), so a restricted member's
// deliberate exclusions survive the merge.
func composeSites(members []inject.Campaign) []string {
	restricted := false
	for _, m := range members {
		if len(m.Sites) > 0 {
			restricted = true
			break
		}
	}
	if !restricted {
		return nil
	}
	var sites []string
	for _, m := range members {
		if len(m.Sites) > 0 {
			sites = append(sites, m.Sites...)
			continue
		}
		sites = append(sites, sitePrefixPatterns(m)...)
	}
	return sites
}

// sitePrefixPatterns enumerates the member's solo clean-trace sites
// and returns one "<prefix>:*" pattern per distinct label prefix, in
// first-hit order. The campaign name is the fallback when the member
// cannot be probed.
func sitePrefixPatterns(m inject.Campaign) []string {
	sites, err := inject.CleanSites(m)
	if err != nil {
		return []string{m.Name + ":*"}
	}
	seen := map[string]bool{}
	var patterns []string
	for _, site := range sites {
		prefix := site
		if i := strings.Index(site, ":"); i >= 0 {
			prefix = site[:i]
		}
		if seen[prefix] {
			continue
		}
		seen[prefix] = true
		patterns = append(patterns, prefix+":*")
	}
	return patterns
}

// composeSemantics unions the members' semantic annotations; site
// labels are app-prefixed, so the maps are disjoint.
func composeSemantics(members []inject.Campaign) map[string]eai.Semantic {
	out := map[string]eai.Semantic{}
	for _, m := range members {
		for site, sem := range m.Semantics {
			if _, ok := out[site]; !ok {
				out[site] = sem
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
