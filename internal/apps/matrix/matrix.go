// Package matrix expands the base application catalog into a
// deterministic grid of campaign variants — the catalog-scale jump the
// suite dispatcher and result cache were built for. Three axes cross:
//
//   - application: every apps.Catalog spec, plus multi-site specs that
//     Compose two or more apps' worlds and traces into one campaign;
//   - engine option: the inject.Options ablation sweeps (NoObjectDedup,
//     OnlyDirect, OnlyIndirect, DirectAfterPoint);
//   - site cut: prefixes of the campaign's interaction-site list at
//     several cut points, so the same program is perturbed under
//     progressively wider surfaces (and DirectAfterPoint is exercised
//     at every cut).
//
// Every cell is one sched.Job whose variant label encodes its axis
// coordinates ("vulnerable+nodedup+s4"), whose Job.Engine carries its
// option sweep, and whose campaign Source is stamped with the full
// variant — so each cell fingerprints, caches, shards and reports
// independently of every other. SuiteJobs is deterministic: two calls
// (or two machines) produce the identical job list in the identical
// order, which is what makes matrix shard artifacts mergeable.
package matrix

import (
	"sort"
	"strconv"

	"repro/internal/apps"
	"repro/internal/core/inject"
	"repro/internal/core/sched"
)

// Sweep is one engine-option axis value.
type Sweep struct {
	// Token is the variant-label component; empty is the paper's
	// baseline methodology.
	Token string
	// Opt is the engine options the sweep applies.
	Opt inject.Options
}

// Sweeps returns the engine-option axis, baseline first.
func Sweeps() []Sweep {
	return []Sweep{
		{Token: ""},
		{Token: "nodedup", Opt: inject.Options{NoObjectDedup: true}},
		{Token: "direct", Opt: inject.Options{OnlyDirect: true}},
		{Token: "indirect", Opt: inject.Options{OnlyIndirect: true}},
		{Token: "late-direct", Opt: inject.Options{DirectAfterPoint: true}},
		{Token: "late-nodedup", Opt: inject.Options{DirectAfterPoint: true, NoObjectDedup: true}},
	}
}

// cutFractions is the site axis: each fraction of the campaign's site
// list becomes one cut variant, alongside the implicit full surface.
var cutFractions = []float64{0.25, 0.5, 0.75}

// cutsFor returns the distinct site-prefix lengths for an n-site
// campaign, ascending, excluding the full surface (which every spec
// already has as its base cell).
func cutsFor(n int) []int {
	if n < 2 {
		return nil
	}
	seen := map[int]bool{}
	var cuts []int
	for _, f := range cutFractions {
		k := int(f*float64(n) + 0.5)
		if k < 1 {
			k = 1
		}
		if k >= n || seen[k] {
			continue
		}
		seen[k] = true
		cuts = append(cuts, k)
	}
	sort.Ints(cuts)
	return cuts
}

// PairSpecs returns the multi-site compositions the matrix schedules
// alongside the base catalog. The pairs are chosen to cross the
// substrate boundaries the apps exercise — filesystem against
// filesystem, spooler against extractor, network and process input
// against filesystem — and one triple shows composition is n-ary.
func PairSpecs() []apps.Spec {
	lpr := mustSpec("lpr")
	turnin := mustSpec("turnin")
	maildrop := mustSpec("maildrop")
	untar := mustSpec("untar")
	ftpget := mustSpec("ftpget")
	return []apps.Spec{
		Compose(lpr, turnin),
		Compose(maildrop, lpr),
		Compose(turnin, untar),
		Compose(ftpget, maildrop),
		Compose(lpr, turnin, untar),
	}
}

// mustSpec looks up a catalog spec by name.
func mustSpec(name string) apps.Spec {
	s, err := apps.Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Specs returns every spec the matrix expands: the base catalog plus
// the multi-site compositions.
func Specs() []apps.Spec {
	return append(apps.Catalog(), PairSpecs()...)
}

// SuiteJobs returns the full matrix catalog as a scheduler job list —
// the workload of `eptest -all -matrix`. The base catalog is the
// matrix's (baseline option × full surface) plane, so every
// apps.SuiteJobs job appears here under its unchanged label and
// fingerprint; the remaining cells multiply the suite by an order of
// magnitude.
func SuiteJobs() []sched.Job {
	var jobs []sched.Job
	for _, spec := range Specs() {
		jobs = append(jobs, expand(spec)...)
	}
	return jobs
}

// expand generates one spec's matrix cells in deterministic order:
// sweep-major, then site cut (full surface first), then the two
// program variants.
func expand(spec apps.Spec) []sched.Job {
	sites := siteList(spec)
	cuts := append([]int{0}, cutsFor(len(sites))...)
	var jobs []sched.Job
	for _, sw := range Sweeps() {
		sw := sw
		for _, cut := range cuts {
			var engine *inject.Options
			if sw.Token != "" {
				opt := sw.Opt
				engine = &opt
			}
			jobs = append(jobs,
				cell(spec, "vulnerable", spec.Vulnerable, sw, cut, sites, engine),
				cell(spec, "fixed", spec.Fixed, sw, cut, sites, engine),
			)
		}
	}
	return jobs
}

// cell builds one matrix job.
func cell(spec apps.Spec, prog string, build func() inject.Campaign, sw Sweep, cut int, sites []string, engine *inject.Options) sched.Job {
	variant := prog
	if sw.Token != "" {
		variant += "+" + sw.Token
	}
	if cut > 0 {
		variant += "+s" + strconv.Itoa(cut)
	}
	return sched.Job{
		Name:    spec.Name,
		Variant: variant,
		Engine:  engine,
		Build: func() inject.Campaign {
			c := build()
			if cut > 0 {
				c.Sites = append([]string(nil), sites[:cut]...)
			}
			c.Source = spec.Source + "/" + variant
			return c
		},
	}
}

// siteList returns the ordered site list the cut axis slices: the
// campaign's explicit Sites selection when it has one, otherwise the
// full site surface of the vulnerable variant's clean trace. Cuts are
// therefore defined on the vulnerable program's site order and applied
// to both program variants — the fixed variant's extra validation
// sites only appear in its full-surface cells. A spec whose surface
// cannot be probed (the clean run fails) gets no cut variants.
func siteList(spec apps.Spec) []string {
	c := spec.Vulnerable()
	if len(c.Sites) > 0 {
		return append([]string(nil), c.Sites...)
	}
	sites, err := inject.CleanSites(c)
	if err != nil {
		return nil
	}
	return sites
}
