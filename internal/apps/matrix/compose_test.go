package matrix_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/matrix"
	"repro/internal/core/inject"
)

// TestComposedCleanRuns verifies every multi-site composition the
// matrix ships survives its clean run in both program variants and
// exposes interaction points from every member — the property that
// makes it a genuine multi-app campaign rather than a renamed solo
// one.
func TestComposedCleanRuns(t *testing.T) {
	t.Parallel()
	for _, spec := range matrix.PairSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			members := strings.Split(spec.Name, "+")
			for _, build := range map[string]func() inject.Campaign{
				"vulnerable": spec.Vulnerable, "fixed": spec.Fixed,
			} {
				plan, err := inject.PrepareWith(build(), inject.Options{})
				if err != nil {
					t.Fatalf("clean run failed: %v", err)
				}
				shell := plan.Shell()
				for _, member := range members {
					found := false
					for _, site := range shell.TotalSites {
						if strings.HasPrefix(site, member+":") {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("trace has no %s: sites; members did not compose (sites: %v)", member, shell.TotalSites)
					}
				}
				if plan.NumRuns() == 0 {
					t.Errorf("composition plans zero injection runs")
				}
			}
		})
	}
}

// TestComposedSuperset verifies a composition's injection surface
// dominates its first member's: every point the solo lpr campaign
// perturbs is perturbed by lpr+turnin too (same world prefix, same
// site filter semantics).
func TestComposedSuperset(t *testing.T) {
	t.Parallel()
	lpr, err := apps.Lookup("lpr")
	if err != nil {
		t.Fatal(err)
	}
	turnin, err := apps.Lookup("turnin")
	if err != nil {
		t.Fatal(err)
	}
	solo, err := inject.Run(lpr.Vulnerable())
	if err != nil {
		t.Fatal(err)
	}
	pair := matrix.Compose(lpr, turnin)
	both, err := inject.Run(pair.Vulnerable())
	if err != nil {
		t.Fatal(err)
	}
	perturbed := map[string]bool{}
	for _, s := range both.PerturbedSites {
		perturbed[s] = true
	}
	for _, s := range solo.PerturbedSites {
		if !perturbed[s] {
			t.Errorf("composition does not perturb solo site %s", s)
		}
	}
	if len(both.Injections) <= len(solo.Injections) {
		t.Errorf("composition plans %d runs, solo lpr plans %d", len(both.Injections), len(solo.Injections))
	}
}

// TestComposedSiteUnion verifies the site-selection merge: an
// unrestricted member rides along as a prefix pattern, and a
// restricted member's exclusions survive.
func TestComposedSiteUnion(t *testing.T) {
	t.Parallel()
	lpr, err := apps.Lookup("lpr")
	if err != nil {
		t.Fatal(err)
	}
	untar, err := apps.Lookup("untar")
	if err != nil {
		t.Fatal(err)
	}
	// lpr's campaign is unrestricted; untar's is restricted to its two
	// archive sites.
	c := matrix.Compose(lpr, untar).Vulnerable()
	if len(c.Sites) == 0 {
		t.Fatal("lpr+untar composes to an unrestricted surface; untar's site selection was dropped")
	}
	hasPattern, hasUntar := false, false
	for _, s := range c.Sites {
		if s == "lpr:*" {
			hasPattern = true
		}
		if s == "untar:open-archive" {
			hasUntar = true
		}
	}
	if !hasPattern || !hasUntar {
		t.Fatalf("composed sites = %v; want lpr:* pattern and untar's explicit sites", c.Sites)
	}

	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.PerturbedSites {
		if strings.HasPrefix(s, "untar:") && s != "untar:open-archive" && s != "untar:read-archive" {
			t.Errorf("composition perturbed %s, which untar's campaign excludes", s)
		}
	}
}

// TestComposeIsDeterministic verifies two builds of one composition
// produce identical plans — the property the fingerprint cache and the
// byte-identical-report invariant both rest on.
func TestComposeIsDeterministic(t *testing.T) {
	t.Parallel()
	spec := matrix.PairSpecs()[0]
	a, err := inject.Run(spec.Vulnerable())
	if err != nil {
		t.Fatal(err)
	}
	b, err := inject.Run(spec.Vulnerable())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Injections) != len(b.Injections) {
		t.Fatalf("plans diverge: %d vs %d runs", len(a.Injections), len(b.Injections))
	}
	for i := range a.Injections {
		x, y := a.Injections[i], b.Injections[i]
		if x.Point != y.Point || x.FaultID != y.FaultID || x.Exit != y.Exit ||
			len(x.Violations) != len(y.Violations) {
			t.Fatalf("run %d diverges: %+v vs %+v", i, x, y)
		}
	}
}
