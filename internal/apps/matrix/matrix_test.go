package matrix_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/matrix"
	"repro/internal/core/inject"
	"repro/internal/core/sched"
)

// TestSuiteJobsDeterministic pins the generator's core contract: two
// independent calls emit the identical job list in the identical
// order — label for label — which is what makes matrix shard
// artifacts produced on different machines mergeable.
func TestSuiteJobsDeterministic(t *testing.T) {
	t.Parallel()
	a, b := matrix.SuiteJobs(), matrix.SuiteJobs()
	if len(a) != len(b) {
		t.Fatalf("job counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label() != b[i].Label() {
			t.Fatalf("job %d diverges: %q vs %q", i, a[i].Label(), b[i].Label())
		}
	}
}

// TestSuiteJobsScale verifies the acceptance floor: the matrix emits
// at least ten times the base catalog's job count, with unique labels.
func TestSuiteJobsScale(t *testing.T) {
	t.Parallel()
	base := apps.SuiteJobs()
	jobs := matrix.SuiteJobs()
	if len(jobs) < 10*len(base) {
		t.Fatalf("matrix emits %d jobs, want >= 10x base (%d)", len(jobs), 10*len(base))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.Label()] {
			t.Fatalf("duplicate matrix label %q", j.Label())
		}
		seen[j.Label()] = true
	}
	// The base catalog is the matrix's baseline plane: every base job
	// appears under its unchanged label.
	for _, j := range base {
		if !seen[j.Label()] {
			t.Errorf("base job %q missing from matrix", j.Label())
		}
	}
}

// TestMatrixCellIdentity verifies each cell carries its own campaign
// identity: distinct Source stamps (the source-fingerprint domain) and
// engine options matching its variant tokens.
func TestMatrixCellIdentity(t *testing.T) {
	t.Parallel()
	sources := map[string]string{}
	for _, j := range matrix.SuiteJobs() {
		c := j.Build()
		if c.Source == "" {
			t.Fatalf("cell %q has no Source", j.Label())
		}
		if prev, dup := sources[c.Source]; dup {
			t.Fatalf("cells %q and %q share Source %q", prev, j.Label(), c.Source)
		}
		sources[c.Source] = j.Label()

		opt := inject.Options{}
		if j.Engine != nil {
			opt = *j.Engine
		}
		tokens := map[string]bool{}
		for _, tok := range strings.Split(j.Variant, "+")[1:] {
			tokens[tok] = true
		}
		if want := tokens["nodedup"] || tokens["late-nodedup"]; want != opt.NoObjectDedup {
			t.Errorf("cell %q: NoObjectDedup = %v, want %v", j.Label(), opt.NoObjectDedup, want)
		}
		if tokens["direct"] != opt.OnlyDirect {
			t.Errorf("cell %q: OnlyDirect = %v", j.Label(), opt.OnlyDirect)
		}
		if tokens["indirect"] != opt.OnlyIndirect {
			t.Errorf("cell %q: OnlyIndirect = %v", j.Label(), opt.OnlyIndirect)
		}
		if want := tokens["late-direct"] || tokens["late-nodedup"]; want != opt.DirectAfterPoint {
			t.Errorf("cell %q: DirectAfterPoint = %v, want %v", j.Label(), opt.DirectAfterPoint, want)
		}
	}
}

// TestSiteCutsNest verifies the cut axis actually narrows the surface:
// for one swept app, s2 perturbs no more sites than the full cell, and
// every cut site list is a prefix of the full selection.
func TestSiteCutsNest(t *testing.T) {
	t.Parallel()
	jobs := sched.FilterJobs(matrix.SuiteJobs(), "turnin/vulnerable+s*")
	if len(jobs) == 0 {
		t.Fatal("no turnin cut cells; generator axis missing")
	}
	full, err := inject.Run(mustBuild(t, "turnin/vulnerable"))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		c := j.Build()
		if len(c.Sites) == 0 {
			t.Fatalf("cut cell %q has unrestricted sites", j.Label())
		}
		res, err := inject.Run(c)
		if err != nil {
			t.Fatalf("%s: %v", j.Label(), err)
		}
		if got, max := len(res.PerturbedSites), len(full.PerturbedSites); got > max {
			t.Errorf("%s perturbs %d sites, full surface perturbs %d", j.Label(), got, max)
		}
		if len(res.Injections) >= len(full.Injections) {
			t.Errorf("%s plans %d runs, full surface plans %d; cut did not narrow", j.Label(), len(res.Injections), len(full.Injections))
		}
	}
}

// mustBuild builds the campaign of the matrix cell with the given
// label.
func mustBuild(t *testing.T, label string) inject.Campaign {
	t.Helper()
	for _, j := range matrix.SuiteJobs() {
		if j.Label() == label {
			return j.Build()
		}
	}
	t.Fatalf("no matrix cell labelled %q", label)
	return inject.Campaign{}
}
