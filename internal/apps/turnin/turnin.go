// Package turnin ports the Purdue turnin case study of Section 4.1: a
// set-UID-root submission program (1310 lines in the original) with the
// three flaws the paper found — a trusted-config assumption, a
// world-readable-Projlist assumption whose failure leaks protected files,
// and unsanitised "../" in submitted file names — plus the unchecked
// fixed-size buffers endemic to 1990s C.
//
// The paper's campaign identified 8 interaction places, injected 41
// perturbations, and found 9 that violate the security policy. The
// campaign constructed here reproduces those counts; see the package tests
// and EXPERIMENTS.md.
package turnin

import (
	"strings"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
)

// SourceVersion identifies this package's world builder and program
// variants for source-level result caching: it becomes part of every
// campaign's inject.Campaign.Source identity (see apps.SuiteJobs).
// Bump it whenever the world construction or a program variant changes
// behaviour, or stale cached results will replay for the old code.
const SourceVersion = "1"

// World layout.
const (
	ConfigPath = "/usr/local/lib/turnin.cf"
	CourseRoot = "/u/cs352"
	SubmitDir  = CourseRoot + "/submit"
	Projlist   = CourseRoot + "/Projlist"

	// StagedRoot is the attacker's pre-staged course root: the payload the
	// trusted-config perturbations redirect turnin into. Its Projlist is a
	// symlink to /etc/shadow.
	StagedRoot = "/tmp/evil"

	InvokerUID = 100 // alice, the submitting student (also the perturber)
	TAUID      = 200 // the course account that owns the submit tree
)

// Vulnerable is the turnin the paper tested. Its interaction sites:
//
//	turnin:arg-course      argv course name (not in the 8 perturbed places)
//	turnin:open-config     fopen("/usr/local/lib/turnin.cf")     [site 1]
//	turnin:read-config     read of the trusted config            [site 2]
//	turnin:open-projlist   fopen(pcFile) — the paper's example   [site 3]
//	turnin:read-projlist   read + echo of the project list       [site 4]
//	turnin:arg-project     argv project name                     [site 5]
//	turnin:stat-submitdir  stat of the TA's submit directory     [site 6]
//	turnin:arg-file        argv submitted file name              [site 7]
//	turnin:create-dest     creat of the submission copy          [site 8]
func Vulnerable(p *kernel.Proc) int { return run(p, false) }

// Fixed is the repaired turnin: bounded copies, privilege drop around the
// Projlist read, symlink and ownership validation on every trusted object,
// exclusive creates, and ".." rejection in file names.
func Fixed(p *kernel.Proc) int { return run(p, true) }

func run(p *kernel.Proc, fixed bool) int {
	course := p.Arg("turnin:arg-course", 2)
	if course == "" {
		p.Eprintf("usage: turnin -c course -p project file\n")
		return 2
	}

	// [site 1] the trusted configuration file.
	if fixed {
		if st, err := p.Lstat("turnin:lstat-config", ConfigPath); err != nil || st.Symlink || st.UID != 0 {
			p.Eprintf("turnin: config file untrusted\n")
			return 1
		}
	}
	cf, err := p.Open("turnin:open-config", ConfigPath, kernel.ORead, 0)
	if err != nil {
		p.Eprintf("turnin: cannot open %s\n", ConfigPath)
		return 1
	}
	// [site 2] the config content: "<course> <root-dir>" lines.
	cfData, err := p.ReadAll("turnin:read-config", cf)
	p.Close(cf)
	if err != nil {
		p.Eprintf("turnin: config read error\n")
		return 1
	}
	root := ""
	for _, line := range strings.Split(string(cfData), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == course {
			root = fields[1]
			break
		}
	}
	if root == "" {
		p.Eprintf("turnin: unknown course %s\n", course)
		return 1
	}
	if fixed {
		if len(root) > 255 {
			p.Eprintf("turnin: config path too long\n")
			return 1
		}
		// The course root must belong to the course account or root and
		// must not be a link.
		if st, err := p.Lstat("turnin:lstat-root", root); err != nil || st.Symlink ||
			(st.UID != TAUID && st.UID != 0) {
			p.Eprintf("turnin: course root untrusted\n")
			return 1
		}
	} else {
		// Unchecked strcpy of the configured path into a fixed buffer.
		var rootBuf [256]byte
		n := p.CopyBounded(rootBuf[:], []byte(root))
		root = string(rootBuf[:n])
	}

	// [site 3] the project list — the paper's fopen(pcFile) example.
	projPath := root + "/Projlist"
	savedEUID := p.Cred.EUID
	if fixed {
		// Drop privileges so the open carries only the invoker's
		// authority: the fix for the /etc/shadow leak.
		if err := p.SetEUID(p.Cred.UID); err != nil {
			return 1
		}
		if st, err := p.Lstat("turnin:lstat-projlist", projPath); err != nil || st.Symlink {
			p.Eprintf("turnin: can not find project list file\n")
			return 9
		}
	}
	pf, err := p.Open("turnin:open-projlist", projPath, kernel.ORead, 0)
	if err != nil {
		p.Eprintf("turnin: can not find project list file\n")
		return 9
	}
	// [site 4] the project list content, echoed to the student.
	plData, err := p.ReadAll("turnin:read-projlist", pf)
	p.Close(pf)
	if err != nil {
		p.Eprintf("turnin: project list read error\n")
		return 9
	}
	if fixed {
		// Regain the service privilege for the submit-side work.
		if err := p.SetEUID(savedEUID); err != nil {
			return 1
		}
	}
	p.Printf("Projects for %s:\n", course)
	var projects []string
	for _, line := range strings.Split(strings.TrimRight(string(plData), "\n"), "\n") {
		if line == "" {
			continue
		}
		if fixed {
			if len(line) > 120 {
				p.Eprintf("turnin: project list entry too long\n")
				return 9
			}
		} else {
			// Unchecked copy of each list line into a fixed line buffer.
			var lineBuf [128]byte
			n := p.CopyBounded(lineBuf[:], []byte(line))
			line = string(lineBuf[:n])
		}
		projects = append(projects, line)
		p.Printf("  %s\n", line)
	}

	// [site 5] the requested project, validated against the list before
	// any copy.
	proj := p.Arg("turnin:arg-project", 4)
	found := false
	for _, pr := range projects {
		if pr == proj {
			found = true
			break
		}
	}
	if !found {
		p.Eprintf("turnin: no such project %q\n", proj)
		return 2
	}

	// [site 6] the TA's submit directory.
	submitDir := root + "/submit"
	if fixed {
		st, err := p.Lstat("turnin:stat-submitdir", submitDir)
		if err != nil || st.Symlink || st.Type.String() != "directory" || st.UID != TAUID {
			p.Eprintf("turnin: submit directory untrusted\n")
			return 3
		}
	} else {
		// The vulnerable version checks only that something stat-able is
		// there — following symlinks, trusting ownership.
		if _, err := p.Stat("turnin:stat-submitdir", submitDir); err != nil {
			p.Eprintf("turnin: no submit directory\n")
			return 3
		}
	}

	// [site 7] the submitted file name. The original forbade "/" at the
	// front but not "../" — the tar-member flaw.
	name := p.Arg("turnin:arg-file", 5)
	if name == "" {
		p.Eprintf("turnin: no file named\n")
		return 4
	}
	if strings.HasPrefix(name, "/") {
		p.Eprintf("turnin: illegal file name %q\n", name)
		return 4
	}
	if len(name) > 200 {
		p.Eprintf("turnin: file name too long\n")
		return 4
	}
	if fixed && strings.Contains(name, "..") {
		p.Eprintf("turnin: illegal file name %q\n", name)
		return 4
	}

	// Read the student's file (content comes from the base name in the
	// student's directory, the entry name is used verbatim — tar
	// semantics).
	srcName := name
	if i := strings.LastIndex(srcName, "/"); i >= 0 {
		srcName = srcName[i+1:]
	}
	src, err := p.ReadFile("turnin:src", srcName)
	if err != nil {
		p.Eprintf("turnin: cannot read %s: %v\n", srcName, err)
		return 5
	}

	// Ensure the per-project drop directory exists.
	projDir := submitDir + "/" + proj
	if _, err := p.Stat("turnin:stat-projdir", projDir); err != nil {
		if err := p.Mkdir("turnin:mkdir-proj", projDir, 0o700); err != nil {
			p.Eprintf("turnin: cannot create project directory: %v\n", err)
			return 6
		}
	}

	// [site 8] the privileged copy into the TA's tree.
	dest := projDir + "/" + name
	flags := kernel.OWrite | kernel.OCreate | kernel.OTrunc
	if fixed {
		flags = kernel.OWrite | kernel.OCreate | kernel.OExcl
	}
	df, err := p.Open("turnin:create-dest", dest, flags, 0o600)
	if err != nil {
		p.Eprintf("turnin: cannot store submission: %v\n", err)
		return 6
	}
	defer p.Close(df)
	if _, err := p.Write("turnin:write-dest", df, src); err != nil {
		p.Eprintf("turnin: write error\n")
		return 6
	}
	p.Printf("Submitted %s for %s/%s.\n", name, course, proj)
	return 0
}

// World builds the turnin environment: the trusted config, the course
// account's tree, the student's homework, and the attacker's staged
// payload root (a Projlist symlinked to /etc/shadow, ready for the
// trusted-config redirection).
func World(prog kernel.Program) inject.Factory {
	return image.FactoryWith(func(l inject.Launch) inject.Launch {
		l.Prog = prog
		return l
	})
}

// image memoizes the variant-independent turnin world; runs fork it
// copy-on-write.
var image = inject.NewWorldImage(func() (*kernel.Kernel, inject.Launch) {
	k := kernel.New()
	k.Users.Add(proc.User{Name: "alice", UID: InvokerUID, GID: InvokerUID})
	k.Users.Add(proc.User{Name: "cs352ta", UID: TAUID, GID: TAUID})
	must(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
	must(k.FS.WriteFile("/etc/passwd", []byte("root:x:0:0:root:/:/bin/sh\nalice:x:100:100::/home/alice:/bin/sh\n"), 0o644, 0, 0))
	must(k.FS.WriteFile("/etc/shadow", []byte("root:$1$SECRETHASH$abcdef:10000:\nalice:$1$STUDENThash$:10000:\n"), 0o600, 0, 0))
	must(k.FS.MkdirAll("/", "/usr/local/lib", 0o755, 0, 0))
	must(k.FS.WriteFile(ConfigPath, []byte("cs101 /u/cs101\ncs352 "+CourseRoot+"\n"), 0o644, 0, 0))
	must(k.FS.MkdirAll("/", CourseRoot, 0o755, TAUID, TAUID))
	must(k.FS.WriteFile(Projlist, []byte("assignment1\nassignment2\n"), 0o644, TAUID, TAUID))
	must(k.FS.MkdirAll("/", SubmitDir, 0o700, TAUID, TAUID))
	must(k.FS.WriteFile(CourseRoot+"/.login", []byte("setenv SHELL /bin/csh\n"), 0o644, TAUID, TAUID))
	must(k.FS.MkdirAll("/", "/home/alice", 0o755, InvokerUID, InvokerUID))
	must(k.FS.WriteFile("/home/alice/hw1.c", []byte("int main(void){return 42;}\n"), 0o644, InvokerUID, InvokerUID))
	must(k.FS.MkdirAll("/", "/tmp", 0o777, 0, 0))
	// The attacker's staged course root.
	must(k.FS.MkdirAll("/", StagedRoot, 0o755, InvokerUID, InvokerUID))
	if _, err := k.FS.Symlink("/", "/etc/shadow", StagedRoot+"/Projlist", InvokerUID, InvokerUID); err != nil {
		panic(err)
	}
	must(k.FS.WriteFile(StagedRoot+"/turnin.cf", []byte("cs352 "+StagedRoot+"\n"), 0o644, InvokerUID, InvokerUID))
	return k, inject.Launch{
		Cred: proc.Cred{UID: InvokerUID, GID: InvokerUID, EUID: 0, EGID: 0}, // set-UID root
		Env:  proc.NewEnv("PATH", "/usr/bin:/bin", "HOME", "/home/alice"),
		Cwd:  "/home/alice",
		Args: []string{"turnin", "-c", "cs352", "-p", "assignment1", "hw1.c"},
	}
})

// Sites are the paper's "8 interaction places where programmers could
// possibly have made assumptions about the environment".
func Sites() []string {
	return []string{
		"turnin:open-config",
		"turnin:read-config",
		"turnin:open-projlist",
		"turnin:read-projlist",
		"turnin:arg-project",
		"turnin:stat-submitdir",
		"turnin:arg-file",
		"turnin:create-dest",
	}
}

// Campaign returns the Section 4.1 campaign: 8 interaction places, 41
// perturbations, 9 violations against the vulnerable program.
func Campaign(prog kernel.Program) inject.Campaign {
	return inject.Campaign{
		Name:  "turnin",
		World: World(prog),
		Policy: policy.Policy{
			Invoker:  proc.NewCred(InvokerUID, InvokerUID),
			Attacker: proc.NewCred(InvokerUID, InvokerUID),
			// The program may legitimately write only the active
			// project's drop directory.
			TrustedWritePaths: []string{SubmitDir + "/assignment1"},
		},
		Faults: eai.Config{
			Attacker: proc.NewCred(InvokerUID, InvokerUID),
			// The malicious course-root payload for content perturbations
			// of the trusted config.
			AttackerContent: []byte("cs352 " + StagedRoot + "\n"),
			// A read-context symlink on the trusted config points at the
			// attacker's staged copy rather than at /etc/shadow directly
			// (shadow would fail to parse as a config).
			ReadTargetOverrides: map[string]string{
				ConfigPath: StagedRoot + "/turnin.cf",
			},
		},
		Sites: Sites(),
		Semantics: map[string]eai.Semantic{
			"turnin:read-config":   eai.SemFileName,
			"turnin:read-projlist": eai.SemFileName,
			"turnin:arg-project":   eai.SemFileName,
			"turnin:arg-file":      eai.SemFileName,
		},
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
