package turnin

import (
	"strings"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
)

func TestCleanRunSubmits(t *testing.T) {
	t.Parallel()
	k, l := World(Vulnerable)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	exit, crash := k.Run(p, l.Prog)
	if crash != nil {
		t.Fatalf("clean run crashed: %v", crash)
	}
	if exit != 0 {
		t.Fatalf("clean run exit = %d, stderr = %s", exit, p.Stderr.String())
	}
	if !strings.Contains(p.Stdout.String(), "Submitted hw1.c") {
		t.Errorf("stdout = %q", p.Stdout.String())
	}
	data, err := k.FS.ReadFile(SubmitDir + "/assignment1/hw1.c")
	if err != nil || !strings.Contains(string(data), "int main") {
		t.Errorf("submission = %q, %v", data, err)
	}
}

func TestCleanRunFixedSubmits(t *testing.T) {
	t.Parallel()
	k, l := World(Fixed)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	exit, crash := k.Run(p, l.Prog)
	if crash != nil || exit != 0 {
		t.Fatalf("fixed clean run: exit %d, crash %v, stderr %s", exit, crash, p.Stderr.String())
	}
}

// TestSection41Numbers pins the reproduction to the paper's Section 4.1
// results: 8 interaction places perturbed, 41 environment perturbations,
// 9 violations.
func TestSection41Numbers(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(Campaign(Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.PerturbedSites); got != 8 {
		t.Errorf("interaction places = %d, want 8 (%v)", got, res.PerturbedSites)
	}
	if got := len(res.Injections); got != 41 {
		t.Errorf("perturbations = %d, want 41", got)
		for _, in := range res.Injections {
			t.Logf("  %s %s", in.Point, in.FaultID)
		}
	}
	if got := res.Metric().Violations(); got != 9 {
		t.Errorf("violations = %d, want 9", got)
		for _, in := range res.Violations() {
			t.Logf("  %s %s -> %v", in.Point, in.FaultID, in.Violations)
		}
	}
}

// TestProjlistLeak reproduces the paper's exploited vulnerability: with
// Projlist unreadable to the invoker (or symlinked to /etc/shadow), the
// set-UID turnin prints contents the user must not see.
func TestProjlistLeak(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"turnin:open-projlist"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	var permLeak, symlinkLeak bool
	for _, in := range res.Injections {
		for _, v := range in.Violations {
			if v.Kind != policy.KindConfidentiality {
				continue
			}
			switch in.Attr {
			case eai.AttrPermission:
				permLeak = true
			case eai.AttrSymlink:
				if v.Object == "/etc/shadow" {
					symlinkLeak = true
				}
			}
		}
	}
	if !permLeak {
		t.Error("permission perturbation did not leak Projlist (the paper's first scenario)")
	}
	if !symlinkLeak {
		t.Error("symlink perturbation did not leak /etc/shadow (the paper's TA scenario)")
	}
}

// TestDotDotEscape reproduces the second exploited vulnerability: "../" in
// a submitted file name escapes the project drop directory.
func TestDotDotEscape(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"turnin:arg-file"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	escaped := false
	for _, in := range res.Injections {
		if !strings.HasSuffix(in.FaultID, "insert-dotdot") {
			continue
		}
		for _, v := range in.Violations {
			if v.Kind == policy.KindIntegrity && strings.HasPrefix(v.Object, SubmitDir) &&
				!strings.HasPrefix(v.Object, SubmitDir+"/assignment1") {
				escaped = true
			}
		}
	}
	if !escaped {
		t.Error(`"../" file name did not escape the drop directory`)
		for _, in := range res.Injections {
			t.Logf("  %s %s -> %v", in.Point, in.FaultID, in.Violations)
		}
	}
	// The leading-slash variants must be rejected by turnin's own check.
	for _, in := range res.Injections {
		if strings.HasSuffix(in.FaultID, "insert-slash") ||
			strings.HasSuffix(in.FaultID, "use-absolute-path") {
			if !in.Tolerated() {
				t.Errorf("%s should be rejected by the '/' check: %v", in.FaultID, in.Violations)
			}
		}
	}
}

// TestTrustedConfigPerturbation reproduces the turnin.cf finding: if the
// trusted config assumption fails, security is violated.
func TestTrustedConfigPerturbation(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"turnin:open-config"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	byAttr := map[eai.Attr]bool{}
	for _, in := range res.Injections {
		if !in.Tolerated() {
			byAttr[in.Attr] = true
		}
	}
	if !byAttr[eai.AttrContentInvariance] {
		t.Error("content perturbation of turnin.cf tolerated; redirection must leak")
	}
	if !byAttr[eai.AttrSymlink] {
		t.Error("symlink perturbation of turnin.cf tolerated")
	}
}

// TestBufferOverflows: the overlong-input perturbations crash the
// vulnerable turnin at its unchecked copies.
func TestBufferOverflows(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"turnin:read-config", "turnin:read-projlist"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for _, in := range res.Injections {
		if in.CrashMsg != "" {
			crashes++
			if !strings.HasSuffix(in.FaultID, "change-length") {
				t.Errorf("unexpected crash from %s", in.FaultID)
			}
		}
	}
	if crashes != 2 {
		t.Errorf("crashes = %d, want 2 (config path + projlist line)", crashes)
	}
}

// TestFixedTurninToleratesAll: after the repairs, the same 41-fault
// campaign is fully tolerated — fault coverage 1.0.
func TestFixedTurninToleratesAll(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(Campaign(Fixed))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Injections {
		if !in.Tolerated() {
			t.Errorf("fixed turnin violated under %s at %s: %v", in.FaultID, in.Point, in.Violations)
		}
	}
	if fc := res.Metric().FaultCoverage(); fc != 1 {
		t.Errorf("fixed fault coverage = %v, want 1.0", fc)
	}
}

// TestViolationsBySite checks the distribution of the 9 violations across
// the 8 perturbed places.
func TestViolationsBySite(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(Campaign(Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for site, injs := range res.ViolationsBySite() {
		got[site] = len(injs)
	}
	want := map[string]int{
		"turnin:open-config":    2, // content + symlink redirection
		"turnin:read-config":    1, // overlong path crash
		"turnin:open-projlist":  2, // permission leak + shadow symlink leak
		"turnin:read-projlist":  1, // overlong line crash
		"turnin:stat-submitdir": 1, // directory symlinked to /etc
		"turnin:arg-file":       1, // ../ escape
		"turnin:create-dest":    1, // destination symlinked to /etc/passwd
	}
	for site, n := range want {
		if got[site] != n {
			t.Errorf("%s violations = %d, want %d", site, got[site], n)
		}
	}
	if got["turnin:arg-project"] != 0 {
		t.Errorf("arg-project should tolerate all faults (validated input), got %d", got["turnin:arg-project"])
	}
}
