package ftpget

import (
	"strings"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
)

func TestCleanRun(t *testing.T) {
	t.Parallel()
	k, l := World(Vulnerable)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	exit, crash := k.Run(p, l.Prog)
	if crash != nil || exit != 0 {
		t.Fatalf("clean run: exit %d, crash %v, stderr %s", exit, crash, p.Stderr.String())
	}
	data, err := k.FS.ReadFile(DownloadDir + "/hw.dat")
	if err != nil || !strings.Contains(string(data), "payload") {
		t.Errorf("download = %q, %v", data, err)
	}
}

func TestCleanRunFixed(t *testing.T) {
	t.Parallel()
	k, l := World(Fixed)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	exit, crash := k.Run(p, l.Prog)
	if crash != nil || exit != 0 {
		t.Fatalf("fixed clean run: exit %d, crash %v, stderr %s", exit, crash, p.Stderr.String())
	}
}

// TestNetworkEntityFaults: all five Table 6 network attributes are
// planned at the connect site.
func TestNetworkEntityFaults(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"ftpget:connect"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[eai.Attr]bool{}
	for _, in := range res.Injections {
		attrs[in.Attr] = true
	}
	for _, want := range []eai.Attr{
		eai.AttrMsgAuthenticity, eai.AttrProtocol, eai.AttrSocketShare,
		eai.AttrServiceAvail, eai.AttrTrustability,
	} {
		if !attrs[want] {
			t.Errorf("missing network attribute %v", want)
		}
	}
}

// TestAuthenticityViolation: the vulnerable client acts on forged input.
func TestAuthenticityViolation(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(Campaign(Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	var authBad, trustBad bool
	for _, in := range res.Injections {
		for _, v := range in.Violations {
			if v.Kind != policy.KindUntrustedInput {
				continue
			}
			switch in.Attr {
			case eai.AttrMsgAuthenticity:
				authBad = true
			case eai.AttrTrustability:
				trustBad = true
			}
		}
	}
	if !authBad {
		t.Error("forged messages tolerated by vulnerable client")
	}
	if !trustBad {
		t.Error("untrusted peer tolerated by vulnerable client")
	}
}

// TestBannerOverflow: the change-size packet perturbation crashes the
// unchecked banner copy.
func TestBannerOverflow(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"ftpget:recv-banner"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	crashed := false
	for _, in := range res.Injections {
		if strings.HasSuffix(in.FaultID, "change-size") && in.CrashMsg != "" {
			crashed = true
		}
	}
	if !crashed {
		t.Error("oversized banner did not crash the vulnerable client")
	}
}

// TestServiceAvailability: denying the service is tolerated — the client
// errors out without a violation, which is correct behaviour.
func TestServiceAvailability(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"ftpget:connect"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Injections {
		if in.Attr == eai.AttrServiceAvail {
			if !in.Tolerated() {
				t.Errorf("availability fault should be tolerated: %v", in.Violations)
			}
			if in.Exit == 0 {
				t.Error("client reported success with service denied")
			}
		}
	}
}

// TestDNSPerturbations: malformed DNS replies are tolerated by failing
// closed.
func TestDNSPerturbations(t *testing.T) {
	t.Parallel()
	c := Campaign(Vulnerable)
	c.Sites = []string{"ftpget:dns"}
	res, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Injections) == 0 {
		t.Fatal("no DNS injections")
	}
	for _, in := range res.Injections {
		if in.Sem != eai.SemDNSReply {
			t.Errorf("sem = %v", in.Sem)
		}
		if !in.Tolerated() {
			t.Errorf("DNS fault %s caused violation: %v", in.FaultID, in.Violations)
		}
	}
}

// TestFixedClientTolerates: the repaired client tolerates the full
// campaign.
func TestFixedClientTolerates(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(Campaign(Fixed))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Injections {
		if !in.Tolerated() {
			t.Errorf("fixed ftpget violated under %s at %s: %v", in.FaultID, in.Point, in.Violations)
		}
	}
	if fc := res.Metric().FaultCoverage(); fc != 1 {
		t.Errorf("fixed fault coverage = %v", fc)
	}
}

// TestVulnerableCoverageBelowFixed: the headline comparison.
func TestVulnerableCoverageBelowFixed(t *testing.T) {
	t.Parallel()
	vuln, err := inject.Run(Campaign(Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	if vuln.Metric().FaultCoverage() >= 1 {
		t.Error("vulnerable client has perfect fault coverage")
	}
}
