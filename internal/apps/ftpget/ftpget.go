// Package ftpget is a file-transfer client exercising the network rows of
// the EAI model: DNS replies, packet inputs, and the Table 6 network
// entity attributes (availability, trustability, authenticity, protocol,
// socket sharing). The vulnerable variant trusts the server completely —
// its provenance, its banner length, and the file name it supplies.
package ftpget

import (
	"strings"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/sim/kernel"
	"repro/internal/sim/netsim"
	"repro/internal/sim/proc"
)

// SourceVersion identifies this package's world builder and program
// variants for source-level result caching: it becomes part of every
// campaign's inject.Campaign.Source identity (see apps.SuiteJobs).
// Bump it whenever the world construction or a program variant changes
// behaviour, or stale cached results will replay for the old code.
const SourceVersion = "1"

// World identities and landmarks.
const (
	InvokerUID  = 100
	AttackerUID = 666

	MirrorHost = "mirror.example"
	MirrorAddr = "10.7.0.2"
	MirrorPort = ":21"

	DownloadDir = "/home/alice/downloads"
)

// Vulnerable fetches the advertised file: resolve, connect, read the
// banner into a fixed buffer, accept the server-chosen file name, save the
// payload.
func Vulnerable(p *kernel.Proc) int {
	addr, err := p.DNSLookup("ftpget:dns", MirrorHost)
	if err != nil {
		p.Eprintf("ftpget: cannot resolve %s: %v\n", MirrorHost, err)
		return 1
	}
	conn, err := p.Connect("ftpget:connect", addr+MirrorPort)
	if err != nil {
		p.Eprintf("ftpget: connect failed: %v\n", err)
		return 1
	}

	banner, err := p.Recv("ftpget:recv-banner", conn)
	if err != nil {
		p.Eprintf("ftpget: no banner\n")
		return 1
	}
	// Unchecked copy of the banner into a fixed buffer.
	var bannerBuf [256]byte
	n := p.CopyBounded(bannerBuf[:], banner.Data)
	if !strings.HasPrefix(string(bannerBuf[:n]), "220") {
		p.Eprintf("ftpget: unexpected banner\n")
		return 1
	}

	if err := p.Send("ftpget:send-retr", conn, []byte("RETR latest")); err != nil {
		p.Eprintf("ftpget: RETR failed: %v\n", err)
		return 1
	}
	nameMsg, err := p.Recv("ftpget:recv-name", conn)
	if err != nil {
		p.Eprintf("ftpget: no name\n")
		return 1
	}
	name := strings.TrimSpace(string(nameMsg.Data))
	if name == "" {
		return 1
	}
	data, err := p.Recv("ftpget:recv-data", conn)
	if err != nil {
		p.Eprintf("ftpget: no data\n")
		return 1
	}

	// Server-chosen name, used verbatim.
	f, err := p.Create("ftpget:create-local", DownloadDir+"/"+name, 0o644)
	if err != nil {
		p.Eprintf("ftpget: cannot save %s: %v\n", name, err)
		return 1
	}
	defer p.Close(f)
	if _, err := p.Write("ftpget:write-local", f, data.Data); err != nil {
		return 1
	}
	p.Printf("saved %s (%d bytes)\n", name, len(data.Data))
	return 0
}

// Fixed verifies the peer's trustability and every message's
// authenticity, bounds the banner, and takes only the base name of the
// server-supplied file name.
func Fixed(p *kernel.Proc) int {
	addr, err := p.DNSLookup("ftpget:dns", MirrorHost)
	if err != nil || !validAddr(addr) {
		p.Eprintf("ftpget: bad resolution for %s\n", MirrorHost)
		return 1
	}
	conn, err := p.Connect("ftpget:connect", addr+MirrorPort)
	if err != nil {
		p.Eprintf("ftpget: connect failed: %v\n", err)
		return 1
	}
	if svc := conn.Service(); svc == nil || !svc.Trusted {
		p.Eprintf("ftpget: refusing untrusted mirror\n")
		return 1
	}

	banner, err := p.Recv("ftpget:recv-banner", conn)
	if err != nil || !banner.Authentic || len(banner.Data) > 256 {
		p.Eprintf("ftpget: banner rejected\n")
		return 1
	}
	if !strings.HasPrefix(string(banner.Data), "220") {
		p.Eprintf("ftpget: unexpected banner\n")
		return 1
	}

	if err := p.Send("ftpget:send-retr", conn, []byte("RETR latest")); err != nil {
		return 1
	}
	nameMsg, err := p.Recv("ftpget:recv-name", conn)
	if err != nil || !nameMsg.Authentic {
		p.Eprintf("ftpget: name rejected\n")
		return 1
	}
	name := strings.TrimSpace(string(nameMsg.Data))
	// Base name only; never trust server-supplied directories.
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	if name == "" || name == "." || name == ".." || len(name) > 128 || !printable(name) {
		p.Eprintf("ftpget: illegal remote name\n")
		return 1
	}
	data, err := p.Recv("ftpget:recv-data", conn)
	if err != nil || !data.Authentic {
		p.Eprintf("ftpget: data rejected\n")
		return 1
	}

	f, err := p.Open("ftpget:create-local", DownloadDir+"/"+name,
		kernel.OWrite|kernel.OCreate|kernel.OExcl, 0o644)
	if err != nil {
		p.Eprintf("ftpget: cannot save %s: %v\n", name, err)
		return 1
	}
	defer p.Close(f)
	if _, err := p.Write("ftpget:write-local", f, data.Data); err != nil {
		return 1
	}
	p.Printf("saved %s (%d bytes)\n", name, len(data.Data))
	return 0
}

func validAddr(a string) bool {
	if len(a) == 0 || len(a) > 15 {
		return false
	}
	for i := 0; i < len(a); i++ {
		if a[i] != '.' && (a[i] < '0' || a[i] > '9') {
			return false
		}
	}
	return true
}

func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

// World stages the mirror service with its three-message script and the
// download directory.
func World(prog kernel.Program) inject.Factory {
	return image.FactoryWith(func(l inject.Launch) inject.Launch {
		l.Prog = prog
		return l
	})
}

// image memoizes the variant-independent ftpget world; runs fork it
// copy-on-write (the network script is deep-cloned per fork).
var image = inject.NewWorldImage(func() (*kernel.Kernel, inject.Launch) {
	k := kernel.New()
	k.Users.Add(proc.User{Name: "alice", UID: InvokerUID, GID: InvokerUID})
	k.Users.Add(proc.User{Name: "mallory", UID: AttackerUID, GID: AttackerUID})
	must(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
	must(k.FS.WriteFile("/etc/shadow", []byte("root:$1$FTPHASH$:1:\n"), 0o600, 0, 0))
	must(k.FS.MkdirAll("/", DownloadDir, 0o755, InvokerUID, InvokerUID))
	must(k.FS.MkdirAll("/", "/tmp", 0o777, 0, 0))
	k.Net = netsim.New()
	k.Net.AddDNS(MirrorHost, MirrorAddr)
	k.Net.AddService(&netsim.Service{
		Addr: MirrorAddr + MirrorPort, Host: MirrorHost,
		Available: true, Trusted: true,
		Script: []netsim.Message{
			{From: MirrorHost, Data: []byte("220 mirror ready"), Authentic: true},
			{From: MirrorHost, Data: []byte("hw.dat"), Authentic: true},
			{From: MirrorHost, Data: []byte("payload-bytes-of-hw.dat"), Authentic: true},
		},
		Steps: []string{"RETR"},
	})
	return k, inject.Launch{
		Cred: proc.NewCred(InvokerUID, InvokerUID),
		Env:  proc.NewEnv("PATH", "/usr/bin"),
		Cwd:  "/home/alice",
		Args: []string{"ftpget", MirrorHost, "latest"},
	}
})

// Campaign perturbs the client's network surface.
func Campaign(prog kernel.Program) inject.Campaign {
	return inject.Campaign{
		Name:  "ftpget",
		World: World(prog),
		Policy: policy.Policy{
			Invoker:           proc.NewCred(InvokerUID, InvokerUID),
			Attacker:          proc.NewCred(AttackerUID, AttackerUID),
			TrustedWritePaths: []string{DownloadDir},
		},
		Faults: eai.Config{Attacker: proc.NewCred(AttackerUID, AttackerUID)},
		Sites: []string{
			"ftpget:dns",
			"ftpget:connect",
			"ftpget:recv-banner",
			"ftpget:recv-name",
			"ftpget:recv-data",
		},
		Semantics: map[string]eai.Semantic{
			"ftpget:recv-name": eai.SemFileName,
		},
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
