// Package apps registers every target application's fault-injection
// campaign under a stable name, for the CLIs and examples.
package apps

import (
	"fmt"
	"sort"

	"repro/internal/apps/ftpget"
	"repro/internal/apps/lpr"
	"repro/internal/apps/maildrop"
	"repro/internal/apps/ntreg"
	"repro/internal/apps/turnin"
	"repro/internal/apps/untar"
	"repro/internal/core/inject"
	"repro/internal/core/sched"
)

// Spec is one selectable campaign.
type Spec struct {
	Name string
	// Paper locates the campaign in the paper.
	Paper string
	// Source is the campaign's versioned source identity — the app
	// package plus its SourceVersion — which SuiteJobs stamps onto the
	// built campaigns (suffixed with the variant) so the result store
	// can replay them without re-executing even the clean run.
	Source string
	// Vulnerable and Fixed build the two variants.
	Vulnerable func() inject.Campaign
	Fixed      func() inject.Campaign
}

// Catalog returns every registered campaign, sorted by name.
func Catalog() []Spec {
	specs := []Spec{
		{
			Name:       "lpr",
			Source:     "lpr@" + lpr.SourceVersion,
			Paper:      "Section 3.4 (BSD lpr walk-through)",
			Vulnerable: func() inject.Campaign { return lpr.Campaign(lpr.Vulnerable) },
			Fixed:      func() inject.Campaign { return lpr.Campaign(lpr.Fixed) },
		},
		{
			Name:       "lpr-create-site",
			Source:     "lpr-create-site@" + lpr.SourceVersion,
			Paper:      "Section 3.4 (create interaction point only)",
			Vulnerable: func() inject.Campaign { return lpr.CreateSiteCampaign(lpr.Vulnerable) },
			Fixed:      func() inject.Campaign { return lpr.CreateSiteCampaign(lpr.Fixed) },
		},
		{
			Name:       "turnin",
			Source:     "turnin@" + turnin.SourceVersion,
			Paper:      "Section 4.1 (Purdue turnin: 8 places, 41 perturbations, 9 violations)",
			Vulnerable: func() inject.Campaign { return turnin.Campaign(turnin.Vulnerable) },
			Fixed:      func() inject.Campaign { return turnin.Campaign(turnin.Fixed) },
		},
		{
			Name:       "ntreg-fontclean",
			Source:     "ntreg-fontclean@" + ntreg.SourceVersion,
			Paper:      "Section 4.2 (font-key file deletion)",
			Vulnerable: func() inject.Campaign { return ntreg.FontCleanCampaign(ntreg.FontClean) },
			Fixed:      func() inject.Campaign { return ntreg.FontCleanCampaign(ntreg.FontCleanFixed) },
		},
		{
			Name:       "ntreg-scrsave",
			Source:     "ntreg-scrsave@" + ntreg.SourceVersion,
			Paper:      "Section 4.2 (launcher keys)",
			Vulnerable: func() inject.Campaign { return ntreg.ScrSaveCampaign(ntreg.ScrSave) },
			Fixed:      func() inject.Campaign { return ntreg.ScrSaveCampaign(ntreg.ScrSaveFixed) },
		},
		{
			Name:       "ntreg-updater",
			Source:     "ntreg-updater@" + ntreg.SourceVersion,
			Paper:      "Section 4.2 (updater keys)",
			Vulnerable: func() inject.Campaign { return ntreg.UpdaterCampaign(ntreg.Updater) },
			Fixed:      func() inject.Campaign { return ntreg.UpdaterCampaign(ntreg.UpdaterFixed) },
		},
		{
			Name:       "ntreg-logond",
			Source:     "ntreg-logond@" + ntreg.SourceVersion,
			Paper:      "Section 4.2 (logon profile trustability)",
			Vulnerable: func() inject.Campaign { return ntreg.LogondCampaign(ntreg.Logond) },
			Fixed:      func() inject.Campaign { return ntreg.LogondCampaign(ntreg.LogondFixed) },
		},
		{
			Name:       "maildrop",
			Source:     "maildrop@" + maildrop.SourceVersion,
			Paper:      "Table 5 environment-variable rows (PATH, permission mask)",
			Vulnerable: func() inject.Campaign { return maildrop.Campaign(maildrop.Vulnerable) },
			Fixed:      func() inject.Campaign { return maildrop.Campaign(maildrop.Fixed) },
		},
		{
			Name:       "ftpget",
			Source:     "ftpget@" + ftpget.SourceVersion,
			Paper:      "Table 6 network entity rows",
			Vulnerable: func() inject.Campaign { return ftpget.Campaign(ftpget.Vulnerable) },
			Fixed:      func() inject.Campaign { return ftpget.Campaign(ftpget.Fixed) },
		},
		{
			Name:       "untar",
			Source:     "untar@" + untar.SourceVersion,
			Paper:      "Section 4.1 (extraction side of the \"../\" submission attack)",
			Vulnerable: func() inject.Campaign { return untar.Campaign(untar.Vulnerable) },
			Fixed:      func() inject.Campaign { return untar.Campaign(untar.Fixed) },
		},
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// Lookup finds a campaign by name.
func Lookup(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("apps: unknown campaign %q", name)
}

// SuiteJobs returns the scheduler job list for the whole catalog: every
// campaign in both variants, in catalog order — the workload of
// `eptest -all` and the suite benchmarks.
func SuiteJobs() []sched.Job {
	var jobs []sched.Job
	for _, spec := range Catalog() {
		jobs = append(jobs,
			sched.Job{Name: spec.Name, Variant: "vulnerable", Build: sourced(spec, "vulnerable", spec.Vulnerable)},
			sched.Job{Name: spec.Name, Variant: "fixed", Build: sourced(spec, "fixed", spec.Fixed)},
		)
	}
	return jobs
}

// sourced wraps a campaign builder so the built campaign carries its
// versioned source identity, enabling source-level cache replays that
// skip the clean run (see inject.SourceFingerprint).
func sourced(spec Spec, variant string, build func() inject.Campaign) func() inject.Campaign {
	return func() inject.Campaign {
		c := build()
		c.Source = spec.Source + "/" + variant
		return c
	}
}

// Names returns the registered campaign names.
func Names() []string {
	specs := Catalog()
	names := make([]string, 0, len(specs))
	for _, s := range specs {
		names = append(names, s.Name)
	}
	return names
}
