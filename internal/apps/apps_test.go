package apps

import (
	"strings"
	"testing"

	"repro/internal/core/inject"
)

func TestCatalogComplete(t *testing.T) {
	t.Parallel()
	specs := Catalog()
	if len(specs) != 10 {
		t.Fatalf("catalog has %d campaigns", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.Paper == "" || s.Vulnerable == nil || s.Fixed == nil {
			t.Errorf("incomplete spec %+v", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		seen[s.Name] = true
	}
	// Sorted.
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestLookup(t *testing.T) {
	t.Parallel()
	s, err := Lookup("turnin")
	if err != nil || s.Name != "turnin" {
		t.Fatalf("Lookup = %+v, %v", s, err)
	}
	if _, err := Lookup("missing"); err == nil || !strings.Contains(err.Error(), "unknown campaign") {
		t.Errorf("err = %v", err)
	}
}

// TestEveryCampaignRuns is the catalog-wide smoke test: every registered
// campaign plans and runs in both variants, vulnerable variants find at
// least one violation, and fixed variants tolerate everything.
func TestEveryCampaignRuns(t *testing.T) {
	t.Parallel()
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			vuln, err := inject.Run(spec.Vulnerable())
			if err != nil {
				t.Fatalf("vulnerable: %v", err)
			}
			if vuln.Metric().FaultsInjected == 0 {
				t.Error("vulnerable campaign injected nothing")
			}
			if vuln.Metric().Violations() == 0 {
				t.Error("vulnerable campaign found no violations")
			}
			fixed, err := inject.Run(spec.Fixed())
			if err != nil {
				t.Fatalf("fixed: %v", err)
			}
			for _, in := range fixed.Injections {
				if !in.Tolerated() {
					t.Errorf("fixed variant violated under %s at %s: %v",
						in.FaultID, in.Point, in.Violations)
				}
			}
		})
	}
}

// TestPlansAreStable: planning is deterministic — two plans of the same
// campaign agree exactly.
func TestPlansAreStable(t *testing.T) {
	t.Parallel()
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			a, err := inject.Plan(spec.Vulnerable())
			if err != nil {
				t.Fatal(err)
			}
			b, err := inject.Plan(spec.Vulnerable())
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("plan lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("plan[%d] differs: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}
