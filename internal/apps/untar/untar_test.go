package untar

import (
	"strings"
	"testing"

	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/sim/archive"
	"repro/internal/sim/kernel"
)

func TestCleanExtraction(t *testing.T) {
	t.Parallel()
	k, l := World(Vulnerable)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	exit, crash := k.Run(p, l.Prog)
	if crash != nil || exit != 0 {
		t.Fatalf("clean run: exit %d, crash %v, stderr %s", exit, crash, p.Stderr.String())
	}
	for _, f := range []string{GradingDir + "/hw1.c", GradingDir + "/docs/README"} {
		if !k.FS.Exists(f) {
			t.Errorf("%s not extracted", f)
		}
	}
	// The TA's login script is untouched.
	data, err := k.FS.ReadFile(LoginScript)
	if err != nil || !strings.Contains(string(data), "csh") {
		t.Errorf(".login = %q, %v", data, err)
	}
}

func TestCleanExtractionFixed(t *testing.T) {
	t.Parallel()
	k, l := World(Fixed)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	exit, crash := k.Run(p, l.Prog)
	if crash != nil || exit != 0 {
		t.Fatalf("fixed clean run: exit %d, crash %v, stderr %s", exit, crash, p.Stderr.String())
	}
}

// TestDirectMaliciousSubmission replays the paper's scenario without the
// engine: the student's archive carries "../.login".
func TestDirectMaliciousSubmission(t *testing.T) {
	t.Parallel()
	k, l := World(Vulnerable)()
	if err := k.FS.WriteFile(Submission, MaliciousArchive(), 0o600, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	_, crash := k.Run(p, l.Prog)
	// The overwrite lands before the overlong member crashes the parser.
	data, err := k.FS.ReadFile(LoginScript)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "evil") {
		t.Errorf(".login = %q; the ../ member must overwrite it", data)
	}
	if crash == nil {
		t.Error("overlong member name did not crash the unchecked copy")
	}
}

// TestCampaignFindsBoth: the EAI campaign discovers the same two failures
// via the content-invariance perturbation of the stored submission.
func TestCampaignFindsBoth(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(Campaign(Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	var sawEscape, sawCrash bool
	for _, in := range res.Violations() {
		for _, v := range in.Violations {
			switch v.Kind {
			case policy.KindIntegrity:
				if v.Object == LoginScript {
					sawEscape = true
				}
			case policy.KindCrash:
				sawCrash = true
			}
		}
	}
	if !sawEscape {
		t.Error("campaign missed the ../.login overwrite")
		for _, in := range res.Injections {
			t.Logf("  %s %s -> %v", in.Point, in.FaultID, in.Violations)
		}
	}
	if !sawCrash {
		t.Error("campaign missed the member-name overflow")
	}
}

// TestFixedExtractorTolerates: the repaired extractor refuses the hostile
// members and survives the whole campaign.
func TestFixedExtractorTolerates(t *testing.T) {
	t.Parallel()
	res, err := inject.Run(Campaign(Fixed))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Injections {
		if !in.Tolerated() {
			t.Errorf("fixed untar violated under %s: %v", in.FaultID, in.Violations)
		}
	}
	// And concretely: the malicious archive extracts nothing hostile.
	k, l := World(Fixed)()
	if err := k.FS.WriteFile(Submission, MaliciousArchive(), 0o600, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	if _, crash := k.Run(p, l.Prog); crash != nil {
		t.Fatalf("fixed extractor crashed: %v", crash)
	}
	data, err := k.FS.ReadFile(LoginScript)
	if err != nil || strings.Contains(string(data), "evil") {
		t.Errorf(".login = %q, %v", data, err)
	}
	if !strings.Contains(p.Stderr.String(), "refusing member") {
		t.Errorf("stderr = %q", p.Stderr.String())
	}
}

// TestAbsoluteMemberRejectedByBoth: both variants implement the original's
// leading-slash check.
func TestAbsoluteMemberRejectedByBoth(t *testing.T) {
	t.Parallel()
	for name, prog := range map[string]kernel.Program{"vulnerable": Vulnerable, "fixed": Fixed} {
		prog := prog
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, l := World(prog)()
			// A purely absolute-path archive.
			abs := archive.Pack([]archive.Entry{
				{Name: "/etc/shadow", Mode: 0o644, Data: []byte("owned")},
			})
			if err := k.FS.WriteFile(Submission, abs, 0o600, 0, 0); err != nil {
				t.Fatal(err)
			}
			p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
			k.Run(p, l.Prog)
			if !strings.Contains(p.Stderr.String(), "refusing absolute member") {
				t.Errorf("stderr = %q", p.Stderr.String())
			}
			if data, _ := k.FS.ReadFile("/etc/shadow"); !strings.Contains(string(data), "TARHASH") {
				t.Error("/etc/shadow modified")
			}
		})
	}
}
