// Package untar is the extraction side of the paper's second turnin
// exploit: "when his TA unpacks the submitted file, the TA's .login will
// be overwritten by the student's malicious .login file". The extractor
// runs with the TA's authority over an archive whose member names the
// student chose; the vulnerable variant trusts those names (rejecting only
// a leading "/", as the original did) and copies them through an unchecked
// fixed buffer.
package untar

import (
	"strings"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/sim/archive"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
)

// SourceVersion identifies this package's world builder and program
// variants for source-level result caching: it becomes part of every
// campaign's inject.Campaign.Source identity (see apps.SuiteJobs).
// Bump it whenever the world construction or a program variant changes
// behaviour, or stale cached results will replay for the old code.
const SourceVersion = "1"

// World identities and landmarks.
const (
	TAUID      = 200 // the invoker: the TA unpacking a submission
	StudentUID = 100 // the attacker: author of the archive

	TAHome      = "/u/cs352"
	GradingDir  = TAHome + "/grading"
	Submission  = TAHome + "/submit/assignment1/sub.epar"
	LoginScript = TAHome + "/.login"
)

// Vulnerable extracts every member into the working directory using the
// member name verbatim (minus a leading-slash check), through a 100-byte
// name buffer.
func Vulnerable(p *kernel.Proc) int { return run(p, false) }

// Fixed rejects "..", absolute names, and overlong names, and refuses to
// replace existing files.
func Fixed(p *kernel.Proc) int { return run(p, true) }

func run(p *kernel.Proc, fixed bool) int {
	src := p.Arg("untar:arg-archive", 1)
	if src == "" {
		p.Eprintf("untar: no archive named\n")
		return 2
	}
	f, err := p.Open("untar:open-archive", src, kernel.ORead, 0)
	if err != nil {
		p.Eprintf("untar: cannot open %s: %v\n", src, err)
		return 1
	}
	blob, err := p.ReadAll("untar:read-archive", f)
	p.Close(f)
	if err != nil {
		p.Eprintf("untar: read error: %v\n", err)
		return 1
	}
	entries, err := archive.Unpack(blob)
	if err != nil {
		p.Eprintf("untar: bad archive: %v\n", err)
		return 1
	}
	for _, e := range entries {
		name := e.Name
		if strings.HasPrefix(name, "/") {
			p.Eprintf("untar: refusing absolute member %q\n", name)
			continue
		}
		if fixed {
			if strings.Contains(name, "..") || len(name) > 100 || name == "" {
				p.Eprintf("untar: refusing member %q\n", name)
				continue
			}
		} else {
			// Unchecked strcpy of the member name into a fixed buffer —
			// and no ".." check.
			var nameBuf [100]byte
			n := p.CopyBounded(nameBuf[:], []byte(name))
			name = string(nameBuf[:n])
		}
		if i := strings.LastIndex(name, "/"); i > 0 {
			if err := mkdirAll(p, name[:i]); err != nil {
				p.Eprintf("untar: %v\n", err)
				continue
			}
		}
		flags := kernel.OWrite | kernel.OCreate | kernel.OTrunc
		if fixed {
			flags = kernel.OWrite | kernel.OCreate | kernel.OExcl
		}
		out, err := p.Open("untar:create-member", name, flags, e.Mode)
		if err != nil {
			p.Eprintf("untar: cannot extract %q: %v\n", name, err)
			continue
		}
		if _, err := p.Write("untar:write-member", out, e.Data); err != nil {
			p.Eprintf("untar: write error on %q\n", name)
		}
		p.Close(out)
		p.Printf("x %s (%d bytes)\n", name, len(e.Data))
	}
	return 0
}

// mkdirAll creates intermediate member directories relative to the cwd.
func mkdirAll(p *kernel.Proc, dir string) error {
	parts := strings.Split(dir, "/")
	cur := ""
	for _, part := range parts {
		if part == "" {
			continue
		}
		if cur == "" {
			cur = part
		} else {
			cur = cur + "/" + part
		}
		if _, err := p.Stat("untar:stat-memberdir", cur); err == nil {
			continue
		}
		if err := p.Mkdir("untar:mkdir-member", cur, 0o755); err != nil {
			return err
		}
	}
	return nil
}

// World stages the TA's tree with a legitimate student submission archive
// and the TA's login script.
func World(prog kernel.Program) inject.Factory {
	return image.FactoryWith(func(l inject.Launch) inject.Launch {
		l.Prog = prog
		return l
	})
}

// image memoizes the variant-independent untar world; runs fork it
// copy-on-write.
var image = inject.NewWorldImage(func() (*kernel.Kernel, inject.Launch) {
	k := kernel.New()
	k.Users.Add(proc.User{Name: "cs352ta", UID: TAUID, GID: TAUID})
	k.Users.Add(proc.User{Name: "alice", UID: StudentUID, GID: StudentUID})
	must(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
	must(k.FS.WriteFile("/etc/shadow", []byte("root:$1$TARHASH$:1:\n"), 0o600, 0, 0))
	must(k.FS.MkdirAll("/", GradingDir, 0o700, TAUID, TAUID))
	must(k.FS.MkdirAll("/", TAHome+"/submit/assignment1", 0o700, TAUID, TAUID))
	must(k.FS.WriteFile(LoginScript, []byte("setenv SHELL /bin/csh\n"), 0o644, TAUID, TAUID))
	must(k.FS.MkdirAll("/", "/tmp", 0o777, 0, 0))
	legit := archive.Pack([]archive.Entry{
		{Name: "hw1.c", Mode: 0o644, Data: []byte("int main(void){return 42;}\n")},
		{Name: "docs/README", Mode: 0o644, Data: []byte("assignment 1 submission\n")},
	})
	// Stored by the set-UID turnin, chowned to the course account so
	// the TA can grade it.
	must(k.FS.WriteFile(Submission, legit, 0o600, TAUID, TAUID))
	return k, inject.Launch{
		Cred: proc.NewCred(TAUID, TAUID), // the TA's own authority
		Env:  proc.NewEnv("PATH", "/usr/bin"),
		Cwd:  GradingDir,
		Args: []string{"untar", Submission},
	}
})

// MaliciousArchive is the student's crafted payload: a "../.login" member
// that overwrites the TA's login script, plus an overlong member name that
// lands in the extractor's unchecked buffer.
func MaliciousArchive() []byte {
	return archive.Pack([]archive.Entry{
		{Name: "../.login", Mode: 0o644, Data: []byte("exec /bin/evil\n")},
		{Name: strings.Repeat("A", 4000), Mode: 0o644, Data: []byte("x")},
	})
}

// Campaign perturbs the extractor's archive input: the stored submission
// file (direct faults — the attacker authored it, so content substitution
// is exactly a malicious submission) and the bytes the extractor reads.
func Campaign(prog kernel.Program) inject.Campaign {
	return inject.Campaign{
		Name:  "untar",
		World: World(prog),
		Policy: policy.Policy{
			Invoker:           proc.NewCred(TAUID, TAUID),
			Attacker:          proc.NewCred(StudentUID, StudentUID),
			TrustedWritePaths: []string{GradingDir},
		},
		Faults: eai.Config{
			Attacker:        proc.NewCred(StudentUID, StudentUID),
			AttackerContent: MaliciousArchive(),
		},
		Sites: []string{"untar:open-archive", "untar:read-archive"},
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
