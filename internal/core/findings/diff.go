// Semantic diffing of findings reports, modeled on Golangvuln's dbdiff:
// findings match by stable ID, and drift classifies as new / fixed /
// changed rather than byte inequality, so catalog reorderings and
// cosmetic re-renders never trip a CI gate.

package findings

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Drift classes.
const (
	ClassNew     = "new"
	ClassFixed   = "fixed"
	ClassChanged = "changed"
)

// Delta is one drifted finding.
type Delta struct {
	// Class is new, fixed, or changed.
	Class string `json:"class"`
	ID    string `json:"id"`
	App   string `json:"app"`
	// Variant may be empty for base-catalog jobs.
	Variant   string `json:"variant,omitempty"`
	Signature string `json:"signature"`
	// Severity is the new side's severity (the old side's for fixed).
	Severity string `json:"severity"`
	// Detail explains what drifted, for changed findings.
	Detail string `json:"detail,omitempty"`
	// TracesOld and TracesNew count each side's triggering traces.
	TracesOld int `json:"traces_old"`
	TracesNew int `json:"traces_new"`
}

// Diff is the semantic comparison of two reports.
type Diff struct {
	// OldCount and NewCount are each side's total finding counts.
	OldCount int `json:"old_count"`
	NewCount int `json:"new_count"`
	// Unchanged counts findings present on both sides with no drift.
	Unchanged int `json:"unchanged"`
	// Deltas lists every drifted finding, new then changed then fixed,
	// each class in canonical (app, variant, signature) order.
	Deltas []Delta `json:"deltas,omitempty"`
}

// Count returns the number of deltas in the given class.
func (d *Diff) Count(class string) int {
	n := 0
	for i := range d.Deltas {
		if d.Deltas[i].Class == class {
			n++
		}
	}
	return n
}

// Empty reports whether the diff carries no drift at all.
func (d *Diff) Empty() bool { return len(d.Deltas) == 0 }

// triggerKey identifies one trace for trigger-set comparison. Detail is
// deliberately excluded: oracle phrasing may evolve without the
// perturbation that triggers the weakness changing.
func triggerKey(t Trace) string {
	return t.Point + "|" + t.Fault + "|" + t.Object
}

// triggerDrift compares two trigger multisets and renders the drift, or
// "" when they match.
func triggerDrift(old, new *Finding) string {
	count := map[string]int{}
	for _, t := range old.Traces {
		count[triggerKey(t)]++
	}
	added, removed := 0, 0
	for _, t := range new.Traces {
		k := triggerKey(t)
		if count[k] > 0 {
			count[k]--
		} else {
			added++
		}
	}
	for _, n := range count {
		removed += n
	}
	if added == 0 && removed == 0 {
		return ""
	}
	return fmt.Sprintf("+%d/-%d trigger(s) (%d → %d traces)",
		added, removed, len(old.Traces), len(new.Traces))
}

// DiffReports semantically compares two reports. Findings match by ID;
// a matched pair is changed when its severity or trigger set drifted.
func DiffReports(old, new *Report) *Diff {
	d := &Diff{OldCount: len(old.Findings), NewCount: len(new.Findings)}
	oldByID := make(map[string]*Finding, len(old.Findings))
	for i := range old.Findings {
		oldByID[old.Findings[i].ID] = &old.Findings[i]
	}
	newByID := make(map[string]*Finding, len(new.Findings))
	for i := range new.Findings {
		f := &new.Findings[i]
		newByID[f.ID] = f
		of, ok := oldByID[f.ID]
		if !ok {
			d.Deltas = append(d.Deltas, Delta{
				Class: ClassNew, ID: f.ID, App: f.App, Variant: f.Variant,
				Signature: f.Signature, Severity: f.Severity,
				TracesNew: len(f.Traces),
			})
			continue
		}
		var drift []string
		if of.Severity != f.Severity {
			drift = append(drift, fmt.Sprintf("severity %s → %s", of.Severity, f.Severity))
		}
		if td := triggerDrift(of, f); td != "" {
			drift = append(drift, td)
		}
		if len(drift) == 0 {
			d.Unchanged++
			continue
		}
		d.Deltas = append(d.Deltas, Delta{
			Class: ClassChanged, ID: f.ID, App: f.App, Variant: f.Variant,
			Signature: f.Signature, Severity: f.Severity,
			Detail:    strings.Join(drift, "; "),
			TracesOld: len(of.Traces), TracesNew: len(f.Traces),
		})
	}
	for i := range old.Findings {
		f := &old.Findings[i]
		if _, ok := newByID[f.ID]; ok {
			continue
		}
		d.Deltas = append(d.Deltas, Delta{
			Class: ClassFixed, ID: f.ID, App: f.App, Variant: f.Variant,
			Signature: f.Signature, Severity: f.Severity,
			TracesOld: len(f.Traces),
		})
	}
	classRank := map[string]int{ClassNew: 0, ClassChanged: 1, ClassFixed: 2}
	sort.Slice(d.Deltas, func(i, j int) bool {
		a, b := &d.Deltas[i], &d.Deltas[j]
		if classRank[a.Class] != classRank[b.Class] {
			return classRank[a.Class] < classRank[b.Class]
		}
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return a.Signature < b.Signature
	})
	return d
}

// Render writes the diff in its stable human-readable form.
func (d *Diff) Render(w io.Writer) {
	fmt.Fprintf(w, "findings diff: %d old, %d new finding(s)\n", d.OldCount, d.NewCount)
	fmt.Fprintf(w, "  new %d · changed %d · fixed %d · unchanged %d\n",
		d.Count(ClassNew), d.Count(ClassChanged), d.Count(ClassFixed), d.Unchanged)
	if d.Empty() {
		fmt.Fprintln(w, "no drift.")
		return
	}
	cur := ""
	for i := range d.Deltas {
		dd := &d.Deltas[i]
		if dd.Class != cur {
			cur = dd.Class
			fmt.Fprintf(w, "\n%s:\n", cur)
		}
		label := dd.App
		if dd.Variant != "" {
			label += "/" + dd.Variant
		}
		switch dd.Class {
		case ClassNew:
			fmt.Fprintf(w, "  %s  %s  %s  [%s]  %d trace(s)\n",
				dd.ID, label, dd.Signature, dd.Severity, dd.TracesNew)
		case ClassFixed:
			fmt.Fprintf(w, "  %s  %s  %s  [%s]  was %d trace(s)\n",
				dd.ID, label, dd.Signature, dd.Severity, dd.TracesOld)
		default:
			fmt.Fprintf(w, "  %s  %s  %s  [%s]  %s\n",
				dd.ID, label, dd.Signature, dd.Severity, dd.Detail)
		}
	}
}

// ParseFailOn parses a -diff-fail-on value: a comma-separated subset of
// {new, changed, fixed}, or "any" for all three, or ""/"none" for no
// gating.
func ParseFailOn(s string) (map[string]bool, error) {
	out := map[string]bool{}
	switch s {
	case "", "none":
		return out, nil
	case "any":
		out[ClassNew], out[ClassChanged], out[ClassFixed] = true, true, true
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		switch part = strings.TrimSpace(part); part {
		case ClassNew, ClassChanged, ClassFixed:
			out[part] = true
		default:
			return nil, fmt.Errorf("findings: unknown drift class %q (want new, changed, fixed, any, or none)", part)
		}
	}
	return out, nil
}

// Fails reports whether the diff contains any delta in a gated class.
func (d *Diff) Fails(classes map[string]bool) bool {
	for i := range d.Deltas {
		if classes[d.Deltas[i].Class] {
			return true
		}
	}
	return false
}
