package findings

import (
	"bytes"
	"testing"
)

// seedCorpus adds one valid encoded report plus hostile shapes.
func seedCorpus(f *testing.F) {
	b := NewBuilder()
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p1", Fault: "f1", Object: "/x", Detail: "d"})
	b.Add("untar", "", sigIndirect(), Trace{Point: "p2", Fault: "f2"})
	enc, err := b.Report().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte(`{"schema":"eptest-findings/1","findings":[]}`))
	f.Add([]byte(`{"schema":"eptest-findings/1","findings":[{"id":"EPT-0000000000000000","traces":null}]}`))
	f.Add([]byte(`{"schema":"bogus"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
}

// FuzzDecodeFindings: Decode never panics, and anything it accepts
// round-trips through the canonical encoding byte-identically.
func FuzzDecodeFindings(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := r.Encode()
		if err != nil {
			t.Fatalf("accepted report failed to encode: %v", err)
		}
		r2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding did not decode: %v", err)
		}
		enc2, err := r2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}

// FuzzDiff: diffing never panics, a report diffed against itself is
// drift-free, and delta counts always reconcile with the finding
// counts.
func FuzzDiff(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Decode(data)
		if err != nil {
			return
		}
		if d := DiffReports(r, r); !d.Empty() {
			t.Fatalf("self-diff drifted: %+v", d)
		}
		empty := &Report{Schema: SchemaVersion}
		d := DiffReports(empty, r)
		// Every finding on the new side is new or a duplicate-ID merge;
		// new+unchanged+changed never exceeds the new-side count.
		if d.Count(ClassNew)+d.Count(ClassChanged)+d.Unchanged > d.NewCount {
			t.Fatalf("delta counts exceed findings: %+v", d)
		}
		if d.Count(ClassFixed) != 0 {
			t.Fatalf("diff against empty old side reported fixed findings: %+v", d)
		}
	})
}
