package findings

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/obs"
	"repro/internal/core/policy"
	"repro/internal/core/sched"
	"repro/internal/interpose"
	"repro/internal/vulndb"
)

func sigDirect() sched.Signature {
	return sched.Signature{
		Rule:  policy.KindIntegrity,
		Class: eai.ClassDirect,
		Attr:  eai.AttrSymlink,
		Kind:  interpose.KindFile,
	}
}

func sigIndirect() sched.Signature {
	return sched.Signature{
		Rule:  policy.KindUntrustedExec,
		Class: eai.ClassIndirect,
		Sem:   eai.SemPathList,
		Kind:  interpose.KindEnvVar,
	}
}

// The ID is a published stability contract: pin the exact derivation so
// an accidental change to the key material breaks loudly.
func TestComputeIDStable(t *testing.T) {
	id := ComputeID("lpr", "vulnerable", sigDirect().String())
	if !strings.HasPrefix(id, "EPT-") || len(id) != 4+16 {
		t.Fatalf("ID shape: %q", id)
	}
	if again := ComputeID("lpr", "vulnerable", sigDirect().String()); again != id {
		t.Fatalf("ID not deterministic: %q vs %q", id, again)
	}
	if other := ComputeID("lpr", "patched", sigDirect().String()); other == id {
		t.Fatalf("variant not part of the key: %q", other)
	}
	if other := ComputeID("untar", "vulnerable", sigDirect().String()); other == id {
		t.Fatalf("app not part of the key: %q", other)
	}
	if other := ComputeID("lpr", "vulnerable", sigIndirect().String()); other == id {
		t.Fatalf("signature not part of the key: %q", other)
	}
	const pinned = "EPT-4796ccd52cc06635"
	if id != pinned {
		t.Fatalf("ID derivation drifted: got %q, want %q — this breaks every stored findings file", id, pinned)
	}
}

func TestBuilderDedupAndOrder(t *testing.T) {
	b := NewBuilder()
	// Out-of-order adds across apps; canonical report order must not care.
	b.Add("untar", "vulnerable", sigDirect(), Trace{Point: "p2", Fault: "f1"})
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p1", Fault: "f1"})
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p3", Fault: "f2", Object: "/tmp/x"})
	b.Add("lpr", "vulnerable", sigIndirect(), Trace{Point: "p1", Fault: "f9"})
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3 distinct findings", b.Len())
	}
	r := b.Report()
	if len(r.Findings) != 3 || r.Schema != SchemaVersion {
		t.Fatalf("report: %+v", r)
	}
	if r.Findings[0].App != "lpr" || r.Findings[2].App != "untar" {
		t.Fatalf("not sorted by app: %v, %v", r.Findings[0].App, r.Findings[2].App)
	}
	var lpr *Finding
	for i := range r.Findings {
		if r.Findings[i].App == "lpr" && r.Findings[i].Signature == sigDirect().String() {
			lpr = &r.Findings[i]
		}
	}
	if lpr == nil || len(lpr.Traces) != 2 {
		t.Fatalf("lpr direct finding traces: %+v", lpr)
	}
	if lpr.Traces[0].Point != "p1" || lpr.Traces[1].Point != "p3" {
		t.Fatalf("trace order not add order: %+v", lpr.Traces)
	}
	if r.Traces() != 4 {
		t.Fatalf("Traces() = %d, want 4", r.Traces())
	}
}

func TestTaxonomyAndSeverity(t *testing.T) {
	b := NewBuilder()
	b.Add("lpr", "", sigDirect(), Trace{Point: "p"})
	b.Add("lpr", "", sigIndirect(), Trace{Point: "p"})
	r := b.Report()
	for i := range r.Findings {
		f := &r.Findings[i]
		switch f.Rule {
		case "integrity":
			if f.Severity != "high" {
				t.Errorf("integrity severity = %q", f.Severity)
			}
			if f.Taxonomy.Slug != "direct/file-system/symbolic-link" {
				t.Errorf("direct slug = %q", f.Taxonomy.Slug)
			}
			if f.Taxonomy.Verdict != "direct on file-system/symbolic-link" {
				t.Errorf("direct verdict = %q", f.Taxonomy.Verdict)
			}
			if f.Taxonomy.Origin != "" || f.Taxonomy.Entity != "file-system" {
				t.Errorf("direct taxonomy fields: %+v", f.Taxonomy)
			}
		case "untrusted-exec":
			if f.Severity != "critical" {
				t.Errorf("untrusted-exec severity = %q", f.Severity)
			}
			if f.Taxonomy.Slug != "indirect/environment-variable" {
				t.Errorf("indirect slug = %q", f.Taxonomy.Slug)
			}
			if f.Taxonomy.Verdict != "indirect via environment-variable" {
				t.Errorf("indirect verdict = %q", f.Taxonomy.Verdict)
			}
			if f.Taxonomy.Entity != "" || f.Taxonomy.Attr != "" {
				t.Errorf("indirect taxonomy fields: %+v", f.Taxonomy)
			}
		default:
			t.Errorf("unexpected rule %q", f.Rule)
		}
	}
}

func TestFromResultSkipsTolerated(t *testing.T) {
	res := &inject.Result{
		Campaign: "lpr",
		Injections: []inject.Injection{
			{Point: "a#0", FaultID: "f1", Applied: true, Class: eai.ClassDirect,
				Attr: eai.AttrSymlink, Kind: interpose.KindFile,
				Violations: []policy.Violation{{Kind: policy.KindIntegrity, Point: "a#0", Object: "/x"}}},
			{Point: "b#0", FaultID: "f2", Applied: true}, // tolerated: no violations
		},
	}
	r := FromResult("lpr", "vulnerable", res)
	if len(r.Findings) != 1 || len(r.Findings[0].Traces) != 1 {
		t.Fatalf("findings: %+v", r.Findings)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p1", Fault: "f1", Object: "/x", Detail: "d"})
	b.Add("lpr", "vulnerable", sigIndirect(), Trace{Point: "p2", Fault: "f2"})
	r := b.Report()
	enc, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(enc, []byte("\n")) {
		t.Error("canonical encoding must end in newline")
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("round-trip not byte-identical:\n%s\nvs\n%s", enc, enc2)
	}
}

func TestDecodeRejectsBadSchema(t *testing.T) {
	if _, err := Decode([]byte(`{"schema":"eptest-findings/999","findings":[]}`)); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := Decode([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestWriteReadFile(t *testing.T) {
	b := NewBuilder()
	b.Add("lpr", "", sigDirect(), Trace{Point: "p"})
	r := b.Report()
	path := t.TempDir() + "/f.json"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Findings) != 1 || got.Findings[0].ID != r.Findings[0].ID {
		t.Fatalf("read back: %+v", got.Findings)
	}
	if _, err := ReadFile(t.TempDir() + "/absent.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestInstrumentCounters(t *testing.T) {
	b := NewBuilder()
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p1"})
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p2"})
	b.Add("untar", "vulnerable", sigIndirect(), Trace{Point: "p1"})
	reg := obs.NewRegistry()
	Instrument(reg, b.Report())
	flat := reg.Flat()
	if got := flat[MetricName+`{app="lpr",rule="integrity",taxonomy="direct/file-system/symbolic-link"}`]; got != 2 {
		t.Errorf("lpr counter = %v, want 2 (map: %v)", got, flat)
	}
	if got := flat[MetricName+`{app="untar",rule="untrusted-exec",taxonomy="indirect/environment-variable"}`]; got != 1 {
		t.Errorf("untar counter = %v, want 1", got)
	}
	// Nil registry and zero counts must not panic or add series.
	cat := vulndb.CategoryOfFinding(eai.ClassDirect, interpose.KindFile, eai.AttrSymlink)
	Instrument(nil, b.Report())
	Count(nil, "a", "r", cat, 1)
	Count(reg, "a", "r", cat, 0)
	if _, ok := reg.Flat()[MetricName+`{app="a",rule="r",taxonomy="direct/file-system/symbolic-link"}`]; ok {
		t.Error("zero-count fold created a series")
	}
}
