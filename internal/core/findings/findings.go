// Package findings turns the suite's violation clusters into canonical
// machine-readable records (schema eptest-findings/1), modeled on
// govulncheck's structured results: one finding per distinct
// (app, variant, violation signature), carrying the paper's
// vulnerability taxonomy and the concrete fault traces that triggered
// it, with a stable content-derived ID so two suite runs can be diffed
// semantically instead of byte-wise.
//
// Determinism is the package's load-bearing property: a Report built
// from any mix of live, cached, sharded, or fleet-merged campaign
// results encodes to exactly the bytes a single cold in-process run
// produces, because findings are keyed and sorted by content, traces
// follow plan order, and the codec has a single canonical rendering.
package findings

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/core/inject"
	"repro/internal/core/obs"
	"repro/internal/core/policy"
	"repro/internal/core/sched"
	"repro/internal/vulndb"
)

// SchemaVersion names the findings file format.
const SchemaVersion = "eptest-findings/1"

// MetricName is the obs counter family findings fold into:
// eptest_findings_total{app,rule,taxonomy} counts violating traces.
const MetricName = "eptest_findings_total"

const metricHelp = "Violating injection runs observed, by app, policy rule, and paper taxonomy."

// Trace is one concrete triggering of a finding: the interaction point
// perturbed, the catalog fault injected, and the oracle's explanation.
type Trace struct {
	// Point is the interaction point (site#occur) whose perturbation
	// violated the policy.
	Point string `json:"point"`
	// Fault is the catalog fault id injected there.
	Fault string `json:"fault"`
	// Object is the environment object the violation names.
	Object string `json:"object,omitempty"`
	// Detail is the oracle's explanation.
	Detail string `json:"detail,omitempty"`
}

// Taxonomy is the paper-style vulnerability classification of a
// finding, derived from internal/vulndb's Section 2.4 categories.
type Taxonomy struct {
	// Class is the EAI fault class: "indirect" or "direct".
	Class string `json:"class"`
	// Origin is the Table 2 input channel, for indirect findings.
	Origin string `json:"origin,omitempty"`
	// Entity is the Table 3 environment entity, for direct findings.
	Entity string `json:"entity,omitempty"`
	// Attr is the Table 4/6 attribute, for direct findings.
	Attr string `json:"attr,omitempty"`
	// Verdict is the classifier's human-readable verdict, rendered
	// exactly as `vulnclass -entries` prints database entries.
	Verdict string `json:"verdict"`
	// Slug is the compact token used as the `taxonomy` metric label,
	// e.g. "indirect/user-input" or "direct/file-system/symbolic-link".
	Slug string `json:"slug"`
}

// Finding is one canonical violation record: a distinct
// (app, variant, signature) class with every trace that triggered it.
type Finding struct {
	// ID is the stable content-derived identifier ("EPT-" + 16 hex
	// digits). See ComputeID for the stability contract.
	ID string `json:"id"`
	// App and Variant locate the campaign that produced the finding.
	App     string `json:"app"`
	Variant string `json:"variant,omitempty"`
	// Rule is the violated policy rule.
	Rule string `json:"rule"`
	// Severity is derived from the rule (see severityFor).
	Severity string `json:"severity"`
	// Signature is the human-readable sched.Signature key:
	// "rule/class/dimension on kind".
	Signature string `json:"signature"`
	// Taxonomy is the paper-style classification.
	Taxonomy Taxonomy `json:"taxonomy"`
	// Traces lists the concrete triggerings, in plan order.
	Traces []Trace `json:"traces"`
}

// Label renders the finding's job label, matching sched.Job.Label.
// Value receiver so html/template can call it on range variables.
func (f Finding) Label() string {
	if f.Variant == "" {
		return f.App
	}
	return f.App + "/" + f.Variant
}

// Report is a findings file: the schema marker plus every finding in
// canonical order (app, then variant, then signature).
type Report struct {
	Schema   string    `json:"schema"`
	Findings []Finding `json:"findings"`
}

// Traces returns the total trace count across all findings.
func (r *Report) Traces() int {
	n := 0
	for i := range r.Findings {
		n += len(r.Findings[i].Traces)
	}
	return n
}

// ComputeID derives a finding's stable ID: "EPT-" plus the first 16 hex
// digits of a SHA-256 over the versioned identity key
// app|variant|signature. The key deliberately excludes traces and
// severity: a finding keeps its identity while its trigger set drifts,
// which is what lets the differ report "changed" instead of a
// fixed/new pair.
func ComputeID(app, variant string, sig string) string {
	h := sha256.Sum256([]byte("eptest-findings|" + app + "|" + variant + "|" + sig))
	return "EPT-" + hex.EncodeToString(h[:8])
}

// severityFor ranks policy rules. Arbitrary execution of untrusted code
// outranks data-integrity and secrecy breaches; consuming untrusted
// input without validation is a weakness but needs a second step;
// crashes are availability-only.
func severityFor(rule policy.Kind) string {
	switch rule {
	case policy.KindUntrustedExec:
		return "critical"
	case policy.KindIntegrity, policy.KindConfidentiality:
		return "high"
	case policy.KindUntrustedInput:
		return "medium"
	case policy.KindCrash:
		return "low"
	default:
		return "unknown"
	}
}

// taxonomyFor classifies a signature with vulndb's measured-finding
// bridge and renders it into the record's string form.
func taxonomyFor(sig sched.Signature) Taxonomy {
	c := vulndb.CategoryOfFinding(sig.Class, sig.Kind, sig.Attr)
	t := Taxonomy{
		Class:   c.Class.String(),
		Verdict: c.Verdict(),
		Slug:    c.Slug(),
	}
	if c.Origin != 0 {
		t.Origin = c.Origin.String()
	}
	if c.Entity != 0 {
		t.Entity = c.Entity.String()
	}
	if c.Attr != 0 {
		t.Attr = c.Attr.String()
	}
	return t
}

// Builder accumulates violation occurrences into findings. It is
// order-insensitive across campaigns — Report sorts canonically — but
// preserves trace order within a campaign, which is plan order.
type Builder struct {
	byID map[string]*Finding
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{byID: make(map[string]*Finding)}
}

// Add records one violating trace under the given app, variant, and
// violation signature.
func (b *Builder) Add(app, variant string, sig sched.Signature, tr Trace) {
	id := ComputeID(app, variant, sig.String())
	f, ok := b.byID[id]
	if !ok {
		f = &Finding{
			ID:        id,
			App:       app,
			Variant:   variant,
			Rule:      sig.Rule.String(),
			Severity:  severityFor(sig.Rule),
			Signature: sig.String(),
			Taxonomy:  taxonomyFor(sig),
		}
		b.byID[id] = f
	}
	f.Traces = append(f.Traces, tr)
}

// AddResult folds every violation of one campaign result.
func (b *Builder) AddResult(app, variant string, res *inject.Result) {
	for _, in := range res.Violations() {
		for _, v := range in.Violations {
			sig := sched.Signature{
				Rule:  v.Kind,
				Class: in.Class,
				Attr:  in.Attr,
				Sem:   in.Sem,
				Kind:  in.Kind,
			}
			b.Add(app, variant, sig, Trace{
				Point:  in.Point,
				Fault:  in.FaultID,
				Object: v.Object,
				Detail: v.Detail,
			})
		}
	}
}

// Len returns the number of distinct findings accumulated so far.
func (b *Builder) Len() int { return len(b.byID) }

// Report renders the accumulated findings in canonical order. The
// returned report copies the findings, so the builder can keep
// accumulating (the coordinator snapshots mid-fleet).
func (b *Builder) Report() *Report {
	out := make([]Finding, 0, len(b.byID))
	for _, f := range b.byID {
		cp := *f
		cp.Traces = append([]Trace(nil), f.Traces...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		if out[i].Variant != out[j].Variant {
			return out[i].Variant < out[j].Variant
		}
		return out[i].Signature < out[j].Signature
	})
	return &Report{Schema: SchemaVersion, Findings: out}
}

// FromResult builds a report from a single campaign result.
func FromResult(app, variant string, res *inject.Result) *Report {
	b := NewBuilder()
	b.AddResult(app, variant, res)
	return b.Report()
}

// FromSuite builds the canonical report for a whole suite run. Failed
// campaigns contribute nothing, matching sched.ClusterSuite.
func FromSuite(sr *sched.SuiteResult) *Report {
	b := NewBuilder()
	for _, c := range sr.Campaigns {
		if c.Err != nil || c.Result == nil {
			continue
		}
		b.AddResult(c.Job.Name, c.Job.Variant, c.Result)
	}
	return b.Report()
}

// Encode renders the report in its canonical byte form: two-space
// indented JSON with a trailing newline. Two reports with equal content
// encode to equal bytes.
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a findings file, rejecting unknown schemas.
func Decode(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("findings: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("findings: schema %q, this binary reads %q", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// ReadFile loads and decodes a findings file.
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// WriteFile encodes the report to its canonical bytes and writes them.
func (r *Report) WriteFile(path string) error {
	b, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Count folds n violating traces into the registry's
// eptest_findings_total family. Nil-safe like the rest of obs.
func Count(reg *obs.Registry, app, rule string, cat vulndb.Category, n int) {
	if reg == nil || n == 0 {
		return
	}
	reg.Counter(MetricName, metricHelp,
		"app", app, "rule", rule, "taxonomy", cat.Slug()).Add(int64(n))
}

// Instrument folds a whole report into the registry, one increment per
// trace. The app label is the campaign name (not the full variant
// label) to bound series cardinality.
func Instrument(reg *obs.Registry, r *Report) {
	if reg == nil {
		return
	}
	for i := range r.Findings {
		f := &r.Findings[i]
		reg.Counter(MetricName, metricHelp,
			"app", f.App, "rule", f.Rule, "taxonomy", f.Taxonomy.Slug).Add(int64(len(f.Traces)))
	}
}
