package findings

import (
	"strings"
	"testing"
)

func twoFindingReport() *Report {
	b := NewBuilder()
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p1", Fault: "f1", Object: "/x"})
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p2", Fault: "f2", Object: "/y"})
	b.Add("untar", "vulnerable", sigIndirect(), Trace{Point: "p3", Fault: "f3"})
	return b.Report()
}

func TestDiffIdenticalIsEmpty(t *testing.T) {
	a, b := twoFindingReport(), twoFindingReport()
	d := DiffReports(a, b)
	if !d.Empty() || d.Unchanged != 2 || d.OldCount != 2 || d.NewCount != 2 {
		t.Fatalf("diff of identical reports: %+v", d)
	}
	var w strings.Builder
	d.Render(&w)
	if !strings.Contains(w.String(), "no drift.") {
		t.Errorf("render: %q", w.String())
	}
}

func TestDiffNewAndFixed(t *testing.T) {
	old := twoFindingReport()
	b := NewBuilder()
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p1", Fault: "f1", Object: "/x"})
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p2", Fault: "f2", Object: "/y"})
	b.Add("maildrop", "vulnerable", sigIndirect(), Trace{Point: "p9", Fault: "f9"})
	new := b.Report()
	d := DiffReports(old, new)
	if d.Count(ClassNew) != 1 || d.Count(ClassFixed) != 1 || d.Count(ClassChanged) != 0 || d.Unchanged != 1 {
		t.Fatalf("diff: %+v", d)
	}
	// new sorts before fixed.
	if d.Deltas[0].Class != ClassNew || d.Deltas[0].App != "maildrop" {
		t.Fatalf("delta order: %+v", d.Deltas)
	}
	if d.Deltas[1].Class != ClassFixed || d.Deltas[1].App != "untar" {
		t.Fatalf("delta order: %+v", d.Deltas)
	}
	var w strings.Builder
	d.Render(&w)
	out := w.String()
	for _, want := range []string{"new:", "fixed:", "maildrop/vulnerable", "new 1 · changed 0 · fixed 1 · unchanged 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDiffChangedOnTriggerDrift(t *testing.T) {
	old := twoFindingReport()
	b := NewBuilder()
	// Same finding identity, one extra trigger.
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p1", Fault: "f1", Object: "/x"})
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p2", Fault: "f2", Object: "/y"})
	b.Add("lpr", "vulnerable", sigDirect(), Trace{Point: "p4", Fault: "f4", Object: "/z"})
	b.Add("untar", "vulnerable", sigIndirect(), Trace{Point: "p3", Fault: "f3"})
	new := b.Report()
	d := DiffReports(old, new)
	if d.Count(ClassChanged) != 1 || d.Count(ClassNew) != 0 || d.Count(ClassFixed) != 0 {
		t.Fatalf("diff: %+v", d)
	}
	if !strings.Contains(d.Deltas[0].Detail, "+1/-0 trigger(s) (2 → 3 traces)") {
		t.Fatalf("changed detail: %q", d.Deltas[0].Detail)
	}
}

func TestDiffChangedOnSeverityDrift(t *testing.T) {
	old := twoFindingReport()
	new := twoFindingReport()
	for i := range new.Findings {
		if new.Findings[i].App == "untar" {
			new.Findings[i].Severity = "low"
		}
	}
	d := DiffReports(old, new)
	if d.Count(ClassChanged) != 1 {
		t.Fatalf("diff: %+v", d)
	}
	if !strings.Contains(d.Deltas[0].Detail, "severity critical → low") {
		t.Fatalf("changed detail: %q", d.Deltas[0].Detail)
	}
}

// Detail phrasing is excluded from identity: an oracle message reword
// alone is not drift.
func TestDiffIgnoresDetailReword(t *testing.T) {
	old := twoFindingReport()
	new := twoFindingReport()
	for i := range new.Findings {
		for j := range new.Findings[i].Traces {
			new.Findings[i].Traces[j].Detail = "reworded"
		}
	}
	if d := DiffReports(old, new); !d.Empty() {
		t.Fatalf("detail reword classified as drift: %+v", d)
	}
}

func TestParseFailOn(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
		err  bool
	}{
		{in: "", want: nil},
		{in: "none", want: nil},
		{in: "new", want: []string{ClassNew}},
		{in: "new,fixed", want: []string{ClassNew, ClassFixed}},
		{in: " new , changed ", want: []string{ClassNew, ClassChanged}},
		{in: "any", want: []string{ClassNew, ClassChanged, ClassFixed}},
		{in: "bogus", err: true},
		{in: "new,bogus", err: true},
	} {
		got, err := ParseFailOn(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("ParseFailOn(%q) error = %v", tc.in, err)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseFailOn(%q) = %v, want %v", tc.in, got, tc.want)
		}
		for _, c := range tc.want {
			if !got[c] {
				t.Errorf("ParseFailOn(%q) missing %q", tc.in, c)
			}
		}
	}
}

func TestDiffFails(t *testing.T) {
	old := twoFindingReport()
	b := NewBuilder()
	b.Add("maildrop", "vulnerable", sigIndirect(), Trace{Point: "p9", Fault: "f9"})
	new := b.Report()
	d := DiffReports(old, new) // one new, two fixed
	onNew, _ := ParseFailOn("new")
	onChanged, _ := ParseFailOn("changed")
	any, _ := ParseFailOn("any")
	none, _ := ParseFailOn("none")
	if !d.Fails(onNew) || !d.Fails(any) {
		t.Error("gate did not trip on a new finding")
	}
	if d.Fails(onChanged) || d.Fails(none) {
		t.Error("gate tripped on an empty class")
	}
}
