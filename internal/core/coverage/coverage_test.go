package coverage

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFaultCoverage(t *testing.T) {
	t.Parallel()
	m := Metric{FaultsInjected: 41, FaultsTolerated: 32}
	if got := m.FaultCoverage(); got < 0.78 || got > 0.79 {
		t.Errorf("FaultCoverage = %v", got)
	}
	if got := m.Violations(); got != 9 {
		t.Errorf("Violations = %d", got)
	}
	// Vacuous case.
	if got := (Metric{}).FaultCoverage(); got != 1 {
		t.Errorf("empty FaultCoverage = %v", got)
	}
}

func TestInteractionCoverage(t *testing.T) {
	t.Parallel()
	m := Metric{PointsPerturbed: 8, PointsTotal: 10}
	if got := m.InteractionCoverage(); got != 0.8 {
		t.Errorf("InteractionCoverage = %v", got)
	}
	if got := (Metric{}).InteractionCoverage(); got != 0 {
		t.Errorf("empty InteractionCoverage = %v", got)
	}
}

func TestString(t *testing.T) {
	t.Parallel()
	m := Metric{FaultsInjected: 10, FaultsTolerated: 5, PointsPerturbed: 1, PointsTotal: 2}
	if got := m.String(); !strings.Contains(got, "IC=0.50") || !strings.Contains(got, "FC=0.50") {
		t.Errorf("String = %q", got)
	}
}

// TestFigure2SamplePoints reproduces the four sample points of Figure 2.
func TestFigure2SamplePoints(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		m    Metric
		want Region
	}{
		{"point 1: low/low", Metric{FaultsInjected: 10, FaultsTolerated: 2, PointsPerturbed: 1, PointsTotal: 10}, RegionInadequate},
		{"point 2: high FC, low IC", Metric{FaultsInjected: 10, FaultsTolerated: 10, PointsPerturbed: 1, PointsTotal: 10}, RegionNarrow},
		{"point 3: high IC, low FC", Metric{FaultsInjected: 10, FaultsTolerated: 2, PointsPerturbed: 10, PointsTotal: 10}, RegionInsecure},
		{"point 4: high/high", Metric{FaultsInjected: 10, FaultsTolerated: 10, PointsPerturbed: 10, PointsTotal: 10}, RegionSafe},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if got := Classify(tt.m); got != tt.want {
				t.Errorf("Classify(%v) = %v, want %v", tt.m, got, tt.want)
			}
		})
	}
}

func TestClassifyAtThresholds(t *testing.T) {
	t.Parallel()
	m := Metric{FaultsInjected: 10, FaultsTolerated: 6, PointsPerturbed: 6, PointsTotal: 10}
	if got := ClassifyAt(m, 0.5, 0.5); got != RegionSafe {
		t.Errorf("loose thresholds = %v", got)
	}
	if got := ClassifyAt(m, 0.9, 0.9); got != RegionInadequate {
		t.Errorf("strict thresholds = %v", got)
	}
}

func TestAdequate(t *testing.T) {
	t.Parallel()
	m := Metric{PointsPerturbed: 8, PointsTotal: 10}
	if !Adequate(m, 0.8) {
		t.Error("0.8 coverage not adequate at 0.8")
	}
	if Adequate(m, 0.9) {
		t.Error("0.8 coverage adequate at 0.9")
	}
}

func TestRegionString(t *testing.T) {
	t.Parallel()
	for r, want := range map[Region]string{
		RegionInadequate: "inadequate",
		RegionNarrow:     "inadequate(narrow)",
		RegionInsecure:   "insecure",
		RegionSafe:       "safe",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
}

// Property: coverages are always within [0, 1] for consistent metrics.
func TestCoverageBounds(t *testing.T) {
	t.Parallel()
	f := func(inj, tol, pp, pt uint8) bool {
		m := Metric{
			FaultsInjected:  int(inj),
			FaultsTolerated: int(tol) % (int(inj) + 1),
			PointsPerturbed: int(pp) % (int(pt) + 1),
			PointsTotal:     int(pt),
		}
		fc, ic := m.FaultCoverage(), m.InteractionCoverage()
		return fc >= 0 && fc <= 1 && ic >= 0 && ic <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: classification is monotone — improving both coverages never
// moves the metric to a strictly worse region.
func TestClassifyMonotone(t *testing.T) {
	t.Parallel()
	rank := map[Region]int{RegionInadequate: 0, RegionNarrow: 1, RegionInsecure: 1, RegionSafe: 2}
	f := func(tol, pp uint8) bool {
		base := Metric{FaultsInjected: 100, FaultsTolerated: int(tol) % 101,
			PointsTotal: 100, PointsPerturbed: int(pp) % 101}
		better := base
		if better.FaultsTolerated < 100 {
			better.FaultsTolerated++
		}
		if better.PointsPerturbed < 100 {
			better.PointsPerturbed++
		}
		return rank[Classify(better)] >= rank[Classify(base)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
