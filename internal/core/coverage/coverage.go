// Package coverage implements the paper's two-dimensional test-adequacy
// metric (Section 3.2, Figure 2): fault coverage — the fraction of
// injected faults the application tolerated — crossed with interaction
// coverage — the fraction of environment-interaction points that were
// perturbed at all.
package coverage

import "fmt"

// Metric is one point on the Figure 2 plane.
type Metric struct {
	// FaultsInjected is n in the Section 3.3 procedure.
	FaultsInjected int
	// FaultsTolerated is FaultsInjected minus the runs that violated the
	// security policy.
	FaultsTolerated int
	// PointsPerturbed is the number of interaction points where at least
	// one fault was injected.
	PointsPerturbed int
	// PointsTotal is the number of interaction points observed on the
	// execution trace.
	PointsTotal int
}

// FaultCoverage returns tolerated/injected — the paper's vulnerability
// assessment score. With no injections it returns 1 (vacuous toleration).
func (m Metric) FaultCoverage() float64 {
	if m.FaultsInjected == 0 {
		return 1
	}
	return float64(m.FaultsTolerated) / float64(m.FaultsInjected)
}

// InteractionCoverage returns perturbed/total interaction points. With no
// points it returns 0.
func (m Metric) InteractionCoverage() float64 {
	if m.PointsTotal == 0 {
		return 0
	}
	return float64(m.PointsPerturbed) / float64(m.PointsTotal)
}

// Violations returns the number of non-tolerated injections.
func (m Metric) Violations() int { return m.FaultsInjected - m.FaultsTolerated }

// String renders the metric as "(IC=0.80, FC=0.78)".
func (m Metric) String() string {
	return fmt.Sprintf("(IC=%.2f, FC=%.2f)", m.InteractionCoverage(), m.FaultCoverage())
}

// Region is one of the four significant regions of the Figure 2 plane.
type Region int

// Regions, numbered as the figure's sample points.
const (
	// RegionInadequate (point 1): low interaction and low fault coverage —
	// the test says nothing.
	RegionInadequate Region = iota + 1
	// RegionNarrow (point 2): high fault coverage but few interactions
	// perturbed — the apparent robustness is unearned.
	RegionNarrow
	// RegionInsecure (point 3): interactions well covered, faults poorly
	// tolerated — the application is likely vulnerable.
	RegionInsecure
	// RegionSafe (point 4): high interaction and fault coverage — the
	// safest region.
	RegionSafe
)

// String returns the region name.
func (r Region) String() string {
	switch r {
	case RegionInadequate:
		return "inadequate"
	case RegionNarrow:
		return "inadequate(narrow)"
	case RegionInsecure:
		return "insecure"
	case RegionSafe:
		return "safe"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// DefaultThreshold splits "low" from "high" on both axes. The paper leaves
// the split to the tester; 0.75 is this implementation's default.
const DefaultThreshold = 0.75

// Classify places a metric in its Figure 2 region using the default
// threshold.
func Classify(m Metric) Region { return ClassifyAt(m, DefaultThreshold, DefaultThreshold) }

// ClassifyAt places a metric using explicit per-axis thresholds.
func ClassifyAt(m Metric, icThreshold, fcThreshold float64) Region {
	highIC := m.InteractionCoverage() >= icThreshold
	highFC := m.FaultCoverage() >= fcThreshold
	switch {
	case highIC && highFC:
		return RegionSafe
	case highIC:
		return RegionInsecure
	case highFC:
		return RegionNarrow
	default:
		return RegionInadequate
	}
}

// Adequate reports whether the metric satisfies the adequacy criterion on
// the interaction axis (Section 3.3 step 9 loops until it does).
func Adequate(m Metric, icThreshold float64) bool {
	return m.InteractionCoverage() >= icThreshold
}
