package coord_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core/coord"
	"repro/internal/core/sched"
)

// TestSourceCompleteNeverBlocks pins the spill-queue fix: a worker
// enqueueing completions while the coordinator is unreachable (here: a
// complete endpoint that hangs) must never block, no matter how many
// results pile up — the old bounded upload channel stalled the whole
// dispatcher at its capacity.
func TestSourceCompleteNeverBlocks(t *testing.T) {
	t.Parallel()
	jobs, catalog := suiteCatalog(t)
	co := coord.New(catalog, coord.Options{LeaseTTL: time.Minute})
	inner := coord.NewServer(co)
	gate := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/coord/complete" {
			<-gate
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	cl := register(t, srv.URL, "spill", catalog)
	for range catalog {
		if _, status, err := cl.Claim(); err != nil || status != coord.ClaimGranted {
			t.Fatalf("claim = (%v, %v)", status, err)
		}
	}
	src, err := coord.NewSource(cl, jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Far more completions than the old channel capacity (128), all
	// enqueued while the uploader is stuck behind the gate. Error
	// outcomes keep the payloads trivial; first-write-wins dedups the
	// repeats server-side once the gate opens.
	const n = 200
	enqueued := make(chan struct{})
	go func() {
		defer close(enqueued)
		for i := 0; i < n; i++ {
			seq := i % len(jobs)
			src.Complete(sched.SourcedJob{Job: jobs[seq], Seq: seq},
				sched.CampaignResult{Job: jobs[seq], Err: errors.New("synthetic")})
		}
	}()
	select {
	case <-enqueued:
	case <-time.After(10 * time.Second):
		t.Fatal("Complete blocked with the coordinator unreachable — the spill queue is bounded")
	}

	close(gate)
	src.Close()
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	st := co.Stats()
	if st.Done != len(catalog) || st.Duplicates != n-len(catalog) {
		t.Errorf("after flush: %d done / %d duplicates, want %d/%d", st.Done, st.Duplicates, len(catalog), n-len(catalog))
	}
}
