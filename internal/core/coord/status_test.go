package coord_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core/coord"
	"repro/internal/core/inject"
	"repro/internal/core/store"
)

// runsOutcome builds a valid completion for catalog index idx whose
// result carries `runs` injection entries, so the status page's
// runs/sec accounting has something to count.
func runsOutcome(t *testing.T, idx, runs int) coord.Outcome {
	t.Helper()
	label := testCatalog[idx]
	name, variant, _ := strings.Cut(label, "/")
	b, err := store.EncodeResult(&inject.Result{
		Campaign:   label,
		Injections: make([]inject.Injection, runs),
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord.Outcome{Name: name, Variant: variant, Result: b}
}

// TestStatusSnapshot drives the queue on the fake clock and pins every
// live field the /v1/status surface reports: phase counts, per-worker
// leases and heartbeat ages, run totals, throughput, and the ETA.
func TestStatusSnapshot(t *testing.T) {
	t.Parallel()
	co, clk, ids := newCoord(t, "alpha", "beta")
	a, b := ids[0], ids[1]

	// Before any completion there is no rate to extrapolate.
	st := co.Status()
	if st.Schema != coord.StatusSchemaVersion {
		t.Fatalf("schema = %q, want %q", st.Schema, coord.StatusSchemaVersion)
	}
	if st.EtaMillis != -1 || st.RunsPerSec != 0 || st.Pending != 4 {
		t.Fatalf("fresh status = %+v, want eta -1, rate 0, 4 pending", st)
	}

	mustClaim(t, co, a, 0)
	mustClaim(t, co, a, 1)
	mustClaim(t, co, b, 2)

	clk.Advance(4 * time.Second)
	if dup, err := co.Complete(a, 0, runsOutcome(t, 0, 8)); err != nil || dup {
		t.Fatalf("Complete(a, 0) = (dup %v, %v)", dup, err)
	}

	st = co.Status()
	if st.Pending != 1 || st.Claimed != 2 || st.Done != 1 {
		t.Fatalf("phases = %d/%d/%d, want 1 pending, 2 claimed, 1 done", st.Pending, st.Claimed, st.Done)
	}
	if st.RunsDone != 8 || st.ElapsedMillis != 4000 {
		t.Fatalf("runs/elapsed = %d/%dms, want 8/4000ms", st.RunsDone, st.ElapsedMillis)
	}
	if st.RunsPerSec != 2 {
		t.Fatalf("rate = %g runs/s, want 2", st.RunsPerSec)
	}
	// 1 job in 4s leaves 3 jobs ≈ 12s.
	if st.EtaMillis != 12000 {
		t.Fatalf("eta = %dms, want 12000", st.EtaMillis)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(st.Workers))
	}
	wa, wb := st.Workers[0], st.Workers[1]
	// The completion refreshed alpha's heartbeat; beta has been silent
	// since its claim at t0.
	if wa.Name != "alpha" || wa.HeartbeatAgeMillis != 0 || len(wa.ActiveLeases) != 1 || wa.ActiveLeases[0] != 1 {
		t.Fatalf("alpha status = %+v, want fresh heartbeat holding lease 1", wa)
	}
	if wb.HeartbeatAgeMillis != 4000 || len(wb.ActiveLeases) != 1 || wb.ActiveLeases[0] != 2 {
		t.Fatalf("beta status = %+v, want 4000ms-old heartbeat holding lease 2", wb)
	}
	if wa.RunsDone != 8 || wb.RunsDone != 0 {
		t.Fatalf("per-worker runs = %d/%d, want 8/0", wa.RunsDone, wb.RunsDone)
	}

	// Both remaining leases (granted at t0, 10s TTL) expire by t11; the
	// snapshot's sweep requeues them, so the page never shows a lease
	// the coordinator would not honour.
	clk.Advance(7 * time.Second)
	st = co.Status()
	if st.Claimed != 0 || st.Pending != 3 || st.Requeues != 2 {
		t.Fatalf("post-expiry status = %+v, want 0 claimed, 3 pending, 2 requeues", st)
	}
	if n := len(st.Workers[0].ActiveLeases) + len(st.Workers[1].ActiveLeases); n != 0 {
		t.Fatalf("active leases after expiry = %d, want 0", n)
	}
	if st.EtaMillis != 33000 {
		t.Fatalf("eta = %dms, want 33000 (1 job per 11s, 3 left)", st.EtaMillis)
	}

	// Jobs 1-3 are pending again; beta re-claims and completes them.
	for idx := 1; idx < 4; idx++ {
		mustClaim(t, co, b, idx)
	}
	for idx := 1; idx < 4; idx++ {
		if _, err := co.Complete(b, idx, runsOutcome(t, idx, 2)); err != nil {
			t.Fatal(err)
		}
	}
	st = co.Status()
	if !st.Drained || st.EtaMillis != 0 || st.RunsDone != 14 {
		t.Fatalf("drained status = %+v, want drained, eta 0, 14 runs", st)
	}
}

// TestStatusEndpoints serves the JSON and HTML status surfaces over
// HTTP and checks the wire shapes CI curls mid-run.
func TestStatusEndpoints(t *testing.T) {
	t.Parallel()
	co, _, ids := newCoord(t, "smoke")
	mustClaim(t, co, ids[0], 0)

	mux := http.NewServeMux()
	mux.Handle("GET /v1/status", coord.StatusHandler(co))
	mux.Handle("GET /status", coord.StatusPage(co))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("status content type = %q", ct)
	}
	var st coord.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status JSON does not decode: %v", err)
	}
	if st.Schema != coord.StatusSchemaVersion || st.Jobs != 4 || st.Claimed != 1 || len(st.Workers) != 1 {
		t.Fatalf("status = %+v, want schema %s with 4 jobs, 1 claimed, 1 worker", st, coord.StatusSchemaVersion)
	}

	resp, err = http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("page content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"eptest coordinator", "smoke", `http-equiv="refresh"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("status page missing %q:\n%s", want, body)
		}
	}
}

// TestStatusAfterRestoreShowsNoThroughput pins the restart fix: a
// coordinator that reloaded finished work from its journal has
// observed no throughput itself, so it reports rate 0 and ETA -1 (the
// page's "ETA —") instead of extrapolating from work it never timed.
func TestStatusAfterRestoreShowsNoThroughput(t *testing.T) {
	t.Parallel()
	co, clk, mj, cache, id := journaledCoord(t)
	mustClaim(t, co, id, 0)
	clk.Advance(2 * time.Second)
	if dup, err := co.Complete(id, 0, fakeOutcomeFP(t, 0)); err != nil || dup {
		t.Fatalf("Complete = (dup %v, %v)", dup, err)
	}

	co2 := restore(t, clk, mj, cache)
	clk.Advance(3 * time.Second)
	st := co2.Status()
	if st.Done != 1 {
		t.Fatalf("restored done = %d, want the journaled completion", st.Done)
	}
	if st.RunsPerSec != 0 || st.EtaMillis != -1 {
		t.Fatalf("restored rate/eta = %g/%d, want 0/-1 until this process records a completion", st.RunsPerSec, st.EtaMillis)
	}

	srv := httptest.NewServer(coord.StatusPage(co2))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "ETA —") {
		t.Errorf("restored status page does not render the em-dash ETA:\n%s", body)
	}

	// The first live completion restores the extrapolation.
	mustClaim(t, co2, id, 1)
	if dup, err := co2.Complete(id, 1, fakeOutcomeFP(t, 1)); err != nil || dup {
		t.Fatalf("Complete = (dup %v, %v)", dup, err)
	}
	if st := co2.Status(); st.EtaMillis < 0 {
		t.Errorf("post-completion eta = %d, want live extrapolation", st.EtaMillis)
	}
}
