package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core/obs"
	"repro/internal/core/store"
)

// The coordinator's HTTP surface, mounted beside the cache server's
// /v1/campaigns and /v1/shards endpoints by `eptest -serve-coord`
// (docs/COORDINATOR.md spells out the schemas and failure semantics):
//
//	POST /v1/coord/register -> RegisterResponse
//	POST /v1/coord/claim    -> ClaimResponse
//	POST /v1/coord/renew    -> RenewResponse
//	POST /v1/coord/complete -> CompleteResponse
//	GET  /v1/coord/state    -> Stats
const (
	// Prefix is the coordinator's endpoint namespace, for mounting the
	// server on a shared mux.
	Prefix       = "/v1/coord/"
	registerPath = Prefix + "register"
	claimPath    = Prefix + "claim"
	renewPath    = Prefix + "renew"
	completePath = Prefix + "complete"
	statePath    = Prefix + "state"
)

// maxBodyBytes bounds request bodies. Completion outcomes carry one
// campaign result each — tens of kilobytes for the largest catalog
// campaigns — so this is generous headroom, not a limit to meet.
const maxBodyBytes = 256 << 20

// Server exposes a Coordinator over HTTP.
type Server struct {
	co  *Coordinator
	mux *http.ServeMux
}

// NewServer returns an http.Handler serving co under Prefix.
func NewServer(co *Coordinator) *Server {
	s := &Server{co: co, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST "+registerPath, s.register)
	s.mux.HandleFunc("POST "+claimPath, s.claim)
	s.mux.HandleFunc("POST "+renewPath, s.renew)
	s.mux.HandleFunc("POST "+completePath, s.complete)
	s.mux.HandleFunc("GET "+statePath, s.state)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// readBody drains a bounded request body, writing the HTTP error
// itself so handlers can simply return.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return b, true
}

// reply writes a JSON response body.
func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// coordErr maps coordinator-state errors onto 409 Conflict: the
// request was well-formed, but the queue disagrees with its premise
// (unknown worker, catalog mismatch, label mismatch).
func coordErr(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusConflict)
}

// pollInterval is the claim-poll cadence the server suggests to
// waiting workers: fast enough that a requeued job is picked up
// promptly, slow enough that a parked fleet is not a busy loop.
func (s *Server) pollInterval() time.Duration {
	if p := s.co.LeaseTTL() / 4; p < 200*time.Millisecond {
		return p
	}
	return 200 * time.Millisecond
}

func (s *Server) register(w http.ResponseWriter, r *http.Request) {
	b, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeRegister(b)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.co.Register(req.Worker, req.Catalog)
	if err != nil {
		coordErr(w, err)
		return
	}
	reply(w, RegisterResponse{
		Proto:       ProtocolVersion,
		WorkerID:    id,
		LeaseMillis: s.co.LeaseTTL().Milliseconds(),
		PollMillis:  s.pollInterval().Milliseconds(),
		Jobs:        len(s.co.catalog),
		Resumed:     s.co.Resumed(),
	})
}

// claimHoldFor bounds how long a claim request long-polls before
// answering "wait": long enough that a parked fleet costs almost no
// request traffic, short enough that proxies and timeouts stay happy.
func (s *Server) claimHoldFor() time.Duration {
	if hold := s.co.LeaseTTL() / 2; hold < 2*time.Second {
		return hold
	}
	return 2 * time.Second
}

func (s *Server) claim(w http.ResponseWriter, r *http.Request) {
	b, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeClaim(b)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Long-poll: while the queue is momentarily empty (every remaining
	// job leased to someone), hold the request open and retry on each
	// state change — a completion that drains the queue, or the next
	// lease expiry, whose sweep requeues work — so workers learn of
	// both within milliseconds instead of a poll interval later.
	deadline := time.Now().Add(s.claimHoldFor())
	for {
		// Snapshot the change channel BEFORE deciding, so an edge that
		// fires between the decision and the select is not lost.
		change := s.co.Changed()
		idx, status, err := s.co.Claim(req.WorkerID)
		if err != nil {
			coordErr(w, err)
			return
		}
		switch status {
		case ClaimGranted:
			reply(w, ClaimResponse{Status: statusClaimed, Index: idx, Label: s.co.catalog[idx]})
			return
		case ClaimDrained:
			reply(w, ClaimResponse{Status: statusDrained})
			return
		}
		now := time.Now()
		if !now.Before(deadline) {
			reply(w, ClaimResponse{Status: statusWait})
			return
		}
		wakeAt := deadline
		if exp, ok := s.co.NextExpiry(); ok && exp.Before(wakeAt) {
			wakeAt = exp
		}
		wait := time.Until(wakeAt) + time.Millisecond
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		timer := time.NewTimer(wait)
		select {
		case <-change:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
		timer.Stop()
	}
}

func (s *Server) renew(w http.ResponseWriter, r *http.Request) {
	b, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeRenew(b)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	renewed, lost, err := s.co.Renew(req.WorkerID, req.Indices)
	if err != nil {
		coordErr(w, err)
		return
	}
	reply(w, RenewResponse{Renewed: renewed, Lost: lost})
}

func (s *Server) complete(w http.ResponseWriter, r *http.Request) {
	b, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeComplete(b)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dup, err := s.co.Complete(req.WorkerID, req.Index, req.Outcome)
	if err != nil {
		coordErr(w, err)
		return
	}
	reply(w, CompleteResponse{Duplicate: dup})
}

func (s *Server) state(w http.ResponseWriter, r *http.Request) {
	reply(w, s.co.Stats())
}

// Client speaks the coordinator protocol against a running
// `eptest -serve-coord`. Unlike the cache transport, coordinator calls
// do not degrade silently: a claim or completion that cannot reach the
// server is retried by the Source, and surfaced as an error when the
// server stays away — losing the coordinator means losing the queue,
// which a worker must report rather than paper over.
type Client struct {
	base  string
	hc    *http.Client
	token string

	workerID string
	lease    time.Duration
	poll     time.Duration
}

// ClientOption configures Dial.
type ClientOption func(*Client)

// WithToken makes the client send `Authorization: Bearer token` on
// every request, matching a server started with -auth-token.
func WithToken(token string) ClientOption {
	return func(c *Client) { c.token = token }
}

// WithMetrics instruments the client's transport: every coordinator
// round trip is recorded as eptest_http_client_* counters and latency
// samples in r, labelled by normalised route.
func WithMetrics(r *obs.Registry) ClientOption {
	return func(c *Client) { c.hc.Transport = obs.RoundTripper(r, c.hc.Transport) }
}

// Dial validates a coordinator URL and returns a client for it. No
// connection is attempted; Register is the first round trip.
func Dial(rawURL string, opts ...ClientOption) (*Client, error) {
	base, err := store.ValidateBaseURL(rawURL, "coordinator URL")
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	c := &Client{
		base: base,
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Base returns the coordinator URL the client was dialled with.
func (c *Client) Base() string { return c.base }

// WorkerID returns the id the coordinator assigned at Register.
func (c *Client) WorkerID() string { return c.workerID }

// LeaseTTL returns the lease duration the coordinator granted.
func (c *Client) LeaseTTL() time.Duration { return c.lease }

// PollInterval returns the claim-poll cadence the coordinator suggested.
func (c *Client) PollInterval() time.Duration { return c.poll }

// post issues one JSON round trip. Non-2xx statuses become errors
// carrying the server's diagnostic.
func (c *Client) post(path string, reqBody, respBody any) error {
	b, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("coord: encode %s: %w", path, err)
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("coord: POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(respBody); err != nil {
		return fmt.Errorf("coord: decode %s response: %w", path, err)
	}
	return nil
}

// Register admits this client to the queue. catalog must be the full
// job-label list the worker was built with; the coordinator rejects a
// mismatch.
func (c *Client) Register(name string, catalog []string) error {
	var resp RegisterResponse
	err := c.post(registerPath, &RegisterRequest{Proto: ProtocolVersion, Worker: name, Catalog: catalog}, &resp)
	if err != nil {
		return err
	}
	if resp.WorkerID == "" || resp.LeaseMillis <= 0 {
		return fmt.Errorf("coord: register: malformed response (worker %q, lease %dms)", resp.WorkerID, resp.LeaseMillis)
	}
	c.workerID = resp.WorkerID
	c.lease = time.Duration(resp.LeaseMillis) * time.Millisecond
	c.poll = time.Duration(resp.PollMillis) * time.Millisecond
	if c.poll <= 0 {
		c.poll = 200 * time.Millisecond
	}
	return nil
}

// Claim asks for the next job.
func (c *Client) Claim() (idx int, status ClaimStatus, err error) {
	var resp ClaimResponse
	if err := c.post(claimPath, &ClaimRequest{Proto: ProtocolVersion, WorkerID: c.workerID}, &resp); err != nil {
		return 0, 0, err
	}
	switch resp.Status {
	case statusClaimed:
		if resp.Index < 0 {
			return 0, 0, fmt.Errorf("coord: claim granted a negative index %d", resp.Index)
		}
		return resp.Index, ClaimGranted, nil
	case statusWait:
		return 0, ClaimWait, nil
	case statusDrained:
		return 0, ClaimDrained, nil
	}
	return 0, 0, fmt.Errorf("coord: claim: unknown status %q", resp.Status)
}

// Renew heartbeats the given in-flight claims, returning the indices
// whose leases are lost.
func (c *Client) Renew(indices []int) (lost []int, err error) {
	var resp RenewResponse
	if err := c.post(renewPath, &RenewRequest{Proto: ProtocolVersion, WorkerID: c.workerID, Indices: indices}, &resp); err != nil {
		return nil, err
	}
	return resp.Lost, nil
}

// Complete reports one job's outcome; duplicate means the coordinator
// already had a result for the index and discarded this one.
func (c *Client) Complete(idx int, out Outcome) (duplicate bool, err error) {
	var resp CompleteResponse
	if err := c.post(completePath, &CompleteRequest{Proto: ProtocolVersion, WorkerID: c.workerID, Index: idx, Outcome: out}, &resp); err != nil {
		return false, err
	}
	return resp.Duplicate, nil
}

// State fetches the coordinator's stats snapshot.
func (c *Client) State() (Stats, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+statePath, nil)
	if err != nil {
		return Stats{}, fmt.Errorf("coord: %w", err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Stats{}, fmt.Errorf("coord: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return Stats{}, fmt.Errorf("coord: GET %s: %s: %s", statePath, resp.Status, bytes.TrimSpace(msg))
	}
	var st Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(&st); err != nil {
		return Stats{}, fmt.Errorf("coord: decode state: %w", err)
	}
	return st, nil
}
