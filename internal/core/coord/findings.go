package coord

// Live findings aggregation: as completions land (and as journal
// replay re-records them), each outcome's violations are extracted
// into a compact per-job cache, so GET /v1/findings, the status page,
// and per-campaign counts serve the fleet's security results without
// re-decoding stored outcomes on every poll. The assembled report is
// canonical — byte-identical to the file `eptest -all -findings`
// writes for the same outcomes.

import (
	"net/http"
	"sort"

	"repro/internal/core/findings"
	"repro/internal/core/sched"
	"repro/internal/core/store"
	"repro/internal/vulndb"
)

// findingOcc is one violating trace with its cluster signature.
type findingOcc struct {
	sig sched.Signature
	tr  findings.Trace
}

// jobFindings is one completed job's violation extract.
type jobFindings struct {
	app, variant string
	occs         []findingOcc
	// classes counts the distinct signatures among occs — the number of
	// finding records this job contributes.
	classes int
}

// extractFindingsLocked decodes a freshly recorded outcome's result
// and caches its violation occurrences on the job record, folding each
// into the eptest_findings_total counters. Failed campaigns and
// undecodable results contribute nothing (the merge path will surface
// the latter loudly). Callers hold co.mu.
func (co *Coordinator) extractFindingsLocked(idx int, o *Outcome) {
	if o.Err != "" || len(o.Result) == 0 {
		return
	}
	res, err := store.DecodeResult(o.Result)
	if err != nil {
		co.logf("coord: outcome for job %d (%s): result undecodable for findings: %v", idx, co.catalog[idx], err)
		return
	}
	jf := &jobFindings{app: o.Name, variant: o.Variant}
	seen := map[sched.Signature]bool{}
	for _, in := range res.Violations() {
		for _, v := range in.Violations {
			sig := sched.Signature{
				Rule:  v.Kind,
				Class: in.Class,
				Attr:  in.Attr,
				Sem:   in.Sem,
				Kind:  in.Kind,
			}
			if !seen[sig] {
				seen[sig] = true
				jf.classes++
			}
			jf.occs = append(jf.occs, findingOcc{sig: sig, tr: findings.Trace{
				Point:  in.Point,
				Fault:  in.FaultID,
				Object: v.Object,
				Detail: v.Detail,
			}})
			findings.Count(co.reg, o.Name, sig.Rule.String(),
				vulndb.CategoryOfFinding(in.Class, in.Kind, in.Attr), 1)
		}
	}
	if len(jf.occs) > 0 {
		co.jobs[idx].finds = jf
	}
}

// FindingsReport assembles the canonical findings report over every
// recorded outcome so far. Mid-drain it covers the completed subset;
// after the drain it is byte-identical (encoded) to the export of a
// single-process run over the same catalog.
func (co *Coordinator) FindingsReport() *findings.Report {
	co.mu.Lock()
	defer co.mu.Unlock()
	b := findings.NewBuilder()
	for i := range co.jobs {
		jf := co.jobs[i].finds
		if jf == nil {
			continue
		}
		for _, oc := range jf.occs {
			b.Add(jf.app, jf.variant, oc.sig, oc.tr)
		}
	}
	return b.Report()
}

// TopFindings returns the n largest findings by trace count (canonical
// report order breaking ties), for the status page's findings section.
func (co *Coordinator) TopFindings(n int) []findings.Finding {
	rep := co.FindingsReport()
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		return len(rep.Findings[i].Traces) > len(rep.Findings[j].Traces)
	})
	if len(rep.Findings) > n {
		rep.Findings = rep.Findings[:n]
	}
	return rep.Findings
}

// FindingsHandler serves the live findings report at GET /v1/findings
// in the canonical eptest-findings/1 encoding, so `curl | eptest -diff`
// round-trips against file exports byte-for-byte.
func FindingsHandler(co *Coordinator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, err := co.FindingsReport().Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
}
