package coord_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core/coord"
	"repro/internal/core/sched"
	"repro/internal/core/store"
)

// suiteCatalog builds a small real job slice (the lpr campaigns) and
// its label catalog.
func suiteCatalog(t *testing.T) ([]sched.Job, []string) {
	t.Helper()
	jobs := sched.FilterJobs(apps.SuiteJobs(), "lpr*")
	if len(jobs) == 0 {
		t.Fatal("lpr* selects no jobs")
	}
	catalog := make([]string, len(jobs))
	for i, j := range jobs {
		catalog[i] = j.Label()
	}
	return jobs, catalog
}

// startCoord serves a coordinator over httptest and returns a dialled,
// registered client factory.
func startCoord(t *testing.T, catalog []string, ttl time.Duration) (*coord.Coordinator, *httptest.Server) {
	t.Helper()
	co := coord.New(catalog, coord.Options{LeaseTTL: ttl})
	srv := httptest.NewServer(coord.NewServer(co))
	t.Cleanup(srv.Close)
	return co, srv
}

func register(t *testing.T, url, name string, catalog []string) *coord.Client {
	t.Helper()
	cl, err := coord.Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Register(name, catalog); err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestHTTPRoundTrip drives every endpoint through the real client:
// register, claim, renew, complete, duplicate completion, state.
func TestHTTPRoundTrip(t *testing.T) {
	t.Parallel()
	jobs, catalog := suiteCatalog(t)
	_, srv := startCoord(t, catalog, time.Minute)
	cl := register(t, srv.URL, "rt", catalog)
	if cl.WorkerID() == "" || cl.LeaseTTL() != time.Minute {
		t.Fatalf("register: id %q, ttl %v", cl.WorkerID(), cl.LeaseTTL())
	}

	idx, status, err := cl.Claim()
	if err != nil || status != coord.ClaimGranted || idx != 0 {
		t.Fatalf("claim = (%d, %v, %v)", idx, status, err)
	}
	lost, err := cl.Renew([]int{idx})
	if err != nil || len(lost) != 0 {
		t.Fatalf("renew = (%v, %v)", lost, err)
	}

	// Run the real campaign so the outcome round-trips a real result.
	res, err := sched.RunCampaign(jobs[idx].Build(), sched.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	name, variant, _ := strings.Cut(catalog[idx], "/")
	out := coord.Outcome{Name: name, Variant: variant, Result: b}
	if dup, err := cl.Complete(idx, out); err != nil || dup {
		t.Fatalf("complete = (dup %v, %v)", dup, err)
	}
	if dup, err := cl.Complete(idx, out); err != nil || !dup {
		t.Fatalf("second complete = (dup %v, %v), want duplicate", dup, err)
	}

	st, err := cl.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Jobs != len(catalog) || st.Duplicates != 1 {
		t.Errorf("state = %+v", st)
	}
}

// TestHTTPRejectsMalformed pins the coordinator's input hygiene: junk
// bodies, protocol skew, and unregistered workers are 4xx, never 5xx
// or state corruption.
func TestHTTPRejectsMalformed(t *testing.T) {
	t.Parallel()
	_, catalog := suiteCatalog(t)
	_, srv := startCoord(t, catalog, time.Minute)

	post := func(path, body string) int {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := map[string]struct {
		path, body string
		want       int
	}{
		"junk register":     {"/v1/coord/register", "{", http.StatusBadRequest},
		"wrong proto":       {"/v1/coord/claim", `{"proto":"eptest-coord/0","worker_id":"w1"}`, http.StatusBadRequest},
		"no worker":         {"/v1/coord/claim", `{"proto":"eptest-coord/2"}`, http.StatusBadRequest},
		"unknown worker":    {"/v1/coord/claim", `{"proto":"eptest-coord/2","worker_id":"w9"}`, http.StatusConflict},
		"negative complete": {"/v1/coord/complete", `{"proto":"eptest-coord/2","worker_id":"w9","index":-1,"outcome":{"name":"x"}}`, http.StatusBadRequest},
		"catalog mismatch":  {"/v1/coord/register", `{"proto":"eptest-coord/2","worker":"w","catalog":["zzz"]}`, http.StatusConflict},
		"empty label":       {"/v1/coord/register", `{"proto":"eptest-coord/2","worker":"w","catalog":[""]}`, http.StatusBadRequest},
	}
	for name, tc := range cases {
		if got := post(tc.path, tc.body); got != tc.want {
			t.Errorf("%s: status %d, want %d", name, got, tc.want)
		}
	}
}

// TestElasticWorkersKillOneMidRun is the subsystem acceptance test: a
// worker that claims jobs and dies (its source closed without
// completing) loses its leases, a second worker joins mid-run and
// drains the queue, and the coordinator's assembled suite result is
// identical — campaign for campaign, byte for byte through the wire
// codec — to a single-process RunSuite over the same catalog.
func TestElasticWorkersKillOneMidRun(t *testing.T) {
	t.Parallel()
	jobs, catalog := suiteCatalog(t)
	co, srv := startCoord(t, catalog, 300*time.Millisecond)

	// The doomed worker claims two jobs and crashes: no renewals, no
	// completions — exactly what SIGKILL leaves behind.
	doomed := register(t, srv.URL, "doomed", catalog)
	for i := 0; i < 2; i++ {
		if _, status, err := doomed.Claim(); err != nil || status != coord.ClaimGranted {
			t.Fatalf("doomed claim = (%v, %v)", status, err)
		}
	}

	// The survivor joins afterwards and drains everything, waiting out
	// the doomed worker's leases.
	survivor := register(t, srv.URL, "survivor", catalog)
	src, err := coord.NewSource(survivor, jobs)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := sched.RunSuiteFrom(src, sched.SuiteOptions{Workers: 4})
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got.Campaigns) != len(jobs) {
		t.Fatalf("survivor ran %d campaigns, want all %d", len(got.Campaigns), len(jobs))
	}

	select {
	case <-co.Drained():
	case <-time.After(5 * time.Second):
		t.Fatal("queue never drained")
	}
	merged, err := co.SuiteResult()
	if err != nil {
		t.Fatal(err)
	}
	want := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4})
	if len(merged.Campaigns) != len(want.Campaigns) {
		t.Fatalf("merged %d campaigns, want %d", len(merged.Campaigns), len(want.Campaigns))
	}
	for i := range want.Campaigns {
		wb, err := store.EncodeResult(want.Campaigns[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := store.EncodeResult(merged.Campaigns[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("campaign %d (%s) differs between coordinator merge and direct run", i, catalog[i])
		}
	}
	st := co.Stats()
	if st.Requeues < 2 {
		t.Errorf("requeues = %d, want >= 2 (the doomed worker's leases)", st.Requeues)
	}
	if !st.Drained || st.Done != len(catalog) {
		t.Errorf("final state = %+v", st)
	}
}

// TestConcurrentWorkersDrainDisjointly runs several Source-backed
// dispatchers against one coordinator at once and checks every job is
// completed exactly once with no duplicates (nobody crashes, so no
// lease ever expires).
func TestConcurrentWorkersDrainDisjointly(t *testing.T) {
	t.Parallel()
	jobs, catalog := suiteCatalog(t)
	co, srv := startCoord(t, catalog, time.Minute)

	const workers = 3
	var wg sync.WaitGroup
	results := make([]*sched.SuiteResult, workers)
	for w := 0; w < workers; w++ {
		cl := register(t, srv.URL, "par", catalog)
		src, err := coord.NewSource(cl, jobs)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, src *coord.Source) {
			defer wg.Done()
			defer src.Close()
			results[w] = sched.RunSuiteFrom(src, sched.SuiteOptions{Workers: 2})
		}(w, src)
	}
	wg.Wait()

	seen := map[string]int{}
	total := 0
	for _, sr := range results {
		for _, c := range sr.Campaigns {
			seen[c.Job.Label()]++
			total++
		}
	}
	if total != len(catalog) {
		t.Errorf("workers ran %d campaigns total, want %d", total, len(catalog))
	}
	for label, n := range seen {
		if n != 1 {
			t.Errorf("%s ran %d times", label, n)
		}
	}
	st := co.Stats()
	if st.Duplicates != 0 || st.Requeues != 0 || !st.Drained {
		t.Errorf("final state = %+v, want clean drain", st)
	}
}
