// Package coord is the distributed campaign coordinator: it serves a
// suite's job catalog as a claimable queue so an elastic fleet of
// worker processes drains one perturbation matrix together, extending
// the in-process work-stealing dispatcher (internal/core/sched) to the
// machine level.
//
// The protocol is lease-based. Workers register against the catalog,
// claim jobs one at a time under time-bounded leases, renew the leases
// of their in-flight claims via heartbeat, and report each outcome
// back. A lease that expires — a crashed, partitioned, or merely slow
// worker — requeues its job for the next claimer, and late duplicate
// completions are resolved first-write-wins, so every catalog index
// ends up with exactly one recorded outcome and the merged suite
// report is byte-identical to a single-process run.
//
// The queue is durable when Options.Journal is set: every state
// transition appends one record, and Restore folds the journal back
// into a coordinator after a crash or restart — in-flight leases keep
// their absolute deadlines (stale ones requeue at the first sweep),
// recorded outcomes are reloaded (cache-resident results by
// reference), and the fleet resumes mid-campaign. Named campaigns —
// filtered, prioritised views over the shared catalog submitted
// through the REST API — ride the same journal. The state machine,
// wire schema, journal records, and failure semantics are specified in
// docs/COORDINATOR.md.
package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/core/obs"
	"repro/internal/core/sched"
)

// DefaultLeaseTTL is the lease duration used when Options.LeaseTTL is
// zero: long enough that a loaded worker heartbeating at TTL/3 never
// loses a lease to scheduling jitter, short enough that a crashed
// worker's jobs requeue before an operator notices the stall.
const DefaultLeaseTTL = 60 * time.Second

// DefaultCampaignName names the implicit campaign covering the full
// catalog. It exists from startup, is never garbage-collected, and is
// what a plain worker fleet drains when nothing has been submitted.
const DefaultCampaignName = "default"

// DefaultCampaignRetention is how long a finished named campaign's
// record stays visible in status endpoints before the sweep drops it,
// when the operator does not override -campaign-retention.
const DefaultCampaignRetention = 24 * time.Hour

// workerGCFloor bounds how aggressively departed workers are folded
// away: even under a very short test-grade lease TTL, a silent worker
// keeps its status row for at least this long, so a fleet riding out a
// coordinator restart (or a test inspecting per-worker counters) never
// loses a row mid-flight.
const workerGCFloor = time.Minute

// Options parameterises a Coordinator.
type Options struct {
	// LeaseTTL is how long a claim stays valid without a renewal.
	// Zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Now is the clock; nil means time.Now. Tests inject a fake clock
	// here to drive expiry deterministically.
	Now func() time.Time
	// Metrics, when non-nil, receives queue telemetry: claim outcomes,
	// renewals, lease expiries, completion results, and job/worker
	// gauges, all under the eptest_coord_* names.
	Metrics *obs.Registry
	// Journal, when non-nil, receives every queue state transition;
	// Restore folds the records back after a restart. Nil means the
	// queue is in-memory only (the pre-durability behaviour).
	Journal Journal
	// Results, when non-nil, is the campaign-result cache the journal
	// dedups against: completed outcomes whose results are
	// cache-resident under their fingerprint are journaled by
	// reference instead of inline, and re-encoded from the cache at
	// restore.
	Results sched.Cache
	// Retention is how long a finished named campaign stays visible
	// before the sweep garbage-collects its record. Zero disables the
	// GC; the default campaign is always exempt.
	Retention time.Duration
	// Logf, when non-nil, receives operational warnings (journal
	// write failures, unreadable cache refs, template render errors).
	// Nil means the standard logger.
	Logf func(format string, args ...any)
}

// jobPhase is one catalog entry's position in the lease state machine.
type jobPhase int

const (
	jobPending jobPhase = iota // unclaimed (initially, or after an expiry requeue)
	jobClaimed                 // leased to a worker
	jobDone                    // outcome recorded; terminal
)

// jobRecord is one catalog entry's coordinator-side state.
type jobRecord struct {
	phase   jobPhase
	worker  string       // lease holder while claimed
	expires time.Time    // lease deadline while claimed
	outcome *Outcome     // recorded result once done
	doneBy  string       // worker whose completion won
	finds   *jobFindings // violation extract once done (nil when clean/failed)
}

// workerStats counts one registered worker's protocol activity.
type workerStats struct {
	id, name                                            string
	claims, renewals, completions, duplicates, expiries int
	runsDone                                            int       // injection runs in recorded outcomes
	lastSeen                                            time.Time // last protocol call (the heartbeat age base)
}

// campaign is one named view over the shared per-index job state. All
// campaigns share the catalog's single lease/outcome record per index
// — a completed index satisfies every campaign containing it, so
// overlapping campaigns dedup by construction. A campaign influences
// claiming only through its priority: Claim hands out the pending
// index whose best containing campaign has the highest priority.
type campaign struct {
	name, filter, note string
	priority           int
	member             []bool // member[i]: catalog index i is in this campaign
	jobs, done         int
	createdAt          time.Time
	finishedAt         time.Time // zero while running

	gPending, gClaimed, gDone *obs.Gauge
}

// DepartedStats aggregates the protocol counters of workers the churn
// sweep has folded away, so the totals a departed worker earned stay
// visible after its status row is gone.
type DepartedStats struct {
	Workers     int `json:"workers"`
	Claims      int `json:"claims,omitempty"`
	Renewals    int `json:"renewals,omitempty"`
	Completions int `json:"completions,omitempty"`
	Duplicates  int `json:"duplicates,omitempty"`
	Expiries    int `json:"expiries,omitempty"`
	RunsDone    int `json:"runs_done,omitempty"`
}

// Coordinator is the lease-based claim queue over one job catalog. All
// methods are safe for concurrent use; expired leases are swept lazily
// on every call, so no background timer is needed.
type Coordinator struct {
	mu      sync.Mutex
	catalog []string
	ttl     time.Duration
	now     func() time.Time
	reg     *obs.Registry

	jobs     []jobRecord
	workers  map[string]*workerStats
	order    []string          // worker ids in registration order
	byName   map[string]string // live worker name -> id, the reattach seam
	nextID   int
	departed DepartedStats

	campaigns map[string]*campaign
	campOrder []string // campaign names in submission order, default first
	retention time.Duration

	journal        Journal
	results        sched.Cache
	logFn          func(format string, args ...any)
	journalErrOnce sync.Once
	resumed        bool

	done       int // jobs in jobDone
	requeues   int
	expiries   int
	duplicates int
	runsDone   int // injection runs across recorded outcomes
	// liveDone/liveRuns count only completions recorded by this
	// process — journal replay restores done/runsDone but not these, so
	// the ETA's observed-throughput base never mixes pre-restart work
	// into the post-restart elapsed time.
	liveDone  int
	liveRuns  int
	startedAt time.Time // queue creation (or restore), the ETA's rate base
	m         coordMetrics
	drained   chan struct{}
	// change is closed and replaced whenever the queue gains pending
	// work or drains — the edges a blocked claim waits on. The HTTP
	// server's long-poll loop selects on it so workers learn about
	// requeues and the drain the moment they happen instead of
	// rediscovering them at the next poll.
	change chan struct{}
}

// New returns a coordinator over the catalog (the label of every job
// in the full suite, in order — what sched.Job.Label renders). With
// Options.Journal set, the journal's meta header is written; use
// Restore to rebuild from an existing journal instead.
func New(catalog []string, opt Options) *Coordinator {
	co := newCoordinator(catalog, opt)
	co.mu.Lock()
	co.appendJournalLocked(co.metaRecordLocked())
	co.mu.Unlock()
	return co
}

// newCoordinator builds the in-memory state shared by New and Restore,
// including the implicit full-catalog default campaign. It writes no
// journal records.
func newCoordinator(catalog []string, opt Options) *Coordinator {
	ttl := opt.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	now := opt.Now
	if now == nil {
		now = time.Now
	}
	co := &Coordinator{
		catalog:   append([]string(nil), catalog...),
		ttl:       ttl,
		now:       now,
		reg:       opt.Metrics,
		jobs:      make([]jobRecord, len(catalog)),
		workers:   make(map[string]*workerStats),
		byName:    make(map[string]string),
		campaigns: make(map[string]*campaign),
		retention: opt.Retention,
		journal:   opt.Journal,
		results:   opt.Results,
		logFn:     opt.Logf,
		startedAt: now(),
		drained:   make(chan struct{}),
		change:    make(chan struct{}),
	}
	co.m.resolve(opt.Metrics)
	// The default campaign always matches the full catalog, so the
	// zero-member error path is unreachable.
	co.newCampaignLocked(DefaultCampaignName, "", 0, "full catalog", co.startedAt)
	co.updateGaugesLocked()
	return co
}

// logf routes an operational warning to Options.Logf or the standard
// logger.
func (co *Coordinator) logf(format string, args ...any) {
	if co.logFn != nil {
		co.logFn(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Resumed reports whether this coordinator was rebuilt from a journal
// (Restore with records) rather than started fresh.
func (co *Coordinator) Resumed() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.resumed
}

// coordMetrics is the coordinator's metric handles, resolved once at
// New. Handles are nil without a registry; obs handles are nil-safe,
// so call sites record unconditionally.
type coordMetrics struct {
	claimGranted, claimWait, claimDrained *obs.Counter
	renewals, expiries                    *obs.Counter
	recorded, duplicates                  *obs.Counter
	workers                               *obs.Gauge
	pending, claimed, doneJobs            *obs.Gauge
}

// resolve looks up every coordinator metric in r (nil-safe).
func (m *coordMetrics) resolve(r *obs.Registry) {
	const claimHelp = "Claim requests by outcome."
	m.claimGranted = r.Counter("eptest_coord_claims_total", claimHelp, "status", "granted")
	m.claimWait = r.Counter("eptest_coord_claims_total", claimHelp, "status", "wait")
	m.claimDrained = r.Counter("eptest_coord_claims_total", claimHelp, "status", "drained")
	m.renewals = r.Counter("eptest_coord_renewals_total", "Leases extended by heartbeats.")
	m.expiries = r.Counter("eptest_coord_lease_expiries_total", "Leases expired and requeued.")
	const doneHelp = "Completion uploads by result."
	m.recorded = r.Counter("eptest_coord_completions_total", doneHelp, "result", "recorded")
	m.duplicates = r.Counter("eptest_coord_completions_total", doneHelp, "result", "duplicate")
	m.workers = r.Gauge("eptest_coord_workers", "Workers registered against the queue.")
	const jobsHelp = "Catalog jobs by lease phase."
	m.pending = r.Gauge("eptest_coord_jobs", jobsHelp, "phase", "pending")
	m.claimed = r.Gauge("eptest_coord_jobs", jobsHelp, "phase", "claimed")
	m.doneJobs = r.Gauge("eptest_coord_jobs", jobsHelp, "phase", "done")
}

// campaignGaugeHelp documents the per-campaign job gauges.
const campaignGaugeHelp = "Campaign jobs by lease phase."

// newCampaignLocked creates a campaign from a filter over the catalog,
// counting already-done members so a campaign submitted after its work
// happened completes instantly. Callers hold co.mu (or own co
// exclusively during construction/restore).
func (co *Coordinator) newCampaignLocked(name, filter string, priority int, note string, created time.Time) (*campaign, error) {
	c := &campaign{
		name: name, filter: filter, priority: priority, note: note,
		member:    make([]bool, len(co.jobs)),
		createdAt: created,
	}
	for i, label := range co.catalog {
		if sched.MatchLabel(filter, label) {
			c.member[i] = true
			c.jobs++
			if co.jobs[i].phase == jobDone {
				c.done++
			}
		}
	}
	if c.jobs == 0 && name != DefaultCampaignName {
		return nil, fmt.Errorf("%w (filter %q)", ErrNoJobs, filter)
	}
	if c.jobs > 0 && c.done == c.jobs {
		c.finishedAt = created
	}
	if co.reg != nil {
		c.gPending = co.reg.Gauge("eptest_coord_campaign_jobs", campaignGaugeHelp, "campaign", name, "phase", "pending")
		c.gClaimed = co.reg.Gauge("eptest_coord_campaign_jobs", campaignGaugeHelp, "campaign", name, "phase", "claimed")
		c.gDone = co.reg.Gauge("eptest_coord_campaign_jobs", campaignGaugeHelp, "campaign", name, "phase", "done")
	}
	co.campaigns[name] = c
	co.campOrder = append(co.campOrder, name)
	co.updateCampaignGaugesLocked(c)
	return c, nil
}

// dropCampaignLocked removes a campaign record (retention GC, or a
// journal campaign-gc replay). Callers hold co.mu.
func (co *Coordinator) dropCampaignLocked(name string) {
	c := co.campaigns[name]
	if c == nil || name == DefaultCampaignName {
		return
	}
	c.gPending.Set(0)
	c.gClaimed.Set(0)
	c.gDone.Set(0)
	delete(co.campaigns, name)
	for i, n := range co.campOrder {
		if n == name {
			co.campOrder = append(co.campOrder[:i], co.campOrder[i+1:]...)
			break
		}
	}
}

// updateCampaignGaugesLocked republishes one campaign's phase gauges.
// Callers hold co.mu.
func (co *Coordinator) updateCampaignGaugesLocked(c *campaign) {
	if c.gPending == nil {
		return
	}
	pending, claimed, done := 0, 0, 0
	for i, in := range c.member {
		if !in {
			continue
		}
		switch co.jobs[i].phase {
		case jobPending:
			pending++
		case jobClaimed:
			claimed++
		case jobDone:
			done++
		}
	}
	c.gPending.Set(int64(pending))
	c.gClaimed.Set(int64(claimed))
	c.gDone.Set(int64(done))
}

// updateGaugesLocked republishes the job-phase gauges. Callers hold
// co.mu (or, in New, exclusive ownership).
func (co *Coordinator) updateGaugesLocked() {
	pending, claimed := 0, 0
	for i := range co.jobs {
		switch co.jobs[i].phase {
		case jobPending:
			pending++
		case jobClaimed:
			claimed++
		}
	}
	co.m.pending.Set(int64(pending))
	co.m.claimed.Set(int64(claimed))
	co.m.doneJobs.Set(int64(co.done))
	for _, name := range co.campOrder {
		co.updateCampaignGaugesLocked(co.campaigns[name])
	}
}

// notifyLocked wakes every blocked claim. Callers hold co.mu.
func (co *Coordinator) notifyLocked() {
	close(co.change)
	co.change = make(chan struct{})
}

// Changed returns a channel closed at the next claim-relevant state
// change (a requeue or the drain).
func (co *Coordinator) Changed() <-chan struct{} {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.change
}

// NextExpiry returns the earliest lease deadline among claimed jobs.
// A long-poll waiter wakes then to run the sweep that requeues it.
func (co *Coordinator) NextExpiry() (time.Time, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	var earliest time.Time
	found := false
	for i := range co.jobs {
		j := &co.jobs[i]
		if j.phase == jobClaimed && (!found || j.expires.Before(earliest)) {
			earliest = j.expires
			found = true
		}
	}
	return earliest, found
}

// LeaseTTL returns the coordinator's lease duration.
func (co *Coordinator) LeaseTTL() time.Duration { return co.ttl }

// Catalog returns the job catalog the coordinator serves.
func (co *Coordinator) Catalog() []string { return append([]string(nil), co.catalog...) }

// sweepLocked advances everything time-driven: it requeues every
// claimed job whose lease has expired, folds long-silent workers into
// the departed aggregate, and drops finished campaigns past their
// retention. Callers hold co.mu.
func (co *Coordinator) sweepLocked() {
	now := co.now()
	requeued := false
	for i := range co.jobs {
		j := &co.jobs[i]
		if j.phase == jobClaimed && !j.expires.After(now) {
			if ws := co.workers[j.worker]; ws != nil {
				ws.expiries++
			}
			co.appendJournalLocked(&JournalRecord{Op: opExpire, Index: i, Worker: j.worker})
			j.phase = jobPending
			j.worker = ""
			j.expires = time.Time{}
			co.expiries++
			co.requeues++
			co.m.expiries.Inc()
			requeued = true
		}
	}
	co.gcWorkersLocked(now)
	co.gcCampaignsLocked(now)
	if requeued {
		co.updateGaugesLocked()
		co.notifyLocked()
	}
}

// gcWorkersLocked folds workers that hold no lease and have been
// silent for max(3×TTL, 1min) into the departed aggregate, so an
// always-on coordinator under worker churn keeps a bounded status
// table instead of one row per join ever. Callers hold co.mu.
func (co *Coordinator) gcWorkersLocked(now time.Time) {
	cutoff := 3 * co.ttl
	if cutoff < workerGCFloor {
		cutoff = workerGCFloor
	}
	held := make(map[string]int)
	for i := range co.jobs {
		if co.jobs[i].phase == jobClaimed {
			held[co.jobs[i].worker]++
		}
	}
	var gone []string
	for _, id := range co.order {
		ws := co.workers[id]
		if held[id] == 0 && now.Sub(ws.lastSeen) >= cutoff {
			gone = append(gone, id)
		}
	}
	for _, id := range gone {
		co.departWorkerLocked(id)
		co.appendJournalLocked(&JournalRecord{Op: opWorkerGone, Worker: id})
	}
	if len(gone) > 0 {
		co.m.workers.Set(int64(len(co.workers)))
	}
}

// departWorkerLocked folds one worker's counters into the departed
// aggregate and removes its row. Callers hold co.mu.
func (co *Coordinator) departWorkerLocked(id string) {
	ws := co.workers[id]
	if ws == nil {
		return
	}
	co.departed.Workers++
	co.departed.Claims += ws.claims
	co.departed.Renewals += ws.renewals
	co.departed.Completions += ws.completions
	co.departed.Duplicates += ws.duplicates
	co.departed.Expiries += ws.expiries
	co.departed.RunsDone += ws.runsDone
	delete(co.workers, id)
	if ws.name != "" && co.byName[ws.name] == id {
		delete(co.byName, ws.name)
	}
	for i, oid := range co.order {
		if oid == id {
			co.order = append(co.order[:i], co.order[i+1:]...)
			break
		}
	}
}

// gcCampaignsLocked drops finished named campaigns older than the
// retention window. Callers hold co.mu.
func (co *Coordinator) gcCampaignsLocked(now time.Time) {
	if co.retention <= 0 {
		return
	}
	var gone []string
	for _, name := range co.campOrder {
		if name == DefaultCampaignName {
			continue
		}
		c := co.campaigns[name]
		if !c.finishedAt.IsZero() && now.Sub(c.finishedAt) >= co.retention {
			gone = append(gone, name)
		}
	}
	for _, name := range gone {
		co.dropCampaignLocked(name)
		co.appendJournalLocked(&JournalRecord{Op: opCampaignGC, Name: name})
	}
}

// Register admits a worker. The worker's catalog must equal the
// coordinator's — a worker built from different flags (or a different
// binary) would claim indices that name other campaigns, so the
// mismatch is rejected up front rather than surfacing as a corrupt
// merge. A worker re-registering under a name the coordinator already
// knows reattaches to its existing stats row and id, so a restarting
// worker keeps one history instead of minting a fresh row per join.
// Returns the worker id used in every subsequent call.
func (co *Coordinator) Register(name string, catalog []string) (string, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if len(catalog) != len(co.catalog) {
		return "", fmt.Errorf("coord: worker catalog has %d jobs, coordinator serves %d (flags or binary mismatch?)", len(catalog), len(co.catalog))
	}
	for i := range catalog {
		if catalog[i] != co.catalog[i] {
			return "", fmt.Errorf("coord: worker catalog disagrees at job %d (%q vs %q); run the worker with the coordinator's -matrix/-filter flags", i, catalog[i], co.catalog[i])
		}
	}
	co.sweepLocked()
	if id, ok := co.byName[name]; ok && name != "" {
		ws := co.workers[id]
		ws.lastSeen = co.now()
		co.appendJournalLocked(&JournalRecord{Op: opRegister, Worker: id, WorkerName: name})
		return id, nil
	}
	co.nextID++
	id := fmt.Sprintf("w%d", co.nextID)
	ws := &workerStats{id: id, name: name, lastSeen: co.now()}
	co.workers[id] = ws
	co.order = append(co.order, id)
	if name != "" {
		co.byName[name] = id
	}
	co.m.workers.Set(int64(len(co.workers)))
	co.appendJournalLocked(&JournalRecord{Op: opRegister, Worker: id, WorkerName: name})
	return id, nil
}

// ClaimStatus discriminates Claim outcomes.
type ClaimStatus int

const (
	// ClaimGranted means a job was leased to the caller.
	ClaimGranted ClaimStatus = iota + 1
	// ClaimWait means every remaining job is currently leased to some
	// worker; the caller should poll again — an expiry may requeue one.
	ClaimWait
	// ClaimDrained means every job is done; the caller can exit.
	ClaimDrained
)

// jobPriorityLocked returns the best priority among unfinished
// campaigns containing index i. The default campaign contains every
// index at priority zero, so the result is at least zero and — with no
// submitted campaigns — uniformly zero, which keeps claiming in plain
// lowest-index order. Callers hold co.mu.
func (co *Coordinator) jobPriorityLocked(i int) int {
	best := 0
	for _, name := range co.campOrder {
		c := co.campaigns[name]
		if c.done < c.jobs && c.member[i] && c.priority > best {
			best = c.priority
		}
	}
	return best
}

// Claim leases a pending job to the worker: the job in the
// highest-priority unfinished campaign, lowest catalog index breaking
// ties (with only the default campaign that is simply the lowest
// pending index). A granted claim must be completed before its lease
// expires, or renewed via Renew; otherwise it requeues for other
// workers.
func (co *Coordinator) Claim(workerID string) (idx int, status ClaimStatus, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	ws := co.workers[workerID]
	if ws == nil {
		return 0, 0, fmt.Errorf("coord: unknown worker %q (register first)", workerID)
	}
	ws.lastSeen = co.now()
	co.sweepLocked()
	if co.done == len(co.jobs) {
		co.m.claimDrained.Inc()
		return 0, ClaimDrained, nil
	}
	best, bestPrio := -1, 0
	for i := range co.jobs {
		if co.jobs[i].phase != jobPending {
			continue
		}
		if p := co.jobPriorityLocked(i); best < 0 || p > bestPrio {
			best, bestPrio = i, p
		}
	}
	if best < 0 {
		co.m.claimWait.Inc()
		return 0, ClaimWait, nil
	}
	deadline := co.now().Add(co.ttl)
	co.jobs[best] = jobRecord{phase: jobClaimed, worker: workerID, expires: deadline}
	ws.claims++
	co.m.claimGranted.Inc()
	co.appendJournalLocked(&JournalRecord{Op: opClaim, Worker: workerID, Index: best, ExpiresMillis: deadline.UnixMilli()})
	co.updateGaugesLocked()
	return best, ClaimGranted, nil
}

// Renew extends the leases the worker still holds on the given
// indices. Indices the worker no longer holds — expired and requeued,
// reclaimed by another worker, or already done — come back in lost;
// the worker may keep executing them (first-write-wins decides), but
// must not assume exclusivity.
func (co *Coordinator) Renew(workerID string, indices []int) (renewed, lost []int, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	ws := co.workers[workerID]
	if ws == nil {
		return nil, nil, fmt.Errorf("coord: unknown worker %q (register first)", workerID)
	}
	ws.lastSeen = co.now()
	co.sweepLocked()
	deadline := co.now().Add(co.ttl)
	var extended []int
	for _, i := range indices {
		if i < 0 || i >= len(co.jobs) {
			return nil, nil, fmt.Errorf("coord: renew index %d out of range [0,%d)", i, len(co.jobs))
		}
		j := &co.jobs[i]
		switch {
		case j.phase == jobClaimed && j.worker == workerID:
			j.expires = deadline
			ws.renewals++
			co.m.renewals.Inc()
			renewed = append(renewed, i)
			extended = append(extended, i)
		case j.phase == jobDone && j.doneBy == workerID:
			// The worker's own completion landed between its renew
			// snapshot and this call — the lease was consumed, not
			// lost, so don't alarm anyone about the TTL.
			renewed = append(renewed, i)
		default:
			lost = append(lost, i)
		}
	}
	if len(extended) > 0 {
		co.appendJournalLocked(&JournalRecord{Op: opRenew, Worker: workerID, Indices: extended, ExpiresMillis: deadline.UnixMilli()})
	}
	return renewed, lost, nil
}

// recordOutcomeLocked installs one job's outcome and updates worker,
// campaign, and aggregate counters — the state change shared by a live
// Complete and a journal replay. The finish time stamps campaigns the
// outcome completes. Returns the outcome's injection-run count.
// Callers hold co.mu (or own co exclusively, as Restore does).
func (co *Coordinator) recordOutcomeLocked(workerID string, idx int, o *Outcome, at time.Time) int {
	co.jobs[idx] = jobRecord{phase: jobDone, outcome: o, doneBy: workerID}
	co.extractFindingsLocked(idx, o)
	runs := countRuns(o)
	if ws := co.workers[workerID]; ws != nil {
		ws.completions++
		ws.runsDone += runs
	}
	co.done++
	co.runsDone += runs
	for _, name := range co.campOrder {
		c := co.campaigns[name]
		if c.member[idx] {
			c.done++
			if c.done == c.jobs && c.finishedAt.IsZero() {
				c.finishedAt = at
			}
		}
	}
	return runs
}

// Complete records one job's outcome. The first completion for an
// index wins regardless of who currently holds the lease — the work is
// deterministic, so any finished result is the result — and every
// later completion is acknowledged as a duplicate and discarded, so a
// slow worker racing its own expired lease can never overwrite the
// merged report. Returns duplicate=true for the discarded case.
func (co *Coordinator) Complete(workerID string, idx int, out Outcome) (duplicate bool, err error) {
	co.mu.Lock()
	ws := co.workers[workerID]
	if ws == nil {
		co.mu.Unlock()
		return false, fmt.Errorf("coord: unknown worker %q (register first)", workerID)
	}
	if idx < 0 || idx >= len(co.jobs) {
		co.mu.Unlock()
		return false, fmt.Errorf("coord: complete index %d out of range [0,%d)", idx, len(co.jobs))
	}
	if label := (sched.Job{Name: out.Name, Variant: out.Variant}).Label(); label != co.catalog[idx] {
		co.mu.Unlock()
		return false, fmt.Errorf("coord: completion for job %d is labelled %q, catalog names it %q", idx, label, co.catalog[idx])
	}
	if err := out.validate(); err != nil {
		co.mu.Unlock()
		return false, fmt.Errorf("coord: completion for job %d: %w", idx, err)
	}
	ws.lastSeen = co.now()
	co.sweepLocked()
	j := &co.jobs[idx]
	if j.phase == jobDone {
		ws.duplicates++
		co.duplicates++
		co.m.duplicates.Inc()
		co.appendJournalLocked(&JournalRecord{Op: opComplete, Worker: workerID, Index: idx, Duplicate: true})
		co.mu.Unlock()
		return true, nil
	}
	o := out
	runs := co.recordOutcomeLocked(workerID, idx, &o, co.now())
	co.liveDone++
	co.liveRuns += runs
	co.m.recorded.Inc()
	jo, ref := co.journalOutcomeLocked(&o, co.catalog[idx])
	co.appendJournalLocked(&JournalRecord{Op: opComplete, Worker: workerID, Index: idx, Outcome: jo, ResultRef: ref})
	co.syncJournalLocked()
	co.updateGaugesLocked()
	allDone := co.done == len(co.jobs)
	if allDone {
		co.notifyLocked()
	}
	co.mu.Unlock()
	if allDone {
		close(co.drained)
	}
	return false, nil
}

// countRuns extracts the injection-run count from an outcome's wire
// payload without a full structural decode: the injections array's
// length is all the status page and ETA need. Malformed or error-only
// outcomes count zero runs.
func countRuns(o *Outcome) int {
	if len(o.Result) == 0 {
		return 0
	}
	var rc struct {
		Injections []json.RawMessage `json:"injections"`
	}
	if json.Unmarshal(o.Result, &rc) != nil {
		return 0
	}
	return len(rc.Injections)
}

// Drained returns a channel closed once every catalog job has a
// recorded outcome.
func (co *Coordinator) Drained() <-chan struct{} { return co.drained }

// Campaign-submission errors, distinguished by the REST layer:
// ErrCampaignExists maps to 409 Conflict, ErrNoJobs to 400.
var (
	ErrCampaignExists = errors.New("coord: campaign name already exists")
	ErrNoJobs         = errors.New("coord: campaign filter matches no catalog jobs")
)

// Submit queues a named campaign: a filtered, prioritised view over
// the catalog. Members already completed count immediately — a
// campaign whose work all happened before submission finishes at
// submission. The spec must already be validated (DecodeCampaignSpec).
func (co *Coordinator) Submit(spec CampaignSpec) (CampaignStatus, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	if _, ok := co.campaigns[spec.Name]; ok {
		return CampaignStatus{}, fmt.Errorf("%w: %q", ErrCampaignExists, spec.Name)
	}
	now := co.now()
	c, err := co.newCampaignLocked(spec.Name, spec.Filter, spec.Priority, spec.Note, now)
	if err != nil {
		return CampaignStatus{}, err
	}
	co.appendJournalLocked(&JournalRecord{
		Op: opCampaign, Name: c.name, Filter: c.filter, Priority: c.priority,
		Note: c.note, CreatedMillis: c.createdAt.UnixMilli(),
	})
	co.syncJournalLocked()
	return co.campaignStatusLocked(c), nil
}

// CampaignStatus is one campaign's point-in-time progress, for the
// REST status endpoints and the status page.
type CampaignStatus struct {
	Name     string `json:"name"`
	Filter   string `json:"filter,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Note     string `json:"note,omitempty"`
	Jobs     int    `json:"jobs"`
	Pending  int    `json:"pending"`
	Claimed  int    `json:"claimed"`
	Done     int    `json:"done"`
	// State is "running" until every member job has an outcome, then
	// "done".
	State          string `json:"state"`
	CreatedMillis  int64  `json:"created_ms"`
	FinishedMillis int64  `json:"finished_ms,omitempty"`
	// Findings counts the distinct violation classes (canonical finding
	// records) among the campaign's completed jobs; Violations counts
	// the violating traces behind them.
	Findings   int `json:"findings,omitempty"`
	Violations int `json:"violations,omitempty"`
}

// campaignStatusLocked snapshots one campaign. Callers hold co.mu.
func (co *Coordinator) campaignStatusLocked(c *campaign) CampaignStatus {
	st := CampaignStatus{
		Name: c.name, Filter: c.filter, Priority: c.priority, Note: c.note,
		Jobs: c.jobs, Done: c.done,
		State:         "running",
		CreatedMillis: c.createdAt.UnixMilli(),
	}
	for i, in := range c.member {
		if !in {
			continue
		}
		switch co.jobs[i].phase {
		case jobPending:
			st.Pending++
		case jobClaimed:
			st.Claimed++
		}
		// Each index is a distinct (app, variant), so summing per-job
		// distinct signatures counts distinct finding records exactly.
		if jf := co.jobs[i].finds; jf != nil {
			st.Findings += jf.classes
			st.Violations += len(jf.occs)
		}
	}
	if c.jobs > 0 && c.done == c.jobs {
		st.State = "done"
	}
	if !c.finishedAt.IsZero() {
		st.FinishedMillis = c.finishedAt.UnixMilli()
	}
	return st
}

// Campaign returns one campaign's status by name.
func (co *Coordinator) Campaign(name string) (CampaignStatus, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	c, ok := co.campaigns[name]
	if !ok {
		return CampaignStatus{}, false
	}
	return co.campaignStatusLocked(c), true
}

// Campaigns returns every campaign's status in submission order,
// default first.
func (co *Coordinator) Campaigns() []CampaignStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	out := make([]CampaignStatus, 0, len(co.campOrder))
	for _, name := range co.campOrder {
		out = append(out, co.campaignStatusLocked(co.campaigns[name]))
	}
	return out
}

// WorkerStats is one worker's protocol counters, for reports.
type WorkerStats struct {
	ID, Name                                            string
	Claims, Renewals, Completions, Duplicates, Expiries int
}

// Stats is a point-in-time snapshot of the coordinator, for the
// report's coordinator section and the /v1/coord/state endpoint.
type Stats struct {
	Jobs    int `json:"jobs"`
	Pending int `json:"pending"`
	Claimed int `json:"claimed"`
	Done    int `json:"done"`
	// Requeues counts expired leases put back in the queue; Duplicates
	// counts late completions discarded first-write-wins.
	Requeues   int           `json:"requeues"`
	Expiries   int           `json:"expiries"`
	Duplicates int           `json:"duplicates"`
	Drained    bool          `json:"drained"`
	Workers    []WorkerStats `json:"workers,omitempty"`
	// Departed aggregates the counters of workers the churn sweep
	// folded away; nil until the first departure.
	Departed *DepartedStats `json:"departed,omitempty"`
	// Campaigns lists every campaign view in submission order (the
	// full-catalog default first).
	Campaigns []CampaignStatus `json:"campaigns,omitempty"`
}

// Stats snapshots the coordinator. The sweep runs first, so the
// pending/claimed split reflects current leases, not stale ones.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	st := Stats{
		Jobs:       len(co.jobs),
		Done:       co.done,
		Requeues:   co.requeues,
		Expiries:   co.expiries,
		Duplicates: co.duplicates,
		Drained:    co.done == len(co.jobs),
	}
	for i := range co.jobs {
		switch co.jobs[i].phase {
		case jobPending:
			st.Pending++
		case jobClaimed:
			st.Claimed++
		}
	}
	for _, id := range co.order {
		ws := co.workers[id]
		st.Workers = append(st.Workers, WorkerStats{
			ID: ws.id, Name: ws.name,
			Claims: ws.claims, Renewals: ws.renewals, Completions: ws.completions,
			Duplicates: ws.duplicates, Expiries: ws.expiries,
		})
	}
	if co.departed.Workers > 0 {
		d := co.departed
		st.Departed = &d
	}
	for _, name := range co.campOrder {
		st.Campaigns = append(st.Campaigns, co.campaignStatusLocked(co.campaigns[name]))
	}
	return st
}

// SuiteResult assembles the recorded outcomes into the SuiteResult a
// single-process run over the catalog would have produced, campaigns
// in catalog order. It fails unless the queue has drained.
func (co *Coordinator) SuiteResult() (*sched.SuiteResult, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.done != len(co.jobs) {
		missing := make([]int, 0, 8)
		for i := range co.jobs {
			if co.jobs[i].phase != jobDone {
				missing = append(missing, i)
			}
		}
		sort.Ints(missing)
		return nil, fmt.Errorf("coord: %d of %d jobs incomplete (indices %v)", len(missing), len(co.jobs), missing)
	}
	sr := &sched.SuiteResult{Campaigns: make([]sched.CampaignResult, len(co.jobs))}
	for i := range co.jobs {
		cr, err := co.jobs[i].outcome.campaignResult()
		if err != nil {
			return nil, fmt.Errorf("coord: job %d (%s): %w", i, co.catalog[i], err)
		}
		sr.Campaigns[i] = cr
	}
	return sr, nil
}
