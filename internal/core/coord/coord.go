// Package coord is the distributed campaign coordinator: it serves a
// suite's job catalog as a claimable queue so an elastic fleet of
// worker processes drains one perturbation matrix together, extending
// the in-process work-stealing dispatcher (internal/core/sched) to the
// machine level.
//
// The protocol is lease-based. Workers register against the catalog,
// claim jobs one at a time under time-bounded leases, renew the leases
// of their in-flight claims via heartbeat, and report each outcome
// back. A lease that expires — a crashed, partitioned, or merely slow
// worker — requeues its job for the next claimer, and late duplicate
// completions are resolved first-write-wins, so every catalog index
// ends up with exactly one recorded outcome and the merged suite
// report is byte-identical to a single-process run. The state machine,
// wire schema, and failure semantics are specified in
// docs/COORDINATOR.md.
package coord

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core/obs"
	"repro/internal/core/sched"
)

// DefaultLeaseTTL is the lease duration used when Options.LeaseTTL is
// zero: long enough that a loaded worker heartbeating at TTL/3 never
// loses a lease to scheduling jitter, short enough that a crashed
// worker's jobs requeue before an operator notices the stall.
const DefaultLeaseTTL = 60 * time.Second

// Options parameterises a Coordinator.
type Options struct {
	// LeaseTTL is how long a claim stays valid without a renewal.
	// Zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Now is the clock; nil means time.Now. Tests inject a fake clock
	// here to drive expiry deterministically.
	Now func() time.Time
	// Metrics, when non-nil, receives queue telemetry: claim outcomes,
	// renewals, lease expiries, completion results, and job/worker
	// gauges, all under the eptest_coord_* names.
	Metrics *obs.Registry
}

// jobPhase is one catalog entry's position in the lease state machine.
type jobPhase int

const (
	jobPending jobPhase = iota // unclaimed (initially, or after an expiry requeue)
	jobClaimed                 // leased to a worker
	jobDone                    // outcome recorded; terminal
)

// jobRecord is one catalog entry's coordinator-side state.
type jobRecord struct {
	phase   jobPhase
	worker  string    // lease holder while claimed
	expires time.Time // lease deadline while claimed
	outcome *Outcome  // recorded result once done
	doneBy  string    // worker whose completion won
}

// workerStats counts one registered worker's protocol activity.
type workerStats struct {
	id, name                                            string
	claims, renewals, completions, duplicates, expiries int
	runsDone                                            int       // injection runs in recorded outcomes
	lastSeen                                            time.Time // last protocol call (the heartbeat age base)
}

// Coordinator is the lease-based claim queue over one job catalog. All
// methods are safe for concurrent use; expired leases are swept lazily
// on every call, so no background timer is needed.
type Coordinator struct {
	mu      sync.Mutex
	catalog []string
	ttl     time.Duration
	now     func() time.Time

	jobs    []jobRecord
	workers map[string]*workerStats
	order   []string // worker ids in registration order
	nextID  int

	done       int // jobs in jobDone
	requeues   int
	expiries   int
	duplicates int
	runsDone   int       // injection runs across recorded outcomes
	startedAt  time.Time // queue creation, the ETA's rate base
	m          coordMetrics
	drained    chan struct{}
	// change is closed and replaced whenever the queue gains pending
	// work or drains — the edges a blocked claim waits on. The HTTP
	// server's long-poll loop selects on it so workers learn about
	// requeues and the drain the moment they happen instead of
	// rediscovering them at the next poll.
	change chan struct{}
}

// New returns a coordinator over the catalog (the label of every job
// in the full suite, in order — what sched.Job.Label renders).
func New(catalog []string, opt Options) *Coordinator {
	ttl := opt.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	now := opt.Now
	if now == nil {
		now = time.Now
	}
	co := &Coordinator{
		catalog:   append([]string(nil), catalog...),
		ttl:       ttl,
		now:       now,
		jobs:      make([]jobRecord, len(catalog)),
		workers:   make(map[string]*workerStats),
		startedAt: now(),
		drained:   make(chan struct{}),
		change:    make(chan struct{}),
	}
	co.m.resolve(opt.Metrics)
	co.updateGaugesLocked()
	return co
}

// coordMetrics is the coordinator's metric handles, resolved once at
// New. Handles are nil without a registry; obs handles are nil-safe,
// so call sites record unconditionally.
type coordMetrics struct {
	claimGranted, claimWait, claimDrained *obs.Counter
	renewals, expiries                    *obs.Counter
	recorded, duplicates                  *obs.Counter
	workers                               *obs.Gauge
	pending, claimed, doneJobs            *obs.Gauge
}

// resolve looks up every coordinator metric in r (nil-safe).
func (m *coordMetrics) resolve(r *obs.Registry) {
	const claimHelp = "Claim requests by outcome."
	m.claimGranted = r.Counter("eptest_coord_claims_total", claimHelp, "status", "granted")
	m.claimWait = r.Counter("eptest_coord_claims_total", claimHelp, "status", "wait")
	m.claimDrained = r.Counter("eptest_coord_claims_total", claimHelp, "status", "drained")
	m.renewals = r.Counter("eptest_coord_renewals_total", "Leases extended by heartbeats.")
	m.expiries = r.Counter("eptest_coord_lease_expiries_total", "Leases expired and requeued.")
	const doneHelp = "Completion uploads by result."
	m.recorded = r.Counter("eptest_coord_completions_total", doneHelp, "result", "recorded")
	m.duplicates = r.Counter("eptest_coord_completions_total", doneHelp, "result", "duplicate")
	m.workers = r.Gauge("eptest_coord_workers", "Workers registered against the queue.")
	const jobsHelp = "Catalog jobs by lease phase."
	m.pending = r.Gauge("eptest_coord_jobs", jobsHelp, "phase", "pending")
	m.claimed = r.Gauge("eptest_coord_jobs", jobsHelp, "phase", "claimed")
	m.doneJobs = r.Gauge("eptest_coord_jobs", jobsHelp, "phase", "done")
}

// updateGaugesLocked republishes the job-phase gauges. Callers hold
// co.mu (or, in New, exclusive ownership).
func (co *Coordinator) updateGaugesLocked() {
	pending, claimed := 0, 0
	for i := range co.jobs {
		switch co.jobs[i].phase {
		case jobPending:
			pending++
		case jobClaimed:
			claimed++
		}
	}
	co.m.pending.Set(int64(pending))
	co.m.claimed.Set(int64(claimed))
	co.m.doneJobs.Set(int64(co.done))
}

// notifyLocked wakes every blocked claim. Callers hold co.mu.
func (co *Coordinator) notifyLocked() {
	close(co.change)
	co.change = make(chan struct{})
}

// Changed returns a channel closed at the next claim-relevant state
// change (a requeue or the drain).
func (co *Coordinator) Changed() <-chan struct{} {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.change
}

// NextExpiry returns the earliest lease deadline among claimed jobs.
// A long-poll waiter wakes then to run the sweep that requeues it.
func (co *Coordinator) NextExpiry() (time.Time, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	var earliest time.Time
	found := false
	for i := range co.jobs {
		j := &co.jobs[i]
		if j.phase == jobClaimed && (!found || j.expires.Before(earliest)) {
			earliest = j.expires
			found = true
		}
	}
	return earliest, found
}

// LeaseTTL returns the coordinator's lease duration.
func (co *Coordinator) LeaseTTL() time.Duration { return co.ttl }

// Catalog returns the job catalog the coordinator serves.
func (co *Coordinator) Catalog() []string { return append([]string(nil), co.catalog...) }

// sweepLocked requeues every claimed job whose lease has expired.
// Callers hold co.mu.
func (co *Coordinator) sweepLocked() {
	now := co.now()
	requeued := false
	for i := range co.jobs {
		j := &co.jobs[i]
		if j.phase == jobClaimed && !j.expires.After(now) {
			if ws := co.workers[j.worker]; ws != nil {
				ws.expiries++
			}
			j.phase = jobPending
			j.worker = ""
			j.expires = time.Time{}
			co.expiries++
			co.requeues++
			co.m.expiries.Inc()
			requeued = true
		}
	}
	if requeued {
		co.updateGaugesLocked()
		co.notifyLocked()
	}
}

// Register admits a worker. The worker's catalog must equal the
// coordinator's — a worker built from different flags (or a different
// binary) would claim indices that name other campaigns, so the
// mismatch is rejected up front rather than surfacing as a corrupt
// merge. Returns the worker id used in every subsequent call.
func (co *Coordinator) Register(name string, catalog []string) (string, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if len(catalog) != len(co.catalog) {
		return "", fmt.Errorf("coord: worker catalog has %d jobs, coordinator serves %d (flags or binary mismatch?)", len(catalog), len(co.catalog))
	}
	for i := range catalog {
		if catalog[i] != co.catalog[i] {
			return "", fmt.Errorf("coord: worker catalog disagrees at job %d (%q vs %q); run the worker with the coordinator's -matrix/-filter flags", i, catalog[i], co.catalog[i])
		}
	}
	co.nextID++
	id := fmt.Sprintf("w%d", co.nextID)
	ws := &workerStats{id: id, name: name, lastSeen: co.now()}
	co.workers[id] = ws
	co.order = append(co.order, id)
	co.m.workers.Set(int64(len(co.workers)))
	return id, nil
}

// ClaimStatus discriminates Claim outcomes.
type ClaimStatus int

const (
	// ClaimGranted means a job was leased to the caller.
	ClaimGranted ClaimStatus = iota + 1
	// ClaimWait means every remaining job is currently leased to some
	// worker; the caller should poll again — an expiry may requeue one.
	ClaimWait
	// ClaimDrained means every job is done; the caller can exit.
	ClaimDrained
)

// Claim leases the lowest-index pending job to the worker. A granted
// claim must be completed before its lease expires, or renewed via
// Renew; otherwise it requeues for other workers.
func (co *Coordinator) Claim(workerID string) (idx int, status ClaimStatus, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	ws := co.workers[workerID]
	if ws == nil {
		return 0, 0, fmt.Errorf("coord: unknown worker %q (register first)", workerID)
	}
	ws.lastSeen = co.now()
	co.sweepLocked()
	if co.done == len(co.jobs) {
		co.m.claimDrained.Inc()
		return 0, ClaimDrained, nil
	}
	for i := range co.jobs {
		if co.jobs[i].phase == jobPending {
			co.jobs[i] = jobRecord{phase: jobClaimed, worker: workerID, expires: co.now().Add(co.ttl)}
			ws.claims++
			co.m.claimGranted.Inc()
			co.updateGaugesLocked()
			return i, ClaimGranted, nil
		}
	}
	co.m.claimWait.Inc()
	return 0, ClaimWait, nil
}

// Renew extends the leases the worker still holds on the given
// indices. Indices the worker no longer holds — expired and requeued,
// reclaimed by another worker, or already done — come back in lost;
// the worker may keep executing them (first-write-wins decides), but
// must not assume exclusivity.
func (co *Coordinator) Renew(workerID string, indices []int) (renewed, lost []int, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	ws := co.workers[workerID]
	if ws == nil {
		return nil, nil, fmt.Errorf("coord: unknown worker %q (register first)", workerID)
	}
	ws.lastSeen = co.now()
	co.sweepLocked()
	deadline := co.now().Add(co.ttl)
	for _, i := range indices {
		if i < 0 || i >= len(co.jobs) {
			return nil, nil, fmt.Errorf("coord: renew index %d out of range [0,%d)", i, len(co.jobs))
		}
		j := &co.jobs[i]
		switch {
		case j.phase == jobClaimed && j.worker == workerID:
			j.expires = deadline
			ws.renewals++
			co.m.renewals.Inc()
			renewed = append(renewed, i)
		case j.phase == jobDone && j.doneBy == workerID:
			// The worker's own completion landed between its renew
			// snapshot and this call — the lease was consumed, not
			// lost, so don't alarm anyone about the TTL.
			renewed = append(renewed, i)
		default:
			lost = append(lost, i)
		}
	}
	return renewed, lost, nil
}

// Complete records one job's outcome. The first completion for an
// index wins regardless of who currently holds the lease — the work is
// deterministic, so any finished result is the result — and every
// later completion is acknowledged as a duplicate and discarded, so a
// slow worker racing its own expired lease can never overwrite the
// merged report. Returns duplicate=true for the discarded case.
func (co *Coordinator) Complete(workerID string, idx int, out Outcome) (duplicate bool, err error) {
	co.mu.Lock()
	ws := co.workers[workerID]
	if ws == nil {
		co.mu.Unlock()
		return false, fmt.Errorf("coord: unknown worker %q (register first)", workerID)
	}
	if idx < 0 || idx >= len(co.jobs) {
		co.mu.Unlock()
		return false, fmt.Errorf("coord: complete index %d out of range [0,%d)", idx, len(co.jobs))
	}
	if label := (sched.Job{Name: out.Name, Variant: out.Variant}).Label(); label != co.catalog[idx] {
		co.mu.Unlock()
		return false, fmt.Errorf("coord: completion for job %d is labelled %q, catalog names it %q", idx, label, co.catalog[idx])
	}
	if err := out.validate(); err != nil {
		co.mu.Unlock()
		return false, fmt.Errorf("coord: completion for job %d: %w", idx, err)
	}
	ws.lastSeen = co.now()
	co.sweepLocked()
	j := &co.jobs[idx]
	if j.phase == jobDone {
		ws.duplicates++
		co.duplicates++
		co.m.duplicates.Inc()
		co.mu.Unlock()
		return true, nil
	}
	o := out
	*j = jobRecord{phase: jobDone, outcome: &o, doneBy: workerID}
	ws.completions++
	co.done++
	runs := countRuns(&o)
	ws.runsDone += runs
	co.runsDone += runs
	co.m.recorded.Inc()
	co.updateGaugesLocked()
	allDone := co.done == len(co.jobs)
	if allDone {
		co.notifyLocked()
	}
	co.mu.Unlock()
	if allDone {
		close(co.drained)
	}
	return false, nil
}

// countRuns extracts the injection-run count from an outcome's wire
// payload without a full structural decode: the injections array's
// length is all the status page and ETA need. Malformed or error-only
// outcomes count zero runs.
func countRuns(o *Outcome) int {
	if len(o.Result) == 0 {
		return 0
	}
	var rc struct {
		Injections []json.RawMessage `json:"injections"`
	}
	if json.Unmarshal(o.Result, &rc) != nil {
		return 0
	}
	return len(rc.Injections)
}

// Drained returns a channel closed once every catalog job has a
// recorded outcome.
func (co *Coordinator) Drained() <-chan struct{} { return co.drained }

// WorkerStats is one worker's protocol counters, for reports.
type WorkerStats struct {
	ID, Name                                            string
	Claims, Renewals, Completions, Duplicates, Expiries int
}

// Stats is a point-in-time snapshot of the coordinator, for the
// report's coordinator section and the /v1/coord/state endpoint.
type Stats struct {
	Jobs    int `json:"jobs"`
	Pending int `json:"pending"`
	Claimed int `json:"claimed"`
	Done    int `json:"done"`
	// Requeues counts expired leases put back in the queue; Duplicates
	// counts late completions discarded first-write-wins.
	Requeues   int           `json:"requeues"`
	Expiries   int           `json:"expiries"`
	Duplicates int           `json:"duplicates"`
	Drained    bool          `json:"drained"`
	Workers    []WorkerStats `json:"workers,omitempty"`
}

// Stats snapshots the coordinator. The sweep runs first, so the
// pending/claimed split reflects current leases, not stale ones.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	st := Stats{
		Jobs:       len(co.jobs),
		Done:       co.done,
		Requeues:   co.requeues,
		Expiries:   co.expiries,
		Duplicates: co.duplicates,
		Drained:    co.done == len(co.jobs),
	}
	for i := range co.jobs {
		switch co.jobs[i].phase {
		case jobPending:
			st.Pending++
		case jobClaimed:
			st.Claimed++
		}
	}
	for _, id := range co.order {
		ws := co.workers[id]
		st.Workers = append(st.Workers, WorkerStats{
			ID: ws.id, Name: ws.name,
			Claims: ws.claims, Renewals: ws.renewals, Completions: ws.completions,
			Duplicates: ws.duplicates, Expiries: ws.expiries,
		})
	}
	return st
}

// SuiteResult assembles the recorded outcomes into the SuiteResult a
// single-process run over the catalog would have produced, campaigns
// in catalog order. It fails unless the queue has drained.
func (co *Coordinator) SuiteResult() (*sched.SuiteResult, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.done != len(co.jobs) {
		missing := make([]int, 0, 8)
		for i := range co.jobs {
			if co.jobs[i].phase != jobDone {
				missing = append(missing, i)
			}
		}
		sort.Ints(missing)
		return nil, fmt.Errorf("coord: %d of %d jobs incomplete (indices %v)", len(missing), len(co.jobs), missing)
	}
	sr := &sched.SuiteResult{Campaigns: make([]sched.CampaignResult, len(co.jobs))}
	for i := range co.jobs {
		cr, err := co.jobs[i].outcome.campaignResult()
		if err != nil {
			return nil, fmt.Errorf("coord: job %d (%s): %w", i, co.catalog[i], err)
		}
		sr.Campaigns[i] = cr
	}
	return sr, nil
}
