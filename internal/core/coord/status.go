package coord

import (
	"encoding/json"
	"html/template"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core/findings"
)

// StatusSchemaVersion identifies the /v1/status JSON shape. Bump it on
// any incompatible change.
const StatusSchemaVersion = "eptest-status/1"

// WorkerStatus is one registered worker's live view: what it holds,
// when it last spoke, and what it has delivered.
type WorkerStatus struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// ActiveLeases are the catalog indices currently leased to this
	// worker.
	ActiveLeases []int `json:"active_leases,omitempty"`
	// HeartbeatAgeMillis is how long ago the worker last made any
	// protocol call. A healthy worker renews at a third of the lease
	// TTL, so an age beyond the TTL means it is gone.
	HeartbeatAgeMillis int64 `json:"heartbeat_age_ms"`
	Claims             int   `json:"claims"`
	Completions        int   `json:"completions"`
	Duplicates         int   `json:"duplicates,omitempty"`
	Expiries           int   `json:"expiries,omitempty"`
	// RunsDone totals the injection runs in this worker's recorded
	// outcomes.
	RunsDone int `json:"runs_done"`
}

// Status is the live queue snapshot served at GET /v1/status and
// rendered by the HTML status page.
type Status struct {
	Schema  string `json:"schema"`
	Jobs    int    `json:"jobs"`
	Pending int    `json:"pending"`
	Claimed int    `json:"claimed"`
	Done    int    `json:"done"`
	// Requeues counts expired leases put back in the queue; Duplicates
	// counts late completions discarded first-write-wins.
	Requeues   int  `json:"requeues"`
	Expiries   int  `json:"expiries"`
	Duplicates int  `json:"duplicates"`
	Drained    bool `json:"drained"`
	// RunsDone totals the injection runs across recorded outcomes, the
	// numerator of RunsPerSec.
	RunsDone      int     `json:"runs_done"`
	ElapsedMillis int64   `json:"elapsed_ms"`
	RunsPerSec    float64 `json:"runs_per_sec"`
	// EtaMillis estimates time to drain from the observed per-job
	// completion rate: elapsed/done × remaining, where done counts only
	// completions this process recorded itself — a restarted
	// coordinator that reloaded finished work from its journal has
	// observed no throughput yet, and renders -1 ("ETA —") rather than
	// extrapolating from work it never timed. Zero once drained; -1
	// while this process has recorded no completion.
	EtaMillis int64          `json:"eta_ms"`
	Workers   []WorkerStatus `json:"workers,omitempty"`
	// Campaigns lists every campaign view in submission order, the
	// full-catalog default first.
	Campaigns []CampaignStatus `json:"campaigns,omitempty"`
}

// Status snapshots the queue for the live status surface. The expiry
// sweep runs first, so leases and heartbeat ages reflect the present,
// not the last protocol call.
func (co *Coordinator) Status() Status {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	now := co.now()

	st := Status{
		Schema:        StatusSchemaVersion,
		Jobs:          len(co.jobs),
		Done:          co.done,
		Requeues:      co.requeues,
		Expiries:      co.expiries,
		Duplicates:    co.duplicates,
		Drained:       co.done == len(co.jobs),
		RunsDone:      co.runsDone,
		ElapsedMillis: now.Sub(co.startedAt).Milliseconds(),
	}
	leases := make(map[string][]int)
	for i := range co.jobs {
		switch co.jobs[i].phase {
		case jobPending:
			st.Pending++
		case jobClaimed:
			st.Claimed++
			leases[co.jobs[i].worker] = append(leases[co.jobs[i].worker], i)
		}
	}
	// Throughput and ETA extrapolate only from completions this process
	// recorded itself (liveRuns/liveDone): after a restart the journal
	// restores done counts but not observed rate, and dividing restored
	// work by the seconds since restart would fabricate throughput.
	if elapsed := now.Sub(co.startedAt); elapsed > 0 {
		st.RunsPerSec = float64(co.liveRuns) / elapsed.Seconds()
	}
	switch {
	case st.Drained:
		st.EtaMillis = 0
	case co.liveDone == 0:
		st.EtaMillis = -1
	default:
		perJob := now.Sub(co.startedAt) / time.Duration(co.liveDone)
		st.EtaMillis = (perJob * time.Duration(len(co.jobs)-co.done)).Milliseconds()
	}
	for _, id := range co.order {
		ws := co.workers[id]
		st.Workers = append(st.Workers, WorkerStatus{
			ID:                 ws.id,
			Name:               ws.name,
			ActiveLeases:       leases[id],
			HeartbeatAgeMillis: now.Sub(ws.lastSeen).Milliseconds(),
			Claims:             ws.claims,
			Completions:        ws.completions,
			Duplicates:         ws.duplicates,
			Expiries:           ws.expiries,
			RunsDone:           ws.runsDone,
		})
	}
	for _, name := range co.campOrder {
		st.Campaigns = append(st.Campaigns, co.campaignStatusLocked(co.campaigns[name]))
	}
	return st
}

// StatusHandler serves the Status snapshot as JSON — the machine
// surface CI and dashboards poll at GET /v1/status.
func StatusHandler(co *Coordinator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(co.Status())
	})
}

// statusPage renders the Status snapshot as a self-refreshing HTML
// table. Server-side rendering plus a meta-refresh keeps the page
// dependency-free and working under the same bearer-auth wrapper as
// the JSON endpoint.
var statusPage = template.Must(template.New("status").Funcs(template.FuncMap{
	"millis": func(ms int64) string {
		if ms < 0 {
			return "—"
		}
		return (time.Duration(ms) * time.Millisecond).Round(time.Second).String()
	},
	"rate": formatRate,
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>eptest coordinator</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.2rem; }
table { border-collapse: collapse; margin-top: 1rem; }
th, td { border: 1px solid #ccc; padding: 0.3rem 0.7rem; text-align: right; }
th { background: #f3f3f3; }
td.l, th.l { text-align: left; }
.bar { width: 16rem; height: 1rem; background: #eee; border: 1px solid #ccc; }
.bar div { height: 100%; background: #4a8; }
.stale { color: #b00; font-weight: bold; }
</style>
</head>
<body>
<h1>eptest coordinator — {{.Done}}/{{.Jobs}} jobs{{if .Drained}} (drained){{end}}</h1>
<div class="bar"><div style="width: {{.Pct}}%"></div></div>
<p>
pending {{.Pending}} · claimed {{.Claimed}} · done {{.Done}} ·
requeues {{.Requeues}} · duplicates {{.Duplicates}}<br>
{{.RunsDone}} runs in {{millis .ElapsedMillis}} ({{rate .RunsPerSec}} runs/s) ·
ETA {{millis .EtaMillis}}
</p>
<table>
<tr><th class="l">worker</th><th class="l">name</th><th>leases</th><th>heartbeat</th><th>claims</th><th>done</th><th>runs</th><th>expiries</th></tr>
{{range .Workers}}
<tr>
<td class="l">{{.ID}}</td>
<td class="l">{{.Name}}</td>
<td>{{len .ActiveLeases}}</td>
<td{{if .Stale}} class="stale"{{end}}>{{millis .HeartbeatAgeMillis}} ago</td>
<td>{{.Claims}}</td>
<td>{{.Completions}}</td>
<td>{{.RunsDone}}</td>
<td>{{.Expiries}}</td>
</tr>
{{end}}
</table>
{{if gt (len .Campaigns) 1}}
<table>
<tr><th class="l">campaign</th><th class="l">filter</th><th>prio</th><th>done</th><th>jobs</th><th>findings</th><th class="l">state</th></tr>
{{range .Campaigns}}
<tr>
<td class="l">{{.Name}}</td>
<td class="l">{{.Filter}}</td>
<td>{{.Priority}}</td>
<td>{{.Done}}</td>
<td>{{.Jobs}}</td>
<td>{{.Findings}}</td>
<td class="l">{{.State}}</td>
</tr>
{{end}}
</table>
{{end}}
{{if .Findings}}
<h1>findings — top {{len .Findings}} by trace count</h1>
<table>
<tr><th class="l">id</th><th class="l">app</th><th class="l">signature</th><th class="l">severity</th><th class="l">taxonomy</th><th>traces</th></tr>
{{range .Findings}}
<tr>
<td class="l">{{.ID}}</td>
<td class="l">{{.Label}}</td>
<td class="l">{{.Signature}}</td>
<td class="l">{{.Severity}}</td>
<td class="l">{{.Taxonomy.Verdict}}</td>
<td>{{len .Traces}}</td>
</tr>
{{end}}
</table>
{{end}}
</body>
</html>
`))

// formatRate renders runs/sec with enough precision for both slow
// matrix sweeps and fast simulated runs.
func formatRate(r float64) string {
	if r >= 10 {
		return strconv.FormatFloat(r, 'f', 0, 64)
	}
	return strconv.FormatFloat(r, 'f', 2, 64)
}

// statusView decorates Status with the presentation-only fields the
// template needs.
type statusView struct {
	Status
	Pct     int
	Workers []workerView
	// Findings is the status page's findings section: the largest
	// finding records by trace count, aggregated as completions land.
	Findings []findings.Finding
}

// workerView decorates WorkerStatus with staleness against the TTL.
type workerView struct {
	WorkerStatus
	Stale bool
}

// StatusPage serves the self-refreshing HTML status page at
// GET /status: queue progress, per-worker leases and heartbeat age,
// throughput, campaign views, and the drain ETA. A template render
// error (a half-written response after the client hung up, or a
// template bug) is logged once per server rather than swallowed — and
// only once, because a dashboard refreshing every two seconds would
// otherwise repeat the same line forever.
func StatusPage(co *Coordinator) http.Handler {
	var renderErrOnce sync.Once
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := co.Status()
		v := statusView{Status: st, Findings: co.TopFindings(10)}
		if st.Jobs > 0 {
			v.Pct = 100 * st.Done / st.Jobs
		}
		ttlMillis := co.LeaseTTL().Milliseconds()
		for _, ws := range st.Workers {
			v.Workers = append(v.Workers, workerView{
				WorkerStatus: ws,
				Stale:        ws.HeartbeatAgeMillis > ttlMillis,
			})
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := statusPage.Execute(w, v); err != nil {
			renderErrOnce.Do(func() {
				co.logf("coord: status page render failed: %v", err)
			})
		}
	})
}
