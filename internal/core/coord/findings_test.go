package coord_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core/coord"
	"repro/internal/core/eai"
	"repro/internal/core/findings"
	"repro/internal/core/inject"
	"repro/internal/core/obs"
	"repro/internal/core/policy"
	"repro/internal/core/store"
	"repro/internal/interpose"
)

// violResult fabricates a campaign result with two violating
// injections — one integrity breach through a symlinked file, one
// crash — plus a tolerated one that must not surface as a finding.
func violResult(label string) *inject.Result {
	return &inject.Result{
		Campaign: label,
		Injections: []inject.Injection{
			{
				Point: "open:/tmp/spool#1", Site: "open:/tmp/spool",
				Kind: interpose.KindFile, FaultID: "f-symlink",
				Class: eai.ClassDirect, Attr: eai.AttrSymlink,
				Violations: []policy.Violation{{
					Kind: policy.KindIntegrity, Point: "open:/tmp/spool#1",
					Object: "/tmp/spool", Detail: "write through attacker symlink",
				}},
			},
			{
				Point: "open:/tmp/spool#2", Site: "open:/tmp/spool",
				Kind: interpose.KindFile, FaultID: "f-missing",
				Class: eai.ClassDirect, Attr: eai.AttrExistence,
			},
			{
				Point: "read:stdin#1", Site: "read:stdin",
				Kind: interpose.KindNetwork, FaultID: "f-garble",
				Class: eai.ClassIndirect, Sem: eai.SemRaw,
				Violations: []policy.Violation{{
					Kind: policy.KindCrash, Point: "read:stdin#1",
					Detail: "SIGSEGV after 3 events",
				}},
			},
		},
	}
}

// violOutcome wraps violResult for catalog index idx.
func violOutcome(t *testing.T, idx int) coord.Outcome {
	t.Helper()
	label := testCatalog[idx]
	name, variant, _ := strings.Cut(label, "/")
	b, err := store.EncodeResult(violResult(label))
	if err != nil {
		t.Fatal(err)
	}
	return coord.Outcome{Name: name, Variant: variant, Result: b}
}

// TestFindingsAggregation drives completions on the fake clock and pins
// every live findings surface at once: the assembled report matches the
// canonical builder output byte-for-byte, the per-campaign counts and
// metric counters agree with it, and /v1/findings serves exactly the
// bytes a file export would contain.
func TestFindingsAggregation(t *testing.T) {
	t.Parallel()
	clk := newFakeClock()
	reg := obs.NewRegistry()
	co := coord.New(testCatalog, coord.Options{
		LeaseTTL: 10 * time.Second, Now: clk.Now, Metrics: reg,
	})
	id, err := co.Register("alice", testCatalog)
	if err != nil {
		t.Fatal(err)
	}

	if got := co.FindingsReport(); len(got.Findings) != 0 {
		t.Fatalf("fresh coordinator reports %d findings, want 0", len(got.Findings))
	}

	// Jobs 0 (a/vulnerable) and 2 (b/vulnerable) violate; job 1
	// completes clean.
	mustClaim(t, co, id, 0)
	mustClaim(t, co, id, 1)
	mustClaim(t, co, id, 2)
	for _, idx := range []int{0, 2} {
		if dup, err := co.Complete(id, idx, violOutcome(t, idx)); err != nil || dup {
			t.Fatalf("Complete(%d) = (dup %v, %v)", idx, dup, err)
		}
	}
	if dup, err := co.Complete(id, 1, fakeOutcome(t, 1)); err != nil || dup {
		t.Fatalf("Complete(1) = (dup %v, %v)", dup, err)
	}

	// The live report must be byte-identical to the canonical builder
	// run over the same results — the merge/export equivalence in
	// miniature.
	b := findings.NewBuilder()
	for _, idx := range []int{0, 2} {
		name, variant, _ := strings.Cut(testCatalog[idx], "/")
		b.AddResult(name, variant, violResult(testCatalog[idx]))
	}
	want, err := b.Report().Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.FindingsReport().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("live findings diverge from canonical builder:\n--- live\n%s--- want\n%s", got, want)
	}

	// Two campaigns (a, b) × two finding classes each, two traces each.
	rep := co.FindingsReport()
	if len(rep.Findings) != 4 || rep.Traces() != 4 {
		t.Fatalf("findings = %d records / %d traces, want 4/4", len(rep.Findings), rep.Traces())
	}

	// The default full-catalog campaign aggregates both.
	st := co.Status()
	if len(st.Campaigns) != 1 {
		t.Fatalf("campaigns = %d, want the default view", len(st.Campaigns))
	}
	if c := st.Campaigns[0]; c.Findings != 4 || c.Violations != 4 {
		t.Fatalf("campaign counts = %d findings / %d violations, want 4/4", c.Findings, c.Violations)
	}

	// Counters folded once per violating trace, labelled by taxonomy.
	flat := reg.Flat()
	for key, want := range map[string]float64{
		findings.MetricName + `{app="a",rule="integrity",taxonomy="direct/file-system/symbolic-link"}`: 1,
		findings.MetricName + `{app="a",rule="crash",taxonomy="indirect/network-input"}`:               1,
		findings.MetricName + `{app="b",rule="integrity",taxonomy="direct/file-system/symbolic-link"}`: 1,
		findings.MetricName + `{app="b",rule="crash",taxonomy="indirect/network-input"}`:               1,
	} {
		if flat[key] != want {
			t.Errorf("counter %s = %v, want %v (have %v)", key, flat[key], want, flat)
		}
	}

	// TopFindings caps the list without disturbing record content.
	if top := co.TopFindings(2); len(top) != 2 {
		t.Fatalf("TopFindings(2) = %d records", len(top))
	}

	// The HTTP surface serves the canonical bytes.
	srv := httptest.NewServer(coord.FindingsHandler(co))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(body, want) {
		t.Fatalf("/v1/findings body diverges from canonical encoding:\n%s", body)
	}

	// The status page grows a findings section listing the records.
	page := httptest.NewServer(coord.StatusPage(co))
	defer page.Close()
	resp, err = http.Get(page.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	html, _ := io.ReadAll(resp.Body)
	for _, wantStr := range []string{"findings — top", "EPT-", "integrity/direct/symbolic-link on file", "direct on file-system/symbolic-link"} {
		if !strings.Contains(string(html), wantStr) {
			t.Fatalf("status page missing %q:\n%s", wantStr, html)
		}
	}
}

// TestFindingsSurviveRestore pins durability: a coordinator rebuilt
// from its journal (with ref-elided outcomes resolved through the
// result cache) re-extracts the same findings, byte-identically.
func TestFindingsSurviveRestore(t *testing.T) {
	t.Parallel()
	co, _, mj, cache, id := journaledCoord(t)
	mustClaim(t, co, id, 0)
	res := violResult(testCatalog[0])
	b, err := store.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	fp := fakeFingerprint(0)
	cache.Put(fp, testCatalog[0], res)
	name, variant, _ := strings.Cut(testCatalog[0], "/")
	o := coord.Outcome{Name: name, Variant: variant, Result: b, Fingerprint: fp}
	if dup, err := co.Complete(id, 0, o); err != nil || dup {
		t.Fatalf("Complete = (dup %v, %v)", dup, err)
	}
	want, err := co.FindingsReport().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if co.FindingsReport().Traces() == 0 {
		t.Fatal("no findings before restore; the test proves nothing")
	}

	clk2 := newFakeClock()
	co2 := restoreWithClock(t, clk2, mj, cache)
	got, err := co2.FindingsReport().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("findings drift across restore:\n--- restored\n%s--- want\n%s", got, want)
	}
}

// restoreWithClock is restore with an explicit clock, for tests that
// need the restored coordinator on a fresh timeline.
func restoreWithClock(t *testing.T, clk *fakeClock, mj *coord.MemJournal, cache *memCache) *coord.Coordinator {
	t.Helper()
	co, err := coord.Restore(testCatalog, coord.Options{
		LeaseTTL: 10 * time.Second, Now: clk.Now, Journal: &coord.MemJournal{}, Results: cache,
	}, mj.Records())
	if err != nil {
		t.Fatal(err)
	}
	return co
}
