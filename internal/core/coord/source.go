package coord

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core/obs"
	"repro/internal/core/sched"
)

// The source gives up on the coordinator only after failures have
// been continuous for a real outage, not a blip: at least minFailures
// consecutive failed round trips spanning at least twice the lease TTL
// (floored at minOutage). The span rule makes the tolerance uniform
// whether failures are fast (connection refused, milliseconds each) or
// slow (packet blackhole, one HTTP timeout each).
const (
	minFailures = 5
	minOutage   = 30 * time.Second
)

// Source adapts a registered Client to the scheduler's JobSource seam:
// Next claims jobs (polling while the queue is momentarily empty),
// Complete uploads outcomes, and a background heartbeat renews every
// in-flight lease at a third of the TTL so a healthy worker never
// loses one. Create it with NewSource, and Close it after the suite
// run returns.
type Source struct {
	cl   *Client
	jobs []sched.Job
	// tr, when non-nil, records claim/renew/complete round trips as
	// spans on the TIDCoord and TIDUpload trace rows.
	tr *obs.Tracer

	mu        sync.Mutex
	inflight  map[int]bool
	failures  int       // consecutive failed round trips
	failSince time.Time // start of the current failure streak
	lost      int       // leases the heartbeat reported lost
	err       error     // first fatal transport error

	// Completions are uploaded off the dispatcher's worker goroutines:
	// Complete enqueues and returns, so a worker starts its next run
	// while the previous result is still on the wire, and the claim
	// window frees immediately. The lease stays held (inflight, so the
	// heartbeat renews it) until the upload lands. The queue is an
	// unbounded spill (guarded by mu, signalled through upSignal) —
	// never a bounded channel, which would block worker goroutines
	// behind a slow or briefly unreachable coordinator and stall the
	// whole run on the wire.
	pending   []completion  // guarded by mu
	upClosed  bool          // guarded by mu; set once by Close
	upSignal  chan struct{} // capacity 1: "pending or upClosed changed"
	closeOnce sync.Once
	uploaded  sync.WaitGroup

	stop chan struct{}
	done sync.WaitGroup
}

// completion is one outcome queued for upload.
type completion struct {
	seq int
	out Outcome
}

// SourceOption configures NewSource.
type SourceOption func(*Source)

// WithSourceTracer records the source's coordinator round trips —
// claim, renew, complete — as spans on the dedicated coordinator and
// uploader trace rows, so queue latency is visible next to the run
// spans in one trace file.
func WithSourceTracer(tr *obs.Tracer) SourceOption {
	return func(s *Source) { s.tr = tr }
}

// NewSource returns a source over the registered client. jobs must be
// the full catalog, index-aligned with the coordinator's (Register
// already verified the labels match).
func NewSource(cl *Client, jobs []sched.Job, opts ...SourceOption) (*Source, error) {
	if cl.WorkerID() == "" {
		return nil, errors.New("coord: source needs a registered client")
	}
	s := &Source{
		cl:       cl,
		jobs:     jobs,
		inflight: make(map[int]bool),
		upSignal: make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if s.tr != nil {
		s.tr.NameThread(obs.TIDCoord, "coordinator")
		s.tr.NameThread(obs.TIDUpload, "uploader")
	}
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		s.heartbeat()
	}()
	s.uploaded.Add(1)
	go func() {
		defer s.uploaded.Done()
		s.uploader()
	}()
	return s, nil
}

// Close flushes the pending completion uploads, then stops the
// heartbeat. Call it after the dispatcher returns (it is idempotent;
// nothing may call Complete afterwards).
func (s *Source) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.upClosed = true
		s.mu.Unlock()
		s.wakeUploader()
		s.uploaded.Wait()
		close(s.stop)
	})
	s.done.Wait()
}

// Err returns the first fatal transport error, if the coordinator was
// lost mid-run. The worker's partial results up to that point are
// still valid; the error tells the operator this worker stopped early.
func (s *Source) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// LostLeases counts in-flight leases the coordinator reported expired
// or reassigned. The work continued (first-write-wins decides whose
// result is recorded); a persistent nonzero count means the lease TTL
// is too short for this worker's campaign sizes.
func (s *Source) LostLeases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}

// fail records one failed round trip; it returns true once the
// failure streak has lasted a real outage and the source should give
// up.
func (s *Source) fail(err error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return true
	}
	now := time.Now()
	if s.failures == 0 {
		s.failSince = now
	}
	s.failures++
	outage := 2 * s.cl.LeaseTTL()
	if outage < minOutage {
		outage = minOutage
	}
	if s.failures >= minFailures && now.Sub(s.failSince) >= outage {
		s.err = fmt.Errorf("coord: coordinator unreachable for %s (%d attempts): %w",
			now.Sub(s.failSince).Round(time.Second), s.failures, err)
		return true
	}
	return false
}

// Next implements sched.JobSource: it claims the next job and returns
// ok=false when the queue drains or the coordinator is lost. The
// server long-polls "wait" claims (holding the request until a
// completion or requeue), so the re-claim after a wait is nearly
// immediate; only transport errors back off exponentially, up to the
// server-suggested cadence.
func (s *Source) Next() (sched.SourcedJob, bool) {
	maxPoll := s.cl.PollInterval()
	backoff := time.Millisecond
	for {
		claimStart := time.Now()
		idx, status, err := s.cl.Claim()
		s.span(obs.TIDCoord, "claim", claimStart, claimResult(idx, status, err))
		switch {
		case err != nil:
			if s.fail(err) {
				return sched.SourcedJob{}, false
			}
		case status == ClaimGranted:
			if idx >= len(s.jobs) {
				// A coordinator serving a bigger catalog than this
				// worker was built with; Register should have caught
				// it, so treat it as fatal rather than guessing.
				s.mu.Lock()
				s.err = fmt.Errorf("coord: claimed index %d outside the %d-job catalog", idx, len(s.jobs))
				s.mu.Unlock()
				return sched.SourcedJob{}, false
			}
			s.mu.Lock()
			s.failures = 0
			s.failSince = time.Time{}
			if s.inflight[idx] {
				// Our own lease expired mid-execution and the requeue
				// came straight back to us. The claim re-acquires the
				// lease (the job stays inflight, so the heartbeat
				// resumes renewing it); do NOT hand the job to the
				// dispatcher again — it is already running here.
				s.lost++
				s.mu.Unlock()
				continue
			}
			s.inflight[idx] = true
			s.mu.Unlock()
			return sched.SourcedJob{Job: s.jobs[idx], Seq: idx}, true
		case status == ClaimDrained:
			return sched.SourcedJob{}, false
		default: // ClaimWait: the server already held the request
			s.mu.Lock()
			s.failures = 0
			s.mu.Unlock()
			backoff = time.Millisecond
		}
		select {
		case <-s.stop:
			return sched.SourcedJob{}, false
		case <-time.After(backoff):
		}
		if err != nil {
			if backoff *= 2; backoff > maxPoll {
				backoff = maxPoll
			}
		}
	}
}

// span records one coordinator round trip on a reserved trace row.
func (s *Source) span(tid int, name string, start time.Time, args map[string]string) {
	if s.tr == nil {
		return
	}
	s.tr.Span(tid, "coord", name, start, time.Since(start), args)
}

// claimResult annotates a claim span with its outcome.
func claimResult(idx int, status ClaimStatus, err error) map[string]string {
	switch {
	case err != nil:
		return map[string]string{"result": "error"}
	case status == ClaimGranted:
		return map[string]string{"result": "granted", "index": strconv.Itoa(idx)}
	case status == ClaimDrained:
		return map[string]string{"result": "drained"}
	}
	return map[string]string{"result": "wait"}
}

// Complete implements sched.JobSource: the outcome is encoded on the
// calling (worker) goroutine and queued for the uploader, so the
// worker moves on to its next run while the result travels. A
// completion that ultimately cannot be delivered is not fatal to the
// suite — the lease expires and another worker redoes the job — but
// it burns this source's failure budget so a dead coordinator
// eventually stops the claim loop too.
func (s *Source) Complete(sj sched.SourcedJob, cr sched.CampaignResult) {
	out, err := outcomeFromResult(cr)
	if err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		delete(s.inflight, sj.Seq)
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, completion{seq: sj.Seq, out: out})
	s.mu.Unlock()
	s.wakeUploader()
}

// wakeUploader nudges the uploader without ever blocking the caller:
// the signal channel holds one token, and a token already in flight
// covers any number of enqueues, because the uploader drains pending
// to empty each time it wakes.
func (s *Source) wakeUploader() {
	select {
	case s.upSignal <- struct{}{}:
	default:
	}
}

// nextUpload blocks until a completion is available (returning it) or
// the queue is closed and empty (returning ok=false).
func (s *Source) nextUpload() (completion, bool) {
	for {
		s.mu.Lock()
		if len(s.pending) > 0 {
			c := s.pending[0]
			s.pending[0] = completion{}
			s.pending = s.pending[1:]
			if len(s.pending) == 0 {
				// The backing array is fully consumed; release it so a
				// burst's spill is not pinned for the rest of the run.
				s.pending = nil
			}
			s.mu.Unlock()
			return c, true
		}
		closed := s.upClosed
		s.mu.Unlock()
		if closed {
			return completion{}, false
		}
		<-s.upSignal
	}
}

// uploader drains the completion queue, retrying each upload a few
// times. The job stays inflight — its lease renewed by the heartbeat —
// until its upload lands, so a slow link never costs a lease. Once the
// source has declared the coordinator lost, remaining uploads get one
// attempt each with no sleeps, so Close returns promptly instead of
// burning the retry budget on a queue of known-undeliverable results.
func (s *Source) uploader() {
	for {
		c, ok := s.nextUpload()
		if !ok {
			return
		}
		attempts := 3
		if s.Err() != nil {
			attempts = 1
		}
		var err error
		for attempt := 0; attempt < attempts; attempt++ {
			start := time.Now()
			var dup bool
			dup, err = s.cl.Complete(c.seq, c.out)
			result := "ok"
			switch {
			case err != nil:
				result = "error"
			case dup:
				result = "duplicate"
			}
			s.span(obs.TIDUpload, "complete", start,
				map[string]string{"index": strconv.Itoa(c.seq), "result": result})
			if err == nil {
				break
			}
			if attempt < attempts-1 {
				time.Sleep(s.cl.PollInterval())
			}
		}
		s.mu.Lock()
		delete(s.inflight, c.seq)
		if err == nil {
			s.failures = 0
		}
		s.mu.Unlock()
		if err != nil {
			s.fail(err)
		}
	}
}

// heartbeat renews every in-flight lease at a third of the TTL.
func (s *Source) heartbeat() {
	interval := s.cl.LeaseTTL() / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		indices := make([]int, 0, len(s.inflight))
		for i := range s.inflight {
			indices = append(indices, i)
		}
		s.mu.Unlock()
		if len(indices) == 0 {
			continue
		}
		renewStart := time.Now()
		lost, err := s.cl.Renew(indices)
		s.span(obs.TIDCoord, "renew", renewStart, map[string]string{
			"leases": strconv.Itoa(len(indices)), "lost": strconv.Itoa(len(lost)),
		})
		if err != nil {
			s.fail(err)
			continue
		}
		s.mu.Lock()
		s.failures = 0
		s.lost += len(lost)
		s.mu.Unlock()
	}
}
