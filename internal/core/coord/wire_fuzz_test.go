package coord_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core/coord"
)

// FuzzCoordWire throws arbitrary bytes at every request decoder and —
// through a live server — at every endpoint. The invariants: no
// decoder panics; whatever a decoder accepts re-encodes and re-decodes
// to an equally valid request (round-trip closure); and the server
// answers malformed requests with 4xx, never a crash or a 5xx.
func FuzzCoordWire(f *testing.F) {
	f.Add([]byte(`{`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"proto":"eptest-coord/2","worker":"w","catalog":["a/v","a/f"]}`))
	f.Add([]byte(`{"proto":"eptest-coord/2","worker_id":"w1"}`))
	f.Add([]byte(`{"proto":"eptest-coord/2","worker_id":"w1","indices":[0,1,2]}`))
	f.Add([]byte(`{"proto":"eptest-coord/2","worker_id":"w1","index":0,"outcome":{"name":"a","variant":"v","err":"boom"}}`))
	f.Add([]byte(`{"proto":"eptest-coord/0","worker_id":"w1"}`))
	f.Add([]byte(`{"proto":"eptest-coord/2","worker_id":"w1","index":-4,"outcome":{"name":"a"}}`))

	// A tiny lease keeps the claim endpoint's long-poll hold at a few
	// milliseconds; a realistic TTL would throttle the fuzzer to one
	// exec per hold whenever the seeds leave both jobs claimed.
	co := coord.New([]string{"a/v", "a/f"}, coord.Options{LeaseTTL: 10 * time.Millisecond})
	srv := httptest.NewServer(coord.NewServer(co))
	defer srv.Close()
	paths := []string{"/v1/coord/register", "/v1/coord/claim", "/v1/coord/renew", "/v1/coord/complete"}

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := coord.DecodeRegister(data); err == nil {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("accepted register does not re-encode: %v", err)
			}
			if _, err := coord.DecodeRegister(b); err != nil {
				t.Fatalf("re-encoded register rejected: %v", err)
			}
		}
		if r, err := coord.DecodeClaim(data); err == nil {
			b, _ := json.Marshal(r)
			if _, err := coord.DecodeClaim(b); err != nil {
				t.Fatalf("re-encoded claim rejected: %v", err)
			}
		}
		if r, err := coord.DecodeRenew(data); err == nil {
			b, _ := json.Marshal(r)
			if _, err := coord.DecodeRenew(b); err != nil {
				t.Fatalf("re-encoded renew rejected: %v", err)
			}
		}
		if r, err := coord.DecodeComplete(data); err == nil {
			b, _ := json.Marshal(r)
			if _, err := coord.DecodeComplete(b); err != nil {
				t.Fatalf("re-encoded complete rejected: %v", err)
			}
		}
		// Every endpoint must survive the same bytes: a malformed claim
		// is rejected, never served or crashed on. 2xx is allowed only
		// for requests the decoders accepted above (the server may
		// still 409 those against its queue state).
		for _, p := range paths {
			resp, err := http.Post(srv.URL+p, "application/json", bytes.NewReader(data))
			if err != nil {
				t.Fatalf("POST %s: %v", p, err)
			}
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				t.Fatalf("POST %s = %d on %q", p, resp.StatusCode, data)
			}
		}
	})
}

// FuzzCampaignSpec throws arbitrary bytes at the campaign submission
// decoder and — through a live API server — at POST /v1/campaigns. The
// invariants mirror FuzzCoordWire: no panic, round-trip closure on
// accepted specs, and never a 5xx. Accepted names must also never
// collide with the cache transport's fingerprint routes.
func FuzzCampaignSpec(f *testing.F) {
	f.Add([]byte(`{`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"name":"nightly","filter":"a*","priority":3,"note":"soak"}`))
	f.Add([]byte(`{"name":"` + string(bytes.Repeat([]byte("e"), 64)) + `"}`))
	f.Add([]byte(`{"name":"` + string(bytes.Repeat([]byte("ab"), 32)) + `"}`)) // fingerprint-shaped
	f.Add([]byte(`{"name":"x","priority":-9999999}`))
	f.Add([]byte(`{"name":"../../etc","filter":"*"}`))

	co := coord.New([]string{"a/v", "a/f"}, coord.Options{LeaseTTL: 10 * time.Millisecond})
	fallback := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})
	srv := httptest.NewServer(coord.CampaignAPI(co, fallback, nil))
	defer srv.Close()

	f.Fuzz(func(t *testing.T, data []byte) {
		if spec, err := coord.DecodeCampaignSpec(data); err == nil {
			b, err := json.Marshal(spec)
			if err != nil {
				t.Fatalf("accepted spec does not re-encode: %v", err)
			}
			if _, err := coord.DecodeCampaignSpec(b); err != nil {
				t.Fatalf("re-encoded spec rejected: %v", err)
			}
		}
		resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST /v1/campaigns: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("POST /v1/campaigns = %d on %q", resp.StatusCode, data)
		}
	})
}
