package coord_test

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core/coord"
	"repro/internal/core/inject"
)

// memCache is an in-memory sched.Cache for journal tests: enough of a
// result store for ref-elided outcomes to round-trip.
type memCache struct {
	mu sync.Mutex
	m  map[string]*inject.Result
}

func newMemCache() *memCache { return &memCache{m: make(map[string]*inject.Result)} }

func (c *memCache) Get(fp string) (*inject.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[fp]
	return r, ok
}

func (c *memCache) Put(fp, label string, res *inject.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[fp] = res
	return nil
}

// fakeFingerprint fabricates a 64-hex fingerprint distinct per index.
func fakeFingerprint(idx int) string {
	return strings.Repeat(fmt.Sprintf("%02x", idx+1), 32)
}

// fakeOutcomeFP is fakeOutcome with a cache fingerprint attached, so
// the journal can elide the result bytes.
func fakeOutcomeFP(t *testing.T, idx int) coord.Outcome {
	t.Helper()
	o := fakeOutcome(t, idx)
	o.Fingerprint = fakeFingerprint(idx)
	return o
}

// journaledCoord builds a journaling coordinator on a fake clock with
// one registered worker, plus the journal and cache behind it.
func journaledCoord(t *testing.T) (*coord.Coordinator, *fakeClock, *coord.MemJournal, *memCache, string) {
	t.Helper()
	clk := newFakeClock()
	mj := &coord.MemJournal{}
	cache := newMemCache()
	co := coord.New(testCatalog, coord.Options{
		LeaseTTL: 10 * time.Second, Now: clk.Now, Journal: mj, Results: cache,
	})
	id, err := co.Register("alice", testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	return co, clk, mj, cache, id
}

// restore replays a journal into a fresh coordinator sharing the same
// clock and cache.
func restore(t *testing.T, clk *fakeClock, mj *coord.MemJournal, cache *memCache) *coord.Coordinator {
	t.Helper()
	co, err := coord.Restore(testCatalog, coord.Options{
		LeaseTTL: 10 * time.Second, Now: clk.Now, Journal: &coord.MemJournal{}, Results: cache,
	}, mj.Records())
	if err != nil {
		t.Fatal(err)
	}
	if !co.Resumed() {
		t.Fatal("restored coordinator does not report Resumed")
	}
	return co
}

// TestJournalReplayResumes pins the durability core: a coordinator
// rebuilt from its journal carries completed work, worker identity and
// counters, and hands out exactly the jobs that were still open.
func TestJournalReplayResumes(t *testing.T) {
	t.Parallel()
	co, clk, mj, cache, id := journaledCoord(t)
	mustClaim(t, co, id, 0)
	mustClaim(t, co, id, 1)
	if dup, err := co.Complete(id, 0, fakeOutcomeFP(t, 0)); err != nil || dup {
		t.Fatalf("Complete = (dup %v, %v)", dup, err)
	}

	co2 := restore(t, clk, mj, cache)
	st := co2.Stats()
	if st.Done != 1 || st.Claimed != 1 || st.Pending != 2 {
		t.Fatalf("restored stats = %d done / %d claimed / %d pending, want 1/1/2", st.Done, st.Claimed, st.Pending)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != id || st.Workers[0].Name != "alice" {
		t.Fatalf("restored workers = %+v, want the original alice row", st.Workers)
	}
	if w := st.Workers[0]; w.Claims != 2 || w.Completions != 1 {
		t.Errorf("restored alice counters = %+v, want 2 claims / 1 completion", w)
	}
	// Job 1's lease is still live, so the next claim is job 2.
	mustClaim(t, co2, id, 2)

	// Reattach by name across the restart: the same worker name gets its
	// old id back, and a new name mints an id beyond every restored one.
	if got, err := co2.Register("alice", testCatalog); err != nil || got != id {
		t.Errorf("re-register alice = (%q, %v), want (%q, nil)", got, err, id)
	}
	fresh, err := co2.Register("bob", testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == id {
		t.Errorf("bob was handed alice's id %q", fresh)
	}
}

// TestJournalInFlightLeaseRequeues pins lease recovery across a
// restart: a restored in-flight lease keeps its original absolute
// deadline — intact before it, requeued at the first sweep after it.
func TestJournalInFlightLeaseRequeues(t *testing.T) {
	t.Parallel()
	co, clk, mj, cache, id := journaledCoord(t)
	mustClaim(t, co, id, 0) // expires at t0+10s

	clk.Advance(5 * time.Second)
	co2 := restore(t, clk, mj, cache)
	bob, err := co2.Register("bob", testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	// 5s in: the restored lease is still live, bob gets job 1.
	mustClaim(t, co2, bob, 1)
	// Past the original deadline: job 0 requeues and bob picks it up.
	clk.Advance(6 * time.Second)
	mustClaim(t, co2, bob, 0)
	if st := co2.Stats(); st.Requeues != 1 {
		t.Errorf("requeues = %d, want 1 (the restored lease expiring)", st.Requeues)
	}
}

// TestJournalDuplicateAcrossRestart pins first-write-wins across
// process boundaries: a completion recorded before the restart turns
// the same completion after it into a discarded duplicate.
func TestJournalDuplicateAcrossRestart(t *testing.T) {
	t.Parallel()
	co, clk, mj, cache, id := journaledCoord(t)
	mustClaim(t, co, id, 0)
	if dup, err := co.Complete(id, 0, fakeOutcomeFP(t, 0)); err != nil || dup {
		t.Fatalf("Complete = (dup %v, %v)", dup, err)
	}

	co2 := restore(t, clk, mj, cache)
	dup, err := co2.Complete(id, 0, fakeOutcomeFP(t, 0))
	if err != nil || !dup {
		t.Fatalf("post-restart Complete = (dup %v, %v), want a discarded duplicate", dup, err)
	}
	if st := co2.Stats(); st.Duplicates != 1 || st.Done != 1 {
		t.Errorf("stats = %d duplicates / %d done, want 1/1", st.Duplicates, st.Done)
	}
}

// TestJournalRefElision pins the storage story: a completion whose
// result is cache-resident journals a reference, not the bytes, and the
// restore re-encodes the identical outcome from the cache — the merged
// suite result survives a restart byte-for-byte.
func TestJournalRefElision(t *testing.T) {
	t.Parallel()
	co, clk, mj, cache, id := journaledCoord(t)
	for i := range testCatalog {
		mustClaim(t, co, id, i)
		if dup, err := co.Complete(id, i, fakeOutcomeFP(t, i)); err != nil || dup {
			t.Fatalf("Complete(%d) = (dup %v, %v)", i, dup, err)
		}
	}
	for _, rec := range mj.Records() {
		if rec.Op == "complete" {
			if !rec.ResultRef || rec.Outcome == nil || len(rec.Outcome.Result) != 0 {
				t.Fatalf("complete record did not elide the cached result: %+v", rec)
			}
		}
	}

	want, err := co.SuiteResult()
	if err != nil {
		t.Fatal(err)
	}
	co2 := restore(t, clk, mj, cache)
	select {
	case <-co2.Drained():
	default:
		t.Fatal("fully completed journal did not restore as drained")
	}
	got, err := co2.SuiteResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Campaigns, want.Campaigns) {
		t.Errorf("restored suite result differs from the original:\n%+v\nvs\n%+v", got.Campaigns, want.Campaigns)
	}
}

// TestJournalMissingCacheEntryRequeues pins the degraded path: a
// ref-elided outcome whose cache entry has vanished cannot be restored,
// so the job goes back to pending — consistent, just redone.
func TestJournalMissingCacheEntryRequeues(t *testing.T) {
	t.Parallel()
	co, clk, mj, _, id := journaledCoord(t)
	mustClaim(t, co, id, 0)
	if dup, err := co.Complete(id, 0, fakeOutcomeFP(t, 0)); err != nil || dup {
		t.Fatalf("Complete = (dup %v, %v)", dup, err)
	}

	var logged []string
	empty := newMemCache()
	co2, err := coord.Restore(testCatalog, coord.Options{
		LeaseTTL: 10 * time.Second, Now: clk.Now, Results: empty,
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) },
	}, mj.Records())
	if err != nil {
		t.Fatal(err)
	}
	if st := co2.Stats(); st.Done != 0 || st.Pending != len(testCatalog) {
		t.Errorf("stats = %d done / %d pending, want the orphaned job requeued (0/%d)", st.Done, st.Pending, len(testCatalog))
	}
	if len(logged) == 0 || !strings.Contains(logged[0], "missing cache entry") {
		t.Errorf("missing cache entry was not logged: %q", logged)
	}
}

// TestJournalCatalogMismatchRejected pins the identity check: a journal
// replays only against the catalog it was written for.
func TestJournalCatalogMismatchRejected(t *testing.T) {
	t.Parallel()
	_, clk, mj, cache, _ := journaledCoord(t)
	other := []string{"x/vulnerable", "x/fixed"}
	if _, err := coord.Restore(other, coord.Options{Now: clk.Now, Results: cache}, mj.Records()); err == nil {
		t.Fatal("Restore accepted a journal written for a different catalog")
	}
}

// TestJournalCampaignsSurviveRestart pins named-campaign durability: a
// submitted campaign's spec, progress, and finished state all replay.
func TestJournalCampaignsSurviveRestart(t *testing.T) {
	t.Parallel()
	co, clk, mj, cache, id := journaledCoord(t)
	if _, err := co.Submit(coord.CampaignSpec{Name: "a-only", Filter: "a*", Priority: 5, Note: "focus"}); err != nil {
		t.Fatal(err)
	}
	// Priority pulls the a/* jobs (indices 0, 1) ahead of the rest.
	mustClaim(t, co, id, 0)
	if dup, err := co.Complete(id, 0, fakeOutcomeFP(t, 0)); err != nil || dup {
		t.Fatalf("Complete = (dup %v, %v)", dup, err)
	}

	co2 := restore(t, clk, mj, cache)
	cs, ok := co2.Campaign("a-only")
	if !ok {
		t.Fatal("campaign a-only did not survive the restart")
	}
	if cs.Filter != "a*" || cs.Priority != 5 || cs.Note != "focus" || cs.Jobs != 2 || cs.Done != 1 || cs.State != "running" {
		t.Errorf("restored campaign = %+v", cs)
	}
	// The restored queue keeps the campaign's priority: next claim is
	// the remaining a/* job.
	mustClaim(t, co2, id, 1)
}

// TestWorkerChurnBounded pins the churn fix: two hundred workers that
// each join, claim, and vanish leave a bounded table — departed rows
// fold into one aggregate instead of accumulating forever.
func TestWorkerChurnBounded(t *testing.T) {
	t.Parallel()
	clk := newFakeClock()
	co := coord.New(testCatalog, coord.Options{LeaseTTL: 10 * time.Second, Now: clk.Now})
	for i := 0; i < 200; i++ {
		id, err := co.Register(fmt.Sprintf("ephemeral-%d", i), testCatalog)
		if err != nil {
			t.Fatal(err)
		}
		if _, status, err := co.Claim(id); err != nil || status != coord.ClaimGranted {
			t.Fatalf("cycle %d: Claim = (%v, %v)", i, status, err)
		}
		// Past the lease TTL and the worker-GC horizon: the next
		// Register's sweep requeues the abandoned lease and retires the
		// silent worker.
		clk.Advance(61 * time.Second)
	}
	st := co.Stats()
	if len(st.Workers) > 2 {
		t.Errorf("worker table grew to %d rows under churn, want it bounded", len(st.Workers))
	}
	if st.Departed == nil || st.Departed.Workers < 198 {
		t.Fatalf("departed aggregate = %+v, want ≥198 workers folded in", st.Departed)
	}
	if st.Departed.Claims < 198 || st.Departed.Expiries < 198 {
		t.Errorf("departed counters = %+v, want the folded claims and expiries", st.Departed)
	}
}
