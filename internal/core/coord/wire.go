package coord

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core/sched"
	"repro/internal/core/store"
)

// ProtocolVersion identifies the coordinator wire schema. Every
// request carries it and the server rejects mismatches, so a
// mixed-version fleet fails loudly at register time instead of
// corrupting a merge. Bump it on any incompatible change.
//
// Version 2 added the durable queue and named campaigns: register
// replies gained Resumed and the server grew the /v1/campaigns
// submission surface. Version-1 workers are refused at register — a
// fleet must upgrade together.
const ProtocolVersion = "eptest-coord/2"

// Outcome is one completed job's wire form: the shard-artifact fields
// of docs/STORE.md for a single job, with the result in the store's
// canonical campaign encoding (store.EncodeResult). The coordinator
// records it verbatim and decodes it only when assembling the merged
// suite result.
type Outcome struct {
	Name              string `json:"name"`
	Variant           string `json:"variant,omitempty"`
	Fingerprint       string `json:"fingerprint,omitempty"`
	SourceFingerprint string `json:"source_fingerprint,omitempty"`
	Cached            bool   `json:"cached,omitempty"`
	CachedSource      bool   `json:"cached_source,omitempty"`
	// Err is the campaign's planning error, if it failed.
	Err string `json:"err,omitempty"`
	// Result is the campaign result in canonical wire form; required
	// unless Err is set.
	Result json.RawMessage `json:"result,omitempty"`
}

// validate rejects outcomes the merge could obviously not consume: a
// successful job must carry well-formed JSON for its result, and a
// name is always required. The check is a syntax scan, not a full
// decode — completions are the coordinator's hot path, and the deep
// structural decode happens once, at SuiteResult assembly, where a bad
// payload still fails loudly with the job named.
func (o *Outcome) validate() error {
	if o.Name == "" {
		return errors.New("outcome has no job name")
	}
	if o.Err == "" {
		if len(o.Result) == 0 {
			return errors.New("outcome has neither a result nor an error")
		}
		if !json.Valid(o.Result) {
			return errors.New("outcome result is not valid JSON")
		}
	}
	return nil
}

// campaignResult converts a recorded outcome back into the scheduler's
// in-memory form.
func (o *Outcome) campaignResult() (sched.CampaignResult, error) {
	cr := sched.CampaignResult{
		Job:               sched.Job{Name: o.Name, Variant: o.Variant},
		Fingerprint:       o.Fingerprint,
		SourceFingerprint: o.SourceFingerprint,
		Cached:            o.Cached,
		CachedSource:      o.CachedSource,
	}
	if o.Err != "" {
		cr.Err = errors.New(o.Err)
		return cr, nil
	}
	res, err := store.DecodeResult(o.Result)
	if err != nil {
		return sched.CampaignResult{}, err
	}
	cr.Result = res
	return cr, nil
}

// outcomeFromResult builds the wire outcome for one campaign result.
func outcomeFromResult(cr sched.CampaignResult) (Outcome, error) {
	o := Outcome{
		Name:              cr.Job.Name,
		Variant:           cr.Job.Variant,
		Fingerprint:       cr.Fingerprint,
		SourceFingerprint: cr.SourceFingerprint,
		Cached:            cr.Cached,
		CachedSource:      cr.CachedSource,
	}
	if cr.Err != nil {
		o.Err = cr.Err.Error()
		return o, nil
	}
	if cr.Result == nil {
		return Outcome{}, fmt.Errorf("coord: %s has neither a result nor an error", cr.Job.Label())
	}
	b, err := store.EncodeResult(cr.Result)
	if err != nil {
		return Outcome{}, fmt.Errorf("coord: encode %s: %w", cr.Job.Label(), err)
	}
	o.Result = b
	return o, nil
}

// RegisterRequest admits a worker to the queue.
type RegisterRequest struct {
	Proto  string `json:"proto"`
	Worker string `json:"worker"`
	// Catalog is the worker's full job-label list; the coordinator
	// rejects a mismatch with its own.
	Catalog []string `json:"catalog"`
}

// RegisterResponse returns the worker's identity and the lease terms.
type RegisterResponse struct {
	Proto    string `json:"proto"`
	WorkerID string `json:"worker_id"`
	// LeaseMillis is the claim TTL; renew well inside it (the client
	// heartbeats at a third).
	LeaseMillis int64 `json:"lease_ms"`
	// PollMillis is the suggested claim-poll interval while the queue
	// reports ClaimWait.
	PollMillis int64 `json:"poll_ms"`
	Jobs       int   `json:"jobs"`
	// Resumed reports that the coordinator rebuilt its queue from a
	// journal — the worker may be reattaching to a restarted service
	// mid-campaign.
	Resumed bool `json:"resumed,omitempty"`
}

// ClaimRequest asks for the next job.
type ClaimRequest struct {
	Proto    string `json:"proto"`
	WorkerID string `json:"worker_id"`
}

// Claim statuses on the wire.
const (
	statusClaimed = "claimed"
	statusWait    = "wait"
	statusDrained = "drained"
)

// ClaimResponse grants a lease ("claimed"), asks the worker to poll
// again ("wait"), or dismisses it ("drained").
type ClaimResponse struct {
	Status string `json:"status"`
	// Index and Label identify the granted job (status "claimed").
	// Index must not be omitempty: job 0 is a real index.
	Index int    `json:"index"`
	Label string `json:"label,omitempty"`
}

// RenewRequest heartbeats the worker's in-flight claims.
type RenewRequest struct {
	Proto    string `json:"proto"`
	WorkerID string `json:"worker_id"`
	Indices  []int  `json:"indices"`
}

// RenewResponse lists which leases were extended and which are lost
// (expired-and-requeued, reclaimed, or already completed elsewhere).
type RenewResponse struct {
	Renewed []int `json:"renewed,omitempty"`
	Lost    []int `json:"lost,omitempty"`
}

// CompleteRequest reports one claimed job's outcome.
type CompleteRequest struct {
	Proto    string  `json:"proto"`
	WorkerID string  `json:"worker_id"`
	Index    int     `json:"index"`
	Outcome  Outcome `json:"outcome"`
}

// CompleteResponse acknowledges a completion; Duplicate marks a
// first-write-wins discard (the worker should treat it as success).
type CompleteResponse struct {
	Duplicate bool `json:"duplicate,omitempty"`
}

// Decode limits. A matrix catalog is ~600 labels; 1e6 jobs of headroom
// keeps the coordinator from allocating unboundedly for a hostile or
// corrupt request before validation rejects it.
const (
	maxCatalogJobs = 1 << 20
	maxWorkerName  = 256
)

// The Decode* helpers strictly parse and validate one request each.
// The coordinator mutates shared state on requests, so unlike the
// cache transport (where any confusion degrades to a miss) every
// malformed request must be rejected before it reaches the queue;
// these are also the surface the wire fuzzer drives.

// DecodeRegister parses and validates a register request.
func DecodeRegister(b []byte) (*RegisterRequest, error) {
	var r RegisterRequest
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	if r.Proto != ProtocolVersion {
		return nil, fmt.Errorf("coord: request speaks %q, server speaks %q", r.Proto, ProtocolVersion)
	}
	if r.Worker == "" || len(r.Worker) > maxWorkerName {
		return nil, errors.New("coord: worker name missing or too long")
	}
	if len(r.Catalog) == 0 || len(r.Catalog) > maxCatalogJobs {
		return nil, errors.New("coord: catalog missing or too large")
	}
	for _, l := range r.Catalog {
		if l == "" {
			return nil, errors.New("coord: catalog contains an empty label")
		}
	}
	return &r, nil
}

// DecodeClaim parses and validates a claim request.
func DecodeClaim(b []byte) (*ClaimRequest, error) {
	var r ClaimRequest
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	if r.Proto != ProtocolVersion {
		return nil, fmt.Errorf("coord: request speaks %q, server speaks %q", r.Proto, ProtocolVersion)
	}
	if r.WorkerID == "" || len(r.WorkerID) > maxWorkerName {
		return nil, errors.New("coord: worker id missing or too long")
	}
	return &r, nil
}

// DecodeRenew parses and validates a renew request.
func DecodeRenew(b []byte) (*RenewRequest, error) {
	var r RenewRequest
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	if r.Proto != ProtocolVersion {
		return nil, fmt.Errorf("coord: request speaks %q, server speaks %q", r.Proto, ProtocolVersion)
	}
	if r.WorkerID == "" || len(r.WorkerID) > maxWorkerName {
		return nil, errors.New("coord: worker id missing or too long")
	}
	if len(r.Indices) > maxCatalogJobs {
		return nil, errors.New("coord: too many renewal indices")
	}
	for _, i := range r.Indices {
		if i < 0 || i >= maxCatalogJobs {
			return nil, fmt.Errorf("coord: renewal index %d out of range", i)
		}
	}
	return &r, nil
}

// CampaignSpec is the body of POST /v1/campaigns: a named, filtered,
// prioritised view over the coordinator's catalog.
type CampaignSpec struct {
	// Name identifies the campaign in status endpoints and must be
	// unique among live campaigns.
	Name string `json:"name"`
	// Filter selects the member jobs with the sched.FilterJobs glob
	// language; empty means the full catalog.
	Filter string `json:"filter,omitempty"`
	// Priority biases claiming: pending jobs in higher-priority
	// unfinished campaigns are handed out first. Zero is the default
	// campaign's priority.
	Priority int `json:"priority,omitempty"`
	// Note is a free-form operator annotation echoed in status.
	Note string `json:"note,omitempty"`
}

// Campaign-spec limits. Names stay path- and label-safe; the rest are
// allocation bounds for a hostile request.
const (
	maxCampaignName = 64
	maxFilterLen    = 256
	maxNoteLen      = 1024
	maxPriority     = 1 << 20
)

// DecodeCampaignSpec parses and validates a campaign submission. Names
// are restricted to [A-Za-z0-9._-] so they embed safely in URL paths
// and metric labels, and a 64-hex-character name is rejected because
// GET /v1/campaigns/{fingerprint} is the cache transport's entry route
// on the same path space.
func DecodeCampaignSpec(b []byte) (*CampaignSpec, error) {
	var s CampaignSpec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	if s.Name == "" || len(s.Name) > maxCampaignName {
		return nil, errors.New("coord: campaign name missing or too long")
	}
	for i := 0; i < len(s.Name); i++ {
		c := s.Name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return nil, fmt.Errorf("coord: campaign name contains %q (allowed: letters, digits, '.', '_', '-')", c)
		}
	}
	if store.IsFingerprint(s.Name) {
		return nil, errors.New("coord: campaign name must not look like a cache fingerprint (64 hex characters)")
	}
	if len(s.Filter) > maxFilterLen {
		return nil, errors.New("coord: campaign filter too long")
	}
	if len(s.Note) > maxNoteLen {
		return nil, errors.New("coord: campaign note too long")
	}
	if s.Priority < -maxPriority || s.Priority > maxPriority {
		return nil, errors.New("coord: campaign priority out of range")
	}
	return &s, nil
}

// DecodeComplete parses and validates a complete request. The outcome
// payload itself is validated by the coordinator against its catalog.
func DecodeComplete(b []byte) (*CompleteRequest, error) {
	var r CompleteRequest
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	if r.Proto != ProtocolVersion {
		return nil, fmt.Errorf("coord: request speaks %q, server speaks %q", r.Proto, ProtocolVersion)
	}
	if r.WorkerID == "" || len(r.WorkerID) > maxWorkerName {
		return nil, errors.New("coord: worker id missing or too long")
	}
	if r.Index < 0 || r.Index >= maxCatalogJobs {
		return nil, fmt.Errorf("coord: completion index %d out of range", r.Index)
	}
	if r.Outcome.Name == "" {
		return nil, errors.New("coord: completion outcome has no job name")
	}
	return &r, nil
}
