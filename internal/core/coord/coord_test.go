package coord_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core/coord"
	"repro/internal/core/inject"
	"repro/internal/core/sched"
	"repro/internal/core/store"
)

// fakeClock is a hand-driven clock for deterministic lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testCatalog is a four-job catalog; outcomes for it are fabricated
// with fakeOutcome.
var testCatalog = []string{"a/vulnerable", "a/fixed", "b/vulnerable", "b/fixed"}

// fakeOutcome builds a valid completion for catalog index idx.
func fakeOutcome(t *testing.T, idx int) coord.Outcome {
	t.Helper()
	label := testCatalog[idx]
	name, variant, _ := strings.Cut(label, "/")
	b, err := store.EncodeResult(&inject.Result{Campaign: label})
	if err != nil {
		t.Fatal(err)
	}
	return coord.Outcome{Name: name, Variant: variant, Result: b}
}

// newCoord builds a coordinator on a fake clock with a 10s lease and
// one registered worker per name.
func newCoord(t *testing.T, names ...string) (*coord.Coordinator, *fakeClock, []string) {
	t.Helper()
	clk := newFakeClock()
	co := coord.New(testCatalog, coord.Options{LeaseTTL: 10 * time.Second, Now: clk.Now})
	ids := make([]string, len(names))
	for i, n := range names {
		id, err := co.Register(n, testCatalog)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return co, clk, ids
}

// mustClaim claims and asserts the expected index.
func mustClaim(t *testing.T, co *coord.Coordinator, worker string, wantIdx int) {
	t.Helper()
	idx, status, err := co.Claim(worker)
	if err != nil || status != coord.ClaimGranted || idx != wantIdx {
		t.Fatalf("Claim(%s) = (%d, %v, %v), want (%d, granted, nil)", worker, idx, status, err, wantIdx)
	}
}

// TestClaimExpiryRequeues pins the crash-recovery core: a lease that
// is never renewed expires, and the job goes back to the queue for the
// next claimer.
func TestClaimExpiryRequeues(t *testing.T) {
	t.Parallel()
	co, clk, ids := newCoord(t, "crasher", "drainer")
	a, b := ids[0], ids[1]

	mustClaim(t, co, a, 0)
	mustClaim(t, co, a, 1)
	mustClaim(t, co, b, 2)

	// Just inside the TTL nothing has expired: the next claim is job 3.
	clk.Advance(9 * time.Second)
	mustClaim(t, co, b, 3)
	// b finishes job 2 before its own (unrenewed) lease runs out.
	if dup, err := co.Complete(b, 2, fakeOutcome(t, 2)); err != nil || dup {
		t.Fatalf("Complete(b, 2) = (dup %v, %v)", dup, err)
	}

	// Worker a goes silent past its TTL; both its jobs requeue and b
	// picks them up, lowest index first.
	clk.Advance(2 * time.Second)
	mustClaim(t, co, b, 0)
	mustClaim(t, co, b, 1)

	st := co.Stats()
	if st.Requeues != 2 || st.Expiries != 2 {
		t.Errorf("requeues/expiries = %d/%d, want 2/2", st.Requeues, st.Expiries)
	}
	if w := st.Workers[0]; w.Expiries != 2 || w.Claims != 2 {
		t.Errorf("crasher stats = %+v, want 2 expiries over 2 claims", w)
	}
}

// TestRenewExtendsLease pins the heartbeat: a renewed lease survives
// past the original TTL, an unrenewed one does not.
func TestRenewExtendsLease(t *testing.T) {
	t.Parallel()
	co, clk, ids := newCoord(t, "steady", "thief")
	a, b := ids[0], ids[1]

	mustClaim(t, co, a, 0)
	mustClaim(t, co, a, 1)
	clk.Advance(8 * time.Second)

	// Renew only job 0; both leases are currently live.
	renewed, lost, err := co.Renew(a, []int{0, 1})
	if err != nil || len(lost) != 0 || len(renewed) != 2 {
		t.Fatalf("Renew = (%v, %v, %v), want both renewed", renewed, lost, err)
	}
	// Renew resets both deadlines... advance past the renewed TTL too.
	clk.Advance(11 * time.Second)
	mustClaim(t, co, b, 0) // everything expired again

	// A fresh claim renewed at half-TTL stays held.
	mustClaim(t, co, b, 1)
	clk.Advance(5 * time.Second)
	if _, lost, _ := co.Renew(b, []int{1}); len(lost) != 0 {
		t.Fatalf("lease lost despite renewal at half TTL: %v", lost)
	}
	clk.Advance(6 * time.Second) // 11s after claim, 6s after renew: still live
	if _, lost, _ := co.Renew(b, []int{1}); len(lost) != 0 {
		t.Fatalf("renewed lease expired at original deadline: %v", lost)
	}
}

// TestRenewReportsLostLeases pins the other half of the heartbeat
// contract: a lease that expired (or was never the caller's) comes
// back as lost, not renewed.
func TestRenewReportsLostLeases(t *testing.T) {
	t.Parallel()
	co, clk, ids := newCoord(t, "slow", "fast")
	a, b := ids[0], ids[1]

	mustClaim(t, co, a, 0)
	clk.Advance(11 * time.Second) // lease expires and requeues
	mustClaim(t, co, b, 0)        // reclaimed by b

	renewed, lost, err := co.Renew(a, []int{0})
	if err != nil || len(renewed) != 0 || len(lost) != 1 || lost[0] != 0 {
		t.Fatalf("Renew(a) = (%v, %v, %v), want job 0 lost", renewed, lost, err)
	}
	// b's own renewal still works.
	if renewed, _, _ := co.Renew(b, []int{0}); len(renewed) != 1 {
		t.Fatalf("holder's renewal failed")
	}
}

// TestCompleteFirstWriteWins pins duplicate resolution: when a slow
// worker's lease expires and another worker redoes the job, whichever
// completion lands first is recorded and every later one is discarded
// as a duplicate — in both orderings.
func TestCompleteFirstWriteWins(t *testing.T) {
	t.Parallel()
	co, clk, ids := newCoord(t, "slow", "fast")
	a, b := ids[0], ids[1]

	// Job 0: a claims, expires, b reclaims and completes first; a's
	// late completion is a duplicate.
	mustClaim(t, co, a, 0)
	clk.Advance(11 * time.Second)
	mustClaim(t, co, b, 0)
	if dup, err := co.Complete(b, 0, fakeOutcome(t, 0)); err != nil || dup {
		t.Fatalf("first completion = (dup %v, %v)", dup, err)
	}
	if dup, err := co.Complete(a, 0, fakeOutcome(t, 0)); err != nil || !dup {
		t.Fatalf("late completion = (dup %v, %v), want duplicate", dup, err)
	}

	// Job 1: a claims, expires, b reclaims — but a finishes first
	// anyway. First write wins regardless of who holds the lease, so
	// a's result is recorded and b's is the duplicate.
	mustClaim(t, co, a, 1)
	clk.Advance(11 * time.Second)
	mustClaim(t, co, b, 1)
	if dup, err := co.Complete(a, 1, fakeOutcome(t, 1)); err != nil || dup {
		t.Fatalf("expired holder's first completion = (dup %v, %v), want accepted", dup, err)
	}
	if dup, err := co.Complete(b, 1, fakeOutcome(t, 1)); err != nil || !dup {
		t.Fatalf("lease holder's late completion = (dup %v, %v), want duplicate", dup, err)
	}

	st := co.Stats()
	if st.Duplicates != 2 || st.Done != 2 {
		t.Errorf("duplicates/done = %d/%d, want 2/2", st.Duplicates, st.Done)
	}
}

// TestDrainAndSuiteResult pins the terminal state: claims report
// drained once every job is done, Drained() fires exactly then, and
// SuiteResult assembles outcomes in catalog order.
func TestDrainAndSuiteResult(t *testing.T) {
	t.Parallel()
	co, _, ids := newCoord(t, "w")
	w := ids[0]

	if _, err := co.SuiteResult(); err == nil {
		t.Fatal("SuiteResult succeeded before the queue drained")
	}
	select {
	case <-co.Drained():
		t.Fatal("Drained() closed with the whole queue pending")
	default:
	}
	sr := suiteResultAfterDraining(t, co, w)
	for i, c := range sr.Campaigns {
		if c.Err != nil || c.Result == nil {
			t.Fatalf("campaign %d: err %v, result %v", i, c.Err, c.Result)
		}
		if c.Result.Campaign != testCatalog[i] {
			t.Errorf("campaign %d result is %q, want %q", i, c.Result.Campaign, testCatalog[i])
		}
	}
	// The queue stays drained for late joiners.
	late, err := co.Register("late", testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if _, status, err := co.Claim(late); err != nil || status != coord.ClaimDrained {
		t.Errorf("late claim = (%v, %v), want drained", status, err)
	}
}

// TestRegisterCatalogMismatch pins the admission check: a worker built
// with different flags (shorter, reordered, or renamed catalog) is
// rejected at register time.
func TestRegisterCatalogMismatch(t *testing.T) {
	t.Parallel()
	co, _, _ := newCoord(t)
	if _, err := co.Register("short", testCatalog[:2]); err == nil {
		t.Error("short catalog accepted")
	}
	swapped := append([]string(nil), testCatalog...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := co.Register("swapped", swapped); err == nil {
		t.Error("reordered catalog accepted")
	}
	if _, err := co.Register("ok", testCatalog); err != nil {
		t.Errorf("matching catalog rejected: %v", err)
	}
}

// TestUnknownWorkerRejected pins that every verb demands registration.
func TestUnknownWorkerRejected(t *testing.T) {
	t.Parallel()
	co, _, _ := newCoord(t)
	if _, _, err := co.Claim("w99"); err == nil {
		t.Error("claim from unregistered worker accepted")
	}
	if _, _, err := co.Renew("w99", []int{0}); err == nil {
		t.Error("renew from unregistered worker accepted")
	}
	if _, err := co.Complete("w99", 0, coord.Outcome{Name: "a", Variant: "vulnerable"}); err == nil {
		t.Error("complete from unregistered worker accepted")
	}
}

// TestCompleteValidation pins the poisoning guards: an index out of
// range, a label that disagrees with the catalog, and a successful
// outcome without a decodable result are all rejected.
func TestCompleteValidation(t *testing.T) {
	t.Parallel()
	co, _, ids := newCoord(t, "w")
	w := ids[0]
	mustClaim(t, co, w, 0)

	if _, err := co.Complete(w, 99, fakeOutcome(t, 0)); err == nil {
		t.Error("out-of-range index accepted")
	}
	wrong := fakeOutcome(t, 0)
	wrong.Name = "zzz"
	if _, err := co.Complete(w, 0, wrong); err == nil {
		t.Error("mislabelled outcome accepted")
	}
	noResult := coord.Outcome{Name: "a", Variant: "vulnerable"}
	if _, err := co.Complete(w, 0, noResult); err == nil {
		t.Error("outcome with neither result nor error accepted")
	}
	badResult := coord.Outcome{Name: "a", Variant: "vulnerable", Result: []byte("{")}
	if _, err := co.Complete(w, 0, badResult); err == nil {
		t.Error("undecodable result accepted")
	}
	// A failed campaign needs no result.
	failed := coord.Outcome{Name: "a", Variant: "vulnerable", Err: "planning failed"}
	if dup, err := co.Complete(w, 0, failed); err != nil || dup {
		t.Errorf("failure outcome rejected: (dup %v, %v)", dup, err)
	}
	sr := suiteResultAfterDraining(t, co, w)
	if sr.Campaigns[0].Err == nil || sr.Campaigns[0].Err.Error() != "planning failed" {
		t.Errorf("campaign 0 error = %v, want the recorded planning failure", sr.Campaigns[0].Err)
	}
}

// suiteResultAfterDraining completes every remaining job and returns
// the assembled suite result.
func suiteResultAfterDraining(t *testing.T, co *coord.Coordinator, w string) *sched.SuiteResult {
	t.Helper()
	for {
		idx, status, err := co.Claim(w)
		if err != nil {
			t.Fatal(err)
		}
		if status == coord.ClaimDrained {
			break
		}
		if status != coord.ClaimGranted {
			t.Fatalf("claim status %v with no other workers", status)
		}
		if _, err := co.Complete(w, idx, fakeOutcome(t, idx)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-co.Drained():
	default:
		t.Fatal("Drained() not closed after the last completion")
	}
	sr, err := co.SuiteResult()
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Campaigns) != len(testCatalog) {
		t.Fatalf("suite result has %d campaigns, want %d", len(sr.Campaigns), len(testCatalog))
	}
	for i, c := range sr.Campaigns {
		if got := c.Job.Label(); got != testCatalog[i] {
			t.Errorf("campaign %d is %q, want %q", i, got, testCatalog[i])
		}
	}
	return sr
}
