package coord_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core/coord"
)

// campaignServer mounts the campaign API over a recording fallback and
// returns it with the coordinator underneath, its one registered
// worker's id, and the requests the fallback saw.
func campaignServer(t *testing.T) (*httptest.Server, *coord.Coordinator, string, *[]string) {
	t.Helper()
	co, _, ids := newCoord(t, "alice")
	var fellThrough []string
	fallback := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fellThrough = append(fellThrough, r.Method+" "+r.URL.Path)
		w.WriteHeader(http.StatusTeapot)
	})
	srv := httptest.NewServer(coord.CampaignAPI(co, fallback, nil))
	t.Cleanup(srv.Close)
	return srv, co, ids[0], &fellThrough
}

// postCampaign submits a spec and decodes the response.
func postCampaign(t *testing.T, srv *httptest.Server, spec coord.CampaignSpec) (*http.Response, coord.CampaignStatus) {
	t.Helper()
	b, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st coord.CampaignStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

// getJSON fetches a URL and decodes the JSON body into v, returning
// the status code.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestCampaignAPIConcurrentCampaigns pins the multi-campaign flow: two
// named campaigns submitted over REST queue through the same lease
// machinery with independent status and history.
func TestCampaignAPIConcurrentCampaigns(t *testing.T) {
	t.Parallel()
	srv, co, id, _ := campaignServer(t)

	resp, a := postCampaign(t, srv, coord.CampaignSpec{Name: "a-camp", Filter: "a*", Priority: 2})
	if resp.StatusCode != http.StatusCreated || a.Jobs != 2 || a.State != "running" {
		t.Fatalf("submit a-camp = %d %+v", resp.StatusCode, a)
	}
	resp, b := postCampaign(t, srv, coord.CampaignSpec{Name: "b-camp", Filter: "b*", Priority: 1})
	if resp.StatusCode != http.StatusCreated || b.Jobs != 2 {
		t.Fatalf("submit b-camp = %d %+v", resp.StatusCode, b)
	}

	// a-camp outranks b-camp, so the fleet drains a/* first. Completing
	// both a jobs finishes a-camp while b-camp still runs.
	for _, idx := range []int{0, 1} {
		mustClaim(t, co, id, idx)
		if dup, err := co.Complete(id, idx, fakeOutcome(t, idx)); err != nil || dup {
			t.Fatalf("Complete(%d) = (dup %v, %v)", idx, dup, err)
		}
	}
	var got coord.CampaignStatus
	if code := getJSON(t, srv.URL+"/v1/campaigns/a-camp", &got); code != http.StatusOK {
		t.Fatalf("GET a-camp = %d", code)
	}
	if got.Done != 2 || got.State != "done" || got.FinishedMillis == 0 {
		t.Errorf("a-camp after its jobs completed = %+v, want done", got)
	}
	if code := getJSON(t, srv.URL+"/v1/campaigns/b-camp", &got); code != http.StatusOK {
		t.Fatalf("GET b-camp = %d", code)
	}
	if got.Done != 0 || got.State != "running" {
		t.Errorf("b-camp = %+v, want still running with 0 done", got)
	}

	var list coord.CampaignList
	if code := getJSON(t, srv.URL+"/v1/campaigns", &list); code != http.StatusOK {
		t.Fatalf("GET list = %d", code)
	}
	if len(list.Campaigns) != 3 || list.Campaigns[0].Name != coord.DefaultCampaignName {
		t.Errorf("campaign list = %+v, want default + a-camp + b-camp", list.Campaigns)
	}
}

// TestCampaignAPIErrors pins the failure surface: duplicate names
// conflict, empty filters that match nothing are rejected, malformed
// specs and unknown names fail with the right codes.
func TestCampaignAPIErrors(t *testing.T) {
	t.Parallel()
	srv, _, _, _ := campaignServer(t)

	if resp, _ := postCampaign(t, srv, coord.CampaignSpec{Name: "dup", Filter: "a*"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	if resp, _ := postCampaign(t, srv, coord.CampaignSpec{Name: "dup", Filter: "b*"}); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate submit = %d, want 409", resp.StatusCode)
	}
	if resp, _ := postCampaign(t, srv, coord.CampaignSpec{Name: "empty", Filter: "zzz*"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero-job submit = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postCampaign(t, srv, coord.CampaignSpec{Name: "bad name!"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed name submit = %d, want 400", resp.StatusCode)
	}
	if code := getJSON(t, srv.URL+"/v1/campaigns/nope", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown campaign = %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/campaigns", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE collection = %d, want 405", resp.StatusCode)
	}
}

// TestCampaignAPIFallthrough pins the shared path space: fingerprint
// GETs and every non-GET entry route belong to the cache transport,
// not the campaign API.
func TestCampaignAPIFallthrough(t *testing.T) {
	t.Parallel()
	srv, _, _, fell := campaignServer(t)
	fp := strings.Repeat("ab", 32)

	resp, err := http.Get(srv.URL + "/v1/campaigns/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/campaigns/"+fp, strings.NewReader("{}"))
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := []string{"GET /v1/campaigns/" + fp, "PUT /v1/campaigns/" + fp}
	if len(*fell) != 2 || (*fell)[0] != want[0] || (*fell)[1] != want[1] {
		t.Errorf("fallback saw %q, want %q", *fell, want)
	}
}

// TestCampaignRetentionGC pins the retention knob: a finished named
// campaign's status record stays visible for the retention window and
// is collected afterwards; the default campaign is never collected.
func TestCampaignRetentionGC(t *testing.T) {
	t.Parallel()
	clk := newFakeClock()
	co := coord.New(testCatalog, coord.Options{
		LeaseTTL: 10 * time.Second, Now: clk.Now, Retention: time.Hour,
	})
	id, err := co.Register("alice", testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Submit(coord.CampaignSpec{Name: "short", Filter: "a*"}); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 1} {
		mustClaim(t, co, id, idx)
		if dup, err := co.Complete(id, idx, fakeOutcome(t, idx)); err != nil || dup {
			t.Fatalf("Complete(%d) = (dup %v, %v)", idx, dup, err)
		}
	}
	clk.Advance(30 * time.Minute)
	if _, ok := co.Campaign("short"); !ok {
		t.Fatal("finished campaign collected before its retention window")
	}
	clk.Advance(31 * time.Minute)
	if _, ok := co.Campaign("short"); ok {
		t.Error("finished campaign still visible past retention")
	}
	if _, ok := co.Campaign(coord.DefaultCampaignName); !ok {
		t.Error("default campaign was collected")
	}
}
