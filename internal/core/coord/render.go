package coord

import (
	"fmt"
	"strings"
)

// Render formats the distributed-coordinator section a `-coord-url`
// worker prints after its partial suite report: the queue's drain
// state and, per worker, how many jobs it claimed, completed, renewed,
// lost to lease expiry, and had discarded as late duplicates. Like the
// dispatcher section, the split across workers describes this
// particular fleet run and never takes part in report byte-identity
// checks — those compare the merged report the coordinator assembles.
func (st Stats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "coordinator: %d job(s) — %d done, %d claimed, %d pending; %d requeue(s) after lease expiry, %d duplicate completion(s) discarded\n",
		st.Jobs, st.Done, st.Claimed, st.Pending, st.Requeues, st.Duplicates)
	for _, ws := range st.Workers {
		name := ws.Name
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(&b, "  %-4s %-20s %4d claim(s) %4d completed %4d renewal(s) %3d expired %3d duplicate(s)\n",
			ws.ID, name, ws.Claims, ws.Completions, ws.Renewals, ws.Expiries, ws.Duplicates)
	}
	// Departed workers and named campaigns render only when present, so
	// a plain fleet run's section stays byte-identical to earlier
	// releases.
	if d := st.Departed; d != nil && d.Workers > 0 {
		fmt.Fprintf(&b, "  departed: %d worker(s) — %d claim(s) %d completed %d expired %d duplicate(s)\n",
			d.Workers, d.Claims, d.Completions, d.Expiries, d.Duplicates)
	}
	if len(st.Campaigns) > 1 {
		for _, c := range st.Campaigns {
			fmt.Fprintf(&b, "  campaign %-20s %4d/%d done (%s)\n", c.Name, c.Done, c.Jobs, c.State)
		}
	}
	return b.String()
}
