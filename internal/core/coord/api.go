package coord

import (
	"errors"
	"net/http"
	"strings"

	"repro/internal/core/obs"
	"repro/internal/core/store"
)

// The campaign submission surface, sharing the /v1/campaigns path
// space with the cache transport's content-addressed entry routes
// (docs/COORDINATOR.md spells out the schemas):
//
//	POST /v1/campaigns        submit a CampaignSpec    -> CampaignStatus (201)
//	GET  /v1/campaigns        list campaigns           -> CampaignList
//	GET  /v1/campaigns/{name} one campaign's status    -> CampaignStatus
//
// Everything else under the prefix — GET/PUT of a 64-hex fingerprint,
// the cache transport's routes — falls through to the store server.
const campaignsPrefix = "/v1/campaigns"

// CampaignList is the GET /v1/campaigns response body.
type CampaignList struct {
	Campaigns []CampaignStatus `json:"campaigns"`
}

// CampaignAPI routes the campaign submission surface to co and every
// cache-transport request on the shared path space to fallback. Only
// the API's own routes are wrapped in reg's HTTP middleware — the
// store server instruments itself, and double-wrapping would count
// each cache request twice.
func CampaignAPI(co *Coordinator, fallback http.Handler, reg *obs.Registry) http.Handler {
	api := &campaignAPI{co: co}
	own := obs.Middleware(reg, http.HandlerFunc(api.serve))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if api.handles(r) {
			own.ServeHTTP(w, r)
			return
		}
		fallback.ServeHTTP(w, r)
	})
}

type campaignAPI struct {
	co *Coordinator
}

// campaignName extracts the {name} path element, or "" for the bare
// collection path (with or without trailing slash).
func campaignName(path string) string {
	rest := strings.TrimPrefix(path, campaignsPrefix)
	return strings.TrimPrefix(rest, "/")
}

// handles decides whether a request is the API's (true) or the cache
// transport's (false). Cache entries are addressed by fingerprint —
// 64 hex characters, a shape DecodeCampaignSpec refuses as a campaign
// name — and the cache transport also owns every non-GET entry route
// (PUT of an entry); the API owns the bare collection path and GETs of
// non-fingerprint names.
func (a *campaignAPI) handles(r *http.Request) bool {
	if r.URL.Path != campaignsPrefix && !strings.HasPrefix(r.URL.Path, campaignsPrefix+"/") {
		return false
	}
	name := campaignName(r.URL.Path)
	if name == "" {
		return true
	}
	return r.Method == http.MethodGet && !store.IsFingerprint(name)
}

func (a *campaignAPI) serve(w http.ResponseWriter, r *http.Request) {
	name := campaignName(r.URL.Path)
	if name != "" {
		st, ok := a.co.Campaign(name)
		if !ok {
			http.Error(w, "coord: no campaign named "+name, http.StatusNotFound)
			return
		}
		reply(w, st)
		return
	}
	switch r.Method {
	case http.MethodGet:
		reply(w, CampaignList{Campaigns: a.co.Campaigns()})
	case http.MethodPost:
		a.submit(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "coord: campaigns accepts GET and POST", http.StatusMethodNotAllowed)
	}
}

func (a *campaignAPI) submit(w http.ResponseWriter, r *http.Request) {
	b, ok := readBody(w, r)
	if !ok {
		return
	}
	spec, err := DecodeCampaignSpec(b)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, err := a.co.Submit(*spec)
	switch {
	case errors.Is(err, ErrCampaignExists):
		http.Error(w, err.Error(), http.StatusConflict)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	reply(w, st)
}
