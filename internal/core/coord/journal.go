package coord

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core/inject"
	"repro/internal/core/store"
)

// JournalSchemaVersion identifies the coordinator's durable-state
// record shape. A journal written by a different schema is rejected at
// restore rather than half-understood. Bump it on any incompatible
// record change.
const JournalSchemaVersion = "eptest-coordlog/1"

// Journal record ops. Each state transition the coordinator makes is
// appended as one record; replaying them in order rebuilds the queue.
const (
	opMeta       = "meta"        // journal header: schema, catalog identity, totals
	opCampaign   = "campaign"    // a named campaign was submitted
	opRegister   = "register"    // a worker joined (or reattached)
	opClaim      = "claim"       // a lease was granted (absolute deadline)
	opRenew      = "renew"       // leases were extended (absolute deadline)
	opExpire     = "expire"      // a lease expired and its job requeued
	opComplete   = "complete"    // an outcome was recorded (or discarded as duplicate)
	opWorkerGone = "worker-gone" // a departed worker was folded into aggregate totals
	opCampaignGC = "campaign-gc" // a finished campaign passed retention and was dropped
)

// JournalCounters carries one worker's protocol counters inside
// snapshot register records, so a compacted journal loses no history.
type JournalCounters struct {
	Claims      int `json:"claims,omitempty"`
	Renewals    int `json:"renewals,omitempty"`
	Completions int `json:"completions,omitempty"`
	Duplicates  int `json:"duplicates,omitempty"`
	Expiries    int `json:"expiries,omitempty"`
	RunsDone    int `json:"runs_done,omitempty"`
}

// JournalRecord is one line of the coordinator journal. The op decides
// which fields are meaningful; every record carries its wall-clock
// timestamp so replay can restore heartbeat ages and campaign history.
// Lease records carry absolute deadlines (not TTL offsets), so an
// in-flight lease survives a quick coordinator restart and a stale one
// requeues at the first sweep after restore.
type JournalRecord struct {
	Op       string `json:"op"`
	AtMillis int64  `json:"at_ms,omitempty"`

	// meta fields — journal identity plus aggregate totals at snapshot
	// time (incremental records re-accumulate on top of them).
	Schema      string         `json:"schema,omitempty"`
	CatalogHash string         `json:"catalog_hash,omitempty"`
	Jobs        int            `json:"jobs,omitempty"`
	LeaseMillis int64          `json:"lease_ms,omitempty"`
	Requeues    int            `json:"requeues,omitempty"`
	Expiries    int            `json:"expiries,omitempty"`
	Duplicates  int            `json:"duplicates,omitempty"`
	Departed    *DepartedStats `json:"departed,omitempty"`

	// campaign fields.
	Name           string `json:"name,omitempty"`
	Filter         string `json:"filter,omitempty"`
	Priority       int    `json:"priority,omitempty"`
	Note           string `json:"note,omitempty"`
	CreatedMillis  int64  `json:"created_ms,omitempty"`
	FinishedMillis int64  `json:"finished_ms,omitempty"`

	// worker fields. Counters rides only in snapshot register records.
	Worker     string           `json:"worker,omitempty"`
	WorkerName string           `json:"worker_name,omitempty"`
	Counters   *JournalCounters `json:"counters,omitempty"`

	// lease fields. Index deliberately has no omitempty: job 0 is real.
	Index         int   `json:"index"`
	Indices       []int `json:"indices,omitempty"`
	ExpiresMillis int64 `json:"expires_ms,omitempty"`

	// completion fields. When ResultRef is set the outcome's Result
	// bytes are elided — the campaign result is cache-resident under
	// Outcome.Fingerprint and is re-encoded from the store at restore,
	// byte-identically (the cache codec is canonical).
	Duplicate bool     `json:"duplicate,omitempty"`
	Outcome   *Outcome `json:"outcome,omitempty"`
	ResultRef bool     `json:"result_ref,omitempty"`
}

// Journal is the coordinator's durable-state sink. FileJournal persists
// records as JSON lines through the store's journal file; MemJournal
// backs fake-clock tests. A nil Journal in Options means in-memory
// operation (the pre-durability behaviour, and what unit tests that do
// not care about restarts use).
type Journal interface {
	// Append records one state transition.
	Append(rec *JournalRecord) error
	// Sync flushes appended records to stable storage; called after
	// completion records, the expensive-to-lose ones.
	Sync() error
	// Rewrite atomically replaces the journal with a compacted
	// snapshot (the restore path folds, then compacts).
	Rewrite(recs []*JournalRecord) error
}

// FileJournal persists coordinator records as JSON lines in a
// store-directory journal file (<store>/coord/journal.jsonl).
type FileJournal struct {
	j *store.Journal
}

// OpenFileJournal reads every intact record from the journal at path
// (a missing file is an empty journal; a torn trailing line from a
// crash mid-append is dropped) and opens the file for appending.
func OpenFileJournal(path string) (*FileJournal, []*JournalRecord, error) {
	lines, err := store.ReadJournalLines(path)
	if err != nil {
		return nil, nil, fmt.Errorf("coord: %w", err)
	}
	recs := make([]*JournalRecord, 0, len(lines))
	for i, line := range lines {
		var r JournalRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, nil, fmt.Errorf("coord: journal %s record %d does not parse (%v); move the file aside to start a fresh queue", path, i+1, err)
		}
		recs = append(recs, &r)
	}
	j, err := store.OpenJournal(path)
	if err != nil {
		return nil, nil, fmt.Errorf("coord: %w", err)
	}
	return &FileJournal{j: j}, recs, nil
}

// Append implements Journal.
func (f *FileJournal) Append(rec *JournalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("coord: encode journal record: %w", err)
	}
	return f.j.Append(b)
}

// Sync implements Journal.
func (f *FileJournal) Sync() error { return f.j.Sync() }

// Rewrite implements Journal.
func (f *FileJournal) Rewrite(recs []*JournalRecord) error {
	lines := make([][]byte, len(recs))
	for i, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("coord: encode journal record: %w", err)
		}
		lines[i] = b
	}
	return f.j.Rewrite(lines)
}

// Close releases the underlying file handle.
func (f *FileJournal) Close() error { return f.j.Close() }

// MemJournal is an in-memory Journal for tests. Records round-trip
// through the JSON codec on Append, so a replay from Records exercises
// exactly the bytes a FileJournal would have persisted.
type MemJournal struct {
	recs []*JournalRecord
}

// Append implements Journal.
func (m *MemJournal) Append(rec *JournalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	var r JournalRecord
	if err := json.Unmarshal(b, &r); err != nil {
		return err
	}
	m.recs = append(m.recs, &r)
	return nil
}

// Sync implements Journal.
func (m *MemJournal) Sync() error { return nil }

// Rewrite implements Journal.
func (m *MemJournal) Rewrite(recs []*JournalRecord) error {
	m.recs = append([]*JournalRecord(nil), recs...)
	return nil
}

// Records returns the journal's current contents.
func (m *MemJournal) Records() []*JournalRecord {
	return append([]*JournalRecord(nil), m.recs...)
}

// CatalogHash fingerprints a job catalog for the journal's meta record:
// a journal only replays against the exact catalog it was written for
// (same -matrix/-filter flags), and the hash rejects a mismatch with a
// clear diagnostic instead of replaying indices into the wrong jobs.
func CatalogHash(catalog []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d\n", len(catalog))
	for _, l := range catalog {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// metaRecordLocked builds the journal header carrying the catalog
// identity and the aggregate totals at this instant. Callers hold
// co.mu.
func (co *Coordinator) metaRecordLocked() *JournalRecord {
	rec := &JournalRecord{
		Op:          opMeta,
		Schema:      JournalSchemaVersion,
		CatalogHash: CatalogHash(co.catalog),
		Jobs:        len(co.catalog),
		LeaseMillis: co.ttl.Milliseconds(),
		Requeues:    co.requeues,
		Expiries:    co.expiries,
		Duplicates:  co.duplicates,
	}
	if co.departed.Workers > 0 {
		d := co.departed
		rec.Departed = &d
	}
	return rec
}

// appendJournalLocked stamps and appends one record. Journal failures
// degrade to in-memory operation with a single log line — a full disk
// must not stop the fleet mid-campaign. Callers hold co.mu.
func (co *Coordinator) appendJournalLocked(rec *JournalRecord) {
	if co.journal == nil {
		return
	}
	rec.AtMillis = co.now().UnixMilli()
	if err := co.journal.Append(rec); err != nil {
		co.journalErrOnce.Do(func() {
			co.logf("coord: journal append failed (queue state will not survive a restart): %v", err)
		})
	}
}

// syncJournalLocked flushes the journal after expensive-to-lose
// records. Callers hold co.mu.
func (co *Coordinator) syncJournalLocked() {
	if co.journal == nil {
		return
	}
	if err := co.journal.Sync(); err != nil {
		co.journalErrOnce.Do(func() {
			co.logf("coord: journal sync failed (queue state may not survive a restart): %v", err)
		})
	}
}

// journalOutcomeLocked builds the completion record's outcome payload,
// eliding the result bytes when the campaign result is cache-resident
// under its fingerprint (ensuring it is, with a Get-then-Put through
// Options.Results). Callers hold co.mu.
func (co *Coordinator) journalOutcomeLocked(o *Outcome, label string) (*Outcome, bool) {
	jo := *o
	if co.results == nil || o.Fingerprint == "" || o.Err != "" {
		return &jo, false
	}
	if _, ok := co.results.Get(o.Fingerprint); !ok {
		res, err := store.DecodeResult(o.Result)
		if err != nil {
			return &jo, false
		}
		if err := co.results.Put(o.Fingerprint, label, res); err != nil {
			return &jo, false
		}
	}
	jo.Result = nil
	return &jo, true
}

// Restore rebuilds a coordinator from its journal. With no records it
// is New (and writes the journal header). Otherwise the records are
// folded in order — campaigns resubmitted, workers re-registered with
// their counters, in-flight leases restored at their absolute
// deadlines (stale ones requeue at the first sweep), completed
// outcomes re-recorded (cache-resident results re-encoded from
// Options.Results) — and the journal is compacted to a snapshot of the
// folded state. The catalog must be the journal's: a hash mismatch
// (different -matrix/-filter flags) is rejected.
func Restore(catalog []string, opt Options, recs []*JournalRecord) (*Coordinator, error) {
	if len(recs) == 0 {
		return New(catalog, opt), nil
	}
	co := newCoordinator(catalog, opt)
	meta := recs[0]
	switch {
	case meta.Op != opMeta:
		return nil, fmt.Errorf("coord: journal does not start with a meta record (op %q); move it aside to start fresh", meta.Op)
	case meta.Schema != JournalSchemaVersion:
		return nil, fmt.Errorf("coord: journal schema %q, this binary writes %q; finish the campaign with the old binary or move the journal aside", meta.Schema, JournalSchemaVersion)
	case meta.Jobs != len(catalog) || meta.CatalogHash != CatalogHash(catalog):
		return nil, fmt.Errorf("coord: journal was written for a different %d-job catalog; restart with the journal's -matrix/-filter flags, or move %s aside to start fresh", meta.Jobs, "the journal")
	}
	co.requeues = meta.Requeues
	co.expiries = meta.Expiries
	co.duplicates = meta.Duplicates
	if meta.Departed != nil {
		co.departed = *meta.Departed
	}
	for i, rec := range recs[1:] {
		if err := co.foldLocked(rec); err != nil {
			return nil, fmt.Errorf("coord: journal record %d: %w", i+2, err)
		}
	}
	co.resumed = true
	co.updateGaugesLocked()
	co.m.workers.Set(int64(len(co.workers)))
	for _, name := range co.campOrder {
		co.updateCampaignGaugesLocked(co.campaigns[name])
	}
	if co.done == len(co.jobs) && len(co.jobs) > 0 {
		close(co.drained)
	}
	if co.journal != nil {
		if err := co.journal.Rewrite(co.snapshotLocked()); err != nil {
			co.logf("coord: journal compaction failed (restart will replay the full log): %v", err)
		}
	}
	return co, nil
}

// foldLocked applies one journal record to the coordinator being
// restored. Restore owns co exclusively, so no locking is needed; the
// Locked suffix marks the invariant it shares with the live paths.
func (co *Coordinator) foldLocked(rec *JournalRecord) error {
	at := time.UnixMilli(rec.AtMillis)
	// workerAt resolves (creating if the journal predates a snapshot
	// that would have carried the register record) the worker row.
	workerAt := func(id, name string) *workerStats {
		ws := co.workers[id]
		if ws == nil {
			ws = &workerStats{id: id, name: name, lastSeen: at}
			co.workers[id] = ws
			co.order = append(co.order, id)
			if name != "" {
				co.byName[name] = id
			}
			co.bumpNextIDLocked(id)
		}
		ws.lastSeen = at
		return ws
	}
	switch rec.Op {
	case opMeta:
		return fmt.Errorf("unexpected mid-journal meta record")
	case opCampaign:
		if rec.Name == DefaultCampaignName {
			return nil
		}
		if _, ok := co.campaigns[rec.Name]; ok {
			return nil
		}
		c, err := co.newCampaignLocked(rec.Name, rec.Filter, rec.Priority, rec.Note, time.UnixMilli(rec.CreatedMillis))
		if err != nil {
			return err
		}
		if rec.FinishedMillis != 0 {
			c.finishedAt = time.UnixMilli(rec.FinishedMillis)
		} else if c.done == c.jobs {
			c.finishedAt = at
		}
	case opRegister:
		ws := workerAt(rec.Worker, rec.WorkerName)
		if ws.name == "" && rec.WorkerName != "" {
			ws.name = rec.WorkerName
			co.byName[rec.WorkerName] = ws.id
		}
		if c := rec.Counters; c != nil {
			ws.claims, ws.renewals, ws.completions = c.Claims, c.Renewals, c.Completions
			ws.duplicates, ws.expiries, ws.runsDone = c.Duplicates, c.Expiries, c.RunsDone
		}
	case opClaim:
		if rec.Index < 0 || rec.Index >= len(co.jobs) {
			return fmt.Errorf("claim index %d out of range", rec.Index)
		}
		ws := workerAt(rec.Worker, "")
		j := &co.jobs[rec.Index]
		if j.phase == jobDone {
			return nil
		}
		*j = jobRecord{phase: jobClaimed, worker: rec.Worker, expires: time.UnixMilli(rec.ExpiresMillis)}
		ws.claims++
	case opRenew:
		ws := workerAt(rec.Worker, "")
		deadline := time.UnixMilli(rec.ExpiresMillis)
		for _, i := range rec.Indices {
			if i < 0 || i >= len(co.jobs) {
				return fmt.Errorf("renew index %d out of range", i)
			}
			j := &co.jobs[i]
			if j.phase == jobClaimed && j.worker == rec.Worker {
				j.expires = deadline
				ws.renewals++
			}
		}
	case opExpire:
		if rec.Index < 0 || rec.Index >= len(co.jobs) {
			return fmt.Errorf("expire index %d out of range", rec.Index)
		}
		j := &co.jobs[rec.Index]
		if j.phase != jobClaimed {
			return nil
		}
		if ws := co.workers[j.worker]; ws != nil {
			ws.expiries++
		}
		*j = jobRecord{phase: jobPending}
		co.expiries++
		co.requeues++
	case opComplete:
		if rec.Index < 0 || rec.Index >= len(co.jobs) {
			return fmt.Errorf("complete index %d out of range", rec.Index)
		}
		ws := workerAt(rec.Worker, "")
		if rec.Duplicate || co.jobs[rec.Index].phase == jobDone {
			ws.duplicates++
			co.duplicates++
			return nil
		}
		if rec.Outcome == nil {
			return fmt.Errorf("complete record for job %d has no outcome", rec.Index)
		}
		o := *rec.Outcome
		if rec.ResultRef {
			res, ok := co.cachedResult(o.Fingerprint)
			if !ok {
				// The cache entry the record points at is gone (store
				// pruned or moved). The queue stays consistent: the job
				// returns to pending — clearing any lease an earlier claim
				// record restored — and the fleet redoes it.
				co.jobs[rec.Index] = jobRecord{phase: jobPending}
				co.logf("coord: journal outcome for job %d (%s) references missing cache entry %s; job requeued", rec.Index, co.catalog[rec.Index], o.Fingerprint)
				return nil
			}
			b, err := store.EncodeResult(res)
			if err != nil {
				return fmt.Errorf("re-encode cached outcome for job %d: %w", rec.Index, err)
			}
			o.Result = b
		}
		co.recordOutcomeLocked(rec.Worker, rec.Index, &o, at)
	case opWorkerGone:
		co.departWorkerLocked(rec.Worker)
	case opCampaignGC:
		co.dropCampaignLocked(rec.Name)
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// cachedResult consults Options.Results for a ref-elided outcome.
func (co *Coordinator) cachedResult(fp string) (*inject.Result, bool) {
	if co.results == nil || fp == "" {
		return nil, false
	}
	return co.results.Get(fp)
}

// bumpNextIDLocked keeps freshly minted worker ids ("w<N>") ahead of
// every id the journal restored.
func (co *Coordinator) bumpNextIDLocked(id string) {
	if !strings.HasPrefix(id, "w") {
		return
	}
	if n, err := strconv.Atoi(id[1:]); err == nil && n > co.nextID {
		co.nextID = n
	}
}

// snapshotLocked renders the coordinator's entire state as a compact
// record list: meta with totals, campaigns, workers with counters, and
// one lease or completion record per non-pending job. Replaying the
// snapshot rebuilds exactly this state, so compaction loses nothing.
// Callers hold co.mu (or own co exclusively, as Restore does).
func (co *Coordinator) snapshotLocked() []*JournalRecord {
	now := co.now().UnixMilli()
	recs := []*JournalRecord{co.metaRecordLocked()}
	recs[0].AtMillis = now
	for _, name := range co.campOrder {
		if name == DefaultCampaignName {
			continue
		}
		c := co.campaigns[name]
		rec := &JournalRecord{
			Op:            opCampaign,
			AtMillis:      now,
			Name:          c.name,
			Filter:        c.filter,
			Priority:      c.priority,
			Note:          c.note,
			CreatedMillis: c.createdAt.UnixMilli(),
		}
		if !c.finishedAt.IsZero() {
			rec.FinishedMillis = c.finishedAt.UnixMilli()
		}
		recs = append(recs, rec)
	}
	// Folding the snapshot's own job records re-increments worker
	// counters (opClaim bumps claims, opComplete bumps completions and
	// runsDone), so the counters stored here must be net of those
	// re-derived increments or every compaction cycle inflates them.
	claimDelta := map[string]int{}
	doneDelta := map[string]int{}
	runsDelta := map[string]int{}
	for i := range co.jobs {
		j := &co.jobs[i]
		switch j.phase {
		case jobClaimed:
			claimDelta[j.worker]++
		case jobDone:
			doneDelta[j.doneBy]++
			runsDelta[j.doneBy] += countRuns(j.outcome)
		}
	}
	for _, id := range co.order {
		ws := co.workers[id]
		recs = append(recs, &JournalRecord{
			Op:         opRegister,
			AtMillis:   ws.lastSeen.UnixMilli(),
			Worker:     ws.id,
			WorkerName: ws.name,
			Counters: &JournalCounters{
				Claims:      ws.claims - claimDelta[id],
				Renewals:    ws.renewals,
				Completions: ws.completions - doneDelta[id],
				Duplicates:  ws.duplicates,
				Expiries:    ws.expiries,
				RunsDone:    ws.runsDone - runsDelta[id],
			},
		})
	}
	for i := range co.jobs {
		j := &co.jobs[i]
		switch j.phase {
		case jobClaimed:
			recs = append(recs, &JournalRecord{
				Op: opClaim, AtMillis: now, Worker: j.worker, Index: i,
				ExpiresMillis: j.expires.UnixMilli(),
			})
		case jobDone:
			jo, ref := co.journalOutcomeLocked(j.outcome, co.catalog[i])
			recs = append(recs, &JournalRecord{
				Op: opComplete, AtMillis: now, Worker: j.doneBy, Index: i,
				Outcome: jo, ResultRef: ref,
			})
		}
	}
	return recs
}
