package coord

import (
	"testing"
	"time"
)

// run -> restore (compacts) -> restore again. Worker counters should be
// stable across the second restore.
func TestZZSnapshotReplayCounterFidelity(t *testing.T) {
	names := []string{"a", "b", "c"}
	catalog := []string{"a/v", "b/v", "c/v"}
	j := &MemJournal{}
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	co := New(catalog, Options{Journal: j, Now: clock})
	id, err := co.Register("w-one", catalog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		idx, st, err := co.Claim(id)
		if err != nil || st != ClaimGranted {
			t.Fatalf("claim: %v %v", st, err)
		}
		out := Outcome{Name: names[idx], Variant: "v", Err: "not run"}
		if _, err := co.Complete(id, idx, out); err != nil {
			t.Fatal(err)
		}
	}
	want := co.Stats().Workers[0]
	t.Logf("before: claims=%d completions=%d", want.Claims, want.Completions)

	// First restore: folds the incremental journal, then compacts (Rewrite).
	co2, err := Restore(catalog, Options{Journal: j, Now: clock}, j.Records())
	if err != nil {
		t.Fatal(err)
	}
	got2 := co2.Stats().Workers[0]
	t.Logf("after restore 1: claims=%d completions=%d", got2.Claims, got2.Completions)

	// Second restore: folds the compacted snapshot.
	co3, err := Restore(catalog, Options{Journal: j, Now: clock}, j.Records())
	if err != nil {
		t.Fatal(err)
	}
	got3 := co3.Stats().Workers[0]
	t.Logf("after restore 2: claims=%d completions=%d", got3.Claims, got3.Completions)
	if got3.Claims != want.Claims || got3.Completions != want.Completions {
		t.Fatalf("counter drift after snapshot replay: want claims=%d completions=%d, got claims=%d completions=%d",
			want.Claims, want.Completions, got3.Claims, got3.Completions)
	}
}
