// Package obs is the fleet-telemetry layer: a dependency-free metrics
// registry (counters, gauges, histograms with atomic hot paths) that
// the dispatcher, result-store transports, and campaign coordinator
// publish into, plus run-level tracing in Chrome trace_event form and
// shared HTTP instrumentation middleware.
//
// The registry is exposition-agnostic: WritePrometheus renders the
// Prometheus text format `eptest -serve-cache`/`-serve-coord` serve at
// GET /metrics, and WriteJSON renders the machine-readable snapshot
// workers dump via `-metrics-json FILE`. Metric names, label sets, and
// the span taxonomy are catalogued in docs/OBSERVABILITY.md.
//
// Handles returned by Counter/Gauge/Histogram are cheap to hold and
// safe for concurrent use; instrumentation sites resolve them once and
// update them lock-free afterwards. Every method on a nil *Registry,
// nil *Counter, nil *Gauge, or nil *Histogram is a no-op, so callers
// can thread an optional registry through without guarding each site.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType discriminates the registry's families.
type metricType int

const (
	typeCounter metricType = iota + 1
	typeGauge
	typeHistogram
)

// String renders the type in Prometheus TYPE-line vocabulary.
func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled instance of a family: exactly one of the
// three concrete metric kinds.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name, help string
	typ        metricType
	buckets    []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series // label signature -> series
	order  []string           // signatures in first-registration order
}

// Label is one metric dimension.
type Label struct{ Key, Value string }

// Registry holds metric families. The zero value is not usable; build
// one with NewRegistry. Lookup methods (Counter, Gauge, Histogram) are
// safe for concurrent use but take locks — resolve handles once per
// instrumentation site, not per event.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in first-registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labels pairs up a variadic "k1, v1, k2, v2" list. An odd trailing key
// gets an empty value rather than panicking — instrumentation must
// never take the process down.
func labels(kv []string) []Label {
	out := make([]Label, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		l := Label{Key: kv[i]}
		if i+1 < len(kv) {
			l.Value = kv[i+1]
		}
		out = append(out, l)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// signature renders a sorted label list as the series map key and the
// exposition form: `k1="v1",k2="v2"`.
func signature(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// getFamily returns (creating if needed) the family for name. A name
// re-registered with a different type keeps its first type — the
// mismatch would be a programming error, and exposition simply shows
// the original family.
func (r *Registry) getFamily(name, help string, typ metricType, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// getSeries returns (creating if needed) the series for the label set.
func (f *family) getSeries(ls []Label) *series {
	sig := signature(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: ls}
		switch f.typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = newHistogram(f.buckets)
		}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns the counter registered under name and the label
// pairs (given as "k1", "v1", "k2", "v2", ...), creating it at zero on
// first use. help is recorded on the family's first registration.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, typeCounter, nil).getSeries(labels(kv)).c
}

// Gauge returns the gauge registered under name and the label pairs,
// creating it at zero on first use.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, typeGauge, nil).getSeries(labels(kv)).g
}

// Histogram returns the histogram registered under name and the label
// pairs, creating it on first use with the given bucket upper bounds
// (ascending; the implicit +Inf bucket is added automatically). Later
// lookups of the same family reuse the first registration's buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, typeHistogram, buckets).getSeries(labels(kv)).h
}

// Counter is a monotonically increasing metric. The zero value is
// usable; all methods are atomic and nil-safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is usable;
// all methods are atomic and nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add shifts the value by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram observes a distribution over fixed bucket boundaries.
// Observations and reads are lock-free: per-bucket counts and the
// running sum use atomics, so concurrent Observe calls never contend
// on a lock. Snapshots are not atomic across fields — a scrape racing
// observations may see a sum slightly ahead of the counts — which is
// the standard Prometheus client trade-off.
type Histogram struct {
	bounds []float64      // ascending upper bounds, exclusive of +Inf
	counts []atomic.Int64 // one per bound, plus the +Inf bucket at the end
	sum    atomic.Uint64  // math.Float64bits of the running sum
	count  atomic.Int64
}

// DefBuckets is a general-purpose latency bucket ladder in seconds,
// spanning sub-millisecond simulated-kernel runs to multi-second
// matrix campaigns.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// newHistogram builds a histogram over the bucket upper bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; equal values belong to
	// the bucket (Prometheus buckets are upper-inclusive: le).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the total of every observed sample.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Buckets returns the bucket upper bounds and their cumulative counts
// (Prometheus le semantics); the final pair is +Inf and Count().
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(1))
	cumulative = make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}
