package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Tracer streams Chrome trace_event records to a file, one event per
// line inside a JSON array, so a fleet run recorded with `eptest -all
// -trace FILE` opens directly in chrome://tracing or Perfetto. Spans
// are "complete" events (ph "X") carrying explicit start timestamps
// and durations; events on one tid nest by time containment, which is
// how each injection run renders as a span tree (run ⊃ world/exec/
// compare) under its worker's row.
//
// Close finishes the array; a file from a crashed process lacks the
// closing bracket, which both Chrome and Perfetto accept. All methods
// are safe for concurrent use, and every method on a nil *Tracer is a
// no-op so instrumentation can run unconditionally.
type Tracer struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	start  time.Time
	events int64
	err    error
}

// Reserved tid rows for spans that belong to no dispatcher worker.
// Dispatcher workers use their worker index (0..Workers-1) as tid.
const (
	// TIDCoord is the coordinator-client lane: claim and renew spans.
	TIDCoord = 1000
	// TIDUpload is the async completion-uploader lane.
	TIDUpload = 1001
)

// traceEvent is one trace_event record. Timestamps and durations are
// microseconds, per the Chrome trace format.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// StartTrace opens (truncating) a trace file and returns its tracer.
func StartTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	t := &Tracer{f: f, w: bufio.NewWriterSize(f, 1<<16), start: time.Now()}
	if _, err := t.w.WriteString("[\n"); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	return t, nil
}

// write appends one event line. Callers hold t.mu.
func (t *Tracer) writeLocked(ev *traceEvent) {
	if t.err != nil || t.f == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if t.events > 0 {
		t.w.WriteString(",\n")
	}
	t.events++
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// ts converts a wall time to trace microseconds.
func (t *Tracer) ts(at time.Time) int64 { return at.Sub(t.start).Microseconds() }

// Span records one complete span on the tid row. start is the span's
// wall-clock begin; d its duration; args annotate it (campaign, run,
// worker ids — small bounded maps only).
func (t *Tracer) Span(tid int, cat, name string, start time.Time, d time.Duration, args map[string]string) {
	if t == nil {
		return
	}
	dur := d.Microseconds()
	if dur < 1 {
		dur = 1 // zero-duration spans vanish in viewers
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.writeLocked(&traceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: t.ts(start), Dur: dur,
		PID: os.Getpid(), TID: tid, Args: args,
	})
}

// Instant records a zero-duration marker event (ph "i").
func (t *Tracer) Instant(tid int, cat, name string, args map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.writeLocked(&traceEvent{
		Name: name, Cat: cat, Ph: "i",
		TS:  t.ts(time.Now()),
		PID: os.Getpid(), TID: tid, Args: args,
	})
}

// NameProcess labels this process's row group in trace viewers —
// typically the worker's display name.
func (t *Tracer) NameProcess(name string) {
	t.metadata("process_name", 0, name)
}

// NameThread labels one tid row ("worker 3", "coord", "uploader").
func (t *Tracer) NameThread(tid int, name string) {
	t.metadata("thread_name", tid, name)
}

// metadata writes one ph "M" metadata event.
func (t *Tracer) metadata(kind string, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.writeLocked(&traceEvent{
		Name: kind, Ph: "M",
		PID: os.Getpid(), TID: tid,
		Args: map[string]string{"name": name},
	})
}

// Events returns how many events have been recorded.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Close terminates the JSON array and closes the file, returning the
// first error encountered anywhere in the tracer's lifetime.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return t.err
	}
	t.w.WriteString("\n]\n")
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if err := t.f.Close(); err != nil && t.err == nil {
		t.err = err
	}
	t.f = nil
	if t.err != nil {
		return fmt.Errorf("obs: trace: %w", t.err)
	}
	return nil
}
