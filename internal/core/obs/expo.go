package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
)

// formatFloat renders a float the way the Prometheus text format
// expects: shortest round-trip form, +Inf spelled out.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders one sample line's name{labels} prefix, with an
// optional extra label (histogram le) appended after the sorted set.
func seriesName(name, sig, extra string) string {
	switch {
	case sig == "" && extra == "":
		return name
	case sig == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + sig + "}"
	}
	return name + "{" + sig + "," + extra + "}"
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families in registration order,
// series in first-use order — deterministic for a fixed program, so
// the output is golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		sigs := append([]string(nil), f.order...)
		srs := make([]*series, len(sigs))
		for i, sig := range sigs {
			srs[i] = f.series[sig]
		}
		f.mu.Unlock()

		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for i, s := range srs {
			sig := sigs[i]
			switch f.typ {
			case typeCounter:
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, sig, ""), s.c.Value()); err != nil {
					return err
				}
			case typeGauge:
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, sig, ""), s.g.Value()); err != nil {
					return err
				}
			case typeHistogram:
				bounds, cum := s.h.Buckets()
				for bi, le := range bounds {
					extra := fmt.Sprintf("le=%q", formatFloat(le))
					if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_bucket", sig, extra), cum[bi]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name+"_sum", sig, ""), formatFloat(s.h.Sum())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_count", sig, ""), s.h.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Handler serves the registry in Prometheus text form — the body of
// GET /metrics on `eptest -serve-cache` and `eptest -serve-coord`.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// MetricsSchemaVersion identifies the JSON snapshot layout WriteJSON
// emits and `eptest -metrics-json` writes.
const MetricsSchemaVersion = "eptest-metrics/1"

// jsonBucket is one histogram bucket in the JSON snapshot.
type jsonBucket struct {
	LE    float64 `json:"le"` // +Inf encoded as the string below
	Count int64   `json:"count"`
}

// MarshalJSON encodes +Inf, which JSON numbers cannot carry, as the
// string "+Inf".
func (b jsonBucket) MarshalJSON() ([]byte, error) {
	le := any(b.LE)
	if math.IsInf(b.LE, 1) {
		le = "+Inf"
	}
	return json.Marshal(map[string]any{"le": le, "count": b.Count})
}

// jsonMetric is one series in the JSON snapshot.
type jsonMetric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter and gauge readings.
	Value *int64 `json:"value,omitempty"`
	// Histogram fields.
	Count   *int64       `json:"count,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

// jsonSnapshot is the envelope of one -metrics-json dump.
type jsonSnapshot struct {
	Schema  string       `json:"schema"`
	Metrics []jsonMetric `json:"metrics"`
}

// snapshot collects every series into the JSON form, deterministic
// family and series order.
func (r *Registry) snapshot() jsonSnapshot {
	snap := jsonSnapshot{Schema: MetricsSchemaVersion, Metrics: []jsonMetric{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		sigs := append([]string(nil), f.order...)
		srs := make([]*series, len(sigs))
		for i, sig := range sigs {
			srs[i] = f.series[sig]
		}
		f.mu.Unlock()
		for _, s := range srs {
			m := jsonMetric{Name: f.name, Type: f.typ.String()}
			if len(s.labels) > 0 {
				m.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			switch f.typ {
			case typeCounter:
				v := s.c.Value()
				m.Value = &v
			case typeGauge:
				v := s.g.Value()
				m.Value = &v
			case typeHistogram:
				count := s.h.Count()
				sum := s.h.Sum()
				m.Count, m.Sum = &count, &sum
				bounds, cum := s.h.Buckets()
				for i := range bounds {
					m.Buckets = append(m.Buckets, jsonBucket{LE: bounds[i], Count: cum[i]})
				}
			}
			snap.Metrics = append(snap.Metrics, m)
		}
	}
	return snap
}

// WriteJSON renders the registry as the eptest-metrics/1 JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encode metrics: %w", err)
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteJSONFile renders the snapshot to path — the `-metrics-json
// FILE` dump a worker leaves behind after a suite run.
func (r *Registry) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Flat returns every counter and gauge as a name{labels} -> value map —
// the compact form the -bench-json record folds key metrics into.
// Histograms contribute their _count and _sum.
func (r *Registry) Flat() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, m := range r.snapshot().Metrics {
		sig := ""
		if len(m.Labels) > 0 {
			ls := make([]Label, 0, len(m.Labels))
			for k, v := range m.Labels {
				ls = append(ls, Label{k, v})
			}
			sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
			sig = signature(ls)
		}
		switch {
		case m.Value != nil:
			out[seriesName(m.Name, sig, "")] = float64(*m.Value)
		case m.Count != nil:
			out[seriesName(m.Name+"_count", sig, "")] = float64(*m.Count)
			if m.Sum != nil {
				out[seriesName(m.Name+"_sum", sig, "")] = *m.Sum
			}
		}
	}
	return out
}
