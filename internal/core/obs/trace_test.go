package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// decodedEvent mirrors the Chrome trace_event schema for the
// round-trip check.
type decodedEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// TestTraceRoundTrip writes a span tree, closes the file, and decodes
// it as strict JSON — the schema chrome://tracing and Perfetto load.
func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr, err := StartTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.NameProcess("worker-test")
	tr.NameThread(0, "worker 0")

	base := time.Now()
	// A run span containing exec and compare children on one tid: the
	// nesting-by-containment shape every injection run produces.
	tr.Span(0, "run", "lpr/vulnerable#12", base, 10*time.Millisecond, map[string]string{
		"campaign": "lpr/vulnerable", "run": "12", "fault": "EAI-D3",
	})
	tr.Span(0, "run", "exec", base.Add(time.Millisecond), 6*time.Millisecond, nil)
	tr.Span(0, "run", "compare", base.Add(8*time.Millisecond), time.Millisecond, nil)
	tr.Instant(TIDCoord, "coord", "lease-lost", map[string]string{"index": "4"})

	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and post-Close spans are dropped, not panics.
	tr.Span(0, "run", "late", base, time.Millisecond, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []decodedEvent
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("trace is not a strict JSON array: %v\n%s", err, b)
	}
	if len(events) != 6 {
		t.Fatalf("events = %d, want 6 (2 metadata + 3 spans + 1 instant)", len(events))
	}
	if events[0].Ph != "M" || events[0].Args["name"] != "worker-test" {
		t.Fatalf("first event is not the process_name metadata: %+v", events[0])
	}
	run := events[2]
	if run.Ph != "X" || run.Name != "lpr/vulnerable#12" || run.Cat != "run" || run.Dur != 10000 {
		t.Fatalf("run span wrong: %+v", run)
	}
	if run.Args["campaign"] != "lpr/vulnerable" || run.Args["run"] != "12" {
		t.Fatalf("run span args wrong: %+v", run.Args)
	}
	exec, compare := events[3], events[4]
	// Children nest inside the parent by time containment on one tid.
	if exec.TID != run.TID || exec.TS < run.TS || exec.TS+exec.Dur > run.TS+run.Dur {
		t.Fatalf("exec span does not nest in run: run=%+v exec=%+v", run, exec)
	}
	if compare.TS < exec.TS+exec.Dur {
		t.Fatalf("compare overlaps exec: exec=%+v compare=%+v", exec, compare)
	}
	if events[5].Ph != "i" || events[5].TID != TIDCoord {
		t.Fatalf("instant event wrong: %+v", events[5])
	}
}

// TestTraceConcurrent writes spans from many goroutines; -race plus
// the strict decode pin the writer's serialisation.
func TestTraceConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr, err := StartTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Span(g, "run", "s", time.Now(), time.Microsecond, nil)
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []decodedEvent
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("concurrent trace is not valid JSON: %v", err)
	}
	if len(events) != goroutines*perG {
		t.Fatalf("events = %d, want %d", len(events), goroutines*perG)
	}
}

// TestTraceMinimumDuration: sub-microsecond spans are clamped to 1µs so
// they stay visible in viewers.
func TestTraceMinimumDuration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr, err := StartTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Span(0, "run", "tiny", time.Now(), 0, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	var events []decodedEvent
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatal(err)
	}
	if events[0].Dur != 1 {
		t.Fatalf("dur = %d, want clamped 1", events[0].Dur)
	}
}
