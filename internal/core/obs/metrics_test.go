package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeConcurrent hammers one counter and one gauge from
// many goroutines; run under -race this pins the atomic hot path, and
// the totals pin correctness.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", "kind", "mixed")
	g := r.Gauge("test_depth", "depth")

	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	// The same (name, labels) lookup must return the same series.
	if r.Counter("test_ops_total", "ops", "kind", "mixed") != c {
		t.Fatal("second lookup returned a different counter")
	}
	// Negative deltas never decrease a counter.
	c.Add(-5)
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter after Add(-5) = %d, want unchanged %d", got, goroutines*perG)
	}
}

// TestHistogramBucketBoundaries pins the le (upper-inclusive) bucket
// semantics on exact boundary values.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})

	for _, v := range []float64{0.005, 0.01, 0.02, 0.1, 0.5, 1, 3} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v, want 3 finite + Inf", bounds)
	}
	// le=0.01 holds 0.005 and the boundary value 0.01 itself.
	want := []int64{2, 4, 6, 7}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] (le=%g) = %d, want %d (all: %v)", i, bounds[i], cum[i], want[i], cum)
		}
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got, wantSum := h.Sum(), 0.005+0.01+0.02+0.1+0.5+1+3; math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, wantSum)
	}
}

// TestHistogramConcurrent drives Observe from many goroutines; under
// -race this pins the lock-free sum CAS loop.
func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("test_h", "", []float64{1, 2})
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	if got, want := h.Sum(), 0.5*goroutines*perG; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

// TestNilSafety: every handle and registry method must be a no-op on
// nil so instrumentation can run unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(3)
	r.Histogram("c", "", DefBuckets).Observe(1)
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if got := r.Flat(); got != nil {
		t.Fatalf("nil Flat = %v, want nil", got)
	}
	var tr *Tracer
	tr.Span(0, "cat", "name", time.Now(), 0, nil)
	tr.NameThread(1, "x")
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer Close: %v", err)
	}
}

// goldenExposition is the exact Prometheus text a fixed registry must
// render — the wire format CI's curl check and real Prometheus servers
// scrape.
const goldenExposition = `# HELP eptest_runs_executed_total Injection runs executed by this process.
# TYPE eptest_runs_executed_total counter
eptest_runs_executed_total 293
# HELP eptest_cache_requests_total Cache probes by tier and result.
# TYPE eptest_cache_requests_total counter
eptest_cache_requests_total{result="hit",tier="source"} 7
eptest_cache_requests_total{result="miss",tier="plan"} 13
# HELP eptest_queue_depth Tasks queued or executing in the dispatcher.
# TYPE eptest_queue_depth gauge
eptest_queue_depth 4
# HELP eptest_run_seconds Injection run duration.
# TYPE eptest_run_seconds histogram
eptest_run_seconds_bucket{le="0.01"} 1
eptest_run_seconds_bucket{le="0.1"} 3
eptest_run_seconds_bucket{le="+Inf"} 4
eptest_run_seconds_sum 1.62
eptest_run_seconds_count 4
`

// TestPrometheusGolden pins the text exposition format byte for byte.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("eptest_runs_executed_total", "Injection runs executed by this process.").Add(293)
	r.Counter("eptest_cache_requests_total", "Cache probes by tier and result.", "tier", "source", "result", "hit").Add(7)
	r.Counter("eptest_cache_requests_total", "Cache probes by tier and result.", "result", "miss", "tier", "plan").Add(13)
	r.Gauge("eptest_queue_depth", "Tasks queued or executing in the dispatcher.").Set(4)
	h := r.Histogram("eptest_run_seconds", "Injection run duration.", []float64{0.01, 0.1})
	for _, v := range []float64{0.01, 0.05, 0.06, 1.5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenExposition {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenExposition)
	}
	// Exposition must be stable across repeated renders.
	var again bytes.Buffer
	r.WritePrometheus(&again)
	if again.String() != buf.String() {
		t.Fatal("second render differs from the first")
	}
}

// TestJSONSnapshot checks the -metrics-json schema: decodable, carries
// the schema tag, and histograms encode +Inf as a string.
func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("eptest_steals_total", "Steals.").Add(5)
	r.Histogram("eptest_run_seconds", "Run duration.", []float64{0.1}).Observe(0.05)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Schema  string `json:"schema"`
		Metrics []struct {
			Name    string   `json:"name"`
			Type    string   `json:"type"`
			Value   *int64   `json:"value"`
			Count   *int64   `json:"count"`
			Sum     *float64 `json:"sum"`
			Buckets []struct {
				LE    json.RawMessage `json:"le"`
				Count int64           `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not decode: %v\n%s", err, buf.String())
	}
	if snap.Schema != MetricsSchemaVersion {
		t.Fatalf("schema = %q, want %q", snap.Schema, MetricsSchemaVersion)
	}
	if len(snap.Metrics) != 2 {
		t.Fatalf("metrics = %d, want 2", len(snap.Metrics))
	}
	if snap.Metrics[0].Name != "eptest_steals_total" || snap.Metrics[0].Value == nil || *snap.Metrics[0].Value != 5 {
		t.Fatalf("counter entry wrong: %+v", snap.Metrics[0])
	}
	h := snap.Metrics[1]
	if h.Count == nil || *h.Count != 1 || h.Sum == nil || len(h.Buckets) != 2 {
		t.Fatalf("histogram entry wrong: %+v", h)
	}
	if string(h.Buckets[1].LE) != `"+Inf"` {
		t.Fatalf("last bucket le = %s, want \"+Inf\"", h.Buckets[1].LE)
	}

	flat := r.Flat()
	if flat["eptest_steals_total"] != 5 {
		t.Fatalf("Flat counter = %v", flat)
	}
	if flat["eptest_run_seconds_count"] != 1 {
		t.Fatalf("Flat histogram count = %v", flat)
	}
}

// TestLabelEscaping: label values with quotes and backslashes must
// render as valid Prometheus text.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "", "job", `a"b\c`).Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `job="a\"b\\c"`) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
}
