package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRouteLabel pins the bounded-cardinality route normalisation.
func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/v1/meta":             "meta",
		"/v1/status":           "status",
		"/status":              "status-page",
		"/metrics":             "metrics",
		"/v1/campaigns/abc123": "campaigns",
		"/v1/shards/1-of-2":    "shards",
		"/v1/coord/claim":      "coord.claim",
		"/v1/coord/register":   "coord.register",
		"/v1/anything-else":    "other",
		"/":                    "other",
	}
	for path, want := range cases {
		if got := RouteLabel(path); got != want {
			t.Errorf("RouteLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestMiddleware checks the server-side request counter and latency
// histogram, including the status-class label.
func TestMiddleware(t *testing.T) {
	r := NewRegistry()
	h := Middleware(r, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/v1/campaigns/missing" {
			http.Error(w, "no", http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, path := range []string{"/v1/meta", "/v1/meta", "/v1/campaigns/missing"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	if got := r.Counter("eptest_http_requests_total", "", "route", "meta", "method", "GET", "code", "2xx").Value(); got != 2 {
		t.Fatalf("meta 2xx count = %d, want 2", got)
	}
	if got := r.Counter("eptest_http_requests_total", "", "route", "campaigns", "method", "GET", "code", "4xx").Value(); got != 1 {
		t.Fatalf("campaigns 4xx count = %d, want 1", got)
	}
	if got := r.Histogram("eptest_http_request_seconds", "", DefBuckets, "route", "meta").Count(); got != 2 {
		t.Fatalf("meta latency samples = %d, want 2", got)
	}
}

// TestRoundTripper checks the client-side mirror metrics, including
// the "error" code for transport failures.
func TestRoundTripper(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	cl := &http.Client{Transport: RoundTripper(r, nil)}
	resp, err := cl.Get(srv.URL + "/v1/coord/claim")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := r.Counter("eptest_http_client_requests_total", "", "route", "coord.claim", "code", "2xx").Value(); got != 1 {
		t.Fatalf("client 2xx count = %d, want 1", got)
	}

	srv.Close() // connection refused from here on
	if _, err := cl.Get(srv.URL + "/v1/coord/claim"); err == nil {
		t.Fatal("expected a transport error after server close")
	}
	if got := r.Counter("eptest_http_client_requests_total", "", "route", "coord.claim", "code", "error").Value(); got != 1 {
		t.Fatalf("client error count = %d, want 1", got)
	}
}

// TestRegistryHandler serves /metrics and checks the content type and
// a sample line.
func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("eptest_runs_executed_total", "Runs.").Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "eptest_runs_executed_total 3") {
		t.Fatalf("body missing sample:\n%s", b)
	}
}

// TestServePprof: the opt-in profiling endpoint binds, serves a
// profile index, and exposes the registry at /metrics.
func TestServePprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("eptest_runs_executed_total", "Runs.").Inc()
	addr, err := ServePprof("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "eptest_runs_executed_total 1") {
		t.Fatalf("pprof /metrics missing registry:\n%s", b)
	}
}
