package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// RouteLabel normalises a request path to a bounded label value, so
// content-addressed URLs (/v1/campaigns/{64-hex}) never explode metric
// cardinality. Both the server middleware and the client round-tripper
// use it, so one query joins both sides of a request.
func RouteLabel(path string) string {
	switch {
	case path == "/v1/meta":
		return "meta"
	case path == "/v1/status":
		return "status"
	case path == "/status":
		return "status-page"
	case path == "/metrics":
		return "metrics"
	case path == "/v1/campaigns", strings.HasPrefix(path, "/v1/campaigns/"):
		return "campaigns"
	case strings.HasPrefix(path, "/v1/shards/"):
		return "shards"
	case strings.HasPrefix(path, "/v1/coord/"):
		return "coord." + path[len("/v1/coord/"):]
	}
	return "other"
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Middleware instruments an HTTP server: request counts by route,
// method and status class, and request latency histograms by route.
// A nil registry returns next unchanged.
func Middleware(r *Registry, next http.Handler) http.Handler {
	if r == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		route := RouteLabel(req.URL.Path)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, req)
		r.Counter("eptest_http_requests_total",
			"HTTP requests served, by route, method, and status class.",
			"route", route, "method", req.Method, "code", fmt.Sprintf("%dxx", sw.code/100)).Inc()
		r.Histogram("eptest_http_request_seconds",
			"Server-side HTTP request latency in seconds, by route.",
			DefBuckets, "route", route).Observe(time.Since(start).Seconds())
	})
}

// RoundTripper instruments an HTTP client with the mirror-image
// metrics of Middleware: request counts and latencies by route, plus a
// transport-error counter. A nil registry returns base unchanged
// (nil base means http.DefaultTransport).
func RoundTripper(r *Registry, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if r == nil {
		return base
	}
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		route := RouteLabel(req.URL.Path)
		start := time.Now()
		resp, err := base.RoundTrip(req)
		r.Histogram("eptest_http_client_seconds",
			"Client-side HTTP request latency in seconds, by route.",
			DefBuckets, "route", route).Observe(time.Since(start).Seconds())
		code := "error"
		if err == nil {
			code = fmt.Sprintf("%dxx", resp.StatusCode/100)
		}
		r.Counter("eptest_http_client_requests_total",
			"HTTP requests issued, by route and status class (or \"error\").",
			"route", route, "code", code).Inc()
		return resp, err
	})
}

// roundTripFunc adapts a function to http.RoundTripper.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// ServePprof starts the opt-in net/http/pprof endpoint on addr in a
// background goroutine and returns the bound address — the `-pprof
// ADDR` flag on servers and workers. The handlers live on a private
// mux, so enabling profiling never leaks pprof onto a service
// listener, and the caller's registry (if any) is exposed beside the
// profiles at /metrics for one-stop debugging.
func ServePprof(addr string, r *Registry) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if r != nil {
		mux.Handle("GET /metrics", r.Handler())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: -pprof %s: %w", addr, err)
	}
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
