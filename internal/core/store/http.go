package store

import (
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core/inject"
	"repro/internal/core/obs"
	"repro/internal/core/sched"
)

// Transport is the suite runner's access to one result store, local or
// remote: the sched.Cache surface the dispatcher consults, plus shard-
// artifact publication for distributed `-shard` runs. *Store implements
// it over a directory on local disk; *Client implements it over HTTP
// against the server `eptest -serve-cache` exposes, so shard runners on
// different machines share one cache and one merge point.
type Transport interface {
	sched.Cache
	// WriteShard publishes one shard's suite result as a mergeable
	// artifact; see (*Store).WriteShard for the partition contract.
	WriteShard(sp sched.ShardSpec, catalog []string, indices []int, sr *sched.SuiteResult) error
}

var (
	_ Transport = (*Store)(nil)
	_ Transport = (*Client)(nil)
)

// The cache server's HTTP surface (docs/DISTRIBUTED.md spells out the
// schema and failure semantics):
//
//	GET /v1/meta            -> {"store": FormatVersion, "engine": inject.EngineVersion}
//	GET /v1/campaigns/{fp}  -> cache-entry JSON, or 404 on a miss
//	PUT /v1/campaigns/{fp}  <- cache-entry JSON; 204 on success
//	PUT /v1/shards/{k}-of-{n} <- shard-artifact JSON; 204 on success
const (
	metaPath      = "/v1/meta"
	campaignsPath = "/v1/campaigns/"
	shardsPath    = "/v1/shards/"
)

// Server exposes a Store over HTTP. The wire format of every body is
// exactly the store's on-disk form — a GET streams the stored entry
// bytes, a PUT is validated and re-encoded through the same canonical
// codec the local store writes — so a store populated through the
// server is indistinguishable from one populated locally, and `eptest
// -merge` on the server's directory merges remote shards unchanged.
type Server struct {
	st  *Store
	mux *http.ServeMux
	h   http.Handler // mux, optionally wrapped in metrics middleware

	entryHit, entryMiss *obs.Counter
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithServerMetrics instruments the server: every request is recorded
// through the shared obs HTTP middleware (route/method/code counters
// and a latency histogram), and entry lookups additionally count hits
// and misses — the server-side view of the fleet's cache effectiveness.
func WithServerMetrics(r *obs.Registry) ServerOption {
	return func(s *Server) {
		const help = "Cache entries served, by lookup result."
		s.entryHit = r.Counter("eptest_store_entries_total", help, "result", "hit")
		s.entryMiss = r.Counter("eptest_store_entries_total", help, "result", "miss")
		s.h = obs.Middleware(r, s.mux)
	}
}

// NewServer returns an http.Handler serving st.
func NewServer(st *Store, opts ...ServerOption) *Server {
	s := &Server{st: st, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET "+metaPath, s.meta)
	s.mux.HandleFunc("GET "+campaignsPath+"{fp}", s.getCampaign)
	s.mux.HandleFunc("PUT "+campaignsPath+"{fp}", s.putCampaign)
	s.mux.HandleFunc("PUT "+shardsPath+"{spec}", s.putShard)
	s.h = s.mux
	for _, o := range opts {
		o(s)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.h.ServeHTTP(w, r) }

// meta reports the server's format and engine versions, so operators
// (and the CI smoke job) can probe liveness and compatibility.
func (s *Server) meta(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{
		"store":  FormatVersion,
		"engine": inject.EngineVersion,
	})
}

// IsFingerprint reports whether s has the shape of a content address:
// exactly 64 lowercase hex characters. The coordinator's campaign API
// uses it to tell campaign names apart from cache-entry fingerprints
// on the shared /v1/campaigns/ path space.
func IsFingerprint(s string) bool { return validFingerprint(s) }

// validFingerprint reports whether fp has the only shape either
// address space produces: 64 lowercase hex characters. Both handlers
// gate on it BEFORE the fingerprint reaches a filesystem path —
// ServeMux decodes %2F after pattern matching, so an unchecked
// PathValue can smuggle "../" segments out of the store directory.
func validFingerprint(fp string) bool {
	if len(fp) != 64 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// getCampaign streams the stored entry for a fingerprint. Misses are
// 404s (a malformed fingerprint cannot name an entry, so it is one
// too); the client turns any non-200 into a cache miss, so a confused
// or mismatched server only ever costs a re-run, never correctness.
func (s *Server) getCampaign(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFingerprint(fp) {
		http.Error(w, "malformed fingerprint", http.StatusNotFound)
		return
	}
	b, err := os.ReadFile(s.st.entryPath(fp))
	if err != nil {
		s.entryMiss.Inc()
		http.Error(w, "no entry for "+fp, http.StatusNotFound)
		return
	}
	s.entryHit.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// putCampaign validates and persists an uploaded cache entry. The body
// must be a well-formed entry whose versions match the server's and
// whose fingerprint matches the URL; anything else is rejected so one
// misbuilt worker cannot poison the shared store.
func (s *Server) putCampaign(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFingerprint(fp) {
		http.Error(w, "malformed fingerprint (want 64 hex chars)", http.StatusBadRequest)
		return
	}
	var e entry
	if err := decodeBody(w, r, &e); err != nil {
		return
	}
	if e.Store != FormatVersion || e.Engine != inject.EngineVersion {
		http.Error(w, fmt.Sprintf("entry written by %s/%s, server is %s/%s",
			e.Store, e.Engine, FormatVersion, inject.EngineVersion), http.StatusConflict)
		return
	}
	if e.Fingerprint != fp || e.Result == nil {
		http.Error(w, "entry fingerprint does not match URL, or result missing", http.StatusBadRequest)
		return
	}
	if err := s.st.Put(fp, e.Label, fromWire(e.Result)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// putShard validates and persists an uploaded shard artifact at the
// coordinates named in the URL.
func (s *Server) putShard(w http.ResponseWriter, r *http.Request) {
	var sp sched.ShardSpec
	if _, err := fmt.Sscanf(r.PathValue("spec"), "%d-of-%d", &sp.K, &sp.N); err != nil || sp.N < 1 || sp.K < 1 || sp.K > sp.N {
		http.Error(w, "malformed shard coordinates (want {k}-of-{n})", http.StatusBadRequest)
		return
	}
	var f shardFile
	if err := decodeBody(w, r, &f); err != nil {
		return
	}
	if f.Store != FormatVersion || f.Engine != inject.EngineVersion {
		http.Error(w, fmt.Sprintf("artifact written by %s/%s, server is %s/%s",
			f.Store, f.Engine, FormatVersion, inject.EngineVersion), http.StatusConflict)
		return
	}
	if f.Shard != sp.K || f.Of != sp.N || f.TotalJobs != len(f.Catalog) {
		http.Error(w, "artifact coordinates or catalog do not match URL", http.StatusBadRequest)
		return
	}
	b, err := json.Marshal(&f)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := s.st.writeAtomic(s.st.shardPath(sp), b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// maxBodyBytes bounds uploads; the largest catalog campaigns serialise
// to tens of kilobytes, so 256 MiB is generous headroom, not a limit
// anyone should meet.
const maxBodyBytes = 256 << 20

// BearerAuth wraps a handler with shared-token authentication: every
// request must carry `Authorization: Bearer token` or is rejected with
// 401, except GET /v1/meta, which stays open as the unauthenticated
// liveness probe. An empty token returns next unchanged, so callers
// can wire the -auth-token flag through unconditionally. This is the
// auth half of running a cache or coordinator on an untrusted network;
// pair it with TLS termination for the transport half.
func BearerAuth(token string, next http.Handler) http.Handler {
	if token == "" {
		return next
	}
	want := []byte("Bearer " + token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == metaPath {
			next.ServeHTTP(w, r)
			return
		}
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="eptest"`)
			http.Error(w, "missing or wrong bearer token (start the worker with the server's -auth-token)", http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// decodeBody JSON-decodes a bounded request body, writing the HTTP
// error itself so handlers can simply return.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return err
	}
	return nil
}

// Client is the HTTP cache transport: a sched.Cache (and Transport)
// whose entries live in a remote `eptest -serve-cache` store. Gets
// degrade to misses on any failure — network errors, version skew, a
// stopped server — because the caller's fallback (running the
// campaign) is always correct; Puts and WriteShard report errors,
// which the suite already treats as best-effort (CacheErr) or fatal
// (shard publication) respectively.
type Client struct {
	base  string
	hc    *http.Client
	token string

	// puts / putFailures count entry uploads, so the suite can tell
	// the operator about a flaky cache server even though every
	// individual Put is best-effort.
	puts        atomic.Int64
	putFailures atomic.Int64
}

// DialOption configures Dial.
type DialOption func(*Client)

// WithToken makes the client send `Authorization: Bearer token` on
// every request, matching a server started with -auth-token.
func WithToken(token string) DialOption {
	return func(c *Client) { c.token = token }
}

// WithMetrics instruments the client's transport: every request to the
// cache server is recorded as eptest_http_client_* counters and
// latency samples in r, labelled by normalised route.
func WithMetrics(r *obs.Registry) DialOption {
	return func(c *Client) { c.hc.Transport = obs.RoundTripper(r, c.hc.Transport) }
}

// ValidateBaseURL normalises a server base URL for any of the repo's
// HTTP clients (the cache transport here, the coordinator client in
// internal/core/coord): absolute, http or https, a host, no query or
// fragment, trailing slash trimmed. what names the URL in errors
// ("cache URL", "coordinator URL").
func ValidateBaseURL(rawURL, what string) (string, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return "", fmt.Errorf("%s %q: %v", what, rawURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("%s %q must be absolute http(s)://host[:port]", what, rawURL)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("%s %q must not carry a query or fragment", what, rawURL)
	}
	return strings.TrimSuffix(u.String(), "/"), nil
}

// Dial validates a cache-server URL and returns a client for it. The
// URL must be absolute with an http or https scheme and a host, e.g.
// "http://10.0.0.7:7077". No connection is attempted — a server that
// is down manifests as cache misses, not a dial error.
func Dial(rawURL string, opts ...DialOption) (*Client, error) {
	base, err := ValidateBaseURL(rawURL, "cache URL")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	c := &Client{
		base: base,
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// PutStats reports how many cache-entry uploads this client attempted
// and how many failed. Failures are already recorded per campaign as
// CacheErr; the aggregate lets the suite report a flaky or
// unauthorized cache server in one line.
func (c *Client) PutStats() (attempts, failures int64) {
	return c.puts.Load(), c.putFailures.Load()
}

// Base returns the server URL the client was dialled with.
func (c *Client) Base() string { return c.base }

// Get fetches the entry cached under the fingerprint. Every failure —
// transport, status, decode, or a validation the local store would
// also reject — is a miss.
func (c *Client) Get(fp string) (*inject.Result, bool) {
	req, err := http.NewRequest(http.MethodGet, c.base+campaignsPath+url.PathEscape(fp), nil)
	if err != nil {
		return nil, false
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, false
	}
	if e.Store != FormatVersion || e.Engine != inject.EngineVersion || e.Fingerprint != fp || e.Result == nil {
		return nil, false
	}
	return fromWire(e.Result), true
}

// Put uploads a freshly computed result under its fingerprint.
func (c *Client) Put(fp, label string, res *inject.Result) error {
	c.puts.Add(1)
	e := entry{
		Store:       FormatVersion,
		Engine:      inject.EngineVersion,
		Fingerprint: fp,
		Label:       label,
		Result:      toWire(res),
	}
	b, err := json.Marshal(&e)
	if err != nil {
		c.putFailures.Add(1)
		return fmt.Errorf("store: encode %s: %w", fp, err)
	}
	if err := c.put(campaignsPath+url.PathEscape(fp), b); err != nil {
		c.putFailures.Add(1)
		return err
	}
	return nil
}

// WriteShard uploads one shard's suite result; the server persists it
// next to locally written artifacts, ready for `eptest -merge` on the
// server's store directory.
func (c *Client) WriteShard(sp sched.ShardSpec, catalog []string, indices []int, sr *sched.SuiteResult) error {
	f, err := buildShardFile(sp, catalog, indices, sr)
	if err != nil {
		return err
	}
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("store: encode shard %s: %w", sp, err)
	}
	return c.put(fmt.Sprintf("%s%d-of-%d", shardsPath, sp.K, sp.N), b)
}

// put issues one PUT and normalises non-2xx statuses into errors that
// carry the server's diagnostic.
func (c *Client) put(path string, body []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("store: PUT %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
