package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// Journal is an append-only line log inside a store directory — the
// persistence seam the coordinator writes its queue state through
// (internal/core/coord journals every claim, renewal, and completion
// as one JSON line each; docs/COORDINATOR.md specifies the records).
//
// The durability contract is line-granular: Append writes one line in
// a single write(2) so a crash can tear at most the final line, and
// ReadJournalLines drops a torn trailing fragment instead of failing,
// so a journal survives SIGKILL at any instant. Rewrite compacts the
// log through the store's usual temp-file-and-rename, so even
// compaction cannot lose the previous generation to a crash.
type Journal struct {
	path string
	f    *os.File
}

// OpenJournal opens (creating if needed) the journal at path for
// appending. The parent directory is created too, so callers can keep
// journals in their own store subdirectory.
func OpenJournal(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", path, err)
	}
	return &Journal{path: path, f: f}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append writes one record line. The line must not contain a newline;
// the trailing '\n' is added here, and line+terminator go down in one
// write so a crash tears at most this line, never an earlier one.
func (j *Journal) Append(line []byte) error {
	if bytes.IndexByte(line, '\n') >= 0 {
		return fmt.Errorf("store: journal record contains a newline")
	}
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	return nil
}

// Sync flushes appended records to stable storage. The coordinator
// calls it after completion records — the ones that are expensive to
// lose — rather than on every heartbeat.
func (j *Journal) Sync() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	return nil
}

// Rewrite atomically replaces the journal's contents with the given
// lines — the compaction step after a restart folds the old log into a
// snapshot. The replacement goes through a same-directory temp file
// and rename, then reopens the append handle on the new file.
func (j *Journal) Rewrite(lines [][]byte) error {
	var buf bytes.Buffer
	for _, line := range lines {
		if bytes.IndexByte(line, '\n') >= 0 {
			return fmt.Errorf("store: journal record contains a newline")
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: journal rewrite: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("store: journal rewrite: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: journal rewrite: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: journal rewrite: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("store: journal rewrite: %w", err)
	}
	old := j.f
	f, err := os.OpenFile(j.path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: journal reopen: %w", err)
	}
	j.f = f
	old.Close()
	return nil
}

// Close releases the append handle.
func (j *Journal) Close() error { return j.f.Close() }

// ReadJournalLines reads every complete record line from the journal
// at path. A missing file is an empty journal, not an error, and a
// torn trailing fragment — bytes after the last '\n', the signature of
// a crash mid-append — is dropped, because the line-granular write
// contract guarantees every earlier line is intact.
func ReadJournalLines(path string) ([][]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: journal %s: %w", path, err)
	}
	if i := bytes.LastIndexByte(b, '\n'); i < 0 {
		return nil, nil
	} else {
		b = b[:i]
	}
	var lines [][]byte
	for _, line := range bytes.Split(b, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines = append(lines, line)
	}
	return lines, nil
}
