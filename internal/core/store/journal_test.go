package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core/store"
)

// TestJournalAppendReadRoundTrip pins the basic contract: appended
// lines come back in order, a missing file is an empty journal, and
// blank lines are skipped.
func TestJournalAppendReadRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "sub", "j.jsonl")
	if lines, err := store.ReadJournalLines(path); err != nil || lines != nil {
		t.Fatalf("missing journal = (%v, %v), want empty", lines, err)
	}
	j, err := store.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	want := []string{`{"op":"meta"}`, `{"op":"claim","index":0}`, `{"op":"complete","index":0}`}
	for _, l := range want {
		if err := j.Append([]byte(l)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append([]byte("two\nlines")); err == nil {
		t.Fatal("Append accepted an embedded newline")
	}
	lines, err := store.ReadJournalLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(want) {
		t.Fatalf("read %d lines, want %d", len(lines), len(want))
	}
	for i, l := range lines {
		if string(l) != want[i] {
			t.Errorf("line %d = %q, want %q", i, l, want[i])
		}
	}
}

// TestJournalTornTailDropped pins crash tolerance: bytes after the last
// newline — a write torn by SIGKILL — are dropped, and every complete
// line before them survives.
func TestJournalTornTailDropped(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte("{\"op\":\"meta\"}\n{\"op\":\"claim\",\"ind"), 0o644); err != nil {
		t.Fatal(err)
	}
	lines, err := store.ReadJournalLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || string(lines[0]) != `{"op":"meta"}` {
		t.Fatalf("torn journal read = %q, want just the intact first line", lines)
	}
}

// TestJournalRewriteCompacts pins compaction: Rewrite atomically
// replaces the contents and the append handle keeps working on the new
// generation.
func TestJournalRewriteCompacts(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := store.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte(`{"op":"renew"}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Rewrite([][]byte{[]byte(`{"op":"meta"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte(`{"op":"claim","index":1}`)); err != nil {
		t.Fatal(err)
	}
	lines, err := store.ReadJournalLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || string(lines[0]) != `{"op":"meta"}` || string(lines[1]) != `{"op":"claim","index":1}` {
		t.Fatalf("after rewrite+append: %q", lines)
	}
}
