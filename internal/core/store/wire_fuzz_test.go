package store

import (
	"testing"

	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/interpose"
)

// FuzzDecodeResult throws arbitrary bytes at the wire codec: malformed
// JSON must come back as an error, never a panic, and anything that
// does decode must re-encode cleanly (the decoder's output always lies
// in the encoder's domain — the invariant the cache replay path
// depends on).
func FuzzDecodeResult(f *testing.F) {
	seed := &inject.Result{
		Campaign:       "fuzz",
		TotalSites:     []string{"a:open", "a:read"},
		PerturbedSites: []string{"a:open"},
		CleanTrace: []interpose.Event{
			{
				Call:         interpose.Call{Site: "a:open", Op: interpose.OpOpen, Path: "/etc/passwd", Occur: 1},
				Result:       interpose.Result{Str: "ok", N: 3},
				ResolvedPath: "/etc/passwd",
			},
		},
		Injections: []inject.Injection{
			{
				Point: "a:open#1", Site: "a:open", FaultID: "direct/file-system/existence",
				Applied: true, Exit: 1,
				Violations: []policy.Violation{{Kind: policy.KindIntegrity, Object: "/x"}},
			},
		},
	}
	if b, err := EncodeResult(seed); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"campaign":"x","injections":null}`))
	f.Add([]byte(`{"campaign":1}`))
	f.Add([]byte(`[`))
	f.Add([]byte(``))
	f.Add([]byte(`{"clean_trace":[{"result":{"err":"boom"}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResult(data)
		if err != nil {
			return
		}
		if res == nil {
			t.Fatal("DecodeResult returned nil result with nil error")
		}
		if _, err := EncodeResult(res); err != nil {
			t.Fatalf("decoded result does not re-encode: %v", err)
		}
	})
}
