package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core/inject"
	"repro/internal/core/sched"
)

// shardFile is the on-disk shard artifact: one process's slice of a
// deterministic suite partition, self-describing enough to be merged
// with its siblings on another machine.
type shardFile struct {
	Store  string `json:"store"`
	Engine string `json:"engine"`
	// Shard and Of are the partition coordinates (k of n).
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// TotalJobs is the length of the full, unsharded job list; every
	// sibling artifact must agree on it for the partitions to line up.
	TotalJobs int `json:"total_jobs"`
	// Catalog is the label of every job in the full list, in order.
	// Each shard sees the whole catalog before partitioning, so
	// siblings produced from the same catalog agree on it — and the
	// merge rejects siblings that do not (a renamed or reordered
	// catalog between shard runs would otherwise splice results from
	// different suite generations into one report).
	Catalog []string   `json:"catalog"`
	Jobs    []shardJob `json:"jobs"`
}

// shardJob is one job's outcome inside a shard artifact.
type shardJob struct {
	// Index is the job's position in the full job list — the merge key.
	Index             int           `json:"index"`
	Name              string        `json:"name"`
	Variant           string        `json:"variant,omitempty"`
	Fingerprint       string        `json:"fingerprint,omitempty"`
	SourceFingerprint string        `json:"source_fingerprint,omitempty"`
	Cached            bool          `json:"cached,omitempty"`
	CachedSource      bool          `json:"cached_source,omitempty"`
	Err               string        `json:"err,omitempty"`
	Result            *wireCampaign `json:"result,omitempty"`
}

// ShardInfo describes one merged artifact, for reports.
type ShardInfo struct {
	// Shard and Of are the partition coordinates.
	Shard, Of int
	// Jobs is the number of jobs the artifact carries.
	Jobs int
	// Path is the artifact file.
	Path string
}

// shardPath names the artifact for shard k of n.
func (s *Store) shardPath(sp sched.ShardSpec) string {
	return filepath.Join(s.dir, shardDir, fmt.Sprintf("shard-%d-of-%d.json", sp.K, sp.N))
}

// buildShardFile assembles the mergeable artifact for one shard's
// suite result — shared by the local Store and the HTTP Client, so
// both transports publish the identical wire form.
func buildShardFile(sp sched.ShardSpec, catalog []string, indices []int, sr *sched.SuiteResult) (*shardFile, error) {
	if len(indices) != len(sr.Campaigns) {
		return nil, fmt.Errorf("store: shard %s: %d indices for %d campaigns", sp, len(indices), len(sr.Campaigns))
	}
	f := &shardFile{
		Store:     FormatVersion,
		Engine:    inject.EngineVersion,
		Shard:     sp.K,
		Of:        sp.N,
		TotalJobs: len(catalog),
		Catalog:   catalog,
		Jobs:      make([]shardJob, len(indices)),
	}
	for i, c := range sr.Campaigns {
		j := shardJob{
			Index:             indices[i],
			Name:              c.Job.Name,
			Variant:           c.Job.Variant,
			Fingerprint:       c.Fingerprint,
			SourceFingerprint: c.SourceFingerprint,
			Cached:            c.Cached,
			CachedSource:      c.CachedSource,
		}
		if c.Err != nil {
			j.Err = c.Err.Error()
		}
		if c.Result != nil {
			j.Result = toWire(c.Result)
		}
		f.Jobs[i] = j
	}
	return f, nil
}

// WriteShard persists one shard's suite result as a mergeable artifact.
// catalog is the label of every job in the full, unsharded list; sr
// must be the result of running exactly the jobs ShardJobs selected for
// sp out of that list, and indices their global positions (the second
// ShardJobs return).
func (s *Store) WriteShard(sp sched.ShardSpec, catalog []string, indices []int, sr *sched.SuiteResult) error {
	f, err := buildShardFile(sp, catalog, indices, sr)
	if err != nil {
		return err
	}
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("store: encode shard %s: %w", sp, err)
	}
	return s.writeAtomic(s.shardPath(sp), b)
}

// MergeShards reads every shard artifact in the store and recombines
// them into the SuiteResult an unsharded run over the same job list
// would have produced: campaigns land at their recorded global indices,
// so plan order — and with it every downstream report and ClusterSuite
// pass — is preserved exactly.
//
// The artifacts must form one complete, consistent partition: same
// format and engine version, same shard count and total job count,
// every index covered exactly once. Anything else is an error naming
// the offending artifact, never a silently partial merge.
func (s *Store) MergeShards() (*sched.SuiteResult, []ShardInfo, error) {
	paths, err := filepath.Glob(filepath.Join(s.dir, shardDir, "shard-*-of-*.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("store: no shard artifacts under %s", filepath.Join(s.dir, shardDir))
	}
	sort.Strings(paths)

	var (
		sr    *sched.SuiteResult
		infos []ShardInfo
		first *shardFile
		seen  map[int]string // global index -> artifact that filled it
	)
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("store: %w", err)
		}
		var f shardFile
		if err := json.Unmarshal(b, &f); err != nil {
			return nil, nil, fmt.Errorf("store: parse %s: %w", path, err)
		}
		if f.Store != FormatVersion || f.Engine != inject.EngineVersion {
			return nil, nil, fmt.Errorf("store: %s was written by %s/%s, want %s/%s",
				path, f.Store, f.Engine, FormatVersion, inject.EngineVersion)
		}
		if f.TotalJobs != len(f.Catalog) {
			return nil, nil, fmt.Errorf("store: %s claims %d jobs but its catalog names %d", path, f.TotalJobs, len(f.Catalog))
		}
		if first == nil {
			first = &f
			sr = &sched.SuiteResult{Campaigns: make([]sched.CampaignResult, f.TotalJobs)}
			seen = make(map[int]string, f.TotalJobs)
		} else if f.Of != first.Of || f.TotalJobs != first.TotalJobs {
			return nil, nil, fmt.Errorf("store: %s is shard ?/%d over %d jobs, siblings are ?/%d over %d",
				path, f.Of, f.TotalJobs, first.Of, first.TotalJobs)
		} else if !equalCatalogs(f.Catalog, first.Catalog) {
			return nil, nil, fmt.Errorf("store: %s was produced from a different job catalog than its siblings (did the catalog change between shard runs?)", path)
		}
		infos = append(infos, ShardInfo{Shard: f.Shard, Of: f.Of, Jobs: len(f.Jobs), Path: path})
		for _, j := range f.Jobs {
			if j.Index < 0 || j.Index >= f.TotalJobs {
				return nil, nil, fmt.Errorf("store: %s: job index %d out of range [0,%d)", path, j.Index, f.TotalJobs)
			}
			label := sched.Job{Name: j.Name, Variant: j.Variant}.Label()
			if label != f.Catalog[j.Index] {
				return nil, nil, fmt.Errorf("store: %s: job %d is %q, but the catalog names it %q", path, j.Index, label, f.Catalog[j.Index])
			}
			if prev, dup := seen[j.Index]; dup {
				return nil, nil, fmt.Errorf("store: job %d appears in both %s and %s", j.Index, prev, path)
			}
			seen[j.Index] = path
			c := sched.CampaignResult{
				Job:               sched.Job{Name: j.Name, Variant: j.Variant},
				Fingerprint:       j.Fingerprint,
				SourceFingerprint: j.SourceFingerprint,
				Cached:            j.Cached,
				CachedSource:      j.CachedSource,
			}
			if j.Err != "" {
				c.Err = errors.New(j.Err)
			}
			if j.Result != nil {
				c.Result = fromWire(j.Result)
			}
			sr.Campaigns[j.Index] = c
		}
	}
	if len(seen) != first.TotalJobs {
		var missing []int
		for i := 0; i < first.TotalJobs; i++ {
			if _, ok := seen[i]; !ok {
				missing = append(missing, i)
			}
		}
		return nil, nil, fmt.Errorf("store: incomplete partition: %d of %d jobs covered, missing indices %v (is a shard artifact absent?)",
			len(seen), first.TotalJobs, missing)
	}
	// The glob order is lexical ("shard-10-…" before "shard-2-…");
	// report shards numerically.
	sort.Slice(infos, func(i, j int) bool { return infos[i].Shard < infos[j].Shard })
	return sr, infos, nil
}

// equalCatalogs compares two job-label lists.
func equalCatalogs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
