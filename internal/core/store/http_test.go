package store_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core/inject"
	"repro/internal/core/sched"
	"repro/internal/core/store"
)

// dialTestServer starts a cache server over a fresh store and returns
// a client dialled at it plus the backing store.
func dialTestServer(t *testing.T) (*store.Client, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.NewServer(st))
	t.Cleanup(srv.Close)
	cl, err := store.Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return cl, st
}

// TestDialValidation pins the URL errors the CLI surfaces for a
// malformed -cache-url.
func TestDialValidation(t *testing.T) {
	t.Parallel()
	for _, bad := range []string{
		"", "10.0.0.7:7077", "ftp://host/", "http://", "://x",
		"http://host/?q=1", "http://host/#frag",
	} {
		if _, err := store.Dial(bad); err == nil {
			t.Errorf("Dial(%q) succeeded, want error", bad)
		}
	}
	cl, err := store.Dial("http://127.0.0.1:7077/")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Base() != "http://127.0.0.1:7077" {
		t.Errorf("Base() = %q, want trailing slash trimmed", cl.Base())
	}
}

// TestClientRoundTrip pushes a real campaign result through the HTTP
// transport and back: the replay must match field for field, and the
// remote store must be indistinguishable from a locally written one.
func TestClientRoundTrip(t *testing.T) {
	t.Parallel()
	cl, st := dialTestServer(t)
	res, fp := runLpr(t)

	if _, ok := cl.Get(fp); ok {
		t.Fatal("Get on an empty store hit")
	}
	if err := cl.Put(fp, "lpr/vulnerable", res); err != nil {
		t.Fatal(err)
	}

	got, ok := cl.Get(fp)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !reflect.DeepEqual(got.Injections, res.Injections) {
		t.Error("injections diverge through the HTTP transport")
	}
	if got.Metric() != res.Metric() {
		t.Errorf("metric diverges: %+v != %+v", got.Metric(), res.Metric())
	}
	wantB, err := store.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := store.EncodeResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantB) != string(gotB) {
		t.Error("canonical encoding not byte-identical through the transport")
	}

	// The server's backing store holds the entry like a local write.
	local, ok := st.Get(fp)
	if !ok {
		t.Fatal("server's local store misses the uploaded entry")
	}
	if !reflect.DeepEqual(local.Injections, res.Injections) {
		t.Error("server-side entry diverges from the upload")
	}
}

// TestClientShardUpload runs a two-shard suite through the HTTP
// transport and merges on the server's store — the distributed flow of
// docs/DISTRIBUTED.md in miniature.
func TestClientShardUpload(t *testing.T) {
	t.Parallel()
	cl, st := dialTestServer(t)

	jobs := apps.SuiteJobs()[:4]
	catalog := make([]string, len(jobs))
	for i, j := range jobs {
		catalog[i] = j.Label()
	}
	full := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4})

	for k := 1; k <= 2; k++ {
		sp := sched.ShardSpec{K: k, N: 2}
		shardJobs, indices := sched.ShardJobs(jobs, sp)
		sr := sched.RunSuite(shardJobs, sched.SuiteOptions{Workers: 4, Cache: cl})
		if len(sr.Failed()) != 0 {
			t.Fatalf("shard %s failed: %v", sp, sr.Failed())
		}
		if err := cl.WriteShard(sp, catalog, indices, sr); err != nil {
			t.Fatal(err)
		}
	}

	merged, infos, err := st.MergeShards()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("merged %d artifacts, want 2", len(infos))
	}
	for i := range jobs {
		if !reflect.DeepEqual(merged.Campaigns[i].Result.Injections, full.Campaigns[i].Result.Injections) {
			t.Errorf("%s: merged result diverges from the unsharded run", jobs[i].Label())
		}
	}
}

// TestClientDegradesToMisses pins the failure semantics: with the
// server gone, Get is a miss and Put is an error — never a hang or a
// panic, so a dead cache only costs re-execution.
func TestClientDegradesToMisses(t *testing.T) {
	t.Parallel()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.NewServer(st))
	cl, err := store.Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()

	res, fp := runLpr(t)
	if _, ok := cl.Get(fp); ok {
		t.Error("Get against a dead server hit")
	}
	if err := cl.Put(fp, "lpr/vulnerable", res); err == nil {
		t.Error("Put against a dead server succeeded")
	}
}

// TestServerRejectsMismatchedUploads pins the poisoning guards: a body
// whose fingerprint disagrees with the URL, garbage JSON, and shard
// coordinates that disagree with the URL are all rejected without
// touching the store.
func TestServerRejectsMismatchedUploads(t *testing.T) {
	t.Parallel()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.NewServer(st))
	t.Cleanup(srv.Close)
	cl, err := store.Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, fp := runLpr(t)

	// A well-formed entry uploaded under the wrong URL fingerprint.
	if err := cl.Put(fp, "lpr/vulnerable", res); err != nil {
		t.Fatal(err)
	}
	good, err := store.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct{ path, body string }{
		"fp mismatch":    {"/v1/campaigns/deadbeef", mustEntryJSON(t, st, fp)},
		"garbage":        {"/v1/campaigns/deadbeef", "{not json"},
		"bare result":    {"/v1/campaigns/deadbeef", string(good)},
		"shard mismatch": {"/v1/shards/2-of-3", mustShardJSON(t)},
		"shard garbage":  {"/v1/shards/1-of-2", "{not json"},
		"shard bad path": {"/v1/shards/0-of-0", mustShardJSON(t)},
	} {
		req, err := http.NewRequest(http.MethodPut, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			t.Errorf("%s: accepted with %s, want rejection", name, resp.Status)
		}
	}
	if _, ok := st.Get("deadbeef"); ok {
		t.Error("a rejected upload reached the store")
	}
}

// TestServerRejectsPathTraversal pins the fingerprint gate: ServeMux
// decodes %2F after routing, so "../" can reach PathValue — the
// handlers must reject anything that is not 64 hex chars before it
// touches a filesystem path, on both the read and the write side.
func TestServerRejectsPathTraversal(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	secret := filepath.Join(dir, "secret.json")
	if err := os.WriteFile(secret, []byte(`{"top":"secret"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.NewServer(st))
	t.Cleanup(srv.Close)

	// Reads must not escape the store directory.
	for _, fp := range []string{
		"..%2F..%2Fsecret",
		"..%2F..%2F..%2Fsecret",
		strings.Repeat("A", 64), // right length, wrong alphabet
		"abc",                   // wrong length
	} {
		resp, err := http.Get(srv.URL + "/v1/campaigns/" + fp)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("GET %s = 200, want rejection", fp)
		}
	}

	// Writes must not land outside the store directory either.
	res, fp := runLpr(t)
	cl, err := store.Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(fp, "lpr/vulnerable", res); err != nil {
		t.Fatal(err)
	}
	body := mustEntryJSON(t, st, fp)
	evil := strings.NewReplacer(fp, "../../../planted").Replace(body)
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/campaigns/..%2F..%2F..%2Fplanted", strings.NewReader(evil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		t.Fatalf("traversal PUT accepted with %s", resp.Status)
	}
	if _, err := os.Stat(filepath.Join(dir, "planted.json")); err == nil {
		t.Error("traversal PUT planted a file outside the store")
	}
}

// mustEntryJSON reads back the raw stored entry for fp, to replay it
// under a different URL.
func mustEntryJSON(t *testing.T, st *store.Store, fp string) string {
	t.Helper()
	srv := httptest.NewServer(store.NewServer(st))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// mustShardJSON uploads a valid one-job shard to a scratch server and
// returns its artifact bytes, for replaying at wrong coordinates.
func mustShardJSON(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := runLpr(t)
	sr := &sched.SuiteResult{Campaigns: []sched.CampaignResult{{Job: sched.Job{Name: "lpr", Variant: "vulnerable"}, Result: res}}}
	if err := st.WriteShard(sched.ShardSpec{K: 1, N: 2}, []string{"lpr/vulnerable", "other"}, []int{0}, sr); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "shards", "shard-1-of-2.json"))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestBearerAuth pins the shared-token transport guard: without the
// right token every mutating or reading endpoint is 401 (and the
// client degrades to misses / loud put errors), with it everything
// works, and GET /v1/meta stays open as the liveness probe.
func TestBearerAuth(t *testing.T) {
	t.Parallel()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.BearerAuth("s3cret", store.NewServer(st)))
	t.Cleanup(srv.Close)

	res, err := inject.Run(mustLookup(t, "lpr-create-site").Vulnerable())
	if err != nil {
		t.Fatal(err)
	}
	fp := strings.Repeat("ab", 32)

	// The liveness probe needs no token.
	resp, err := http.Get(srv.URL + "/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/meta = %s, want open access", resp.Status)
	}

	// Wrong or missing token: puts fail loudly, gets degrade to misses.
	for name, cl := range map[string]*store.Client{
		"no token":    mustDial(t, srv.URL),
		"wrong token": mustDial(t, srv.URL, store.WithToken("guess")),
	} {
		if err := cl.Put(fp, "lpr-create-site", res); err == nil {
			t.Errorf("%s: Put succeeded against an authed server", name)
		} else if !strings.Contains(err.Error(), "401") {
			t.Errorf("%s: Put error %v does not carry the 401", name, err)
		}
		if _, ok := cl.Get(fp); ok {
			t.Errorf("%s: Get hit against an authed server", name)
		}
	}

	// The right token round-trips.
	cl := mustDial(t, srv.URL, store.WithToken("s3cret"))
	if err := cl.Put(fp, "lpr-create-site", res); err != nil {
		t.Fatalf("authed Put: %v", err)
	}
	if _, ok := cl.Get(fp); !ok {
		t.Fatal("authed Get missed the entry just uploaded")
	}

	// An empty token leaves the server open.
	open := httptest.NewServer(store.BearerAuth("", store.NewServer(st)))
	t.Cleanup(open.Close)
	if _, ok := mustDial(t, open.URL).Get(fp); !ok {
		t.Fatal("empty token should disable auth entirely")
	}
}

// TestClientPutStats pins the flaky-cache accounting: failed uploads
// are counted so the suite can warn the operator, successful ones are
// not.
func TestClientPutStats(t *testing.T) {
	t.Parallel()
	cl, _ := dialTestServer(t)
	res, err := inject.Run(mustLookup(t, "lpr-create-site").Vulnerable())
	if err != nil {
		t.Fatal(err)
	}
	fp := strings.Repeat("cd", 32)
	if err := cl.Put(fp, "ok", res); err != nil {
		t.Fatal(err)
	}
	if attempts, failures := cl.PutStats(); attempts != 1 || failures != 0 {
		t.Fatalf("after one good put: attempts %d, failures %d", attempts, failures)
	}
	// A malformed fingerprint is rejected server-side and must count.
	if err := cl.Put("not-a-fingerprint", "bad", res); err == nil {
		t.Fatal("malformed fingerprint accepted")
	}
	// A dead server fails transport-level and must count too.
	dead := mustDial(t, "http://127.0.0.1:1")
	dead.Put(fp, "dead", res)
	if attempts, failures := cl.PutStats(); attempts != 2 || failures != 1 {
		t.Errorf("after one rejected put: attempts %d, failures %d", attempts, failures)
	}
	if attempts, failures := dead.PutStats(); attempts != 1 || failures != 1 {
		t.Errorf("dead server: attempts %d, failures %d", attempts, failures)
	}
}

// mustDial dials or fails the test.
func mustDial(t *testing.T, url string, opts ...store.DialOption) *store.Client {
	t.Helper()
	cl, err := store.Dial(url, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// mustLookup resolves a catalog spec or fails the test.
func mustLookup(t *testing.T, name string) apps.Spec {
	t.Helper()
	spec, err := apps.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
