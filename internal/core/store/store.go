// Package store persists campaign results on disk so suite runs can be
// incremental and distributed.
//
// It has two layers, both living under one directory and both specified
// in docs/STORE.md:
//
//   - a content-addressed result cache: one JSON entry per campaign,
//     keyed by the plan fingerprint of inject.(*ExecPlan).Fingerprint.
//     sched.RunSuite consults it (through the sched.Cache interface this
//     package implements) to skip campaigns whose ExecPlan is unchanged
//     and replay their stored results, bit-identical to a fresh run;
//
//   - shard artifacts: the per-process output of `eptest -all -shard
//     k/n`, each carrying its slice of the deterministic job partition,
//     which MergeShards recombines into the exact SuiteResult an
//     unsharded run would have produced.
//
// Invalidation is purely fingerprint-driven: entries are immutable once
// written, a changed campaign simply hashes to a new address, and a
// bumped inject.EngineVersion or store FormatVersion orphans old entries
// (Get treats them as misses) without any migration step.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core/inject"
)

// Store is a result store rooted at one directory. Methods are safe for
// concurrent use by the suite scheduler's goroutines: entries are
// immutable and writes go through rename, so readers never observe a
// partial file.
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	for _, sub := range []string{campaignDir, shardDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// On-disk layout (see docs/STORE.md).
const (
	campaignDir = "campaigns"
	shardDir    = "shards"
)

// entry is the cache-entry envelope around one campaign result.
type entry struct {
	Store       string        `json:"store"`
	Engine      string        `json:"engine"`
	Fingerprint string        `json:"fingerprint"`
	Label       string        `json:"label"`
	Result      *wireCampaign `json:"result"`
}

// entryPath fans entries out over 256 prefix directories so no single
// directory grows unboundedly.
func (s *Store) entryPath(fp string) string {
	prefix := "xx"
	if len(fp) >= 2 {
		prefix = fp[:2]
	}
	return filepath.Join(s.dir, campaignDir, prefix, fp+".json")
}

// Get returns the cached result stored under the fingerprint. Any
// failure to produce a trustworthy entry — no file, unreadable JSON, a
// foreign format or engine version, a fingerprint mismatch — is a cache
// miss, never an error: the caller's fallback (re-running the campaign)
// is always correct.
func (s *Store) Get(fp string) (*inject.Result, bool) {
	b, err := os.ReadFile(s.entryPath(fp))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, false
	}
	if e.Store != FormatVersion || e.Engine != inject.EngineVersion || e.Fingerprint != fp || e.Result == nil {
		return nil, false
	}
	return fromWire(e.Result), true
}

// Put stores a campaign result under its fingerprint. label is a
// human-readable job name kept alongside for inspection; it does not
// participate in addressing. Existing entries are overwritten — the
// address is content-derived, so a rewrite is byte-identical.
func (s *Store) Put(fp, label string, res *inject.Result) error {
	e := entry{
		Store:       FormatVersion,
		Engine:      inject.EngineVersion,
		Fingerprint: fp,
		Label:       label,
		Result:      toWire(res),
	}
	b, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", fp, err)
	}
	return s.writeAtomic(s.entryPath(fp), b)
}

// Len counts the cached campaign entries.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(filepath.Join(s.dir, campaignDir), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// writeAtomic writes through a same-directory temp file and rename, so
// concurrent readers and crashed writers never surface a partial entry.
func (s *Store) writeAtomic(path string, b []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
