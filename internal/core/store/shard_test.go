package store_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core/report"
	"repro/internal/core/sched"
	"repro/internal/core/store"
)

// labels returns the catalog label list WriteShard records.
func labels(jobs []sched.Job) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.Label()
	}
	return out
}

// TestShardMergeReproducesUnshardedSuite is the acceptance test for the
// shard pipeline: partition the full catalog into n shards, run each in
// its own suite (as n processes would), merge the artifacts, and demand
// the merged SuiteResult match the unsharded run exactly — same labels,
// same order, byte-identical per-campaign encodings, byte-identical
// rendered reports.
func TestShardMergeReproducesUnshardedSuite(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()
	full := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4})

	for _, n := range []int{2, 3} {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= n; k++ {
			spec := sched.ShardSpec{K: k, N: n}
			shardJobs, indices := sched.ShardJobs(jobs, spec)
			sr := sched.RunSuite(shardJobs, sched.SuiteOptions{Workers: 4})
			if err := st.WriteShard(spec, labels(jobs), indices, sr); err != nil {
				t.Fatalf("n=%d: write shard %s: %v", n, spec, err)
			}
		}
		merged, infos, err := st.MergeShards()
		if err != nil {
			t.Fatalf("n=%d: merge: %v", n, err)
		}
		if len(infos) != n {
			t.Fatalf("n=%d: merged %d artifacts", n, len(infos))
		}
		if len(merged.Campaigns) != len(full.Campaigns) {
			t.Fatalf("n=%d: merged %d campaigns, want %d", n, len(merged.Campaigns), len(full.Campaigns))
		}
		for i := range full.Campaigns {
			want, got := full.Campaigns[i], merged.Campaigns[i]
			if want.Job.Label() != got.Job.Label() {
				t.Fatalf("n=%d: campaign %d is %s, want %s", n, i, got.Job.Label(), want.Job.Label())
			}
			wb, err := store.EncodeResult(want.Result)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := store.EncodeResult(got.Result)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wb, gb) {
				t.Errorf("n=%d: %s: merged result diverges from unsharded run", n, want.Job.Label())
			}
		}
		// The user-visible contract: the merged suite report and the
		// clustered findings render byte-identically.
		if report.SuiteRun(merged) != report.SuiteRun(full) {
			t.Errorf("n=%d: merged suite report diverges", n)
		}
		wantClusters := report.Clusters(sched.ClusterSuite(full))
		gotClusters := report.Clusters(sched.ClusterSuite(merged))
		if wantClusters != gotClusters {
			t.Errorf("n=%d: merged cluster report diverges", n)
		}
	}
}

// TestMergeRejectsIncompletePartition asserts a missing sibling is a
// loud error naming the uncovered indices, never a partial report.
func TestMergeRejectsIncompletePartition(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := sched.ShardSpec{K: 1, N: 2}
	shardJobs, indices := sched.ShardJobs(jobs, spec)
	sr := sched.RunSuite(shardJobs, sched.SuiteOptions{Workers: 4})
	if err := st.WriteShard(spec, labels(jobs), indices, sr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.MergeShards(); err == nil {
		t.Fatal("merging half a partition succeeded")
	} else if !strings.Contains(err.Error(), "incomplete partition") {
		t.Errorf("error = %v, want it to name the incomplete partition", err)
	}
}

// TestMergeRejectsMixedPartitions asserts artifacts from differently
// sized partitions cannot be combined.
func TestMergeRejectsMixedPartitions(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()[:2]
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	whole := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 2})
	if err := st.WriteShard(sched.ShardSpec{K: 1, N: 1}, labels(jobs), []int{0, 1}, whole); err != nil {
		t.Fatal(err)
	}
	spec := sched.ShardSpec{K: 1, N: 2}
	shardJobs, indices := sched.ShardJobs(jobs, spec)
	sr := sched.RunSuite(shardJobs, sched.SuiteOptions{Workers: 2})
	if err := st.WriteShard(spec, labels(jobs), indices, sr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.MergeShards(); err == nil {
		t.Fatal("merging mixed partitions succeeded")
	}
}

// TestMergeRejectsMixedCatalogs asserts two shards produced from
// differently labelled catalogs — a rename between shard runs — cannot
// be spliced into one report.
func TestMergeRejectsMixedCatalogs(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()[:2]
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 2; k++ {
		spec := sched.ShardSpec{K: k, N: 2}
		shardJobs, indices := sched.ShardJobs(jobs, spec)
		sr := sched.RunSuite(shardJobs, sched.SuiteOptions{Workers: 2})
		cat := labels(jobs)
		if k == 2 {
			cat[0] = "renamed/vulnerable" // the catalog drifted between runs
		}
		if err := st.WriteShard(spec, cat, indices, sr); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.MergeShards(); err == nil {
		t.Fatal("merging shards from different catalogs succeeded")
	} else if !strings.Contains(err.Error(), "catalog") {
		t.Errorf("error = %v, want it to blame the catalog", err)
	}
}

// TestMergeRejectsEmptyStore asserts the no-artifacts case is an error.
func TestMergeRejectsEmptyStore(t *testing.T) {
	t.Parallel()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.MergeShards(); err == nil {
		t.Error("merging an empty store succeeded")
	}
}
