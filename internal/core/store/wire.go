package store

import (
	"encoding/json"
	"errors"

	"repro/internal/core/inject"
	"repro/internal/interpose"
)

// FormatVersion identifies the on-disk schema of cache entries and shard
// artifacts. Readers reject files written under a different format; see
// docs/STORE.md for the schema itself.
const FormatVersion = "eptest-store/1"

// wireCampaign is the serialised form of an inject.Result. Everything is
// a plain exported value; the one impedance mismatch with the in-memory
// type is the trace events' error field, which travels as its message.
type wireCampaign struct {
	Campaign       string      `json:"campaign"`
	CleanTrace     []wireEvent `json:"clean_trace"`
	TotalSites     []string    `json:"total_sites"`
	PerturbedSites []string    `json:"perturbed_sites,omitempty"`
	// Injections round-trip natively: inject.Injection and its nested
	// policy.Violation carry only exported scalar fields.
	Injections []inject.Injection `json:"injections"`
}

// wireEvent is one serialised trace event.
type wireEvent struct {
	Call         interpose.Call `json:"call"`
	Result       wireCallResult `json:"result"`
	ResolvedPath string         `json:"resolved_path,omitempty"`
	Mutated      bool           `json:"mutated,omitempty"`
}

// wireCallResult mirrors interpose.Result with the error flattened to
// its message ("" means nil).
type wireCallResult struct {
	Data []byte `json:"data,omitempty"`
	Str  string `json:"str,omitempty"`
	N    int    `json:"n,omitempty"`
	Flag bool   `json:"flag,omitempty"`
	Err  string `json:"err,omitempty"`
}

// EncodeResult renders a campaign result in the store's canonical wire
// form. Encoding is deterministic — struct fields serialise in
// declaration order — so equal results produce equal bytes, which is
// what the replay- and merge-determinism tests compare.
func EncodeResult(r *inject.Result) ([]byte, error) {
	return json.Marshal(toWire(r))
}

// DecodeResult parses the canonical wire form back into a campaign
// result. Trace errors come back as opaque errors carrying the original
// message; every field a report or merge consumes round-trips exactly.
func DecodeResult(b []byte) (*inject.Result, error) {
	var w wireCampaign
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, err
	}
	return fromWire(&w), nil
}

// toWire converts a result to its wire form.
func toWire(r *inject.Result) *wireCampaign {
	w := &wireCampaign{
		Campaign:       r.Campaign,
		CleanTrace:     make([]wireEvent, len(r.CleanTrace)),
		TotalSites:     r.TotalSites,
		PerturbedSites: r.PerturbedSites,
		Injections:     r.Injections,
	}
	for i := range r.CleanTrace {
		ev := &r.CleanTrace[i]
		we := wireEvent{
			Call: ev.Call,
			Result: wireCallResult{
				Data: ev.Result.Data,
				Str:  ev.Result.Str,
				N:    ev.Result.N,
				Flag: ev.Result.Flag,
			},
			ResolvedPath: ev.ResolvedPath,
			Mutated:      ev.Mutated,
		}
		if ev.Result.Err != nil {
			we.Result.Err = ev.Result.Err.Error()
		}
		w.CleanTrace[i] = we
	}
	return w
}

// fromWire converts a wire campaign back to a result.
func fromWire(w *wireCampaign) *inject.Result {
	r := &inject.Result{
		Campaign:       w.Campaign,
		CleanTrace:     make([]interpose.Event, len(w.CleanTrace)),
		TotalSites:     w.TotalSites,
		PerturbedSites: w.PerturbedSites,
		Injections:     w.Injections,
	}
	for i := range w.CleanTrace {
		we := &w.CleanTrace[i]
		ev := interpose.Event{
			Call: we.Call,
			Result: interpose.Result{
				Data: we.Result.Data,
				Str:  we.Result.Str,
				N:    we.Result.N,
				Flag: we.Result.Flag,
			},
			ResolvedPath: we.ResolvedPath,
			Mutated:      we.Mutated,
		}
		if we.Result.Err != "" {
			ev.Result.Err = errors.New(we.Result.Err)
		}
		r.CleanTrace[i] = ev
	}
	return r
}
