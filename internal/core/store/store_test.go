package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps/lpr"
	"repro/internal/core/inject"
	"repro/internal/core/store"
)

// runLpr runs the small walk-through campaign and returns its result
// and plan fingerprint.
func runLpr(t *testing.T) (*inject.Result, string) {
	t.Helper()
	plan, err := inject.Prepare(lpr.Campaign(lpr.Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	res, err := inject.Run(lpr.Campaign(lpr.Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	return res, plan.Fingerprint("lpr", "vulnerable")
}

// TestPutGetRoundTrip asserts a stored result replays with every
// report-visible field intact and a byte-identical canonical encoding.
func TestPutGetRoundTrip(t *testing.T) {
	t.Parallel()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, fp := runLpr(t)

	if _, ok := st.Get(fp); ok {
		t.Fatal("hit on an empty store")
	}
	if err := st.Put(fp, "lpr/vulnerable", res); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(fp)
	if !ok {
		t.Fatal("miss immediately after put")
	}

	if got.Campaign != res.Campaign ||
		!reflect.DeepEqual(got.TotalSites, res.TotalSites) ||
		!reflect.DeepEqual(got.PerturbedSites, res.PerturbedSites) ||
		!reflect.DeepEqual(got.Injections, res.Injections) {
		t.Error("replayed result diverges from the stored one")
	}
	if got.Metric() != res.Metric() {
		t.Errorf("metric diverges: %+v vs %+v", got.Metric(), res.Metric())
	}
	// The canonical encoding is the store's definition of equality: it
	// covers the clean trace too, including flattened errors.
	a, err := store.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.EncodeResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("canonical encodings diverge after a round trip")
	}

	if n, err := st.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1 entry", n, err)
	}
}

// TestWireCodecRoundTrip pins the standalone codec: decoding a
// canonical encoding and re-encoding it must reproduce the bytes, so
// artifacts written by one process replay exactly in another.
func TestWireCodecRoundTrip(t *testing.T) {
	t.Parallel()
	res, _ := runLpr(t)
	a, err := store.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := store.DecodeResult(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.EncodeResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("encode→decode→encode is not a fixed point")
	}
	if _, err := store.DecodeResult([]byte("not json")); err == nil {
		t.Error("DecodeResult accepted garbage")
	}
}

// TestGetTreatsBadEntriesAsMisses asserts every flavour of untrustworthy
// entry — absent, corrupt, mislabelled — is a miss, not an error or a
// bogus replay.
func TestGetTreatsBadEntriesAsMisses(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, fp := runLpr(t)
	if err := st.Put(fp, "lpr/vulnerable", res); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "campaigns", fp[:2], fp+".json")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated json":    pristine[:len(pristine)/2],
		"not json":          []byte("not a store entry"),
		"foreign format":    bytes.Replace(pristine, []byte(store.FormatVersion), []byte("eptest-store/0"), 1),
		"foreign engine":    bytes.Replace(pristine, []byte(inject.EngineVersion), []byte("eptest-engine/0"), 1),
		"wrong fingerprint": bytes.Replace(pristine, []byte(fp), []byte(strings.Repeat("0", len(fp))), 1),
	}
	for name, contents := range cases {
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Get(fp); ok {
			t.Errorf("%s: Get returned a hit", name)
		}
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(fp); ok {
		t.Error("absent entry: Get returned a hit")
	}
}

// TestOpenRejectsEmptyDir pins the one invalid configuration.
func TestOpenRejectsEmptyDir(t *testing.T) {
	t.Parallel()
	if _, err := store.Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
}
