// Package core groups the paper's primary contribution: the EAI fault
// model (core/eai), the security oracle (core/policy), the fault-injection
// engine implementing the Section 3.3 procedure (core/inject), the
// two-dimensional test-adequacy metric of Figure 2 (core/coverage), and
// report rendering (core/report).
//
// The package itself holds no code; it exists to document the layering:
//
//	sim/* (substrates)  ←  interpose  ←  core/eai  ←  core/inject
//	                                      core/policy ↗    core/coverage
package core
