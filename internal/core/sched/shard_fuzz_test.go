package sched

import "testing"

// FuzzParseShard throws arbitrary strings at the "k/n" parser: bad
// input must come back as an error, never a panic, and any spec that
// parses must be in range and survive a String round trip.
func FuzzParseShard(f *testing.F) {
	for _, seed := range []string{
		"1/2", "2/2", "3/2", "0/0", "0/1", "-1/-1", "1/0",
		"1", "/", "1/", "/2", "a/b", "1/2/3", "999999999999999999999/1",
		"1/999999999999999999999", "+1/+2", " 1/2", "1/2 ", "１/２",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseShard(s)
		if err != nil {
			return
		}
		if sp.K < 1 || sp.N < 1 || sp.K > sp.N {
			t.Fatalf("ParseShard(%q) accepted out-of-range spec %+v", s, sp)
		}
		rt, err := ParseShard(sp.String())
		if err != nil {
			t.Fatalf("round trip of %q (%s) failed: %v", s, sp, err)
		}
		if rt != sp {
			t.Fatalf("round trip of %q changed %+v to %+v", s, sp, rt)
		}
		// The partition the spec induces must be sane for small totals:
		// non-overlapping strides inside [0, total).
		for _, total := range []int{0, 1, 5} {
			for _, i := range sp.Indices(total) {
				if i < 0 || i >= total {
					t.Fatalf("shard %s over %d jobs owns out-of-range index %d", sp, total, i)
				}
			}
		}
	})
}
