package sched_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core/sched"
)

// TestParseShard pins the accepted and rejected command-line forms.
func TestParseShard(t *testing.T) {
	t.Parallel()
	for s, want := range map[string]sched.ShardSpec{
		"1/1": {K: 1, N: 1},
		"1/2": {K: 1, N: 2},
		"3/3": {K: 3, N: 3},
	} {
		got, err := sched.ParseShard(s)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() != s {
			t.Errorf("ParseShard(%q).String() = %q", s, got.String())
		}
	}
	for _, s := range []string{"", "1", "0/2", "3/2", "-1/2", "2/0", "a/b", "1/2/3"} {
		if got, err := sched.ParseShard(s); err == nil {
			t.Errorf("ParseShard(%q) = %v, want error", s, got)
		}
	}
}

// TestShardIndicesPartition asserts the k/n selections are exactly a
// partition of the job list: deterministic, pairwise disjoint, and
// jointly covering, for every n up to the suite size.
func TestShardIndicesPartition(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()
	for n := 1; n <= len(jobs); n++ {
		seen := make([]int, len(jobs))
		for k := 1; k <= n; k++ {
			spec := sched.ShardSpec{K: k, N: n}
			a := spec.Indices(len(jobs))
			b := spec.Indices(len(jobs))
			if len(a) != len(b) {
				t.Fatalf("%s: nondeterministic selection", spec)
			}
			sel, idx := sched.ShardJobs(jobs, spec)
			if len(sel) != len(idx) || len(sel) != len(a) {
				t.Fatalf("%s: ShardJobs disagrees with Indices", spec)
			}
			for i, gi := range idx {
				if gi != a[i] {
					t.Fatalf("%s: ShardJobs indices diverge from Indices", spec)
				}
				if sel[i].Label() != jobs[gi].Label() {
					t.Fatalf("%s: job %d is %s, want %s", spec, i, sel[i].Label(), jobs[gi].Label())
				}
				seen[gi]++
			}
		}
		for gi, count := range seen {
			if count != 1 {
				t.Errorf("n=%d: job %d selected %d times", n, gi, count)
			}
		}
	}
}

// TestShardBalance asserts the round-robin stride never lets two shards
// differ by more than one job.
func TestShardBalance(t *testing.T) {
	t.Parallel()
	const total = 20
	for n := 1; n <= 7; n++ {
		min, max := total, 0
		for k := 1; k <= n; k++ {
			got := len(sched.ShardSpec{K: k, N: n}.Indices(total))
			if got < min {
				min = got
			}
			if got > max {
				max = got
			}
		}
		if max-min > 1 {
			t.Errorf("n=%d: shard sizes range %d..%d", n, min, max)
		}
	}
}
