package sched

import (
	"errors"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core/inject"
	"repro/internal/core/obs"
)

// Dispatcher schedules a suite at run granularity: every Job is
// expanded into its inject.ExecPlan run units, and the units flow
// through per-worker deques with work stealing, so a worker that
// drains its own queue rebalances onto whichever job still has runs
// outstanding — no static partition, no idle workers while an
// expensive campaign hogs one queue.
//
// Determinism is preserved by construction: each run writes its
// outcome into its plan-order slot, and each campaign's result is
// assembled exactly as the sequential engine would have, so the suite
// report is byte-identical no matter how the runs interleave.
type Dispatcher struct {
	// Workers is the worker-goroutine count — the maximum number of
	// concurrently executing plan/run units. Zero or negative means
	// GOMAXPROCS.
	Workers int
	// Engine is the injection-engine options applied to every job that
	// does not carry its own Job.Engine override.
	Engine inject.Options
	// OnEvent, when non-nil, receives progress events. Calls are
	// serialised.
	OnEvent func(Event)
	// Cache, when non-nil, makes the suite incremental. A job whose
	// source fingerprint (inject.SourceFingerprint) is cached replays
	// without even its clean run; otherwise the job plans, and a plan-
	// fingerprint hit replays without executing injection runs. Fresh
	// results are written back under both fingerprints. The Cache may
	// be local (store.Store) or a network transport (store.Client).
	Cache Cache
	// Metrics, when non-nil, receives fleet telemetry: run/plan/steal
	// counters, cache probes by tier and result, queue depth and run
	// latency. Purely observational — a nil registry and a populated one
	// yield byte-identical suite results.
	Metrics *obs.Registry
	// Tracer, when non-nil, records each plan and injection run as a
	// span tree (run ⊃ world/exec/compare, plus cache get/put spans) on
	// the executing worker's tid row.
	Tracer *obs.Tracer
}

// WorkerStats counts one dispatcher worker's activity.
type WorkerStats struct {
	// Plans is the number of campaigns this worker planned.
	Plans int
	// Runs is the number of injection runs this worker executed.
	Runs int
	// Steals counts tasks this worker took from another worker's deque.
	Steals int
}

// DispatchStats aggregates a dispatcher pass for the report's
// scheduling section. Totals are deterministic for a given suite;
// the per-worker split and steal count depend on runtime scheduling.
type DispatchStats struct {
	// Workers is the worker-goroutine count used.
	Workers int
	// Plans, Runs and Steals total the per-worker counters.
	Plans, Runs, Steals int
	// PerWorker holds each worker's counters, indexed by worker id.
	PerWorker []WorkerStats
}

// jobState is one job's in-flight scheduling state.
type jobState struct {
	seq  int // index in the full catalog (merge key in sourced mode)
	job  Job
	cr   *CampaignResult
	plan *inject.ExecPlan
	out  []inject.Injection

	// mu guards the progress counters; progress events are emitted
	// under it so a job's Done counts arrive in order.
	mu   sync.Mutex
	done int // runs completed
	left int // runs not yet completed
}

// dispatchState is the shared coordination state of one Run call.
type dispatchState struct {
	d   *Dispatcher
	res *SuiteResult

	// mu guards the deques, the remaining counter and the sourced-mode
	// fields; cond wakes idle workers when work is pushed and the
	// feeder when a claimed job completes.
	mu        sync.Mutex
	cond      *sync.Cond
	deques    []*deque
	remaining int // tasks queued or executing

	// Sourced mode: jobs arrive from a JobSource via the feeder
	// goroutine instead of being seeded up front.
	src      JobSource
	drained  bool        // the source will yield no more jobs
	inflight int         // jobs claimed from the source, not yet completed
	window   int         // claim-ahead bound on inflight
	claimed  []*jobState // every job this dispatcher claimed, in claim order

	stats  []WorkerStats // one slot per worker, owned by that worker
	emitMu sync.Mutex

	m dispatchMetrics
}

// dispatchMetrics is the dispatcher's metric handles, resolved once per
// Run/RunFrom pass so the hot path is a few atomic adds. Every handle
// is nil when the dispatcher has no registry; obs handles are nil-safe,
// so call sites record unconditionally.
type dispatchMetrics struct {
	plans, runs, steals *obs.Counter
	srcHit, srcMiss     *obs.Counter
	planHit, planMiss   *obs.Counter
	writeOK, writeErr   *obs.Counter
	queueDepth          *obs.Gauge
	runSeconds          *obs.Histogram

	phaseWorld, phaseExec, phaseCompare *obs.Histogram
}

// phaseFor maps an inject phase name to its histogram handle. Unknown
// names (future phases) return nil, which Observe tolerates.
func (m *dispatchMetrics) phaseFor(name string) *obs.Histogram {
	switch name {
	case "world":
		return m.phaseWorld
	case "exec":
		return m.phaseExec
	case "compare":
		return m.phaseCompare
	}
	return nil
}

// resolve looks up every dispatch metric in r (nil-safe).
func (m *dispatchMetrics) resolve(r *obs.Registry) {
	m.plans = r.Counter("eptest_plans_total", "Campaigns planned (clean run + fault-list enumeration).")
	m.runs = r.Counter("eptest_runs_executed_total", "Injection runs executed by this process.")
	m.steals = r.Counter("eptest_steals_total", "Tasks taken from another worker's deque.")
	const reqHelp = "Cache probes by tier and result."
	m.srcHit = r.Counter("eptest_cache_requests_total", reqHelp, "tier", "source", "result", "hit")
	m.srcMiss = r.Counter("eptest_cache_requests_total", reqHelp, "tier", "source", "result", "miss")
	m.planHit = r.Counter("eptest_cache_requests_total", reqHelp, "tier", "plan", "result", "hit")
	m.planMiss = r.Counter("eptest_cache_requests_total", reqHelp, "tier", "plan", "result", "miss")
	const wbHelp = "Cache write-backs by result."
	m.writeOK = r.Counter("eptest_cache_writebacks_total", wbHelp, "result", "ok")
	m.writeErr = r.Counter("eptest_cache_writebacks_total", wbHelp, "result", "error")
	m.queueDepth = r.Gauge("eptest_queue_depth", "Tasks queued or executing in the dispatcher.")
	m.runSeconds = r.Histogram("eptest_run_seconds", "Injection run duration.", obs.DefBuckets)
	const phaseHelp = "Injection run duration split by internal phase."
	m.phaseWorld = r.Histogram("eptest_run_phase_seconds", phaseHelp, obs.DefBuckets, "phase", "world")
	m.phaseExec = r.Histogram("eptest_run_phase_seconds", phaseHelp, obs.DefBuckets, "phase", "exec")
	m.phaseCompare = r.Histogram("eptest_run_phase_seconds", phaseHelp, obs.DefBuckets, "phase", "compare")
}

// Run dispatches the jobs and returns their results in job order.
func (d *Dispatcher) Run(jobs []Job) *SuiteResult {
	st := d.newState()
	st.drained = true // the whole catalog is seeded below; nothing more arrives
	st.res.Campaigns = make([]CampaignResult, len(jobs))

	// Seed the deques round-robin with one plan task per job; the
	// expansion into run units happens on whichever worker plans the
	// job, and stealing spreads those units from there.
	w := len(st.deques)
	for ji := range jobs {
		st.res.Campaigns[ji].Job = jobs[ji]
		js := &jobState{seq: ji, job: jobs[ji], cr: &st.res.Campaigns[ji]}
		st.deques[ji%w].push(task{js: js, run: planTask})
	}
	st.remaining = len(jobs)
	st.m.queueDepth.Set(int64(st.remaining))

	st.runWorkers()
	return st.res
}

// RunFrom dispatches jobs pulled incrementally from src: a feeder
// goroutine claims up to Workers jobs ahead of completion and workers
// schedule their runs exactly as in Run. The returned result holds the
// jobs this dispatcher claimed, in catalog (Seq) order.
func (d *Dispatcher) RunFrom(src JobSource) *SuiteResult {
	st := d.newState()
	st.src = src
	st.window = len(st.deques)

	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		st.feed()
	}()
	st.runWorkers()
	fwg.Wait()

	sort.SliceStable(st.claimed, func(i, j int) bool { return st.claimed[i].seq < st.claimed[j].seq })
	st.res.Campaigns = make([]CampaignResult, 0, len(st.claimed))
	for i, js := range st.claimed {
		// A source may re-issue a Seq this dispatcher already ran (a
		// coordinator requeues a job whose completion upload was
		// lost); the runs are deterministic, so keep one.
		if i > 0 && st.claimed[i-1].seq == js.seq {
			continue
		}
		st.res.Campaigns = append(st.res.Campaigns, *js.cr)
	}
	return st.res
}

// newState builds the shared dispatch state for one Run/RunFrom pass.
func (d *Dispatcher) newState() *dispatchState {
	w := d.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	st := &dispatchState{
		d:      d,
		res:    &SuiteResult{},
		deques: make([]*deque, w),
		stats:  make([]WorkerStats, w),
	}
	st.cond = sync.NewCond(&st.mu)
	for i := range st.deques {
		st.deques[i] = &deque{}
	}
	st.m.resolve(d.Metrics)
	for i := 0; i < w; i++ {
		d.Tracer.NameThread(i, "worker "+strconv.Itoa(i))
	}
	return st
}

// runWorkers runs the worker goroutines to completion and folds their
// counters into the result's dispatch stats.
func (st *dispatchState) runWorkers() {
	w := len(st.deques)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			st.worker(g)
		}(g)
	}
	wg.Wait()

	ds := DispatchStats{Workers: w, PerWorker: st.stats}
	for _, ws := range st.stats {
		ds.Plans += ws.Plans
		ds.Runs += ws.Runs
		ds.Steals += ws.Steals
	}
	st.res.Dispatch = ds
}

// feed claims jobs from the source and seeds their plan tasks, never
// holding more than window incomplete claims — enough to keep every
// worker busy without hoarding jobs another machine's dispatcher could
// be draining.
func (st *dispatchState) feed() {
	rr := 0
	for {
		st.mu.Lock()
		for st.inflight >= st.window {
			st.cond.Wait()
		}
		st.mu.Unlock()

		sj, ok := st.src.Next() // blocks; must run outside the lock
		if !ok {
			st.mu.Lock()
			st.drained = true
			st.mu.Unlock()
			st.cond.Broadcast()
			return
		}
		js := &jobState{seq: sj.Seq, job: sj.Job, cr: &CampaignResult{Job: sj.Job}}
		st.mu.Lock()
		st.claimed = append(st.claimed, js)
		st.deques[rr%len(st.deques)].push(task{js: js, run: planTask})
		rr++
		st.remaining++
		st.inflight++
		st.m.queueDepth.Set(int64(st.remaining))
		st.mu.Unlock()
		st.cond.Broadcast()
	}
}

// worker is one scheduling loop: pop own work, steal when dry, park
// when the whole dispatcher is dry, exit when the suite drains.
func (st *dispatchState) worker(w int) {
	for {
		t, stolen, ok := st.next(w)
		if !ok {
			return
		}
		if stolen {
			st.stats[w].Steals++
			st.m.steals.Inc()
		}
		st.execute(w, t)
		st.finish()
	}
}

// next returns the worker's next task: its own deque bottom first,
// then a steal sweep over the other deques starting at its right
// neighbour. With nothing queued it parks on cond until either new
// work is pushed or the suite drains (remaining == 0 with a drained
// source, the only not-ok return).
func (st *dispatchState) next(w int) (t task, stolen, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if t, ok := st.deques[w].pop(); ok {
			return t, false, true
		}
		for off := 1; off < len(st.deques); off++ {
			if t, ok := st.deques[(w+off)%len(st.deques)].steal(); ok {
				return t, true, true
			}
		}
		if st.remaining == 0 && st.drained {
			return task{}, false, false
		}
		st.cond.Wait()
	}
}

// finish retires one task; the last one wakes every parked worker so
// they can observe the drained suite and exit.
func (st *dispatchState) finish() {
	st.mu.Lock()
	st.remaining--
	st.m.queueDepth.Set(int64(st.remaining))
	drained := st.remaining == 0 && st.drained
	st.mu.Unlock()
	if drained {
		st.cond.Broadcast()
	}
}

// jobDone retires one job after its result is fully recorded: in
// sourced mode the outcome is reported back to the source and the
// feeder is woken to claim a replacement.
func (st *dispatchState) jobDone(js *jobState) {
	if st.src == nil {
		return
	}
	st.src.Complete(SourcedJob{Job: js.job, Seq: js.seq}, *js.cr)
	st.mu.Lock()
	st.inflight--
	st.mu.Unlock()
	st.cond.Broadcast()
}

// emit serialises event delivery.
func (st *dispatchState) emit(ev Event) {
	if st.d.OnEvent == nil {
		return
	}
	st.emitMu.Lock()
	defer st.emitMu.Unlock()
	st.d.OnEvent(ev)
}

// execute runs one task on worker w.
func (st *dispatchState) execute(w int, t task) {
	if t.run == planTask {
		st.stats[w].Plans++
		st.m.plans.Inc()
		st.planJob(w, t.js)
		return
	}
	st.stats[w].Runs++
	st.m.runs.Inc()
	st.runOne(w, t)
}

// cacheGet probes the cache at one tier, recording the probe's outcome
// as a counter sample and a span on the worker's row.
func (st *dispatchState) cacheGet(w int, tier, fp string, hitC, missC *obs.Counter) (*inject.Result, bool) {
	start := time.Now()
	hit, found := st.d.Cache.Get(fp)
	res, c := "miss", missC
	if found {
		res, c = "hit", hitC
	}
	c.Inc()
	st.d.Tracer.Span(w, "cache", "cache.get", start, time.Since(start),
		map[string]string{"tier": tier, "result": res})
	return hit, found
}

// cachePut writes one entry back, recording the outcome.
func (st *dispatchState) cachePut(w int, tier, fp, label string, r *inject.Result) error {
	start := time.Now()
	err := st.d.Cache.Put(fp, label, r)
	res := "ok"
	if err != nil {
		res = "error"
		st.m.writeErr.Inc()
	} else {
		st.m.writeOK.Inc()
	}
	st.d.Tracer.Span(w, "cache", "cache.put", start, time.Since(start),
		map[string]string{"tier": tier, "result": res})
	return err
}

// planJob materialises one job: source-fingerprint cache probe, clean
// run and fault-list enumeration, plan-fingerprint cache probe, and —
// on a miss — expansion of the plan's runs onto the worker's own
// deque, from where idle workers steal them.
func (st *dispatchState) planJob(w int, js *jobState) {
	job := js.job
	cr := js.cr
	c := job.Build()
	engine := job.engine(st.d.Engine)

	// Source-level probe: a hit replays the campaign without even the
	// clean run (the fingerprint pins the campaign source instead of
	// the trace; see inject.SourceFingerprint for the trust caveat).
	if st.d.Cache != nil {
		if fp, ok := inject.SourceFingerprint(c, engine, job.Name, job.Variant); ok {
			cr.SourceFingerprint = fp
			if hit, found := st.cacheGet(w, "source", fp, st.m.srcHit, st.m.srcMiss); found {
				n := len(hit.Injections)
				cr.Result = hit
				cr.Cached = true
				cr.CachedSource = true
				st.emit(Event{Kind: EventPlanned, Job: job, Total: n})
				st.emit(Event{Kind: EventDone, Job: job, Done: n, Total: n, Cached: true})
				st.jobDone(js)
				return
			}
		}
	}

	planStart := time.Now()
	plan, err := inject.PrepareWith(c, engine)
	st.d.Tracer.Span(w, "plan", "plan "+job.Label(), planStart, time.Since(planStart),
		map[string]string{"campaign": job.Label()})
	if err != nil {
		cr.Err = err
		st.emit(Event{Kind: EventDone, Job: job, Err: err})
		st.jobDone(js)
		return
	}
	n := plan.NumRuns()
	st.emit(Event{Kind: EventPlanned, Job: job, Total: n})

	if st.d.Cache != nil {
		fp := plan.Fingerprint(job.Name, job.Variant)
		cr.Fingerprint = fp
		if hit, found := st.cacheGet(w, "plan", fp, st.m.planHit, st.m.planMiss); found {
			cr.Result = hit
			cr.Cached = true
			// Upgrade stores written before source fingerprinting:
			// alias the entry under the source address so the next
			// run skips the clean run too.
			if cr.SourceFingerprint != "" {
				cr.CacheErr = st.cachePut(w, "source", cr.SourceFingerprint, job.Label(), hit)
			}
			st.emit(Event{Kind: EventDone, Job: job, Done: n, Total: n, Cached: true})
			st.jobDone(js)
			return
		}
	}

	js.plan = plan
	js.out = make([]inject.Injection, n)
	js.left = n
	if n == 0 {
		st.completeJob(w, js)
		return
	}
	// Push in reverse so the owner's LIFO pops execute in plan order;
	// thieves steal from the top and take the highest-index runs.
	st.mu.Lock()
	for i := n - 1; i >= 0; i-- {
		st.deques[w].push(task{js: js, run: i})
	}
	st.remaining += n
	st.m.queueDepth.Set(int64(st.remaining))
	st.mu.Unlock()
	st.cond.Broadcast()
}

// runOne executes a single injection run into its plan-order slot and
// completes the job when it was the last one outstanding. With a
// tracer attached the run renders as a span tree on the worker's row:
// the run span containing its world/exec/compare phase children. With
// a metrics registry attached the same phases feed the
// eptest_run_phase_seconds histogram, one series per phase label.
func (st *dispatchState) runOne(w int, t task) {
	js := t.js
	var phase inject.PhaseFunc
	if tr := st.d.Tracer; tr != nil || st.d.Metrics != nil {
		phase = func(name string, start time.Time, d time.Duration) {
			if tr != nil {
				tr.Span(w, "run", name, start, d, nil)
			}
			st.m.phaseFor(name).Observe(d.Seconds())
		}
	}
	start := time.Now()
	js.out[t.run] = js.plan.RunOneObserved(t.run, phase)
	d := time.Since(start)
	st.m.runSeconds.Observe(d.Seconds())
	if st.d.Tracer != nil {
		run := strconv.Itoa(t.run)
		st.d.Tracer.Span(w, "run", js.job.Label()+"#"+run, start, d, map[string]string{
			"campaign": js.job.Label(),
			"run":      run,
			"fault":    js.plan.Planned(t.run).FaultID,
		})
	}
	js.mu.Lock()
	js.done++
	st.emit(Event{Kind: EventProgress, Job: js.job, Done: js.done, Total: len(js.out)})
	js.left--
	last := js.left == 0
	js.mu.Unlock()
	if last {
		st.completeJob(w, js)
	}
}

// completeJob assembles the campaign result in plan order, writes it
// back to the cache (best effort, under both fingerprints — a failure
// on one address does not stop the other), and emits the done event.
func (st *dispatchState) completeJob(w int, js *jobState) {
	cr := js.cr
	shell := js.plan.Shell()
	shell.Injections = js.out
	cr.Result = &shell
	if st.d.Cache != nil {
		err := st.cachePut(w, "plan", cr.Fingerprint, js.job.Label(), &shell)
		if cr.SourceFingerprint != "" {
			err = errors.Join(err, st.cachePut(w, "source", cr.SourceFingerprint, js.job.Label(), &shell))
		}
		cr.CacheErr = err
	}
	n := len(js.out)
	st.emit(Event{Kind: EventDone, Job: js.job, Done: n, Total: n})
	st.jobDone(js)
}
