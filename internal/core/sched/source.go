package sched

import "sync"

// SourcedJob couples a Job with its position in the source's global
// catalog. Seq is the merge key: a worker's partial SuiteResult lists
// campaigns in Seq order, and a coordinator reassembles results from
// many workers at their Seq indices, so the merged report is identical
// to a single-process run over the full catalog.
type SourcedJob struct {
	Job Job
	// Seq is the job's index in the full, unsharded catalog.
	Seq int
}

// JobSource supplies a suite's jobs incrementally — the seam that lets
// the Dispatcher pull work from a remote claim queue (coord.Source)
// instead of a static pre-partitioned slice. The dispatcher calls Next
// from a single feeder goroutine and Complete from worker goroutines;
// implementations must tolerate Complete calls racing one another.
//
// Next may block (a remote source polls until a job frees up); it
// returns ok=false only when the source is permanently drained — no
// job will ever be returned again — which is what lets every
// dispatcher worker exit.
type JobSource interface {
	// Next blocks until another job is available and returns it, or
	// returns ok=false when the source is drained.
	Next() (sj SourcedJob, ok bool)
	// Complete reports one previously returned job's outcome.
	Complete(sj SourcedJob, cr CampaignResult)
}

// SliceSource adapts a static job list to the JobSource seam: jobs are
// handed out in catalog order, and Complete is a no-op (the dispatcher
// already collects results). It is safe for several dispatchers to
// share one SliceSource — each job is returned exactly once across all
// of them — which is the in-process model of the distributed
// coordinator's claim queue.
type SliceSource struct {
	mu   sync.Mutex
	jobs []Job
	next int
}

// NewSliceSource returns a source over the job list.
func NewSliceSource(jobs []Job) *SliceSource {
	return &SliceSource{jobs: jobs}
}

// Next returns the next unclaimed job.
func (s *SliceSource) Next() (SourcedJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.jobs) {
		return SourcedJob{}, false
	}
	sj := SourcedJob{Job: s.jobs[s.next], Seq: s.next}
	s.next++
	return sj, true
}

// Complete implements JobSource; the slice source keeps no outcomes.
func (s *SliceSource) Complete(SourcedJob, CampaignResult) {}

// RunSuiteFrom schedules jobs pulled from src through the same
// run-granularity work-stealing dispatcher as RunSuite. The returned
// SuiteResult holds only the jobs this dispatcher claimed, ordered by
// their catalog Seq, so a run over a SliceSource of the full catalog
// is identical to RunSuite over the same slice.
func RunSuiteFrom(src JobSource, opt SuiteOptions) *SuiteResult {
	d := &Dispatcher{
		Workers: opt.Workers,
		Engine:  opt.Engine,
		OnEvent: opt.OnEvent,
		Cache:   opt.Cache,
	}
	return d.RunFrom(src)
}
