package sched

import "repro/internal/core/inject"

// Cache is a campaign-result cache keyed by fingerprint. The
// Dispatcher consults it twice per job: before planning under the
// source fingerprint (inject.SourceFingerprint — a hit skips even the
// clean run) and after planning under the plan fingerprint
// (inject.(*ExecPlan).Fingerprint). A hit replays the stored result in
// place of the job's runs; a miss runs the job and writes the result
// back under both addresses.
//
// Implementations must be safe for concurrent use — the dispatcher
// calls them from every worker. This is the transport seam for
// distributed suites: store.Store implements it over a local
// directory, store.Client over HTTP against `eptest -serve-cache`
// (both satisfy store.Transport, which adds shard publication).
type Cache interface {
	// Get returns the result cached under the fingerprint, if any.
	Get(fingerprint string) (*inject.Result, bool)
	// Put stores a freshly computed result under its fingerprint.
	// label is the human-readable job label, kept for inspection.
	Put(fingerprint, label string, res *inject.Result) error
}
