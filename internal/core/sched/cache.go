package sched

import "repro/internal/core/inject"

// Cache is a campaign-result cache keyed by plan fingerprint
// (inject.(*ExecPlan).Fingerprint). RunSuite consults it after planning
// each job: a hit replays the stored result in place of the job's
// injection runs; a miss runs the job and writes the result back.
//
// Implementations must be safe for concurrent use — the suite calls
// them from one goroutine per job. The canonical implementation is
// store.Store.
type Cache interface {
	// Get returns the result cached under the fingerprint, if any.
	Get(fingerprint string) (*inject.Result, bool)
	// Put stores a freshly computed result under its fingerprint.
	// label is the human-readable job label, kept for inspection.
	Put(fingerprint, label string, res *inject.Result) error
}
