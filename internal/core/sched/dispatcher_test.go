package sched_test

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/core/inject"
	"repro/internal/core/report"
	"repro/internal/core/sched"
)

// skewedJobs builds a seeded, deliberately unbalanced job list: a few
// expensive campaigns (turnin plans 41 runs) scattered among many
// cheap ones (lpr-create-site plans 4), in an order derived from a
// small LCG so the mix is reproducible without being sorted. It is
// the workload where campaign-granularity scheduling stalls — one
// worker draws the heavy campaigns — and run-granularity stealing
// should not.
func skewedJobs(t testing.TB, seed uint32, n int) []sched.Job {
	t.Helper()
	heavy, err := apps.Lookup("turnin")
	if err != nil {
		t.Fatal(err)
	}
	light, err := apps.Lookup("lpr-create-site")
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]sched.Job, 0, n)
	state := seed
	for i := 0; i < n; i++ {
		state = state*1664525 + 1013904223 // Numerical Recipes LCG
		spec, variant := light, "vulnerable"
		if state%4 == 0 {
			spec = heavy
		}
		if state%2 == 0 {
			variant = "fixed"
		}
		build := spec.Vulnerable
		if variant == "fixed" {
			build = spec.Fixed
		}
		jobs = append(jobs, sched.Job{Name: spec.Name, Variant: variant, Build: build})
	}
	return jobs
}

// sequentialSuite is the reference: every job through the strictly
// sequential engine, assembled into the same SuiteResult shape.
func sequentialSuite(t testing.TB, jobs []sched.Job) *sched.SuiteResult {
	t.Helper()
	sr := &sched.SuiteResult{Campaigns: make([]sched.CampaignResult, len(jobs))}
	for i, job := range jobs {
		res, err := inject.Run(job.Build())
		if err != nil {
			t.Fatalf("%s: %v", job.Label(), err)
		}
		sr.Campaigns[i] = sched.CampaignResult{Job: job, Result: res}
	}
	return sr
}

// TestDispatcherDeterministicOnSkewedSuite is the tentpole acceptance
// test: across several seeds of a skewed-cost catalog, the
// work-stealing dispatcher's rendered suite report — and every
// underlying injection — is byte-identical to the sequential engine's.
// Under -race this doubles as the dispatcher's data-race check.
func TestDispatcherDeterministicOnSkewedSuite(t *testing.T) {
	t.Parallel()
	for _, seed := range []uint32{1, 7, 42} {
		seed := seed
		t.Run(string(rune('a'+seed%26)), func(t *testing.T) {
			t.Parallel()
			jobs := skewedJobs(t, seed, 12)
			want := sequentialSuite(t, jobs)
			got := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 8})
			if failed := got.Failed(); len(failed) != 0 {
				t.Fatalf("dispatcher failed campaigns: %v", failed)
			}
			if w, g := report.SuiteRun(want), report.SuiteRun(got); w != g {
				t.Errorf("suite report diverges:\n--- sequential ---\n%s--- dispatcher ---\n%s", w, g)
			}
			for i := range jobs {
				if !reflect.DeepEqual(want.Campaigns[i].Result.Injections, got.Campaigns[i].Result.Injections) {
					t.Errorf("%s: injections diverge from sequential", jobs[i].Label())
				}
			}
		})
	}
}

// TestDispatcherFullCatalogByteIdentical pins the acceptance criterion
// on the real workload: the full apps.Catalog() suite, work-stealing
// vs sequential, byte-identical rendered reports (summary table and
// clustered findings).
func TestDispatcherFullCatalogByteIdentical(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()
	want := sequentialSuite(t, jobs)
	got := sched.RunSuite(jobs, sched.SuiteOptions{Workers: runtime.GOMAXPROCS(0)})
	if w, g := report.SuiteRun(want), report.SuiteRun(got); w != g {
		t.Errorf("summary table diverges:\n--- sequential ---\n%s--- dispatcher ---\n%s", w, g)
	}
	if w, g := report.Clusters(sched.ClusterSuite(want)), report.Clusters(sched.ClusterSuite(got)); w != g {
		t.Errorf("clustered findings diverge:\n--- sequential ---\n%s--- dispatcher ---\n%s", w, g)
	}
}

// TestDispatcherStats checks the deterministic half of the scheduling
// stats — totals and per-worker accounting — and that stealing
// actually occurs when a single expensive campaign lands on one deque
// while other workers sit idle.
func TestDispatcherStats(t *testing.T) {
	t.Parallel()
	spec, err := apps.Lookup("turnin")
	if err != nil {
		t.Fatal(err)
	}
	job := sched.Job{Name: spec.Name, Variant: "vulnerable", Build: spec.Vulnerable}

	stole := false
	for attempt := 0; attempt < 5 && !stole; attempt++ {
		sr := sched.RunSuite([]sched.Job{job}, sched.SuiteOptions{Workers: 8})
		ds := sr.Dispatch
		if ds.Workers != 8 || len(ds.PerWorker) != 8 {
			t.Fatalf("stats workers = %d/%d, want 8", ds.Workers, len(ds.PerWorker))
		}
		if ds.Plans != 1 {
			t.Fatalf("stats plans = %d, want 1", ds.Plans)
		}
		if want := len(sr.Campaigns[0].Result.Injections); ds.Runs != want {
			t.Fatalf("stats runs = %d, want %d", ds.Runs, want)
		}
		var plans, runs, steals int
		for _, ws := range ds.PerWorker {
			plans += ws.Plans
			runs += ws.Runs
			steals += ws.Steals
		}
		if plans != ds.Plans || runs != ds.Runs || steals != ds.Steals {
			t.Fatalf("per-worker stats %d/%d/%d do not sum to totals %d/%d/%d",
				plans, runs, steals, ds.Plans, ds.Runs, ds.Steals)
		}
		stole = ds.Steals > 0
	}
	// All 41 runs start on the planning worker's deque; with 7 idle
	// workers, at least one steal is all but certain on every attempt.
	if !stole {
		t.Error("no steals across 5 runs of a single 41-run campaign on 8 workers")
	}
}

// TestDispatcherMoreWorkersThanWork exercises the park/steal/exit
// protocol when most workers never find a task.
func TestDispatcherMoreWorkersThanWork(t *testing.T) {
	t.Parallel()
	spec, err := apps.Lookup("lpr-create-site")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []sched.Job{{Name: spec.Name, Variant: "vulnerable", Build: spec.Vulnerable}}
	sr := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 64})
	if len(sr.Failed()) != 0 {
		t.Fatalf("failed: %v", sr.Failed())
	}
	if m := sr.Campaigns[0].Result.Metric(); m.FaultsInjected != 4 || m.Violations() != 4 {
		t.Errorf("lpr create site = %d injected / %d violations, want 4/4", m.FaultsInjected, m.Violations())
	}
}

// TestDispatcherEmptySuite pins the zero-job edge: workers start,
// observe a drained dispatcher, and exit.
func TestDispatcherEmptySuite(t *testing.T) {
	t.Parallel()
	sr := sched.RunSuite(nil, sched.SuiteOptions{Workers: 4})
	if len(sr.Campaigns) != 0 || sr.Dispatch.Runs != 0 || sr.Dispatch.Plans != 0 {
		t.Errorf("empty suite = %+v", sr)
	}
}
