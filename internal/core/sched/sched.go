// Package sched executes fault-injection campaigns concurrently. The
// methodology of Section 3.3 makes every injection run independent —
// each builds a fresh world through the campaign Factory, perturbs it,
// and observes the oracle — so work can be scheduled at run
// granularity: the suite Dispatcher expands every job into its
// inject.ExecPlan run units and feeds them through per-worker deques
// with work stealing, so workers rebalance onto whichever campaign
// still has runs outstanding instead of idling behind a static
// partition. Results are deterministic: each run's outcome lands in
// its plan-order slot, so the assembled Result — and every rendered
// report — is byte-identical to the sequential engine's.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core/inject"
)

// Config parameterises the campaign-level worker pool.
type Config struct {
	// Workers is the number of concurrent injection runs. Zero or
	// negative means GOMAXPROCS.
	Workers int
}

// workers normalises the worker count against the plan size.
func (cfg Config) workers(runs int) int {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > runs {
		w = runs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunCampaign executes the campaign with default engine options across
// the configured worker pool.
func RunCampaign(c inject.Campaign, cfg Config) (*inject.Result, error) {
	return RunCampaignWith(c, inject.Options{}, cfg)
}

// RunCampaignWith plans the campaign once, then executes the planned
// injections across cfg.Workers goroutines. The returned Result lists
// injections in plan order, bit-identical to inject.RunWith.
func RunCampaignWith(c inject.Campaign, opt inject.Options, cfg Config) (*inject.Result, error) {
	plan, err := inject.PrepareWith(c, opt)
	if err != nil {
		return nil, err
	}
	res := plan.Shell()
	res.Injections = executePlan(plan, cfg.workers(plan.NumRuns()))
	return &res, nil
}

// executePlan fans the plan's runs across w workers and returns the
// outcomes in plan order.
func executePlan(plan *inject.ExecPlan, w int) []inject.Injection {
	n := plan.NumRuns()
	out := make([]inject.Injection, n)
	if n == 0 {
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = plan.RunOne(i)
			}
		}()
	}
	wg.Wait()
	return out
}
