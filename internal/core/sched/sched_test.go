package sched_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core/inject"
	"repro/internal/core/sched"
)

// TestParallelMatchesSequential asserts the worker-pool executor's
// Result is identical to the sequential engine's for every catalog
// campaign, in both variants.
func TestParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	for _, job := range apps.SuiteJobs() {
		job := job
		t.Run(job.Label(), func(t *testing.T) {
			t.Parallel()
			seq, err := inject.Run(job.Build())
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := sched.RunCampaign(job.Build(), sched.Config{Workers: 8})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !reflect.DeepEqual(seq.Injections, par.Injections) {
				t.Errorf("injections diverge between sequential and parallel runs")
			}
			if seq.Metric() != par.Metric() {
				t.Errorf("metric diverges: sequential %+v, parallel %+v", seq.Metric(), par.Metric())
			}
			if !reflect.DeepEqual(seq.TotalSites, par.TotalSites) ||
				!reflect.DeepEqual(seq.PerturbedSites, par.PerturbedSites) {
				t.Errorf("site lists diverge")
			}
		})
	}
}

// TestWorkerPoolStress hammers one campaign with far more workers than
// runs; under -race this doubles as the engine's data-race check.
func TestWorkerPoolStress(t *testing.T) {
	t.Parallel()
	spec, err := apps.Lookup("turnin")
	if err != nil {
		t.Fatal(err)
	}
	want, err := inject.Run(spec.Vulnerable())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for trial := 0; trial < 4; trial++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := sched.RunCampaign(spec.Vulnerable(), sched.Config{Workers: 64})
			if err != nil {
				t.Errorf("parallel: %v", err)
				return
			}
			if !reflect.DeepEqual(want.Injections, got.Injections) {
				t.Errorf("stress run diverged from sequential result")
			}
		}()
	}
	wg.Wait()
}

// TestDefaultWorkerCount checks the zero Config still runs everything.
func TestDefaultWorkerCount(t *testing.T) {
	t.Parallel()
	spec, err := apps.Lookup("lpr-create-site")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.RunCampaign(spec.Vulnerable(), sched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Metric(); m.FaultsInjected != 4 || m.Violations() != 4 {
		t.Errorf("lpr create site = %d injected / %d violations, want 4/4",
			m.FaultsInjected, m.Violations())
	}
}

// TestRunCampaignPlanError propagates planning failures.
func TestRunCampaignPlanError(t *testing.T) {
	t.Parallel()
	if _, err := sched.RunCampaign(inject.Campaign{Name: "empty"}, sched.Config{Workers: 4}); err == nil {
		t.Fatal("campaign without a world factory should fail to plan")
	}
}

// TestSuiteMatchesSequential runs the full catalog as one suite and
// checks every per-campaign metric against the sequential engine.
func TestSuiteMatchesSequential(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()
	sr := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 8})
	if len(sr.Campaigns) != len(jobs) {
		t.Fatalf("suite returned %d campaigns, want %d", len(sr.Campaigns), len(jobs))
	}
	if failed := sr.Failed(); len(failed) != 0 {
		t.Fatalf("suite campaigns failed: %v", failed)
	}
	for i, c := range sr.Campaigns {
		if c.Job.Label() != jobs[i].Label() {
			t.Fatalf("suite result %d is %s, want job order preserved (%s)", i, c.Job.Label(), jobs[i].Label())
		}
		seq, err := inject.Run(jobs[i].Build())
		if err != nil {
			t.Fatalf("%s sequential: %v", c.Job.Label(), err)
		}
		if seq.Metric() != c.Result.Metric() {
			t.Errorf("%s: suite metric %+v != sequential %+v", c.Job.Label(), c.Result.Metric(), seq.Metric())
		}
		if !reflect.DeepEqual(seq.Injections, c.Result.Injections) {
			t.Errorf("%s: suite injections diverge from sequential", c.Job.Label())
		}
	}
}

// TestSuiteEvents checks the per-job event protocol: one planned event,
// monotonic progress, one done event, with consistent totals.
func TestSuiteEvents(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()[:4]
	type state struct {
		planned, done bool
		total, seen   int
	}
	states := map[string]*state{}
	sr := sched.RunSuite(jobs, sched.SuiteOptions{
		Workers: 4,
		OnEvent: func(ev sched.Event) {
			s := states[ev.Job.Label()]
			if s == nil {
				s = &state{}
				states[ev.Job.Label()] = s
			}
			switch ev.Kind {
			case sched.EventPlanned:
				if s.planned {
					t.Errorf("%s: duplicate planned event", ev.Job.Label())
				}
				s.planned = true
				s.total = ev.Total
			case sched.EventProgress:
				if !s.planned || s.done {
					t.Errorf("%s: progress outside planned..done window", ev.Job.Label())
				}
				if ev.Done != s.seen+1 {
					t.Errorf("%s: progress jumped %d -> %d", ev.Job.Label(), s.seen, ev.Done)
				}
				s.seen = ev.Done
			case sched.EventDone:
				if s.done {
					t.Errorf("%s: duplicate done event", ev.Job.Label())
				}
				s.done = true
				if ev.Err == nil && s.seen != s.total {
					t.Errorf("%s: done after %d/%d progress events", ev.Job.Label(), s.seen, s.total)
				}
			}
		},
	})
	if len(sr.Failed()) != 0 {
		t.Fatalf("failed campaigns: %v", sr.Failed())
	}
	if len(states) != len(jobs) {
		t.Fatalf("events seen for %d jobs, want %d", len(states), len(jobs))
	}
	for label, s := range states {
		if !s.planned || !s.done {
			t.Errorf("%s: incomplete event sequence (planned=%v done=%v)", label, s.planned, s.done)
		}
	}
}

// TestSuiteReportsPlanFailures keeps scheduling the remaining jobs when
// one campaign cannot plan.
func TestSuiteReportsPlanFailures(t *testing.T) {
	t.Parallel()
	good, err := apps.Lookup("lpr-create-site")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []sched.Job{
		{Name: "broken", Variant: "vulnerable", Build: func() inject.Campaign { return inject.Campaign{Name: "broken"} }},
		{Name: good.Name, Variant: "vulnerable", Build: good.Vulnerable},
	}
	sr := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 2})
	if len(sr.Failed()) != 1 || sr.Failed()[0].Job.Name != "broken" {
		t.Fatalf("failed = %v, want exactly the broken job", sr.Failed())
	}
	if sr.Campaigns[1].Err != nil || sr.Campaigns[1].Result == nil {
		t.Fatalf("good job did not complete: %+v", sr.Campaigns[1])
	}
}
