package sched_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core/inject"
	"repro/internal/core/sched"
)

// violationCount sums the individual policy violations in a result —
// the number of findings clustering must preserve.
func violationCount(res *inject.Result) int {
	n := 0
	for _, in := range res.Violations() {
		n += len(in.Violations)
	}
	return n
}

// TestClusterResultPreservesFindings clusters one campaign and checks
// no violation is dropped or duplicated.
func TestClusterResultPreservesFindings(t *testing.T) {
	t.Parallel()
	spec, err := apps.Lookup("turnin")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inject.Run(spec.Vulnerable())
	if err != nil {
		t.Fatal(err)
	}
	clusters := sched.ClusterResult(res)
	if len(clusters) == 0 {
		t.Fatal("vulnerable turnin produced no clusters")
	}
	total := 0
	for _, cl := range clusters {
		if len(cl.Findings) == 0 {
			t.Errorf("empty cluster %s", cl.Sig)
		}
		total += len(cl.Findings)
		for _, f := range cl.Findings {
			if f.Campaign != "turnin" {
				t.Errorf("finding credited to %q, want turnin", f.Campaign)
			}
		}
	}
	if want := violationCount(res); total != want {
		t.Errorf("clusters hold %d findings, result has %d violations", total, want)
	}
	if len(clusters) >= violationCount(res) {
		t.Errorf("clustering did not deduplicate: %d clusters for %d findings",
			len(clusters), violationCount(res))
	}
}

// TestClusterSuiteOrdering checks suite-level clusters merge findings
// across campaigns and arrive largest-first.
func TestClusterSuiteOrdering(t *testing.T) {
	t.Parallel()
	sr := sched.RunSuite(apps.SuiteJobs(), sched.SuiteOptions{Workers: 8})
	if len(sr.Failed()) != 0 {
		t.Fatalf("failed campaigns: %v", sr.Failed())
	}
	clusters := sched.ClusterSuite(sr)
	if len(clusters) == 0 {
		t.Fatal("catalog suite produced no clusters")
	}
	wantTotal := 0
	for _, c := range sr.Campaigns {
		wantTotal += violationCount(c.Result)
	}
	total := 0
	crossCampaign := false
	for i, cl := range clusters {
		total += len(cl.Findings)
		if i > 0 && len(cl.Findings) > len(clusters[i-1].Findings) {
			t.Errorf("clusters not sorted by size: %d before %d", len(clusters[i-1].Findings), len(cl.Findings))
		}
		if len(cl.Campaigns()) > 1 {
			crossCampaign = true
		}
	}
	if total != wantTotal {
		t.Errorf("suite clusters hold %d findings, campaigns report %d", total, wantTotal)
	}
	if !crossCampaign {
		t.Error("no cluster spans multiple campaigns; suite-level dedup is vacuous")
	}
}

// TestClusterSkipsFailedCampaigns tolerates jobs that errored.
func TestClusterSkipsFailedCampaigns(t *testing.T) {
	t.Parallel()
	sr := &sched.SuiteResult{Campaigns: []sched.CampaignResult{
		{Job: sched.Job{Name: "broken"}, Err: inject.ErrNoWorld},
	}}
	if cl := sched.ClusterSuite(sr); len(cl) != 0 {
		t.Fatalf("clusters from failed campaigns: %v", cl)
	}
}
