package sched

import (
	"testing"

	"repro/internal/apps/lpr"
	"repro/internal/core/inject"
)

// testCampaignJob returns a real, fast campaign job (the lpr case
// study) for scheduling tests inside the package.
func testCampaignJob(t *testing.T) Job {
	t.Helper()
	return Job{
		Name:    "lpr",
		Variant: "vulnerable",
		Build:   func() inject.Campaign { return lpr.Campaign(lpr.Vulnerable) },
	}
}

func namedJobs(labels ...[2]string) []Job {
	jobs := make([]Job, len(labels))
	for i, l := range labels {
		jobs[i] = Job{Name: l[0], Variant: l[1]}
	}
	return jobs
}

func TestFilterJobs(t *testing.T) {
	t.Parallel()
	jobs := namedJobs(
		[2]string{"lpr", "vulnerable"},
		[2]string{"lpr", "fixed"},
		[2]string{"lpr", "vulnerable+nodedup"},
		[2]string{"lpr-create-site", "vulnerable"},
		[2]string{"turnin", "vulnerable+nodedup+s4"},
	)
	cases := []struct {
		pattern string
		want    []string
	}{
		{"", []string{"lpr/vulnerable", "lpr/fixed", "lpr/vulnerable+nodedup", "lpr-create-site/vulnerable", "turnin/vulnerable+nodedup+s4"}},
		{"lpr/*", []string{"lpr/vulnerable", "lpr/fixed", "lpr/vulnerable+nodedup"}},
		{"lpr*", []string{"lpr/vulnerable", "lpr/fixed", "lpr/vulnerable+nodedup", "lpr-create-site/vulnerable"}},
		{"*+nodedup*", []string{"lpr/vulnerable+nodedup", "turnin/vulnerable+nodedup+s4"}},
		{"*/fixed", []string{"lpr/fixed"}},
		{"turnin/vulnerable+nodedup+s4", []string{"turnin/vulnerable+nodedup+s4"}},
		{"lpr/?ixed", []string{"lpr/fixed"}},
		{"nomatch*", nil},
	}
	for _, tc := range cases {
		got := FilterJobs(jobs, tc.pattern)
		var labels []string
		for _, j := range got {
			labels = append(labels, j.Label())
		}
		if len(labels) != len(tc.want) {
			t.Errorf("FilterJobs(%q) = %v, want %v", tc.pattern, labels, tc.want)
			continue
		}
		for i := range labels {
			if labels[i] != tc.want[i] {
				t.Errorf("FilterJobs(%q) = %v, want %v", tc.pattern, labels, tc.want)
				break
			}
		}
	}
}

func TestGlobMatch(t *testing.T) {
	t.Parallel()
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "anything/at+all", true},
		{"", "", true},
		{"", "x", false},
		{"a*b*c", "axxbxxc", true},
		{"a*b*c", "axxcxxb", false},
		{"*abc", "abc", true},
		{"abc*", "abc", true},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"**x", "yyyx", true},
		// Backtracking stress: many stars against a near-miss.
		{"*a*a*a*a*b", "aaaaaaaaaaaaaaaaaaac", false},
	}
	for _, tc := range cases {
		if got := globMatch(tc.pattern, tc.s); got != tc.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", tc.pattern, tc.s, got, tc.want)
		}
	}
}

// TestJobEngineOverride verifies the dispatcher applies a per-job
// engine override: the same campaign scheduled with and without
// NoObjectDedup must plan different run counts, and the override must
// not leak into sibling jobs that inherit the suite default.
func TestJobEngineOverride(t *testing.T) {
	t.Parallel()
	base := testCampaignJob(t)
	nodedup := base
	nodedup.Variant = "vulnerable+nodedup"
	nodedup.Engine = &inject.Options{NoObjectDedup: true}

	sr := RunSuite([]Job{base, nodedup}, SuiteOptions{Workers: 2})
	if len(sr.Failed()) != 0 {
		t.Fatalf("suite failed: %v", sr.Failed())
	}
	nBase := len(sr.Campaigns[0].Result.Injections)
	nSwept := len(sr.Campaigns[1].Result.Injections)
	if nSwept <= nBase {
		t.Fatalf("nodedup override planned %d runs, base %d; override not applied", nSwept, nBase)
	}

	// The base job must match a plain sequential run under default
	// options — the override is per-job, not suite-wide.
	want, err := inject.RunWith(base.Build(), inject.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nBase != len(want.Injections) {
		t.Fatalf("base job planned %d runs, sequential default plans %d", nBase, len(want.Injections))
	}
}
