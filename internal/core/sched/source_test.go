package sched_test

import (
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core/report"
	"repro/internal/core/sched"
)

// TestRunSuiteFromSliceSourceByteIdentical pins the job-source seam:
// pulling the catalog through a SliceSource renders the exact suite
// report (and clusters) a static RunSuite produces — the sourced
// dispatcher is a pure scheduling change.
func TestRunSuiteFromSliceSourceByteIdentical(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()
	want := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4})
	got := sched.RunSuiteFrom(sched.NewSliceSource(jobs), sched.SuiteOptions{Workers: 4})
	if len(got.Campaigns) != len(want.Campaigns) {
		t.Fatalf("sourced run has %d campaigns, want %d", len(got.Campaigns), len(want.Campaigns))
	}
	if gr, wr := report.SuiteRun(got), report.SuiteRun(want); gr != wr {
		t.Errorf("sourced suite report differs:\n--- static ---\n%s\n--- sourced ---\n%s", wr, gr)
	}
	if gc, wc := report.Clusters(sched.ClusterSuite(got)), report.Clusters(sched.ClusterSuite(want)); gc != wc {
		t.Errorf("sourced cluster report differs")
	}
}

// countingSource wraps a SliceSource and records completions, checking
// each job is completed exactly once with a usable result.
type countingSource struct {
	*sched.SliceSource
	mu        sync.Mutex
	completed map[int]int
}

func (c *countingSource) Complete(sj sched.SourcedJob, cr sched.CampaignResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.completed[sj.Seq]++
}

// TestRunSuiteFromReportsEveryCompletion pins the Complete half of the
// seam: every claimed job is reported back exactly once, including
// failed and zero-run jobs.
func TestRunSuiteFromReportsEveryCompletion(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()
	src := &countingSource{SliceSource: sched.NewSliceSource(jobs), completed: map[int]int{}}
	sched.RunSuiteFrom(src, sched.SuiteOptions{Workers: 8})
	if len(src.completed) != len(jobs) {
		t.Fatalf("%d completions for %d jobs", len(src.completed), len(jobs))
	}
	for seq, n := range src.completed {
		if n != 1 {
			t.Errorf("job %d completed %d times", seq, n)
		}
	}
}

// TestRunSuiteFromSharedSourceUnion runs several dispatchers over one
// shared SliceSource — the in-process model of many machines draining
// one coordinator — and checks the union of their partial results is
// exactly the catalog, each campaign claimed once, each partial result
// in catalog order.
func TestRunSuiteFromSharedSourceUnion(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()
	src := sched.NewSliceSource(jobs)

	const dispatchers = 3
	results := make([]*sched.SuiteResult, dispatchers)
	var wg sync.WaitGroup
	for d := 0; d < dispatchers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			results[d] = sched.RunSuiteFrom(src, sched.SuiteOptions{Workers: 2})
		}(d)
	}
	wg.Wait()

	seen := map[string]int{}
	total := 0
	for _, sr := range results {
		lastSeq := -1
		for _, c := range sr.Campaigns {
			seen[c.Job.Label()]++
			total++
			if c.Result == nil && c.Err == nil {
				t.Errorf("%s has neither result nor error", c.Job.Label())
			}
			// Partial results are ordered by catalog position.
			seq := indexOf(t, jobs, c.Job.Label())
			if seq <= lastSeq {
				t.Errorf("partial result out of catalog order at %s", c.Job.Label())
			}
			lastSeq = seq
		}
	}
	if total != len(jobs) {
		t.Fatalf("dispatchers ran %d campaigns total, want %d", total, len(jobs))
	}
	for label, n := range seen {
		if n != 1 {
			t.Errorf("%s claimed %d times", label, n)
		}
	}
}

// indexOf finds a label's catalog position.
func indexOf(t *testing.T, jobs []sched.Job, label string) int {
	t.Helper()
	for i, j := range jobs {
		if j.Label() == label {
			return i
		}
	}
	t.Fatalf("label %q not in catalog", label)
	return -1
}
