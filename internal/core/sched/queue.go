package sched

// task is one unit of dispatcher work: planning a job (run < 0, the
// clean run plus fault-list enumeration) or executing a single
// injection run of an already-planned job.
type task struct {
	js  *jobState
	run int
}

// planTask marks a task as a job-planning unit.
const planTask = -1

// deque is one worker's double-ended work queue. The owning worker
// pushes and pops at the bottom (LIFO, so a job's runs execute with
// the plan still hot), thieves steal from the top (FIFO, so a steal
// takes the oldest — typically largest remaining — slice of work).
//
// The dispatcher guards every deque with its single coordination
// mutex rather than per-deque locks: tasks here are whole simulated
// program executions, milliseconds each, so queue-op contention is
// noise and the one-lock design keeps the idle/termination protocol
// (see dispatchState.next) free of lost-wakeup races.
type deque struct {
	items []task
}

// push adds a task at the bottom.
func (d *deque) push(t task) { d.items = append(d.items, t) }

// pop removes the bottom task (owner side).
func (d *deque) pop() (task, bool) {
	n := len(d.items)
	if n == 0 {
		return task{}, false
	}
	t := d.items[n-1]
	d.items[n-1] = task{} // release the jobState reference
	d.items = d.items[:n-1]
	return t, true
}

// steal removes the top task (thief side).
func (d *deque) steal() (task, bool) {
	if len(d.items) == 0 {
		return task{}, false
	}
	t := d.items[0]
	d.items[0] = task{}
	d.items = d.items[1:]
	return t, true
}
