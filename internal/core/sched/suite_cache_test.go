package sched_test

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/apps"
	"repro/internal/core/inject"
	"repro/internal/core/sched"
	"repro/internal/sim/kernel"
)

// memCache is an in-memory sched.Cache for exercising the suite's cache
// protocol without touching disk.
type memCache struct {
	mu       sync.Mutex
	entries  map[string]*inject.Result
	gets     int
	puts     int
	putErr   error
	lastPuts map[string]string // fingerprint -> label
}

func newMemCache() *memCache {
	return &memCache{entries: map[string]*inject.Result{}, lastPuts: map[string]string{}}
}

func (m *memCache) Get(fp string) (*inject.Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	r, ok := m.entries[fp]
	return r, ok
}

func (m *memCache) Put(fp, label string, res *inject.Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	if m.putErr != nil {
		return m.putErr
	}
	m.entries[fp] = res
	m.lastPuts[fp] = label
	return nil
}

// TestSuiteCacheColdThenWarm drives the incremental-suite contract: a
// cold run misses everywhere and writes everything back under both the
// plan and the source fingerprint; an immediate re-run hits everywhere
// at the source level and reproduces the identical campaign results
// without executing a single injection — or even a clean run.
func TestSuiteCacheColdThenWarm(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()[:4]
	cache := newMemCache()

	cold := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4, Cache: cache})
	if hits := cold.CacheHits(); hits != 0 {
		t.Fatalf("cold run reported %d cache hits", hits)
	}
	// One plan-fingerprint entry plus one source-fingerprint alias per job.
	if cache.puts != 2*len(jobs) {
		t.Fatalf("cold run wrote %d entries, want %d", cache.puts, 2*len(jobs))
	}
	for _, c := range cold.Campaigns {
		if c.Fingerprint == "" {
			t.Errorf("%s: no plan fingerprint recorded", c.Job.Label())
		}
		if c.SourceFingerprint == "" {
			t.Errorf("%s: no source fingerprint recorded (catalog jobs declare a Source)", c.Job.Label())
		}
		if c.CacheErr != nil {
			t.Errorf("%s: cache write-back failed: %v", c.Job.Label(), c.CacheErr)
		}
		for _, fp := range []string{c.Fingerprint, c.SourceFingerprint} {
			if got := cache.lastPuts[fp]; got != c.Job.Label() {
				t.Errorf("entry for %s labelled %q", c.Job.Label(), got)
			}
		}
	}

	var events []sched.Event
	warm := sched.RunSuite(jobs, sched.SuiteOptions{
		Workers: 4,
		Cache:   cache,
		OnEvent: func(ev sched.Event) { events = append(events, ev) },
	})
	if hits := warm.CacheHits(); hits != len(jobs) {
		t.Fatalf("warm run reported %d/%d cache hits", hits, len(jobs))
	}
	for i := range warm.Campaigns {
		w, c := warm.Campaigns[i], cold.Campaigns[i]
		if !w.Cached {
			t.Errorf("%s: not marked cached", w.Job.Label())
		}
		if !w.CachedSource {
			t.Errorf("%s: warm hit did not replay at the source level", w.Job.Label())
		}
		if w.Fingerprint != "" {
			t.Errorf("%s: source-level hit still computed a plan fingerprint (ran the clean run?)", w.Job.Label())
		}
		if w.SourceFingerprint != c.SourceFingerprint {
			t.Errorf("%s: source fingerprint changed between runs", w.Job.Label())
		}
		if !reflect.DeepEqual(w.Result.Injections, c.Result.Injections) {
			t.Errorf("%s: replayed injections diverge from the cold run", w.Job.Label())
		}
		if w.Result.Metric() != c.Result.Metric() {
			t.Errorf("%s: replayed metric diverges", w.Job.Label())
		}
	}
	// Warm events: one planned and one cached done per job, no progress.
	cachedDones := 0
	for _, ev := range events {
		switch ev.Kind {
		case sched.EventProgress:
			t.Errorf("warm run emitted a progress event for %s", ev.Job.Label())
		case sched.EventDone:
			if !ev.Cached {
				t.Errorf("warm EventDone for %s not marked cached", ev.Job.Label())
			}
			if ev.Done != ev.Total || ev.Total == 0 {
				t.Errorf("warm EventDone for %s counts %d/%d", ev.Job.Label(), ev.Done, ev.Total)
			}
			cachedDones++
		}
	}
	if cachedDones != len(jobs) {
		t.Errorf("warm run emitted %d done events, want %d", cachedDones, len(jobs))
	}
}

// TestSuiteCacheWriteBackFailureIsBestEffort asserts a failing cache
// never fails the suite — the run completes and the error is surfaced
// on the campaign result.
func TestSuiteCacheWriteBackFailureIsBestEffort(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()[:1]
	cache := newMemCache()
	cache.putErr = errTest
	sr := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 2, Cache: cache})
	c := sr.Campaigns[0]
	if c.Err != nil || c.Result == nil {
		t.Fatalf("campaign failed under a broken cache: %v", c.Err)
	}
	// Both fingerprint addresses are attempted and both failures
	// surface in the joined error.
	if !errors.Is(c.CacheErr, errTest) {
		t.Errorf("CacheErr = %v, want the put error", c.CacheErr)
	}
}

// TestSuiteCacheSourceHitSkipsCleanRun pins the whole point of source
// fingerprinting: on a warm cache the campaign's world factory is never
// invoked — the clean run is skipped along with the injection runs.
func TestSuiteCacheSourceHitSkipsCleanRun(t *testing.T) {
	t.Parallel()
	spec, err := apps.Lookup("lpr-create-site")
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	job := sched.Job{Name: spec.Name, Variant: "vulnerable", Build: func() inject.Campaign {
		c := spec.Vulnerable()
		c.Source = "lpr-create-site@test/vulnerable"
		world := c.World
		c.World = func() (*kernel.Kernel, inject.Launch) {
			builds.Add(1)
			return world()
		}
		return c
	}}
	cache := newMemCache()

	cold := sched.RunSuite([]sched.Job{job}, sched.SuiteOptions{Workers: 2, Cache: cache})
	if cold.Campaigns[0].Err != nil {
		t.Fatal(cold.Campaigns[0].Err)
	}
	coldBuilds := builds.Load()
	if coldBuilds == 0 {
		t.Fatal("cold run never built a world")
	}

	builds.Store(0)
	warm := sched.RunSuite([]sched.Job{job}, sched.SuiteOptions{Workers: 2, Cache: cache})
	c := warm.Campaigns[0]
	if !c.Cached || !c.CachedSource {
		t.Fatalf("warm run not a source-level hit: %+v", c)
	}
	if got := builds.Load(); got != 0 {
		t.Errorf("warm run built %d worlds; a source hit must skip even the clean run", got)
	}
	if !reflect.DeepEqual(c.Result.Injections, cold.Campaigns[0].Result.Injections) {
		t.Error("replayed injections diverge from the cold run")
	}
}

// TestSuiteCacheSourcelessJobFallsBack keeps the PR 2 contract for
// campaigns that declare no Source: they plan every run, hit at the
// plan fingerprint, and never gain a source fingerprint.
func TestSuiteCacheSourcelessJobFallsBack(t *testing.T) {
	t.Parallel()
	spec, err := apps.Lookup("lpr-create-site")
	if err != nil {
		t.Fatal(err)
	}
	job := sched.Job{Name: spec.Name, Variant: "vulnerable", Build: spec.Vulnerable}
	cache := newMemCache()

	cold := sched.RunSuite([]sched.Job{job}, sched.SuiteOptions{Workers: 2, Cache: cache})
	if c := cold.Campaigns[0]; c.SourceFingerprint != "" || c.Fingerprint == "" {
		t.Fatalf("sourceless cold campaign fingerprints = (%q, %q)", c.Fingerprint, c.SourceFingerprint)
	}
	if cache.puts != 1 {
		t.Fatalf("sourceless cold run wrote %d entries, want 1", cache.puts)
	}
	warm := sched.RunSuite([]sched.Job{job}, sched.SuiteOptions{Workers: 2, Cache: cache})
	c := warm.Campaigns[0]
	if !c.Cached || c.CachedSource {
		t.Fatalf("sourceless warm campaign = %+v, want a plan-level hit", c)
	}
	if c.Fingerprint != cold.Campaigns[0].Fingerprint {
		t.Error("plan fingerprint changed between runs")
	}
}

var errTest = errAs("cache closed")

type errAs string

func (e errAs) Error() string { return string(e) }
