package sched_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core/inject"
	"repro/internal/core/sched"
)

// memCache is an in-memory sched.Cache for exercising the suite's cache
// protocol without touching disk.
type memCache struct {
	mu       sync.Mutex
	entries  map[string]*inject.Result
	gets     int
	puts     int
	putErr   error
	lastPuts map[string]string // fingerprint -> label
}

func newMemCache() *memCache {
	return &memCache{entries: map[string]*inject.Result{}, lastPuts: map[string]string{}}
}

func (m *memCache) Get(fp string) (*inject.Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	r, ok := m.entries[fp]
	return r, ok
}

func (m *memCache) Put(fp, label string, res *inject.Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	if m.putErr != nil {
		return m.putErr
	}
	m.entries[fp] = res
	m.lastPuts[fp] = label
	return nil
}

// TestSuiteCacheColdThenWarm drives the incremental-suite contract: a
// cold run misses everywhere and writes everything back; an immediate
// re-run hits everywhere and reproduces the identical campaign results
// without executing a single injection.
func TestSuiteCacheColdThenWarm(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()[:4]
	cache := newMemCache()

	cold := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 4, Cache: cache})
	if hits := cold.CacheHits(); hits != 0 {
		t.Fatalf("cold run reported %d cache hits", hits)
	}
	if cache.puts != len(jobs) {
		t.Fatalf("cold run wrote %d entries, want %d", cache.puts, len(jobs))
	}
	for _, c := range cold.Campaigns {
		if c.Fingerprint == "" {
			t.Errorf("%s: no fingerprint recorded", c.Job.Label())
		}
		if c.CacheErr != nil {
			t.Errorf("%s: cache write-back failed: %v", c.Job.Label(), c.CacheErr)
		}
		if got := cache.lastPuts[c.Fingerprint]; got != c.Job.Label() {
			t.Errorf("entry for %s labelled %q", c.Job.Label(), got)
		}
	}

	var events []sched.Event
	warm := sched.RunSuite(jobs, sched.SuiteOptions{
		Workers: 4,
		Cache:   cache,
		OnEvent: func(ev sched.Event) { events = append(events, ev) },
	})
	if hits := warm.CacheHits(); hits != len(jobs) {
		t.Fatalf("warm run reported %d/%d cache hits", hits, len(jobs))
	}
	for i := range warm.Campaigns {
		w, c := warm.Campaigns[i], cold.Campaigns[i]
		if !w.Cached {
			t.Errorf("%s: not marked cached", w.Job.Label())
		}
		if w.Fingerprint != c.Fingerprint {
			t.Errorf("%s: fingerprint changed between runs", w.Job.Label())
		}
		if !reflect.DeepEqual(w.Result.Injections, c.Result.Injections) {
			t.Errorf("%s: replayed injections diverge from the cold run", w.Job.Label())
		}
		if w.Result.Metric() != c.Result.Metric() {
			t.Errorf("%s: replayed metric diverges", w.Job.Label())
		}
	}
	// Warm events: one planned and one cached done per job, no progress.
	cachedDones := 0
	for _, ev := range events {
		switch ev.Kind {
		case sched.EventProgress:
			t.Errorf("warm run emitted a progress event for %s", ev.Job.Label())
		case sched.EventDone:
			if !ev.Cached {
				t.Errorf("warm EventDone for %s not marked cached", ev.Job.Label())
			}
			if ev.Done != ev.Total || ev.Total == 0 {
				t.Errorf("warm EventDone for %s counts %d/%d", ev.Job.Label(), ev.Done, ev.Total)
			}
			cachedDones++
		}
	}
	if cachedDones != len(jobs) {
		t.Errorf("warm run emitted %d done events, want %d", cachedDones, len(jobs))
	}
}

// TestSuiteCacheWriteBackFailureIsBestEffort asserts a failing cache
// never fails the suite — the run completes and the error is surfaced
// on the campaign result.
func TestSuiteCacheWriteBackFailureIsBestEffort(t *testing.T) {
	t.Parallel()
	jobs := apps.SuiteJobs()[:1]
	cache := newMemCache()
	cache.putErr = errTest
	sr := sched.RunSuite(jobs, sched.SuiteOptions{Workers: 2, Cache: cache})
	c := sr.Campaigns[0]
	if c.Err != nil || c.Result == nil {
		t.Fatalf("campaign failed under a broken cache: %v", c.Err)
	}
	if c.CacheErr != errTest {
		t.Errorf("CacheErr = %v, want the put error", c.CacheErr)
	}
}

var errTest = errAs("cache closed")

type errAs string

func (e errAs) Error() string { return string(e) }
