package sched

// FilterJobs selects the jobs whose Label matches the glob pattern.
// The pattern language is deliberately small: '*' matches any run of
// characters (including the '/' between name and variant, unlike
// path.Match — a matrix catalog is filtered with "lpr*" or
// "*+nodedup*" without caring where the separator falls), '?' matches
// exactly one character, and everything else matches itself. An empty
// pattern selects every job. Callers decide what an empty selection
// means; eptest rejects it with an error rather than printing an
// empty report.
func FilterJobs(jobs []Job, pattern string) []Job {
	if pattern == "" {
		return jobs
	}
	var out []Job
	for _, j := range jobs {
		if globMatch(pattern, j.Label()) {
			out = append(out, j)
		}
	}
	return out
}

// MatchLabel reports whether one job label matches the glob pattern —
// the same pattern language as FilterJobs, for callers that filter
// label catalogs rather than job slices (the coordinator resolves
// submitted campaign specs against its catalog with it). An empty
// pattern matches every label.
func MatchLabel(pattern, label string) bool {
	if pattern == "" {
		return true
	}
	return globMatch(pattern, label)
}

// globMatch reports whether s matches the '*'/'?' pattern. Iterative
// with single-star backtracking, so a pathological pattern cannot
// blow the stack.
func globMatch(pattern, s string) bool {
	var (
		p, i         int
		starP, starI = -1, 0
	)
	for i < len(s) {
		switch {
		case p < len(pattern) && (pattern[p] == '?' || pattern[p] == s[i]):
			p++
			i++
		case p < len(pattern) && pattern[p] == '*':
			starP, starI = p, i
			p++
		case starP >= 0:
			// Backtrack: let the last '*' consume one more character.
			starI++
			p, i = starP+1, starI
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}
