package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core/inject"
)

// Job is one suite entry: a named campaign variant to schedule.
type Job struct {
	// Name is the catalog campaign name.
	Name string
	// Variant labels the program under test ("vulnerable", "fixed").
	Variant string
	// Build constructs the campaign. It is invoked once, on a
	// scheduler goroutine.
	Build func() inject.Campaign
}

// Label renders the job for events and reports.
func (j Job) Label() string {
	if j.Variant == "" {
		return j.Name
	}
	return j.Name + "/" + j.Variant
}

// EventKind discriminates suite progress events.
type EventKind int

const (
	// EventPlanned fires after a campaign's clean run and fault-list
	// enumeration; Total is set.
	EventPlanned EventKind = iota + 1
	// EventProgress fires after each completed injection run.
	EventProgress
	// EventDone fires when a campaign finishes (Err set on failure).
	EventDone
)

// String renders the event kind.
func (k EventKind) String() string {
	switch k {
	case EventPlanned:
		return "planned"
	case EventProgress:
		return "progress"
	case EventDone:
		return "done"
	}
	return "unknown"
}

// Event is one suite progress notification. Events for a single job
// arrive in order; events for different jobs interleave. The suite
// serialises callback invocations, so handlers need no locking.
type Event struct {
	Kind EventKind
	Job  Job
	// Done and Total count this campaign's injection runs.
	Done, Total int
	// Cached is set on EventDone when the campaign's result was
	// replayed from the cache instead of executed.
	Cached bool
	// Err is set on EventDone when the campaign failed to plan.
	Err error
}

// SuiteOptions parameterises a suite run.
type SuiteOptions struct {
	// Workers is the global concurrency budget shared by every
	// campaign in the suite. Zero or negative means GOMAXPROCS.
	Workers int
	// Engine is the injection-engine options applied to every job.
	Engine inject.Options
	// OnEvent, when non-nil, receives progress events. Calls are
	// serialised.
	OnEvent func(Event)
	// Cache, when non-nil, makes the suite incremental: each job still
	// plans (the clean run is what the fingerprint hashes), but a job
	// whose fingerprint is cached replays the stored result instead of
	// executing its injection runs, and fresh results are written back.
	Cache Cache
}

// CampaignResult is one job's outcome.
type CampaignResult struct {
	Job    Job
	Result *inject.Result
	Err    error
	// Fingerprint is the job's plan fingerprint. Set only when the
	// suite ran with a cache.
	Fingerprint string
	// Cached reports that Result was replayed from the cache.
	Cached bool
	// CacheErr records a failed cache write-back. The run itself
	// succeeded; the suite treats the cache as best-effort.
	CacheErr error
}

// SuiteResult aggregates a suite run, in job order.
type SuiteResult struct {
	Campaigns []CampaignResult
}

// CacheHits counts the campaigns replayed from the cache.
func (s *SuiteResult) CacheHits() int {
	n := 0
	for _, c := range s.Campaigns {
		if c.Cached {
			n++
		}
	}
	return n
}

// Failed returns the jobs whose campaigns errored.
func (s *SuiteResult) Failed() []CampaignResult {
	var out []CampaignResult
	for _, c := range s.Campaigns {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// RunSuite schedules every job's injection runs across a worker pool
// bounded by opt.Workers. Campaigns plan and execute concurrently with
// one another, but the total number of in-flight injection runs never
// exceeds the budget. Per-campaign results are deterministic and equal
// to sequential inject.RunWith output.
func RunSuite(jobs []Job, opt SuiteOptions) *SuiteResult {
	res := &SuiteResult{Campaigns: make([]CampaignResult, len(jobs))}
	budget := opt.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, budget)

	var emitMu sync.Mutex
	emit := func(ev Event) {
		if opt.OnEvent == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		opt.OnEvent(ev)
	}

	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for ji := range jobs {
		go func(ji int) {
			defer wg.Done()
			job := jobs[ji]
			res.Campaigns[ji].Job = job

			sem <- struct{}{}
			plan, err := inject.PrepareWith(job.Build(), opt.Engine)
			<-sem
			if err != nil {
				res.Campaigns[ji].Err = err
				emit(Event{Kind: EventDone, Job: job, Err: err})
				return
			}

			n := plan.NumRuns()
			emit(Event{Kind: EventPlanned, Job: job, Total: n})

			var fp string
			if opt.Cache != nil {
				fp = plan.Fingerprint(job.Name, job.Variant)
				res.Campaigns[ji].Fingerprint = fp
				if hit, ok := opt.Cache.Get(fp); ok {
					res.Campaigns[ji].Result = hit
					res.Campaigns[ji].Cached = true
					emit(Event{Kind: EventDone, Job: job, Done: n, Total: n, Cached: true})
					return
				}
			}

			out := make([]inject.Injection, n)
			w := budget
			if w > n {
				w = n
			}
			var next atomic.Int64
			var runWG sync.WaitGroup
			runWG.Add(w)
			done := 0
			var doneMu sync.Mutex
			for g := 0; g < w; g++ {
				go func() {
					defer runWG.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= n {
							return
						}
						sem <- struct{}{}
						out[i] = plan.RunOne(i)
						<-sem
						// Emitting under doneMu keeps a job's progress
						// counts in order across its workers.
						doneMu.Lock()
						done++
						emit(Event{Kind: EventProgress, Job: job, Done: done, Total: n})
						doneMu.Unlock()
					}
				}()
			}
			runWG.Wait()

			shell := plan.Shell()
			shell.Injections = out
			res.Campaigns[ji].Result = &shell
			if opt.Cache != nil {
				res.Campaigns[ji].CacheErr = opt.Cache.Put(fp, job.Label(), &shell)
			}
			emit(Event{Kind: EventDone, Job: job, Done: n, Total: n})
		}(ji)
	}
	wg.Wait()
	return res
}
