package sched

import (
	"repro/internal/core/inject"
	"repro/internal/core/obs"
)

// Job is one suite entry: a named campaign variant to schedule.
type Job struct {
	// Name is the catalog campaign name.
	Name string
	// Variant labels the program under test ("vulnerable", "fixed").
	// Matrix catalogs append axis tokens ("vulnerable+nodedup+s4");
	// report.Matrix parses them back out, so keep "+" as the separator.
	Variant string
	// Build constructs the campaign. It is invoked once, on a
	// dispatcher worker.
	Build func() inject.Campaign
	// Engine, when non-nil, overrides the suite-wide engine options for
	// this job only — the hook matrix catalogs use to sweep
	// inject.Options across cells of one suite. The options take part
	// in both cache fingerprints, so every sweep cell caches
	// independently.
	Engine *inject.Options
}

// Label renders the job for events and reports.
func (j Job) Label() string {
	if j.Variant == "" {
		return j.Name
	}
	return j.Name + "/" + j.Variant
}

// engine resolves the job's effective engine options against the
// suite-wide default.
func (j Job) engine(suite inject.Options) inject.Options {
	if j.Engine != nil {
		return *j.Engine
	}
	return suite
}

// EventKind discriminates suite progress events.
type EventKind int

const (
	// EventPlanned fires once a campaign's run count is known — after
	// its clean run and fault-list enumeration, or straight from the
	// cache on a source-fingerprint hit; Total is set.
	EventPlanned EventKind = iota + 1
	// EventProgress fires after each completed injection run.
	EventProgress
	// EventDone fires when a campaign finishes (Err set on failure).
	EventDone
)

// String renders the event kind.
func (k EventKind) String() string {
	switch k {
	case EventPlanned:
		return "planned"
	case EventProgress:
		return "progress"
	case EventDone:
		return "done"
	}
	return "unknown"
}

// Event is one suite progress notification. Events for a single job
// arrive in order; events for different jobs interleave. The
// dispatcher serialises callback invocations, so handlers need no
// locking.
type Event struct {
	Kind EventKind
	Job  Job
	// Done and Total count this campaign's injection runs.
	Done, Total int
	// Cached is set on EventDone when the campaign's result was
	// replayed from the cache instead of executed.
	Cached bool
	// Err is set on EventDone when the campaign failed to plan.
	Err error
}

// SuiteOptions parameterises a suite run. It is the option surface of
// RunSuite; the fields map one to one onto Dispatcher's.
type SuiteOptions struct {
	// Workers is the global concurrency budget shared by every
	// campaign in the suite. Zero or negative means GOMAXPROCS.
	Workers int
	// Engine is the injection-engine options applied to every job that
	// does not carry its own Job.Engine override.
	Engine inject.Options
	// OnEvent, when non-nil, receives progress events. Calls are
	// serialised.
	OnEvent func(Event)
	// Cache, when non-nil, makes the suite incremental; see
	// Dispatcher.Cache for the two-level fingerprint protocol.
	Cache Cache
	// Metrics, when non-nil, receives dispatcher telemetry; see
	// Dispatcher.Metrics.
	Metrics *obs.Registry
	// Tracer, when non-nil, records per-run span trees; see
	// Dispatcher.Tracer.
	Tracer *obs.Tracer
}

// CampaignResult is one job's outcome.
type CampaignResult struct {
	Job    Job
	Result *inject.Result
	Err    error
	// Fingerprint is the job's plan fingerprint. Set only when the
	// suite ran with a cache and the job was actually planned (a
	// source-fingerprint hit skips planning, leaving it empty).
	Fingerprint string
	// SourceFingerprint is the job's source fingerprint. Set only when
	// the suite ran with a cache and the campaign declares a Source.
	SourceFingerprint string
	// Cached reports that Result was replayed from the cache.
	Cached bool
	// CachedSource reports that the replay hit at the source level —
	// the campaign skipped even its clean run.
	CachedSource bool
	// CacheErr records a failed cache write-back. The run itself
	// succeeded; the suite treats the cache as best-effort.
	CacheErr error
}

// SuiteResult aggregates a suite run, in job order.
type SuiteResult struct {
	Campaigns []CampaignResult
	// Dispatch describes the scheduling pass that produced the
	// campaigns. Zero for results assembled by store.MergeShards.
	Dispatch DispatchStats
}

// CacheHits counts the campaigns replayed from the cache.
func (s *SuiteResult) CacheHits() int {
	n := 0
	for _, c := range s.Campaigns {
		if c.Cached {
			n++
		}
	}
	return n
}

// Failed returns the jobs whose campaigns errored.
func (s *SuiteResult) Failed() []CampaignResult {
	var out []CampaignResult
	for _, c := range s.Campaigns {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// RunSuite schedules every job's injection runs across the
// run-granularity work-stealing dispatcher, bounded by opt.Workers
// concurrently executing units. Campaigns plan and execute
// concurrently with one another and runs rebalance across workers,
// but per-campaign results are deterministic and equal to sequential
// inject.RunWith output.
func RunSuite(jobs []Job, opt SuiteOptions) *SuiteResult {
	d := &Dispatcher{
		Workers: opt.Workers,
		Engine:  opt.Engine,
		OnEvent: opt.OnEvent,
		Cache:   opt.Cache,
		Metrics: opt.Metrics,
		Tracer:  opt.Tracer,
	}
	return d.Run(jobs)
}
