package sched

import (
	"fmt"
	"sort"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/interpose"
)

// Signature identifies a class of equivalent violations: the policy
// rule that fired, the fault dimension that triggered it (attribute for
// direct faults, input semantic for indirect ones), and the kind of
// environment object perturbed. Suite runs over a whole catalog surface
// the same weakness through many (campaign, point) pairs; clustering by
// signature deduplicates them into findings.
type Signature struct {
	// Rule is the violated policy rule.
	Rule policy.Kind
	// Class is the fault class (direct or indirect).
	Class eai.Class
	// Attr is the perturbed attribute, for direct faults.
	Attr eai.Attr
	// Sem is the perturbed input semantic, for indirect faults.
	Sem eai.Semantic
	// Kind is the environment-object kind at the interaction point.
	Kind interpose.ObjectKind
}

// String renders the signature as a stable, human-readable key.
func (s Signature) String() string {
	dim := s.Attr.String()
	if s.Class == eai.ClassIndirect {
		dim = s.Sem.String()
	}
	return fmt.Sprintf("%s/%s/%s on %s", s.Rule, s.Class, dim, s.Kind)
}

// Finding is one concrete violation inside a cluster.
type Finding struct {
	// Campaign and Variant locate the job that produced the finding.
	Campaign string
	Variant  string
	// Point is the interaction point whose perturbation violated.
	Point string
	// FaultID is the catalog fault injected.
	FaultID string
	// Object is the environment object the violation names.
	Object string
	// Detail is the oracle's explanation.
	Detail string
}

// Label renders the finding's job label, matching Job.Label.
func (f Finding) Label() string {
	if f.Variant == "" {
		return f.Campaign
	}
	return f.Campaign + "/" + f.Variant
}

// Cluster groups every finding that shares a signature.
type Cluster struct {
	Sig      Signature
	Findings []Finding
}

// Campaigns returns the distinct campaign labels represented in the
// cluster, in first-seen order.
func (c Cluster) Campaigns() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range c.Findings {
		label := f.Label()
		if !seen[label] {
			seen[label] = true
			out = append(out, label)
		}
	}
	return out
}

// ClusterResult clusters the violations of a single campaign result.
func ClusterResult(res *inject.Result) []Cluster {
	return clusterAll([]labelled{{campaign: res.Campaign, res: res}})
}

// ClusterSuite clusters every violation across the suite's completed
// campaigns. Clusters are ordered by descending size, then by
// signature, so the dominant weakness classes lead the report.
func ClusterSuite(sr *SuiteResult) []Cluster {
	var ls []labelled
	for _, c := range sr.Campaigns {
		if c.Err != nil || c.Result == nil {
			continue
		}
		ls = append(ls, labelled{campaign: c.Job.Name, variant: c.Job.Variant, res: c.Result})
	}
	return clusterAll(ls)
}

// labelled pairs a campaign result with its suite labels.
type labelled struct {
	campaign, variant string
	res               *inject.Result
}

func clusterAll(ls []labelled) []Cluster {
	bysig := map[Signature]*Cluster{}
	var order []Signature
	for _, l := range ls {
		for _, in := range l.res.Violations() {
			for _, v := range in.Violations {
				sig := Signature{
					Rule:  v.Kind,
					Class: in.Class,
					Attr:  in.Attr,
					Sem:   in.Sem,
					Kind:  in.Kind,
				}
				cl, ok := bysig[sig]
				if !ok {
					cl = &Cluster{Sig: sig}
					bysig[sig] = cl
					order = append(order, sig)
				}
				cl.Findings = append(cl.Findings, Finding{
					Campaign: l.campaign,
					Variant:  l.variant,
					Point:    in.Point,
					FaultID:  in.FaultID,
					Object:   v.Object,
					Detail:   v.Detail,
				})
			}
		}
	}
	out := make([]Cluster, 0, len(order))
	for _, sig := range order {
		out = append(out, *bysig[sig])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Findings) != len(out[j].Findings) {
			return len(out[i].Findings) > len(out[j].Findings)
		}
		return out[i].Sig.String() < out[j].Sig.String()
	})
	return out
}
