package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// ShardSpec names one of n deterministic partitions of a suite's job
// list, 1-based: "k/n" on the eptest command line. The zero value means
// "unsharded".
type ShardSpec struct {
	// K is the 1-based shard index.
	K int
	// N is the total shard count.
	N int
}

// ParseShard parses the command-line form "k/n".
func ParseShard(s string) (ShardSpec, error) {
	ks, ns, ok := strings.Cut(s, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("sched: malformed shard %q (want \"k/n\")", s)
	}
	k, kerr := strconv.Atoi(ks)
	n, nerr := strconv.Atoi(ns)
	if kerr != nil || nerr != nil {
		return ShardSpec{}, fmt.Errorf("sched: malformed shard %q (want \"k/n\")", s)
	}
	if n < 1 || k < 1 || k > n {
		return ShardSpec{}, fmt.Errorf("sched: shard %q out of range (want 1 <= k <= n)", s)
	}
	return ShardSpec{K: k, N: n}, nil
}

// IsZero reports whether the spec is the unsharded zero value.
func (sp ShardSpec) IsZero() bool { return sp.N == 0 }

// String renders the command-line form.
func (sp ShardSpec) String() string { return fmt.Sprintf("%d/%d", sp.K, sp.N) }

// Indices returns the global job indices shard sp owns out of total
// jobs: every i with i mod N == K-1. The round-robin stride keeps each
// catalog campaign's vulnerable/fixed pair split across shards, so
// shard workloads stay balanced; the partition depends only on (k, n,
// total), which is what makes independently produced shard artifacts
// mergeable.
func (sp ShardSpec) Indices(total int) []int {
	var out []int
	for i := sp.K - 1; i < total; i += sp.N {
		out = append(out, i)
	}
	return out
}

// ShardJobs selects the shard's slice of the job list, returning the
// selected jobs alongside their global indices in the full list (the
// indices the shard artifact records for the merge).
func ShardJobs(jobs []Job, sp ShardSpec) ([]Job, []int) {
	idx := sp.Indices(len(jobs))
	out := make([]Job, len(idx))
	for i, gi := range idx {
		out[i] = jobs[gi]
	}
	return out, idx
}
