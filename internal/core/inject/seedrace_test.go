package inject_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/apps/turnin"
	"repro/internal/core/inject"
)

// TestSeededPlanConcurrentRuns hammers one prepared plan — one shared
// policy Seed, one shared frozen base world — from many goroutines at
// once and checks every run's outcome against a sequential pass over a
// second plan of the same campaign. Run under -race this pins the
// Seed's concurrency contract: EvaluateFrom must be safe for parallel
// calls because the dispatcher's workers share the campaign's seed.
func TestSeededPlanConcurrentRuns(t *testing.T) {
	t.Parallel()
	shared, err := inject.Prepare(turnin.Campaign(turnin.Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := inject.Prepare(turnin.Campaign(turnin.Vulnerable))
	if err != nil {
		t.Fatal(err)
	}
	n := shared.NumRuns()
	if n == 0 {
		t.Fatal("campaign planned zero runs")
	}
	want := make([]inject.Injection, n)
	for i := range want {
		want[i] = sequential.RunOne(i)
	}

	// Each run executed three times concurrently, all interleaved.
	const repeat = 3
	got := make([][]inject.Injection, repeat)
	var wg sync.WaitGroup
	for r := range got {
		got[r] = make([]inject.Injection, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(r, i int) {
				defer wg.Done()
				got[r][i] = shared.RunOne(i)
			}(r, i)
		}
	}
	wg.Wait()

	for r := range got {
		for i := range got[r] {
			if !reflect.DeepEqual(got[r][i], want[i]) {
				t.Errorf("run %d (pass %d): concurrent result diverged from sequential:\n  conc: %+v\n  seq:  %+v",
					i, r, got[r][i], want[i])
			}
		}
	}
}
