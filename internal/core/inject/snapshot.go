package inject

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim/kernel"
	"repro/internal/sim/vfs"
)

// worldSnapshots is the process-wide snapshot toggle, on by default. It is
// deliberately not an Options field: engine options are cache-fingerprint
// material and are wholesale-replaced by per-job overrides in the matrix
// sweeps, while snapshotting is a pure execution strategy that must never
// change a result byte. The -snapshots CLI flag and the byte-identity
// tests flip it.
var worldSnapshots atomic.Bool

// oracleSeeding is the process-wide prefix-seeded-oracle toggle, on by
// default. It follows the worldSnapshots pattern — outside Options for
// the same reason: seeding is a pure evaluation strategy that must never
// change a result byte, so it must never move a cache fingerprint. The
// -oracle-seed CLI flag and the byte-identity tests flip it.
var oracleSeeding atomic.Bool

func init() {
	worldSnapshots.Store(true)
	oracleSeeding.Store(true)
}

// SetWorldSnapshots enables or disables copy-on-write world snapshots for
// every subsequently prepared campaign.
func SetWorldSnapshots(on bool) { worldSnapshots.Store(on) }

// WorldSnapshots reports whether world snapshotting is enabled.
func WorldSnapshots() bool { return worldSnapshots.Load() }

// SetOracleSeeding enables or disables prefix-seeded oracle evaluation
// for every subsequently prepared campaign. When disabled, every run's
// security-oracle pass re-walks its full trace, byte-identically to the
// pre-seeding engine.
func SetOracleSeeding(on bool) { oracleSeeding.Store(on) }

// OracleSeeding reports whether prefix-seeded oracle evaluation is
// enabled.
func OracleSeeding() bool { return oracleSeeding.Load() }

// worldSource hands out per-run worlds for one campaign. In snapshot mode
// it invokes the campaign factory once, freezes the result as the clean
// image, and forks a mutable kernel per request; otherwise every request
// rebuilds through the factory, byte-identically to the pre-snapshot
// engine.
type worldSource struct {
	factory Factory
	snap    *kernel.Snapshot
	launch  Launch
}

// newWorldSource captures the campaign's world strategy. The factory is
// not invoked here for the fallback path, so a campaign whose factory
// panics lazily behaves exactly as before.
func newWorldSource(c Campaign) (*worldSource, error) {
	if c.World == nil {
		return nil, ErrNoWorld
	}
	if !WorldSnapshots() || c.NoSnapshot {
		return &worldSource{factory: c.World}, nil
	}
	k, l := c.World()
	return &worldSource{snap: k.Snapshot(), launch: l}, nil
}

// world returns a fresh mutable kernel and launch description.
func (ws *worldSource) world() (*kernel.Kernel, Launch) {
	if ws.snap != nil {
		return ws.snap.Fork(), ws.launch
	}
	return ws.factory()
}

// baseFS returns the frozen clean-world filesystem, or nil when the source
// rebuilds per run. The oracle uses it directly as the pre-run state
// snapshot — it is immutable, so no defensive clone is needed.
func (ws *worldSource) baseFS() *vfs.FS {
	if ws.snap != nil {
		return ws.snap.FS()
	}
	return nil
}

// RunWorld is the snapshot seam for out-of-engine consumers — the
// Section 5 baseline comparators and any other repeated-trial harness.
// It wraps an arbitrary world factory so each trial forks one frozen
// image instead of rebuilding, and exposes the frozen clean filesystem
// for oracle state snapshots. When snapshots are globally disabled it
// degrades to calling the factory per trial, byte-identically.
type RunWorld struct {
	ws worldSource
}

// NewRunWorld captures the factory's world. In snapshot mode the factory
// runs exactly once, here.
func NewRunWorld(f Factory) *RunWorld {
	if !WorldSnapshots() {
		return &RunWorld{ws: worldSource{factory: f}}
	}
	k, l := f()
	return &RunWorld{ws: worldSource{snap: k.Snapshot(), launch: l}}
}

// World returns a fresh mutable kernel and launch for one trial.
func (w *RunWorld) World() (*kernel.Kernel, Launch) { return w.ws.world() }

// BaseFS returns the frozen clean filesystem, or nil when the wrapper is
// rebuilding per trial and no shared image exists.
func (w *RunWorld) BaseFS() *vfs.FS { return w.ws.baseFS() }

// WorldImage memoizes one world build as a frozen kernel snapshot and
// hands out copy-on-write forks through the standard Factory shape. App
// packages whose world content is identical across program variants share
// one image per package and attach the variant with FactoryWith; when
// snapshots are globally disabled the image transparently rebuilds from
// scratch on every call.
type WorldImage struct {
	build Factory

	mu     sync.Mutex
	snap   *kernel.Snapshot
	launch Launch
}

// NewWorldImage wraps a world-building factory in a memoizing image. The
// factory runs at most once while snapshots are enabled.
func NewWorldImage(build Factory) *WorldImage { return &WorldImage{build: build} }

// Factory returns an inject.Factory backed by the image.
func (w *WorldImage) Factory() Factory { return w.FactoryWith(nil) }

// FactoryWith returns a Factory whose Launch is adjusted by mod after the
// (shared) world is produced — how an app package installs the program
// variant and arguments onto a world image common to every variant. mod
// must not touch the kernel; it may only rewrite the launch description.
func (w *WorldImage) FactoryWith(mod func(Launch) Launch) Factory {
	return func() (*kernel.Kernel, Launch) {
		if !WorldSnapshots() {
			k, l := w.build()
			if mod != nil {
				l = mod(l)
			}
			return k, l
		}
		w.mu.Lock()
		if w.snap == nil {
			k, l := w.build()
			w.snap = k.Snapshot()
			w.launch = l
		}
		snap, l := w.snap, w.launch
		w.mu.Unlock()
		k := snap.Fork()
		if mod != nil {
			l = mod(l)
		}
		return k, l
	}
}
