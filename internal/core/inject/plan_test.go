package inject

import (
	"errors"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/interpose"
)

func TestPlanMatchesRun(t *testing.T) {
	t.Parallel()
	c := lprCampaign()
	c.Sites = nil
	plans, err := Plan(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(res.Injections) {
		t.Fatalf("plan = %d, run = %d injections", len(plans), len(res.Injections))
	}
	for i := range plans {
		if plans[i].FaultID != res.Injections[i].FaultID || plans[i].Point != res.Injections[i].Point {
			t.Errorf("plan[%d] = %+v, run = %+v", i, plans[i], res.Injections[i])
		}
	}
}

func TestPlanErrors(t *testing.T) {
	t.Parallel()
	if _, err := Plan(Campaign{}); !errors.Is(err, ErrNoWorld) {
		t.Errorf("err = %v", err)
	}
}

func TestPlanRespectsOptions(t *testing.T) {
	t.Parallel()
	c := lprCampaign()
	c.Sites = nil
	direct, err := PlanWith(c, Options{OnlyDirect: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range direct {
		if p.Class != eai.ClassDirect {
			t.Errorf("OnlyDirect planned %v", p.Class)
		}
	}
	both, err := Plan(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) <= len(direct) {
		t.Errorf("full plan (%d) should exceed direct-only (%d)", len(both), len(direct))
	}
}

func TestEquivalenceGroups(t *testing.T) {
	t.Parallel()
	mkEv := func(seq int, site string, op interpose.Op, kind interpose.ObjectKind, obj string) interpose.Event {
		return interpose.Event{
			Call:         interpose.Call{Seq: seq, Site: site, Op: op, Kind: kind, Path: obj},
			ResolvedPath: obj,
		}
	}
	trace := []interpose.Event{
		mkEv(0, "a:open", interpose.OpOpen, interpose.KindFile, "/etc/conf"),
		mkEv(1, "a:read", interpose.OpRead, interpose.KindFile, "/etc/conf"),
		mkEv(2, "a:arg", interpose.OpArg, interpose.KindArg, "argv[1]"),
		mkEv(3, "a:create", interpose.OpCreate, interpose.KindFile, "/tmp/out"),
		mkEv(4, "a:write", interpose.OpWrite, interpose.KindFile, "/tmp/out"),
		mkEv(5, "a:read2", interpose.OpRead, interpose.KindFile, "/etc/conf"),
	}
	groups := EquivalenceGroups(trace)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0].Object != "/etc/conf" || len(groups[0].Sites) != 3 {
		t.Errorf("group 0 = %v", groups[0])
	}
	if groups[1].Object != "/tmp/out" || len(groups[1].Sites) != 2 {
		t.Errorf("group 1 = %v", groups[1])
	}
	// argv has no direct-fault entity and is excluded.
	for _, g := range groups {
		if g.Kind == interpose.KindArg {
			t.Error("argv grouped")
		}
	}
	if rf := ReductionFactor(groups); rf != 2.5 {
		t.Errorf("reduction factor = %v, want 2.5 (5 sites / 2 objects)", rf)
	}
	if ReductionFactor(nil) != 1 {
		t.Error("empty reduction factor != 1")
	}
	if groups[0].String() == "" {
		t.Error("empty String()")
	}
}

func TestEquivalenceOnLprTrace(t *testing.T) {
	t.Parallel()
	res, err := Run(lprCampaign())
	if err != nil {
		t.Fatal(err)
	}
	groups := EquivalenceGroups(res.CleanTrace)
	// The mini lpr touches one file-entity object (the spool file) via two
	// sites: create and write.
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0].Sites) != 2 || groups[0].Object != "/var/spool/lpd/cfa001" {
		t.Errorf("group = %v", groups[0])
	}
	if rf := ReductionFactor(groups); rf != 2 {
		t.Errorf("reduction factor = %v", rf)
	}
}

func TestRunUntilAdequate(t *testing.T) {
	t.Parallel()
	// Start from a single site; adequacy at 0.6 forces widening.
	c := lprCampaign() // sites = [lpr:create] only
	res, rounds, err := RunUntilAdequate(c, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 2 {
		t.Errorf("rounds = %d, expected widening", rounds)
	}
	if res.Metric().InteractionCoverage() < 0.6 {
		t.Errorf("final IC = %v < threshold", res.Metric().InteractionCoverage())
	}
}

func TestRunUntilAdequateUnreachableStops(t *testing.T) {
	t.Parallel()
	// Threshold 1.0 may be unreachable (the write site dedups away); the
	// loop must terminate once every site is covered.
	c := lprCampaign()
	res, rounds, err := RunUntilAdequate(c, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rounds > 10 {
		t.Errorf("rounds = %d, loop did not converge", rounds)
	}
	if len(res.PerturbedSites) == 0 {
		t.Error("nothing perturbed")
	}
}

func TestRunUntilAdequateAlreadyAdequate(t *testing.T) {
	t.Parallel()
	c := lprCampaign()
	c.Sites = nil // all sites at once
	_, rounds, err := RunUntilAdequate(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Errorf("rounds = %d, want 1", rounds)
	}
}
