package inject

import (
	"time"

	"repro/internal/core/policy"
	"repro/internal/interpose"
)

// ExecPlan is a materialised campaign: the clean-run planning state of
// Section 3.3 steps 2-5 plus the ordered list of injection runs steps 6-8
// will perform. Each run builds its own world through the campaign's
// Factory and shares nothing mutable with the others, so distinct indices
// may be executed from concurrent goroutines; a scheduler that writes
// RunOne(i) into slot i of a results slice reproduces the sequential
// engine's Result bit for bit.
type ExecPlan struct {
	campaign Campaign
	opt      Options
	shell    *Result
	plans    []planned
	// world hands out per-run worlds: copy-on-write forks of one frozen
	// clean image when snapshots are enabled, fresh factory builds
	// otherwise. One snapshot serves every run of the plan — including
	// runs executed concurrently by the sched dispatcher's workers.
	world *worldSource
	// seed is the campaign's precomputed prefix oracle state, shared
	// read-only by every run (nil when seeding or snapshots are off).
	// runOne consults it only for runs whose pre-injection world is the
	// frozen base image — the condition under which seeded evaluation is
	// provably identical to the full walk.
	seed *policy.Seed
}

// Prepare materialises the campaign's execution plan under default
// engine options.
func Prepare(c Campaign) (*ExecPlan, error) { return PrepareWith(c, Options{}) }

// PrepareWith materialises the campaign's execution plan: the clean run,
// the interaction-point enumeration, and the per-point fault lists.
func PrepareWith(c Campaign, opt Options) (*ExecPlan, error) {
	c.Faults = c.Faults.WithDefaults()
	ws, err := newWorldSource(c)
	if err != nil {
		return nil, err
	}
	pr, err := planCampaign(c, opt, ws)
	if err != nil {
		return nil, err
	}
	ep := &ExecPlan{campaign: c, opt: opt, shell: pr.result, plans: pr.plans, world: ws}
	if OracleSeeding() {
		if base := ws.baseFS(); base != nil {
			ep.seed = policy.NewSeed(c.Policy, pr.result.CleanTrace, base)
		}
	}
	return ep, nil
}

// NumRuns is the number of injection runs the plan schedules.
func (p *ExecPlan) NumRuns() int { return len(p.plans) }

// Planned describes run i without executing it.
func (p *ExecPlan) Planned(i int) PlannedInjection {
	pl := p.plans[i]
	pi := PlannedInjection{
		Point: interpose.PointID(pl.site, pl.occur),
		Site:  pl.site,
		Kind:  pl.kind,
	}
	switch {
	case pl.dir != nil:
		pi.FaultID = pl.dir.ID
		pi.Class = pl.dir.Class()
		pi.Attr = pl.dir.Attr
	case pl.ind != nil:
		pi.FaultID = pl.ind.ID
		pi.Class = pl.ind.Class()
		pi.Sem = pl.ind.Sem
	}
	return pi
}

// RunOne executes injection run i (steps 6-8) in a fresh world and
// returns its outcome. It is safe for concurrent use: every call forks (or
// builds) its own kernel and mutates only its own Injection; the shared
// seed is immutable.
func (p *ExecPlan) RunOne(i int) Injection {
	return p.runOne(i, nil)
}

// PhaseFunc observes the internal phases of one injection run as they
// complete: "world" (environment construction and fault arming),
// "exec" (the perturbed execution), and "compare" (the security-oracle
// evaluation), in that order. Observers receive wall-clock timings
// only — they cannot influence the run, so results stay bit-identical
// with or without observation.
type PhaseFunc func(phase string, start time.Time, d time.Duration)

// RunOneObserved is RunOne with per-phase timing callbacks — the span
// hook the suite tracer uses to render each run as a plan→exec→compare
// span tree. fn may be nil, making it exactly RunOne.
func (p *ExecPlan) RunOneObserved(i int, fn PhaseFunc) Injection {
	return p.runOne(i, fn)
}

// Shell returns a copy of the campaign result with the planning fields
// (clean trace, site lists) filled in and Injections left for the caller
// to populate — in plan order, one entry per RunOne index.
func (p *ExecPlan) Shell() Result { return *p.shell }
