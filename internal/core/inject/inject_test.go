package inject

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/core/policy"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
)

// miniLpr is a condensed Section 3.4 lpr: a set-UID-root spooler that
// creats a spool file at a fixed path without O_EXCL and writes the job
// into it.
func miniLpr(p *kernel.Proc) int {
	f, err := p.Create("lpr:create", "/var/spool/lpd/cfa001", 0o660)
	if err != nil {
		p.Eprintf("lpr: cannot create spool file: %v\n", err)
		return 1
	}
	defer p.Close(f)
	if _, err := p.Write("lpr:write", f, []byte("job data: "+p.Arg("lpr:arg-file", 1)+"\n")); err != nil {
		p.Eprintf("lpr: temp file write error\n")
		return 1
	}
	return 0
}

func lprWorld() (*kernel.Kernel, Launch) {
	k := kernel.New()
	k.Users.Add(proc.User{Name: "alice", UID: 100, GID: 100})
	k.Users.Add(proc.User{Name: "mallory", UID: 666, GID: 666})
	mustNil(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
	mustNil(k.FS.WriteFile("/etc/passwd", []byte("root:x:0:0:root:/:/bin/sh\n"), 0o644, 0, 0))
	mustNil(k.FS.WriteFile("/etc/shadow", []byte("root:$1$HASH$:10000:\n"), 0o600, 0, 0))
	mustNil(k.FS.MkdirAll("/", "/var/spool/lpd", 0o777, 0, 0))
	mustNil(k.FS.MkdirAll("/", "/tmp", 0o777, 0, 0))
	return k, Launch{
		Cred: proc.Cred{UID: 100, GID: 100, EUID: 0, EGID: 0}, // set-UID root
		Env:  proc.NewEnv("PATH", "/usr/bin"),
		Cwd:  "/",
		Args: []string{"lpr", "doc.txt"},
		Prog: miniLpr,
	}
}

func mustNil(err error) {
	if err != nil {
		panic(err)
	}
}

func lprCampaign() Campaign {
	return Campaign{
		Name:  "mini-lpr",
		World: lprWorld,
		Policy: policy.Policy{
			Invoker:  proc.NewCred(100, 100),
			Attacker: proc.NewCred(666, 666),
		},
		Faults: eai.Config{Attacker: proc.NewCred(666, 666)},
		Sites:  []string{"lpr:create"},
	}
}

func TestLprCreateSiteCampaign(t *testing.T) {
	t.Parallel()
	res, err := Run(lprCampaign())
	if err != nil {
		t.Fatal(err)
	}
	// Section 3.4: four applicable attributes at the create site, all of
	// which the vulnerable lpr fails to tolerate.
	if len(res.Injections) != 4 {
		t.Fatalf("injections = %d, want 4: %+v", len(res.Injections), res.Injections)
	}
	wantAttrs := map[eai.Attr]bool{
		eai.AttrExistence: true, eai.AttrOwnership: true,
		eai.AttrPermission: true, eai.AttrSymlink: true,
	}
	for _, in := range res.Injections {
		if !wantAttrs[in.Attr] {
			t.Errorf("unexpected attr %v", in.Attr)
		}
		if !in.Applied {
			t.Errorf("%s not applied: %s", in.FaultID, in.ApplyErr)
		}
		if in.Tolerated() {
			t.Errorf("%s tolerated; the vulnerable lpr must fail it", in.FaultID)
		}
	}
	m := res.Metric()
	if m.FaultCoverage() != 0 {
		t.Errorf("fault coverage = %v, want 0", m.FaultCoverage())
	}
	if len(res.PerturbedSites) != 1 || res.PerturbedSites[0] != "lpr:create" {
		t.Errorf("perturbed sites = %v", res.PerturbedSites)
	}
}

func TestLprSymlinkFaultReachesPasswd(t *testing.T) {
	t.Parallel()
	res, err := Run(lprCampaign())
	if err != nil {
		t.Fatal(err)
	}
	var symlinkInj *Injection
	for i := range res.Injections {
		if res.Injections[i].Attr == eai.AttrSymlink {
			symlinkInj = &res.Injections[i]
		}
	}
	if symlinkInj == nil {
		t.Fatal("no symlink injection")
	}
	found := false
	for _, v := range symlinkInj.Violations {
		if v.Kind == policy.KindIntegrity && v.Object == "/etc/passwd" {
			found = true
		}
	}
	if !found {
		t.Errorf("symlink fault violations = %v, want integrity on /etc/passwd", symlinkInj.Violations)
	}
}

// TestTimingAblation shows why direct faults go before the point: applied
// after the create has resolved, the symlink perturbation is harmless.
func TestTimingAblation(t *testing.T) {
	t.Parallel()
	res, err := RunWith(lprCampaign(), Options{DirectAfterPoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if in := res.findAttr(eai.AttrSymlink); in != nil && !in.Tolerated() {
		t.Errorf("late-injected symlink fault still violated: %v", in.Violations)
	}
	mBefore, errB := Run(lprCampaign())
	if errB != nil {
		t.Fatal(errB)
	}
	if mBefore.Metric().Violations() <= res.Metric().Violations() {
		t.Errorf("before-point violations (%d) should exceed after-point (%d)",
			mBefore.Metric().Violations(), res.Metric().Violations())
	}
}

// findAttr returns the first injection with the given direct attribute.
func (r *Result) findAttr(a eai.Attr) *Injection {
	for i := range r.Injections {
		if r.Injections[i].Attr == a {
			return &r.Injections[i]
		}
	}
	return nil
}

func TestFullCampaignAllSites(t *testing.T) {
	t.Parallel()
	c := lprCampaign()
	c.Sites = nil // every eligible site
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// Sites on the clean trace: create, write, arg.
	if len(res.TotalSites) != 3 {
		t.Fatalf("total sites = %v", res.TotalSites)
	}
	// create: 4 direct; write: direct deduped against create's object (all
	// four attrs already injected) → 0; arg: indirect user-input (SemRaw
	// inferred → 2 faults).
	if len(res.PerturbedSites) != 2 {
		t.Errorf("perturbed sites = %v", res.PerturbedSites)
	}
	direct, indirect := 0, 0
	for _, in := range res.Injections {
		switch in.Class {
		case eai.ClassDirect:
			direct++
		case eai.ClassIndirect:
			indirect++
		}
	}
	if direct != 4 || indirect != 2 {
		t.Errorf("direct/indirect = %d/%d, want 4/2", direct, indirect)
	}
}

func TestNoDedupAblation(t *testing.T) {
	t.Parallel()
	c := lprCampaign()
	c.Sites = nil
	dedup, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	nodedup, err := RunWith(c, Options{NoObjectDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without dedup the write site re-injects the same four attributes on
	// the same object.
	if len(nodedup.Injections) <= len(dedup.Injections) {
		t.Errorf("no-dedup injections (%d) should exceed dedup (%d)",
			len(nodedup.Injections), len(dedup.Injections))
	}
}

func TestOnlyDirectOnlyIndirect(t *testing.T) {
	t.Parallel()
	c := lprCampaign()
	c.Sites = nil
	d, err := RunWith(c, Options{OnlyDirect: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Injections {
		if in.Class != eai.ClassDirect {
			t.Errorf("OnlyDirect produced %v", in.Class)
		}
	}
	i, err := RunWith(c, Options{OnlyIndirect: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range i.Injections {
		if in.Class != eai.ClassIndirect {
			t.Errorf("OnlyIndirect produced %v", in.Class)
		}
	}
}

func TestSemanticsAnnotation(t *testing.T) {
	t.Parallel()
	c := lprCampaign()
	c.Sites = []string{"lpr:arg-file"}
	c.Semantics = map[string]eai.Semantic{"lpr:arg-file": eai.SemFileName}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// SemFileName has 5 perturbations.
	if len(res.Injections) != 5 {
		t.Fatalf("injections = %d, want 5", len(res.Injections))
	}
	for _, in := range res.Injections {
		if in.Sem != eai.SemFileName {
			t.Errorf("sem = %v", in.Sem)
		}
		if !in.Applied {
			t.Errorf("%s not applied", in.FaultID)
		}
	}
}

func TestFixedLprToleratesEverything(t *testing.T) {
	t.Parallel()
	// The fixed lpr uses O_EXCL and refuses pre-existing spool files —
	// the paper's step "we assume that faults found during testing are
	// removed".
	fixed := func(p *kernel.Proc) int {
		f, err := p.Open("lpr:create", "/var/spool/lpd/cfa001",
			kernel.OWrite|kernel.OCreate|kernel.OExcl, 0o660)
		if err != nil {
			p.Eprintf("lpr: spool file unsafe: %v\n", err)
			return 1
		}
		defer p.Close(f)
		if _, err := p.Write("lpr:write", f, []byte("job data\n")); err != nil {
			return 1
		}
		return 0
	}
	c := lprCampaign()
	c.World = func() (*kernel.Kernel, Launch) {
		k, l := lprWorld()
		l.Prog = fixed
		return k, l
	}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Injections) == 0 {
		t.Fatal("no injections")
	}
	for _, in := range res.Injections {
		if !in.Tolerated() {
			t.Errorf("fixed lpr violated under %s: %v", in.FaultID, in.Violations)
		}
	}
	if fc := res.Metric().FaultCoverage(); fc != 1 {
		t.Errorf("fixed lpr fault coverage = %v, want 1", fc)
	}
}

func TestCampaignErrors(t *testing.T) {
	t.Parallel()
	if _, err := Run(Campaign{}); !errors.Is(err, ErrNoWorld) {
		t.Errorf("no world err = %v", err)
	}
	// Clean-run crash is a campaign error.
	c := lprCampaign()
	c.World = func() (*kernel.Kernel, Launch) {
		k, l := lprWorld()
		l.Prog = func(p *kernel.Proc) int { p.Crash("boom"); return 0 }
		return k, l
	}
	if _, err := Run(c); !errors.Is(err, ErrCleanCrash) {
		t.Errorf("clean crash err = %v", err)
	}
	// Empty trace is a campaign error.
	c2 := lprCampaign()
	c2.World = func() (*kernel.Kernel, Launch) {
		k, l := lprWorld()
		l.Prog = func(p *kernel.Proc) int { return 0 }
		return k, l
	}
	if _, err := Run(c2); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("empty trace err = %v", err)
	}
}

func TestInjectionBookkeeping(t *testing.T) {
	t.Parallel()
	res, err := Run(lprCampaign())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Injections {
		if in.Point != "lpr:create#0" {
			t.Errorf("point = %q", in.Point)
		}
		if in.Site != "lpr:create" {
			t.Errorf("site = %q", in.Site)
		}
		if !strings.HasPrefix(in.FaultID, "direct/file-system/") {
			t.Errorf("fault id = %q", in.FaultID)
		}
	}
	bySite := res.ViolationsBySite()
	if len(bySite["lpr:create"]) != 4 {
		t.Errorf("violations by site = %v", bySite)
	}
}

func TestIndirectFaultPerturbsValueNotWorld(t *testing.T) {
	t.Parallel()
	// An indirect fault on the arg must not touch the filesystem.
	c := lprCampaign()
	c.Sites = []string{"lpr:arg-file"}
	c.Semantics = map[string]eai.Semantic{"lpr:arg-file": eai.SemFileName}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Injections {
		if in.Class != eai.ClassIndirect {
			t.Errorf("class = %v", in.Class)
		}
	}
	// The spool file write happens with the perturbed arg embedded; the
	// overlong variant must not crash this app (it has no fixed buffer).
	for _, in := range res.Injections {
		if in.CrashMsg != "" {
			t.Errorf("%s crashed: %s", in.FaultID, in.CrashMsg)
		}
	}
}
