package inject

import (
	"reflect"
	"testing"
)

func TestSiteFilterMatching(t *testing.T) {
	t.Parallel()
	cases := []struct {
		sites []string
		site  string
		want  bool
	}{
		{nil, "lpr:create", true},
		{[]string{}, "anything", true},
		{[]string{"lpr:create"}, "lpr:create", true},
		{[]string{"lpr:create"}, "lpr:write", false},
		{[]string{"lpr:*"}, "lpr:create", true},
		{[]string{"lpr:*"}, "lpr:write", true},
		{[]string{"lpr:*"}, "turnin:open-config", false},
		{[]string{"lpr:*", "turnin:open-config"}, "turnin:open-config", true},
		{[]string{"lpr:*", "turnin:open-config"}, "turnin:read-config", false},
		// A bare "*" selects everything, like an empty list.
		{[]string{"*"}, "any:site", true},
		// The pattern is a prefix match, not a substring match.
		{[]string{"create*"}, "lpr:create", false},
	}
	for _, tc := range cases {
		f := newSiteFilter(tc.sites)
		if got := f.match(tc.site); got != tc.want {
			t.Errorf("newSiteFilter(%v).match(%q) = %v, want %v", tc.sites, tc.site, got, tc.want)
		}
	}
}

// TestCleanSites verifies the clean-run-only probe returns the same
// site surface planning reports, without needing a full plan.
func TestCleanSites(t *testing.T) {
	t.Parallel()
	c := lprCampaign()
	sites, err := CleanSites(c)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PrepareWith(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shell := plan.Shell()
	if !reflect.DeepEqual(sites, shell.TotalSites) {
		t.Errorf("CleanSites = %v, plan TotalSites = %v", sites, shell.TotalSites)
	}
	if _, err := CleanSites(Campaign{Name: "no-world"}); err == nil {
		t.Error("CleanSites accepted a campaign with no world")
	}
}

// TestSitePatternCampaign runs the mini-lpr campaign selected by a
// prefix pattern and verifies it plans exactly what the equivalent
// exact-site selection plans.
func TestSitePatternCampaign(t *testing.T) {
	t.Parallel()
	exact := lprCampaign()
	pattern := lprCampaign()
	pattern.Sites = []string{"lpr:*"}

	re, err := Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(pattern)
	if err != nil {
		t.Fatal(err)
	}
	// The pattern widens the selection to every lpr: site; the exact
	// single-site selection must be a subset of it.
	if len(rp.PerturbedSites) < len(re.PerturbedSites) {
		t.Fatalf("pattern perturbed %v, exact %v", rp.PerturbedSites, re.PerturbedSites)
	}
	seen := map[string]bool{}
	for _, s := range rp.PerturbedSites {
		seen[s] = true
	}
	for _, s := range re.PerturbedSites {
		if !seen[s] {
			t.Errorf("pattern selection missed exact site %s", s)
		}
	}

	// And an all-sites pattern equals the unrestricted campaign.
	open := lprCampaign()
	open.Sites = nil
	ro, err := Run(open)
	if err != nil {
		t.Fatal(err)
	}
	all := lprCampaign()
	all.Sites = []string{"*"}
	ra, err := Run(all)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ro.Injections, ra.Injections) {
		t.Errorf("\"*\" pattern diverges from unrestricted campaign")
	}
}
