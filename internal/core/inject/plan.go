package inject

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/coverage"
	"repro/internal/core/eai"
	"repro/internal/interpose"
	"repro/internal/sim/kernel"
)

// PlannedInjection describes one scheduled (point, fault) pair without
// running it — the fault list of Section 3.3 step 5, materialised for
// inspection.
type PlannedInjection struct {
	Point   string
	Site    string
	Kind    interpose.ObjectKind
	FaultID string
	Class   eai.Class
	Attr    eai.Attr
	Sem     eai.Semantic
}

// Plan enumerates the injections a campaign would perform: the clean run,
// the interaction points, and each point's applicable fault list. It is
// the dry-run counterpart of Run and shares its planning logic.
func Plan(c Campaign) ([]PlannedInjection, error) {
	return PlanWith(c, Options{})
}

// PlanWith is Plan under explicit engine options.
func PlanWith(c Campaign, opt Options) ([]PlannedInjection, error) {
	plan, err := PrepareWith(c, opt)
	if err != nil {
		return nil, err
	}
	out := make([]PlannedInjection, plan.NumRuns())
	for i := range out {
		out[i] = plan.Planned(i)
	}
	return out, nil
}

// EquivalenceGroup is a set of interaction sites that touch the same
// environment object with the same class of operation — the paper's
// future-work reduction: "exploit static analysis to further reduce the
// number of fault injection locations by finding the equivalence
// relationship among those locations". Over a recorded trace the
// relationship is computable exactly.
type EquivalenceGroup struct {
	// Object is the shared environment object.
	Object string
	// Kind is the shared entity kind.
	Kind interpose.ObjectKind
	// Sites are the member call sites, in first-hit order.
	Sites []string
}

// String renders the group.
func (g EquivalenceGroup) String() string {
	return fmt.Sprintf("%s %s: %v", g.Kind, g.Object, g.Sites)
}

// EquivalenceGroups partitions the trace's sites by perturbed object.
// Sites in one group share their direct-fault lists, so injecting at one
// member covers the group — the reduction the engine's same-object dedup
// realises dynamically.
func EquivalenceGroups(trace []interpose.Event) []EquivalenceGroup {
	type key struct {
		obj  string
		kind interpose.ObjectKind
	}
	seenSite := map[string]bool{}
	groups := map[key]*EquivalenceGroup{}
	var order []key
	for i := range trace {
		ev := &trace[i]
		if eai.EntityForKind(ev.Call.Kind) == 0 {
			continue
		}
		obj := ev.ResolvedPath
		if obj == "" {
			obj = ev.Call.Path
		}
		k := key{obj: obj, kind: ev.Call.Kind}
		g, ok := groups[k]
		if !ok {
			g = &EquivalenceGroup{Object: k.obj, Kind: k.kind}
			groups[k] = g
			order = append(order, k)
		}
		if !seenSite[ev.Call.Site] {
			seenSite[ev.Call.Site] = true
			g.Sites = append(g.Sites, ev.Call.Site)
		}
	}
	out := make([]EquivalenceGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *groups[k])
	}
	return out
}

// ReductionFactor reports how many fault-injection locations the
// equivalence analysis saves: total member sites over group count.
func ReductionFactor(groups []EquivalenceGroup) float64 {
	sites := 0
	for _, g := range groups {
		sites += len(g.Sites)
	}
	if len(groups) == 0 {
		return 1
	}
	return float64(sites) / float64(len(groups))
}

// RunUntilAdequate implements the Section 3.3 step 9 loop: start from the
// campaign's site list, and widen the selected-site set one site per round
// until the interaction-coverage adequacy criterion is met or every site
// has been attempted (a site may contribute no faults — e.g. everything it
// touches was already perturbed at an earlier point — in which case it is
// still counted as attempted so the loop terminates). It returns the final
// result and the number of rounds.
func RunUntilAdequate(c Campaign, icThreshold float64) (*Result, int, error) {
	res, err := Run(c)
	if err != nil {
		return nil, 0, err
	}
	rounds := 1
	attempted := map[string]bool{}
	for _, s := range c.Sites {
		attempted[s] = true
	}
	if len(c.Sites) == 0 {
		// An empty site list already selects everything.
		return res, rounds, nil
	}
	for !coverage.Adequate(res.Metric(), icThreshold) {
		var candidates []string
		counts := map[string]int{}
		for i := range res.CleanTrace {
			counts[res.CleanTrace[i].Call.Site]++
		}
		for _, s := range res.TotalSites {
			if !attempted[s] {
				candidates = append(candidates, s)
			}
		}
		if len(candidates) == 0 {
			break // every site attempted; adequacy is as high as it gets
		}
		sort.SliceStable(candidates, func(i, j int) bool {
			return counts[candidates[i]] > counts[candidates[j]]
		})
		next := candidates[0]
		attempted[next] = true
		c.Sites = append(c.Sites, next)
		res, err = Run(c)
		if err != nil {
			return nil, rounds, err
		}
		rounds++
	}
	return res, rounds, nil
}

// CleanSites executes only the campaign's clean run (step 2) and
// returns every distinct call site on its trace, in first-hit order —
// the site surface without the fault-list planning PrepareWith adds.
// Catalog generators use it to enumerate a campaign's perturbable
// surface cheaply (no per-site probe worlds are built).
func CleanSites(c Campaign) ([]string, error) {
	if c.World == nil {
		return nil, ErrNoWorld
	}
	// A single probe run gains nothing from snapshotting; build directly.
	k, err := cleanRun(&worldSource{factory: c.World})
	if err != nil {
		return nil, err
	}
	return k.Bus.Sites(), nil
}

// cleanRun performs step 2 — one unperturbed execution in a fresh
// world — and returns the kernel holding the recorded trace. Shared
// by planning and the CleanSites probe so the two can never diverge
// on clean-run semantics.
func cleanRun(ws *worldSource) (*kernel.Kernel, error) {
	k, l := ws.world()
	p := k.NewProc(l.Cred, l.Env.Clone(), l.Cwd, l.Args...)
	if _, crash := k.Run(p, l.Prog); crash != nil {
		return nil, fmt.Errorf("%w: %s", ErrCleanCrash, crash.Msg)
	}
	if len(k.Bus.Trace()) == 0 {
		return nil, ErrEmptyTrace
	}
	return k, nil
}

// siteFilter implements the Campaign.Sites selection: exact site names
// plus trailing-"*" prefix patterns. An empty filter selects everything.
type siteFilter struct {
	exact    map[string]bool
	prefixes []string
	empty    bool
}

// newSiteFilter compiles a Sites list.
func newSiteFilter(sites []string) *siteFilter {
	f := &siteFilter{exact: map[string]bool{}, empty: len(sites) == 0}
	for _, s := range sites {
		if n := len(s); n > 0 && s[n-1] == '*' {
			f.prefixes = append(f.prefixes, s[:n-1])
			continue
		}
		f.exact[s] = true
	}
	return f
}

// match reports whether the filter selects the site.
func (f *siteFilter) match(site string) bool {
	if f.empty || f.exact[site] {
		return true
	}
	for _, p := range f.prefixes {
		if strings.HasPrefix(site, p) {
			return true
		}
	}
	return false
}

// planResult is the internal planning outcome shared by Plan and Run.
type planResult struct {
	result *Result
	plans  []planned
}

// planCampaign performs steps 2-5 (clean run, point enumeration, fault
// lists) and returns both the planning state and the result shell. The
// clean run and the single shared probe world come from ws — in snapshot
// mode each is a cheap fork of the one frozen image instead of a fresh
// build.
func planCampaign(c Campaign, opt Options, ws *worldSource) (*planResult, error) {
	c.Faults = c.Faults.WithDefaults()

	clean, err := cleanRun(ws)
	if err != nil {
		return nil, err
	}
	trace := clean.Bus.Trace()

	res := &Result{
		Campaign:   c.Name,
		CleanTrace: trace,
		TotalSites: clean.Bus.Sites(),
	}

	include := newSiteFilter(c.Sites)

	firstEvent := map[string]*interpose.Event{}
	firstIdx := map[string]int{}
	var siteOrder []string
	for i := range trace {
		s := trace[i].Call.Site
		if _, ok := firstEvent[s]; !ok {
			firstEvent[s] = &trace[i]
			firstIdx[s] = i
			siteOrder = append(siteOrder, s)
		}
	}

	// Applies predicates are read-only (they probe object existence and
	// attributes), so one probe world serves every site. Its filesystem
	// is frozen as a tripwire: a (hypothetically) mutating predicate
	// panics loudly instead of silently leaking state into later sites'
	// probes. Built lazily — campaigns with no direct-eligible sites
	// never pay for it.
	var (
		probe       *kernel.Kernel
		probeLaunch Launch
	)

	pr := &planResult{result: res}
	perturbed := map[string]bool{}
	injectedAttr := map[string]bool{}
	for _, site := range siteOrder {
		if !include.match(site) {
			continue
		}
		ev := firstEvent[site]
		var sitePlans []planned

		if !opt.OnlyIndirect {
			if ent := eai.EntityForKind(ev.Call.Kind); ent != 0 {
				if probe == nil {
					probe, probeLaunch = ws.world()
					probe.FS.Freeze()
					if probe.Reg != nil {
						probe.Reg.Freeze()
					}
				}
				call := ev.Call
				ctx := &eai.Ctx{
					Kern:   probe,
					Call:   &call,
					Cwd:    callCwd(&ev.Call, probeLaunch),
					SetCwd: func(string) {},
					Cfg:    c.Faults,
				}
				obj := objectIdentity(&ev.Call)
				for _, f := range eai.CatalogDirect(ent) {
					f := f
					if !f.Applies(ctx) {
						continue
					}
					key := obj + "|" + f.Attr.String()
					if !opt.NoObjectDedup && injectedAttr[key] {
						continue
					}
					injectedAttr[key] = true
					sitePlans = append(sitePlans, planned{site: site, occur: ev.Call.Occur, kind: ev.Call.Kind, armedIdx: firstIdx[site], dir: &f})
				}
			}
		}

		if !opt.OnlyDirect && ev.Call.Op.HasInput() {
			sem, ok := c.Semantics[site]
			if !ok {
				sem = eai.InferSemantic(ev.Call.Op, ev.Call.Path)
			}
			for _, f := range eai.CatalogIndirect(sem) {
				f := f
				sitePlans = append(sitePlans, planned{site: site, occur: ev.Call.Occur, kind: ev.Call.Kind, armedIdx: firstIdx[site], ind: &f})
			}
		}

		if len(sitePlans) > 0 {
			perturbed[site] = true
			pr.plans = append(pr.plans, sitePlans...)
		}
	}
	for _, site := range siteOrder {
		if perturbed[site] {
			res.PerturbedSites = append(res.PerturbedSites, site)
		}
	}
	return pr, nil
}
