package inject

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"sort"

	"repro/internal/interpose"
)

// EngineVersion identifies the planning and execution semantics of this
// injection engine. It is mixed into every plan fingerprint, so bumping
// it invalidates all cached campaign results at once. Bump whenever a
// change could alter a planned fault list or a run outcome for an
// unchanged campaign: new catalog faults, different dedup rules,
// different oracle semantics, different trace recording.
const EngineVersion = "eptest-engine/2"

// Fingerprint returns the content address of this plan: a hex SHA-256
// over the engine version, the caller-supplied labels (typically the
// suite job's name and variant), the campaign configuration, the engine
// options, the clean-run trace, and the ordered planned fault list.
//
// Two plans that differ in any input steps 6-8 consume hash
// differently: the fault list and the fault/policy configuration are
// hashed directly, and the program under test plus the parts of the
// world it interacts with are pinned transitively by the clean trace.
// The pin has a deliberate limit: world state the clean run never
// observes (say, the permission bits of a file only the oracle
// consults) is invisible to the trace, so editing it in the world
// factory does not change the fingerprint — changing campaign code
// requires clearing the store or bumping EngineVersion. The result
// store keys cached campaign results by this value; see docs/STORE.md
// for the invalidation rules and this caveat spelled out.
func (p *ExecPlan) Fingerprint(labels ...string) string {
	h := sha256.New()
	fpStr(h, EngineVersion)
	fpInt(h, len(labels))
	for _, l := range labels {
		fpStr(h, l)
	}

	fpCampaign(h, &p.campaign)
	fpOptions(h, p.opt)

	fpInt(h, len(p.shell.CleanTrace))
	for i := range p.shell.CleanTrace {
		fpEvent(h, &p.shell.CleanTrace[i])
	}

	fpInt(h, p.NumRuns())
	for i := 0; i < p.NumRuns(); i++ {
		pl := p.Planned(i)
		fpStr(h, pl.Point)
		fpStr(h, pl.FaultID)
		fpInt(h, int(pl.Kind))
		fpInt(h, int(pl.Class))
		fpInt(h, int(pl.Attr))
		fpInt(h, int(pl.Sem))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// SourceFingerprint returns the content address of the campaign's
// *source* — the declared world-builder/program identity plus every
// configuration input the plan fingerprint hashes — or ok=false when
// the campaign declares no Source. Unlike (*ExecPlan).Fingerprint it
// needs no clean run, so a cache hit under this address skips the
// campaign entirely, clean trace included.
//
// The trust model is weaker than the plan fingerprint's: the trace
// pins the program transitively, while Source is a declaration. A
// stale Source (world builder or program changed without a version
// bump) replays results for code that no longer exists. The two
// addresses live in disjoint hash domains, so a store can hold both
// for one campaign; see docs/STORE.md.
func SourceFingerprint(c Campaign, opt Options, labels ...string) (string, bool) {
	if c.Source == "" {
		return "", false
	}
	// PrepareWith defaults the fault config before the plan fingerprint
	// hashes it; mirror that so both addresses see one configuration.
	c.Faults = c.Faults.WithDefaults()
	h := sha256.New()
	fpStr(h, EngineVersion, "source-fingerprint", c.Source)
	fpInt(h, len(labels))
	for _, l := range labels {
		fpStr(h, l)
	}
	fpCampaign(h, &c)
	fpOptions(h, opt)
	return fmt.Sprintf("%x", h.Sum(nil)), true
}

// fpCampaign hashes the campaign fields the runs consume: the name, the
// site selection, the semantic annotations, the oracle policy, and the
// (defaulted) fault configuration.
func fpCampaign(h hash.Hash, c *Campaign) {
	fpStr(h, c.Name)
	fpInt(h, len(c.Sites))
	for _, s := range c.Sites {
		fpStr(h, s)
	}
	sems := make([]string, 0, len(c.Semantics))
	for site := range c.Semantics {
		sems = append(sems, site)
	}
	sort.Strings(sems)
	fpInt(h, len(sems))
	for _, site := range sems {
		fpStr(h, site)
		fpInt(h, int(c.Semantics[site]))
	}

	pol := c.Policy
	fpInt(h, pol.Invoker.UID, pol.Invoker.GID, pol.Invoker.EUID, pol.Invoker.EGID, pol.Invoker.SUID)
	fpInt(h, pol.Attacker.UID, pol.Attacker.GID, pol.Attacker.EUID, pol.Attacker.EGID, pol.Attacker.SUID)
	fpInt(h, len(pol.TrustedWritePaths))
	for _, p := range pol.TrustedWritePaths {
		fpStr(h, p)
	}
	fpInt(h, pol.MinLeakLen)

	cfg := c.Faults
	fpInt(h, cfg.Attacker.UID, cfg.Attacker.GID, cfg.Attacker.EUID, cfg.Attacker.EGID, cfg.Attacker.SUID)
	fpStr(h, cfg.AttackerDir, cfg.ReadTarget, cfg.WriteTarget, cfg.DirTarget, string(cfg.AttackerContent), cfg.EvilHost)
	overrides := make([]string, 0, len(cfg.ReadTargetOverrides))
	for obj := range cfg.ReadTargetOverrides {
		overrides = append(overrides, obj)
	}
	sort.Strings(overrides)
	fpInt(h, len(overrides))
	for _, obj := range overrides {
		fpStr(h, obj, cfg.ReadTargetOverrides[obj])
	}
}

// fpOptions hashes the engine options (they change both the fault list
// and the injection timing).
func fpOptions(h hash.Hash, opt Options) {
	fpBool(h, opt.NoObjectDedup, opt.OnlyDirect, opt.OnlyIndirect, opt.DirectAfterPoint)
}

// fpEvent hashes one clean-trace event: the call as the kernel saw it
// and the result as the application saw it.
func fpEvent(h hash.Hash, ev *interpose.Event) {
	c := &ev.Call
	fpInt(h, c.Seq, c.Occur, c.Flags, c.UID, c.EUID, c.GID, c.EGID, int(c.Mode), int(c.Kind))
	fpStr(h, c.Site, string(c.Op), c.Path, c.Path2, string(c.Data), c.Cwd)
	r := &ev.Result
	fpStr(h, string(r.Data), r.Str)
	fpInt(h, r.N)
	fpBool(h, r.Flag)
	if r.Err != nil {
		fpStr(h, r.Err.Error())
	} else {
		fpStr(h, "")
	}
	fpStr(h, ev.ResolvedPath)
	fpBool(h, ev.Mutated)
}

// fpStr writes length-prefixed strings, so adjacent fields can never
// alias ("ab","c" vs "a","bc").
func fpStr(w io.Writer, parts ...string) {
	for _, s := range parts {
		fpInt(w, len(s))
		io.WriteString(w, s)
	}
}

// fpInt writes fixed-width integers.
func fpInt(w io.Writer, vs ...int) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		w.Write(buf[:])
	}
}

// fpBool writes booleans as one byte each.
func fpBool(w io.Writer, vs ...bool) {
	for _, v := range vs {
		b := byte(0)
		if v {
			b = 1
		}
		w.Write([]byte{b})
	}
}
