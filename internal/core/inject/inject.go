// Package inject implements the Environment Fault Injection Methodology of
// Section 3.3: enumerate the environment-interaction points of an
// execution trace, build the per-point fault list from the EAI catalogs,
// inject one fault per run (direct faults before the interaction point,
// indirect faults after it), observe the security oracle, and score the
// campaign with the two-dimensional adequacy metric.
package inject

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core/coverage"
	"repro/internal/core/eai"
	"repro/internal/core/policy"
	"repro/internal/interpose"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
	"repro/internal/sim/vfs"
)

// Static errors.
var (
	ErrNoWorld    = errors.New("inject: campaign has no world factory")
	ErrEmptyTrace = errors.New("inject: clean run produced no interactions")
	ErrCleanCrash = errors.New("inject: application crashed on the clean run")
)

// Launch describes how to start the application under test in a freshly
// built world.
type Launch struct {
	Cred proc.Cred
	Env  proc.Env
	Cwd  string
	Args []string
	Prog kernel.Program
}

// Factory builds a fresh world and launch description. It is invoked once
// per injection run, so every run starts from an identical environment —
// the paper's requirement that faults be injected into a known state.
type Factory func() (*kernel.Kernel, Launch)

// Campaign is one application-under-test configuration.
type Campaign struct {
	// Name labels reports.
	Name string
	// World builds the environment and launch parameters.
	World Factory
	// Policy is the security oracle configuration.
	Policy policy.Policy
	// Faults parameterises the direct-fault appliers.
	Faults eai.Config
	// Sites restricts perturbation to these call sites (the tester's
	// step-4 choice of objects). Empty means every eligible site. An
	// entry ending in "*" is a prefix pattern: "lpr:*" selects every
	// site of the lpr program — the form composed multi-app campaigns
	// use to carry an unrestricted member's whole surface.
	Sites []string
	// Semantics annotates input sites with their Table 5 semantic kind.
	// Unannotated sites fall back to eai.InferSemantic.
	Semantics map[string]eai.Semantic
	// Source names the campaign's source identity: the world-builder
	// configuration and the program under test, e.g. "lpr@1/vulnerable".
	// It feeds SourceFingerprint, which lets a result cache replay the
	// campaign without re-executing even the clean run. The declarer
	// owns its truthfulness — bump the version component whenever the
	// world builder or program changes. Empty disables source-level
	// caching; the trace-pinned plan fingerprint still applies.
	Source string
	// NoSnapshot opts the campaign out of copy-on-write world snapshots:
	// every run rebuilds through World even when snapshots are globally
	// enabled. For factories with per-call side effects the engine cannot
	// see (e.g. a world drawn from an external data source). Not
	// fingerprint material — snapshotting never changes a result byte.
	NoSnapshot bool
}

// Options are engine variations used by the ablation benchmarks. The zero
// value is the paper's methodology.
type Options struct {
	// NoObjectDedup disables the suppression of direct faults already
	// injected for the same (object, attribute) at an earlier point.
	NoObjectDedup bool
	// OnlyDirect skips indirect faults.
	OnlyDirect bool
	// OnlyIndirect skips direct faults.
	OnlyIndirect bool
	// DirectAfterPoint injects direct faults *after* the interaction point
	// instead of before — deliberately wrong timing, for the ablation
	// showing why Section 3.3 step 6 orders them as it does.
	DirectAfterPoint bool
}

// Injection is the outcome of one fault-injection run.
type Injection struct {
	// Point is the interaction point (site#occur) armed.
	Point string
	// Site is the static call-site portion of Point.
	Site string
	// Kind is the environment-object kind the armed interaction touches.
	Kind interpose.ObjectKind
	// FaultID identifies the catalog fault injected.
	FaultID string
	// Class is direct or indirect.
	Class eai.Class
	// Attr is set for direct faults.
	Attr eai.Attr
	// Sem is set for indirect faults.
	Sem eai.Semantic
	// Applied reports whether the fault actually landed (the armed point
	// was reached and the applier succeeded).
	Applied bool
	// ApplyErr holds the applier error, if any.
	ApplyErr string
	// Exit is the process exit code.
	Exit int
	// CrashMsg is non-empty when the run ended in a simulated memory
	// error.
	CrashMsg string
	// Violations are the oracle findings.
	Violations []policy.Violation
}

// Tolerated reports whether the application tolerated this fault.
func (in Injection) Tolerated() bool { return len(in.Violations) == 0 }

// Result is a completed campaign.
type Result struct {
	Campaign string
	// CleanTrace is the unperturbed execution trace.
	CleanTrace []interpose.Event
	// TotalSites is every distinct call site on the clean trace, in first-
	// hit order.
	TotalSites []string
	// PerturbedSites is the subset that received at least one injection.
	PerturbedSites []string
	// Injections holds one entry per fault-injection run.
	Injections []Injection
}

// Metric computes the Figure 2 adequacy metric for the campaign.
func (r *Result) Metric() coverage.Metric {
	tolerated := 0
	for _, in := range r.Injections {
		if in.Tolerated() {
			tolerated++
		}
	}
	return coverage.Metric{
		FaultsInjected:  len(r.Injections),
		FaultsTolerated: tolerated,
		PointsPerturbed: len(r.PerturbedSites),
		PointsTotal:     len(r.TotalSites),
	}
}

// Violations returns every non-tolerated injection.
func (r *Result) Violations() []Injection {
	var out []Injection
	for _, in := range r.Injections {
		if !in.Tolerated() {
			out = append(out, in)
		}
	}
	return out
}

// ViolationsBySite groups violating injections by call site.
func (r *Result) ViolationsBySite() map[string][]Injection {
	out := make(map[string][]Injection)
	for _, in := range r.Violations() {
		out[in.Site] = append(out[in.Site], in)
	}
	return out
}

// planned is one (point, fault) pair scheduled for injection.
type planned struct {
	site  string
	occur int
	kind  interpose.ObjectKind
	// armedIdx is the clean-trace index of the armed interaction point.
	// A run replays the clean trace byte-for-byte up to (excluding) this
	// event, which is what lets the seeded oracle skip the prefix.
	armedIdx int
	dir      *eai.DirectFault
	ind      *eai.IndirectFault
}

// Run executes the campaign with the paper's methodology.
func Run(c Campaign) (*Result, error) { return RunWith(c, Options{}) }

// RunWith executes the campaign with explicit engine options: steps 2-5
// (clean run, point enumeration, fault lists) via PrepareWith, then one
// injection run per planned fault (steps 6-8), strictly sequentially.
// Callers that want the runs fanned out across workers use the same
// ExecPlan surface through the sched package.
func RunWith(c Campaign, opt Options) (*Result, error) {
	plan, err := PrepareWith(c, opt)
	if err != nil {
		return nil, err
	}
	res := plan.Shell()
	res.Injections = make([]Injection, 0, plan.NumRuns())
	for i := 0; i < plan.NumRuns(); i++ {
		res.Injections = append(res.Injections, plan.RunOne(i))
	}
	return &res, nil
}

// callCwd returns the working directory the call was made from, falling
// back to the launch cwd for older traces.
func callCwd(call *interpose.Call, l Launch) string {
	if call.Cwd != "" {
		return call.Cwd
	}
	if l.Cwd != "" {
		return l.Cwd
	}
	return "/"
}

// objectIdentity keys the direct-fault dedup: the resolved object when
// known, otherwise the canonicalised argument path.
func objectIdentity(call *interpose.Call) string {
	return vfs.Canon(callCwd(call, Launch{}), call.Path)
}

// traceBufs recycles run-trace backing buffers across injection runs. A
// run's trace is only read during its own oracle pass and discarded with
// its kernel, so the buffers — sized once from the clean trace — make
// steady-state recording allocation-free.
var traceBufs = sync.Pool{New: func() any { return new([]interpose.Event) }}

// runOne performs a single fault-injection run (steps 6-8). phase, when
// non-nil, observes the world/exec/compare segments; it deliberately
// lives outside Options so telemetry never perturbs cache fingerprints.
func (ep *ExecPlan) runOne(i int, phase PhaseFunc) Injection {
	c, opt, pl, ws := ep.campaign, ep.opt, ep.plans[i], ep.world

	worldStart := time.Now()
	k, l := ws.world()

	// Seed trace recording with a pooled buffer sized from the clean
	// trace: perturbed runs rarely record more events than the clean run.
	bufp := traceBufs.Get().(*[]interpose.Event)
	if need := len(ep.shell.CleanTrace) + 1; cap(*bufp) < need {
		*bufp = make([]interpose.Event, 0, need)
	}
	k.Bus.ReserveTrace(*bufp)

	p := k.NewProc(l.Cred, l.Env.Clone(), l.Cwd, l.Args...)

	inj := Injection{
		Point: interpose.PointID(pl.site, pl.occur),
		Site:  pl.site,
		Kind:  pl.kind,
	}

	// Snap defaults to the pre-run world; a direct fault replaces it with
	// the post-injection world so the oracle judges against what the
	// attacker actually arranged. In snapshot mode the frozen base image
	// *is* the pre-run world; otherwise the freshly built world is frozen
	// in place and the run continues on a copy-on-write fork — either
	// way, no deep clone.
	snap := ws.baseFS()
	if snap == nil {
		snap = k.FreezeFS()
	}
	armed := false

	switch {
	case pl.dir != nil:
		f := pl.dir
		inj.FaultID = f.ID
		inj.Class = eai.ClassDirect
		inj.Attr = f.Attr
		apply := func(call *interpose.Call) {
			if armed || call.Site != pl.site || call.Occur != pl.occur {
				return
			}
			armed = true
			ctx := &eai.Ctx{
				Kern:   k,
				Call:   call,
				Cwd:    p.Cwd,
				SetCwd: func(d string) { p.Cwd = d },
				Cfg:    c.Faults,
			}
			if err := f.Apply(ctx); err != nil {
				inj.ApplyErr = err.Error()
				return
			}
			inj.Applied = true
			k.Bus.MarkMutated()
			// Zero-clone post-injection snapshot: freeze the world the
			// fault just arranged and let the rest of the run proceed on
			// a fresh fork.
			snap = k.FreezeFS()
		}
		if opt.DirectAfterPoint {
			k.Bus.OnPost(func(call *interpose.Call, _ *interpose.Result) { apply(call) })
		} else {
			k.Bus.OnPre(apply)
		}
	case pl.ind != nil:
		f := pl.ind
		inj.FaultID = f.ID
		inj.Class = eai.ClassIndirect
		inj.Sem = f.Sem
		k.Bus.OnPost(func(call *interpose.Call, r *interpose.Result) {
			if armed || call.Site != pl.site || call.Occur != pl.occur {
				return
			}
			armed = true
			inj.Applied = true
			k.Bus.MarkMutated()
			switch {
			case r.Data != nil:
				r.Data = f.Mutate(r.Data)
			case r.Str != "":
				r.Str = string(f.Mutate([]byte(r.Str)))
			}
		})
	}

	execStart := time.Now()
	if phase != nil {
		phase("world", worldStart, execStart.Sub(worldStart))
	}
	exit, crash := k.Run(p, l.Prog)
	compareStart := time.Now()
	if phase != nil {
		phase("exec", execStart, compareStart.Sub(execStart))
	}
	inj.Exit = exit
	trace := k.Bus.Trace()
	obs := policy.Observation{
		Trace:  trace,
		Stdout: p.Stdout.Bytes(),
		Snap:   snap,
	}
	if crash != nil {
		inj.CrashMsg = crash.Msg
		obs.CrashMsg = crash.Msg
	}
	// The seeded oracle is sound exactly when the run's pre-injection
	// world is the frozen base the seed was computed against — true for
	// every indirect and unapplied-direct run. An applied direct fault
	// replaced snap with the post-injection world above, which sends it
	// down the full-walk branch.
	if ep.seed != nil && snap == ws.baseFS() {
		inj.Violations = ep.seed.EvaluateFrom(pl.armedIdx, obs)
	} else {
		inj.Violations = c.Policy.Evaluate(obs)
	}
	if phase != nil {
		phase("compare", compareStart, time.Since(compareStart))
	}
	// Recycle the trace buffer. Violations carry only derived strings and
	// the kernel dies with this call, so nothing can observe the reuse;
	// clearing first drops the payload references the events pin.
	clear(trace[:cap(trace)])
	*bufp = trace[:0]
	traceBufs.Put(bufp)
	return inj
}
