package inject_test

import (
	"testing"

	"repro/internal/apps/lpr"
	"repro/internal/apps/turnin"
	"repro/internal/core/inject"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
)

// fp prepares the campaign and returns its fingerprint, failing the
// test on a planning error.
func fp(t *testing.T, c inject.Campaign, opt inject.Options, labels ...string) string {
	t.Helper()
	plan, err := inject.PrepareWith(c, opt)
	if err != nil {
		t.Fatalf("prepare %s: %v", c.Name, err)
	}
	return plan.Fingerprint(labels...)
}

// TestFingerprintStable asserts the core cache property: planning the
// same campaign twice — two fresh worlds, two fresh traces — hashes to
// the same fingerprint.
func TestFingerprintStable(t *testing.T) {
	t.Parallel()
	for _, build := range map[string]func() inject.Campaign{
		"lpr":    func() inject.Campaign { return lpr.Campaign(lpr.Vulnerable) },
		"turnin": func() inject.Campaign { return turnin.Campaign(turnin.Vulnerable) },
	} {
		a := fp(t, build(), inject.Options{}, "job", "vulnerable")
		b := fp(t, build(), inject.Options{}, "job", "vulnerable")
		if a != b {
			t.Errorf("same campaign, different fingerprints: %s vs %s", a, b)
		}
		if len(a) != 64 {
			t.Errorf("fingerprint %q is not a hex sha256", a)
		}
	}
}

// TestFingerprintDiscriminates asserts that every cached-result
// invalidation trigger — program variant (and with it the clean trace),
// site selection, fault list, engine options, oracle policy, job labels
// — perturbs the fingerprint.
func TestFingerprintDiscriminates(t *testing.T) {
	t.Parallel()
	base := fp(t, lpr.Campaign(lpr.Vulnerable), inject.Options{}, "lpr", "vulnerable")

	variants := map[string]string{
		// The fixed program takes a different path through the
		// environment: a different clean trace, so a different plan.
		"program variant": fp(t, lpr.Campaign(lpr.Fixed), inject.Options{}, "lpr", "vulnerable"),
		// Restricting the sites shrinks the fault list.
		"site selection": fp(t, lpr.CreateSiteCampaign(lpr.Vulnerable), inject.Options{}, "lpr", "vulnerable"),
		// Options reshape the fault list even over an identical trace.
		"engine options": fp(t, lpr.Campaign(lpr.Vulnerable), inject.Options{OnlyDirect: true}, "lpr", "vulnerable"),
		// Labels distinguish suite jobs that happen to plan identically.
		"job labels": fp(t, lpr.Campaign(lpr.Vulnerable), inject.Options{}, "lpr", "fixed"),
	}

	// The oracle configuration changes run verdicts without touching
	// the trace or the fault list.
	repoliced := lpr.Campaign(lpr.Vulnerable)
	repoliced.Policy.TrustedWritePaths = append([]string{}, repoliced.Policy.TrustedWritePaths...)
	repoliced.Policy.TrustedWritePaths = append(repoliced.Policy.TrustedWritePaths, "/somewhere/else")
	variants["oracle policy"] = fp(t, repoliced, inject.Options{}, "lpr", "vulnerable")

	// The fault parameterisation changes what the appliers do.
	refaulted := lpr.Campaign(lpr.Vulnerable)
	refaulted.Faults.Attacker = proc.NewCred(4242, 4242)
	variants["fault config"] = fp(t, refaulted, inject.Options{}, "lpr", "vulnerable")

	seen := map[string]string{base: "base"}
	for what, got := range variants {
		if got == base {
			t.Errorf("changing %s did not change the fingerprint", what)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s and %s collide on %s", what, prev, got)
		}
		seen[got] = what
	}
}

// srcFP computes the source fingerprint, failing the test when the
// campaign declares no Source.
func srcFP(t *testing.T, c inject.Campaign, opt inject.Options, labels ...string) string {
	t.Helper()
	s, ok := inject.SourceFingerprint(c, opt, labels...)
	if !ok {
		t.Fatalf("campaign %s declares no Source", c.Name)
	}
	return s
}

// TestSourceFingerprintStableWithoutPlanning asserts the whole point:
// the source fingerprint is computable without a clean run (no world
// is ever built) and is stable across fresh campaign constructions.
func TestSourceFingerprintStableWithoutPlanning(t *testing.T) {
	t.Parallel()
	build := func() inject.Campaign {
		c := lpr.Campaign(lpr.Vulnerable)
		c.Source = "lpr@1/vulnerable"
		// A World that explodes proves SourceFingerprint never builds one.
		c.World = func() (*kernel.Kernel, inject.Launch) {
			t.Fatal("SourceFingerprint built a world")
			return nil, inject.Launch{}
		}
		return c
	}
	a := srcFP(t, build(), inject.Options{}, "lpr", "vulnerable")
	b := srcFP(t, build(), inject.Options{}, "lpr", "vulnerable")
	if a != b {
		t.Errorf("same source, different fingerprints: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Errorf("source fingerprint %q is not a hex sha256", a)
	}
}

// TestSourceFingerprintDiscriminates asserts every invalidation
// trigger a source address can see — the declared identity, the
// configuration, the options, the labels — perturbs the hash, and that
// source and plan fingerprints never collide (disjoint hash domains).
func TestSourceFingerprintDiscriminates(t *testing.T) {
	t.Parallel()
	sourced := func(mut func(*inject.Campaign)) inject.Campaign {
		c := lpr.Campaign(lpr.Vulnerable)
		c.Source = "lpr@1/vulnerable"
		if mut != nil {
			mut(&c)
		}
		return c
	}
	base := srcFP(t, sourced(nil), inject.Options{}, "lpr", "vulnerable")

	variants := map[string]string{
		"source identity": srcFP(t, sourced(func(c *inject.Campaign) { c.Source = "lpr@2/vulnerable" }), inject.Options{}, "lpr", "vulnerable"),
		"site selection":  srcFP(t, sourced(func(c *inject.Campaign) { c.Sites = []string{"lpr:create"} }), inject.Options{}, "lpr", "vulnerable"),
		"engine options":  srcFP(t, sourced(nil), inject.Options{OnlyDirect: true}, "lpr", "vulnerable"),
		"job labels":      srcFP(t, sourced(nil), inject.Options{}, "lpr", "fixed"),
		"fault config": srcFP(t, sourced(func(c *inject.Campaign) {
			c.Faults.Attacker = proc.NewCred(4242, 4242)
		}), inject.Options{}, "lpr", "vulnerable"),
	}
	seen := map[string]string{base: "base"}
	for what, got := range variants {
		if got == base {
			t.Errorf("changing %s did not change the source fingerprint", what)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s and %s collide on %s", what, prev, got)
		}
		seen[got] = what
	}
	if plan := fp(t, sourced(nil), inject.Options{}, "lpr", "vulnerable"); plan == base {
		t.Error("source fingerprint collides with the plan fingerprint")
	}

	if _, ok := inject.SourceFingerprint(lpr.Campaign(lpr.Vulnerable), inject.Options{}); ok {
		t.Error("a sourceless campaign produced a source fingerprint")
	}
}

// TestFingerprintCoversPolicyDefaults guards against a silent footgun:
// two campaigns differing only in MinLeakLen must not share a cache
// slot, since the oracle would judge their runs differently.
func TestFingerprintCoversPolicyDefaults(t *testing.T) {
	t.Parallel()
	a := turnin.Campaign(turnin.Vulnerable)
	b := turnin.Campaign(turnin.Vulnerable)
	b.Policy.MinLeakLen = 99
	if fp(t, a, inject.Options{}) == fp(t, b, inject.Options{}) {
		t.Error("MinLeakLen change did not change the fingerprint")
	}
}
