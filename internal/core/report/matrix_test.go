package report

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/core/sched"
)

// mkResult builds a result with the given run and violation counts.
func mkResult(runs, violations int) *inject.Result {
	r := &inject.Result{}
	for i := 0; i < runs; i++ {
		in := inject.Injection{Point: "s#0", Site: "s"}
		if i < violations {
			in.Violations = []policy.Violation{{Kind: policy.KindIntegrity, Object: "/x"}}
		}
		r.Injections = append(r.Injections, in)
	}
	return r
}

func TestMatrixRollup(t *testing.T) {
	t.Parallel()
	sr := &sched.SuiteResult{Campaigns: []sched.CampaignResult{
		{Job: sched.Job{Name: "lpr", Variant: "vulnerable"}, Result: mkResult(4, 4)},
		{Job: sched.Job{Name: "lpr", Variant: "fixed"}, Result: mkResult(4, 0)},
		{Job: sched.Job{Name: "lpr", Variant: "vulnerable+nodedup"}, Result: mkResult(6, 4)},
		{Job: sched.Job{Name: "lpr", Variant: "vulnerable+nodedup+s2"}, Result: mkResult(3, 1)},
		{Job: sched.Job{Name: "lpr+turnin", Variant: "vulnerable+late-direct+s10"}, Result: mkResult(9, 2)},
		{Job: sched.Job{Name: "broken", Variant: "vulnerable"}, Err: errors.New("boom")},
	}}
	out := Matrix(sr)

	for _, want := range []string{
		"matrix: 6 campaigns across 3 applications",
		"by application:",
		"by engine option:",
		"by site cut:",
		"(1 failed)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rollup missing %q:\n%s", want, out)
		}
	}

	lines := strings.Split(out, "\n")
	row := func(key string) string {
		t.Helper()
		for _, l := range lines {
			if strings.HasPrefix(strings.TrimSpace(l), key+" ") {
				return l
			}
		}
		t.Fatalf("no row %q in rollup:\n%s", key, out)
		return ""
	}
	fields := func(l string) (jobs, runs, violations string) {
		f := strings.Fields(l)
		if len(f) < 4 {
			t.Fatalf("short row %q", l)
		}
		return f[1], f[2], f[3]
	}
	// lpr: 4 campaigns, 4+4+6+3 = 17 runs, 4+0+4+1 = 9 violations.
	if j, r, v := fields(row("lpr")); j != "4" || r != "17" || v != "9" {
		t.Errorf("lpr row = %q, want 4/17/9", row("lpr"))
	}
	// base option: the two plain cells plus the failed job.
	if j, r, v := fields(row("base")); j != "3" || r != "8" || v != "4" {
		t.Errorf("base row = %q, want 3/8/4", row("base"))
	}
	// nodedup option: two cells (with and without cut).
	if j, r, v := fields(row("nodedup")); j != "2" || r != "9" || v != "5" {
		t.Errorf("nodedup row = %q, want 2/9/5", row("nodedup"))
	}
	// Site cuts order numerically: s2 before s10.
	if i2, i10 := strings.Index(out, "\n  s2 "), strings.Index(out, "\n  s10 "); i2 < 0 || i10 < 0 || i2 > i10 {
		t.Errorf("cut rows out of numeric order (s2 at %d, s10 at %d):\n%s", i2, i10, out)
	}
}

func TestMatrixAxes(t *testing.T) {
	t.Parallel()
	cases := []struct {
		variant, option, cut string
	}{
		{"vulnerable", "base", "full"},
		{"fixed", "base", "full"},
		{"vulnerable+nodedup", "nodedup", "full"},
		{"vulnerable+s4", "base", "s4"},
		{"fixed+late-direct+s12", "late-direct", "s12"},
		{"vulnerable+late-nodedup", "late-nodedup", "full"},
		// "s" followed by non-digits is an option token, not a cut.
		{"vulnerable+sweep", "sweep", "full"},
	}
	for _, tc := range cases {
		option, cut := matrixAxes(tc.variant)
		if option != tc.option || cut != tc.cut {
			t.Errorf("matrixAxes(%q) = (%q, %q), want (%q, %q)", tc.variant, option, cut, tc.option, tc.cut)
		}
	}
}
