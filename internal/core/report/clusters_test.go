package report

import (
	"strings"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/core/sched"
	"repro/internal/interpose"
)

func scheduledSuite() *sched.SuiteResult {
	results := suiteResults()
	return &sched.SuiteResult{Campaigns: []sched.CampaignResult{
		{Job: sched.Job{Name: "alpha", Variant: "vulnerable"}, Result: results[0]},
		{Job: sched.Job{Name: "beta", Variant: "fixed"}, Result: results[1]},
		{Job: sched.Job{Name: "gamma", Variant: "vulnerable"}, Err: inject.ErrNoWorld},
	}}
}

func TestSuiteRunRendering(t *testing.T) {
	t.Parallel()
	out := SuiteRun(scheduledSuite())
	for _, want := range []string{
		"alpha/vulnerable", "beta/fixed", "gamma/vulnerable", "FAILED", "region",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("suite run missing %q:\n%s", want, out)
		}
	}
}

func TestClustersRendering(t *testing.T) {
	t.Parallel()
	clusters := []sched.Cluster{
		{
			Sig: sched.Signature{
				Rule:  policy.KindIntegrity,
				Class: eai.ClassDirect,
				Attr:  eai.AttrExistence,
				Kind:  interpose.KindFile,
			},
			Findings: []sched.Finding{
				{Campaign: "alpha", Variant: "vulnerable", Point: "s#0",
					FaultID: "direct/file-system/existence", Object: "/x"},
				{Campaign: "beta", Variant: "vulnerable", Point: "t#0",
					FaultID: "direct/file-system/existence", Object: "/y"},
			},
		},
	}
	out := Clusters(clusters)
	for _, want := range []string{
		"1 violation classes", "[2 finding(s)]", "alpha/vulnerable", "beta/vulnerable", "/x", "/y",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("clusters missing %q:\n%s", want, out)
		}
	}
}
