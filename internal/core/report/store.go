package report

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/core/sched"
	"repro/internal/core/store"
)

// CacheStats renders the result-cache section of a suite run under
// `-cache`: the hit ratio, which campaigns replayed from the store, and
// any failed write-backs. It is printed after the suite report proper so
// the report stays byte-identical between cold and warm runs.
func CacheStats(sr *sched.SuiteResult) string {
	var b strings.Builder
	hits, total := sr.CacheHits(), len(sr.Campaigns)
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(hits) / float64(total)
	}
	fmt.Fprintf(&b, "result cache: %d/%d campaigns replayed (%.1f%% hits)\n", hits, total, pct)
	sourceHits := false
	writeBackFailures := 0
	for _, c := range sr.Campaigns {
		switch {
		case c.CachedSource:
			// A source-level hit never planned, so the plan fingerprint
			// is unknown; show the source address that matched.
			sourceHits = true
			fmt.Fprintf(&b, "  %-24s hit*  %s\n", c.Job.Label(), short(c.SourceFingerprint))
		case c.Cached:
			fmt.Fprintf(&b, "  %-24s hit   %s\n", c.Job.Label(), short(c.Fingerprint))
		case c.Err != nil:
			fmt.Fprintf(&b, "  %-24s skip  (campaign failed)\n", c.Job.Label())
		default:
			fmt.Fprintf(&b, "  %-24s miss  %s\n", c.Job.Label(), short(c.Fingerprint))
		}
		if c.CacheErr != nil {
			writeBackFailures++
			fmt.Fprintf(&b, "  %-24s       write-back failed: %v\n", "", c.CacheErr)
		}
	}
	if sourceHits {
		b.WriteString("  (* source-fingerprint hit: clean run skipped too)\n")
	}
	if writeBackFailures > 0 {
		fmt.Fprintf(&b, "  WARNING: %d campaign write-back(s) failed — results were NOT cached (flaky, mismatched, or unauthorized cache server?)\n", writeBackFailures)
	}
	return b.String()
}

// CacheTransport renders the one-line upload summary for a remote
// cache client, so a flaky cache server is visible even when the
// per-campaign lines scroll away. Empty when nothing failed.
func CacheTransport(cl *store.Client) string {
	attempts, failures := cl.PutStats()
	if failures == 0 {
		return ""
	}
	return fmt.Sprintf("cache transport: %d/%d upload(s) to %s failed\n", failures, attempts, cl.Base())
}

// MergedShards renders the merged-shard section of an `eptest -merge`
// run: which artifacts the combined report above was assembled from.
func MergedShards(infos []store.ShardInfo) string {
	var b strings.Builder
	jobs := 0
	for _, in := range infos {
		jobs += in.Jobs
	}
	fmt.Fprintf(&b, "merged from %d shard artifact(s), %d jobs\n", len(infos), jobs)
	for _, in := range infos {
		fmt.Fprintf(&b, "  shard %d/%d  %3d job(s)  %s\n", in.Shard, in.Of, in.Jobs, filepath.Base(in.Path))
	}
	return b.String()
}

// short abbreviates a fingerprint for display.
func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
