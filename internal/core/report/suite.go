package report

import (
	"fmt"
	"strings"

	"repro/internal/core/coverage"
	"repro/internal/core/inject"
)

// SuiteRow is one campaign's line in a suite summary.
type SuiteRow struct {
	Name       string
	Points     int
	Injected   int
	Violations int
	FC         float64
	IC         float64
	Region     coverage.Region
}

// Suite summarises many campaign results side by side — the view the
// paper's Section 4 gives across its targets.
func Suite(results []*inject.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %7s %9s %10s %7s %7s  %s\n",
		"campaign", "points", "injected", "violations", "FC", "IC", "region")
	for _, r := range Rows(results) {
		fmt.Fprintf(&b, "%-20s %7d %9d %10d %7.3f %7.3f  %s\n",
			r.Name, r.Points, r.Injected, r.Violations, r.FC, r.IC, r.Region)
	}
	return b.String()
}

// Rows computes the summary rows.
func Rows(results []*inject.Result) []SuiteRow {
	rows := make([]SuiteRow, 0, len(results))
	for _, res := range results {
		m := res.Metric()
		rows = append(rows, SuiteRow{
			Name:       res.Campaign,
			Points:     m.PointsPerturbed,
			Injected:   m.FaultsInjected,
			Violations: m.Violations(),
			FC:         m.FaultCoverage(),
			IC:         m.InteractionCoverage(),
			Region:     coverage.Classify(m),
		})
	}
	return rows
}

// Totals aggregates a suite into one metric (micro-average over
// injections and points).
func Totals(results []*inject.Result) coverage.Metric {
	var total coverage.Metric
	for _, res := range results {
		m := res.Metric()
		total.FaultsInjected += m.FaultsInjected
		total.FaultsTolerated += m.FaultsTolerated
		total.PointsPerturbed += m.PointsPerturbed
		total.PointsTotal += m.PointsTotal
	}
	return total
}
