package report

import (
	"strings"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
)

func suiteResults() []*inject.Result {
	mkInj := func(tolerate bool) inject.Injection {
		in := inject.Injection{Point: "s#0", Site: "s", FaultID: "direct/file-system/existence",
			Class: eai.ClassDirect, Attr: eai.AttrExistence, Applied: true}
		if !tolerate {
			in.Violations = []policy.Violation{{Kind: policy.KindIntegrity, Object: "/x"}}
		}
		return in
	}
	return []*inject.Result{
		{
			Campaign:       "alpha",
			TotalSites:     []string{"a", "b"},
			PerturbedSites: []string{"a", "b"},
			Injections:     []inject.Injection{mkInj(true), mkInj(true)},
		},
		{
			Campaign:       "beta",
			TotalSites:     []string{"a", "b", "c", "d"},
			PerturbedSites: []string{"a"},
			Injections:     []inject.Injection{mkInj(false), mkInj(true)},
		},
	}
}

func TestSuiteRendering(t *testing.T) {
	t.Parallel()
	out := Suite(suiteResults())
	for _, want := range []string{"alpha", "beta", "campaign", "region", "safe"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestRows(t *testing.T) {
	t.Parallel()
	rows := Rows(suiteResults())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "alpha" || rows[0].FC != 1 || rows[0].IC != 1 || rows[0].Violations != 0 {
		t.Errorf("alpha = %+v", rows[0])
	}
	if rows[1].Violations != 1 || rows[1].FC != 0.5 || rows[1].IC != 0.25 {
		t.Errorf("beta = %+v", rows[1])
	}
}

func TestTotals(t *testing.T) {
	t.Parallel()
	m := Totals(suiteResults())
	if m.FaultsInjected != 4 || m.FaultsTolerated != 3 ||
		m.PointsPerturbed != 3 || m.PointsTotal != 6 {
		t.Errorf("totals = %+v", m)
	}
	if m.Violations() != 1 {
		t.Errorf("violations = %d", m.Violations())
	}
}
