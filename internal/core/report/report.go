// Package report renders campaign results and the paper's tables as text:
// the per-campaign injection report the CLI prints, and the Table 5/6
// catalog listings.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/coverage"
	"repro/internal/core/eai"
	"repro/internal/core/inject"
)

// Campaign renders a full campaign report.
func Campaign(res *inject.Result) string {
	var b strings.Builder
	m := res.Metric()
	fmt.Fprintf(&b, "=== EAI fault-injection campaign: %s ===\n", res.Campaign)
	fmt.Fprintf(&b, "interaction points on trace : %d\n", len(res.TotalSites))
	fmt.Fprintf(&b, "points perturbed            : %d\n", m.PointsPerturbed)
	fmt.Fprintf(&b, "faults injected (n)         : %d\n", m.FaultsInjected)
	fmt.Fprintf(&b, "faults tolerated            : %d\n", m.FaultsTolerated)
	fmt.Fprintf(&b, "security violations         : %d\n", m.Violations())
	fmt.Fprintf(&b, "fault coverage              : %.3f\n", m.FaultCoverage())
	fmt.Fprintf(&b, "interaction coverage        : %.3f\n", m.InteractionCoverage())
	fmt.Fprintf(&b, "adequacy region (Fig. 2)    : %s\n", coverage.Classify(m))
	if v := res.Violations(); len(v) > 0 {
		b.WriteString("\nviolating injections:\n")
		for _, in := range v {
			fmt.Fprintf(&b, "  %-28s %-44s", in.Point, in.FaultID)
			for _, viol := range in.Violations {
				fmt.Fprintf(&b, " %s(%s)", viol.Kind, viol.Object)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// PerPoint renders the per-interaction-point breakdown.
func PerPoint(res *inject.Result) string {
	type stat struct {
		injected, violated int
	}
	stats := make(map[string]*stat)
	var order []string
	for _, in := range res.Injections {
		s, ok := stats[in.Site]
		if !ok {
			s = &stat{}
			stats[in.Site] = s
			order = append(order, in.Site)
		}
		s.injected++
		if !in.Tolerated() {
			s.violated++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %9s %9s\n", "interaction point (site)", "injected", "violated")
	for _, site := range order {
		s := stats[site]
		fmt.Fprintf(&b, "%-36s %9d %9d\n", site, s.injected, s.violated)
	}
	return b.String()
}

// Table5 renders the indirect-fault catalog in the layout of the paper's
// Table 5.
func Table5() string {
	var b strings.Builder
	b.WriteString("Table 5: Indirect Environment Faults and Environment Perturbations\n")
	fmt.Fprintf(&b, "%-20s %s\n", "Semantic", "Fault Injections")
	for _, sem := range eai.AllSemantics() {
		if sem == eai.SemRaw {
			continue // implementation fallback, not a paper row
		}
		names := make([]string, 0, 8)
		for _, f := range eai.CatalogIndirect(sem) {
			names = append(names, f.Name)
		}
		fmt.Fprintf(&b, "%-20s %s\n", sem, strings.Join(names, ", "))
	}
	return b.String()
}

// Table6 renders the direct-fault catalog in the layout of the paper's
// Table 6.
func Table6() string {
	var b strings.Builder
	b.WriteString("Table 6: Direct Environment Faults and Environment Perturbations\n")
	fmt.Fprintf(&b, "%-14s %-24s %s\n", "Entity", "Attribute", "Fault Injection")
	for _, ent := range eai.AllEntities() {
		for _, f := range eai.CatalogDirect(ent) {
			fmt.Fprintf(&b, "%-14s %-24s %s\n", ent, f.Attr, f.Desc)
		}
	}
	return b.String()
}

// CountTable is a generic category-count table renderer used for the
// Tables 1-4 reproductions.
type CountTable struct {
	Title      string
	Categories []string
	Counts     map[string]int
}

// Total sums all counts.
func (t CountTable) Total() int {
	total := 0
	for _, c := range t.Categories {
		total += t.Counts[c]
	}
	return total
}

// String renders the table with counts and percentages, mirroring the
// number/percent rows of the paper's tables.
func (t CountTable) String() string {
	var b strings.Builder
	total := t.Total()
	fmt.Fprintf(&b, "%s (total %d)\n", t.Title, total)
	w := 12
	for _, c := range t.Categories {
		if len(c) > w {
			w = len(c)
		}
	}
	for _, c := range t.Categories {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(t.Counts[c]) / float64(total)
		}
		fmt.Fprintf(&b, "  %-*s %5d  %5.1f%%\n", w, c, t.Counts[c], pct)
	}
	return b.String()
}

// SortedKeys returns the map keys sorted, for deterministic ad-hoc tables.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
