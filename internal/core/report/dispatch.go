package report

import (
	"fmt"
	"strings"

	"repro/internal/core/sched"
)

// Dispatch renders the work-stealing dispatcher's scheduling section
// of a suite run: the totals, then one line per worker. The totals
// (workers, campaigns planned, runs executed) are deterministic for a
// given suite; the per-worker split and the steal count describe how
// this particular run balanced, which is why the section is printed
// only under -v and never takes part in report byte-identity checks.
func Dispatch(sr *sched.SuiteResult) string {
	ds := sr.Dispatch
	var b strings.Builder
	fmt.Fprintf(&b, "dispatcher: %d worker(s), %d campaign(s) planned, %d run(s) executed, %d steal(s)\n",
		ds.Workers, ds.Plans, ds.Runs, ds.Steals)
	for w, ws := range ds.PerWorker {
		fmt.Fprintf(&b, "  worker %-3d %4d plan(s) %6d run(s) %5d steal(s)\n", w, ws.Plans, ws.Runs, ws.Steals)
	}
	return b.String()
}
