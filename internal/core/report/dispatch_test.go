package report

import (
	"strings"
	"testing"

	"repro/internal/core/sched"
)

func TestDispatchRendering(t *testing.T) {
	t.Parallel()
	sr := scheduledSuite()
	sr.Dispatch = sched.DispatchStats{
		Workers: 2,
		Plans:   3,
		Runs:    45,
		Steals:  7,
		PerWorker: []sched.WorkerStats{
			{Plans: 2, Runs: 40, Steals: 0},
			{Plans: 1, Runs: 5, Steals: 7},
		},
	}
	out := Dispatch(sr)
	for _, want := range []string{
		"dispatcher: 2 worker(s), 3 campaign(s) planned, 45 run(s) executed, 7 steal(s)",
		"worker 0", "worker 1", "40 run(s)", "7 steal(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dispatch section missing %q:\n%s", want, out)
		}
	}
}

// TestCacheStatsSourceHits pins the source-level hit rendering: the
// starred marker, the source fingerprint in place of the (unknown)
// plan fingerprint, and the legend line.
func TestCacheStatsSourceHits(t *testing.T) {
	t.Parallel()
	sr := scheduledSuite()
	sr.Campaigns[0].Cached = true
	sr.Campaigns[0].CachedSource = true
	sr.Campaigns[0].SourceFingerprint = strings.Repeat("ab", 32)
	sr.Campaigns[1].Cached = true
	sr.Campaigns[1].Fingerprint = strings.Repeat("cd", 32)
	out := CacheStats(sr)
	for _, want := range []string{
		"result cache: 2/3 campaigns replayed",
		"hit*  abababababab",
		"hit   cdcdcdcdcdcd",
		"(* source-fingerprint hit: clean run skipped too)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cache section missing %q:\n%s", want, out)
		}
	}

	// Without source hits the legend stays out, keeping PR 2 output
	// byte-stable for sourceless suites.
	sr.Campaigns[0].CachedSource = false
	sr.Campaigns[0].Fingerprint = strings.Repeat("ef", 32)
	if out := CacheStats(sr); strings.Contains(out, "source-fingerprint") {
		t.Errorf("legend printed without source hits:\n%s", out)
	}
}
