package report

import (
	"fmt"
	"strings"

	"repro/internal/core/coverage"
	"repro/internal/core/sched"
)

// SuiteRun renders a scheduled suite's per-campaign summary: one row
// per job with its adequacy metric, in job order, with failed
// campaigns called out inline.
func SuiteRun(sr *sched.SuiteResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %7s %9s %10s %7s %7s  %s\n",
		"campaign", "points", "injected", "violations", "FC", "IC", "region")
	for _, c := range sr.Campaigns {
		if c.Err != nil {
			fmt.Fprintf(&b, "%-24s FAILED: %v\n", c.Job.Label(), c.Err)
			continue
		}
		m := c.Result.Metric()
		fmt.Fprintf(&b, "%-24s %7d %9d %10d %7.3f %7.3f  %s\n",
			c.Job.Label(), m.PointsPerturbed, m.FaultsInjected, m.Violations(),
			m.FaultCoverage(), m.InteractionCoverage(), coverage.Classify(m))
	}
	return b.String()
}

// Clusters renders deduplicated suite findings: one block per
// violation cluster, largest first, with the signature, the campaigns
// it spans, and each member occurrence.
func Clusters(clusters []sched.Cluster) string {
	var b strings.Builder
	fmt.Fprintf(&b, "clustered findings: %d violation classes\n", len(clusters))
	for _, cl := range clusters {
		fmt.Fprintf(&b, "\n[%d finding(s)] %s\n", len(cl.Findings), cl.Sig)
		fmt.Fprintf(&b, "  campaigns: %s\n", strings.Join(cl.Campaigns(), ", "))
		for _, f := range cl.Findings {
			fmt.Fprintf(&b, "  %-24s %-24s %-44s %s\n", f.Label(), f.Point, f.FaultID, f.Object)
		}
	}
	return b.String()
}
