package report

import (
	"strings"
	"testing"

	"repro/internal/core/eai"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
)

func sampleResult() *inject.Result {
	return &inject.Result{
		Campaign:       "sample",
		TotalSites:     []string{"a", "b", "c"},
		PerturbedSites: []string{"a", "b"},
		Injections: []inject.Injection{
			{Point: "a#0", Site: "a", FaultID: "direct/file-system/existence", Class: eai.ClassDirect, Attr: eai.AttrExistence, Applied: true},
			{Point: "a#0", Site: "a", FaultID: "direct/file-system/symbolic-link", Class: eai.ClassDirect, Attr: eai.AttrSymlink, Applied: true,
				Violations: []policy.Violation{{Kind: policy.KindIntegrity, Object: "/etc/passwd", Point: "a#0", Detail: "d"}}},
			{Point: "b#0", Site: "b", FaultID: "indirect/file-name/change-length", Class: eai.ClassIndirect, Sem: eai.SemFileName, Applied: true,
				CrashMsg: "overflow", Violations: []policy.Violation{{Kind: policy.KindCrash, Object: "process", Detail: "overflow"}}},
		},
	}
}

func TestCampaignReport(t *testing.T) {
	t.Parallel()
	out := Campaign(sampleResult())
	for _, want := range []string{
		"sample",
		"faults injected (n)         : 3",
		"security violations         : 2",
		"fault coverage              : 0.333",
		"interaction coverage        : 0.667",
		"integrity(/etc/passwd)",
		"crash(process)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestPerPoint(t *testing.T) {
	t.Parallel()
	out := PerPoint(sampleResult())
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("per-point missing sites:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 sites
		t.Errorf("per-point lines = %d:\n%s", len(lines), out)
	}
}

func TestTable5Rendering(t *testing.T) {
	t.Parallel()
	out := Table5()
	for _, want := range []string{
		"file-name", "command", "path-list", "permission-mask",
		"file-extension", "ip-address", "packet", "host-name",
		"dns-reply", "process-message",
		"change-length", "insert-dotdot", "rearrange-order", "zero-mask",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 missing %q", want)
		}
	}
	if strings.Contains(out, "raw") {
		t.Error("Table 5 should not include the raw fallback row")
	}
}

func TestTable6Rendering(t *testing.T) {
	t.Parallel()
	out := Table6()
	for _, want := range []string{
		"file-system", "network", "process", "registry",
		"existence", "symbolic-link", "permission", "ownership",
		"content-invariance", "name-invariance", "working-directory",
		"message-authenticity", "protocol", "socket-share",
		"service-availability", "entity-trustability",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 6 missing %q", want)
		}
	}
}

func TestCountTable(t *testing.T) {
	t.Parallel()
	ct := CountTable{
		Title:      "Table 1: high-level classification",
		Categories: []string{"indirect", "direct", "others"},
		Counts:     map[string]int{"indirect": 81, "direct": 48, "others": 13},
	}
	if ct.Total() != 142 {
		t.Errorf("total = %d", ct.Total())
	}
	out := ct.String()
	for _, want := range []string{"total 142", "indirect", "81", "57.0%", "33.8%", "9.2%"} {
		if !strings.Contains(out, want) {
			t.Errorf("count table missing %q:\n%s", want, out)
		}
	}
	// Empty table renders without dividing by zero.
	empty := CountTable{Title: "t", Categories: []string{"x"}, Counts: map[string]int{}}
	if !strings.Contains(empty.String(), "0.0%") {
		t.Error("empty table percent")
	}
}

func TestSortedKeys(t *testing.T) {
	t.Parallel()
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
