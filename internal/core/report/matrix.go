package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/sched"
)

// axisTotals accumulates one axis value's rollup.
type axisTotals struct {
	jobs, runs, violations, failed int
}

// Matrix renders the per-axis rollup of a matrix suite run: campaign
// counts, injection runs and violations aggregated by application, by
// engine-option sweep, and by site cut. Axis coordinates are parsed
// back out of the job variant labels the matrix generator writes
// ("vulnerable+nodedup+s4": program, then option tokens, then an
// "s<k>" site cut) — the same labels shard artifacts persist, so a
// merged matrix report aggregates identically to a single-process one.
func Matrix(sr *sched.SuiteResult) string {
	apps := map[string]*axisTotals{}
	options := map[string]*axisTotals{}
	cuts := map[string]*axisTotals{}
	var appOrder []string

	bump := func(m map[string]*axisTotals, key string, c *sched.CampaignResult) *axisTotals {
		t, ok := m[key]
		if !ok {
			t = &axisTotals{}
			m[key] = t
		}
		t.jobs++
		if c.Err != nil {
			t.failed++
			return t
		}
		met := c.Result.Metric()
		t.runs += met.FaultsInjected
		t.violations += met.Violations()
		return t
	}

	for i := range sr.Campaigns {
		c := &sr.Campaigns[i]
		if _, ok := apps[c.Job.Name]; !ok {
			appOrder = append(appOrder, c.Job.Name)
		}
		bump(apps, c.Job.Name, c)
		option, cut := matrixAxes(c.Job.Variant)
		bump(options, option, c)
		bump(cuts, cut, c)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "matrix: %d campaigns across %d applications\n", len(sr.Campaigns), len(appOrder))
	section := func(title string, m map[string]*axisTotals, order []string) {
		fmt.Fprintf(&b, "\nby %s:\n", title)
		fmt.Fprintf(&b, "  %-28s %9s %9s %10s\n", title, "campaigns", "runs", "violations")
		for _, key := range order {
			t := m[key]
			fmt.Fprintf(&b, "  %-28s %9d %9d %10d", key, t.jobs, t.runs, t.violations)
			if t.failed > 0 {
				fmt.Fprintf(&b, "  (%d failed)", t.failed)
			}
			b.WriteByte('\n')
		}
	}
	section("application", apps, appOrder)
	section("engine option", options, axisOrder(options))
	section("site cut", cuts, axisOrder(cuts))
	return b.String()
}

// matrixAxes extracts the option and site-cut coordinates from a
// variant label. The program token is dropped; missing axes report as
// "base" (paper methodology) and "full" (whole surface).
func matrixAxes(variant string) (option, cut string) {
	option, cut = "base", "full"
	tokens := strings.Split(variant, "+")
	var opts []string
	for _, tok := range tokens[1:] {
		if isCutToken(tok) {
			cut = tok
			continue
		}
		opts = append(opts, tok)
	}
	if len(opts) > 0 {
		option = strings.Join(opts, "+")
	}
	return option, cut
}

// isCutToken reports whether tok is a site-cut coordinate ("s<k>").
func isCutToken(tok string) bool {
	if len(tok) < 2 || tok[0] != 's' {
		return false
	}
	for _, r := range tok[1:] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// axisOrder sorts axis values with the unswept baseline first, numeric
// cut tokens in numeric order, and everything else alphabetically.
func axisOrder(m map[string]*axisTotals) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		abase := a == "base" || a == "full"
		bbase := b == "base" || b == "full"
		if abase != bbase {
			return abase
		}
		if isCutToken(a) && isCutToken(b) && len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return keys
}
