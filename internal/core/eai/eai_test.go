package eai

import (
	"strings"
	"testing"

	"repro/internal/interpose"
	"repro/internal/sim/kernel"
	"repro/internal/sim/netsim"
	"repro/internal/sim/proc"
	"repro/internal/sim/registry"
	"repro/internal/sim/vfs"
)

func TestEnumStrings(t *testing.T) {
	t.Parallel()
	if ClassIndirect.String() != "indirect" || ClassDirect.String() != "direct" {
		t.Error("Class strings")
	}
	if OriginUserInput.String() != "user-input" || OriginProcessInput.String() != "process-input" {
		t.Error("Origin strings")
	}
	if EntityFileSystem.String() != "file-system" || EntityRegistry.String() != "registry" {
		t.Error("Entity strings")
	}
	if AttrExistence.String() != "existence" || AttrWorkingDirectory.String() != "working-directory" {
		t.Error("Attr strings")
	}
	if SemFileName.String() != "file-name" || SemDNSReply.String() != "dns-reply" {
		t.Error("Semantic strings")
	}
}

func TestOriginForOp(t *testing.T) {
	t.Parallel()
	tests := []struct {
		op   interpose.Op
		want Origin
	}{
		{interpose.OpArg, OriginUserInput},
		{interpose.OpGetenv, OriginEnvVar},
		{interpose.OpRead, OriginFileInput},
		{interpose.OpReadlink, OriginFileInput},
		{interpose.OpReadDir, OriginFileInput},
		{interpose.OpRecv, OriginNetworkInput},
		{interpose.OpDNS, OriginNetworkInput},
		{interpose.OpMsgRecv, OriginProcessInput},
		{interpose.OpRegGet, OriginFileInput},
		{interpose.OpWrite, 0},
		{interpose.OpOpen, 0},
	}
	for _, tt := range tests {
		if got := OriginForOp(tt.op); got != tt.want {
			t.Errorf("OriginForOp(%s) = %v, want %v", tt.op, got, tt.want)
		}
	}
}

func TestEntityForKind(t *testing.T) {
	t.Parallel()
	tests := []struct {
		k    interpose.ObjectKind
		want Entity
	}{
		{interpose.KindFile, EntityFileSystem},
		{interpose.KindDir, EntityFileSystem},
		{interpose.KindNetwork, EntityNetwork},
		{interpose.KindProcess, EntityProcess},
		{interpose.KindRegistry, EntityRegistry},
		{interpose.KindArg, 0},
		{interpose.KindEnvVar, 0},
	}
	for _, tt := range tests {
		if got := EntityForKind(tt.k); got != tt.want {
			t.Errorf("EntityForKind(%v) = %v, want %v", tt.k, got, tt.want)
		}
	}
}

func TestInferSemantic(t *testing.T) {
	t.Parallel()
	tests := []struct {
		op   interpose.Op
		path string
		want Semantic
	}{
		{interpose.OpGetenv, "PATH", SemPathList},
		{interpose.OpGetenv, "LD_LIBRARY_PATH", SemPathList},
		{interpose.OpGetenv, "UMASK", SemPermMask},
		{interpose.OpGetenv, "HOME", SemFileName},
		{interpose.OpGetenv, "RANDOM_VAR", SemRaw},
		{interpose.OpDNS, "host", SemDNSReply},
		{interpose.OpRecv, "a:1", SemPacket},
		{interpose.OpMsgRecv, "box", SemProcMessage},
		{interpose.OpReadlink, "/x", SemFileName},
		{interpose.OpRead, "/x", SemRaw},
	}
	for _, tt := range tests {
		if got := InferSemantic(tt.op, tt.path); got != tt.want {
			t.Errorf("InferSemantic(%s, %q) = %v, want %v", tt.op, tt.path, got, tt.want)
		}
	}
}

// TestTable5Shape pins the catalog to the published Table 5: every
// semantic row exists and carries the paper's perturbations.
func TestTable5Shape(t *testing.T) {
	t.Parallel()
	wantCounts := map[Semantic]int{
		SemFileName:      5,
		SemCommand:       7,
		SemPathList:      5,
		SemPermMask:      1,
		SemFileExtension: 2,
		SemIPAddress:     2,
		SemPacket:        2,
		SemHostName:      2,
		SemDNSReply:      2,
		SemProcMessage:   2,
		SemRaw:           2,
	}
	for sem, want := range wantCounts {
		faults := CatalogIndirect(sem)
		if len(faults) != want {
			t.Errorf("CatalogIndirect(%s) has %d faults, want %d", sem, len(faults), want)
		}
		seen := map[string]bool{}
		for _, f := range faults {
			if f.Sem != sem {
				t.Errorf("%s carries wrong semantic %v", f.ID, f.Sem)
			}
			if f.Mutate == nil {
				t.Errorf("%s has no mutator", f.ID)
			}
			if f.Class() != ClassIndirect {
				t.Errorf("%s class = %v", f.ID, f.Class())
			}
			if seen[f.ID] {
				t.Errorf("duplicate fault id %s", f.ID)
			}
			seen[f.ID] = true
		}
	}
	if got := len(AllIndirect()); got != 32 {
		t.Errorf("AllIndirect = %d faults, want 32", got)
	}
}

func TestIndirectMutators(t *testing.T) {
	t.Parallel()
	byName := func(sem Semantic, name string) IndirectFault {
		for _, f := range CatalogIndirect(sem) {
			if f.Name == name {
				return f
			}
		}
		t.Fatalf("fault %s/%s not found", sem, name)
		return IndirectFault{}
	}
	tests := []struct {
		sem   Semantic
		name  string
		in    string
		check func(out string) bool
	}{
		{SemFileName, "change-length", "hw1.c", func(o string) bool { return len(o) > 4000 && strings.HasPrefix(o, "hw1.c") }},
		{SemFileName, "use-relative-path", "/etc/passwd", func(o string) bool { return o == "etc/passwd" }},
		{SemFileName, "use-relative-path", "hw1.c", func(o string) bool { return o == "./hw1.c" }},
		{SemFileName, "use-absolute-path", "hw1.c", func(o string) bool { return o == "/hw1.c" }},
		{SemFileName, "use-absolute-path", "/abs", func(o string) bool { return o == "/abs" }},
		{SemFileName, "insert-dotdot", ".login", func(o string) bool { return o == "../.login" }},
		{SemFileName, "insert-slash", "x", func(o string) bool { return o == "/x" }},
		{SemCommand, "insert-semicolon", "lpr", func(o string) bool { return o == "lpr; sh" }},
		{SemCommand, "insert-pipe", "lpr", func(o string) bool { return o == "lpr| sh" }},
		{SemCommand, "insert-newline", "lpr", func(o string) bool { return o == "lpr\nsh" }},
		{SemPathList, "rearrange-order", "/a:/b:/c", func(o string) bool { return o == "/c:/b:/a" }},
		{SemPathList, "insert-untrusted-path", "/usr/bin", func(o string) bool { return strings.HasPrefix(o, "/tmp/attacker/bin:") }},
		{SemPermMask, "zero-mask", "022", func(o string) bool { return o == "0" }},
		{SemFileExtension, "change-extension", "font.fon", func(o string) bool { return o == "font.exe" }},
		{SemDNSReply, "bad-format", "10.0.0.5", func(o string) bool { return strings.Contains(o, "10.0.0.5") && o != "10.0.0.5" }},
	}
	for _, tt := range tests {
		f := byName(tt.sem, tt.name)
		out := string(f.Mutate([]byte(tt.in)))
		if !tt.check(out) {
			t.Errorf("%s(%q) = %q", f.ID, tt.in, out)
		}
	}
}

func TestMutatorsDoNotAliasInput(t *testing.T) {
	t.Parallel()
	for _, f := range AllIndirect() {
		in := []byte("sample-input-value")
		orig := string(in)
		_ = f.Mutate(in)
		if string(in) != orig {
			t.Errorf("%s mutated its input in place", f.ID)
		}
	}
}

// --- direct fault appliers ---

func newCtxWorld(t *testing.T) (*kernel.Kernel, Config) {
	t.Helper()
	k := kernel.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
	must(k.FS.MkdirAll("/", "/tmp", 0o777, 0, 0))
	must(k.FS.MkdirAll("/", "/u/course/submit", 0o700, 200, 200))
	must(k.FS.WriteFile("/etc/passwd", []byte("root:x:0:0\n"), 0o644, 0, 0))
	must(k.FS.WriteFile("/etc/shadow", []byte("root:HASH\n"), 0o600, 0, 0))
	must(k.FS.WriteFile("/u/course/Projlist", []byte("proj1\nproj2\n"), 0o644, 200, 200))
	cfg := Config{Attacker: proc.NewCred(100, 100)}.WithDefaults()
	return k, cfg
}

func directByName(t *testing.T, e Entity, name string) DirectFault {
	t.Helper()
	for _, f := range CatalogDirect(e) {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("direct fault %v/%s not found", e, name)
	return DirectFault{}
}

func fileCtx(k *kernel.Kernel, cfg Config, op interpose.Op, path string) *Ctx {
	return &Ctx{
		Kern: k,
		Call: &interpose.Call{Op: op, Kind: interpose.KindFile, Path: path},
		Cwd:  "/",
		Cfg:  cfg,
	}
}

func TestFileExistenceFault(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	f := directByName(t, EntityFileSystem, "existence")
	// Existing file is deleted.
	ctx := fileCtx(k, cfg, interpose.OpOpen, "/u/course/Projlist")
	if !f.Applies(ctx) {
		t.Fatal("existence should always apply")
	}
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	if k.FS.Exists("/u/course/Projlist") {
		t.Error("existing file not deleted")
	}
	// Missing file is made to exist, attacker-owned.
	ctx2 := fileCtx(k, cfg, interpose.OpCreate, "/tmp/spool/cfa001")
	if err := f.Apply(ctx2); err != nil {
		t.Fatal(err)
	}
	n, err := k.FS.Lookup("/", "/tmp/spool/cfa001")
	if err != nil {
		t.Fatal(err)
	}
	if n.UID != 100 {
		t.Errorf("planted file uid = %d, want attacker 100", n.UID)
	}
}

func TestFileOwnershipFault(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	f := directByName(t, EntityFileSystem, "ownership")
	// Non-attacker file becomes attacker-owned.
	ctx := fileCtx(k, cfg, interpose.OpOpen, "/u/course/Projlist")
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	n, _ := k.FS.Lookup("/", "/u/course/Projlist")
	if n.UID != 100 {
		t.Errorf("uid = %d, want 100", n.UID)
	}
	// Attacker-owned file flips to root.
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	if n.UID != 0 {
		t.Errorf("uid after second apply = %d, want 0", n.UID)
	}
	// Missing file: created root-owned (hostile pre-existing owner).
	ctx2 := fileCtx(k, cfg, interpose.OpCreate, "/tmp/newfile")
	if err := f.Apply(ctx2); err != nil {
		t.Fatal(err)
	}
	n2, _ := k.FS.Lookup("/", "/tmp/newfile")
	if n2.UID != 0 || n2.Mode != 0o600 {
		t.Errorf("planted = uid %d mode %o", n2.UID, uint16(n2.Mode))
	}
}

func TestFilePermissionFault(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	f := directByName(t, EntityFileSystem, "permission")
	// Existing file restricted to root — the Projlist leak setup.
	ctx := fileCtx(k, cfg, interpose.OpOpen, "/u/course/Projlist")
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	n, _ := k.FS.Lookup("/", "/u/course/Projlist")
	if n.UID != 0 || n.Mode != 0o600 {
		t.Errorf("restricted = uid %d mode %o", n.UID, uint16(n.Mode))
	}
	if vfs.ReadableBy(n, 100, 100) {
		t.Error("attacker can still read after restriction")
	}
	// Directory restricted keeps search-ability for root only.
	ctxd := fileCtx(k, cfg, interpose.OpStat, "/u/course/submit")
	if err := f.Apply(ctxd); err != nil {
		t.Fatal(err)
	}
	d, _ := k.FS.Lookup("/", "/u/course/submit")
	if d.Mode != 0o700 {
		t.Errorf("dir mode = %o", uint16(d.Mode))
	}
}

func TestFileSymlinkFault(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	f := directByName(t, EntityFileSystem, "symbolic-link")
	// Read context: regular file becomes a link to the read target.
	ctx := fileCtx(k, cfg, interpose.OpOpen, "/u/course/Projlist")
	ctx.Call.Flags = kernel.ORead
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	ln, err := k.FS.LookupNoFollow("/", "/u/course/Projlist")
	if err != nil {
		t.Fatal(err)
	}
	if !ln.IsSymlink() || ln.Target != "/etc/shadow" {
		t.Errorf("read-context link = %+v", ln)
	}
	// Write context on a missing file: link to the write target — the lpr
	// password-file attack.
	ctx2 := fileCtx(k, cfg, interpose.OpCreate, "/tmp/spool-cf")
	if err := f.Apply(ctx2); err != nil {
		t.Fatal(err)
	}
	ln2, err := k.FS.LookupNoFollow("/", "/tmp/spool-cf")
	if err != nil {
		t.Fatal(err)
	}
	if ln2.Target != "/etc/passwd" {
		t.Errorf("write-context target = %q", ln2.Target)
	}
	// Directory object: link to the protected directory.
	ctx3 := fileCtx(k, cfg, interpose.OpStat, "/u/course/submit")
	ctx3.Call.Kind = interpose.KindDir
	if err := f.Apply(ctx3); err != nil {
		t.Fatal(err)
	}
	ln3, err := k.FS.LookupNoFollow("/", "/u/course/submit")
	if err != nil {
		t.Fatal(err)
	}
	if ln3.Target != "/etc" {
		t.Errorf("dir target = %q", ln3.Target)
	}
	// Existing symlink is retargeted.
	if err := f.Apply(ctx3); err != nil {
		t.Fatal(err)
	}
}

func TestFileContentNameFaults(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	content := directByName(t, EntityFileSystem, "content-invariance")
	name := directByName(t, EntityFileSystem, "name-invariance")

	ctx := fileCtx(k, cfg, interpose.OpOpen, "/u/course/Projlist")
	if !content.Applies(ctx) || !name.Applies(ctx) {
		t.Fatal("content/name must apply to existing regular file")
	}
	if err := content.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	data, _ := k.FS.ReadFile("/u/course/Projlist")
	if string(data) != string(cfg.AttackerContent) {
		t.Errorf("content = %q", data)
	}
	if err := name.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	if k.FS.Exists("/u/course/Projlist") {
		t.Error("name fault left original path")
	}
	if !k.FS.Exists("/u/course/Projlist.moved") {
		t.Error("renamed file missing")
	}
	// Neither applies to a missing file — the lpr walk-through's
	// "attributes 5 and 6 are not applicable" judgement.
	ctxMissing := fileCtx(k, cfg, interpose.OpCreate, "/tmp/fresh")
	if content.Applies(ctxMissing) || name.Applies(ctxMissing) {
		t.Error("content/name must not apply to missing file")
	}
}

func TestWorkingDirectoryFault(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	f := directByName(t, EntityFileSystem, "working-directory")
	var cwd string
	ctx := &Ctx{
		Kern:   k,
		Call:   &interpose.Call{Op: interpose.OpOpen, Kind: interpose.KindFile, Path: "relative.txt"},
		Cwd:    "/tmp",
		SetCwd: func(d string) { cwd = d },
		Cfg:    cfg,
	}
	if !f.Applies(ctx) {
		t.Fatal("workdir must apply to relative path")
	}
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	if cwd != "/tmp/elsewhere" {
		t.Errorf("cwd = %q", cwd)
	}
	// Absolute path: not applicable.
	ctx.Call.Path = "/absolute.txt"
	if f.Applies(ctx) {
		t.Error("workdir must not apply to absolute path")
	}
	// No SetCwd: not applicable.
	ctx.Call.Path = "rel"
	ctx.SetCwd = nil
	if f.Applies(ctx) {
		t.Error("workdir must not apply without SetCwd")
	}
}

func TestLprWalkthroughApplicability(t *testing.T) {
	t.Parallel()
	// Section 3.4: at lpr's create of a fresh absolute-path spool file,
	// exactly existence, ownership, permission, and symbolic-link apply.
	k, cfg := newCtxWorld(t)
	ctx := fileCtx(k, cfg, interpose.OpCreate, "/tmp/spool/cfa001")
	ctx.Call.Flags = kernel.OWrite | kernel.OCreate | kernel.OTrunc
	var applicable []string
	for _, f := range CatalogDirect(EntityFileSystem) {
		if f.Applies(ctx) {
			applicable = append(applicable, f.Name)
		}
	}
	want := []string{"existence", "ownership", "permission", "symbolic-link"}
	if len(applicable) != len(want) {
		t.Fatalf("applicable = %v, want %v", applicable, want)
	}
	for i := range want {
		if applicable[i] != want[i] {
			t.Fatalf("applicable = %v, want %v", applicable, want)
		}
	}
}

func TestNetworkFaults(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	k.Net = netsim.New()
	k.Net.AddService(&netsim.Service{
		Addr: "10.0.0.5:21", Host: "ftp", Available: true, Trusted: true,
		Script: []netsim.Message{
			{From: "ftp", Data: []byte("220 ready"), Authentic: true},
			{From: "ftp", Data: []byte("226 done"), Authentic: true},
		},
		Steps: []string{"USER", "RETR"},
	})
	netCtx := func() *Ctx {
		return &Ctx{
			Kern: k,
			Call: &interpose.Call{Op: interpose.OpConnect, Kind: interpose.KindNetwork, Path: "10.0.0.5:21"},
			Cwd:  "/",
			Cfg:  cfg,
		}
	}

	auth := directByName(t, EntityNetwork, "message-authenticity")
	if !auth.Applies(netCtx()) {
		t.Fatal("authenticity should apply to live service")
	}
	if err := auth.Apply(netCtx()); err != nil {
		t.Fatal(err)
	}
	svc := k.Net.Service("10.0.0.5:21")
	if svc.Script[0].Authentic || svc.Script[0].From != "evil.example" {
		t.Errorf("script after authenticity fault = %+v", svc.Script[0])
	}

	protoF := directByName(t, EntityNetwork, "protocol")
	if err := protoF.Apply(netCtx()); err != nil {
		t.Fatal(err)
	}
	if string(svc.Script[0].Data) != "226 done" {
		t.Error("protocol fault did not reorder script")
	}
	if len(svc.Steps) != 1 {
		t.Errorf("steps = %v", svc.Steps)
	}

	if err := directByName(t, EntityNetwork, "socket-share").Apply(netCtx()); err != nil {
		t.Fatal(err)
	}
	if svc.SharedWith != "attacker-process" {
		t.Error("socket-share fault missed")
	}

	if err := directByName(t, EntityNetwork, "service-availability").Apply(netCtx()); err != nil {
		t.Fatal(err)
	}
	if svc.Available {
		t.Error("service still available")
	}

	if err := directByName(t, EntityNetwork, "entity-trustability").Apply(netCtx()); err != nil {
		t.Fatal(err)
	}
	if svc.Trusted || svc.Host != "evil.example" {
		t.Errorf("trustability fault missed: %+v", svc)
	}

	// No such service: not applicable.
	badCtx := netCtx()
	badCtx.Call.Path = "1.2.3.4:99"
	if auth.Applies(badCtx) {
		t.Error("applies to missing service")
	}
}

func TestProcessFaults(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	k.PostMessage("spooler", []byte("legit job"))
	procCtx := func() *Ctx {
		return &Ctx{
			Kern: k,
			Call: &interpose.Call{Op: interpose.OpMsgRecv, Kind: interpose.KindProcess, Path: "spooler"},
			Cwd:  "/",
			Cfg:  cfg,
		}
	}
	forge := directByName(t, EntityProcess, "message-authenticity")
	if !forge.Applies(procCtx()) {
		t.Fatal("process fault should apply")
	}
	if err := forge.Apply(procCtx()); err != nil {
		t.Fatal(err)
	}
	msgs := k.PeekMailbox("spooler")
	if len(msgs) != 1 || !strings.HasPrefix(string(msgs[0]), "FORGED:") {
		t.Errorf("mailbox after forge = %q", msgs)
	}

	if err := directByName(t, EntityProcess, "service-availability").Apply(procCtx()); err != nil {
		t.Fatal(err)
	}
	if len(k.PeekMailbox("spooler")) != 0 {
		t.Error("availability fault did not drain mailbox")
	}

	if err := directByName(t, EntityProcess, "process-trustability").Apply(procCtx()); err != nil {
		t.Fatal(err)
	}
	if len(k.PeekMailbox("spooler")) != 1 {
		t.Error("trustability fault did not replace message")
	}
}

func TestRegistryFaults(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	k.Reg = registry.New()
	if _, err := k.Reg.CreateKey(`HKLM\Software\Fonts\Cleanup`, registry.UnprotectedACL()); err != nil {
		t.Fatal(err)
	}
	if err := k.Reg.SetString(`HKLM\Software\Fonts\Cleanup`, "FontFile", "/fonts/old.fon", registry.System); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Reg.CreateKey(`HKLM\Software\Logon`, registry.DefaultACL()); err != nil {
		t.Fatal(err)
	}
	if err := k.Reg.SetString(`HKLM\Software\Logon`, "ProfileDir", "/profiles", registry.System); err != nil {
		t.Fatal(err)
	}
	regCtx := func(key, val string) *Ctx {
		return &Ctx{
			Kern: k,
			Call: &interpose.Call{Op: interpose.OpRegGet, Kind: interpose.KindRegistry, Path: key, Path2: val},
			Cwd:  "/",
			Cfg:  cfg,
		}
	}
	content := directByName(t, EntityRegistry, "value-content")
	// Applies only to unprotected keys.
	if !content.Applies(regCtx(`HKLM\Software\Fonts\Cleanup`, "FontFile")) {
		t.Error("value-content should apply to unprotected key")
	}
	if content.Applies(regCtx(`HKLM\Software\Logon`, "ProfileDir")) {
		t.Error("value-content must not apply to protected key")
	}
	if err := content.Apply(regCtx(`HKLM\Software\Fonts\Cleanup`, "FontFile")); err != nil {
		t.Fatal(err)
	}
	got, err := k.Reg.GetString(`HKLM\Software\Fonts\Cleanup`, "FontFile", registry.Everyone)
	if err != nil || got != "/etc/passwd" {
		t.Errorf("value after fault = %q, %v", got, err)
	}
	// value-delete requires Everyone delete rights, which UnprotectedACL
	// does not grant.
	del := directByName(t, EntityRegistry, "value-delete")
	if del.Applies(regCtx(`HKLM\Software\Fonts\Cleanup`, "FontFile")) {
		t.Error("value-delete must not apply without Everyone delete right")
	}
	wide := registry.ACL{
		registry.System:   registry.RightRead | registry.RightWrite | registry.RightDelete,
		registry.Everyone: registry.RightRead | registry.RightWrite | registry.RightDelete,
	}
	if err := k.Reg.SetACL(`HKLM\Software\Fonts\Cleanup`, wide); err != nil {
		t.Fatal(err)
	}
	if !del.Applies(regCtx(`HKLM\Software\Fonts\Cleanup`, "FontFile")) {
		t.Error("value-delete should apply with Everyone delete right")
	}
	if err := del.Apply(regCtx(`HKLM\Software\Fonts\Cleanup`, "FontFile")); err != nil {
		t.Fatal(err)
	}
}

func TestTable6Shape(t *testing.T) {
	t.Parallel()
	wantCounts := map[Entity]int{
		EntityFileSystem: 7,
		EntityNetwork:    5,
		EntityProcess:    3,
		EntityRegistry:   2,
	}
	for e, want := range wantCounts {
		faults := CatalogDirect(e)
		if len(faults) != want {
			t.Errorf("CatalogDirect(%s) = %d faults, want %d", e, len(faults), want)
		}
		for _, f := range faults {
			if f.Entity != e {
				t.Errorf("%s entity = %v", f.ID, f.Entity)
			}
			if f.Apply == nil || f.Applies == nil {
				t.Errorf("%s missing applier", f.ID)
			}
			if f.Class() != ClassDirect {
				t.Errorf("%s class = %v", f.ID, f.Class())
			}
		}
	}
	if got := len(AllDirect()); got != 17 {
		t.Errorf("AllDirect = %d, want 17", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	t.Parallel()
	c := Config{}.WithDefaults()
	if c.ReadTarget != "/etc/shadow" || c.WriteTarget != "/etc/passwd" ||
		c.DirTarget != "/etc" || c.AttackerDir != "/tmp" ||
		len(c.AttackerContent) == 0 || c.EvilHost == "" {
		t.Errorf("defaults = %+v", c)
	}
	// Explicit values survive.
	c2 := Config{ReadTarget: "/secret"}.WithDefaults()
	if c2.ReadTarget != "/secret" {
		t.Error("explicit ReadTarget overwritten")
	}
}
