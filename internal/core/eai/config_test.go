package eai

import (
	"testing"

	"repro/internal/interpose"
	"repro/internal/sim/netsim"
	"repro/internal/sim/vfs"
)

func TestReadTargetOverrides(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	if err := k.FS.WriteFile("/tmp/bait", []byte("staged payload"), 0o644, 100, 100); err != nil {
		t.Fatal(err)
	}
	cfg.ReadTargetOverrides = map[string]string{
		"/u/course/Projlist": "/tmp/bait",
	}
	f := directByName(t, EntityFileSystem, "symbolic-link")
	// Overridden object links to the bait.
	ctx := fileCtx(k, cfg, interpose.OpOpen, "/u/course/Projlist")
	ctx.Call.Flags = 1 // read
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	ln, err := k.FS.LookupNoFollow("/", "/u/course/Projlist")
	if err != nil {
		t.Fatal(err)
	}
	if ln.Target != "/tmp/bait" {
		t.Errorf("override target = %q", ln.Target)
	}
	// Non-overridden object still links to the default read target.
	if err := k.FS.WriteFile("/tmp/other.conf", []byte("x"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	ctx2 := fileCtx(k, cfg, interpose.OpOpen, "/tmp/other.conf")
	ctx2.Call.Flags = 1
	if err := f.Apply(ctx2); err != nil {
		t.Fatal(err)
	}
	ln2, err := k.FS.LookupNoFollow("/", "/tmp/other.conf")
	if err != nil {
		t.Fatal(err)
	}
	if ln2.Target != "/etc/shadow" {
		t.Errorf("default target = %q", ln2.Target)
	}
}

func TestSymlinkFaultCreatesMissingParents(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	f := directByName(t, EntityFileSystem, "symbolic-link")
	ctx := fileCtx(k, cfg, interpose.OpCreate, "/u/course/submit/assignment1/hw1.c")
	if err := f.Apply(ctx); err != nil {
		t.Fatalf("symlink into missing dir: %v", err)
	}
	ln, err := k.FS.LookupNoFollow("/", "/u/course/submit/assignment1/hw1.c")
	if err != nil {
		t.Fatal(err)
	}
	if !ln.IsSymlink() {
		t.Error("not a symlink")
	}
	// The planted parent belongs to the attacker.
	dir, err := k.FS.Lookup("/", "/u/course/submit/assignment1")
	if err != nil {
		t.Fatal(err)
	}
	if dir.UID != cfg.Attacker.UID {
		t.Errorf("planted parent uid = %d", dir.UID)
	}
}

func TestOwnershipFaultCreatesMissingParents(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	f := directByName(t, EntityFileSystem, "ownership")
	ctx := fileCtx(k, cfg, interpose.OpCreate, "/var/spool/deep/path/file")
	if err := f.Apply(ctx); err != nil {
		t.Fatalf("ownership plant into missing dir: %v", err)
	}
	n, err := k.FS.Lookup("/", "/var/spool/deep/path/file")
	if err != nil {
		t.Fatal(err)
	}
	if n.UID != 0 || n.Mode != 0o600 {
		t.Errorf("planted = uid %d mode %o", n.UID, uint16(n.Mode))
	}
}

func TestRelativeObjectPathsResolveAgainstCwd(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	f := directByName(t, EntityFileSystem, "existence")
	ctx := &Ctx{
		Kern: k,
		Call: &interpose.Call{Op: interpose.OpOpen, Kind: interpose.KindFile, Path: "Projlist"},
		Cwd:  "/u/course",
		Cfg:  cfg,
	}
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	if k.FS.Exists("/u/course/Projlist") {
		t.Error("relative existence fault missed the cwd-resolved object")
	}
}

func TestProtocolFaultSingleMessage(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	k.Net = newSingleMessageNet()
	f := directByName(t, EntityNetwork, "protocol")
	ctx := &Ctx{
		Kern: k,
		Call: &interpose.Call{Op: interpose.OpConnect, Kind: interpose.KindNetwork, Path: "10.0.0.9:9"},
		Cwd:  "/",
		Cfg:  cfg,
	}
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(k.Net.Service("10.0.0.9:9").Script); got != 0 {
		t.Errorf("single-message protocol fault left %d messages (want omitted step)", got)
	}
}

func TestErrNotApplicableFromMissingService(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	k.Net = newSingleMessageNet()
	f := directByName(t, EntityNetwork, "message-authenticity")
	ctx := &Ctx{
		Kern: k,
		Call: &interpose.Call{Op: interpose.OpConnect, Kind: interpose.KindNetwork, Path: "1.2.3.4:1"},
		Cwd:  "/",
		Cfg:  cfg,
	}
	if err := f.Apply(ctx); err == nil {
		t.Error("apply to missing service succeeded")
	}
}

func TestNameInvarianceMovesAside(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	f := directByName(t, EntityFileSystem, "name-invariance")
	ctx := fileCtx(k, cfg, interpose.OpOpen, "/etc/passwd")
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	if k.FS.Exists("/etc/passwd") {
		t.Error("original name still present")
	}
	data, err := k.FS.ReadFile("/etc/passwd.moved")
	if err != nil || len(data) == 0 {
		t.Errorf("moved file = %q, %v", data, err)
	}
}

func TestPermissionFaultDirRestriction(t *testing.T) {
	t.Parallel()
	k, cfg := newCtxWorld(t)
	f := directByName(t, EntityFileSystem, "permission")
	ctx := fileCtx(k, cfg, interpose.OpStat, "/u/course/submit")
	ctx.Call.Kind = interpose.KindDir
	if err := f.Apply(ctx); err != nil {
		t.Fatal(err)
	}
	d, err := k.FS.Lookup("/", "/u/course/submit")
	if err != nil {
		t.Fatal(err)
	}
	if d.UID != 0 || d.Mode != 0o700 {
		t.Errorf("restricted dir = uid %d mode %o", d.UID, uint16(d.Mode))
	}
	if !vfs.Allows(d, 0, 0, vfs.WantExec) {
		t.Error("root lost search on the restricted dir")
	}
}

// newSingleMessageNet builds a network with one single-message service for
// protocol-fault edge cases.
func newSingleMessageNet() *netsim.Net {
	n := netsim.New()
	n.AddService(&netsim.Service{
		Addr: "10.0.0.9:9", Available: true, Trusted: true,
		Script: []netsim.Message{{From: "svc", Data: []byte("only"), Authentic: true}},
	})
	return n
}
