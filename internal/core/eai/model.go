// Package eai implements the Environment-Application Interaction fault
// model of Du & Mathur (DSN 2000): the taxonomy of environment faults
// (Section 2.3), the indirect-fault catalog of Table 5, and the
// direct-fault catalog of Table 6.
//
// Indirect environment faults enter the application through an input and
// propagate via internal entities; they are expressed here as mutators
// applied to the value an interaction returns. Direct environment faults
// stay in the environment entity itself; they are expressed as appliers
// that rewrite the simulated world immediately before an interaction
// fires.
package eai

import (
	"fmt"

	"repro/internal/interpose"
)

// Class separates the two halves of the EAI model (Figure 1).
type Class int

// Fault classes.
const (
	// ClassIndirect faults propagate via internal entities (Figure 1a).
	ClassIndirect Class = iota + 1
	// ClassDirect faults act through the environment entity (Figure 1b).
	ClassDirect
)

// String returns the class name used in reports.
func (c Class) String() string {
	switch c {
	case ClassIndirect:
		return "indirect"
	case ClassDirect:
		return "direct"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Origin classifies indirect faults by input channel (Table 2).
type Origin int

// Indirect-fault origins, in the order of Table 2.
const (
	OriginUserInput Origin = iota + 1
	OriginEnvVar
	OriginFileInput
	OriginNetworkInput
	OriginProcessInput
)

// String returns the origin name as printed in Table 2.
func (o Origin) String() string {
	switch o {
	case OriginUserInput:
		return "user-input"
	case OriginEnvVar:
		return "environment-variable"
	case OriginFileInput:
		return "file-system-input"
	case OriginNetworkInput:
		return "network-input"
	case OriginProcessInput:
		return "process-input"
	default:
		return fmt.Sprintf("Origin(%d)", int(o))
	}
}

// Entity classifies direct faults by environment entity (Table 3), with
// the registry added as the NT-specific entity of Section 4.2.
type Entity int

// Direct-fault entities.
const (
	EntityFileSystem Entity = iota + 1
	EntityNetwork
	EntityProcess
	EntityRegistry
)

// String returns the entity name as printed in Table 3.
func (e Entity) String() string {
	switch e {
	case EntityFileSystem:
		return "file-system"
	case EntityNetwork:
		return "network"
	case EntityProcess:
		return "process"
	case EntityRegistry:
		return "registry"
	default:
		return fmt.Sprintf("Entity(%d)", int(e))
	}
}

// Attr is a perturbable attribute of an environment entity — one row of
// Table 6 (or, for the file system, one column of Table 4).
type Attr int

// Attributes. File-system attributes come first, in Table 4 column order.
const (
	AttrExistence Attr = iota + 1
	AttrSymlink
	AttrPermission
	AttrOwnership
	AttrContentInvariance
	AttrNameInvariance
	AttrWorkingDirectory

	AttrMsgAuthenticity
	AttrProtocol
	AttrSocketShare
	AttrServiceAvail
	AttrTrustability

	AttrRegValueContent
	AttrRegValueDelete
)

// String returns the attribute name as printed in Tables 4 and 6.
func (a Attr) String() string {
	switch a {
	case AttrExistence:
		return "existence"
	case AttrSymlink:
		return "symbolic-link"
	case AttrPermission:
		return "permission"
	case AttrOwnership:
		return "ownership"
	case AttrContentInvariance:
		return "content-invariance"
	case AttrNameInvariance:
		return "name-invariance"
	case AttrWorkingDirectory:
		return "working-directory"
	case AttrMsgAuthenticity:
		return "message-authenticity"
	case AttrProtocol:
		return "protocol"
	case AttrSocketShare:
		return "socket-share"
	case AttrServiceAvail:
		return "service-availability"
	case AttrTrustability:
		return "entity-trustability"
	case AttrRegValueContent:
		return "registry-value-content"
	case AttrRegValueDelete:
		return "registry-value-delete"
	default:
		return fmt.Sprintf("Attr(%d)", int(a))
	}
}

// Semantic identifies the meaning of an input value — the left column of
// Table 5. The catalog of applicable perturbations depends on it.
type Semantic int

// Semantic input kinds, in Table 5 row order. SemRaw is the fallback for
// inputs whose semantics the tester has not annotated.
const (
	SemFileName Semantic = iota + 1
	SemCommand
	SemPathList
	SemPermMask
	SemFileExtension
	SemIPAddress
	SemPacket
	SemHostName
	SemDNSReply
	SemProcMessage
	SemRaw
)

// String returns the semantic name as printed in Table 5.
func (s Semantic) String() string {
	switch s {
	case SemFileName:
		return "file-name"
	case SemCommand:
		return "command"
	case SemPathList:
		return "path-list"
	case SemPermMask:
		return "permission-mask"
	case SemFileExtension:
		return "file-extension"
	case SemIPAddress:
		return "ip-address"
	case SemPacket:
		return "packet"
	case SemHostName:
		return "host-name"
	case SemDNSReply:
		return "dns-reply"
	case SemProcMessage:
		return "process-message"
	case SemRaw:
		return "raw"
	default:
		return fmt.Sprintf("Semantic(%d)", int(s))
	}
}

// OriginForOp maps an interaction operation to the Table 2 input channel
// it draws from. Ops that return no environment input map to 0.
func OriginForOp(op interpose.Op) Origin {
	switch op {
	case interpose.OpArg:
		return OriginUserInput
	case interpose.OpGetenv:
		return OriginEnvVar
	case interpose.OpRead, interpose.OpReadlink, interpose.OpReadDir:
		return OriginFileInput
	case interpose.OpRecv, interpose.OpDNS, interpose.OpAccept:
		return OriginNetworkInput
	case interpose.OpMsgRecv:
		return OriginProcessInput
	case interpose.OpRegGet:
		// The registry is configuration input; the closest Table 2 channel
		// is the file system (NT stores per-machine configuration there).
		return OriginFileInput
	default:
		return 0
	}
}

// EntityForKind maps an interaction's object kind to the Table 3 entity
// perturbed by direct faults. Kinds with no direct-fault entity (pure
// inputs such as argv and environment variables) map to 0.
func EntityForKind(k interpose.ObjectKind) Entity {
	switch k {
	case interpose.KindFile, interpose.KindDir:
		return EntityFileSystem
	case interpose.KindNetwork:
		return EntityNetwork
	case interpose.KindProcess:
		return EntityProcess
	case interpose.KindRegistry:
		return EntityRegistry
	default:
		return 0
	}
}

// InferSemantic guesses the semantic kind of an input interaction when the
// campaign has not annotated the site. The inference mirrors how a tester
// reads Table 5: PATH-like variables are path lists, DNS replies are DNS
// replies, network payloads are packets, process messages are messages;
// everything else is raw.
func InferSemantic(op interpose.Op, objectPath string) Semantic {
	switch op {
	case interpose.OpGetenv:
		switch objectPath {
		case "PATH", "LD_LIBRARY_PATH", "LIBPATH":
			return SemPathList
		case "UMASK":
			return SemPermMask
		case "HOME", "TMPDIR", "PWD":
			return SemFileName
		default:
			return SemRaw
		}
	case interpose.OpDNS:
		return SemDNSReply
	case interpose.OpRecv, interpose.OpAccept:
		return SemPacket
	case interpose.OpMsgRecv:
		return SemProcMessage
	case interpose.OpReadlink:
		return SemFileName
	default:
		return SemRaw
	}
}
