package eai

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/interpose"
	"repro/internal/sim/kernel"
	"repro/internal/sim/netsim"
	"repro/internal/sim/proc"
	"repro/internal/sim/registry"
	"repro/internal/sim/vfs"
)

// ErrNotApplicable is returned by an applier whose precondition fails at
// injection time (e.g. perturbing a service on a world with no network).
var ErrNotApplicable = errors.New("eai: fault not applicable here")

// Config parameterises the direct-fault appliers: who the attacker is and
// which sensitive objects perturbations should aim at. These are the
// knobs a tester sets after studying the target (the paper's testers
// likewise crafted the Projlist→/etc/shadow and ../.login payloads by
// hand once the model told them where to aim).
type Config struct {
	// Attacker is the principal performing the perturbations.
	Attacker proc.Cred
	// AttackerDir is a directory the attacker can write (bait files are
	// planted there). Default "/tmp".
	AttackerDir string
	// ReadTarget is the confidentiality-sensitive file read perturbations
	// redirect to. Default "/etc/shadow".
	ReadTarget string
	// WriteTarget is the integrity-sensitive file write perturbations
	// redirect to. Default "/etc/passwd".
	WriteTarget string
	// DirTarget is the protected directory that directory-object symlink
	// perturbations redirect to. Default "/etc".
	DirTarget string
	// AttackerContent is the payload content faults substitute. Default
	// "OWNED-BY-ATTACKER\n".
	AttackerContent []byte
	// ReadTargetOverrides maps specific object paths to the symlink target
	// used when that object is perturbed in a read context. This is the
	// tester's crafted aiming — the paper's authors likewise pointed
	// turnin's trusted config at a staged payload once the model told
	// them the file was trusted.
	ReadTargetOverrides map[string]string
	// EvilHost is the identity forged messages claim to come from.
	EvilHost string
}

// readTargetFor returns the symlink target for a read-context perturbation
// of the given object.
func (c Config) readTargetFor(obj string) string {
	if t, ok := c.ReadTargetOverrides[obj]; ok {
		return t
	}
	return c.ReadTarget
}

// WithDefaults returns the config with unset fields filled in.
func (c Config) WithDefaults() Config {
	if c.AttackerDir == "" {
		c.AttackerDir = "/tmp"
	}
	if c.ReadTarget == "" {
		c.ReadTarget = "/etc/shadow"
	}
	if c.WriteTarget == "" {
		c.WriteTarget = "/etc/passwd"
	}
	if c.DirTarget == "" {
		c.DirTarget = "/etc"
	}
	if len(c.AttackerContent) == 0 {
		c.AttackerContent = []byte("OWNED-BY-ATTACKER\n")
	}
	if c.EvilHost == "" {
		c.EvilHost = "evil.example"
	}
	return c
}

// Ctx is everything a direct-fault applier may touch: the world, the
// intercepted call, and the attacker configuration. The engine constructs
// one per armed injection.
type Ctx struct {
	Kern *kernel.Kernel
	// Call is the intercepted interaction (mutable: appliers may also
	// redirect arguments, though most rewrite the world instead).
	Call *interpose.Call
	// Cwd is the working directory of the process at the interaction, for
	// resolving relative object paths.
	Cwd string
	// SetCwd reassigns the process working directory (the
	// working-directory perturbation). Provided by the engine.
	SetCwd func(string)
	Cfg    Config
}

// objPath returns the interaction's object path made absolute.
func (ctx *Ctx) objPath() string { return vfs.Canon(ctx.Cwd, ctx.Call.Path) }

// isWriteContext reports whether the interaction is about to write or
// create the object — symlink perturbations then aim at the write target,
// otherwise at the read target (paper Section 3.4: the spool file is
// linked to the password file; Section 4.1: Projlist is linked to
// /etc/shadow).
func (ctx *Ctx) isWriteContext() bool {
	switch ctx.Call.Op {
	case interpose.OpCreate, interpose.OpWrite, interpose.OpUnlink,
		interpose.OpRename, interpose.OpChmod, interpose.OpChown:
		return true
	}
	return ctx.Call.Flags&(kernel.OWrite|kernel.OTrunc) != 0
}

// DirectFault is one Table 6 perturbation. Apply rewrites the world at the
// armed interaction point, before the kernel acts (Section 3.3 step 6:
// direct faults are injected before the interaction point). Applies is the
// static applicability test evaluated against the pre-run world, which
// keeps per-point fault lists meaningful (the paper's lpr walk-through
// discards the content- and name-invariance attributes for a file being
// created for the first time).
type DirectFault struct {
	// ID is the stable identity "direct/<entity>/<attr>".
	ID     string
	Name   string
	Entity Entity
	Attr   Attr
	// Desc explains the perturbation in the words of Table 6.
	Desc string
	// Applies reports whether the fault is meaningful for the given
	// interaction and world state.
	Applies func(ctx *Ctx) bool
	// Apply performs the perturbation.
	Apply func(ctx *Ctx) error
}

// Class returns ClassDirect.
func (f DirectFault) Class() Class { return ClassDirect }

// lookupObj resolves the interaction's object without following a final
// symlink, returning nil when it does not exist.
func lookupObj(ctx *Ctx) *vfs.Inode {
	n, err := ctx.Kern.FS.LookupNoFollow("/", ctx.objPath())
	if err != nil {
		return nil
	}
	return n
}

// ensureParent creates any missing parent directories of path, owned by
// the attacker (the attacker arranges the filesystem shape their
// perturbation needs).
func ensureParent(ctx *Ctx, path string) error {
	dir := path[:strings.LastIndex(path, "/")+1]
	if dir == "" || dir == "/" {
		return nil
	}
	return ctx.Kern.FS.MkdirAll("/", dir, 0o755, ctx.Cfg.Attacker.UID, ctx.Cfg.Attacker.GID)
}

// plantAttackerFile writes an attacker-owned file with attacker content at
// path, creating parent directories as needed.
func plantAttackerFile(ctx *Ctx, path string, mode vfs.Mode) error {
	if err := ensureParent(ctx, path); err != nil {
		return err
	}
	return ctx.Kern.FS.WriteFile(path, ctx.Cfg.AttackerContent, mode, ctx.Cfg.Attacker.UID, ctx.Cfg.Attacker.GID)
}

// fileFaults builds the Table 6 file-system rows.
func fileFaults() []DirectFault {
	mk := func(attr Attr, name, desc string, applies func(*Ctx) bool, apply func(*Ctx) error) DirectFault {
		return DirectFault{
			ID:      "direct/file-system/" + name,
			Name:    name,
			Entity:  EntityFileSystem,
			Attr:    attr,
			Desc:    desc,
			Applies: applies,
			Apply:   apply,
		}
	}
	always := func(*Ctx) bool { return true }
	return []DirectFault{
		mk(AttrExistence, "existence",
			"delete an existing file or make a non-existing file exist",
			always,
			func(ctx *Ctx) error {
				p := ctx.objPath()
				if lookupObj(ctx) != nil {
					return ctx.Kern.FS.RemoveAll(p)
				}
				return plantAttackerFile(ctx, p, 0o644)
			}),
		mk(AttrOwnership, "ownership",
			"change ownership to the owner of the process, other normal users, or root",
			always,
			func(ctx *Ctx) error {
				n := lookupObj(ctx)
				if n == nil {
					// Make it exist first, owned by root: the hostile
					// pre-existing-owner variant of the lpr walk-through.
					p := ctx.objPath()
					if err := ensureParent(ctx, p); err != nil {
						return err
					}
					if err := ctx.Kern.FS.WriteFile(p, nil, 0o600, 0, 0); err != nil {
						return err
					}
					return nil
				}
				n = ctx.Kern.FS.Own(n)
				if n.UID == ctx.Cfg.Attacker.UID {
					n.UID, n.GID = 0, 0
				} else {
					n.UID, n.GID = ctx.Cfg.Attacker.UID, ctx.Cfg.Attacker.GID
				}
				n.Gen++
				return nil
			}),
		mk(AttrPermission, "permission",
			"flip the permission bits (restrict an open object to root, or open up a missing one)",
			always,
			func(ctx *Ctx) error {
				n := lookupObj(ctx)
				if n == nil {
					// Make the object exist with permissions that deny the
					// invoker — lpr then "writes to a file even when the
					// user who runs it does not have the appropriate
					// ownership and file permissions" (§3.4).
					return plantAttackerFile(ctx, ctx.objPath(), 0o600)
				}
				// Restrict to root: the Projlist perturbation of §4.1
				// ("making it only readable by root").
				n = ctx.Kern.FS.Own(n)
				n.UID, n.GID = 0, 0
				n.Mode = 0o600
				if n.Type == vfs.TypeDir {
					n.Mode = 0o700
				}
				n.Gen++
				return nil
			}),
		mk(AttrSymlink, "symbolic-link",
			"if the file is a symbolic link, change its target; otherwise change it to a symbolic link",
			always,
			func(ctx *Ctx) error {
				p := ctx.objPath()
				n := lookupObj(ctx)
				target := ctx.Cfg.readTargetFor(p)
				switch {
				case n != nil && n.Type == vfs.TypeDir:
					target = ctx.Cfg.DirTarget
				case ctx.isWriteContext():
					target = ctx.Cfg.WriteTarget
				}
				if n != nil {
					if n.Type == vfs.TypeSymlink {
						n = ctx.Kern.FS.Own(n)
						n.Target = target
						n.Gen++
						return nil
					}
					if err := ctx.Kern.FS.RemoveAll(p); err != nil {
						return err
					}
				}
				if err := ensureParent(ctx, p); err != nil {
					return err
				}
				_, err := ctx.Kern.FS.Symlink("/", target, p,
					ctx.Cfg.Attacker.UID, ctx.Cfg.Attacker.GID)
				return err
			}),
		mk(AttrContentInvariance, "content-invariance",
			"modify the file between check and use",
			func(ctx *Ctx) bool {
				n := lookupObj(ctx)
				return n != nil && n.Type == vfs.TypeRegular
			},
			func(ctx *Ctx) error {
				n := lookupObj(ctx)
				if n == nil || n.Type != vfs.TypeRegular {
					return ErrNotApplicable
				}
				n = ctx.Kern.FS.Own(n)
				n.Data = append([]byte(nil), ctx.Cfg.AttackerContent...)
				n.Gen++
				return nil
			}),
		mk(AttrNameInvariance, "name-invariance",
			"change the file name between check and use",
			func(ctx *Ctx) bool { return lookupObj(ctx) != nil },
			func(ctx *Ctx) error {
				p := ctx.objPath()
				if lookupObj(ctx) == nil {
					return ErrNotApplicable
				}
				return ctx.Kern.FS.Rename("/", p, p+".moved")
			}),
		mk(AttrWorkingDirectory, "working-directory",
			"start the application in a different directory",
			func(ctx *Ctx) bool {
				return !strings.HasPrefix(ctx.Call.Path, "/") && ctx.SetCwd != nil
			},
			func(ctx *Ctx) error {
				if ctx.SetCwd == nil {
					return ErrNotApplicable
				}
				dir := ctx.Cfg.AttackerDir + "/elsewhere"
				if err := ctx.Kern.FS.MkdirAll("/", dir, 0o777,
					ctx.Cfg.Attacker.UID, ctx.Cfg.Attacker.GID); err != nil {
					return err
				}
				ctx.SetCwd(dir)
				return nil
			}),
	}
}

// netFaults builds the Table 6 network rows. The object path of a network
// interaction is the service address.
func netFaults() []DirectFault {
	mk := func(attr Attr, name, desc string, apply func(*Ctx, *netsim.Service) error) DirectFault {
		return DirectFault{
			ID:     "direct/network/" + name,
			Name:   name,
			Entity: EntityNetwork,
			Attr:   attr,
			Desc:   desc,
			Applies: func(ctx *Ctx) bool {
				return ctx.Kern.Net != nil && ctx.Kern.Net.Service(ctx.Call.Path) != nil
			},
			Apply: func(ctx *Ctx) error {
				if ctx.Kern.Net == nil {
					return ErrNotApplicable
				}
				svc := ctx.Kern.Net.Service(ctx.Call.Path)
				if svc == nil {
					return fmt.Errorf("%w: no service at %s", ErrNotApplicable, ctx.Call.Path)
				}
				return apply(ctx, svc)
			},
		}
	}
	return []DirectFault{
		mk(AttrMsgAuthenticity, "message-authenticity",
			"make the message come from another network entity than expected",
			func(ctx *Ctx, svc *netsim.Service) error {
				for i := range svc.Script {
					svc.Script[i].From = ctx.Cfg.EvilHost
					svc.Script[i].Authentic = false
				}
				return nil
			}),
		mk(AttrProtocol, "protocol",
			"violate the protocol: omit a step, add an extra step, reorder steps",
			func(ctx *Ctx, svc *netsim.Service) error {
				if len(svc.Script) > 1 {
					svc.Script[0], svc.Script[len(svc.Script)-1] =
						svc.Script[len(svc.Script)-1], svc.Script[0]
				} else if len(svc.Script) == 1 {
					svc.Script = nil
				}
				if len(svc.Steps) > 0 {
					svc.Steps = svc.Steps[:len(svc.Steps)-1]
				}
				return nil
			}),
		mk(AttrSocketShare, "socket-share",
			"share the socket with another process",
			func(ctx *Ctx, svc *netsim.Service) error {
				svc.SharedWith = "attacker-process"
				return nil
			}),
		mk(AttrServiceAvail, "service-availability",
			"deny the service the application is asking for",
			func(ctx *Ctx, svc *netsim.Service) error {
				svc.Available = false
				return nil
			}),
		mk(AttrTrustability, "entity-trustability",
			"replace the entity the application interacts with by an untrusted one",
			func(ctx *Ctx, svc *netsim.Service) error {
				svc.Trusted = false
				svc.Host = ctx.Cfg.EvilHost
				for i := range svc.Script {
					svc.Script[i].From = ctx.Cfg.EvilHost
					// Provenance from an untrusted entity is by definition
					// not authentic.
					svc.Script[i].Authentic = false
				}
				return nil
			}),
	}
}

// procFaults builds the Table 6 process rows. The object path of a process
// interaction is the mailbox name.
func procFaults() []DirectFault {
	mk := func(attr Attr, name, desc string, apply func(*Ctx) error) DirectFault {
		return DirectFault{
			ID:     "direct/process/" + name,
			Name:   name,
			Entity: EntityProcess,
			Attr:   attr,
			Desc:   desc,
			Applies: func(ctx *Ctx) bool {
				return ctx.Call.Kind == interpose.KindProcess
			},
			Apply: apply,
		}
	}
	return []DirectFault{
		mk(AttrMsgAuthenticity, "message-authenticity",
			"make the message come from another process than expected",
			func(ctx *Ctx) error {
				ctx.Kern.SetMailbox(ctx.Call.Path, [][]byte{
					append([]byte("FORGED:"), ctx.Cfg.AttackerContent...),
				})
				return nil
			}),
		mk(AttrTrustability, "process-trustability",
			"replace the peer process by an untrusted one",
			func(ctx *Ctx) error {
				ctx.Kern.SetMailbox(ctx.Call.Path, [][]byte{ctx.Cfg.AttackerContent})
				return nil
			}),
		mk(AttrServiceAvail, "service-availability",
			"deny the service the application is asking for",
			func(ctx *Ctx) error {
				ctx.Kern.SetMailbox(ctx.Call.Path, nil)
				return nil
			}),
	}
}

// regFaults builds the registry rows — the Section 4.2 extension of the
// model. They apply only when the key is unprotected: the perturbation
// must be one a real unprivileged attacker could perform.
func regFaults() []DirectFault {
	unprotected := func(ctx *Ctx) *registry.Registry {
		if ctx.Kern.Reg == nil {
			return nil
		}
		k, err := ctx.Kern.Reg.Open(ctx.Call.Path, registry.Administrator)
		if err != nil || !k.Unprotected() {
			return nil
		}
		return ctx.Kern.Reg
	}
	return []DirectFault{
		{
			ID:     "direct/registry/value-content",
			Name:   "value-content",
			Entity: EntityRegistry,
			Attr:   AttrRegValueContent,
			Desc:   "rewrite the value of an unprotected key to name a security-critical object",
			Applies: func(ctx *Ctx) bool {
				return unprotected(ctx) != nil
			},
			Apply: func(ctx *Ctx) error {
				reg := unprotected(ctx)
				if reg == nil {
					return ErrNotApplicable
				}
				return reg.SetString(ctx.Call.Path, ctx.Call.Path2,
					ctx.Cfg.WriteTarget, registry.Everyone)
			},
		},
		{
			ID:     "direct/registry/value-delete",
			Name:   "value-delete",
			Entity: EntityRegistry,
			Attr:   AttrRegValueDelete,
			Desc:   "remove the value of an unprotected key",
			Applies: func(ctx *Ctx) bool {
				reg := unprotected(ctx)
				if reg == nil {
					return false
				}
				k, err := reg.Open(ctx.Call.Path, registry.Administrator)
				if err != nil {
					return false
				}
				return k.ACL.Grants(registry.Everyone, registry.RightDelete)
			},
			Apply: func(ctx *Ctx) error {
				reg := unprotected(ctx)
				if reg == nil {
					return ErrNotApplicable
				}
				return reg.DeleteValue(ctx.Call.Path, ctx.Call.Path2, registry.Everyone)
			},
		},
	}
}

// CatalogDirect returns the Table 6 perturbations for an entity kind, in
// catalog order.
func CatalogDirect(e Entity) []DirectFault {
	switch e {
	case EntityFileSystem:
		return fileFaults()
	case EntityNetwork:
		return netFaults()
	case EntityProcess:
		return procFaults()
	case EntityRegistry:
		return regFaults()
	default:
		return nil
	}
}

// AllEntities lists the direct-fault entities in Table 3 order plus the
// registry extension.
func AllEntities() []Entity {
	return []Entity{EntityFileSystem, EntityNetwork, EntityProcess, EntityRegistry}
}

// AllDirect returns the full Table 6 catalog across every entity.
func AllDirect() []DirectFault {
	var out []DirectFault
	for _, e := range AllEntities() {
		out = append(out, CatalogDirect(e)...)
	}
	return out
}
