package eai

import (
	"bytes"
	"strings"
)

// IndirectFault is one Table 5 perturbation: a named mutation of the value
// an application receives from its environment. The engine applies Mutate
// in a post-hook, after the interaction point (Section 3.3 step 6: "inject
// each fault after the interaction point ... since we want to change the
// value the internal entity receives from the input").
type IndirectFault struct {
	// ID is the stable identity "indirect/<semantic>/<name>".
	ID string
	// Name is the short perturbation name from Table 5.
	Name string
	// Sem is the input semantic this fault applies to.
	Sem Semantic
	// Desc explains the perturbation in the words of Table 5.
	Desc string
	// Mutate rewrites the received value.
	Mutate func(value []byte) []byte
}

// Class returns ClassIndirect; IndirectFault satisfies the common fault
// interface used by reports.
func (f IndirectFault) Class() Class { return ClassIndirect }

// overlongPayload is the length-perturbation suffix: long enough to
// overflow any plausibly-sized fixed buffer, mirroring the "change length"
// rows of Table 5.
const overlongLen = 4096

func mkOverlong(value []byte) []byte {
	out := bytes.TrimRight(value, "\n")
	pad := make([]byte, overlongLen)
	for i := range pad {
		pad[i] = 'A'
	}
	return append(out, pad...)
}

func mkRelative(value []byte) []byte {
	s := string(value)
	if strings.HasPrefix(s, "/") {
		return []byte(strings.TrimLeft(s, "/"))
	}
	return []byte("./" + s)
}

func mkAbsolute(value []byte) []byte {
	s := string(value)
	if strings.HasPrefix(s, "/") {
		return value
	}
	return append([]byte("/"), value...)
}

func mkPrefix(prefix string) func([]byte) []byte {
	return func(value []byte) []byte {
		return append([]byte(prefix), value...)
	}
}

func mkAppend(suffix string) func([]byte) []byte {
	return func(value []byte) []byte {
		out := bytes.TrimRight(value, "\n")
		return append(out, suffix...)
	}
}

// mkBadFormat scrambles the value into something structurally invalid:
// control bytes around the original payload.
func mkBadFormat(value []byte) []byte {
	out := []byte{0x01, 0xff, '%', 'n'}
	out = append(out, value...)
	return append(out, 0x00, 0xfe)
}

// mkReorderPaths reverses the elements of a colon-separated path list —
// "rearrange order of path" in Table 5.
func mkReorderPaths(value []byte) []byte {
	parts := strings.Split(string(value), ":")
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return []byte(strings.Join(parts, ":"))
}

// CatalogIndirect returns the Table 5 perturbations for a semantic input
// kind, in catalog order. The returned slice is freshly allocated; callers
// may keep it.
func CatalogIndirect(sem Semantic) []IndirectFault {
	mk := func(name, desc string, m func([]byte) []byte) IndirectFault {
		return IndirectFault{
			ID:     "indirect/" + sem.String() + "/" + name,
			Name:   name,
			Sem:    sem,
			Desc:   desc,
			Mutate: m,
		}
	}
	switch sem {
	case SemFileName:
		return []IndirectFault{
			mk("change-length", "lengthen the name past any fixed buffer", mkOverlong),
			mk("use-relative-path", "make the name relative", mkRelative),
			mk("use-absolute-path", "make the name absolute", mkAbsolute),
			mk("insert-dotdot", `prefix the name with ".."`, mkPrefix("../")),
			mk("insert-slash", `insert "/" into the name`, mkPrefix("/")),
		}
	case SemCommand:
		return []IndirectFault{
			mk("change-length", "lengthen the command", mkOverlong),
			mk("use-relative-path", "make the command path relative", mkRelative),
			mk("use-absolute-path", "make the command path absolute", mkAbsolute),
			mk("insert-semicolon", `append "; sh" to the command`, mkAppend("; sh")),
			mk("insert-pipe", `append "| sh" to the command`, mkAppend("| sh")),
			mk("insert-ampersand", `append "& sh" to the command`, mkAppend("& sh")),
			mk("insert-newline", "append a newline and a second command", mkAppend("\nsh")),
		}
	case SemPathList:
		return []IndirectFault{
			mk("change-length", "lengthen the list", mkOverlong),
			mk("rearrange-order", "reverse the order of the paths", mkReorderPaths),
			mk("insert-untrusted-path", "prepend an attacker-writable directory", mkPrefix("/tmp/attacker/bin:")),
			mk("use-incorrect-path", "replace with a wrong but well-formed list", func([]byte) []byte {
				return []byte("/nonexistent:/also/nonexistent")
			}),
			mk("use-recursive-path", "make the list refer to itself", func([]byte) []byte {
				return []byte("$PATH:$PATH")
			}),
		}
	case SemPermMask:
		return []IndirectFault{
			mk("zero-mask", "change the mask to 0 so no permission bit is masked", func([]byte) []byte {
				return []byte("0")
			}),
		}
	case SemFileExtension:
		return []IndirectFault{
			mk("change-extension", `swap the extension for ".exe"`, func(v []byte) []byte {
				s := string(v)
				if i := strings.LastIndex(s, "."); i >= 0 {
					s = s[:i]
				}
				return []byte(s + ".exe")
			}),
			mk("change-extension-length", "lengthen the extension", mkAppend("."+strings.Repeat("x", 512))),
		}
	case SemIPAddress:
		return []IndirectFault{
			mk("change-length", "lengthen the address", mkOverlong),
			mk("bad-format", "use a malformed address", mkBadFormat),
		}
	case SemPacket:
		return []IndirectFault{
			mk("change-size", "grow the packet past any fixed buffer", mkOverlong),
			mk("bad-format", "use a malformed packet", mkBadFormat),
		}
	case SemHostName:
		return []IndirectFault{
			mk("change-length", "lengthen the host name", mkOverlong),
			mk("bad-format", "use a malformed host name", mkBadFormat),
		}
	case SemDNSReply:
		return []IndirectFault{
			mk("change-length", "lengthen the DNS reply", mkOverlong),
			mk("bad-format", "use a malformed reply", mkBadFormat),
		}
	case SemProcMessage:
		return []IndirectFault{
			mk("change-length", "lengthen the message", mkOverlong),
			mk("bad-format", "use a malformed message", mkBadFormat),
		}
	case SemRaw:
		return []IndirectFault{
			mk("change-length", "lengthen the value", mkOverlong),
			mk("bad-format", "scramble the value", mkBadFormat),
		}
	default:
		return nil
	}
}

// AllSemantics lists every semantic kind in Table 5 row order (plus the
// SemRaw fallback last).
func AllSemantics() []Semantic {
	return []Semantic{
		SemFileName, SemCommand, SemPathList, SemPermMask, SemFileExtension,
		SemIPAddress, SemPacket, SemHostName, SemDNSReply, SemProcMessage,
		SemRaw,
	}
}

// AllIndirect returns the full Table 5 catalog across every semantic.
func AllIndirect() []IndirectFault {
	var out []IndirectFault
	for _, s := range AllSemantics() {
		out = append(out, CatalogIndirect(s)...)
	}
	return out
}
