package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/interpose"
	"repro/internal/sim/proc"
	"repro/internal/sim/vfs"
)

// Property: adding trusted prefixes never creates violations — the trusted
// set only ever suppresses findings.
func TestTrustedPrefixMonotone(t *testing.T) {
	t.Parallel()
	snap := snapWorld(t)
	obs := Observation{
		Snap: snap,
		Trace: []interpose.Event{
			ev("a:w", interpose.OpWrite, "/etc/passwd", 0),
			ev("a:u", interpose.OpUnlink, "/u/ta/.login", 0),
		},
	}
	base := stdPolicy()
	base.TrustedWritePaths = nil
	baseline := len(base.Evaluate(obs))
	f := func(pick uint8) bool {
		wider := base
		prefixes := []string{"/etc", "/u/ta", "/nowhere", "/u"}
		for i, p := range prefixes {
			if pick&(1<<i) != 0 {
				wider.TrustedWritePaths = append(wider.TrustedWritePaths, p)
			}
		}
		return len(wider.Evaluate(obs)) <= baseline
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a run with an empty trace and no crash is always tolerated.
func TestEmptyRunTolerated(t *testing.T) {
	t.Parallel()
	f := func(invoker, attacker uint8) bool {
		p := Policy{
			Invoker:  proc.NewCred(int(invoker), int(invoker)),
			Attacker: proc.NewCred(int(attacker), int(attacker)),
		}
		return p.Tolerated(Observation{Snap: vfs.New()})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: failed events never contribute violations, whatever the op.
func TestFailedEventsIgnored(t *testing.T) {
	t.Parallel()
	snap := snapWorld(t)
	p := stdPolicy()
	ops := []interpose.Op{
		interpose.OpWrite, interpose.OpCreate, interpose.OpUnlink,
		interpose.OpChmod, interpose.OpChown, interpose.OpRead,
		interpose.OpExec, interpose.OpMkdir, interpose.OpRename,
	}
	f := func(opIdx uint8, euid uint8) bool {
		e := ev("x:y", ops[int(opIdx)%len(ops)], "/etc/passwd", int(euid))
		e.Result.Err = vfs.ErrNotExist
		e.Result.Data = []byte("root:x:0:0:root:/:/bin/sh\n")
		obs := Observation{
			Snap:   snap,
			Trace:  []interpose.Event{e},
			Stdout: e.Result.Data,
		}
		return p.Tolerated(obs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: violations scale sub-additively per object — repeating the
// same offending event many times yields exactly one integrity finding.
func TestPerObjectDedupProperty(t *testing.T) {
	t.Parallel()
	snap := snapWorld(t)
	p := stdPolicy()
	f := func(n uint8) bool {
		count := int(n%20) + 1
		var trace []interpose.Event
		for i := 0; i < count; i++ {
			trace = append(trace, ev("x:w", interpose.OpWrite, "/etc/passwd", 0))
		}
		return len(p.Evaluate(Observation{Snap: snap, Trace: trace})) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMkdirIntegrity: planting a directory in a protected parent is an
// integrity violation (the redirected-submitdir scenario).
func TestMkdirIntegrity(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	obs := Observation{
		Snap:  snapWorld(t),
		Trace: []interpose.Event{ev("t:mkdir", interpose.OpMkdir, "/etc/assignment1", 0)},
	}
	got := p.Evaluate(obs)
	if len(got) != 1 || got[0].Kind != KindIntegrity {
		t.Fatalf("mkdir in /etc = %v", got)
	}
}

// TestChmodOfProtectedObject: loosening permissions on a protected object
// is an integrity violation (the escalation path of the logon scenario).
func TestChmodOfProtectedObject(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	obs := Observation{
		Snap:  snapWorld(t),
		Trace: []interpose.Event{ev("t:chmod", interpose.OpChmod, "/etc/shadow", 0)},
	}
	got := p.Evaluate(obs)
	if len(got) != 1 || got[0].Kind != KindIntegrity {
		t.Fatalf("chmod of shadow = %v", got)
	}
}
