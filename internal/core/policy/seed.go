package policy

import (
	"repro/internal/interpose"
	"repro/internal/sim/vfs"
)

// Seed is per-campaign oracle state precomputed over the clean trace: the
// violations each rule reports on the unperturbed run (tagged with their
// trace indices), the confidentiality candidates whose leak judgement
// depends on a run's stdout, and the untrusted-input taint position.
//
// EvaluateFrom(armed, obs) is then equivalent to Evaluate(obs) whenever
// two preconditions hold, both guaranteed by the injection engine for the
// runs it seeds:
//
//   - obs.Trace[:armed] is byte-identical to the clean trace's first
//     armed events. Faults arm exactly at the armed interaction point, so
//     every event before it replays the clean run.
//   - obs.Snap is the same frozen base filesystem the seed was built
//     against. An applied direct fault replaces the run's Snap with the
//     post-injection world, which invalidates every precomputed
//     readability/writability judgement — such runs must keep the full
//     Evaluate walk.
//
// A Seed is immutable after NewSeed and safe for concurrent EvaluateFrom
// calls from many runs of the same campaign.
type Seed struct {
	p    Policy
	snap *vfs.FS

	// integ and exec are the clean-trace violations of the index-ordered
	// integrity and untrusted-exec rules.
	integ []seedViolation
	exec  []seedViolation
	// leaks are the clean-trace protected reads (stdout-independent
	// conditions satisfied); whether each leaked is re-judged against the
	// run's stdout. On tolerating campaigns this list is empty and the
	// confidentiality prefix costs nothing per run.
	leaks []leakCandidate

	// taintIdx is the clean trace's first authenticity-failed receive
	// (-1 when none), mutIdx the first successful mutation after it
	// (-1 when none), and mutV the violation those two events render.
	taintIdx   int
	taintPoint string
	taintObj   string
	mutIdx     int
	mutV       Violation
}

// seedViolation is a precomputed violation tagged with the clean-trace
// index of the event that triggered it, so EvaluateFrom can replay
// exactly the prefix before a run's armed point.
type seedViolation struct {
	idx int
	v   Violation
}

// leakCandidate is a clean-trace protected read. data aliases the clean
// trace's event payload, which the engine retains for the campaign's
// lifetime.
type leakCandidate struct {
	idx   int
	point string
	obj   string
	data  []byte
}

// NewSeed precomputes the oracle state for a campaign whose runs fork
// from the frozen base filesystem snap and replay trace up to their armed
// points. It walks the clean trace once; every seeded run then pays only
// for its suffix.
func NewSeed(p Policy, trace []interpose.Event, snap *vfs.FS) *Seed {
	s := &Seed{p: p, snap: snap, taintIdx: -1, mutIdx: -1}
	obs := Observation{Trace: trace, Snap: snap}

	p.integrityScan(obs, 0, nil, func(i int, v Violation) {
		s.integ = append(s.integ, seedViolation{i, v})
	})

	min := p.minLeak()
	for i := range trace {
		ev := &trace[i]
		if data, ok := p.protectedRead(ev, snap, min); ok {
			s.leaks = append(s.leaks, leakCandidate{
				idx:   i,
				point: ev.Call.PointID(),
				obj:   ev.ResolvedPath,
				data:  data,
			})
		}
	}

	p.untrustedExecScan(obs, 0, func(i int, v Violation) {
		s.exec = append(s.exec, seedViolation{i, v})
	})

	for i := range trace {
		if taintSource(&trace[i]) {
			s.taintIdx = i
			s.taintPoint = trace[i].Call.PointID()
			s.taintObj = trace[i].Call.Path
			break
		}
	}
	if s.taintIdx >= 0 {
		for i := s.taintIdx + 1; i < len(trace); i++ {
			ev := &trace[i]
			if isMutating(ev.Call.Op) && ev.Result.Err == nil {
				s.mutIdx = i
				s.mutV = taintViolation(s.taintPoint, s.taintObj, ev)
				break
			}
		}
	}
	return s
}

// Snap returns the frozen base filesystem the seed was computed against.
// Seeded evaluation is sound only for observations whose Snap is exactly
// this filesystem.
func (s *Seed) Snap() *vfs.FS { return s.snap }

// EvaluateFrom evaluates the policy over obs, replaying precomputed
// results for the trace prefix before the armed index and walking only
// obs.Trace[armed:] live. See the Seed type comment for the two
// preconditions under which this equals s's Policy.Evaluate(obs).
func (s *Seed) EvaluateFrom(armed int, obs Observation) []Violation {
	if armed < 0 {
		armed = 0
	}
	start := armed
	if start > len(obs.Trace) {
		start = len(obs.Trace)
	}
	var out []Violation

	// Integrity: prefix verdicts verbatim, then the live suffix with the
	// prefix's reported objects carried into the dedup set.
	var seen map[string]bool
	for _, sv := range s.integ {
		if sv.idx >= armed {
			break
		}
		if seen == nil {
			seen = make(map[string]bool)
		}
		seen[sv.v.Object] = true
		out = append(out, sv.v)
	}
	s.p.integrityScan(obs, start, seen, func(_ int, v Violation) { out = append(out, v) })

	// Confidentiality: the prefix's protected reads were precomputed, but
	// whether each leaked depends on this run's stdout.
	seen = nil
	min := s.p.minLeak()
	for i := range s.leaks {
		lc := &s.leaks[i]
		if lc.idx >= armed {
			break
		}
		if seen[lc.obj] {
			continue
		}
		if leakedChunk(obs.Stdout, lc.data, min) {
			if seen == nil {
				seen = make(map[string]bool)
			}
			seen[lc.obj] = true
			out = append(out, Violation{
				Kind:   KindConfidentiality,
				Point:  lc.point,
				Object: lc.obj,
				Detail: s.p.leakDetail(),
			})
		}
	}
	s.p.confidentialityScan(obs, start, seen, func(_ int, v Violation) { out = append(out, v) })

	// Untrusted exec: index-local, no cross-event state.
	for _, sv := range s.exec {
		if sv.idx >= armed {
			break
		}
		out = append(out, sv.v)
	}
	s.p.untrustedExecScan(obs, start, func(_ int, v Violation) { out = append(out, v) })

	out = append(out, s.untrustedInputFrom(armed, start, obs)...)

	if obs.CrashMsg != "" {
		out = append(out, Violation{
			Kind:   KindCrash,
			Object: "process",
			Detail: obs.CrashMsg,
		})
	}
	return out
}

// untrustedInputFrom is the seeded untrusted-input rule. The taint search
// over the prefix happened at seed time; only the mutation search (or the
// whole rule, when the prefix is taint-free) runs over the suffix.
func (s *Seed) untrustedInputFrom(armed, start int, obs Observation) []Violation {
	if s.taintIdx < 0 || s.taintIdx >= armed {
		// The prefix is taint-free, so the full rule starting at the
		// armed event is the whole rule.
		return s.p.untrustedInputScan(obs, start)
	}
	if s.mutIdx >= 0 && s.mutIdx < armed {
		// Both the taint and the first mutation after it sit in the
		// replayed prefix.
		return []Violation{s.mutV}
	}
	// Tainted in the prefix; the clean trace's first mutation (if any)
	// falls at or after the armed point, so the prefix portion after the
	// taint is mutation-free and the search resumes at the armed event.
	return firstMutationAfter(obs, start, s.taintPoint, s.taintObj)
}
