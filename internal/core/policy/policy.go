// Package policy implements the security oracle: given the execution trace
// of a (possibly perturbed) run and a snapshot of the environment, it
// decides whether the run violated the security policy — the paper's
// Section 3.3 step 8, "detect if security policy is violated".
//
// All judgements are made relative to two principals: the Invoker (the
// real uid the program runs on behalf of) and the Attacker (the principal
// performing environment perturbations; often, but not always, the same as
// the invoker — in the Windows NT case of Section 4.2 the attacker is an
// unprivileged user while the invoker is an administrator).
package policy

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/interpose"
	"repro/internal/sim/proc"
	"repro/internal/sim/vfs"
)

// Kind classifies a security violation.
type Kind int

// Violation kinds.
const (
	// KindIntegrity: the run modified or removed an object beyond the
	// judged principals' authority (e.g. truncating /etc/passwd through a
	// symlinked spool file).
	KindIntegrity Kind = iota + 1
	// KindConfidentiality: content the invoker may not read appeared in
	// invoker-visible output (e.g. /etc/shadow through Projlist).
	KindConfidentiality
	// KindUntrustedExec: the process executed an attacker-controllable
	// binary with authority the attacker lacks.
	KindUntrustedExec
	// KindUntrustedInput: the process accepted inauthentic or untrusted
	// input and went on to mutate the environment anyway.
	KindUntrustedInput
	// KindCrash: the run ended in a simulated memory error — failed
	// toleration, counted separately from policy violations as in the
	// Fuzz comparison.
	KindCrash
)

// String returns the violation-kind name used in reports.
func (k Kind) String() string {
	switch k {
	case KindIntegrity:
		return "integrity"
	case KindConfidentiality:
		return "confidentiality"
	case KindUntrustedExec:
		return "untrusted-exec"
	case KindUntrustedInput:
		return "untrusted-input"
	case KindCrash:
		return "crash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Violation is one detected policy breach.
type Violation struct {
	Kind Kind
	// Point is the interaction point (site#occur) whose event triggered
	// detection ("" for whole-run violations such as crashes).
	Point string
	// Object is the environment object involved.
	Object string
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s at %s: %s", v.Kind, v.Object, v.Point, v.Detail)
}

// Policy is the campaign's security policy specification.
type Policy struct {
	// Invoker is the user on whose behalf the program runs.
	Invoker proc.Cred
	// Attacker is the principal performing perturbations.
	Attacker proc.Cred
	// TrustedWritePaths are path prefixes the application legitimately
	// manages (the TA's submit directory for turnin, the font directory
	// for the NT cleanup module). Mutations inside them are never
	// integrity violations.
	TrustedWritePaths []string
	// MinLeakLen is the minimum number of bytes of protected content that
	// must appear in output to count as a confidentiality leak. Zero means
	// the default of 8.
	MinLeakLen int
}

// Observation is everything the oracle sees about one run.
type Observation struct {
	// Trace is the recorded interaction sequence.
	Trace []interpose.Event
	// Stdout is the invoker-visible output of the run.
	Stdout []byte
	// CrashMsg is non-empty when the run ended in a simulated memory
	// error.
	CrashMsg string
	// Snap is the filesystem as of fault injection (or as of launch when
	// no direct fault rewrote the world). Pre-existence and
	// readability/writability judgements are made against it.
	Snap *vfs.FS
}

func (p Policy) minLeak() int {
	if p.MinLeakLen > 0 {
		return p.MinLeakLen
	}
	return 8
}

func (p Policy) trusted(path string) bool {
	for _, prefix := range p.TrustedWritePaths {
		if path == prefix || strings.HasPrefix(path, strings.TrimSuffix(prefix, "/")+"/") {
			return true
		}
	}
	return false
}

// snapNode returns the inode at path in the snapshot, or nil. Peek keeps
// this allocation-free: the oracle calls it for every mutating or exec
// event of every run's trace, and the paths it sees are the canonical
// absolute ResolvedPaths the kernel recorded.
func snapNode(snap *vfs.FS, path string) *vfs.Inode {
	if snap == nil || path == "" {
		return nil
	}
	return snap.Peek(path, false)
}

// snapParent returns the snapshot inode of path's parent directory.
func snapParent(snap *vfs.FS, path string) *vfs.Inode {
	if snap == nil || path == "" || path == "/" {
		return nil
	}
	i := strings.LastIndex(path, "/")
	dir := path[:i]
	if dir == "" {
		dir = "/"
	}
	return snapNode(snap, dir)
}

// isMutating reports whether the operation changes the environment.
func isMutating(op interpose.Op) bool {
	switch op {
	case interpose.OpWrite, interpose.OpCreate, interpose.OpUnlink,
		interpose.OpRename, interpose.OpChmod, interpose.OpChown,
		interpose.OpMkdir, interpose.OpRmdir, interpose.OpSymlink,
		interpose.OpRegSet, interpose.OpRegDel, interpose.OpSend,
		interpose.OpMsgSend, interpose.OpSetenv:
		return true
	default:
		return false
	}
}

// isFSMutation selects the mutations judged by the integrity rule.
func isFSMutation(op interpose.Op) bool {
	switch op {
	case interpose.OpWrite, interpose.OpCreate, interpose.OpUnlink,
		interpose.OpRename, interpose.OpChmod, interpose.OpChown,
		interpose.OpMkdir:
		return true
	default:
		return false
	}
}

// Evaluate applies every rule to the observation and returns the detected
// violations. An empty result means the run tolerated the environment
// (whatever was injected into it).
func (p Policy) Evaluate(obs Observation) []Violation {
	var out []Violation
	out = append(out, p.integrity(obs)...)
	out = append(out, p.confidentiality(obs)...)
	out = append(out, p.untrustedExec(obs)...)
	out = append(out, p.untrustedInput(obs)...)
	if obs.CrashMsg != "" {
		out = append(out, Violation{
			Kind:   KindCrash,
			Object: "process",
			Detail: obs.CrashMsg,
		})
	}
	return out
}

// Tolerated reports whether the observation passes the policy.
func (p Policy) Tolerated(obs Observation) bool { return len(p.Evaluate(obs)) == 0 }

// integrity: a successful filesystem mutation on
//   - a pre-existing object that the invoker or the attacker could not
//     write, or
//   - a fresh object in a directory neither the invoker nor the attacker
//     could write,
//
// outside the trusted write paths, exceeds delegated authority.
func (p Policy) integrity(obs Observation) []Violation {
	var out []Violation
	p.integrityScan(obs, 0, nil, func(_ int, v Violation) { out = append(out, v) })
	return out
}

// integrityScan applies the integrity rule to obs.Trace[start:], emitting
// each violation with its trace index. seen carries objects already
// reported by an earlier portion of the walk (nil when none): the rule
// reports each object at most once, so a seeded evaluation pre-populates
// it from the prefix.
func (p Policy) integrityScan(obs Observation, start int, seen map[string]bool, emit func(int, Violation)) {
	for i := start; i < len(obs.Trace); i++ {
		ev := &obs.Trace[i]
		if !isFSMutation(ev.Call.Op) || ev.Result.Err != nil {
			continue
		}
		obj := ev.ResolvedPath
		if obj == "" || p.trusted(obj) || seen[obj] {
			continue
		}
		if n := snapNode(obs.Snap, obj); n != nil {
			invokerOK := vfs.WritableBy(n, p.Invoker.UID, p.Invoker.GID)
			attackerOK := vfs.WritableBy(n, p.Attacker.UID, p.Attacker.GID)
			if !invokerOK || !attackerOK {
				if seen == nil {
					seen = make(map[string]bool)
				}
				seen[obj] = true
				emit(i, Violation{
					Kind:   KindIntegrity,
					Point:  ev.Call.PointID(),
					Object: obj,
					Detail: fmt.Sprintf("%s of pre-existing object not writable by invoker(uid %d) and/or attacker(uid %d)", ev.Call.Op, p.Invoker.UID, p.Attacker.UID),
				})
			}
			continue
		}
		// Fresh object: judge the containing directory.
		if ev.Call.Op != interpose.OpCreate && ev.Call.Op != interpose.OpMkdir &&
			ev.Call.Op != interpose.OpWrite && ev.Call.Op != interpose.OpRename {
			continue
		}
		if d := snapParent(obs.Snap, obj); d != nil {
			invokerOK := vfs.Allows(d, p.Invoker.UID, p.Invoker.GID, vfs.WantWrite)
			attackerOK := vfs.Allows(d, p.Attacker.UID, p.Attacker.GID, vfs.WantWrite)
			if !invokerOK && !attackerOK {
				if seen == nil {
					seen = make(map[string]bool)
				}
				seen[obj] = true
				emit(i, Violation{
					Kind:   KindIntegrity,
					Point:  ev.Call.PointID(),
					Object: obj,
					Detail: fmt.Sprintf("%s planted a new object in a directory writable by neither invoker nor attacker", ev.Call.Op),
				})
			}
		}
	}
}

// confidentiality: content read from an object the invoker cannot read
// must not reach invoker-visible output.
func (p Policy) confidentiality(obs Observation) []Violation {
	var out []Violation
	p.confidentialityScan(obs, 0, nil, func(_ int, v Violation) { out = append(out, v) })
	return out
}

// protectedRead is the stdout-independent half of the confidentiality
// rule: it reports whether ev is a successful read of content the invoker
// may not see, returning the payload when it is at least min bytes. The
// seeded oracle precomputes these candidates over the clean trace and
// re-judges only the stdout-dependent leak test per run.
func (p Policy) protectedRead(ev *interpose.Event, snap *vfs.FS, min int) ([]byte, bool) {
	if ev.Call.Op != interpose.OpRead || ev.Result.Err != nil {
		return nil, false
	}
	obj := ev.ResolvedPath
	if obj == "" || snap == nil {
		return nil, false
	}
	n := snapNode(snap, obj)
	if n == nil {
		// Follow a final symlink in the snapshot, in case the object
		// identity is itself the link.
		n = snap.Peek(obj, true)
	}
	if n == nil || vfs.ReadableBy(n, p.Invoker.UID, p.Invoker.GID) {
		return nil, false
	}
	if len(ev.Result.Data) < min {
		return nil, false
	}
	return ev.Result.Data, true
}

// leakDetail renders the confidentiality violation explanation.
func (p Policy) leakDetail() string {
	return fmt.Sprintf("content of object unreadable by invoker(uid %d) appeared on stdout", p.Invoker.UID)
}

// confidentialityScan applies the confidentiality rule to
// obs.Trace[start:]. seen carries objects already reported by the prefix,
// as in integrityScan.
func (p Policy) confidentialityScan(obs Observation, start int, seen map[string]bool, emit func(int, Violation)) {
	min := p.minLeak()
	for i := start; i < len(obs.Trace); i++ {
		ev := &obs.Trace[i]
		if seen[ev.ResolvedPath] {
			continue
		}
		data, ok := p.protectedRead(ev, obs.Snap, min)
		if !ok {
			continue
		}
		if leakedChunk(obs.Stdout, data, min) {
			if seen == nil {
				seen = make(map[string]bool)
			}
			seen[ev.ResolvedPath] = true
			emit(i, Violation{
				Kind:   KindConfidentiality,
				Point:  ev.Call.PointID(),
				Object: ev.ResolvedPath,
				Detail: p.leakDetail(),
			})
		}
	}
}

// leakedChunk reports whether any min-length window of data appears in out.
// Checking windows rather than the whole payload catches partial leaks
// (an application that prints protected content line by line). Windows
// slide by min/2 and the final min bytes are always probed, so a leaked
// chunk straddling a min-aligned tile boundary (or sitting at the tail of
// a payload that is not a multiple of min) cannot be missed.
func leakedChunk(out, data []byte, min int) bool {
	if len(data) < min || len(out) < min {
		return false
	}
	if bytes.Contains(out, data) {
		return true
	}
	step := min / 2
	if step < 1 {
		step = 1
	}
	for i := 0; i+min <= len(data); i += step {
		if bytes.Contains(out, data[i:i+min]) {
			return true
		}
	}
	return bytes.Contains(out, data[len(data)-min:])
}

// untrustedExec: executing a binary the attacker controls, with authority
// the attacker lacks, hands the attacker that authority.
func (p Policy) untrustedExec(obs Observation) []Violation {
	var out []Violation
	p.untrustedExecScan(obs, 0, func(_ int, v Violation) { out = append(out, v) })
	return out
}

// untrustedExecScan applies the untrusted-exec rule to obs.Trace[start:].
func (p Policy) untrustedExecScan(obs Observation, start int, emit func(int, Violation)) {
	for i := start; i < len(obs.Trace); i++ {
		ev := &obs.Trace[i]
		if ev.Call.Op != interpose.OpExec || ev.Result.Err != nil {
			continue
		}
		if ev.Call.EUID == p.Attacker.UID && ev.Call.EUID == ev.Call.UID {
			continue // the attacker executing their own code is not a breach
		}
		n := snapNode(obs.Snap, ev.ResolvedPath)
		if n == nil {
			continue
		}
		if n.UID == p.Attacker.UID || vfs.WritableBy(n, p.Attacker.UID, p.Attacker.GID) {
			emit(i, Violation{
				Kind:   KindUntrustedExec,
				Point:  ev.Call.PointID(),
				Object: ev.ResolvedPath,
				Detail: fmt.Sprintf("executed attacker-controllable binary with euid %d", ev.Call.EUID),
			})
		}
	}
}

// taintViolation renders the untrusted-input violation for the tainting
// receive and the mutation event that followed it.
func taintViolation(point, obj string, mut *interpose.Event) Violation {
	return Violation{
		Kind:   KindUntrustedInput,
		Point:  point,
		Object: obj,
		Detail: fmt.Sprintf("acted on inauthentic network input (mutation %s at %s followed)", mut.Call.Op, mut.Call.PointID()),
	}
}

// taintSource reports whether ev is an authenticity-failed receive — the
// event that taints everything after it.
func taintSource(ev *interpose.Event) bool {
	return ev.Call.Op == interpose.OpRecv && ev.Result.Err == nil && !ev.Result.Flag
}

// untrustedInput: accepting provenance-less input and then mutating the
// environment means the mutation is attacker-steered.
func (p Policy) untrustedInput(obs Observation) []Violation {
	return p.untrustedInputScan(obs, 0)
}

// untrustedInputScan applies the untrusted-input rule with the taint
// search starting at obs.Trace[start] — a seeded evaluation whose prefix
// is known taint-free starts the search at the armed event.
func (p Policy) untrustedInputScan(obs Observation, start int) []Violation {
	tainted := -1
	taintedPoint := ""
	taintedObj := ""
	for i := start; i < len(obs.Trace); i++ {
		ev := &obs.Trace[i]
		if taintSource(ev) {
			tainted = i
			taintedPoint = ev.Call.PointID()
			taintedObj = ev.Call.Path
			break
		}
	}
	if tainted < 0 {
		return nil
	}
	return firstMutationAfter(obs, tainted+1, taintedPoint, taintedObj)
}

// firstMutationAfter returns the untrusted-input violation for the first
// successful mutation at or after obs.Trace[from], or nil.
func firstMutationAfter(obs Observation, from int, taintedPoint, taintedObj string) []Violation {
	for i := from; i < len(obs.Trace); i++ {
		ev := &obs.Trace[i]
		if isMutating(ev.Call.Op) && ev.Result.Err == nil {
			return []Violation{taintViolation(taintedPoint, taintedObj, ev)}
		}
	}
	return nil
}
