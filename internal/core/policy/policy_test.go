package policy

import (
	"strings"
	"testing"

	"repro/internal/interpose"
	"repro/internal/sim/proc"
	"repro/internal/sim/vfs"
)

// snapWorld builds a snapshot filesystem with the canonical protected and
// open objects.
func snapWorld(t testing.TB) *vfs.FS {
	t.Helper()
	fs := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.MkdirAll("/", "/etc", 0o755, 0, 0))
	must(fs.MkdirAll("/", "/tmp", 0o777, 0, 0))
	must(fs.MkdirAll("/", "/u/ta/submit", 0o700, 200, 200))
	must(fs.WriteFile("/etc/passwd", []byte("root:x:0:0:root:/:/bin/sh\n"), 0o644, 0, 0))
	must(fs.WriteFile("/etc/shadow", []byte("root:$1$SECRETHASH$:10000:\n"), 0o600, 0, 0))
	must(fs.WriteFile("/u/ta/.login", []byte("setenv SHELL /bin/csh\n"), 0o644, 200, 200))
	must(fs.WriteFile("/tmp/scratch", []byte("scratch-data"), 0o666, 100, 100))
	must(fs.WriteFile("/tmp/evil-bin", []byte("#!"), 0o777, 666, 666))
	return fs
}

func stdPolicy() Policy {
	return Policy{
		Invoker:           proc.NewCred(100, 100),
		Attacker:          proc.NewCred(100, 100),
		TrustedWritePaths: []string{"/u/ta/submit"},
	}
}

func ev(site string, op interpose.Op, resolved string, euid int) interpose.Event {
	return interpose.Event{
		Call:         interpose.Call{Site: site, Op: op, Path: resolved, UID: 100, EUID: euid},
		ResolvedPath: resolved,
	}
}

func TestKindString(t *testing.T) {
	t.Parallel()
	kinds := map[Kind]string{
		KindIntegrity:       "integrity",
		KindConfidentiality: "confidentiality",
		KindUntrustedExec:   "untrusted-exec",
		KindUntrustedInput:  "untrusted-input",
		KindCrash:           "crash",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestIntegrityPreExistingUnwritable(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	obs := Observation{
		Snap:  snapWorld(t),
		Trace: []interpose.Event{ev("lpr:write", interpose.OpWrite, "/etc/passwd", 0)},
	}
	got := p.Evaluate(obs)
	if len(got) != 1 || got[0].Kind != KindIntegrity {
		t.Fatalf("violations = %v", got)
	}
	if got[0].Object != "/etc/passwd" {
		t.Errorf("object = %q", got[0].Object)
	}
	if !strings.Contains(got[0].String(), "integrity") {
		t.Errorf("String() = %q", got[0].String())
	}
}

func TestIntegrityWritableObjectTolerated(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	obs := Observation{
		Snap:  snapWorld(t),
		Trace: []interpose.Event{ev("app:write", interpose.OpWrite, "/tmp/scratch", 0)},
	}
	if got := p.Evaluate(obs); len(got) != 0 {
		t.Errorf("write to invoker-writable file flagged: %v", got)
	}
}

func TestIntegrityTrustedPrefixTolerated(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	// The TA's pre-existing grading notes inside the trusted prefix.
	snap := snapWorld(t)
	if err := snap.WriteFile("/u/ta/submit/notes", []byte("x"), 0o600, 200, 200); err != nil {
		t.Fatal(err)
	}
	obs := Observation{
		Snap:  snap,
		Trace: []interpose.Event{ev("turnin:write", interpose.OpWrite, "/u/ta/submit/notes", 0)},
	}
	if got := p.Evaluate(obs); len(got) != 0 {
		t.Errorf("trusted-prefix write flagged: %v", got)
	}
	// Prefix matching must not treat /u/ta/submitX as trusted.
	obs2 := Observation{
		Snap:  snap,
		Trace: []interpose.Event{ev("turnin:write", interpose.OpWrite, "/u/ta/.login", 0)},
	}
	if got := p.Evaluate(obs2); len(got) != 1 {
		t.Errorf("escape from trusted prefix not flagged: %v", got)
	}
}

func TestIntegrityFreshObjectInProtectedDir(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	obs := Observation{
		Snap: snapWorld(t),
		Trace: []interpose.Event{
			ev("turnin:create", interpose.OpCreate, "/etc/planted.cfg", 0),
		},
	}
	got := p.Evaluate(obs)
	if len(got) != 1 || got[0].Kind != KindIntegrity {
		t.Fatalf("plant in /etc = %v", got)
	}
	// Fresh object in a world-writable dir is fine.
	obs2 := Observation{
		Snap: snapWorld(t),
		Trace: []interpose.Event{
			ev("lpr:create", interpose.OpCreate, "/tmp/cfa001", 0),
		},
	}
	if got := p.Evaluate(obs2); len(got) != 0 {
		t.Errorf("fresh create in /tmp flagged: %v", got)
	}
}

func TestIntegrityFailedEventIgnored(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	e := ev("app:write", interpose.OpWrite, "/etc/passwd", 100)
	e.Result.Err = vfs.ErrNotExist
	obs := Observation{Snap: snapWorld(t), Trace: []interpose.Event{e}}
	if got := p.Evaluate(obs); len(got) != 0 {
		t.Errorf("failed write flagged: %v", got)
	}
}

func TestIntegrityDedupedPerObject(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	obs := Observation{
		Snap: snapWorld(t),
		Trace: []interpose.Event{
			ev("a:w1", interpose.OpWrite, "/etc/passwd", 0),
			ev("a:w2", interpose.OpWrite, "/etc/passwd", 0),
		},
	}
	if got := p.Evaluate(obs); len(got) != 1 {
		t.Errorf("expected one violation per object, got %v", got)
	}
}

func TestConfidentialityLeak(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	secret := []byte("root:$1$SECRETHASH$:10000:\n")
	read := ev("turnin:read-projlist", interpose.OpRead, "/etc/shadow", 0)
	read.Result.Data = secret
	obs := Observation{
		Snap:   snapWorld(t),
		Trace:  []interpose.Event{read},
		Stdout: append([]byte("Project list:\n"), secret...),
	}
	got := p.Evaluate(obs)
	if len(got) != 1 || got[0].Kind != KindConfidentiality {
		t.Fatalf("violations = %v", got)
	}
}

func TestConfidentialityNoLeakWithoutOutput(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	read := ev("app:read", interpose.OpRead, "/etc/shadow", 0)
	read.Result.Data = []byte("root:$1$SECRETHASH$:10000:\n")
	obs := Observation{
		Snap:   snapWorld(t),
		Trace:  []interpose.Event{read},
		Stdout: []byte("nothing to see"),
	}
	if got := p.Evaluate(obs); len(got) != 0 {
		t.Errorf("read without output flagged: %v", got)
	}
}

func TestConfidentialityReadableFileTolerated(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	read := ev("app:read", interpose.OpRead, "/etc/passwd", 100)
	read.Result.Data = []byte("root:x:0:0:root:/:/bin/sh\n")
	obs := Observation{
		Snap:   snapWorld(t),
		Trace:  []interpose.Event{read},
		Stdout: read.Result.Data,
	}
	if got := p.Evaluate(obs); len(got) != 0 {
		t.Errorf("world-readable file leak flagged: %v", got)
	}
}

func TestConfidentialityPartialLeak(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	secret := []byte("root:$1$SECRETHASH$:10000:extra-tail-data\n")
	read := ev("app:read", interpose.OpRead, "/etc/shadow", 0)
	read.Result.Data = secret
	// Only a middle chunk of the secret is printed.
	obs := Observation{
		Snap:   snapWorld(t),
		Trace:  []interpose.Event{read},
		Stdout: secret[8:24],
	}
	if got := p.Evaluate(obs); len(got) != 1 {
		t.Errorf("partial leak not flagged: %v", got)
	}
}

func TestUntrustedExec(t *testing.T) {
	t.Parallel()
	p := Policy{Invoker: proc.NewCred(100, 100), Attacker: proc.NewCred(666, 666)}
	e := ev("mail:exec", interpose.OpExec, "/tmp/evil-bin", 100)
	obs := Observation{Snap: snapWorld(t), Trace: []interpose.Event{e}}
	got := p.Evaluate(obs)
	if len(got) != 1 || got[0].Kind != KindUntrustedExec {
		t.Fatalf("violations = %v", got)
	}
	// Root-owned binary is fine.
	e2 := ev("mail:exec", interpose.OpExec, "/etc/passwd", 100)
	obs2 := Observation{Snap: snapWorld(t), Trace: []interpose.Event{e2}}
	if got := p.Evaluate(obs2); len(got) != 0 {
		t.Errorf("root-owned exec flagged: %v", got)
	}
	// The attacker executing their own code, as themselves, is fine.
	e3 := ev("mail:exec", interpose.OpExec, "/tmp/evil-bin", 666)
	e3.Call.UID = 666
	obs3 := Observation{Snap: snapWorld(t), Trace: []interpose.Event{e3}}
	if got := p.Evaluate(obs3); len(got) != 0 {
		t.Errorf("attacker self-exec flagged: %v", got)
	}
}

func TestUntrustedInput(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	recv := ev("ftp:recv", interpose.OpRecv, "10.0.0.5:21", 100)
	recv.Result.Flag = false // inauthentic
	write := ev("ftp:write", interpose.OpWrite, "/tmp/scratch", 100)
	obs := Observation{Snap: snapWorld(t), Trace: []interpose.Event{recv, write}}
	got := p.Evaluate(obs)
	if len(got) != 1 || got[0].Kind != KindUntrustedInput {
		t.Fatalf("violations = %v", got)
	}
	// Authentic input followed by a write is fine.
	recv2 := recv
	recv2.Result.Flag = true
	obs2 := Observation{Snap: snapWorld(t), Trace: []interpose.Event{recv2, write}}
	if got := p.Evaluate(obs2); len(got) != 0 {
		t.Errorf("authentic input flagged: %v", got)
	}
	// Inauthentic input with no subsequent mutation (the app aborted) is
	// tolerated.
	obs3 := Observation{Snap: snapWorld(t), Trace: []interpose.Event{recv}}
	if got := p.Evaluate(obs3); len(got) != 0 {
		t.Errorf("aborting app flagged: %v", got)
	}
	// Mutation BEFORE the tainted recv does not count.
	obs4 := Observation{Snap: snapWorld(t), Trace: []interpose.Event{write, recv}}
	if got := p.Evaluate(obs4); len(got) != 0 {
		t.Errorf("pre-taint mutation flagged: %v", got)
	}
}

func TestCrash(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	obs := Observation{Snap: snapWorld(t), CrashMsg: "buffer overflow: 4101 into 256"}
	got := p.Evaluate(obs)
	if len(got) != 1 || got[0].Kind != KindCrash {
		t.Fatalf("violations = %v", got)
	}
	if p.Tolerated(obs) {
		t.Error("crash reported as tolerated")
	}
}

func TestToleratedCleanRun(t *testing.T) {
	t.Parallel()
	p := stdPolicy()
	// A clean turnin-like run: read config, read list, create fresh file in
	// the trusted submit dir.
	read := ev("t:read", interpose.OpRead, "/etc/passwd", 0)
	read.Result.Data = []byte("root:x:0:0:root:/:/bin/sh\n")
	obs := Observation{
		Snap: snapWorld(t),
		Trace: []interpose.Event{
			read,
			ev("t:create", interpose.OpCreate, "/u/ta/submit/proj1-hw1.c", 0),
			ev("t:write", interpose.OpWrite, "/u/ta/submit/proj1-hw1.c", 0),
		},
		Stdout: []byte("submitted.\n"),
	}
	if !p.Tolerated(obs) {
		t.Errorf("clean run not tolerated: %v", p.Evaluate(obs))
	}
}

func TestAttackerDistinctFromInvoker(t *testing.T) {
	t.Parallel()
	// The NT font-cleanup shape: invoker is an administrator (can write
	// anything), attacker is unprivileged. The module deletes a file the
	// attacker named — integrity violation judged against the attacker.
	p := Policy{
		Invoker:           proc.NewCred(0, 0),
		Attacker:          proc.NewCred(666, 666),
		TrustedWritePaths: []string{"/fonts"},
	}
	snap := snapWorld(t)
	if err := snap.MkdirAll("/", "/fonts", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteFile("/fonts/old.fon", []byte("fontdata"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Clean behaviour: deleting the real font file is inside the trusted
	// prefix.
	clean := Observation{
		Snap:  snap,
		Trace: []interpose.Event{ev("fc:unlink", interpose.OpUnlink, "/fonts/old.fon", 0)},
	}
	if got := p.Evaluate(clean); len(got) != 0 {
		t.Errorf("clean font delete flagged: %v", got)
	}
	// Perturbed behaviour: the registry key now names /etc/passwd.
	bad := Observation{
		Snap:  snap,
		Trace: []interpose.Event{ev("fc:unlink", interpose.OpUnlink, "/etc/passwd", 0)},
	}
	got := p.Evaluate(bad)
	if len(got) != 1 || got[0].Kind != KindIntegrity {
		t.Fatalf("perturbed delete = %v", got)
	}
}

func TestMinLeakDefault(t *testing.T) {
	t.Parallel()
	p := Policy{}
	if p.minLeak() != 8 {
		t.Errorf("default minLeak = %d", p.minLeak())
	}
	p.MinLeakLen = 16
	if p.minLeak() != 16 {
		t.Errorf("explicit minLeak = %d", p.minLeak())
	}
}

func TestLeakedChunk(t *testing.T) {
	t.Parallel()
	tests := []struct {
		out, data string
		min       int
		want      bool
	}{
		{"hello secret world", "secret!!', no", 8, false},
		{"prefix SECRETDATA suffix", "SECRETDATA", 8, true},
		{"chunk2-here", "chunk1--chunk2-here-chunk3--", 8, true},
		{"short", "tiny", 8, false},
		{"", "SECRETDATA", 8, false},
	}
	for _, tt := range tests {
		if got := leakedChunk([]byte(tt.out), []byte(tt.data), tt.min); got != tt.want {
			t.Errorf("leakedChunk(%q, %q) = %v, want %v", tt.out, tt.data, got, tt.want)
		}
	}
}
