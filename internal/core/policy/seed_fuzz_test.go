package policy

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/interpose"
	"repro/internal/sim/proc"
	"repro/internal/sim/vfs"
)

// The fuzz event decoder's alphabets: every path the snapWorld fixture
// defines (plus a fresh path and the empty identity), and every op the
// oracle's rules discriminate on.
var (
	fuzzPaths = []string{
		"/etc/passwd", "/etc/shadow", "/u/ta/.login", "/tmp/scratch",
		"/tmp/evil-bin", "/tmp/fresh", "/etc/fresh", "",
	}
	fuzzOps = []interpose.Op{
		interpose.OpWrite, interpose.OpRead, interpose.OpCreate,
		interpose.OpUnlink, interpose.OpChmod, interpose.OpExec,
		interpose.OpRecv, interpose.OpSend, interpose.OpMkdir,
		interpose.OpRename,
	}
	fuzzPayloads = [][]byte{
		nil,
		[]byte("root:$1$SECRETHASH$:10000:\n"),
		[]byte("short"),
		[]byte("0123456789abcdef0123456789abcdef"),
	}
)

// decodeFuzzTrace turns raw fuzz bytes into an event sequence, three
// bytes per event: op selector, path selector, and a result-bit byte
// (error, authenticity flag, payload, euid). Occurrence counters run
// per site, as the recording bus would number them.
func decodeFuzzTrace(raw []byte, occur map[string]int) []interpose.Event {
	var out []interpose.Event
	for len(raw) >= 3 {
		op := fuzzOps[int(raw[0])%len(fuzzOps)]
		path := fuzzPaths[int(raw[1])%len(fuzzPaths)]
		bits := raw[2]
		raw = raw[3:]

		site := fmt.Sprintf("fz%d:%s", int(raw0(bits))%3, op)
		e := interpose.Event{
			Call: interpose.Call{
				Site:  site,
				Op:    op,
				Path:  path,
				Occur: occur[site],
				UID:   100,
				EUID:  []int{0, 100, 666}[int(bits)%3],
			},
			ResolvedPath: path,
		}
		occur[site]++
		if bits&0x04 != 0 {
			e.Result.Err = vfs.ErrNotExist
		}
		e.Result.Flag = bits&0x08 != 0
		e.Result.Data = fuzzPayloads[int(bits>>4)%len(fuzzPayloads)]
		out = append(out, e)
	}
	return out
}

func raw0(b byte) byte { return b >> 6 }

// FuzzOracleSeed asserts the seeded oracle's central equivalence: for an
// arbitrary clean trace, an arbitrary armed index, an arbitrary perturbed
// suffix, and an arbitrary policy variant, EvaluateFrom(armed, obs) over
// the run trace clean[:armed]+suffix must equal the full Evaluate(obs)
// walk — same violations, same order. The two preconditions the engine
// guarantees (trace-prefix identity and a shared frozen Snap) hold by
// construction here; everything else is adversarial.
func FuzzOracleSeed(f *testing.F) {
	f.Add([]byte{}, []byte{}, uint8(0), uint8(0))
	f.Add([]byte{0, 0, 0, 1, 1, 16, 6, 2, 8}, []byte{7, 3, 0}, uint8(1), uint8(0))
	f.Add([]byte{6, 4, 0, 0, 0, 0}, []byte{1, 1, 16, 5, 4, 1}, uint8(2), uint8(5))
	f.Add([]byte{1, 1, 16, 1, 1, 16, 2, 6, 3}, []byte{9, 2, 255}, uint8(3), uint8(14))

	snap := snapWorld(f)
	snap.Freeze()

	f.Fuzz(func(t *testing.T, cleanRaw, suffixRaw []byte, armedB, cfg uint8) {
		p := Policy{
			Invoker:           proc.NewCred(100, 100),
			Attacker:          proc.NewCred([]int{100, 666, 0}[int(cfg)%3], 100),
			TrustedWritePaths: []string{"/u/ta/submit"},
			MinLeakLen:        []int{0, 4, 27}[int(cfg>>2)%3],
		}

		occur := map[string]int{}
		clean := decodeFuzzTrace(cleanRaw, occur)
		armed := int(armedB) % (len(clean) + 1)
		// The run trace replays the clean prefix up to the armed point,
		// then diverges arbitrarily — occurrence numbering continues from
		// the prefix, as it would in a real perturbed run.
		runOccur := map[string]int{}
		for i := 0; i < armed; i++ {
			runOccur[clean[i].Call.Site]++
		}
		runTrace := append(append([]interpose.Event(nil), clean[:armed]...),
			decodeFuzzTrace(suffixRaw, runOccur)...)

		obs := Observation{Trace: runTrace, Snap: snap}
		if cfg&0x10 != 0 {
			obs.Stdout = append(obs.Stdout, suffixRaw...)
		}
		if cfg&0x20 != 0 {
			obs.Stdout = append(obs.Stdout, []byte("root:$1$SECRETHASH$:10000:\n")...)
		}
		if cfg&0x40 != 0 {
			obs.Stdout = append(obs.Stdout, []byte("0123456789abcdef0123456789abcdef")...)
		}
		if cfg&0x80 != 0 {
			obs.CrashMsg = "segfault"
		}

		seed := NewSeed(p, clean, snap)
		got := seed.EvaluateFrom(armed, obs)
		want := p.Evaluate(obs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seeded oracle diverged (armed=%d, clean=%d events, run=%d events):\n  seeded: %v\n  full:   %v",
				armed, len(clean), len(runTrace), got, want)
		}
	})
}
