// Package tocttou reimplements the Bishop-Dilger comparator of Section 5:
// a detector for time-of-check-to-time-of-use patterns — "an application
// checks for a particular characteristic of an object and then takes some
// action that assumes the characteristic still holds".
//
// Bishop and Dilger analyse source code; the closest analogue over this
// repository's substrate is analysis of the recorded interaction trace,
// flagging every check interaction on an object followed by a use
// interaction on the same object. As the paper notes, the approach covers
// exactly one flaw class: it flags races between explicit checks and uses,
// but is blind to flaws with no check at all (lpr's unconditional creat)
// and to flaws in the value of an input rather than the identity of an
// object (the whole of Table 5). The package tests and the comparison
// bench measure that blindness against the EAI engine's findings.
package tocttou

import (
	"fmt"

	"repro/internal/interpose"
)

// Finding is one check-use pair on the same object.
type Finding struct {
	Object     string
	CheckPoint string
	CheckOp    interpose.Op
	UsePoint   string
	UseOp      interpose.Op
	// Gap is the number of interactions between check and use — a proxy
	// for the width of the race window.
	Gap int
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("TOCTTOU %s: %s@%s ... %s@%s (window %d)",
		f.Object, f.CheckOp, f.CheckPoint, f.UseOp, f.UsePoint, f.Gap)
}

// isCheck reports whether the op observes an object's characteristics.
func isCheck(op interpose.Op) bool {
	switch op {
	case interpose.OpStat, interpose.OpLstat, interpose.OpReadlink,
		interpose.OpReadDir, interpose.OpRegGet:
		return true
	default:
		return false
	}
}

// isUse reports whether the op acts on the object assuming the checked
// characteristics still hold.
func isUse(op interpose.Op) bool {
	switch op {
	case interpose.OpOpen, interpose.OpCreate, interpose.OpWrite,
		interpose.OpUnlink, interpose.OpRename, interpose.OpChmod,
		interpose.OpChown, interpose.OpExec, interpose.OpMkdir:
		return true
	default:
		return false
	}
}

// Analyze scans a trace for check-use pairs. Each object is reported at
// most once, for its first check and the first use after it.
func Analyze(trace []interpose.Event) []Finding {
	type check struct {
		point string
		op    interpose.Op
		seq   int
	}
	checks := make(map[string]check)
	reported := make(map[string]bool)
	var out []Finding
	for i := range trace {
		ev := &trace[i]
		obj := ev.ResolvedPath
		if obj == "" {
			continue
		}
		switch {
		case isCheck(ev.Call.Op):
			if _, ok := checks[obj]; !ok {
				checks[obj] = check{point: ev.Call.PointID(), op: ev.Call.Op, seq: ev.Call.Seq}
			}
		case isUse(ev.Call.Op):
			c, ok := checks[obj]
			if !ok || reported[obj] {
				continue
			}
			reported[obj] = true
			out = append(out, Finding{
				Object:     obj,
				CheckPoint: c.point,
				CheckOp:    c.op,
				UsePoint:   ev.Call.PointID(),
				UseOp:      ev.Call.Op,
				Gap:        ev.Call.Seq - c.seq,
			})
		}
	}
	return out
}

// AnalyzeDirs extends Analyze with the directory-ancestor variant Bishop
// and Dilger describe: a check on a directory followed by a use of an
// object inside it. Plain Analyze findings are included.
func AnalyzeDirs(trace []interpose.Event) []Finding {
	out := Analyze(trace)
	type check struct {
		point string
		op    interpose.Op
		seq   int
	}
	dirChecks := make(map[string]check)
	reported := make(map[string]bool)
	for _, f := range out {
		reported[f.Object] = true
	}
	for i := range trace {
		ev := &trace[i]
		obj := ev.ResolvedPath
		if obj == "" {
			continue
		}
		if isCheck(ev.Call.Op) {
			if _, ok := dirChecks[obj]; !ok {
				dirChecks[obj] = check{point: ev.Call.PointID(), op: ev.Call.Op, seq: ev.Call.Seq}
			}
			continue
		}
		if !isUse(ev.Call.Op) {
			continue
		}
		for dir, c := range dirChecks {
			if !hasDirPrefix(obj, dir) || reported[obj] {
				continue
			}
			reported[obj] = true
			out = append(out, Finding{
				Object:     obj,
				CheckPoint: c.point,
				CheckOp:    c.op,
				UsePoint:   ev.Call.PointID(),
				UseOp:      ev.Call.Op,
				Gap:        ev.Call.Seq - c.seq,
			})
		}
	}
	return out
}

func hasDirPrefix(obj, dir string) bool {
	if len(obj) <= len(dir) || obj[:len(dir)] != dir {
		return false
	}
	return obj[len(dir)] == '/'
}
