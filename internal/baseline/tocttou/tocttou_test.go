package tocttou

import (
	"strings"
	"testing"

	"repro/internal/apps/lpr"
	"repro/internal/apps/turnin"
	"repro/internal/interpose"
)

func ev(seq int, site string, op interpose.Op, resolved string) interpose.Event {
	return interpose.Event{
		Call:         interpose.Call{Seq: seq, Site: site, Op: op, Path: resolved},
		ResolvedPath: resolved,
	}
}

func TestAnalyzeBasicPair(t *testing.T) {
	t.Parallel()
	trace := []interpose.Event{
		ev(0, "app:stat", interpose.OpStat, "/tmp/f"),
		ev(1, "app:other", interpose.OpGetenv, "PATH"),
		ev(2, "app:open", interpose.OpCreate, "/tmp/f"),
	}
	got := Analyze(trace)
	if len(got) != 1 {
		t.Fatalf("findings = %v", got)
	}
	f := got[0]
	if f.Object != "/tmp/f" || f.CheckOp != interpose.OpStat ||
		f.UseOp != interpose.OpCreate || f.Gap != 2 {
		t.Errorf("finding = %+v", f)
	}
	if !strings.Contains(f.String(), "TOCTTOU /tmp/f") {
		t.Errorf("String = %q", f.String())
	}
}

func TestAnalyzeNoCheckNoFinding(t *testing.T) {
	t.Parallel()
	// Use without a prior check — lpr's unconditional creat — produces no
	// finding: the Bishop-Dilger blind spot.
	trace := []interpose.Event{
		ev(0, "lpr:create", interpose.OpCreate, "/var/spool/lpd/cfa001"),
		ev(1, "lpr:write", interpose.OpWrite, "/var/spool/lpd/cfa001"),
	}
	if got := Analyze(trace); len(got) != 0 {
		t.Errorf("findings = %v", got)
	}
}

func TestAnalyzeDifferentObjectsNoFinding(t *testing.T) {
	t.Parallel()
	trace := []interpose.Event{
		ev(0, "app:stat", interpose.OpStat, "/a"),
		ev(1, "app:open", interpose.OpCreate, "/b"),
	}
	if got := Analyze(trace); len(got) != 0 {
		t.Errorf("findings = %v", got)
	}
}

func TestAnalyzeReportsObjectOnce(t *testing.T) {
	t.Parallel()
	trace := []interpose.Event{
		ev(0, "app:stat", interpose.OpStat, "/f"),
		ev(1, "app:w1", interpose.OpWrite, "/f"),
		ev(2, "app:w2", interpose.OpWrite, "/f"),
	}
	if got := Analyze(trace); len(got) != 1 {
		t.Errorf("findings = %v", got)
	}
}

func TestUseBeforeCheckIgnored(t *testing.T) {
	t.Parallel()
	trace := []interpose.Event{
		ev(0, "app:open", interpose.OpCreate, "/f"),
		ev(1, "app:stat", interpose.OpStat, "/f"),
	}
	if got := Analyze(trace); len(got) != 0 {
		t.Errorf("findings = %v", got)
	}
}

func TestAnalyzeDirs(t *testing.T) {
	t.Parallel()
	trace := []interpose.Event{
		ev(0, "app:statdir", interpose.OpStat, "/u/submit"),
		ev(1, "app:create", interpose.OpCreate, "/u/submit/hw1.c"),
	}
	got := AnalyzeDirs(trace)
	if len(got) != 1 {
		t.Fatalf("findings = %v", got)
	}
	if got[0].Object != "/u/submit/hw1.c" || got[0].CheckPoint != "app:statdir#0" {
		t.Errorf("finding = %+v", got[0])
	}
	// Non-descendant paths do not match.
	trace2 := []interpose.Event{
		ev(0, "app:statdir", interpose.OpStat, "/u/submit"),
		ev(1, "app:create", interpose.OpCreate, "/u/submitX"),
	}
	if got := AnalyzeDirs(trace2); len(got) != 0 {
		t.Errorf("prefix confusion: %v", got)
	}
}

// TestTurninTraceFindings: the detector flags turnin's stat-then-mkdir /
// stat-then-create window on the submit tree.
func TestTurninTraceFindings(t *testing.T) {
	t.Parallel()
	k, l := turnin.World(turnin.Vulnerable)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	if _, crash := k.Run(p, l.Prog); crash != nil {
		t.Fatal(crash)
	}
	got := AnalyzeDirs(k.Bus.Trace())
	if len(got) == 0 {
		t.Fatal("no findings on the turnin trace")
	}
	foundSubmitWindow := false
	for _, f := range got {
		if strings.HasPrefix(f.Object, turnin.SubmitDir) && f.CheckPoint == "turnin:stat-submitdir#0" {
			foundSubmitWindow = true
		}
	}
	if !foundSubmitWindow {
		t.Errorf("submit-dir race window not flagged: %v", got)
	}
}

// TestLprBlindSpot reproduces the Section 5 comparison: lpr's flaw has no
// check-use pair, so the static TOCTTOU pattern misses it while the EAI
// campaign (see the lpr package tests) detects four violations at the same
// point.
func TestLprBlindSpot(t *testing.T) {
	t.Parallel()
	k, l := lpr.World(lpr.Vulnerable)()
	p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
	if _, crash := k.Run(p, l.Prog); crash != nil {
		t.Fatal(crash)
	}
	for _, f := range AnalyzeDirs(k.Bus.Trace()) {
		if f.Object == lpr.SpoolFile {
			t.Errorf("detector flagged the spool file without any check in the code: %+v", f)
		}
	}
}
