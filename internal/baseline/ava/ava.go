// Package ava reimplements the Adaptive Vulnerability Analysis comparator
// (Ghosh et al.) the paper discusses in Section 5: instead of perturbing
// the environment, AVA perturbs the *internal state* of the executing
// application by corrupting the data assigned to its variables.
//
// In this reproduction the internal state accessible to a black-box
// harness is the value every input assigns to an internal entity, so AVA
// corrupts those values randomly (bit flips, truncations, extensions) —
// in contrast to the EAI engine's semantic Table 5 patterns and Table 6
// environment rewrites. The paper's complementarity claim falls out
// measurably: AVA cannot simulate attacks "that do not affect the
// internal states" (all of Table 6), and random corruption finds the
// crash bugs but rarely composes a semantic attack like "../" escape.
package ava

import (
	"math/rand"

	"repro/internal/core/inject"
	"repro/internal/core/policy"
	"repro/internal/interpose"
)

// Result aggregates an AVA campaign.
type Result struct {
	Name       string
	Trials     int
	Crashes    int
	Violations int
	// ViolationKinds counts oracle findings by kind across all trials.
	ViolationKinds map[policy.Kind]int
}

// Options configure the corruption engine.
type Options struct {
	// Trials is the number of perturbed runs; default 100.
	Trials int
	// Seed makes campaigns reproducible.
	Seed int64
	// CorruptProb is the per-input probability of corruption; default 0.5.
	CorruptProb float64
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 100
	}
	if o.CorruptProb == 0 {
		o.CorruptProb = 0.5
	}
	return o
}

// Run executes the AVA campaign: each trial corrupts a random subset of
// the program's internal-state assignments and consults the same security
// oracle the EAI engine uses.
func Run(name string, world inject.Factory, pol policy.Policy, opt Options) Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	res := Result{Name: name, ViolationKinds: make(map[policy.Kind]int)}
	// The snapshot seam: build the world once, fork it per trial, and use
	// the frozen image directly as the oracle's pre-run state instead of
	// deep-cloning the filesystem every trial.
	ws := inject.NewRunWorld(world)
	for i := 0; i < opt.Trials; i++ {
		res.Trials++
		k, l := ws.World()
		snap := ws.BaseFS()
		if snap == nil {
			snap = k.FS.Clone()
		}
		k.Bus.OnPost(func(c *interpose.Call, r *interpose.Result) {
			if !c.Op.HasInput() || r.Err != nil || r.Data == nil {
				return
			}
			if rng.Float64() >= opt.CorruptProb {
				return
			}
			r.Data = corrupt(rng, r.Data)
		})
		p := k.NewProc(l.Cred, l.Env.Clone(), l.Cwd, l.Args...)
		_, crash := k.Run(p, l.Prog)
		obs := policy.Observation{
			Trace:  k.Bus.Trace(),
			Stdout: p.Stdout.Bytes(),
			Snap:   snap,
		}
		if crash != nil {
			res.Crashes++
			obs.CrashMsg = crash.Msg
		}
		v := pol.Evaluate(obs)
		if len(v) > 0 {
			res.Violations++
			for _, viol := range v {
				res.ViolationKinds[viol.Kind]++
			}
		}
	}
	return res
}

// corrupt applies one of AVA's value perturbations: bit flips, random
// truncation, or random extension.
func corrupt(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	switch rng.Intn(3) {
	case 0: // bit flips
		if len(out) == 0 {
			return out
		}
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			pos := rng.Intn(len(out))
			out[pos] ^= 1 << rng.Intn(8)
		}
	case 1: // truncate
		if len(out) > 1 {
			out = out[:rng.Intn(len(out))]
		}
	case 2: // extend with random bytes
		ext := make([]byte, 1+rng.Intn(4096))
		for i := range ext {
			ext[i] = byte(rng.Intn(256))
		}
		out = append(out, ext...)
	}
	return out
}
