package ava

import (
	"testing"

	"repro/internal/apps/lpr"
	"repro/internal/apps/turnin"
	"repro/internal/core/inject"
	"repro/internal/core/policy"
)

func TestDeterministic(t *testing.T) {
	t.Parallel()
	c := turnin.Campaign(turnin.Vulnerable)
	a := Run("turnin", c.World, c.Policy, Options{Trials: 30, Seed: 5})
	b := Run("turnin", c.World, c.Policy, Options{Trials: 30, Seed: 5})
	if a.Crashes != b.Crashes || a.Violations != b.Violations {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestAVAFindsCrashes: internal-state corruption reaches the unchecked
// buffer copies.
func TestAVAFindsCrashes(t *testing.T) {
	t.Parallel()
	c := turnin.Campaign(turnin.Vulnerable)
	res := Run("turnin", c.World, c.Policy, Options{Trials: 150, Seed: 2})
	if res.Crashes == 0 {
		t.Error("AVA never crashed the vulnerable turnin")
	}
}

// TestAVAMissesDirectFaults reproduces the complementarity claim of
// Section 5: "For attacks that do not affect the internal states of an
// application, AVA appears incapable of simulating them". The lpr create
// flaw is purely environmental (a planted symlink), so AVA — which only
// corrupts input values — finds none of the four violations the EAI
// engine detects at that point.
func TestAVAMissesDirectFaults(t *testing.T) {
	t.Parallel()
	c := lpr.CreateSiteCampaign(lpr.Vulnerable)
	eaiRes, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if eaiRes.Metric().Violations() != 4 {
		t.Fatalf("EAI violations = %d, want 4", eaiRes.Metric().Violations())
	}
	avaRes := Run("lpr", c.World, c.Policy, Options{Trials: 200, Seed: 3})
	integrity := avaRes.ViolationKinds[policy.KindIntegrity]
	if integrity > 0 {
		t.Errorf("AVA found %d integrity violations in lpr; the flaw requires environment perturbation", integrity)
	}
}

// TestEAIFindsSemanticAttacksAVARarely: across the same trial budget, the
// 41-fault EAI campaign finds the semantic violations (leaks, escapes)
// that random corruption essentially never composes.
func TestEAIFindsSemanticAttacksAVARarely(t *testing.T) {
	t.Parallel()
	c := turnin.Campaign(turnin.Vulnerable)
	eaiRes, err := inject.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	eaiSemantic := 0
	for _, in := range eaiRes.Violations() {
		for _, v := range in.Violations {
			if v.Kind == policy.KindConfidentiality || v.Kind == policy.KindIntegrity {
				eaiSemantic++
			}
		}
	}
	if eaiSemantic < 6 {
		t.Fatalf("EAI semantic violations = %d, want >= 6", eaiSemantic)
	}
	avaRes := Run("turnin", c.World, c.Policy, Options{Trials: 41, Seed: 4})
	avaSemantic := avaRes.ViolationKinds[policy.KindConfidentiality] +
		avaRes.ViolationKinds[policy.KindIntegrity]
	if avaSemantic >= eaiSemantic {
		t.Errorf("AVA semantic violations (%d) should fall well below EAI's (%d) at equal budget",
			avaSemantic, eaiSemantic)
	}
}

func TestOptionsDefaults(t *testing.T) {
	t.Parallel()
	o := Options{}.withDefaults()
	if o.Trials != 100 || o.CorruptProb != 0.5 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestCorruptShapes(t *testing.T) {
	t.Parallel()
	// corrupt never panics on empty input and never aliases its input.
	c := turnin.Campaign(turnin.Vulnerable)
	res := Run("turnin-high-corrupt", c.World, c.Policy,
		Options{Trials: 30, Seed: 9, CorruptProb: 1.0})
	if res.Trials != 30 {
		t.Errorf("trials = %d", res.Trials)
	}
}
