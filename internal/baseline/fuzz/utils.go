package fuzz

import (
	"strings"

	"repro/internal/core/inject"
	"repro/internal/sim/kernel"
	"repro/internal/sim/proc"
)

// The utility suite mirrors the Fuzz study's target population: small
// text-processing programs of which a fraction carry the era's unchecked
// fixed-size buffers. Three of the nine crash under random input — the
// "over 25%" failure rate Miller reported for basic utilities.

func utilWorld(prog kernel.Program, args ...string) inject.Factory {
	return func() (*kernel.Kernel, inject.Launch) {
		k := kernel.New()
		k.Users.Add(proc.User{Name: "alice", UID: 100, GID: 100})
		if err := k.FS.MkdirAll("/", "/home/alice", 0o755, 100, 100); err != nil {
			panic(err)
		}
		if err := k.FS.WriteFile("/home/alice/input.txt",
			[]byte("line one\nline two\nline three\n"), 0o644, 100, 100); err != nil {
			panic(err)
		}
		return k, inject.Launch{
			Cred: proc.NewCred(100, 100),
			Env:  proc.NewEnv("PATH", "/usr/bin"),
			Cwd:  "/home/alice",
			Args: append([]string{"util"}, args...),
			Prog: prog,
		}
	}
}

// echoUtil is robust: it prints whatever it gets.
func echoUtil(p *kernel.Proc) int {
	p.Printf("%s\n", p.Arg("echo:arg", 1))
	return 0
}

// catUtil is robust: bounded reads, errors reported.
func catUtil(p *kernel.Proc) int {
	name := p.Arg("cat:arg", 1)
	if name == "" {
		name = "input.txt"
	}
	if len(name) > 255 || strings.ContainsRune(name, 0) {
		p.Eprintf("cat: bad file name\n")
		return 1
	}
	data, err := p.ReadFile("cat:file", name)
	if err != nil {
		p.Eprintf("cat: %v\n", err)
		return 1
	}
	p.Printf("%s", data)
	return 0
}

// wcUtil is robust: it counts without copying.
func wcUtil(p *kernel.Proc) int {
	s := p.Arg("wc:arg", 1)
	words := len(strings.Fields(s))
	p.Printf("%d %d\n", words, len(s))
	return 0
}

// headUtil is robust: bounded numeric parse.
func headUtil(p *kernel.Proc) int {
	n := 0
	for _, ch := range p.Arg("head:arg", 1) {
		if ch < '0' || ch > '9' {
			p.Eprintf("head: bad count\n")
			return 1
		}
		n = n*10 + int(ch-'0')
		if n > 1<<20 {
			p.Eprintf("head: count too large\n")
			return 1
		}
	}
	p.Printf("%d lines\n", n)
	return 0
}

// grepUtil carries the classic flaw: the pattern is strcpy'd into a
// 64-byte buffer.
func grepUtil(p *kernel.Proc) int {
	pattern := p.Arg("grep:arg", 1)
	var buf [64]byte
	n := p.CopyBounded(buf[:], []byte(pattern))
	data, err := p.ReadFile("grep:file", "input.txt")
	if err != nil {
		return 1
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, string(buf[:n])) {
			p.Printf("%s\n", line)
		}
	}
	return 0
}

// bannerUtil carries the classic flaw: the message is copied into a
// 32-byte line buffer.
func bannerUtil(p *kernel.Proc) int {
	msg := p.Arg("banner:arg", 1)
	var line [32]byte
	n := p.CopyBounded(line[:], []byte(msg))
	p.Printf("*** %s ***\n", string(line[:n]))
	return 0
}

// calUtil carries the classic flaw: the month name is copied into a
// 16-byte buffer before validation.
func calUtil(p *kernel.Proc) int {
	month := p.Arg("cal:arg", 1)
	var buf [16]byte
	n := p.CopyBounded(buf[:], []byte(month))
	switch string(buf[:n]) {
	case "jan", "feb", "mar", "apr", "may", "jun",
		"jul", "aug", "sep", "oct", "nov", "dec":
		p.Printf("calendar for %s\n", string(buf[:n]))
		return 0
	default:
		p.Eprintf("cal: unknown month\n")
		return 1
	}
}

// sortUtil is robust.
func sortUtil(p *kernel.Proc) int {
	fields := strings.Fields(p.Arg("sort:arg", 1))
	for i := 0; i < len(fields); i++ {
		for j := i + 1; j < len(fields); j++ {
			if fields[j] < fields[i] {
				fields[i], fields[j] = fields[j], fields[i]
			}
		}
	}
	p.Printf("%s\n", strings.Join(fields, " "))
	return 0
}

// dateUtil is robust: it ignores its input entirely.
func dateUtil(p *kernel.Proc) int {
	_ = p.Arg("date:arg", 1)
	p.Printf("Thu Jun  8 12:00:00 2000\n")
	return 0
}

// UtilitySuite returns the nine-program population.
func UtilitySuite() []Target {
	return []Target{
		{Name: "echo", World: utilWorld(echoUtil, "hello")},
		{Name: "cat", World: utilWorld(catUtil, "input.txt")},
		{Name: "wc", World: utilWorld(wcUtil, "some words")},
		{Name: "head", World: utilWorld(headUtil, "10")},
		{Name: "grep", World: utilWorld(grepUtil, "line")},
		{Name: "banner", World: utilWorld(bannerUtil, "hi")},
		{Name: "cal", World: utilWorld(calUtil, "jan")},
		{Name: "sort", World: utilWorld(sortUtil, "b a c")},
		{Name: "date", World: utilWorld(dateUtil)},
	}
}

// VulnerableUtilities names the suite members with unchecked buffers.
func VulnerableUtilities() []string { return []string{"grep", "banner", "cal"} }
