// Package fuzz reimplements the Miller et al. black-box random-input
// comparator the paper discusses in Section 5: feed programs random input
// streams and count crashes. The paper contrasts it with EAI injection —
// "rather than rely on random inputs, our approach exploits those input
// patterns that could possibly cause security violations" — and cites
// Fuzz's result that 25-33% of basic utilities crash.
package fuzz

import (
	"math/rand"

	"repro/internal/core/inject"
	"repro/internal/interpose"
)

// Target is one program under random testing.
type Target struct {
	Name  string
	World inject.Factory
}

// Result aggregates one target's trials.
type Result struct {
	Name    string
	Trials  int
	Crashes int
	// Errors counts runs that exited non-zero without crashing (rejected
	// input — the desirable outcome).
	Errors int
}

// CrashRate returns the fraction of trials that crashed.
func (r Result) CrashRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Crashes) / float64(r.Trials)
}

// Options configure the random stream.
type Options struct {
	// Trials per target; default 50.
	Trials int
	// MaxLen bounds each random payload; default 8192.
	MaxLen int
	// Seed makes campaigns reproducible.
	Seed int64
	// Printable restricts payloads to printable bytes, mirroring Fuzz's
	// printable-stream mode.
	Printable bool
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 50
	}
	if o.MaxLen == 0 {
		o.MaxLen = 8192
	}
	return o
}

// Run fuzzes one target: every environment input the program consumes is
// replaced by a random byte stream, the black-box analogue of piping
// /dev/urandom at a utility.
func Run(t Target, opt Options) Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	res := Result{Name: t.Name}
	// The snapshot seam: one world build, one copy-on-write fork per trial.
	ws := inject.NewRunWorld(t.World)
	for i := 0; i < opt.Trials; i++ {
		res.Trials++
		k, l := ws.World()
		k.Bus.OnPost(func(c *interpose.Call, r *interpose.Result) {
			if !c.Op.HasInput() || r.Err != nil {
				return
			}
			r.Data = payload(rng, opt)
		})
		p := k.NewProc(l.Cred, l.Env.Clone(), l.Cwd, l.Args...)
		exit, crash := k.Run(p, l.Prog)
		switch {
		case crash != nil:
			res.Crashes++
		case exit != 0:
			res.Errors++
		}
	}
	return res
}

func payload(rng *rand.Rand, opt Options) []byte {
	n := 1 + rng.Intn(opt.MaxLen)
	b := make([]byte, n)
	for i := range b {
		if opt.Printable {
			b[i] = byte(0x20 + rng.Intn(0x5f))
		} else {
			b[i] = byte(rng.Intn(256))
		}
	}
	return b
}

// RunSuite fuzzes every target and reports the suite-level crash
// statistics the Fuzz papers quote.
func RunSuite(targets []Target, opt Options) (results []Result, crashed int) {
	for i, t := range targets {
		o := opt
		o.Seed = opt.Seed + int64(i)
		r := Run(t, o)
		results = append(results, r)
		if r.Crashes > 0 {
			crashed++
		}
	}
	return results, crashed
}
