package fuzz

import (
	"testing"
)

func TestSuiteCleanRuns(t *testing.T) {
	t.Parallel()
	// Every utility survives its intended input.
	for _, target := range UtilitySuite() {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			t.Parallel()
			k, l := target.World()
			p := k.NewProc(l.Cred, l.Env, l.Cwd, l.Args...)
			exit, crash := k.Run(p, l.Prog)
			if crash != nil {
				t.Fatalf("clean run crashed: %v", crash)
			}
			if exit != 0 {
				t.Fatalf("clean exit = %d, stderr = %s", exit, p.Stderr.String())
			}
		})
	}
}

// TestFuzzCrashRate reproduces the Section 5 comparison point: random
// input crashes a substantial fraction (Miller: 25-33%) of the utility
// population — exactly the members with unchecked buffers.
func TestFuzzCrashRate(t *testing.T) {
	t.Parallel()
	results, crashed := RunSuite(UtilitySuite(), Options{Trials: 40, Seed: 1})
	if len(results) != 9 {
		t.Fatalf("results = %d", len(results))
	}
	rate := float64(crashed) / float64(len(results))
	if rate < 0.25 || rate > 0.40 {
		t.Errorf("suite crash rate = %.2f, want within Miller's 25-40%% band", rate)
	}
	vulnerable := map[string]bool{}
	for _, name := range VulnerableUtilities() {
		vulnerable[name] = true
	}
	for _, r := range results {
		if vulnerable[r.Name] && r.Crashes == 0 {
			t.Errorf("%s never crashed in %d trials", r.Name, r.Trials)
		}
		if !vulnerable[r.Name] && r.Crashes > 0 {
			t.Errorf("%s crashed %d times; it has no unchecked buffer", r.Name, r.Crashes)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	t.Parallel()
	a := Run(UtilitySuite()[4], Options{Trials: 20, Seed: 7}) // grep
	b := Run(UtilitySuite()[4], Options{Trials: 20, Seed: 7})
	if a != b {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
	c := Run(UtilitySuite()[4], Options{Trials: 20, Seed: 8})
	if a == c && a.Crashes == 0 {
		t.Log("different seeds coincided (allowed, but suspicious)")
	}
}

func TestCrashRateHelper(t *testing.T) {
	t.Parallel()
	r := Result{Trials: 40, Crashes: 10}
	if r.CrashRate() != 0.25 {
		t.Errorf("CrashRate = %v", r.CrashRate())
	}
	if (Result{}).CrashRate() != 0 {
		t.Error("empty CrashRate != 0")
	}
}

func TestPrintableMode(t *testing.T) {
	t.Parallel()
	// Printable payloads still crash the overflow bugs (length, not
	// content, is the trigger).
	r := Run(UtilitySuite()[5], Options{Trials: 20, Seed: 3, Printable: true}) // banner
	if r.Crashes == 0 {
		t.Error("printable fuzzing never crashed banner")
	}
}

func TestRobustUtilitiesRejectGracefully(t *testing.T) {
	t.Parallel()
	// cat under fuzz errors out (bad file names) rather than crashing.
	r := Run(UtilitySuite()[1], Options{Trials: 30, Seed: 11})
	if r.Crashes != 0 {
		t.Errorf("cat crashed %d times", r.Crashes)
	}
	if r.Errors == 0 {
		t.Error("cat never rejected random input")
	}
}
