// Taxonomy rendering and the measured-finding bridge: the same Category
// vocabulary the Section 2.4 classifier assigns database entries,
// reused to label violations the injection engine actually observed, so
// historical records and fresh findings share one taxonomy.

package vulndb

import (
	"repro/internal/core/eai"
	"repro/internal/interpose"
)

// Verdict renders the classification the way `vulnclass -entries`
// prints it: "excluded: <why>", "others (environment-independent)",
// "indirect via <origin>", or "direct on <entity>/<attr>".
func (c Category) Verdict() string {
	switch {
	case c.Excluded != 0:
		return "excluded: " + c.Excluded.String()
	case c.Others():
		return "others (environment-independent)"
	case c.Origin != 0:
		return "indirect via " + c.Origin.String()
	default:
		return "direct on " + c.Entity.String() + "/" + c.Attr.String()
	}
}

// Slug renders the category as a compact slash-joined token
// ("indirect/user-input", "direct/file-system/symbolic-link") for
// metric labels and machine-readable finding records. Excluded and
// "others" entries — which never arise from measured findings — render
// as "excluded" and "others".
func (c Category) Slug() string {
	switch {
	case c.Excluded != 0:
		return "excluded"
	case c.Others():
		return "others"
	case c.Origin != 0:
		return "indirect/" + c.Origin.String()
	case c.Attr != 0:
		return "direct/" + c.Entity.String() + "/" + c.Attr.String()
	default:
		return "direct/" + c.Entity.String()
	}
}

// CategoryOfFinding maps a measured violation's EAI facts — the fault
// class, the interposed object kind it perturbed, and (for direct
// faults) the attribute — onto the database taxonomy. Indirect faults
// classify by the Table 2 origin of the input channel the object kind
// feeds; direct faults by the Table 3 entity and Table 4/6 attribute.
func CategoryOfFinding(class eai.Class, kind interpose.ObjectKind, attr eai.Attr) Category {
	if class == eai.ClassIndirect {
		return Category{Class: eai.ClassIndirect, Origin: originForKind(kind)}
	}
	return Category{Class: eai.ClassDirect, Entity: eai.EntityForKind(kind), Attr: attr}
}

// originForKind is the object-kind analogue of eai.OriginForOp: which
// Table 2 input channel a perturbed value of this kind arrives on.
func originForKind(k interpose.ObjectKind) eai.Origin {
	switch k {
	case interpose.KindArg:
		return eai.OriginUserInput
	case interpose.KindEnvVar:
		return eai.OriginEnvVar
	case interpose.KindFile, interpose.KindDir:
		return eai.OriginFileInput
	case interpose.KindNetwork:
		return eai.OriginNetworkInput
	case interpose.KindProcess:
		return eai.OriginProcessInput
	case interpose.KindRegistry:
		// Registry values are configuration input; the closest Table 2
		// channel is the file system, matching eai.OriginForOp.
		return eai.OriginFileInput
	default:
		return 0
	}
}
