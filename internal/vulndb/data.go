package vulndb

import "repro/internal/core/eai"

// seed compactly describes one database entry before expansion.
type seed struct {
	program string
	title   string
	os      string
	year    int
	disp    Disposition
	exp     Exploit
}

func expand(prefix string, start int, seeds []seed) []Entry {
	out := make([]Entry, 0, len(seeds))
	for i, s := range seeds {
		out = append(out, Entry{
			ID:          prefixID(prefix, start+i),
			Title:       s.title,
			Program:     s.program,
			OS:          s.os,
			Year:        s.year,
			Disposition: s.disp,
			Exploit:     s.exp,
		})
	}
	return out
}

// Indirect faults via user input (Table 2: 51 entries).
var seedsUserInput = []seed{
	{program: "lpr", title: "overlong -C class argument overruns copy buffer", os: "BSD", year: 1991, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "lpd", title: "control-file name with embedded shell metacharacters reaches popen", os: "BSD", year: 1992, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "login", title: "overlong LOGIN name overflows utmp record buffer", os: "SunOS", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "passwd", title: "gecos field with colon injects extra passwd fields", os: "Linux", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "chfn", title: "overlong full-name entry overruns fixed gecos buffer", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "chsh", title: "shell path argument with newline splits passwd record", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "at", title: "job time argument overflow in date parser", os: "Solaris", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "crontab", title: "crontab entry with overlong command overruns line buffer", os: "HP-UX", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "mount", title: "overlong device path argument overruns mtab buffer", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "umount", title: "relative mount point argument resolves outside fstab entry", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "eject", title: "overlong device name argument overflows parser", os: "Solaris", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "fdformat", title: "device argument overflow in volume manager path", os: "Solaris", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "ps", title: "overlong -U user list overruns selection buffer", os: "Digital UNIX", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "ordist", title: "overlong hostname argument overflows distribution buffer", os: "SunOS", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "rdist", title: "overlong target path argument smashes stack frame", os: "BSD", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "talkd", title: "crafted invitee name misparsed into response address", os: "BSD", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "uux", title: "command string with backquotes evaluated on remote side", os: "SVR4", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "sendmail", title: "-d debug level argument indexes outside trace vector", os: "SunOS", year: 1993, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "sendmail", title: "overlong sender address in SMTP MAIL FROM smashes buffer", os: "SunOS", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "mailx", title: "tilde escape in message body reaches shell while set-gid", os: "SVR4", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "elm", title: "overlong TO header element overruns alias buffer", os: "SunOS", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "pine", title: "crafted From header overflows index display line", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "xterm", title: "overlong -fn font argument overflows resource buffer", os: "X11", year: 1993, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "xlock", title: "overlong -mode argument overruns option table copy", os: "X11", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "screen", title: "overlong terminal title sequence overflows status buffer", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "write", title: "recipient name with control characters reaches tty unfiltered", os: "BSD", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "wall", title: "message body with terminal escapes replayed to all ttys", os: "BSD", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "su", title: "overlong username argument overflows pam conversation buffer", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "ping", title: "oversized -s packet size argument wraps length computation", os: "SunOS", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "traceroute", title: "overlong hostname argument overflows resolver buffer", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "rcp", title: "remote file name with leading dash parsed as option", os: "BSD", year: 1993, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "rsh", title: "overlong remote command line overruns request buffer", os: "SunOS", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "ftp", title: "crafted macro definition in .netrc replayed into command stream", os: "BSD", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "restore", title: "overlong tape label argument overflows media buffer", os: "SunOS", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "ufsrestore", title: "interactive mode path argument overflows extraction buffer", os: "Solaris", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "expreserve", title: "overlong file name argument overruns recovery path buffer", os: "SunOS", year: 1993, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "ex", title: "preserve-file name argument overflows notification buffer", os: "SVR4", year: 1993, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "vi", title: "overlong tag argument overruns tag-search buffer", os: "SVR4", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "more", title: "overlong file name argument overflows prompt line", os: "HP-UX", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "man", title: "section argument with ../ escapes formatted-page cache", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "lprm", title: "job id list argument overflows queue-scan buffer", os: "BSD", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "dtappgather", title: "DISPLAY-derived argument with ../ relocates staging files", os: "CDE", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "admintool", title: "overlong package name argument overruns catalog buffer", os: "Solaris", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "sdtcm_convert", title: "calendar name argument overflow during conversion", os: "Solaris", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "newgrp", title: "overlong group name argument overflows group lookup buffer", os: "AIX", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "passwd -f", title: "finger-information argument embeds newline into passwd", os: "AIX", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "host", title: "overlong query name argument overflows answer buffer", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "cu", title: "overlong telephone-number argument overruns dial buffer", os: "SVR4", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "uustat", title: "overlong job id argument overflows status buffer", os: "SVR4", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "arp", title: "overlong hostname argument overflows table-entry buffer", os: "SunOS", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
	{program: "quota", title: "overlong filesystem argument overruns report buffer", os: "HP-UX", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanArgv, CodeDefect: "missing input validation"}},
}

// Indirect faults via environment variables (Table 2: 17 entries).
var seedsEnvVar = []seed{
	{program: "sh", title: "IFS set to slash splits privileged command paths into attacker words", os: "SVR4", year: 1991, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "loadmodule", title: "IFS inherited by system() resolves /bin/ld as attacker program", os: "SunOS", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "rdist", title: "PATH searched for sendmail picks attacker binary first", os: "BSD", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "mail.local", title: "PATH without absolute delivery agent resolves attacker mailer", os: "SunOS", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "xterm", title: "overlong TERMCAP entry overflows capability buffer", os: "X11", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "telnetd", title: "LD_LIBRARY_PATH passed through to login links attacker library", os: "SunOS", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "rlogin", title: "TERM environment value overflows terminal-type buffer", os: "AIX", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "libc", title: "overlong TZ value overflows timezone parsing buffer", os: "Solaris", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "login", title: "overlong LANG value overflows locale buffer", os: "Digital UNIX", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "sendmail", title: "HOME used to locate .forward follows attacker redefinition", os: "BSD", year: 1993, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "vi", title: "EXINIT commands executed on startup while set-uid", os: "SVR4", year: 1992, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "ksh", title: "ENV script evaluated before privilege drop", os: "SVR4", year: 1993, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "elm", title: "overlong MAIL value overflows mailbox path buffer", os: "SunOS", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "cron", title: "CRONPATH-style PATH inherited into jobs resolves attacker binaries", os: "HP-UX", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "lp", title: "SPOOLDIR environment value relocates privileged spool writes", os: "SVR4", year: 1994, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "perl suidperl", title: "PERLLIB searched for modules under set-uid execution", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
	{program: "dtterm", title: "overlong XUSERFILESEARCHPATH overflows resource lookup buffer", os: "CDE", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanEnvVar, CodeDefect: "trusts inherited environment"}},
}

// Indirect faults via file system input (Table 2: 5 entries).
var seedsFileInput = []seed{
	{program: "ftpd", title: "crafted .netrc-style config line overflows macro buffer on parse", os: "BSD", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanFileContent, CodeDefect: "trusts file content"}},
	{program: "inn", title: "overlong line in control message file overruns header buffer", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanFileContent, CodeDefect: "trusts file content"}},
	{program: "syslogd", title: "crafted line in configuration file overflows action table", os: "SunOS", year: 1995, disp: Classifiable, exp: Exploit{Input: ChanFileContent, CodeDefect: "trusts file content"}},
	{program: "automountd", title: "map file entry with metacharacters reaches mount shell", os: "Solaris", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanFileContent, CodeDefect: "trusts file content"}},
	{program: "magic", title: "crafted magic database entry overflows file(1) result buffer", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanFileContent, CodeDefect: "trusts file content"}},
}

// Indirect faults via network input (Table 2: 8 entries).
var seedsNetInput = []seed{
	{program: "fingerd", title: "overlong network query gets(3) past request buffer", os: "BSD", year: 1988, disp: Classifiable, exp: Exploit{Input: ChanNetworkPacket, CodeDefect: "missing length validation"}},
	{program: "named", title: "inverse-query response with oversized record smashes cache buffer", os: "BIND", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanNetworkPacket, CodeDefect: "missing length validation"}},
	{program: "statd", title: "unbounded RPC string argument overruns notify list buffer", os: "SunOS", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanNetworkPacket, CodeDefect: "missing length validation"}},
	{program: "imapd", title: "overlong LOGIN literal overflows command buffer pre-auth", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanNetworkPacket, CodeDefect: "missing length validation"}},
	{program: "popd", title: "overlong PASS argument overflows authentication buffer", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanNetworkPacket, CodeDefect: "missing length validation"}},
	{program: "talkd", title: "crafted announcement packet hostname overflows reply buffer", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanNetworkPacket, CodeDefect: "missing length validation"}},
	{program: "nntpd", title: "overlong GROUP argument overruns active-file scan buffer", os: "BSD", year: 1996, disp: Classifiable, exp: Exploit{Input: ChanNetworkPacket, CodeDefect: "missing length validation"}},
	{program: "bootpd", title: "oversized boot file field in request overflows reply assembly", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Input: ChanNetworkPacket, CodeDefect: "missing length validation"}},
}

// Direct file-system faults: existence (Table 4: 20 entries).
var seedsFSExistence = []seed{
	{program: "lpr", title: "spool control file pre-created by attacker is truncated and reused", os: "BSD", year: 1991, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "tmpfile libc", title: "predictable /tmp name pre-created before privileged open", os: "SVR4", year: 1993, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "vi", title: "recovery file in /tmp pre-created by attacker captures edits", os: "SunOS", year: 1993, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "sendmail", title: "dead.letter pre-created in /var/tmp receives privileged append", os: "BSD", year: 1994, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "at", title: "job file pre-created in spool adopted as attacker job", os: "Solaris", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "sort", title: "temporary merge file pre-created in /tmp is overwritten privileged", os: "SVR4", year: 1994, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "mktemp-users", title: "race between existence check and create in shared tmp", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "rdist", title: "pre-created target temp file keeps attacker hard link", os: "BSD", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "gcc", title: "predictable .i temp file pre-created to capture source", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "x11 startup", title: "pre-created .X11-unix socket directory adopted with attacker modes", os: "X11", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "uucico", title: "pre-created lock file accepted, spool entry clobbered", os: "SVR4", year: 1993, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "sccs", title: "pre-created p-file accepted as valid edit lock", os: "SVR4", year: 1992, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "emacs", title: "pre-created lock symlink target overwritten on save", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "ftpd", title: "upload temp name predictable and pre-creatable", os: "SunOS", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "netscape", title: "predictable download temp file pre-created in /tmp", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "patch", title: "backup temp file pre-created to redirect original contents", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "dbx", title: "core-file scratch name pre-created in working directory", os: "SunOS", year: 1994, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "cron", title: "pre-created output spool file receives privileged job output", os: "HP-UX", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "ps_data cache", title: "pre-created /tmp/ps_data adopted with attacker contents", os: "SunOS", year: 1994, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
	{program: "pt_chmod", title: "pre-created pty node accepted during grantpt window", os: "SVR4", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrExistence, CodeDefect: "assumes object absent"}},
}

// Direct file-system faults: symbolic link (Table 4: 6 entries).
var seedsFSSymlink = []seed{
	{program: "lpd", title: "spool file symlinked to /etc/passwd before privileged write", os: "BSD", year: 1992, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrSymlink, CodeDefect: "follows planted link"}},
	{program: "rdist", title: "temp file symlink redirects privileged write to any file", os: "BSD", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrSymlink, CodeDefect: "follows planted link"}},
	{program: "sendmail", title: "symlinked dead.letter appends message to protected file", os: "BSD", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrSymlink, CodeDefect: "follows planted link"}},
	{program: "xfree86 startup", title: "symlinked server log redirects privileged append", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrSymlink, CodeDefect: "follows planted link"}},
	{program: "tin", title: "symlinked lock file in /tmp truncates arbitrary file", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrSymlink, CodeDefect: "follows planted link"}},
	{program: "sdtcm_convert", title: "symlinked calendar backup follows to system file", os: "Solaris", year: 1997, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrSymlink, CodeDefect: "follows planted link"}},
}

// Direct file-system faults: permission (Table 4: 6 entries).
var seedsFSPermission = []seed{
	{program: "mkdir race", title: "directory created then chmod leaves open window at mode 777", os: "SVR4", year: 1992, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrPermission, CodeDefect: "assumes permissions stable"}},
	{program: "admintool", title: "lock file created world-writable allows catalog rewrite", os: "Solaris", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrPermission, CodeDefect: "assumes permissions stable"}},
	{program: "crontab", title: "spool entry briefly world-readable exposes commands", os: "HP-UX", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrPermission, CodeDefect: "assumes permissions stable"}},
	{program: "xdm", title: "authority file created group-readable leaks magic cookie", os: "X11", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrPermission, CodeDefect: "assumes permissions stable"}},
	{program: "smtpd", title: "queue file mode follows inherited permissive umask", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrPermission, CodeDefect: "assumes permissions stable"}},
	{program: "uucp", title: "spool directory permission change accepted mid-transfer", os: "SVR4", year: 1993, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrPermission, CodeDefect: "assumes permissions stable"}},
}

// Direct file-system faults: ownership (Table 4: 3 entries).
var seedsFSOwnership = []seed{
	{program: "rcp server", title: "received file ownership trusted from peer metadata", os: "BSD", year: 1994, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrOwnership, CodeDefect: "assumes ownership stable"}},
	{program: "restore", title: "restored tree ownership applied before path validation", os: "SunOS", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrOwnership, CodeDefect: "assumes ownership stable"}},
	{program: "ftpd chown window", title: "upload chown applied after attacker re-link", os: "SunOS", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrOwnership, CodeDefect: "assumes ownership stable"}},
}

// Direct file-system faults: file invariance (Table 4: 6 entries).
var seedsFSInvariance = []seed{
	{program: "passwd -F", title: "password file swapped between consistency check and rewrite", os: "SunOS", year: 1994, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrContentInvariance, CodeDefect: "TOCTTOU window"}},
	{program: "xterm logging", title: "log target file replaced between access check and open", os: "X11", year: 1993, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrContentInvariance, CodeDefect: "TOCTTOU window"}},
	{program: "binmail", title: "mailbox file replaced between stat and delivery append", os: "BSD", year: 1994, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrContentInvariance, CodeDefect: "TOCTTOU window"}},
	{program: "suidscript", title: "interpreter script rewritten between exec check and read", os: "SVR4", year: 1991, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrContentInvariance, CodeDefect: "TOCTTOU window"}},
	{program: "rdist -b", title: "compared file substituted between verify and install", os: "BSD", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrContentInvariance, CodeDefect: "TOCTTOU window"}},
	{program: "at -r", title: "queued job file swapped between validation and removal", os: "Solaris", year: 1996, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrContentInvariance, CodeDefect: "TOCTTOU window"}},
}

// Direct file-system faults: working directory (Table 4: 1 entry).
var seedsFSWorkdir = []seed{
	{program: "uucp daemons", title: "privileged unpack runs in attacker-controlled working directory", os: "SVR4", year: 1993, disp: Classifiable, exp: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrWorkingDirectory, CodeDefect: "assumes launch directory"}},
}

// Direct network faults (Table 3: 5 entries).
var seedsNetDirect = []seed{
	{program: "rshd", title: "address-based trust accepts forged source as authentic peer", os: "BSD", year: 1994, disp: Classifiable, exp: Exploit{Entity: eai.EntityNetwork, Attr: eai.AttrMsgAuthenticity, CodeDefect: "trusts network entity"}},
	{program: "nfsd", title: "file handles honoured from unauthenticated forged packets", os: "SunOS", year: 1994, disp: Classifiable, exp: Exploit{Entity: eai.EntityNetwork, Attr: eai.AttrMsgAuthenticity, CodeDefect: "trusts network entity"}},
	{program: "X server", title: "open display socket shared with untrusted local peer", os: "X11", year: 1994, disp: Classifiable, exp: Exploit{Entity: eai.EntityNetwork, Attr: eai.AttrSocketShare, CodeDefect: "trusts network entity"}},
	{program: "ypserv", title: "map transfer accepted from untrusted replacement server", os: "SunOS", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityNetwork, Attr: eai.AttrTrustability, CodeDefect: "trusts network entity"}},
	{program: "syslogd", title: "service flooded unavailable so security events are dropped", os: "BSD", year: 1995, disp: Classifiable, exp: Exploit{Entity: eai.EntityNetwork, Attr: eai.AttrServiceAvail, CodeDefect: "trusts network entity"}},
}

// Direct process faults (Table 3: 1 entry).
var seedsProcDirect = []seed{
	{program: "dtspcd", title: "spawn request accepted from untrusted local process", os: "CDE", year: 1997, disp: Classifiable, exp: Exploit{Entity: eai.EntityProcess, Attr: eai.AttrTrustability, CodeDefect: "trusts peer process"}},
}

// Environment-independent software faults (Table 1 others: 13 entries).
var seedsOthers = []seed{
	{program: "fsck", title: "wrong sense in superblock sanity comparison skips repair path", os: "SVR4", year: 1992, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "login", title: "uninitialised failure counter grants retry after lockout", os: "AIX", year: 1994, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "rlogind", title: "missing argument validation order check in option loop", os: "BSD", year: 1994, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "kernel setuid", title: "signed comparison typo in uid range check", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "libcrypt", title: "transposed rounds constant weakens hash iterations", os: "SVR4", year: 1993, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "telnetd", title: "flag variable reused before reset between sessions", os: "SunOS", year: 1995, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "accton", title: "return value of setuid call not checked before exec", os: "BSD", year: 1995, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "inetd", title: "descriptor leak across service spawn exposes control socket", os: "BSD", year: 1996, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "cron", title: "day-of-week table off-by-one runs jobs with stale privilege", os: "HP-UX", year: 1995, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "mount kernel", title: "missing error path unwind leaves superblock half-registered", os: "Linux", year: 1996, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "ld.so", title: "cache index typo loads wrong library slot", os: "Linux", year: 1997, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "getty", title: "speed table overrun from miscounted entries", os: "SVR4", year: 1992, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
	{program: "swapper", title: "missing bounds reset on retry loop corrupts accounting", os: "Digital UNIX", year: 1996, disp: Classifiable, exp: Exploit{CodeDefect: "coding error"}},
}

// Entries lacking information for classification (26).
var seedsInsufficient = []seed{
	{program: "unknown-01", title: "report lacks reproduction detail for classification", os: "misc", year: 1993, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-02", title: "report lacks reproduction detail for classification", os: "misc", year: 1994, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-03", title: "report lacks reproduction detail for classification", os: "misc", year: 1995, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-04", title: "report lacks reproduction detail for classification", os: "misc", year: 1996, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-05", title: "report lacks reproduction detail for classification", os: "misc", year: 1997, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-06", title: "report lacks reproduction detail for classification", os: "misc", year: 1992, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-07", title: "report lacks reproduction detail for classification", os: "misc", year: 1993, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-08", title: "report lacks reproduction detail for classification", os: "misc", year: 1994, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-09", title: "report lacks reproduction detail for classification", os: "misc", year: 1995, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-10", title: "report lacks reproduction detail for classification", os: "misc", year: 1996, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-11", title: "report lacks reproduction detail for classification", os: "misc", year: 1997, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-12", title: "report lacks reproduction detail for classification", os: "misc", year: 1992, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-13", title: "report lacks reproduction detail for classification", os: "misc", year: 1993, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-14", title: "report lacks reproduction detail for classification", os: "misc", year: 1994, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-15", title: "report lacks reproduction detail for classification", os: "misc", year: 1995, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-16", title: "report lacks reproduction detail for classification", os: "misc", year: 1996, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-17", title: "report lacks reproduction detail for classification", os: "misc", year: 1997, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-18", title: "report lacks reproduction detail for classification", os: "misc", year: 1992, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-19", title: "report lacks reproduction detail for classification", os: "misc", year: 1993, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-20", title: "report lacks reproduction detail for classification", os: "misc", year: 1994, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-21", title: "report lacks reproduction detail for classification", os: "misc", year: 1995, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-22", title: "report lacks reproduction detail for classification", os: "misc", year: 1996, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-23", title: "report lacks reproduction detail for classification", os: "misc", year: 1997, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-24", title: "report lacks reproduction detail for classification", os: "misc", year: 1992, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-25", title: "report lacks reproduction detail for classification", os: "misc", year: 1993, disp: InsufficientInfo, exp: Exploit{}},
	{program: "unknown-26", title: "report lacks reproduction detail for classification", os: "misc", year: 1994, disp: InsufficientInfo, exp: Exploit{}},
}

// Design errors, excluded from classification (22).
var seedsDesign = []seed{
	{program: "TCP", title: "initial sequence numbers predictable enabling connection spoofing", os: "protocol", year: 1995, disp: DesignError, exp: Exploit{}},
	{program: "rlogin protocol", title: "trust model delegates authentication to client host", os: "protocol", year: 1994, disp: DesignError, exp: Exploit{}},
	{program: "NIS", title: "map access unauthenticated by design", os: "SunOS", year: 1994, disp: DesignError, exp: Exploit{}},
	{program: "NFS v2", title: "stateless handles outlive permission revocation", os: "protocol", year: 1994, disp: DesignError, exp: Exploit{}},
	{program: "X11 auth", title: "host-based access control grants whole display", os: "X11", year: 1993, disp: DesignError, exp: Exploit{}},
	{program: "SMTP", title: "sender identity unauthenticated by design", os: "protocol", year: 1993, disp: DesignError, exp: Exploit{}},
	{program: "DNS", title: "responses unauthenticated permitting cache poisoning", os: "protocol", year: 1996, disp: DesignError, exp: Exploit{}},
	{program: "ICMP", title: "redirect messages honoured without authentication", os: "protocol", year: 1995, disp: DesignError, exp: Exploit{}},
	{program: "ARP", title: "replies unauthenticated allowing address takeover", os: "protocol", year: 1995, disp: DesignError, exp: Exploit{}},
	{program: "UUCP", title: "command whitelist policy delegated to remote site", os: "SVR4", year: 1992, disp: DesignError, exp: Exploit{}},
	{program: "finger", title: "information disclosure inherent to service design", os: "BSD", year: 1990, disp: DesignError, exp: Exploit{}},
	{program: "rexd", title: "remote execution service trusts client-supplied uid", os: "SunOS", year: 1992, disp: DesignError, exp: Exploit{}},
	{program: "tftp", title: "unauthenticated file service by specification", os: "protocol", year: 1991, disp: DesignError, exp: Exploit{}},
	{program: "SNMPv1", title: "community string authentication trivially replayable", os: "protocol", year: 1996, disp: DesignError, exp: Exploit{}},
	{program: "rwhod", title: "broadcast status accepted without authentication", os: "BSD", year: 1993, disp: DesignError, exp: Exploit{}},
	{program: "portmapper", title: "proxy forwarding launders request origin", os: "SunOS", year: 1994, disp: DesignError, exp: Exploit{}},
	{program: "XDMCP", title: "session negotiation unauthenticated", os: "X11", year: 1995, disp: DesignError, exp: Exploit{}},
	{program: "syslog protocol", title: "UDP events accepted from any source by design", os: "protocol", year: 1995, disp: DesignError, exp: Exploit{}},
	{program: "PPP auth", title: "PAP transmits reusable cleartext secret", os: "protocol", year: 1996, disp: DesignError, exp: Exploit{}},
	{program: "IP source route", title: "loose source routing honoured end to end", os: "protocol", year: 1995, disp: DesignError, exp: Exploit{}},
	{program: "telnet", title: "credentials cross network in cleartext by design", os: "protocol", year: 1990, disp: DesignError, exp: Exploit{}},
	{program: "NTP", title: "unauthenticated time updates shift security clocks", os: "protocol", year: 1996, disp: DesignError, exp: Exploit{}},
}

// Configuration errors, excluded from classification (5).
var seedsConfig = []seed{
	{program: "sendmail.cf", title: "decode alias delivered to program by shipped configuration", os: "BSD", year: 1993, disp: ConfigError, exp: Exploit{}},
	{program: "ftpd", title: "anonymous ftp root shipped writable", os: "SunOS", year: 1994, disp: ConfigError, exp: Exploit{}},
	{program: "NT registry", title: "security-relevant keys shipped writable by Everyone", os: "Windows NT", year: 1998, disp: ConfigError, exp: Exploit{}},
	{program: "hosts.equiv", title: "wildcard plus entry shipped in default trust file", os: "SunOS", year: 1993, disp: ConfigError, exp: Exploit{}},
	{program: "web server", title: "cgi-bin shipped with example scripts enabled", os: "Linux", year: 1997, disp: ConfigError, exp: Exploit{}},
}

// prefixID renders "VDB-UI-007"-style identifiers.
func prefixID(prefix string, n int) string {
	d := []byte{'0' + byte(n/100%10), '0' + byte(n/10%10), '0' + byte(n%10)}
	return "VDB-" + prefix + "-" + string(d)
}

// allEntries assembles the full 195-entry database in stable order.
func allEntries() []Entry {
	var out []Entry
	out = append(out, expand("UI", 1, seedsUserInput)...)
	out = append(out, expand("EV", 1, seedsEnvVar)...)
	out = append(out, expand("FI", 1, seedsFileInput)...)
	out = append(out, expand("NI", 1, seedsNetInput)...)
	out = append(out, expand("FE", 1, seedsFSExistence)...)
	out = append(out, expand("FS", 1, seedsFSSymlink)...)
	out = append(out, expand("FP", 1, seedsFSPermission)...)
	out = append(out, expand("FO", 1, seedsFSOwnership)...)
	out = append(out, expand("FV", 1, seedsFSInvariance)...)
	out = append(out, expand("FW", 1, seedsFSWorkdir)...)
	out = append(out, expand("ND", 1, seedsNetDirect)...)
	out = append(out, expand("PD", 1, seedsProcDirect)...)
	out = append(out, expand("OT", 1, seedsOthers)...)
	out = append(out, expand("XI", 1, seedsInsufficient)...)
	out = append(out, expand("XD", 1, seedsDesign)...)
	out = append(out, expand("XC", 1, seedsConfig)...)
	return out
}
