package vulndb

import (
	"strings"
	"testing"

	"repro/internal/core/eai"
)

func TestDatabaseSize(t *testing.T) {
	t.Parallel()
	db := Load()
	if db.Len() != 195 {
		t.Fatalf("database has %d entries, the paper's has 195", db.Len())
	}
}

func TestEntriesWellFormed(t *testing.T) {
	t.Parallel()
	db := Load()
	seen := map[string]bool{}
	titles := map[string]bool{}
	for _, e := range db.Entries {
		if e.ID == "" || e.Title == "" || e.Program == "" || e.OS == "" {
			t.Errorf("incomplete entry: %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		key := e.Program + "|" + e.Title
		if titles[key] {
			t.Errorf("duplicate entry %s", key)
		}
		titles[key] = true
		if e.Year < 1988 || e.Year > 1998 {
			t.Errorf("%s: year %d outside the database's era", e.ID, e.Year)
		}
	}
}

func TestByID(t *testing.T) {
	t.Parallel()
	db := Load()
	e, ok := db.ByID("VDB-UI-001")
	if !ok || e.Program != "lpr" {
		t.Errorf("ByID = %+v, %v", e, ok)
	}
	if _, ok := db.ByID("VDB-XX-999"); ok {
		t.Error("missing id found")
	}
}

// TestSection24Triage pins the pre-classification triage: 26 insufficient,
// 22 design, 5 configuration, 142 classified.
func TestSection24Triage(t *testing.T) {
	t.Parallel()
	s := Load().Classify()
	if s.Total != 195 {
		t.Errorf("total = %d", s.Total)
	}
	if s.InsufficientInfo != 26 {
		t.Errorf("insufficient = %d, want 26", s.InsufficientInfo)
	}
	if s.DesignErrors != 22 {
		t.Errorf("design = %d, want 22", s.DesignErrors)
	}
	if s.ConfigErrors != 5 {
		t.Errorf("config = %d, want 5", s.ConfigErrors)
	}
	if s.Classified != 142 {
		t.Errorf("classified = %d, want 142", s.Classified)
	}
}

// TestTable1Counts pins Table 1: 81 indirect, 48 direct, 13 others.
func TestTable1Counts(t *testing.T) {
	t.Parallel()
	s := Load().Classify()
	if s.Indirect != 81 {
		t.Errorf("indirect = %d, want 81", s.Indirect)
	}
	if s.Direct != 48 {
		t.Errorf("direct = %d, want 48", s.Direct)
	}
	if s.Others != 13 {
		t.Errorf("others = %d, want 13", s.Others)
	}
	tbl := Table1(s)
	if tbl.Total() != 142 {
		t.Errorf("table 1 total = %d", tbl.Total())
	}
	out := tbl.String()
	for _, want := range []string{"81", "48", "13", "57.0%", "33.8%", "9.2%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

// TestTable2Counts pins Table 2: user 51, env 17, fs 5, net 8, proc 0.
func TestTable2Counts(t *testing.T) {
	t.Parallel()
	s := Load().Classify()
	want := map[eai.Origin]int{
		eai.OriginUserInput:    51,
		eai.OriginEnvVar:       17,
		eai.OriginFileInput:    5,
		eai.OriginNetworkInput: 8,
		eai.OriginProcessInput: 0,
	}
	for origin, n := range want {
		if got := s.IndirectByOrigin[origin]; got != n {
			t.Errorf("%s = %d, want %d", origin, got, n)
		}
	}
	if Table2(s).Total() != 81 {
		t.Errorf("table 2 total = %d", Table2(s).Total())
	}
}

// TestTable3Counts pins Table 3: file system 42, network 5, process 1.
func TestTable3Counts(t *testing.T) {
	t.Parallel()
	s := Load().Classify()
	want := map[eai.Entity]int{
		eai.EntityFileSystem: 42,
		eai.EntityNetwork:    5,
		eai.EntityProcess:    1,
	}
	for entity, n := range want {
		if got := s.DirectByEntity[entity]; got != n {
			t.Errorf("%s = %d, want %d", entity, got, n)
		}
	}
	if Table3(s).Total() != 48 {
		t.Errorf("table 3 total = %d", Table3(s).Total())
	}
}

// TestTable4Counts pins Table 4: existence 20, symlink 6, permission 6,
// ownership 3, invariance 6, workdir 1.
func TestTable4Counts(t *testing.T) {
	t.Parallel()
	s := Load().Classify()
	want := map[eai.Attr]int{
		eai.AttrExistence:         20,
		eai.AttrSymlink:           6,
		eai.AttrPermission:        6,
		eai.AttrOwnership:         3,
		eai.AttrContentInvariance: 6,
		eai.AttrWorkingDirectory:  1,
	}
	for attr, n := range want {
		if got := s.FSByAttr[attr]; got != n {
			t.Errorf("%s = %d, want %d", attr, got, n)
		}
	}
	if Table4(s).Total() != 42 {
		t.Errorf("table 4 total = %d", Table4(s).Total())
	}
}

func TestClassifyRules(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		e    Entry
		want Category
	}{
		{
			"excluded design",
			Entry{Disposition: DesignError},
			Category{Excluded: DesignError},
		},
		{
			"input wins over entity",
			Entry{Disposition: Classifiable, Exploit: Exploit{Input: ChanArgv, Entity: eai.EntityFileSystem}},
			Category{Class: eai.ClassIndirect, Origin: eai.OriginUserInput},
		},
		{
			"stdin is user input",
			Entry{Disposition: Classifiable, Exploit: Exploit{Input: ChanStdin}},
			Category{Class: eai.ClassIndirect, Origin: eai.OriginUserInput},
		},
		{
			"ipc is process input",
			Entry{Disposition: Classifiable, Exploit: Exploit{Input: ChanIPC}},
			Category{Class: eai.ClassIndirect, Origin: eai.OriginProcessInput},
		},
		{
			"entity without input is direct",
			Entry{Disposition: Classifiable, Exploit: Exploit{Entity: eai.EntityFileSystem, Attr: eai.AttrSymlink}},
			Category{Class: eai.ClassDirect, Entity: eai.EntityFileSystem, Attr: eai.AttrSymlink},
		},
		{
			"neither input nor entity is others",
			Entry{Disposition: Classifiable, Exploit: Exploit{CodeDefect: "typo"}},
			Category{},
		},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			got := Classify(tt.e)
			if got != tt.want {
				t.Errorf("Classify = %+v, want %+v", got, tt.want)
			}
			if tt.name == "neither input nor entity is others" && !got.Others() {
				t.Error("Others() = false")
			}
		})
	}
}

// TestEveryClassifiedEntryLandsSomewhere: the partition is total —
// excluded + indirect + direct + others = 195.
func TestPartitionTotal(t *testing.T) {
	t.Parallel()
	s := Load().Classify()
	sum := s.InsufficientInfo + s.DesignErrors + s.ConfigErrors +
		s.Indirect + s.Direct + s.Others
	if sum != s.Total {
		t.Errorf("partition sums to %d of %d", sum, s.Total)
	}
	// Cross-checks across tables.
	if s.Indirect != Table2(s).Total() {
		t.Error("table 2 total mismatch")
	}
	if s.Direct != Table3(s).Total() {
		t.Error("table 3 total mismatch")
	}
	if s.DirectByEntity[eai.EntityFileSystem] != Table4(s).Total() {
		t.Error("table 4 total mismatch")
	}
}
