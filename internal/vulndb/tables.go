package vulndb

import (
	"repro/internal/core/eai"
	"repro/internal/core/report"
)

// Table1 builds the paper's Table 1: the high-level classification of the
// 142 classifiable flaws (81 indirect / 48 direct / 13 others).
func Table1(s Stats) report.CountTable {
	return report.CountTable{
		Title:      "Table 1: high-level classification",
		Categories: []string{"indirect-environment-fault", "direct-environment-fault", "others"},
		Counts: map[string]int{
			"indirect-environment-fault": s.Indirect,
			"direct-environment-fault":   s.Direct,
			"others":                     s.Others,
		},
	}
}

// Table2 builds Table 2: indirect faults by input origin.
func Table2(s Stats) report.CountTable {
	return report.CountTable{
		Title: "Table 2: indirect environment faults that cause security violations",
		Categories: []string{
			"user-input", "environment-variable", "file-system-input",
			"network-input", "process-input",
		},
		Counts: map[string]int{
			"user-input":           s.IndirectByOrigin[eai.OriginUserInput],
			"environment-variable": s.IndirectByOrigin[eai.OriginEnvVar],
			"file-system-input":    s.IndirectByOrigin[eai.OriginFileInput],
			"network-input":        s.IndirectByOrigin[eai.OriginNetworkInput],
			"process-input":        s.IndirectByOrigin[eai.OriginProcessInput],
		},
	}
}

// Table3 builds Table 3: direct faults by environment entity.
func Table3(s Stats) report.CountTable {
	return report.CountTable{
		Title:      "Table 3: direct environment faults that cause security violations",
		Categories: []string{"file-system", "network", "process"},
		Counts: map[string]int{
			"file-system": s.DirectByEntity[eai.EntityFileSystem],
			"network":     s.DirectByEntity[eai.EntityNetwork],
			"process":     s.DirectByEntity[eai.EntityProcess],
		},
	}
}

// Table4 builds Table 4: direct file-system faults by perturbed attribute.
func Table4(s Stats) report.CountTable {
	return report.CountTable{
		Title: "Table 4: file system environment faults",
		Categories: []string{
			"file-existence", "symbolic-link", "permission", "ownership",
			"file-invariance", "working-directory",
		},
		Counts: map[string]int{
			"file-existence":    s.FSByAttr[eai.AttrExistence],
			"symbolic-link":     s.FSByAttr[eai.AttrSymlink],
			"permission":        s.FSByAttr[eai.AttrPermission],
			"ownership":         s.FSByAttr[eai.AttrOwnership],
			"file-invariance":   s.FSByAttr[eai.AttrContentInvariance],
			"working-directory": s.FSByAttr[eai.AttrWorkingDirectory],
		},
	}
}
