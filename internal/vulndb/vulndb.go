// Package vulndb reproduces the Section 2.4 data analysis: a 195-entry
// vulnerability database in the style of the CERIAS collection, an
// EAI-model classifier over it, and builders for the paper's Tables 1-4.
//
// The CERIAS database is proprietary; the entries here are synthetic,
// modeled on well-known historical vulnerabilities of the same era and
// constructed so the category marginals match the counts the paper
// publishes (which is all Tables 1-4 report). Every entry carries
// structured exploit facts — the input channel abused, the environment
// entity and attribute perturbed — and the classifier derives the taxonomy
// from those facts by rule, exactly as the paper's authors classified
// their records.
package vulndb

import (
	"fmt"

	"repro/internal/core/eai"
)

// Disposition is the first-stage triage of Section 2.4: 26 entries lacked
// information, 22 were design errors, and 5 configuration errors — all
// excluded before EAI classification.
type Disposition int

// Dispositions.
const (
	Classifiable Disposition = iota + 1
	InsufficientInfo
	DesignError
	ConfigError
)

// String returns the disposition name.
func (d Disposition) String() string {
	switch d {
	case Classifiable:
		return "classifiable"
	case InsufficientInfo:
		return "insufficient-information"
	case DesignError:
		return "design-error"
	case ConfigError:
		return "configuration-error"
	default:
		return fmt.Sprintf("Disposition(%d)", int(d))
	}
}

// Channel is the input channel an exploit abuses (for indirect faults).
type Channel int

// Channels, mapping one-to-one onto the Table 2 origins.
const (
	ChanNone Channel = iota
	ChanArgv
	ChanStdin
	ChanEnvVar
	ChanFileContent
	ChanNetworkPacket
	ChanIPC
)

// Exploit is the structured record of how an attacker triggers the flaw.
type Exploit struct {
	// Input is the channel crafted input arrives on; ChanNone when the
	// attack involves no crafted input value.
	Input Channel
	// Entity is the environment entity the attacker perturbs in place;
	// zero when the attack works purely through an input value.
	Entity eai.Entity
	// Attr is the perturbed attribute (for file-system entities this is
	// the Table 4 column).
	Attr eai.Attr
	// CodeDefect is the underlying programming error, free text.
	CodeDefect string
}

// Entry is one vulnerability record.
type Entry struct {
	ID          string
	Title       string
	Program     string
	OS          string
	Year        int
	Disposition Disposition
	Exploit     Exploit
}

// Category is the classifier verdict for one entry.
type Category struct {
	// Excluded is non-zero for entries triaged out before classification.
	Excluded Disposition
	// Class is indirect/direct for EAI-classified entries; zero for the
	// "others" bucket (environment-independent software faults).
	Class eai.Class
	// Origin is set for indirect entries (Table 2 row).
	Origin eai.Origin
	// Entity is set for direct entries (Table 3 row).
	Entity eai.Entity
	// Attr is set for direct file-system entries (Table 4 column).
	Attr eai.Attr
}

// Others reports whether the entry was classifiable but environment-
// independent (the 13-entry bucket of Table 1).
func (c Category) Others() bool {
	return c.Excluded == 0 && c.Class == 0
}

// Classify applies the EAI rules to one entry:
//
//  1. non-classifiable dispositions are excluded (Section 2.4 triage);
//  2. a crafted-input channel makes the fault indirect, with the origin
//     given by the channel (Figure 1a: the fault propagates via the
//     internal entity the input initialises);
//  3. otherwise a perturbed environment entity makes the fault direct
//     (Figure 1b);
//  4. otherwise the flaw is environment-independent ("others").
func Classify(e Entry) Category {
	if e.Disposition != Classifiable {
		return Category{Excluded: e.Disposition}
	}
	if e.Exploit.Input != ChanNone {
		return Category{Class: eai.ClassIndirect, Origin: originOf(e.Exploit.Input)}
	}
	if e.Exploit.Entity != 0 {
		return Category{Class: eai.ClassDirect, Entity: e.Exploit.Entity, Attr: e.Exploit.Attr}
	}
	return Category{}
}

func originOf(ch Channel) eai.Origin {
	switch ch {
	case ChanArgv, ChanStdin:
		return eai.OriginUserInput
	case ChanEnvVar:
		return eai.OriginEnvVar
	case ChanFileContent:
		return eai.OriginFileInput
	case ChanNetworkPacket:
		return eai.OriginNetworkInput
	case ChanIPC:
		return eai.OriginProcessInput
	default:
		return 0
	}
}

// DB is the loaded database.
type DB struct {
	Entries []Entry
}

// Load returns the full 195-entry database.
func Load() *DB {
	return &DB{Entries: allEntries()}
}

// Len returns the number of entries.
func (db *DB) Len() int { return len(db.Entries) }

// ByID returns the entry with the given id, or false.
func (db *DB) ByID(id string) (Entry, bool) {
	for _, e := range db.Entries {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// Stats is the aggregate classification used by Tables 1-4.
type Stats struct {
	Total            int
	InsufficientInfo int
	DesignErrors     int
	ConfigErrors     int

	Classified int // entries reaching EAI classification
	Indirect   int
	Direct     int
	Others     int

	IndirectByOrigin map[eai.Origin]int
	DirectByEntity   map[eai.Entity]int
	FSByAttr         map[eai.Attr]int
}

// Classify classifies every entry and aggregates.
func (db *DB) Classify() Stats {
	s := Stats{
		IndirectByOrigin: make(map[eai.Origin]int),
		DirectByEntity:   make(map[eai.Entity]int),
		FSByAttr:         make(map[eai.Attr]int),
	}
	for _, e := range db.Entries {
		s.Total++
		c := Classify(e)
		switch c.Excluded {
		case InsufficientInfo:
			s.InsufficientInfo++
			continue
		case DesignError:
			s.DesignErrors++
			continue
		case ConfigError:
			s.ConfigErrors++
			continue
		}
		s.Classified++
		switch {
		case c.Class == eai.ClassIndirect:
			s.Indirect++
			s.IndirectByOrigin[c.Origin]++
		case c.Class == eai.ClassDirect:
			s.Direct++
			s.DirectByEntity[c.Entity]++
			if c.Entity == eai.EntityFileSystem {
				s.FSByAttr[c.Attr]++
			}
		default:
			s.Others++
		}
	}
	return s
}
