package vfs

import (
	"testing"
	"testing/quick"
)

func TestAllows(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name     string
		mode     Mode
		uid, gid int // inode owner
		sub      [2]int
		want     Mode
		ok       bool
	}{
		{"owner read on 0600", 0o600, 100, 100, [2]int{100, 100}, WantRead, true},
		{"owner write on 0600", 0o600, 100, 100, [2]int{100, 100}, WantWrite, true},
		{"owner exec denied on 0600", 0o600, 100, 100, [2]int{100, 100}, WantExec, false},
		{"other read denied on 0600", 0o600, 100, 100, [2]int{200, 200}, WantRead, false},
		{"group read on 0640", 0o640, 100, 100, [2]int{200, 100}, WantRead, true},
		{"group write denied on 0640", 0o640, 100, 100, [2]int{200, 100}, WantWrite, false},
		{"other read on 0644", 0o644, 100, 100, [2]int{200, 200}, WantRead, true},
		{"owner class exclusive: 0077 denies owner", 0o077, 100, 100, [2]int{100, 100}, WantRead, false},
		{"group class exclusive: 0604 denies group member", 0o604, 100, 100, [2]int{200, 100}, WantRead, false},
		{"root bypasses read", 0o000, 100, 100, [2]int{0, 0}, WantRead, true},
		{"root bypasses write", 0o000, 100, 100, [2]int{0, 0}, WantWrite, true},
		{"root exec needs a bit", 0o644, 100, 100, [2]int{0, 0}, WantExec, false},
		{"root exec with any bit", 0o611, 100, 100, [2]int{0, 0}, WantExec, true},
		{"combined read+write", 0o600, 100, 100, [2]int{100, 100}, WantRead | WantWrite, true},
		{"combined partial denied", 0o400, 100, 100, [2]int{100, 100}, WantRead | WantWrite, false},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			n := &Inode{Type: TypeRegular, Mode: tt.mode, UID: tt.uid, GID: tt.gid}
			if got := Allows(n, tt.sub[0], tt.sub[1], tt.want); got != tt.ok {
				t.Errorf("Allows(%o, uid=%d) = %v, want %v", uint16(tt.mode), tt.sub[0], got, tt.ok)
			}
		})
	}
}

func TestRootExecOnDirectory(t *testing.T) {
	t.Parallel()
	dir := &Inode{Type: TypeDir, Mode: 0o700, UID: 100, GID: 100}
	if !Allows(dir, 0, 0, WantExec) {
		t.Error("root must be able to search any directory")
	}
}

func TestHelpers(t *testing.T) {
	t.Parallel()
	n := &Inode{Type: TypeRegular, Mode: 0o602, UID: 100, GID: 100}
	if !WorldWritable(n) {
		t.Error("WorldWritable(0602) = false")
	}
	if !WritableBy(n, 100, 100) {
		t.Error("owner WritableBy = false")
	}
	if ReadableBy(n, 200, 200) {
		t.Error("other ReadableBy(0602) = true")
	}
}

// Property: root (euid 0) is always granted read and write on any inode.
func TestRootAlwaysReadsWrites(t *testing.T) {
	t.Parallel()
	f := func(mode uint16, uid, gid uint8) bool {
		n := &Inode{Type: TypeRegular, Mode: Mode(mode) & ModePermMask, UID: int(uid), GID: int(gid)}
		return Allows(n, 0, 0, WantRead) && Allows(n, 0, 0, WantWrite)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: exactly one permission class ever applies — granting a right to
// "other" never grants it to the owner when the owner class denies it.
func TestClassExclusivity(t *testing.T) {
	t.Parallel()
	f := func(ownerBits uint8) bool {
		// Owner bits arbitrary, other bits full.
		mode := Mode(ownerBits&0o7)<<6 | 0o007
		n := &Inode{Type: TypeRegular, Mode: mode, UID: 100, GID: 100}
		ownerCanRead := Allows(n, 100, 100, WantRead)
		return ownerCanRead == (mode&ModeUserRead != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: granting a superset of bits never reduces access.
func TestMonotonicity(t *testing.T) {
	t.Parallel()
	f := func(mode uint16, extra uint16, uid, gid uint8, want uint8) bool {
		w := Mode(want) & (WantRead | WantWrite | WantExec)
		if w == 0 {
			return true
		}
		base := Mode(mode) & ModePermMask
		wider := (base | Mode(extra)) & ModePermMask
		n1 := &Inode{Type: TypeRegular, Mode: base, UID: 50, GID: 50}
		n2 := &Inode{Type: TypeRegular, Mode: wider, UID: 50, GID: 50}
		// Widening within the subject's own class only. Use the "other"
		// class subject so owner/group bits are irrelevant.
		subUID, subGID := 200, 200
		if Allows(n1, subUID, subGID, w) {
			// Widening other-class bits cannot revoke.
			if wider&0o7 >= base&0o7 && (wider&0o7)&(base&0o7) == base&0o7 {
				return Allows(n2, subUID, subGID, w)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
