package vfs

import (
	"errors"
	"testing"
)

func TestRemoveAll(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if err := fs.MkdirAll("/", "/deep/a/b/c", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/deep/a/b/c/f", []byte("x"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll("/deep"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/deep") {
		t.Error("tree still present")
	}
	// Missing path is not an error.
	if err := fs.RemoveAll("/deep"); err != nil {
		t.Errorf("missing RemoveAll: %v", err)
	}
	// Root is protected.
	if err := fs.RemoveAll("/"); !errors.Is(err, ErrBusy) {
		t.Errorf("RemoveAll(/) err = %v", err)
	}
}

func TestRemoveAllDoesNotFollowFinalSymlink(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if _, err := fs.Symlink("/", "/etc", "/tmp/etclink", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll("/tmp/etclink"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/etc/passwd") {
		t.Error("RemoveAll followed the symlink and destroyed the target")
	}
	if fs.Exists("/tmp/etclink") {
		t.Error("link itself not removed")
	}
}

func TestResolveThroughChainedSymlinks(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if _, err := fs.Symlink("/", "/b", "/a", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Symlink("/", "/c", "/b", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/", "/c", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/c/f", []byte("deep"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Resolve("/", "/a/f", true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Path != "/c/f" || r.Node == nil {
		t.Errorf("chained resolve = %+v", r)
	}
}

func TestDotDotThroughSymlinkedDir(t *testing.T) {
	t.Parallel()
	// Lexical ".." applies to the expanded target path, as in a real
	// kernel walk: /link/../x with /link -> /etc resolves to /x relative
	// to /etc's parent.
	fs := newTestFS(t)
	if _, err := fs.Symlink("/", "/etc", "/tmp/link", 0, 0); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Resolve("/", "/tmp/link/../etc/passwd", true)
	if err != nil {
		t.Fatalf("dotdot through link: %v", err)
	}
	if r.Path != "/etc/passwd" {
		t.Errorf("resolved = %q", r.Path)
	}
}

func TestNlinkAcrossRemoveAll(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if err := fs.Link("/", "/etc/passwd", "/tmp/pw"); err != nil {
		t.Fatal(err)
	}
	n, _ := fs.Lookup("/", "/etc/passwd")
	if n.Nlink != 2 {
		t.Fatalf("nlink = %d", n.Nlink)
	}
	// Removing one name leaves the other intact.
	if err := fs.RemoveAll("/tmp/pw"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/etc/passwd") {
		t.Error("other name vanished")
	}
}
