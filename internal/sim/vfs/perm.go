package vfs

// Access rights requested of an inode. These combine into a bitmask.
const (
	WantRead  Mode = 0o4
	WantWrite Mode = 0o2
	WantExec  Mode = 0o1
)

// Allows reports whether a subject with the given effective uid and gid is
// granted every right in want on inode n under standard UNIX semantics:
// uid 0 bypasses read/write checks (and exec when any exec bit is set), the
// owner class applies when uid matches, otherwise the group class when gid
// matches, otherwise the other class. Exactly one class applies — an owner
// denied write is denied even if "other" would permit it.
func Allows(n *Inode, uid, gid int, want Mode) bool {
	if uid == 0 {
		if want&WantExec == 0 {
			return true
		}
		// Root needs at least one exec bit somewhere (or a directory).
		if n.Type == TypeDir || n.Mode&(ModeUserExec|ModeGroupExec|ModeOtherExec) != 0 {
			return want&(WantRead|WantWrite) == 0 ||
				Allows(n, uid, gid, want&(WantRead|WantWrite))
		}
		return false
	}
	var granted Mode
	switch {
	case n.UID == uid:
		granted = (n.Mode >> 6) & 0o7
	case n.GID == gid:
		granted = (n.Mode >> 3) & 0o7
	default:
		granted = n.Mode & 0o7
	}
	return granted&want == want
}

// WorldWritable reports whether the inode grants write to the "other"
// class. The policy oracle uses this to decide whether an object is
// attacker-controllable.
func WorldWritable(n *Inode) bool { return n.Mode&ModeOtherWrite != 0 }

// WritableBy reports whether the given uid/gid can write the inode. It is
// Allows specialised for the oracle's common question.
func WritableBy(n *Inode, uid, gid int) bool { return Allows(n, uid, gid, WantWrite) }

// ReadableBy reports whether the given uid/gid can read the inode.
func ReadableBy(n *Inode, uid, gid int) bool { return Allows(n, uid, gid, WantRead) }
