// Package vfs implements an in-memory UNIX-like filesystem used as the
// environment substrate for environment-perturbation testing.
//
// The filesystem models exactly the attributes the EAI fault model (Du &
// Mathur, DSN 2000, Table 6) perturbs: existence, ownership, permission
// bits, symbolic links, file content, file names, and directories. It is
// pure mechanism: permission *checks* are performed by the kernel layer,
// which knows process credentials. The vfs layer only stores and resolves.
package vfs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"maps"
	"path"
	"sort"
	"strings"
)

// NodeType discriminates the three kinds of filesystem object the model
// supports.
type NodeType int

// Node types. Enums start at 1 so the zero value is invalid and cannot be
// mistaken for a real node type.
const (
	TypeRegular NodeType = iota + 1
	TypeDir
	TypeSymlink
)

// String returns a human-readable node type name.
func (t NodeType) String() string {
	switch t {
	case TypeRegular:
		return "regular"
	case TypeDir:
		return "directory"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Mode holds UNIX permission bits plus the setuid/setgid/sticky bits.
type Mode uint16

// Permission bit masks.
const (
	ModeSetUID Mode = 0o4000
	ModeSetGID Mode = 0o2000
	ModeSticky Mode = 0o1000

	ModeUserRead   Mode = 0o400
	ModeUserWrite  Mode = 0o200
	ModeUserExec   Mode = 0o100
	ModeGroupRead  Mode = 0o040
	ModeGroupWrite Mode = 0o020
	ModeGroupExec  Mode = 0o010
	ModeOtherRead  Mode = 0o004
	ModeOtherWrite Mode = 0o002
	ModeOtherExec  Mode = 0o001

	// ModePermMask selects the twelve permission-relevant bits.
	ModePermMask Mode = 0o7777
)

// String renders the mode in conventional rwx notation (e.g. "rwsr-xr-x").
func (m Mode) String() string {
	var b [9]byte
	triples := []struct {
		r, w, x Mode
		special Mode
		sch     byte // letter when special bit and exec both set
		schNoX  byte // letter when special bit set but exec clear
	}{
		{ModeUserRead, ModeUserWrite, ModeUserExec, ModeSetUID, 's', 'S'},
		{ModeGroupRead, ModeGroupWrite, ModeGroupExec, ModeSetGID, 's', 'S'},
		{ModeOtherRead, ModeOtherWrite, ModeOtherExec, ModeSticky, 't', 'T'},
	}
	for i, t := range triples {
		o := i * 3
		b[o] = '-'
		if m&t.r != 0 {
			b[o] = 'r'
		}
		b[o+1] = '-'
		if m&t.w != 0 {
			b[o+1] = 'w'
		}
		switch {
		case m&t.x != 0 && m&t.special != 0:
			b[o+2] = t.sch
		case m&t.special != 0:
			b[o+2] = t.schNoX
		case m&t.x != 0:
			b[o+2] = 'x'
		default:
			b[o+2] = '-'
		}
	}
	return string(b[:])
}

// Static errors. These mirror the errno family a real kernel would return
// and are matched by callers with errors.Is.
var (
	ErrNotExist    = errors.New("vfs: no such file or directory")
	ErrExist       = errors.New("vfs: file exists")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrLoop        = errors.New("vfs: too many levels of symbolic links")
	ErrNotEmpty    = errors.New("vfs: directory not empty")
	ErrInvalid     = errors.New("vfs: invalid argument")
	ErrCrossLink   = errors.New("vfs: hard link to directory not permitted")
	ErrBusy        = errors.New("vfs: resource busy")
	ErrNameTooLong = errors.New("vfs: file name too long")
)

// MaxNameLen bounds a single path component, mirroring NAME_MAX.
const MaxNameLen = 255

// maxSymlinkDepth bounds symlink chain traversal, mirroring SYMLOOP_MAX.
const maxSymlinkDepth = 40

// Inode is a single filesystem object. Directories hold children by name;
// regular files hold content; symlinks hold a target path.
type Inode struct {
	ID     int64
	Type   NodeType
	Mode   Mode
	UID    int
	GID    int
	Data   []byte            // TypeRegular payload
	Target string            // TypeSymlink target path
	kids   map[string]*Inode // TypeDir children
	Nlink  int

	// owner is the FS that created or privatized this inode. A forked
	// filesystem may mutate an inode only when owner == fs; otherwise the
	// copy-on-write layer clones it first (see FS.own).
	owner *FS

	// Gen increments on every content mutation; the TOCTTOU baseline and
	// the content-invariance perturbation use it to detect change between
	// check and use.
	Gen int64
}

// IsDir reports whether the inode is a directory.
func (n *Inode) IsDir() bool { return n.Type == TypeDir }

// IsSymlink reports whether the inode is a symbolic link.
func (n *Inode) IsSymlink() bool { return n.Type == TypeSymlink }

// Children returns the sorted child names of a directory inode. It returns
// nil for non-directories.
func (n *Inode) Children() []string {
	if n.Type != TypeDir {
		return nil
	}
	names := make([]string, 0, len(n.kids))
	for name := range n.kids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Child returns the named child of a directory inode, or nil.
func (n *Inode) Child(name string) *Inode {
	if n.Type != TypeDir {
		return nil
	}
	return n.kids[name]
}

// FS is an in-memory filesystem tree. The zero value is not usable; create
// instances with New.
//
// An FS supports copy-on-write forking: Freeze marks the tree immutable,
// and Fork produces a mutable child that structurally shares every inode
// with its parent until first mutation. Shared inodes are never relinked in
// place — the cow map redirects reads from a shared inode to the fork's
// private copy, which preserves hard-link identity and lets long-lived
// *Inode handles (open files, oracle snapshots) observe the fork's current
// state through View.
type FS struct {
	root   *Inode
	nextID int64

	// frozen marks the tree immutable. Mutating a frozen FS panics: a
	// frozen tree is the base image other filesystems fork from, so a
	// leaked mutation would silently corrupt every subsequent fork.
	frozen bool
	// cow maps a shared (parent-owned) inode to this filesystem's private
	// copy. Lookups chase chains, so a fork-of-a-fork resolves
	// grandparent inodes through the intermediate generation's copies.
	cow map[*Inode]*Inode
}

// New returns an empty filesystem whose root directory is owned by root
// (uid 0, gid 0) with mode 0755.
func New() *FS {
	fs := &FS{}
	fs.root = fs.newInode(TypeDir, 0o755, 0, 0)
	return fs
}

// Root returns the root directory inode (the fork's private copy when the
// root has been privatized).
func (fs *FS) Root() *Inode { return fs.view(fs.root) }

func (fs *FS) newInode(t NodeType, mode Mode, uid, gid int) *Inode {
	fs.nextID++
	n := &Inode{
		ID:    fs.nextID,
		Type:  t,
		Mode:  mode & ModePermMask,
		UID:   uid,
		GID:   gid,
		Nlink: 1,
		owner: fs,
	}
	if t == TypeDir {
		n.kids = make(map[string]*Inode)
	}
	return n
}

// Freeze marks the filesystem immutable so it can serve as the base image
// for Fork. Any subsequent mutation attempt panics — the tripwire that
// keeps a leaked shared mutation from corrupting every fork's run.
func (fs *FS) Freeze() { fs.frozen = true }

// Frozen reports whether Freeze has been called.
func (fs *FS) Frozen() bool { return fs.frozen }

// Fork returns a mutable filesystem that structurally shares every inode
// with the (frozen) receiver. Construction is O(size of the receiver's cow
// map) — O(1) for a freshly built world — and the first mutation of any
// inode clones just that inode. Inode IDs allocated by the fork continue
// from the parent's counter, so forked runs produce bit-identical traces
// to fresh builds.
func (fs *FS) Fork() *FS {
	if !fs.frozen {
		panic("vfs: Fork of unfrozen filesystem")
	}
	return &FS{root: fs.root, nextID: fs.nextID, cow: maps.Clone(fs.cow)}
}

// view chases n through the copy-on-write map to this filesystem's current
// version of the inode. It is the read barrier every traversal uses; stale
// *Inode handles taken before a privatization resolve to the private copy.
func (fs *FS) view(n *Inode) *Inode {
	if n == nil || fs.cow == nil {
		return n
	}
	for {
		c, ok := fs.cow[n]
		if !ok {
			return n
		}
		n = c
	}
}

// View is the exported read barrier for long-lived inode handles (open
// files, oracle snapshots) held outside the vfs package.
func (fs *FS) View(n *Inode) *Inode { return fs.view(n) }

// own returns a version of n this filesystem may mutate, cloning a shared
// inode on first write. The clone deep-copies Data — kernel Write mutates
// content in place through the backing array — and shallow-copies the kids
// map; shared children are cloned lazily when they are themselves mutated.
func (fs *FS) own(n *Inode) *Inode {
	if fs.frozen {
		panic("vfs: mutation of frozen filesystem")
	}
	n = fs.view(n)
	if n.owner == fs {
		return n
	}
	c := &Inode{
		ID:     n.ID,
		Type:   n.Type,
		Mode:   n.Mode,
		UID:    n.UID,
		GID:    n.GID,
		Target: n.Target,
		Nlink:  n.Nlink,
		Gen:    n.Gen,
		owner:  fs,
	}
	if n.Data != nil {
		c.Data = append([]byte(nil), n.Data...)
	}
	if n.kids != nil {
		c.kids = maps.Clone(n.kids)
	}
	if fs.cow == nil {
		fs.cow = make(map[*Inode]*Inode)
	}
	fs.cow[n] = c
	return c
}

// Own is the exported write barrier: it returns the filesystem's mutable
// version of n, privatizing a shared inode first. Callers that mutate an
// inode obtained from a Resolve/Lookup (e.g. direct-fault perturbations)
// must route through Own.
func (fs *FS) Own(n *Inode) *Inode { return fs.own(n) }

// Canon returns path p made absolute against cwd and lexically cleaned.
// It performs no symlink resolution.
func Canon(cwd, p string) string {
	if p == "" {
		return path.Clean(cwd)
	}
	if !strings.HasPrefix(p, "/") {
		if cwd == "" {
			cwd = "/"
		}
		p = cwd + "/" + p
	}
	return path.Clean(p)
}

// SplitPath splits a cleaned absolute path into components, omitting the
// leading slash. The root path yields an empty slice.
func SplitPath(p string) []string {
	p = path.Clean(p)
	if p == "/" || p == "" || p == "." {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// Resolved is the result of a path walk.
type Resolved struct {
	// Node is the inode the path names, or nil when the final component
	// does not exist.
	Node *Inode
	// Parent is the directory containing the final component. It is always
	// non-nil on success and when only the final component is missing.
	Parent *Inode
	// Name is the final path component ("" for the root).
	Name string
	// Path is the fully resolved absolute path with all intermediate (and,
	// if followed, final) symlinks expanded. This is the identity the
	// security oracle uses: it names the object actually affected.
	Path string
}

// Resolve walks absolute-or-relative path p from cwd. Intermediate symlinks
// are always followed; the final component is followed only when followLast
// is true. ".." is resolved during the walk, after symlink expansion — as a
// real kernel does — so "/link/../x" with /link -> /etc names /x, not a
// sibling of the link. A missing final component yields Resolved with Node
// nil and no error, so callers can implement create semantics; missing
// intermediate components yield ErrNotExist.
func (fs *FS) Resolve(cwd, p string, followLast bool) (Resolved, error) {
	abs := p
	if !strings.HasPrefix(abs, "/") {
		if cwd == "" {
			cwd = "/"
		}
		abs = strings.TrimSuffix(cwd, "/") + "/" + abs
	}
	return fs.resolve(abs, followLast, 0)
}

// splitRaw splits an absolute path into components, dropping empties and
// "." but preserving ".." for the walk to handle.
func splitRaw(abs string) []string {
	parts := strings.Split(abs, "/")
	out := parts[:0]
	for _, c := range parts {
		if c == "" || c == "." {
			continue
		}
		out = append(out, c)
	}
	return out
}

func (fs *FS) resolve(abs string, followLast bool, depth int) (Resolved, error) {
	if depth > maxSymlinkDepth {
		return Resolved{}, fmt.Errorf("%w: %s", ErrLoop, abs)
	}
	comps := splitRaw(abs)
	// stack holds the directory chain from the root; names the component
	// names entering each stack level past the root.
	stack := []*Inode{fs.view(fs.root)}
	var names []string
	pathOf := func() string {
		if len(names) == 0 {
			return "/"
		}
		return "/" + strings.Join(names, "/")
	}
	for i := 0; i < len(comps); i++ {
		comp := comps[i]
		cur := stack[len(stack)-1]
		last := i == len(comps)-1
		if comp == ".." {
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
				names = names[:len(names)-1]
			}
			continue
		}
		if len(comp) > MaxNameLen {
			return Resolved{}, fmt.Errorf("%w: %q", ErrNameTooLong, comp)
		}
		if cur.Type != TypeDir {
			return Resolved{}, fmt.Errorf("%w: %s", ErrNotDir, pathOf())
		}
		next := fs.view(cur.kids[comp])
		if next == nil {
			if last {
				return Resolved{
					Parent: cur,
					Name:   comp,
					Path:   joinResolved(pathOf(), comp),
				}, nil
			}
			return Resolved{}, fmt.Errorf("%w: %s", ErrNotExist, joinResolved(pathOf(), comp))
		}
		if next.Type == TypeSymlink && (!last || followLast) {
			// Re-resolve with the link target spliced in; the recursive
			// walk handles any ".." inside the target or the remainder.
			rest := strings.Join(comps[i+1:], "/")
			target := next.Target
			if !strings.HasPrefix(target, "/") {
				target = joinResolved(pathOf(), target)
			}
			if rest != "" {
				target = target + "/" + rest
			}
			return fs.resolve(target, followLast, depth+1)
		}
		if last {
			return Resolved{
				Node:   next,
				Parent: cur,
				Name:   comp,
				Path:   joinResolved(pathOf(), comp),
			}, nil
		}
		stack = append(stack, next)
		names = append(names, comp)
	}
	// The path named an already-walked directory (root, trailing "..", or
	// trailing ".").
	res := Resolved{Node: stack[len(stack)-1], Path: pathOf()}
	if len(stack) > 1 {
		res.Parent = stack[len(stack)-2]
		res.Name = names[len(names)-1]
	}
	return res, nil
}

func joinResolved(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// Lookup resolves p (following the final symlink) and returns its inode.
func (fs *FS) Lookup(cwd, p string) (*Inode, error) {
	r, err := fs.Resolve(cwd, p, true)
	if err != nil {
		return nil, err
	}
	if r.Node == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, r.Path)
	}
	return r.Node, nil
}

// LookupNoFollow resolves p without following a final symlink.
func (fs *FS) LookupNoFollow(cwd, p string) (*Inode, error) {
	r, err := fs.Resolve(cwd, p, false)
	if err != nil {
		return nil, err
	}
	if r.Node == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, r.Path)
	}
	return r.Node, nil
}

// Create makes a regular file at p owned by uid/gid. If the path already
// names a node and excl is true, ErrExist is returned; when excl is false
// an existing regular file (or final symlink target) is truncated and
// returned — faithfully reproducing the creat(2) semantics whose misuse the
// lpr case study (paper Section 3.4) exploits.
func (fs *FS) Create(cwd, p string, mode Mode, uid, gid int, excl bool) (*Inode, error) {
	r, err := fs.Resolve(cwd, p, true)
	if err != nil {
		return nil, err
	}
	if r.Node != nil {
		if excl {
			return nil, fmt.Errorf("%w: %s", ErrExist, r.Path)
		}
		if r.Node.Type == TypeDir {
			return nil, fmt.Errorf("%w: %s", ErrIsDir, r.Path)
		}
		node := fs.own(r.Node)
		node.Data = nil
		node.Gen++
		return node, nil
	}
	if r.Parent == nil {
		return nil, fmt.Errorf("%w: cannot create root", ErrInvalid)
	}
	parent := fs.own(r.Parent)
	n := fs.newInode(TypeRegular, mode, uid, gid)
	parent.kids[r.Name] = n
	parent.Gen++
	return n, nil
}

// Mkdir creates a directory at p.
func (fs *FS) Mkdir(cwd, p string, mode Mode, uid, gid int) (*Inode, error) {
	r, err := fs.Resolve(cwd, p, true)
	if err != nil {
		return nil, err
	}
	if r.Node != nil {
		return nil, fmt.Errorf("%w: %s", ErrExist, r.Path)
	}
	if r.Parent == nil {
		return nil, fmt.Errorf("%w: cannot create root", ErrInvalid)
	}
	parent := fs.own(r.Parent)
	n := fs.newInode(TypeDir, mode, uid, gid)
	parent.kids[r.Name] = n
	parent.Gen++
	return n, nil
}

// MkdirAll creates directory p and any missing parents, each with the given
// mode and ownership. Existing directories are left untouched.
func (fs *FS) MkdirAll(cwd, p string, mode Mode, uid, gid int) error {
	abs := Canon(cwd, p)
	comps := SplitPath(abs)
	cur := "/"
	for _, comp := range comps {
		cur = joinResolved(cur, comp)
		r, err := fs.Resolve("/", cur, true)
		if err != nil {
			return err
		}
		if r.Node != nil {
			if r.Node.Type != TypeDir {
				return fmt.Errorf("%w: %s", ErrNotDir, cur)
			}
			continue
		}
		if _, err := fs.Mkdir("/", cur, mode, uid, gid); err != nil {
			return err
		}
	}
	return nil
}

// Symlink creates a symbolic link at p pointing at target. The link itself
// is created with mode 0777 as on most UNIX systems.
func (fs *FS) Symlink(cwd, target, p string, uid, gid int) (*Inode, error) {
	r, err := fs.Resolve(cwd, p, false)
	if err != nil {
		return nil, err
	}
	if r.Node != nil {
		return nil, fmt.Errorf("%w: %s", ErrExist, r.Path)
	}
	if r.Parent == nil {
		return nil, fmt.Errorf("%w: cannot create root", ErrInvalid)
	}
	parent := fs.own(r.Parent)
	n := fs.newInode(TypeSymlink, 0o777, uid, gid)
	n.Target = target
	parent.kids[r.Name] = n
	parent.Gen++
	return n, nil
}

// Unlink removes the directory entry at p. It does not follow a final
// symlink (removing the link, not its target). Directories are rejected;
// use Rmdir.
func (fs *FS) Unlink(cwd, p string) error {
	r, err := fs.Resolve(cwd, p, false)
	if err != nil {
		return err
	}
	if r.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, r.Path)
	}
	if r.Node.Type == TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, r.Path)
	}
	parent := fs.own(r.Parent)
	delete(parent.kids, r.Name)
	parent.Gen++
	fs.own(r.Node).Nlink--
	return nil
}

// Rmdir removes an empty directory at p.
func (fs *FS) Rmdir(cwd, p string) error {
	r, err := fs.Resolve(cwd, p, false)
	if err != nil {
		return err
	}
	if r.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, r.Path)
	}
	if r.Node.Type != TypeDir {
		return fmt.Errorf("%w: %s", ErrNotDir, r.Path)
	}
	if len(r.Node.kids) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, r.Path)
	}
	if r.Parent == nil {
		return fmt.Errorf("%w: cannot remove root", ErrBusy)
	}
	parent := fs.own(r.Parent)
	delete(parent.kids, r.Name)
	parent.Gen++
	return nil
}

// Rename moves the entry at oldp to newp, replacing a non-directory target.
// Final symlinks are not followed on either side, as with rename(2).
func (fs *FS) Rename(cwd, oldp, newp string) error {
	ro, err := fs.Resolve(cwd, oldp, false)
	if err != nil {
		return err
	}
	if ro.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, ro.Path)
	}
	rn, err := fs.Resolve(cwd, newp, false)
	if err != nil {
		return err
	}
	if rn.Parent == nil {
		return fmt.Errorf("%w: cannot rename to root", ErrInvalid)
	}
	if rn.Node != nil {
		if rn.Node == ro.Node {
			return nil
		}
		if rn.Node.Type == TypeDir {
			if ro.Node.Type != TypeDir {
				return fmt.Errorf("%w: %s", ErrIsDir, rn.Path)
			}
			if len(rn.Node.kids) > 0 {
				return fmt.Errorf("%w: %s", ErrNotEmpty, rn.Path)
			}
		}
	}
	oldParent := fs.own(ro.Parent)
	delete(oldParent.kids, ro.Name)
	oldParent.Gen++
	// The two parents may be the same directory; own() is idempotent, and
	// re-resolving through it keeps the second mutation on the same copy.
	newParent := fs.own(rn.Parent)
	newParent.kids[rn.Name] = ro.Node
	newParent.Gen++
	return nil
}

// Link creates a hard link at newp to the inode named by oldp. Directories
// may not be hard-linked.
func (fs *FS) Link(cwd, oldp, newp string) error {
	ro, err := fs.Resolve(cwd, oldp, true)
	if err != nil {
		return err
	}
	if ro.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, ro.Path)
	}
	if ro.Node.Type == TypeDir {
		return fmt.Errorf("%w: %s", ErrCrossLink, ro.Path)
	}
	rn, err := fs.Resolve(cwd, newp, false)
	if err != nil {
		return err
	}
	if rn.Node != nil {
		return fmt.Errorf("%w: %s", ErrExist, rn.Path)
	}
	if rn.Parent == nil {
		return fmt.Errorf("%w: cannot link at root", ErrInvalid)
	}
	parent := fs.own(rn.Parent)
	parent.kids[rn.Name] = ro.Node
	parent.Gen++
	fs.own(ro.Node).Nlink++
	return nil
}

// RemoveAll removes the node at p and, for directories, everything under
// it. Missing paths are not an error, matching os.RemoveAll. Final symlinks
// are not followed. World-construction/perturbation helper: no permission
// checks.
func (fs *FS) RemoveAll(p string) error {
	r, err := fs.Resolve("/", p, false)
	if err != nil {
		return err
	}
	if r.Node == nil {
		return nil
	}
	if r.Parent == nil {
		return fmt.Errorf("%w: cannot remove root", ErrBusy)
	}
	parent := fs.own(r.Parent)
	delete(parent.kids, r.Name)
	parent.Gen++
	return nil
}

// WriteFile replaces the content of the regular file at p, creating it with
// the given mode/ownership if absent. It is a world-construction helper,
// not a syscall: permission checks are deliberately absent.
func (fs *FS) WriteFile(p string, data []byte, mode Mode, uid, gid int) error {
	r, err := fs.Resolve("/", p, true)
	if err != nil {
		return err
	}
	if r.Node == nil {
		parent := fs.own(r.Parent)
		n := fs.newInode(TypeRegular, mode, uid, gid)
		n.Data = append([]byte(nil), data...)
		parent.kids[r.Name] = n
		parent.Gen++
		return nil
	}
	if r.Node.Type != TypeRegular {
		return fmt.Errorf("%w: %s", ErrInvalid, r.Path)
	}
	node := fs.own(r.Node)
	node.Data = append([]byte(nil), data...)
	node.Gen++
	return nil
}

// ReadFile returns a copy of the content of the regular file at p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	n, err := fs.Lookup("/", p)
	if err != nil {
		return nil, err
	}
	if n.Type != TypeRegular {
		return nil, fmt.Errorf("%w: %s", ErrInvalid, p)
	}
	return append([]byte(nil), n.Data...), nil
}

// Exists reports whether p resolves to an existing node (following final
// symlinks).
func (fs *FS) Exists(p string) bool {
	_, err := fs.Lookup("/", p)
	return err == nil
}

// Walk visits every inode reachable from the root in depth-first order,
// calling fn with each absolute resolved path and inode. Symlinks are
// visited but not followed.
func (fs *FS) Walk(fn func(p string, n *Inode)) {
	var rec func(p string, n *Inode)
	rec = func(p string, n *Inode) {
		fn(p, n)
		if n.Type != TypeDir {
			return
		}
		for _, name := range n.Children() {
			rec(joinResolved(p, name), fs.view(n.kids[name]))
		}
	}
	rec("/", fs.view(fs.root))
}

// Clone returns a deep copy of the filesystem. Hard-link sharing within the
// tree is preserved: inodes reachable through multiple directory entries
// are cloned once. Cloning a fork flattens the copy-on-write layer — the
// result is standalone and owns every inode.
func (fs *FS) Clone() *FS {
	out := &FS{nextID: fs.nextID}
	seen := make(map[*Inode]*Inode)
	var rec func(n *Inode) *Inode
	rec = func(n *Inode) *Inode {
		n = fs.view(n)
		if c, ok := seen[n]; ok {
			return c
		}
		c := &Inode{
			ID:     n.ID,
			Type:   n.Type,
			Mode:   n.Mode,
			UID:    n.UID,
			GID:    n.GID,
			Target: n.Target,
			Nlink:  n.Nlink,
			Gen:    n.Gen,
			owner:  out,
		}
		seen[n] = c
		if n.Data != nil {
			c.Data = append([]byte(nil), n.Data...)
		}
		if n.kids != nil {
			c.kids = make(map[string]*Inode, len(n.kids))
			for name, kid := range n.kids {
				c.kids[name] = rec(kid)
			}
		}
		return c
	}
	out.root = rec(fs.root)
	return out
}

// Digest returns a hex SHA-256 over the full reachable tree — every path,
// type, mode, ownership, generation, link count, target, and content byte.
// Two filesystems with equal digests are observationally identical; the
// fork-isolation property tests compare digests before and after sibling
// mutations.
func (fs *FS) Digest() string {
	h := sha256.New()
	var num [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(num[:], uint64(v))
		h.Write(num[:])
	}
	fs.Walk(func(p string, n *Inode) {
		h.Write([]byte(p))
		h.Write([]byte{0})
		writeInt(int64(n.Type))
		writeInt(int64(n.Mode))
		writeInt(int64(n.UID))
		writeInt(int64(n.GID))
		writeInt(int64(n.Nlink))
		writeInt(n.Gen)
		writeInt(n.ID)
		h.Write([]byte(n.Target))
		h.Write([]byte{0})
		writeInt(int64(len(n.Data)))
		h.Write(n.Data)
	})
	sum := h.Sum(nil)
	return hex.EncodeToString(sum)
}

// Peek resolves absolute path p — following a final symlink only when
// follow is true — and returns its inode, or nil when the path does not
// resolve. Unlike Resolve it builds no error values or resolved-path
// strings, making misses allocation-free; it is the security oracle's hot
// snapshot lookup. Any symlink encountered mid-walk falls back to the full
// Resolve machinery.
func (fs *FS) Peek(p string, follow bool) *Inode {
	cur := fs.view(fs.root)
	var dirs [32]*Inode // ".." stack; deeper paths take the slow path
	nd := 0
	i := 0
	for i < len(p) {
		for i < len(p) && p[i] == '/' {
			i++
		}
		start := i
		for i < len(p) && p[i] != '/' {
			i++
		}
		comp := p[start:i]
		if comp == "" || comp == "." {
			continue
		}
		if comp == ".." {
			if nd > 0 {
				nd--
				cur = dirs[nd]
			}
			continue
		}
		if len(comp) > MaxNameLen || cur.Type != TypeDir {
			return nil
		}
		next := fs.view(cur.kids[comp])
		if next == nil {
			return nil
		}
		last := !hasMoreComps(p, i)
		if next.Type == TypeSymlink && (!last || follow) {
			// Symlinks need path-string splicing; delegate to Resolve.
			r, err := fs.resolve(Canon("/", p), follow, 0)
			if err != nil {
				return nil
			}
			return r.Node
		}
		if last {
			return next
		}
		if nd == len(dirs) {
			r, err := fs.resolve(Canon("/", p), follow, 0)
			if err != nil {
				return nil
			}
			return r.Node
		}
		dirs[nd] = cur
		nd++
		cur = next
	}
	return cur
}

// hasMoreComps reports whether p contains a real path component ("" and
// "." do not count) at or after index i.
func hasMoreComps(p string, i int) bool {
	for i < len(p) {
		for i < len(p) && p[i] == '/' {
			i++
		}
		start := i
		for i < len(p) && p[i] != '/' {
			i++
		}
		if c := p[start:i]; c != "" && c != "." {
			return true
		}
	}
	return false
}
