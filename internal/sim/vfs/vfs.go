// Package vfs implements an in-memory UNIX-like filesystem used as the
// environment substrate for environment-perturbation testing.
//
// The filesystem models exactly the attributes the EAI fault model (Du &
// Mathur, DSN 2000, Table 6) perturbs: existence, ownership, permission
// bits, symbolic links, file content, file names, and directories. It is
// pure mechanism: permission *checks* are performed by the kernel layer,
// which knows process credentials. The vfs layer only stores and resolves.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
)

// NodeType discriminates the three kinds of filesystem object the model
// supports.
type NodeType int

// Node types. Enums start at 1 so the zero value is invalid and cannot be
// mistaken for a real node type.
const (
	TypeRegular NodeType = iota + 1
	TypeDir
	TypeSymlink
)

// String returns a human-readable node type name.
func (t NodeType) String() string {
	switch t {
	case TypeRegular:
		return "regular"
	case TypeDir:
		return "directory"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Mode holds UNIX permission bits plus the setuid/setgid/sticky bits.
type Mode uint16

// Permission bit masks.
const (
	ModeSetUID Mode = 0o4000
	ModeSetGID Mode = 0o2000
	ModeSticky Mode = 0o1000

	ModeUserRead   Mode = 0o400
	ModeUserWrite  Mode = 0o200
	ModeUserExec   Mode = 0o100
	ModeGroupRead  Mode = 0o040
	ModeGroupWrite Mode = 0o020
	ModeGroupExec  Mode = 0o010
	ModeOtherRead  Mode = 0o004
	ModeOtherWrite Mode = 0o002
	ModeOtherExec  Mode = 0o001

	// ModePermMask selects the twelve permission-relevant bits.
	ModePermMask Mode = 0o7777
)

// String renders the mode in conventional rwx notation (e.g. "rwsr-xr-x").
func (m Mode) String() string {
	var b [9]byte
	triples := []struct {
		r, w, x Mode
		special Mode
		sch     byte // letter when special bit and exec both set
		schNoX  byte // letter when special bit set but exec clear
	}{
		{ModeUserRead, ModeUserWrite, ModeUserExec, ModeSetUID, 's', 'S'},
		{ModeGroupRead, ModeGroupWrite, ModeGroupExec, ModeSetGID, 's', 'S'},
		{ModeOtherRead, ModeOtherWrite, ModeOtherExec, ModeSticky, 't', 'T'},
	}
	for i, t := range triples {
		o := i * 3
		b[o] = '-'
		if m&t.r != 0 {
			b[o] = 'r'
		}
		b[o+1] = '-'
		if m&t.w != 0 {
			b[o+1] = 'w'
		}
		switch {
		case m&t.x != 0 && m&t.special != 0:
			b[o+2] = t.sch
		case m&t.special != 0:
			b[o+2] = t.schNoX
		case m&t.x != 0:
			b[o+2] = 'x'
		default:
			b[o+2] = '-'
		}
	}
	return string(b[:])
}

// Static errors. These mirror the errno family a real kernel would return
// and are matched by callers with errors.Is.
var (
	ErrNotExist    = errors.New("vfs: no such file or directory")
	ErrExist       = errors.New("vfs: file exists")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrLoop        = errors.New("vfs: too many levels of symbolic links")
	ErrNotEmpty    = errors.New("vfs: directory not empty")
	ErrInvalid     = errors.New("vfs: invalid argument")
	ErrCrossLink   = errors.New("vfs: hard link to directory not permitted")
	ErrBusy        = errors.New("vfs: resource busy")
	ErrNameTooLong = errors.New("vfs: file name too long")
)

// MaxNameLen bounds a single path component, mirroring NAME_MAX.
const MaxNameLen = 255

// maxSymlinkDepth bounds symlink chain traversal, mirroring SYMLOOP_MAX.
const maxSymlinkDepth = 40

// Inode is a single filesystem object. Directories hold children by name;
// regular files hold content; symlinks hold a target path.
type Inode struct {
	ID     int64
	Type   NodeType
	Mode   Mode
	UID    int
	GID    int
	Data   []byte            // TypeRegular payload
	Target string            // TypeSymlink target path
	kids   map[string]*Inode // TypeDir children
	Nlink  int

	// Gen increments on every content mutation; the TOCTTOU baseline and
	// the content-invariance perturbation use it to detect change between
	// check and use.
	Gen int64
}

// IsDir reports whether the inode is a directory.
func (n *Inode) IsDir() bool { return n.Type == TypeDir }

// IsSymlink reports whether the inode is a symbolic link.
func (n *Inode) IsSymlink() bool { return n.Type == TypeSymlink }

// Children returns the sorted child names of a directory inode. It returns
// nil for non-directories.
func (n *Inode) Children() []string {
	if n.Type != TypeDir {
		return nil
	}
	names := make([]string, 0, len(n.kids))
	for name := range n.kids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Child returns the named child of a directory inode, or nil.
func (n *Inode) Child(name string) *Inode {
	if n.Type != TypeDir {
		return nil
	}
	return n.kids[name]
}

// FS is an in-memory filesystem tree. The zero value is not usable; create
// instances with New.
type FS struct {
	root   *Inode
	nextID int64
}

// New returns an empty filesystem whose root directory is owned by root
// (uid 0, gid 0) with mode 0755.
func New() *FS {
	fs := &FS{}
	fs.root = fs.newInode(TypeDir, 0o755, 0, 0)
	return fs
}

// Root returns the root directory inode.
func (fs *FS) Root() *Inode { return fs.root }

func (fs *FS) newInode(t NodeType, mode Mode, uid, gid int) *Inode {
	fs.nextID++
	n := &Inode{
		ID:    fs.nextID,
		Type:  t,
		Mode:  mode & ModePermMask,
		UID:   uid,
		GID:   gid,
		Nlink: 1,
	}
	if t == TypeDir {
		n.kids = make(map[string]*Inode)
	}
	return n
}

// Canon returns path p made absolute against cwd and lexically cleaned.
// It performs no symlink resolution.
func Canon(cwd, p string) string {
	if p == "" {
		return path.Clean(cwd)
	}
	if !strings.HasPrefix(p, "/") {
		if cwd == "" {
			cwd = "/"
		}
		p = cwd + "/" + p
	}
	return path.Clean(p)
}

// SplitPath splits a cleaned absolute path into components, omitting the
// leading slash. The root path yields an empty slice.
func SplitPath(p string) []string {
	p = path.Clean(p)
	if p == "/" || p == "" || p == "." {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// Resolved is the result of a path walk.
type Resolved struct {
	// Node is the inode the path names, or nil when the final component
	// does not exist.
	Node *Inode
	// Parent is the directory containing the final component. It is always
	// non-nil on success and when only the final component is missing.
	Parent *Inode
	// Name is the final path component ("" for the root).
	Name string
	// Path is the fully resolved absolute path with all intermediate (and,
	// if followed, final) symlinks expanded. This is the identity the
	// security oracle uses: it names the object actually affected.
	Path string
}

// Resolve walks absolute-or-relative path p from cwd. Intermediate symlinks
// are always followed; the final component is followed only when followLast
// is true. ".." is resolved during the walk, after symlink expansion — as a
// real kernel does — so "/link/../x" with /link -> /etc names /x, not a
// sibling of the link. A missing final component yields Resolved with Node
// nil and no error, so callers can implement create semantics; missing
// intermediate components yield ErrNotExist.
func (fs *FS) Resolve(cwd, p string, followLast bool) (Resolved, error) {
	abs := p
	if !strings.HasPrefix(abs, "/") {
		if cwd == "" {
			cwd = "/"
		}
		abs = strings.TrimSuffix(cwd, "/") + "/" + abs
	}
	return fs.resolve(abs, followLast, 0)
}

// splitRaw splits an absolute path into components, dropping empties and
// "." but preserving ".." for the walk to handle.
func splitRaw(abs string) []string {
	parts := strings.Split(abs, "/")
	out := parts[:0]
	for _, c := range parts {
		if c == "" || c == "." {
			continue
		}
		out = append(out, c)
	}
	return out
}

func (fs *FS) resolve(abs string, followLast bool, depth int) (Resolved, error) {
	if depth > maxSymlinkDepth {
		return Resolved{}, fmt.Errorf("%w: %s", ErrLoop, abs)
	}
	comps := splitRaw(abs)
	// stack holds the directory chain from the root; names the component
	// names entering each stack level past the root.
	stack := []*Inode{fs.root}
	var names []string
	pathOf := func() string {
		if len(names) == 0 {
			return "/"
		}
		return "/" + strings.Join(names, "/")
	}
	for i := 0; i < len(comps); i++ {
		comp := comps[i]
		cur := stack[len(stack)-1]
		last := i == len(comps)-1
		if comp == ".." {
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
				names = names[:len(names)-1]
			}
			continue
		}
		if len(comp) > MaxNameLen {
			return Resolved{}, fmt.Errorf("%w: %q", ErrNameTooLong, comp)
		}
		if cur.Type != TypeDir {
			return Resolved{}, fmt.Errorf("%w: %s", ErrNotDir, pathOf())
		}
		next := cur.kids[comp]
		if next == nil {
			if last {
				return Resolved{
					Parent: cur,
					Name:   comp,
					Path:   joinResolved(pathOf(), comp),
				}, nil
			}
			return Resolved{}, fmt.Errorf("%w: %s", ErrNotExist, joinResolved(pathOf(), comp))
		}
		if next.Type == TypeSymlink && (!last || followLast) {
			// Re-resolve with the link target spliced in; the recursive
			// walk handles any ".." inside the target or the remainder.
			rest := strings.Join(comps[i+1:], "/")
			target := next.Target
			if !strings.HasPrefix(target, "/") {
				target = joinResolved(pathOf(), target)
			}
			if rest != "" {
				target = target + "/" + rest
			}
			return fs.resolve(target, followLast, depth+1)
		}
		if last {
			return Resolved{
				Node:   next,
				Parent: cur,
				Name:   comp,
				Path:   joinResolved(pathOf(), comp),
			}, nil
		}
		stack = append(stack, next)
		names = append(names, comp)
	}
	// The path named an already-walked directory (root, trailing "..", or
	// trailing ".").
	res := Resolved{Node: stack[len(stack)-1], Path: pathOf()}
	if len(stack) > 1 {
		res.Parent = stack[len(stack)-2]
		res.Name = names[len(names)-1]
	}
	return res, nil
}

func joinResolved(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// Lookup resolves p (following the final symlink) and returns its inode.
func (fs *FS) Lookup(cwd, p string) (*Inode, error) {
	r, err := fs.Resolve(cwd, p, true)
	if err != nil {
		return nil, err
	}
	if r.Node == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, r.Path)
	}
	return r.Node, nil
}

// LookupNoFollow resolves p without following a final symlink.
func (fs *FS) LookupNoFollow(cwd, p string) (*Inode, error) {
	r, err := fs.Resolve(cwd, p, false)
	if err != nil {
		return nil, err
	}
	if r.Node == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, r.Path)
	}
	return r.Node, nil
}

// Create makes a regular file at p owned by uid/gid. If the path already
// names a node and excl is true, ErrExist is returned; when excl is false
// an existing regular file (or final symlink target) is truncated and
// returned — faithfully reproducing the creat(2) semantics whose misuse the
// lpr case study (paper Section 3.4) exploits.
func (fs *FS) Create(cwd, p string, mode Mode, uid, gid int, excl bool) (*Inode, error) {
	r, err := fs.Resolve(cwd, p, true)
	if err != nil {
		return nil, err
	}
	if r.Node != nil {
		if excl {
			return nil, fmt.Errorf("%w: %s", ErrExist, r.Path)
		}
		if r.Node.Type == TypeDir {
			return nil, fmt.Errorf("%w: %s", ErrIsDir, r.Path)
		}
		r.Node.Data = nil
		r.Node.Gen++
		return r.Node, nil
	}
	if r.Parent == nil {
		return nil, fmt.Errorf("%w: cannot create root", ErrInvalid)
	}
	n := fs.newInode(TypeRegular, mode, uid, gid)
	r.Parent.kids[r.Name] = n
	r.Parent.Gen++
	return n, nil
}

// Mkdir creates a directory at p.
func (fs *FS) Mkdir(cwd, p string, mode Mode, uid, gid int) (*Inode, error) {
	r, err := fs.Resolve(cwd, p, true)
	if err != nil {
		return nil, err
	}
	if r.Node != nil {
		return nil, fmt.Errorf("%w: %s", ErrExist, r.Path)
	}
	if r.Parent == nil {
		return nil, fmt.Errorf("%w: cannot create root", ErrInvalid)
	}
	n := fs.newInode(TypeDir, mode, uid, gid)
	r.Parent.kids[r.Name] = n
	r.Parent.Gen++
	return n, nil
}

// MkdirAll creates directory p and any missing parents, each with the given
// mode and ownership. Existing directories are left untouched.
func (fs *FS) MkdirAll(cwd, p string, mode Mode, uid, gid int) error {
	abs := Canon(cwd, p)
	comps := SplitPath(abs)
	cur := "/"
	for _, comp := range comps {
		cur = joinResolved(cur, comp)
		r, err := fs.Resolve("/", cur, true)
		if err != nil {
			return err
		}
		if r.Node != nil {
			if r.Node.Type != TypeDir {
				return fmt.Errorf("%w: %s", ErrNotDir, cur)
			}
			continue
		}
		if _, err := fs.Mkdir("/", cur, mode, uid, gid); err != nil {
			return err
		}
	}
	return nil
}

// Symlink creates a symbolic link at p pointing at target. The link itself
// is created with mode 0777 as on most UNIX systems.
func (fs *FS) Symlink(cwd, target, p string, uid, gid int) (*Inode, error) {
	r, err := fs.Resolve(cwd, p, false)
	if err != nil {
		return nil, err
	}
	if r.Node != nil {
		return nil, fmt.Errorf("%w: %s", ErrExist, r.Path)
	}
	if r.Parent == nil {
		return nil, fmt.Errorf("%w: cannot create root", ErrInvalid)
	}
	n := fs.newInode(TypeSymlink, 0o777, uid, gid)
	n.Target = target
	r.Parent.kids[r.Name] = n
	r.Parent.Gen++
	return n, nil
}

// Unlink removes the directory entry at p. It does not follow a final
// symlink (removing the link, not its target). Directories are rejected;
// use Rmdir.
func (fs *FS) Unlink(cwd, p string) error {
	r, err := fs.Resolve(cwd, p, false)
	if err != nil {
		return err
	}
	if r.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, r.Path)
	}
	if r.Node.Type == TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, r.Path)
	}
	delete(r.Parent.kids, r.Name)
	r.Parent.Gen++
	r.Node.Nlink--
	return nil
}

// Rmdir removes an empty directory at p.
func (fs *FS) Rmdir(cwd, p string) error {
	r, err := fs.Resolve(cwd, p, false)
	if err != nil {
		return err
	}
	if r.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, r.Path)
	}
	if r.Node.Type != TypeDir {
		return fmt.Errorf("%w: %s", ErrNotDir, r.Path)
	}
	if len(r.Node.kids) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, r.Path)
	}
	if r.Parent == nil {
		return fmt.Errorf("%w: cannot remove root", ErrBusy)
	}
	delete(r.Parent.kids, r.Name)
	r.Parent.Gen++
	return nil
}

// Rename moves the entry at oldp to newp, replacing a non-directory target.
// Final symlinks are not followed on either side, as with rename(2).
func (fs *FS) Rename(cwd, oldp, newp string) error {
	ro, err := fs.Resolve(cwd, oldp, false)
	if err != nil {
		return err
	}
	if ro.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, ro.Path)
	}
	rn, err := fs.Resolve(cwd, newp, false)
	if err != nil {
		return err
	}
	if rn.Parent == nil {
		return fmt.Errorf("%w: cannot rename to root", ErrInvalid)
	}
	if rn.Node != nil {
		if rn.Node == ro.Node {
			return nil
		}
		if rn.Node.Type == TypeDir {
			if ro.Node.Type != TypeDir {
				return fmt.Errorf("%w: %s", ErrIsDir, rn.Path)
			}
			if len(rn.Node.kids) > 0 {
				return fmt.Errorf("%w: %s", ErrNotEmpty, rn.Path)
			}
		}
	}
	delete(ro.Parent.kids, ro.Name)
	ro.Parent.Gen++
	rn.Parent.kids[rn.Name] = ro.Node
	rn.Parent.Gen++
	return nil
}

// Link creates a hard link at newp to the inode named by oldp. Directories
// may not be hard-linked.
func (fs *FS) Link(cwd, oldp, newp string) error {
	ro, err := fs.Resolve(cwd, oldp, true)
	if err != nil {
		return err
	}
	if ro.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotExist, ro.Path)
	}
	if ro.Node.Type == TypeDir {
		return fmt.Errorf("%w: %s", ErrCrossLink, ro.Path)
	}
	rn, err := fs.Resolve(cwd, newp, false)
	if err != nil {
		return err
	}
	if rn.Node != nil {
		return fmt.Errorf("%w: %s", ErrExist, rn.Path)
	}
	if rn.Parent == nil {
		return fmt.Errorf("%w: cannot link at root", ErrInvalid)
	}
	rn.Parent.kids[rn.Name] = ro.Node
	rn.Parent.Gen++
	ro.Node.Nlink++
	return nil
}

// RemoveAll removes the node at p and, for directories, everything under
// it. Missing paths are not an error, matching os.RemoveAll. Final symlinks
// are not followed. World-construction/perturbation helper: no permission
// checks.
func (fs *FS) RemoveAll(p string) error {
	r, err := fs.Resolve("/", p, false)
	if err != nil {
		return err
	}
	if r.Node == nil {
		return nil
	}
	if r.Parent == nil {
		return fmt.Errorf("%w: cannot remove root", ErrBusy)
	}
	delete(r.Parent.kids, r.Name)
	r.Parent.Gen++
	return nil
}

// WriteFile replaces the content of the regular file at p, creating it with
// the given mode/ownership if absent. It is a world-construction helper,
// not a syscall: permission checks are deliberately absent.
func (fs *FS) WriteFile(p string, data []byte, mode Mode, uid, gid int) error {
	r, err := fs.Resolve("/", p, true)
	if err != nil {
		return err
	}
	if r.Node == nil {
		n := fs.newInode(TypeRegular, mode, uid, gid)
		n.Data = append([]byte(nil), data...)
		r.Parent.kids[r.Name] = n
		r.Parent.Gen++
		return nil
	}
	if r.Node.Type != TypeRegular {
		return fmt.Errorf("%w: %s", ErrInvalid, r.Path)
	}
	r.Node.Data = append([]byte(nil), data...)
	r.Node.Gen++
	return nil
}

// ReadFile returns a copy of the content of the regular file at p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	n, err := fs.Lookup("/", p)
	if err != nil {
		return nil, err
	}
	if n.Type != TypeRegular {
		return nil, fmt.Errorf("%w: %s", ErrInvalid, p)
	}
	return append([]byte(nil), n.Data...), nil
}

// Exists reports whether p resolves to an existing node (following final
// symlinks).
func (fs *FS) Exists(p string) bool {
	_, err := fs.Lookup("/", p)
	return err == nil
}

// Walk visits every inode reachable from the root in depth-first order,
// calling fn with each absolute resolved path and inode. Symlinks are
// visited but not followed.
func (fs *FS) Walk(fn func(p string, n *Inode)) {
	var rec func(p string, n *Inode)
	rec = func(p string, n *Inode) {
		fn(p, n)
		if n.Type != TypeDir {
			return
		}
		for _, name := range n.Children() {
			rec(joinResolved(p, name), n.kids[name])
		}
	}
	rec("/", fs.root)
}

// Clone returns a deep copy of the filesystem. Hard-link sharing within the
// tree is preserved: inodes reachable through multiple directory entries
// are cloned once.
func (fs *FS) Clone() *FS {
	seen := make(map[*Inode]*Inode)
	var rec func(n *Inode) *Inode
	rec = func(n *Inode) *Inode {
		if c, ok := seen[n]; ok {
			return c
		}
		c := &Inode{
			ID:     n.ID,
			Type:   n.Type,
			Mode:   n.Mode,
			UID:    n.UID,
			GID:    n.GID,
			Target: n.Target,
			Nlink:  n.Nlink,
			Gen:    n.Gen,
		}
		seen[n] = c
		if n.Data != nil {
			c.Data = append([]byte(nil), n.Data...)
		}
		if n.kids != nil {
			c.kids = make(map[string]*Inode, len(n.kids))
			for name, kid := range n.kids {
				c.kids[name] = rec(kid)
			}
		}
		return c
	}
	return &FS{root: rec(fs.root), nextID: fs.nextID}
}
