package vfs

import "testing"

// forkFuzzBase builds the fixed world every fuzz iteration forks: a few
// directories, files of different owners, a symlink, and a hard link,
// so copy-up paths for every inode type are reachable.
func forkFuzzBase(t interface{ Fatal(...any) }) *FS {
	fs := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.MkdirAll("/", "/etc", 0o755, 0, 0))
	must(fs.WriteFile("/etc/passwd", []byte("root:x:0:0\n"), 0o644, 0, 0))
	must(fs.WriteFile("/etc/shadow", []byte("root:$1$HASH$:1:\n"), 0o600, 0, 0))
	must(fs.MkdirAll("/", "/home/alice/sub", 0o755, 100, 100))
	must(fs.WriteFile("/home/alice/notes", []byte("clean\n"), 0o644, 100, 100))
	must(fs.MkdirAll("/", "/tmp", 0o777, 0, 0))
	if _, err := fs.Symlink("/", "/etc/passwd", "/tmp/pw", 100, 100); err != nil {
		t.Fatal(err)
	}
	must(fs.Link("/", "/home/alice/notes", "/tmp/notes-link"))
	return fs
}

// fuzzPaths is the object pool the mutation script draws from: existing
// base objects plus fresh names, so every script mixes copy-up hits on
// shared inodes with plain creations.
var fuzzPaths = []string{
	"/etc/passwd", "/etc/shadow", "/etc",
	"/home/alice/notes", "/home/alice/sub", "/home/alice",
	"/tmp/pw", "/tmp/notes-link", "/tmp",
	"/tmp/new", "/home/alice/new", "/new", "/etc/new",
}

// applyScript interprets script as a mutation program against fs: each
// step consumes an opcode byte and path-index bytes. Errors from the
// filesystem are fine (a script may unlink a directory or mkdir over a
// file) — the property under test is isolation, not success.
func applyScript(fs *FS, script []byte) {
	i := 0
	next := func() byte {
		if i >= len(script) {
			return 0
		}
		b := script[i]
		i++
		return b
	}
	path := func() string { return fuzzPaths[int(next())%len(fuzzPaths)] }
	for i < len(script) {
		switch next() % 9 {
		case 0:
			fs.WriteFile(path(), []byte{next(), next(), next()}, 0o644, 100, 100)
		case 1:
			fs.Create("/", path(), 0o600, 100, 100, false)
		case 2:
			fs.Mkdir("/", path(), 0o755, 100, 100)
		case 3:
			fs.Unlink("/", path())
		case 4:
			fs.Rmdir("/", path())
		case 5:
			fs.Rename("/", path(), path())
		case 6:
			fs.Symlink("/", path(), path(), 100, 100)
		case 7:
			fs.Link("/", path(), path())
		case 8:
			fs.RemoveAll(path())
		}
	}
}

// FuzzForkIsolation is the copy-on-write correctness fuzzer: two forks
// of one frozen base each run an arbitrary mutation script, and no
// script may ever move a byte of the base or of the sibling. The first
// fork is then forked again mid-mutation to cover chained copy-up
// (fork-of-fork view chains).
func FuzzForkIsolation(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 1, 2, 3}, []byte{8, 0})
	f.Add([]byte{5, 0, 3, 7, 1, 2}, []byte{3, 0, 3, 1, 3, 2})
	f.Add([]byte{8, 2, 8, 5, 8, 8}, []byte{6, 9, 0, 0, 1, 1})
	base := forkFuzzBase(f)
	base.Freeze()
	baseDigest := base.Digest()
	f.Fuzz(func(t *testing.T, scriptA, scriptB []byte) {
		a, b := base.Fork(), base.Fork()
		applyScript(a, scriptA)
		bClean := b.Digest()
		// Chained fork: freeze a mid-mutation state and fork it — the
		// grandchild's view chains (base -> a -> grandchild) must resolve.
		a.Freeze()
		aDigest := a.Digest()
		g := a.Fork()
		applyScript(g, scriptB)
		if got := a.Digest(); got != aDigest {
			t.Fatalf("grandchild script mutated its frozen parent:\n  was %s\n  now %s", aDigest, got)
		}
		if got := b.Digest(); got != bClean {
			t.Fatalf("scripts on a/g mutated sibling fork b:\n  was %s\n  now %s", bClean, got)
		}
		if got := base.Digest(); got != baseDigest {
			t.Fatalf("fork scripts mutated the frozen base:\n  was %s\n  now %s", baseDigest, got)
		}
		// The mutated forks must still be internally consistent: a full
		// deep clone of a fork walks every reachable inode and must
		// reproduce the fork's digest exactly.
		if got := g.Clone().Digest(); got != g.Digest() {
			t.Fatalf("fork deep-clone digest drifted: %s != %s", got, g.Digest())
		}
	})
}
