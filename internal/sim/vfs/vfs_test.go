package vfs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func newTestFS(t *testing.T) *FS {
	t.Helper()
	fs := New()
	mustMkdirAll := func(p string) {
		t.Helper()
		if err := fs.MkdirAll("/", p, 0o755, 0, 0); err != nil {
			t.Fatalf("MkdirAll(%q): %v", p, err)
		}
	}
	mustMkdirAll("/etc")
	mustMkdirAll("/tmp")
	mustMkdirAll("/home/alice")
	mustMkdirAll("/home/bob")
	mustMkdirAll("/var/spool/lpd")
	if err := fs.WriteFile("/etc/passwd", []byte("root:x:0:0\nalice:x:100:100\n"), 0o644, 0, 0); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := fs.WriteFile("/etc/shadow", []byte("root:HASH:0\n"), 0o600, 0, 0); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return fs
}

func TestCanon(t *testing.T) {
	t.Parallel()
	tests := []struct {
		cwd, p, want string
	}{
		{"/", "etc/passwd", "/etc/passwd"},
		{"/home/alice", "doc.txt", "/home/alice/doc.txt"},
		{"/home/alice", "../bob/x", "/home/bob/x"},
		{"/home/alice", "/abs", "/abs"},
		{"/", "a/./b//c", "/a/b/c"},
		{"/", "..", "/"},
		{"/", "", "/"},
		{"/a/b", "../../../..", "/"},
		{"", "x", "/x"},
	}
	for _, tt := range tests {
		if got := Canon(tt.cwd, tt.p); got != tt.want {
			t.Errorf("Canon(%q, %q) = %q, want %q", tt.cwd, tt.p, got, tt.want)
		}
	}
}

func TestSplitPath(t *testing.T) {
	t.Parallel()
	tests := []struct {
		p    string
		want []string
	}{
		{"/", nil},
		{"", nil},
		{"/a", []string{"a"}},
		{"/a/b/c", []string{"a", "b", "c"}},
	}
	for _, tt := range tests {
		got := SplitPath(tt.p)
		if len(got) != len(tt.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", tt.p, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("SplitPath(%q)[%d] = %q, want %q", tt.p, i, got[i], tt.want[i])
			}
		}
	}
}

func TestLookup(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	n, err := fs.Lookup("/", "/etc/passwd")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if n.Type != TypeRegular {
		t.Errorf("type = %v, want regular", n.Type)
	}
	if !strings.Contains(string(n.Data), "alice") {
		t.Errorf("content missing alice: %q", n.Data)
	}
	if _, err := fs.Lookup("/", "/etc/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing file: err = %v, want ErrNotExist", err)
	}
	if _, err := fs.Lookup("/", "/etc/passwd/sub"); !errors.Is(err, ErrNotDir) {
		t.Errorf("file-as-dir: err = %v, want ErrNotDir", err)
	}
}

func TestLookupRelative(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	n, err := fs.Lookup("/etc", "passwd")
	if err != nil {
		t.Fatalf("relative Lookup: %v", err)
	}
	if n.Type != TypeRegular {
		t.Errorf("type = %v, want regular", n.Type)
	}
	if _, err := fs.Lookup("/home/alice", "../../etc/passwd"); err != nil {
		t.Errorf("dotdot Lookup: %v", err)
	}
}

func TestCreate(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	n, err := fs.Create("/", "/tmp/new.txt", 0o644, 100, 100, false)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if n.UID != 100 || n.GID != 100 {
		t.Errorf("ownership = %d/%d, want 100/100", n.UID, n.GID)
	}
	// Non-exclusive create of an existing file truncates.
	n.Data = []byte("old content")
	n2, err := fs.Create("/", "/tmp/new.txt", 0o644, 0, 0, false)
	if err != nil {
		t.Fatalf("re-Create: %v", err)
	}
	if n2 != n {
		t.Error("re-Create returned a different inode")
	}
	if len(n2.Data) != 0 {
		t.Errorf("re-Create did not truncate: %q", n2.Data)
	}
	if n2.UID != 100 {
		t.Errorf("re-Create changed ownership to %d", n2.UID)
	}
	// Exclusive create of an existing file fails.
	if _, err := fs.Create("/", "/tmp/new.txt", 0o644, 0, 0, true); !errors.Is(err, ErrExist) {
		t.Errorf("excl create: err = %v, want ErrExist", err)
	}
	// Create over a directory fails.
	if _, err := fs.Create("/", "/tmp", 0o644, 0, 0, false); !errors.Is(err, ErrIsDir) {
		t.Errorf("create over dir: err = %v, want ErrIsDir", err)
	}
	// Create in a missing directory fails.
	if _, err := fs.Create("/", "/nodir/x", 0o644, 0, 0, false); !errors.Is(err, ErrNotExist) {
		t.Errorf("create in missing dir: err = %v, want ErrNotExist", err)
	}
}

func TestCreateFollowsFinalSymlink(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if _, err := fs.Symlink("/", "/etc/passwd", "/tmp/trap", 100, 100); err != nil {
		t.Fatalf("Symlink: %v", err)
	}
	// creat() on a symlink truncates the *target* — the lpr flaw.
	n, err := fs.Create("/", "/tmp/trap", 0o644, 0, 0, false)
	if err != nil {
		t.Fatalf("Create through symlink: %v", err)
	}
	passwd, err := fs.Lookup("/", "/etc/passwd")
	if err != nil {
		t.Fatalf("Lookup passwd: %v", err)
	}
	if n != passwd {
		t.Error("create through symlink did not reach target inode")
	}
	if len(passwd.Data) != 0 {
		t.Error("target was not truncated")
	}
}

func TestMkdirAndMkdirAll(t *testing.T) {
	t.Parallel()
	fs := New()
	if _, err := fs.Mkdir("/", "/a", 0o700, 5, 5); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if _, err := fs.Mkdir("/", "/a", 0o700, 5, 5); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate Mkdir: err = %v, want ErrExist", err)
	}
	if err := fs.MkdirAll("/", "/a/b/c/d", 0o755, 5, 5); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	n, err := fs.Lookup("/", "/a/b/c/d")
	if err != nil || n.Type != TypeDir {
		t.Fatalf("Lookup after MkdirAll: %v (%v)", err, n)
	}
	// MkdirAll over an existing file fails.
	if err := fs.WriteFile("/a/f", nil, 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/", "/a/f/x", 0o755, 0, 0); err == nil {
		t.Error("MkdirAll through a file succeeded")
	}
}

func TestSymlinkResolution(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if _, err := fs.Symlink("/", "/etc", "/tmp/etclink", 0, 0); err != nil {
		t.Fatalf("Symlink: %v", err)
	}
	n, err := fs.Lookup("/", "/tmp/etclink/passwd")
	if err != nil {
		t.Fatalf("Lookup through dir symlink: %v", err)
	}
	if n.Type != TypeRegular {
		t.Errorf("type = %v", n.Type)
	}
	// Relative symlink target.
	if _, err := fs.Symlink("/", "passwd", "/etc/pw", 0, 0); err != nil {
		t.Fatalf("Symlink relative: %v", err)
	}
	if _, err := fs.Lookup("/", "/etc/pw"); err != nil {
		t.Errorf("relative symlink: %v", err)
	}
	// NoFollow sees the link itself.
	ln, err := fs.LookupNoFollow("/", "/etc/pw")
	if err != nil {
		t.Fatalf("LookupNoFollow: %v", err)
	}
	if ln.Type != TypeSymlink || ln.Target != "passwd" {
		t.Errorf("link = %+v", ln)
	}
}

func TestSymlinkLoop(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if _, err := fs.Symlink("/", "/tmp/b", "/tmp/a", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Symlink("/", "/tmp/a", "/tmp/b", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("/", "/tmp/a"); !errors.Is(err, ErrLoop) {
		t.Errorf("loop: err = %v, want ErrLoop", err)
	}
	// Self-loop.
	if _, err := fs.Symlink("/", "/tmp/self", "/tmp/self", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("/", "/tmp/self"); !errors.Is(err, ErrLoop) {
		t.Errorf("self loop: err = %v, want ErrLoop", err)
	}
}

func TestResolvedPathIdentity(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if _, err := fs.Symlink("/", "/etc/passwd", "/tmp/link", 100, 100); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Resolve("/", "/tmp/link", true)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if r.Path != "/etc/passwd" {
		t.Errorf("resolved path = %q, want /etc/passwd — the oracle depends on post-symlink identity", r.Path)
	}
	rn, err := fs.Resolve("/", "/tmp/link", false)
	if err != nil {
		t.Fatalf("Resolve nofollow: %v", err)
	}
	if rn.Path != "/tmp/link" {
		t.Errorf("nofollow path = %q, want /tmp/link", rn.Path)
	}
}

func TestUnlink(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if err := fs.Unlink("/", "/etc/passwd"); err != nil {
		t.Fatalf("Unlink: %v", err)
	}
	if fs.Exists("/etc/passwd") {
		t.Error("file still exists after Unlink")
	}
	if err := fs.Unlink("/", "/etc/passwd"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double unlink: err = %v, want ErrNotExist", err)
	}
	if err := fs.Unlink("/", "/etc"); !errors.Is(err, ErrIsDir) {
		t.Errorf("unlink dir: err = %v, want ErrIsDir", err)
	}
	// Unlinking a symlink removes the link, not the target.
	if _, err := fs.Symlink("/", "/etc/shadow", "/tmp/sh", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/", "/tmp/sh"); err != nil {
		t.Fatalf("unlink symlink: %v", err)
	}
	if !fs.Exists("/etc/shadow") {
		t.Error("unlinking the symlink removed the target")
	}
}

func TestRmdir(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if err := fs.Rmdir("/", "/home/alice"); err != nil {
		t.Fatalf("Rmdir: %v", err)
	}
	if err := fs.Rmdir("/", "/home"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("non-empty rmdir: err = %v, want ErrNotEmpty", err)
	}
	if err := fs.Rmdir("/", "/etc/passwd"); !errors.Is(err, ErrNotDir) {
		t.Errorf("rmdir file: err = %v, want ErrNotDir", err)
	}
}

func TestRename(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if err := fs.Rename("/", "/etc/passwd", "/tmp/pw"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if fs.Exists("/etc/passwd") {
		t.Error("source still exists")
	}
	if !fs.Exists("/tmp/pw") {
		t.Error("destination missing")
	}
	// Replace an existing file.
	if err := fs.WriteFile("/tmp/other", []byte("x"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/", "/tmp/pw", "/tmp/other"); err != nil {
		t.Fatalf("replacing rename: %v", err)
	}
	data, err := fs.ReadFile("/tmp/other")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "alice") {
		t.Errorf("rename did not move content: %q", data)
	}
	if err := fs.Rename("/", "/nope", "/tmp/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename missing: err = %v, want ErrNotExist", err)
	}
}

func TestLink(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if err := fs.Link("/", "/etc/passwd", "/tmp/pwlink"); err != nil {
		t.Fatalf("Link: %v", err)
	}
	a, _ := fs.Lookup("/", "/etc/passwd")
	b, _ := fs.Lookup("/", "/tmp/pwlink")
	if a != b {
		t.Error("hard link inodes differ")
	}
	if a.Nlink != 2 {
		t.Errorf("Nlink = %d, want 2", a.Nlink)
	}
	if err := fs.Link("/", "/etc", "/tmp/etclink"); !errors.Is(err, ErrCrossLink) {
		t.Errorf("link dir: err = %v, want ErrCrossLink", err)
	}
	if err := fs.Unlink("/", "/tmp/pwlink"); err != nil {
		t.Fatal(err)
	}
	if a.Nlink != 1 {
		t.Errorf("Nlink after unlink = %d, want 1", a.Nlink)
	}
}

func TestNameTooLong(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	long := strings.Repeat("a", MaxNameLen+1)
	if _, err := fs.Lookup("/", "/tmp/"+long); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("long name: err = %v, want ErrNameTooLong", err)
	}
}

func TestWalk(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	var paths []string
	fs.Walk(func(p string, n *Inode) { paths = append(paths, p) })
	want := map[string]bool{"/": false, "/etc/passwd": false, "/home/alice": false, "/var/spool/lpd": false}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("Walk did not visit %s", p)
		}
	}
	// Walk order is deterministic (children sorted).
	var paths2 []string
	fs.Walk(func(p string, n *Inode) { paths2 = append(paths2, p) })
	if strings.Join(paths, "|") != strings.Join(paths2, "|") {
		t.Error("Walk order is not deterministic")
	}
}

func TestClone(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	if err := fs.Link("/", "/etc/passwd", "/tmp/hardlink"); err != nil {
		t.Fatal(err)
	}
	clone := fs.Clone()
	// Mutating the clone must not affect the original.
	if err := clone.WriteFile("/etc/passwd", []byte("tampered"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	orig, err := fs.ReadFile("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) == "tampered" {
		t.Error("clone shares data with original")
	}
	// Hard-link identity is preserved inside the clone.
	a, _ := clone.Lookup("/", "/etc/passwd")
	b, _ := clone.Lookup("/", "/tmp/hardlink")
	if a != b {
		t.Error("clone broke hard-link sharing")
	}
	if string(b.Data) != "tampered" {
		t.Errorf("hard link content = %q", b.Data)
	}
}

func TestGenBumpsOnMutation(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	n, err := fs.Lookup("/", "/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	g := n.Gen
	if err := fs.WriteFile("/etc/passwd", []byte("new"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if n.Gen <= g {
		t.Error("Gen did not advance on WriteFile")
	}
	dir, err := fs.Lookup("/", "/tmp")
	if err != nil {
		t.Fatal(err)
	}
	dg := dir.Gen
	if _, err := fs.Create("/", "/tmp/f", 0o644, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	if dir.Gen <= dg {
		t.Error("directory Gen did not advance on Create")
	}
}

func TestModeString(t *testing.T) {
	t.Parallel()
	tests := []struct {
		m    Mode
		want string
	}{
		{0o755, "rwxr-xr-x"},
		{0o644, "rw-r--r--"},
		{0o4755, "rwsr-xr-x"},
		{0o4644, "rwSr--r--"},
		{0o2755, "rwxr-sr-x"},
		{0o1777, "rwxrwxrwt"},
		{0o1666, "rw-rw-rwT"},
		{0, "---------"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("Mode(%o).String() = %q, want %q", uint16(tt.m), got, tt.want)
		}
	}
}

func TestNodeTypeString(t *testing.T) {
	t.Parallel()
	if TypeRegular.String() != "regular" || TypeDir.String() != "directory" ||
		TypeSymlink.String() != "symlink" {
		t.Error("NodeType.String mismatch")
	}
	if !strings.Contains(NodeType(99).String(), "99") {
		t.Error("unknown NodeType should include numeric value")
	}
}

// Property: Canon always yields a cleaned absolute path.
func TestCanonAlwaysAbsoluteClean(t *testing.T) {
	t.Parallel()
	f := func(cwd, p string) bool {
		got := Canon("/"+sanitize(cwd), sanitize(p))
		return strings.HasPrefix(got, "/") && !strings.Contains(got, "//") &&
			(got == "/" || !strings.HasSuffix(got, "/"))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after Create(p), Lookup(p) finds a regular file, for arbitrary
// valid names.
func TestCreateLookupRoundTrip(t *testing.T) {
	t.Parallel()
	fs := newTestFS(t)
	f := func(raw string) bool {
		name := sanitize(raw)
		if name == "" || len(name) > MaxNameLen {
			return true
		}
		p := "/tmp/" + name
		if _, err := fs.Create("/", p, 0o644, 1, 1, false); err != nil {
			return false
		}
		n, err := fs.Lookup("/", p)
		return err == nil && n.Type == TypeRegular
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Clone is observationally equal to the original — every path
// visited by Walk exists in the clone with the same type, mode, ownership
// and content.
func TestClonePreservesTree(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	fs := newTestFS(t)
	// Grow a random tree.
	dirs := []string{"/tmp"}
	for i := 0; i < 60; i++ {
		parent := dirs[rng.Intn(len(dirs))]
		name := fmt.Sprintf("n%d", i)
		switch rng.Intn(3) {
		case 0:
			p := parent + "/" + name
			if _, err := fs.Mkdir("/", p, Mode(rng.Intn(0o1000)), rng.Intn(3), rng.Intn(3)); err == nil {
				dirs = append(dirs, p)
			}
		case 1:
			data := make([]byte, rng.Intn(64))
			rng.Read(data)
			_ = fs.WriteFile(parent+"/"+name, data, Mode(rng.Intn(0o1000)), rng.Intn(3), rng.Intn(3))
		case 2:
			_, _ = fs.Symlink("/", "/etc/passwd", parent+"/"+name, 0, 0)
		}
	}
	clone := fs.Clone()
	fs.Walk(func(p string, n *Inode) {
		r, err := clone.Resolve("/", p, false)
		if err != nil || r.Node == nil {
			t.Errorf("clone missing %s: %v", p, err)
			return
		}
		c := r.Node
		if c.Type != n.Type || c.Mode != n.Mode || c.UID != n.UID || c.GID != n.GID ||
			c.Target != n.Target || string(c.Data) != string(n.Data) {
			t.Errorf("clone differs at %s", p)
		}
	})
}

// sanitize maps an arbitrary string to a path-component-safe string.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '/' || r == 0 || r == '.' {
			continue
		}
		if r < 0x20 || r > 0x7e {
			b.WriteByte('x')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}
