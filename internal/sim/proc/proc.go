// Package proc models process identity for the simulated kernel: user
// accounts, real/effective credentials (the substrate for set-UID
// semantics), and the process environment table.
//
// The paper's case studies all hinge on privilege separation: lpr and
// turnin run set-UID root on behalf of an unprivileged invoker, and the
// security oracle judges every environment access against the *invoker's*
// real credentials. This package supplies those identities.
package proc

import (
	"fmt"
	"sort"
)

// Cred is a POSIX-style credential set. The real ids identify the invoking
// user; the effective ids govern access checks and change on set-UID exec;
// the saved uid (SUID) lets a set-UID program drop privilege temporarily
// and regain it, as seteuid(2) permits.
type Cred struct {
	UID, GID   int
	EUID, EGID int
	SUID       int
}

// NewCred returns credentials with effective and saved ids equal to real
// ids.
func NewCred(uid, gid int) Cred {
	return Cred{UID: uid, GID: gid, EUID: uid, EGID: gid, SUID: uid}
}

// Privileged reports whether the effective uid is root.
func (c Cred) Privileged() bool { return c.EUID == 0 }

// Elevated reports whether the process runs with an effective uid different
// from its real uid — the set-UID condition under which environment faults
// become security-relevant.
func (c Cred) Elevated() bool { return c.EUID != c.UID }

// String renders credentials as "uid=100 euid=0 gid=100 egid=0".
func (c Cred) String() string {
	return fmt.Sprintf("uid=%d euid=%d gid=%d egid=%d", c.UID, c.EUID, c.GID, c.EGID)
}

// User is an entry in the simulated account database.
type User struct {
	Name string
	UID  int
	GID  int
}

// Users is the account database for a simulated world.
type Users struct {
	byName map[string]User
	byUID  map[int]User
}

// NewUsers returns a database pre-populated with root (uid 0).
func NewUsers() *Users {
	u := &Users{byName: make(map[string]User), byUID: make(map[int]User)}
	u.Add(User{Name: "root", UID: 0, GID: 0})
	return u
}

// Add inserts or replaces an account.
func (u *Users) Add(user User) {
	u.byName[user.Name] = user
	u.byUID[user.UID] = user
}

// ByName looks up an account by name.
func (u *Users) ByName(name string) (User, bool) {
	user, ok := u.byName[name]
	return user, ok
}

// ByUID looks up an account by uid.
func (u *Users) ByUID(uid int) (User, bool) {
	user, ok := u.byUID[uid]
	return user, ok
}

// NameOf returns the account name for uid, or "uid:<n>" when unknown.
func (u *Users) NameOf(uid int) string {
	if user, ok := u.byUID[uid]; ok {
		return user.Name
	}
	return fmt.Sprintf("uid:%d", uid)
}

// All returns every account sorted by uid.
func (u *Users) All() []User {
	out := make([]User, 0, len(u.byUID))
	for _, user := range u.byUID {
		out = append(out, user)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	return out
}

// Clone returns an independent copy of the account database. World
// snapshot forks use it so a fork's account edits never leak into the
// frozen base image.
func (u *Users) Clone() *Users {
	c := &Users{
		byName: make(map[string]User, len(u.byName)),
		byUID:  make(map[int]User, len(u.byUID)),
	}
	for k, v := range u.byName {
		c.byName[k] = v
	}
	for k, v := range u.byUID {
		c.byUID[k] = v
	}
	return c
}

// Env is a process environment table. Unlike a plain map it preserves no
// order guarantee but supports cloning, which exec and fault snapshots
// need.
type Env map[string]string

// NewEnv returns an environment populated from pairs of key, value strings.
// It panics when given an odd number of arguments, as that is a programming
// error at world-construction time.
func NewEnv(pairs ...string) Env {
	if len(pairs)%2 != 0 {
		panic("proc.NewEnv: odd number of arguments")
	}
	e := make(Env, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		e[pairs[i]] = pairs[i+1]
	}
	return e
}

// Clone returns an independent copy of the environment.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Keys returns the variable names in sorted order.
func (e Env) Keys() []string {
	keys := make([]string, 0, len(e))
	for k := range e {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
