package proc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewCred(t *testing.T) {
	t.Parallel()
	c := NewCred(100, 50)
	if c.UID != 100 || c.EUID != 100 || c.GID != 50 || c.EGID != 50 {
		t.Errorf("NewCred = %+v", c)
	}
	if c.Privileged() {
		t.Error("uid 100 reported privileged")
	}
	if c.Elevated() {
		t.Error("fresh cred reported elevated")
	}
}

func TestSetUIDSemantics(t *testing.T) {
	t.Parallel()
	c := NewCred(100, 100)
	c.EUID = 0 // as after exec of a root-owned set-UID binary
	if !c.Privileged() {
		t.Error("euid 0 not privileged")
	}
	if !c.Elevated() {
		t.Error("euid != uid not elevated")
	}
	if got := c.String(); !strings.Contains(got, "uid=100") || !strings.Contains(got, "euid=0") {
		t.Errorf("String() = %q", got)
	}
}

func TestUsers(t *testing.T) {
	t.Parallel()
	u := NewUsers()
	if _, ok := u.ByName("root"); !ok {
		t.Fatal("root missing from fresh database")
	}
	u.Add(User{Name: "alice", UID: 100, GID: 100})
	u.Add(User{Name: "ta", UID: 200, GID: 200})
	if got, _ := u.ByUID(100); got.Name != "alice" {
		t.Errorf("ByUID(100) = %+v", got)
	}
	if got := u.NameOf(200); got != "ta" {
		t.Errorf("NameOf(200) = %q", got)
	}
	if got := u.NameOf(999); got != "uid:999" {
		t.Errorf("NameOf(999) = %q", got)
	}
	all := u.All()
	if len(all) != 3 || all[0].UID != 0 || all[2].UID != 200 {
		t.Errorf("All() = %+v", all)
	}
	// Replacement.
	u.Add(User{Name: "alice", UID: 100, GID: 999})
	if got, _ := u.ByName("alice"); got.GID != 999 {
		t.Errorf("replaced alice = %+v", got)
	}
}

func TestEnv(t *testing.T) {
	t.Parallel()
	e := NewEnv("PATH", "/usr/bin:/bin", "HOME", "/home/alice")
	if e["PATH"] != "/usr/bin:/bin" {
		t.Errorf("PATH = %q", e["PATH"])
	}
	keys := e.Keys()
	if len(keys) != 2 || keys[0] != "HOME" || keys[1] != "PATH" {
		t.Errorf("Keys = %v", keys)
	}
	c := e.Clone()
	c["PATH"] = "/tmp"
	if e["PATH"] == "/tmp" {
		t.Error("Clone shares storage")
	}
}

func TestNewEnvOddArgsPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("NewEnv with odd args did not panic")
		}
	}()
	NewEnv("KEY")
}

// Property: Elevated is exactly EUID != UID.
func TestElevatedProperty(t *testing.T) {
	t.Parallel()
	f := func(uid, euid uint8) bool {
		c := Cred{UID: int(uid), EUID: int(euid)}
		return c.Elevated() == (uid != euid)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clone round-trips every key.
func TestEnvCloneProperty(t *testing.T) {
	t.Parallel()
	f := func(m map[string]string) bool {
		e := Env(m).Clone()
		if len(e) != len(m) {
			return false
		}
		for k, v := range m {
			if e[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
