package registry

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestReg(t *testing.T) *Registry {
	t.Helper()
	r := New()
	if _, err := r.CreateKey(`HKLM\Software\Fonts\Cleanup`, UnprotectedACL()); err != nil {
		t.Fatal(err)
	}
	if err := r.SetString(`HKLM\Software\Fonts\Cleanup`, "FontFile", `C:\Fonts\old.fon`, System); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateKey(`HKLM\Software\Logon`, DefaultACL()); err != nil {
		t.Fatal(err)
	}
	if err := r.SetString(`HKLM\Software\Logon`, "ProfileDir", `C:\Profiles`, System); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCreateAndGet(t *testing.T) {
	t.Parallel()
	r := newTestReg(t)
	s, err := r.GetString(`HKLM\Software\Fonts\Cleanup`, "FontFile", Everyone)
	if err != nil || s != `C:\Fonts\old.fon` {
		t.Fatalf("GetString = %q, %v", s, err)
	}
	if _, err := r.GetString(`HKLM\Software\Fonts\Cleanup`, "Missing", Everyone); !errors.Is(err, ErrNoValue) {
		t.Errorf("missing value err = %v", err)
	}
	if _, err := r.GetString(`HKLM\No\Such\Key`, "x", Everyone); !errors.Is(err, ErrNoKey) {
		t.Errorf("missing key err = %v", err)
	}
	if _, err := r.GetString(`NOHIVE\x`, "x", Everyone); !errors.Is(err, ErrNoKey) {
		t.Errorf("missing hive err = %v", err)
	}
}

func TestACLEnforcement(t *testing.T) {
	t.Parallel()
	r := newTestReg(t)
	// Everyone can write the unprotected key.
	if err := r.SetString(`HKLM\Software\Fonts\Cleanup`, "FontFile", `C:\boot.ini`, Everyone); err != nil {
		t.Errorf("unprotected write: %v", err)
	}
	// Everyone cannot write the protected key.
	if err := r.SetString(`HKLM\Software\Logon`, "ProfileDir", `\\evil\share`, Everyone); !errors.Is(err, ErrAccess) {
		t.Errorf("protected write err = %v", err)
	}
	// Administrator can.
	if err := r.SetString(`HKLM\Software\Logon`, "ProfileDir", `C:\P2`, Administrator); err != nil {
		t.Errorf("admin write: %v", err)
	}
	// SYSTEM holds a superset of Administrator.
	if err := r.SetString(`HKLM\Software\Logon`, "ProfileDir", `C:\P3`, System); err != nil {
		t.Errorf("system write: %v", err)
	}
}

func TestPrincipalHierarchy(t *testing.T) {
	t.Parallel()
	acl := ACL{AuthenticatedUser: RightWrite}
	if !acl.Grants(System, RightWrite) {
		t.Error("SYSTEM must inherit AuthenticatedUser grants")
	}
	if !acl.Grants(Administrator, RightWrite) {
		t.Error("Administrator must inherit AuthenticatedUser grants")
	}
	if acl.Grants(Everyone, RightWrite) {
		t.Error("Everyone must not inherit AuthenticatedUser grants")
	}
}

func TestDWord(t *testing.T) {
	t.Parallel()
	r := newTestReg(t)
	if err := r.SetDWord(`HKLM\Software\Logon`, "Timeout", 30, System); err != nil {
		t.Fatal(err)
	}
	d, err := r.GetDWord(`HKLM\Software\Logon`, "Timeout", Everyone)
	if err != nil || d != 30 {
		t.Fatalf("GetDWord = %d, %v", d, err)
	}
	// Type confusion rejected.
	if _, err := r.GetString(`HKLM\Software\Logon`, "Timeout", Everyone); !errors.Is(err, ErrNoValue) {
		t.Errorf("string read of dword err = %v", err)
	}
	if _, err := r.GetDWord(`HKLM\Software\Logon`, "ProfileDir", Everyone); !errors.Is(err, ErrNoValue) {
		t.Errorf("dword read of string err = %v", err)
	}
}

func TestDeleteValue(t *testing.T) {
	t.Parallel()
	r := newTestReg(t)
	if err := r.DeleteValue(`HKLM\Software\Fonts\Cleanup`, "FontFile", Everyone); !errors.Is(err, ErrAccess) {
		t.Errorf("everyone delete on unprotected (write-only) key err = %v", err)
	}
	if err := r.DeleteValue(`HKLM\Software\Fonts\Cleanup`, "FontFile", Administrator); err != nil {
		t.Errorf("admin delete: %v", err)
	}
	if err := r.DeleteValue(`HKLM\Software\Fonts\Cleanup`, "FontFile", Administrator); !errors.Is(err, ErrNoValue) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestUnprotectedKeys(t *testing.T) {
	t.Parallel()
	r := newTestReg(t)
	keys := r.UnprotectedKeys()
	if len(keys) != 1 || keys[0] != `HKLM\Software\Fonts\Cleanup` {
		t.Errorf("UnprotectedKeys = %v", keys)
	}
	// Protect it and the inventory empties.
	if err := r.SetACL(`HKLM\Software\Fonts\Cleanup`, DefaultACL()); err != nil {
		t.Fatal(err)
	}
	if got := r.UnprotectedKeys(); len(got) != 0 {
		t.Errorf("after SetACL: %v", got)
	}
}

func TestIntermediateKeysProtected(t *testing.T) {
	t.Parallel()
	r := New()
	if _, err := r.CreateKey(`HKLM\A\B\C`, UnprotectedACL()); err != nil {
		t.Fatal(err)
	}
	keys := r.UnprotectedKeys()
	if len(keys) != 1 || keys[0] != `HKLM\A\B\C` {
		t.Errorf("only the leaf should be unprotected: %v", keys)
	}
}

func TestBadPaths(t *testing.T) {
	t.Parallel()
	r := New()
	for _, p := range []string{"", `HKLM\\x`, `\leading`} {
		if _, err := r.CreateKey(p, DefaultACL()); !errors.Is(err, ErrBadPath) {
			t.Errorf("CreateKey(%q) err = %v, want ErrBadPath", p, err)
		}
	}
}

func TestOpenReadDenied(t *testing.T) {
	t.Parallel()
	r := New()
	secret := ACL{System: RightRead | RightWrite}
	if _, err := r.CreateKey(`HKLM\SAM\Secrets`, secret); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open(`HKLM\SAM\Secrets`, Everyone); !errors.Is(err, ErrAccess) {
		t.Errorf("read of SYSTEM-only key err = %v", err)
	}
	if _, err := r.Open(`HKLM\SAM\Secrets`, System); err != nil {
		t.Errorf("SYSTEM read: %v", err)
	}
}

func TestWalkDeterministic(t *testing.T) {
	t.Parallel()
	r := newTestReg(t)
	var a, b []string
	r.Walk(func(p string, k *Key) { a = append(a, p) })
	r.Walk(func(p string, k *Key) { b = append(b, p) })
	if len(a) != len(b) {
		t.Fatal("walk lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk order differs at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestClone(t *testing.T) {
	t.Parallel()
	r := newTestReg(t)
	c := r.Clone()
	if err := c.SetString(`HKLM\Software\Fonts\Cleanup`, "FontFile", `C:\evil`, Everyone); err != nil {
		t.Fatal(err)
	}
	if err := c.SetACL(`HKLM\Software\Logon`, UnprotectedACL()); err != nil {
		t.Fatal(err)
	}
	orig, err := r.GetString(`HKLM\Software\Fonts\Cleanup`, "FontFile", Everyone)
	if err != nil || orig != `C:\Fonts\old.fon` {
		t.Errorf("original value changed: %q, %v", orig, err)
	}
	if len(r.UnprotectedKeys()) != 1 {
		t.Error("original ACLs changed by clone mutation")
	}
}

func TestValueAndSubkeyNames(t *testing.T) {
	t.Parallel()
	r := newTestReg(t)
	k, err := r.Open(`HKLM\Software`, Everyone)
	if err != nil {
		t.Fatal(err)
	}
	subs := k.SubkeyNames()
	if len(subs) != 2 || subs[0] != "Fonts" || subs[1] != "Logon" {
		t.Errorf("SubkeyNames = %v", subs)
	}
	fc, err := r.Open(`HKLM\Software\Fonts\Cleanup`, Everyone)
	if err != nil {
		t.Fatal(err)
	}
	if names := fc.ValueNames(); len(names) != 1 || names[0] != "FontFile" {
		t.Errorf("ValueNames = %v", names)
	}
}

func TestPrincipalString(t *testing.T) {
	t.Parallel()
	if System.String() != "SYSTEM" || Everyone.String() != "Everyone" {
		t.Error("Principal.String mismatch")
	}
}

// Property: a right granted to Everyone is granted to every principal.
func TestEveryoneGrantUniversal(t *testing.T) {
	t.Parallel()
	f := func(rights uint8) bool {
		r := Rights(rights) & (RightRead | RightWrite | RightDelete)
		acl := ACL{Everyone: r}
		for _, p := range []Principal{System, Administrator, AuthenticatedUser, Everyone} {
			if r != 0 && !acl.Grants(p, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
