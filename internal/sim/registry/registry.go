// Package registry models a Windows-NT-style configuration registry:
// hierarchical keys with typed values and per-key access-control lists.
//
// Section 4.2 of the paper tests Windows NT 4.0 (SP3) modules that consume
// *unprotected* registry keys — keys every user may write — and shows that
// privileged consumers trusting those keys can be driven to delete
// arbitrary files or load profiles from attacker directories. This package
// reproduces the substrate: keys, ACLs, and the notion of an unprotected
// key, so the same perturbations can be applied.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Static errors.
var (
	ErrNoKey   = errors.New("registry: key not found")
	ErrNoValue = errors.New("registry: value not found")
	ErrAccess  = errors.New("registry: access denied")
	ErrBadPath = errors.New("registry: malformed key path")
	ErrExists  = errors.New("registry: key exists")
)

// Principal classifies the subject performing a registry operation.
type Principal int

// Principals, most privileged first.
const (
	System Principal = iota + 1
	Administrator
	AuthenticatedUser
	Everyone
)

// String returns the principal name.
func (p Principal) String() string {
	switch p {
	case System:
		return "SYSTEM"
	case Administrator:
		return "Administrator"
	case AuthenticatedUser:
		return "AuthenticatedUser"
	case Everyone:
		return "Everyone"
	default:
		return fmt.Sprintf("Principal(%d)", int(p))
	}
}

// Rights is a bitmask of registry permissions.
type Rights int

// Permission bits.
const (
	RightRead Rights = 1 << iota
	RightWrite
	RightDelete
)

// ACL maps principals to rights. A subject holds the union of the rights
// granted to every principal class it belongs to (SYSTEM ⊇ Administrator ⊇
// AuthenticatedUser ⊇ Everyone).
type ACL map[Principal]Rights

// Clone returns an independent copy.
func (a ACL) Clone() ACL {
	c := make(ACL, len(a))
	for p, r := range a {
		c[p] = r
	}
	return c
}

// Grants reports whether the subject principal holds all wanted rights,
// accumulating rights across the classes the subject belongs to.
func (a ACL) Grants(subject Principal, want Rights) bool {
	var held Rights
	for p, r := range a {
		if subject <= p { // numerically smaller principals are supersets
			held |= r
		}
	}
	return held&want == want
}

// DefaultACL is the protected-key default: SYSTEM and Administrator full
// control, everyone else read-only.
func DefaultACL() ACL {
	return ACL{
		System:        RightRead | RightWrite | RightDelete,
		Administrator: RightRead | RightWrite | RightDelete,
		Everyone:      RightRead,
	}
}

// UnprotectedACL is the misconfiguration Section 4.2 studies: Everyone may
// write.
func UnprotectedACL() ACL {
	return ACL{
		System:        RightRead | RightWrite | RightDelete,
		Administrator: RightRead | RightWrite | RightDelete,
		Everyone:      RightRead | RightWrite,
	}
}

// ValueType discriminates registry value payloads.
type ValueType int

// Value types.
const (
	TypeString ValueType = iota + 1
	TypeDWord
	TypeExpandString
)

// Value is one named datum under a key.
type Value struct {
	Type ValueType
	S    string
	D    uint32
}

// Key is a registry key: values plus subkeys plus an ACL.
type Key struct {
	Name    string
	ACL     ACL
	values  map[string]Value
	subkeys map[string]*Key
}

func newKey(name string, acl ACL) *Key {
	return &Key{
		Name:    name,
		ACL:     acl,
		values:  make(map[string]Value),
		subkeys: make(map[string]*Key),
	}
}

// Unprotected reports whether Everyone can write this key — the paper's
// criterion for a key worth perturbing.
func (k *Key) Unprotected() bool { return k.ACL.Grants(Everyone, RightWrite) }

// ValueNames returns the sorted value names.
func (k *Key) ValueNames() []string {
	names := make([]string, 0, len(k.values))
	for n := range k.values {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SubkeyNames returns the sorted subkey names.
func (k *Key) SubkeyNames() []string {
	names := make([]string, 0, len(k.subkeys))
	for n := range k.subkeys {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registry is the whole hive forest. Paths use backslash separators and a
// hive root such as `HKLM\Software\Fonts\Cleanup`.
type Registry struct {
	hives map[string]*Key
	// frozen marks the hive forest immutable so it can back Fork views;
	// any mutation attempt panics (the same tripwire discipline as
	// vfs.Freeze).
	frozen bool
	// base, when non-nil, is the frozen registry this view was forked
	// from: hives aliases base.hives until the first mutation deep-copies
	// the forest. Most injection runs never write the registry, so most
	// forks never pay for a copy.
	base *Registry
}

// New returns a registry with the standard hives.
func New() *Registry {
	r := &Registry{hives: make(map[string]*Key)}
	for _, h := range []string{"HKLM", "HKCU", "HKU", "HKCR"} {
		r.hives[h] = newKey(h, DefaultACL())
	}
	return r
}

func splitPath(path string) ([]string, error) {
	parts := strings.Split(path, `\`)
	if len(parts) == 0 || parts[0] == "" {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	return parts, nil
}

// find walks to the key at path without permission checks.
func (r *Registry) find(path string) (*Key, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur, ok := r.hives[parts[0]]
	if !ok {
		return nil, fmt.Errorf("%w: hive %q", ErrNoKey, parts[0])
	}
	for _, p := range parts[1:] {
		next, ok := cur.subkeys[p]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoKey, path)
		}
		cur = next
	}
	return cur, nil
}

// CreateKey creates the key at path (and any missing intermediate keys)
// with the given ACL. Existing keys are returned unchanged. This is a
// world-construction helper and performs no permission checks.
func (r *Registry) CreateKey(path string, acl ACL) (*Key, error) {
	r.own()
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur, ok := r.hives[parts[0]]
	if !ok {
		return nil, fmt.Errorf("%w: hive %q", ErrNoKey, parts[0])
	}
	for i, p := range parts[1:] {
		next, ok := cur.subkeys[p]
		if !ok {
			next = newKey(p, acl.Clone())
			if i < len(parts)-2 {
				// Intermediate keys default protected.
				next.ACL = DefaultACL()
			}
			cur.subkeys[p] = next
		}
		cur = next
	}
	return cur, nil
}

// Open returns the key at path if the subject has read access.
func (r *Registry) Open(path string, subject Principal) (*Key, error) {
	k, err := r.find(path)
	if err != nil {
		return nil, err
	}
	if !k.ACL.Grants(subject, RightRead) {
		return nil, fmt.Errorf("%w: %s for %s", ErrAccess, path, subject)
	}
	return k, nil
}

// GetString reads a string value.
func (r *Registry) GetString(path, name string, subject Principal) (string, error) {
	k, err := r.Open(path, subject)
	if err != nil {
		return "", err
	}
	v, ok := k.values[name]
	if !ok {
		return "", fmt.Errorf("%w: %s\\%s", ErrNoValue, path, name)
	}
	if v.Type != TypeString && v.Type != TypeExpandString {
		return "", fmt.Errorf("%w: %s\\%s is not a string", ErrNoValue, path, name)
	}
	return v.S, nil
}

// GetDWord reads a numeric value.
func (r *Registry) GetDWord(path, name string, subject Principal) (uint32, error) {
	k, err := r.Open(path, subject)
	if err != nil {
		return 0, err
	}
	v, ok := k.values[name]
	if !ok || v.Type != TypeDWord {
		return 0, fmt.Errorf("%w: %s\\%s", ErrNoValue, path, name)
	}
	return v.D, nil
}

// SetString writes a string value, subject to the key ACL.
func (r *Registry) SetString(path, name, s string, subject Principal) error {
	r.own()
	k, err := r.find(path)
	if err != nil {
		return err
	}
	if !k.ACL.Grants(subject, RightWrite) {
		return fmt.Errorf("%w: write %s for %s", ErrAccess, path, subject)
	}
	k.values[name] = Value{Type: TypeString, S: s}
	return nil
}

// SetDWord writes a numeric value, subject to the key ACL.
func (r *Registry) SetDWord(path, name string, d uint32, subject Principal) error {
	r.own()
	k, err := r.find(path)
	if err != nil {
		return err
	}
	if !k.ACL.Grants(subject, RightWrite) {
		return fmt.Errorf("%w: write %s for %s", ErrAccess, path, subject)
	}
	k.values[name] = Value{Type: TypeDWord, D: d}
	return nil
}

// DeleteValue removes a value, subject to the key ACL.
func (r *Registry) DeleteValue(path, name string, subject Principal) error {
	r.own()
	k, err := r.find(path)
	if err != nil {
		return err
	}
	if !k.ACL.Grants(subject, RightDelete) {
		return fmt.Errorf("%w: delete %s for %s", ErrAccess, path, subject)
	}
	if _, ok := k.values[name]; !ok {
		return fmt.Errorf("%w: %s\\%s", ErrNoValue, path, name)
	}
	delete(k.values, name)
	return nil
}

// SetACL replaces the ACL on the key at path. World-construction and
// perturbation helper; no permission check.
func (r *Registry) SetACL(path string, acl ACL) error {
	r.own()
	k, err := r.find(path)
	if err != nil {
		return err
	}
	k.ACL = acl.Clone()
	return nil
}

// Walk visits every key depth-first, in sorted order, calling fn with the
// full backslash path.
func (r *Registry) Walk(fn func(path string, k *Key)) {
	hives := make([]string, 0, len(r.hives))
	for h := range r.hives {
		hives = append(hives, h)
	}
	sort.Strings(hives)
	var rec func(path string, k *Key)
	rec = func(path string, k *Key) {
		fn(path, k)
		for _, name := range k.SubkeyNames() {
			rec(path+`\`+name, k.subkeys[name])
		}
	}
	for _, h := range hives {
		rec(h, r.hives[h])
	}
}

// UnprotectedKeys returns the paths of every key writable by Everyone —
// the key inventory Section 4.2's static-analysis step produces.
func (r *Registry) UnprotectedKeys() []string {
	var out []string
	r.Walk(func(path string, k *Key) {
		if k.Unprotected() {
			out = append(out, path)
		}
	})
	return out
}

// Clone deep-copies the registry for campaign world resets.
func (r *Registry) Clone() *Registry {
	return &Registry{hives: cloneHives(r.hives)}
}

func cloneHives(hives map[string]*Key) map[string]*Key {
	c := make(map[string]*Key, len(hives))
	var rec func(k *Key) *Key
	rec = func(k *Key) *Key {
		nk := newKey(k.Name, k.ACL.Clone())
		for n, v := range k.values {
			nk.values[n] = v
		}
		for n, sk := range k.subkeys {
			nk.subkeys[n] = rec(sk)
		}
		return nk
	}
	for h, k := range hives {
		c[h] = rec(k)
	}
	return c
}

// Freeze marks the registry immutable so it can serve as the base image
// for Fork views. Any subsequent mutation attempt panics.
func (r *Registry) Freeze() { r.frozen = true }

// Frozen reports whether Freeze has been called.
func (r *Registry) Frozen() bool { return r.frozen }

// Fork returns a mutable registry view sharing the (frozen) receiver's
// hive forest. Construction is O(1); the first mutation through the view
// deep-copies the forest, so runs that never write the registry — the
// overwhelming majority — share the base for free.
func (r *Registry) Fork() *Registry {
	if !r.frozen {
		panic("registry: Fork of unfrozen registry")
	}
	return &Registry{hives: r.hives, base: r}
}

// own materialises a private hive forest ahead of a mutation. Every
// mutator calls it first.
func (r *Registry) own() {
	if r.frozen {
		panic("registry: mutation of frozen registry")
	}
	if r.base == nil {
		return
	}
	r.hives = cloneHives(r.base.hives)
	r.base = nil
}
