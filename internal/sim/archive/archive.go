// Package archive is a minimal tar-like container format. The paper's
// turnin attack rides on exactly this substrate: submissions travel as
// archives whose member names are attacker-chosen, and an extractor that
// trusts member names ("../.login", absolute paths) writes outside its
// extraction root. The format is deliberately simple — length-prefixed
// records — because the vulnerability is in the *semantics* of member
// names, not in the encoding.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sim/vfs"
)

// Static errors.
var (
	ErrTruncated = errors.New("archive: truncated input")
	ErrBadMagic  = errors.New("archive: bad magic")
	ErrTooLarge  = errors.New("archive: entry exceeds size limit")
)

// magic identifies the format ("EPAR" = environment-perturbation archive).
var magic = [4]byte{'E', 'P', 'A', 'R'}

// MaxEntrySize bounds a single member, mirroring the extraction quota real
// unpackers enforce.
const MaxEntrySize = 1 << 20

// Entry is one archive member.
type Entry struct {
	// Name is the member path, stored verbatim — the attack surface.
	Name string
	// Mode is the permission set to apply on extraction.
	Mode vfs.Mode
	// Data is the member content.
	Data []byte
}

// Pack serialises entries. Layout:
//
//	magic[4] count[4]
//	per entry: nameLen[4] name mode[2] dataLen[4] data
func Pack(entries []Entry) []byte {
	size := 8
	for _, e := range entries {
		size += 4 + len(e.Name) + 2 + 4 + len(e.Data)
	}
	out := make([]byte, 0, size)
	out = append(out, magic[:]...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.Name)))
		out = append(out, e.Name...)
		out = binary.BigEndian.AppendUint16(out, uint16(e.Mode))
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.Data)))
		out = append(out, e.Data...)
	}
	return out
}

// Unpack parses an archive. Entries are validated structurally (lengths,
// magic) but member names are returned verbatim: sanitising them is the
// extractor's job, and precisely the behaviour under test.
func Unpack(data []byte) ([]Entry, error) {
	if len(data) < 8 {
		return nil, ErrTruncated
	}
	if [4]byte(data[:4]) != magic {
		return nil, ErrBadMagic
	}
	count := binary.BigEndian.Uint32(data[4:8])
	pos := 8
	need := func(n int) error {
		if pos+n > len(data) {
			return fmt.Errorf("%w: need %d bytes at offset %d", ErrTruncated, n, pos)
		}
		return nil
	}
	entries := make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		if err := need(4); err != nil {
			return nil, err
		}
		nameLen := int(binary.BigEndian.Uint32(data[pos:]))
		pos += 4
		if nameLen > MaxEntrySize {
			return nil, fmt.Errorf("%w: name %d bytes", ErrTooLarge, nameLen)
		}
		if err := need(nameLen); err != nil {
			return nil, err
		}
		name := string(data[pos : pos+nameLen])
		pos += nameLen
		if err := need(2); err != nil {
			return nil, err
		}
		mode := vfs.Mode(binary.BigEndian.Uint16(data[pos:]))
		pos += 2
		if err := need(4); err != nil {
			return nil, err
		}
		dataLen := int(binary.BigEndian.Uint32(data[pos:]))
		pos += 4
		if dataLen > MaxEntrySize {
			return nil, fmt.Errorf("%w: data %d bytes", ErrTooLarge, dataLen)
		}
		if err := need(dataLen); err != nil {
			return nil, err
		}
		entries = append(entries, Entry{
			Name: name,
			Mode: mode & vfs.ModePermMask,
			Data: append([]byte(nil), data[pos:pos+dataLen]...),
		})
		pos += dataLen
	}
	return entries, nil
}
