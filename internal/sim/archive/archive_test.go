package archive

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim/vfs"
)

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	in := []Entry{
		{Name: "hw1.c", Mode: 0o644, Data: []byte("int main(void){return 0;}\n")},
		{Name: "notes/README", Mode: 0o600, Data: []byte("see hw1.c")},
		{Name: "empty", Mode: 0o444, Data: nil},
	}
	out, err := Unpack(Pack(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("entries = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name || out[i].Mode != in[i].Mode ||
			!bytes.Equal(out[i].Data, in[i].Data) {
			t.Errorf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestHostileNamesSurviveVerbatim(t *testing.T) {
	t.Parallel()
	// The format must NOT sanitise — the extractor owns that decision.
	hostile := []Entry{
		{Name: "../.login", Mode: 0o644, Data: []byte("evil")},
		{Name: "/etc/passwd", Mode: 0o644, Data: []byte("evil")},
		{Name: "a/../../b", Mode: 0o644, Data: []byte("evil")},
	}
	out, err := Unpack(Pack(hostile))
	if err != nil {
		t.Fatal(err)
	}
	for i := range hostile {
		if out[i].Name != hostile[i].Name {
			t.Errorf("name %q mangled to %q", hostile[i].Name, out[i].Name)
		}
	}
}

func TestUnpackErrors(t *testing.T) {
	t.Parallel()
	if _, err := Unpack(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil err = %v", err)
	}
	if _, err := Unpack([]byte("XXXX\x00\x00\x00\x00")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic err = %v", err)
	}
	// Truncated mid-entry.
	full := Pack([]Entry{{Name: "f", Mode: 0o644, Data: []byte("data")}})
	for cut := 9; cut < len(full); cut += 3 {
		if _, err := Unpack(full[:cut]); !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d err = %v", cut, err)
		}
	}
	// Oversized declared name.
	bad := append([]byte{}, full[:8]...)
	bad = append(bad, 0xff, 0xff, 0xff, 0xff)
	if _, err := Unpack(bad); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize err = %v", err)
	}
}

func TestModeMasked(t *testing.T) {
	t.Parallel()
	out, err := Unpack(Pack([]Entry{{Name: "f", Mode: vfs.Mode(0xffff), Data: nil}}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Mode&^vfs.ModePermMask != 0 {
		t.Errorf("mode = %o, non-permission bits survived", uint16(out[0].Mode))
	}
}

// Property: Pack/Unpack round-trips arbitrary entries.
func TestRoundTripProperty(t *testing.T) {
	t.Parallel()
	f := func(names []string, blobs [][]byte) bool {
		var in []Entry
		for i, n := range names {
			if len(n) > 1024 {
				n = n[:1024]
			}
			var data []byte
			if i < len(blobs) {
				data = blobs[i]
				if len(data) > 4096 {
					data = data[:4096]
				}
			}
			in = append(in, Entry{Name: n, Mode: vfs.Mode(i) & vfs.ModePermMask, Data: data})
		}
		out, err := Unpack(Pack(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i].Name != in[i].Name || !bytes.Equal(out[i].Data, in[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Unpack never panics on arbitrary bytes.
func TestUnpackTotal(t *testing.T) {
	t.Parallel()
	f := func(junk []byte) bool {
		_, _ = Unpack(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// And with a valid prefix grafted on.
	g := func(junk []byte) bool {
		data := append(Pack([]Entry{{Name: "x", Data: []byte("y")}}), junk...)
		_, _ = Unpack(data)
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
