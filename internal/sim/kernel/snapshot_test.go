package kernel

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sim/proc"
)

// snapWorld builds a small world with every substrate a snapshot must
// carry: users, files, symlinks, and a queued mailbox message.
func snapWorld(t *testing.T) *Kernel {
	t.Helper()
	k := New()
	k.Users.Add(proc.User{Name: "alice", UID: 100, GID: 100})
	k.Users.Add(proc.User{Name: "mallory", UID: 666, GID: 666})
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(k.FS.MkdirAll("/", "/etc", 0o755, 0, 0))
	must(k.FS.WriteFile("/etc/passwd", []byte("root:x:0:0\n"), 0o644, 0, 0))
	must(k.FS.WriteFile("/etc/shadow", []byte("root:$1$HASH$:1:\n"), 0o600, 0, 0))
	must(k.FS.MkdirAll("/", "/home/alice", 0o755, 100, 100))
	must(k.FS.WriteFile("/home/alice/notes", []byte("clean\n"), 0o644, 100, 100))
	if _, err := k.FS.Symlink("/", "/etc/passwd", "/home/alice/pw", 100, 100); err != nil {
		t.Fatal(err)
	}
	must(k.FS.MkdirAll("/", "/tmp", 0o777, 0, 0))
	k.PostMessage("inbox", []byte("hello"))
	return k
}

// TestSnapshotForkIsolation: mutations in one fork are invisible to the
// frozen base and to sibling forks, across files, mailboxes, and users.
func TestSnapshotForkIsolation(t *testing.T) {
	t.Parallel()
	snap := snapWorld(t).Snapshot()
	base := snap.FS().Digest()

	a, b := snap.Fork(), snap.Fork()
	if err := a.FS.WriteFile("/home/alice/notes", []byte("fork a\n"), 0o644, 100, 100); err != nil {
		t.Fatal(err)
	}
	if err := a.FS.Unlink("/", "/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	a.Users.Add(proc.User{Name: "eve", UID: 777, GID: 777})
	a.SetMailbox("inbox", nil)

	if got := snap.FS().Digest(); got != base {
		t.Fatalf("fork mutations reached the frozen base: %s != %s", got, base)
	}
	if n, err := b.FS.Lookup("/", "/home/alice/notes"); err != nil || string(n.Data) != "clean\n" {
		t.Fatalf("sibling fork sees a's write: %q, %v", n.Data, err)
	}
	if _, err := b.FS.Lookup("/", "/etc/passwd"); err != nil {
		t.Fatalf("sibling fork lost /etc/passwd: %v", err)
	}
	if _, ok := b.Users.ByName("eve"); ok {
		t.Fatal("sibling fork sees a's user table mutation")
	}
	if len(b.PeekMailbox("inbox")) != 1 {
		t.Fatal("sibling fork lost the queued mailbox message")
	}
}

// TestSnapshotFrozenBaseMutationPanics: the freeze is a tripwire, not a
// convention — writing through the snapshotted kernel must panic.
func TestSnapshotFrozenBaseMutationPanics(t *testing.T) {
	t.Parallel()
	k := snapWorld(t)
	k.Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("mutating the frozen base filesystem did not panic")
		}
	}()
	_ = k.FS.WriteFile("/tmp/x", []byte("y"), 0o644, 0, 0)
}

// TestSnapshotForkStress hammers one snapshot from many goroutines —
// the shape the suite dispatcher produces, where every worker forks the
// same frozen campaign image concurrently. Run under -race, it is the
// data-race proof for the snapshot seam; the digest check proves the
// base never moves no matter how the forks interleave.
func TestSnapshotForkStress(t *testing.T) {
	t.Parallel()
	snap := snapWorld(t).Snapshot()
	base := snap.FS().Digest()

	const workers = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := snap.Fork()
				mine := fmt.Sprintf("worker %d iter %d\n", w, i)
				if err := k.FS.WriteFile("/home/alice/notes", []byte(mine), 0o644, 100, 100); err != nil {
					errs <- err
					return
				}
				if err := k.FS.Rename("/", "/etc/shadow", "/tmp/shadow"); err != nil {
					errs <- err
					return
				}
				if err := k.FS.RemoveAll("/home/alice"); err != nil {
					errs <- err
					return
				}
				k.SetMailbox("inbox", [][]byte{[]byte(mine)})
				// Read back through a second fork taken mid-flight: it must
				// see only the clean image, never this worker's mutations.
				probe := snap.Fork()
				if n, err := probe.FS.Lookup("/", "/home/alice/notes"); err != nil || string(n.Data) != "clean\n" {
					errs <- fmt.Errorf("probe fork saw dirty state: %q, %v", n.Data, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := snap.FS().Digest(); got != base {
		t.Fatalf("stress mutated the frozen base: %s != %s", got, base)
	}
}
