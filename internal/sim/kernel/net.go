package kernel

import (
	"fmt"

	"repro/internal/interpose"
	"repro/internal/sim/netsim"
)

// Conn wraps a simulated network connection so every receive and send is
// an interaction point.
type Conn struct {
	c    *netsim.Conn
	Addr string
}

// DNSLookup resolves a hostname through the bus. The DNS reply is
// environment input (Table 5: "DNS reply"), so indirect faults can rewrite
// it.
func (p *Proc) DNSLookup(site, host string) (string, error) {
	if p.K.Net == nil {
		return "", ErrNoNet
	}
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpDNS, Kind: interpose.KindNetwork, Path: host,
	})
	addr, err := p.K.Net.Lookup(c.Path)
	r := &interpose.Result{Str: addr, Err: err}
	p.end(c, r, c.Path)
	return r.Str, r.Err
}

// Connect dials a service address ("host:port") through the bus. Service
// availability and trustability are direct-fault attributes perturbed
// before this point fires.
func (p *Proc) Connect(site, addr string) (*Conn, error) {
	if p.K.Net == nil {
		return nil, ErrNoNet
	}
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpConnect, Kind: interpose.KindNetwork, Path: addr,
	})
	nc, err := p.K.Net.Dial(c.Path)
	r := &interpose.Result{Err: err}
	p.end(c, r, c.Path)
	if r.Err != nil {
		return nil, r.Err
	}
	return &Conn{c: nc, Addr: c.Path}, nil
}

// Recv receives the next message. The payload, claimed sender, and
// authenticity all pass through the bus as environment input.
func (p *Proc) Recv(site string, conn *Conn) (netsim.Message, error) {
	if conn == nil {
		return netsim.Message{}, ErrBadFD
	}
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpRecv, Kind: interpose.KindNetwork, Path: conn.Addr,
	})
	m, err := conn.c.Recv()
	r := &interpose.Result{Data: m.Data, Str: m.From, Flag: m.Authentic, Err: err}
	p.end(c, r, conn.Addr)
	if r.Err != nil {
		return netsim.Message{}, r.Err
	}
	return netsim.Message{From: r.Str, Data: r.Data, Authentic: r.Flag}, nil
}

// Send transmits data on the connection.
func (p *Proc) Send(site string, conn *Conn, data []byte) error {
	if conn == nil {
		return ErrBadFD
	}
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpSend, Kind: interpose.KindNetwork,
		Path: conn.Addr, Data: data,
	})
	err := conn.c.Send(c.Data)
	r := &interpose.Result{N: len(c.Data), Err: err}
	p.end(c, r, conn.Addr)
	return r.Err
}

// Service returns the connected service for oracle inspection.
func (conn *Conn) Service() *netsim.Service {
	if conn == nil || conn.c == nil {
		return nil
	}
	return conn.c.Service()
}

// MsgRecv models receiving a message from another local process (the
// "process input" channel of Table 5). The message is supplied by the
// world as a queue per mailbox name.
func (p *Proc) MsgRecv(site, mailbox string) ([]byte, error) {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpMsgRecv, Kind: interpose.KindProcess, Path: mailbox,
	})
	var (
		data []byte
		err  error
	)
	if q := p.K.mailboxes[c.Path]; len(q) > 0 {
		data = q[0]
		p.K.mailboxes[c.Path] = q[1:]
	} else {
		err = fmt.Errorf("kernel: mailbox %q empty", c.Path)
	}
	r := &interpose.Result{Data: data, Err: err}
	p.end(c, r, c.Path)
	return r.Data, r.Err
}

// MsgSend posts a message to a mailbox.
func (p *Proc) MsgSend(site, mailbox string, data []byte) error {
	c := p.begin(&interpose.Call{
		Site: site, Op: interpose.OpMsgSend, Kind: interpose.KindProcess,
		Path: mailbox, Data: data,
	})
	p.K.PostMessage(c.Path, c.Data)
	p.end(c, &interpose.Result{N: len(c.Data)}, c.Path)
	return nil
}
