// Package kernel is the simulated operating-system layer: it joins the
// filesystem, network, and registry substrates with process credentials
// and exposes a UNIX-flavoured syscall API to simulated applications.
//
// Every syscall is routed through the interpose.Bus, making each one an
// environment-interaction point in the sense of Du & Mathur (DSN 2000,
// Section 3): pre-hooks perturb the environment before the kernel acts
// (direct faults), post-hooks perturb what the application receives
// (indirect faults), and the bus records the execution trace the
// methodology enumerates.
package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/interpose"
	"repro/internal/sim/netsim"
	"repro/internal/sim/proc"
	"repro/internal/sim/registry"
	"repro/internal/sim/vfs"
)

// Static errors in the errno style.
var (
	ErrPerm     = errors.New("kernel: permission denied")
	ErrBadFD    = errors.New("kernel: bad file descriptor")
	ErrNoExec   = errors.New("kernel: exec format error")
	ErrNotFound = errors.New("kernel: command not found")
	ErrNoNet    = errors.New("kernel: no network configured")
	ErrNoReg    = errors.New("kernel: no registry configured")
)

// Program is a simulated executable: application code written against the
// kernel syscall API. The return value is the process exit code.
type Program func(p *Proc) int

// Kernel is one simulated machine: substrates, account database, program
// images, and the interaction bus for the current run.
type Kernel struct {
	FS    *vfs.FS
	Net   *netsim.Net
	Reg   *registry.Registry
	Users *proc.Users
	Bus   *interpose.Bus

	programs  map[string]Program
	mailboxes map[string][][]byte
	nextPID   int
}

// PostMessage enqueues a process-input message for MsgRecv. World builders
// and the process-input fault appliers use it directly.
func (k *Kernel) PostMessage(mailbox string, data []byte) {
	if k.mailboxes == nil {
		k.mailboxes = make(map[string][][]byte)
	}
	k.mailboxes[mailbox] = append(k.mailboxes[mailbox], append([]byte(nil), data...))
}

// PeekMailbox returns the queued messages for a mailbox (for perturbation
// and tests).
func (k *Kernel) PeekMailbox(mailbox string) [][]byte { return k.mailboxes[mailbox] }

// MailboxNames returns every mailbox with queued messages, sorted. World
// composition uses it to carry one member world's process-input queues
// into a merged kernel.
func (k *Kernel) MailboxNames() []string {
	names := make([]string, 0, len(k.mailboxes))
	for name, msgs := range k.mailboxes {
		if len(msgs) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// SetMailbox replaces a mailbox queue.
func (k *Kernel) SetMailbox(mailbox string, msgs [][]byte) {
	if k.mailboxes == nil {
		k.mailboxes = make(map[string][][]byte)
	}
	k.mailboxes[mailbox] = msgs
}

// New returns a kernel with a fresh filesystem, account database, and
// interaction bus. Network and registry substrates are optional; attach
// them directly when a world needs them.
func New() *Kernel {
	return &Kernel{
		FS:        vfs.New(),
		Users:     proc.NewUsers(),
		Bus:       interpose.NewBus(),
		programs:  make(map[string]Program),
		mailboxes: make(map[string][][]byte),
	}
}

// RegisterProgram installs a program image at the given absolute path.
// Exec of that (resolved) path runs the program in a child process.
func (k *Kernel) RegisterProgram(path string, prog Program) {
	k.programs[path] = prog
}

// NewProc creates a process with the given credentials, environment, and
// working directory.
func (k *Kernel) NewProc(cred proc.Cred, env proc.Env, cwd string, args ...string) *Proc {
	k.nextPID++
	if env == nil {
		env = proc.Env{}
	}
	if cwd == "" {
		cwd = "/"
	}
	return &Proc{
		K:     k,
		PID:   k.nextPID,
		Cred:  cred,
		Umask: 0o022,
		Env:   env,
		Args:  args,
		Cwd:   cwd,
	}
}

// Crash is the uncontrolled-failure outcome of a simulated memory error
// (e.g. an unchecked buffer copy). The Fuzz comparison counts crashes; the
// EAI oracle treats them as failed toleration too.
type Crash struct {
	Msg string
}

// Error implements error.
func (c *Crash) Error() string { return "crash: " + c.Msg }

// Run executes prog in process p, converting a simulated memory error into
// a Crash result instead of unwinding the test harness. Exit code 139
// (SIGSEGV-style) is reported for crashes.
func (k *Kernel) Run(p *Proc, prog Program) (exit int, crash *Crash) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(*Crash)
			if !ok {
				panic(r)
			}
			exit, crash = 139, c
		}
	}()
	return prog(p), nil
}

// Proc is a simulated process. All syscalls are methods on Proc so every
// interaction carries the caller's credentials.
type Proc struct {
	K     *Kernel
	PID   int
	Cred  proc.Cred
	Umask vfs.Mode
	Env   proc.Env
	Args  []string
	Cwd   string

	Stdout bytes.Buffer
	Stderr bytes.Buffer
}

// Printf writes formatted output to the process's stdout, which the
// security oracle treats as invoker-visible.
func (p *Proc) Printf(format string, args ...any) {
	fmt.Fprintf(&p.Stdout, format, args...)
}

// Eprintf writes formatted output to stderr.
func (p *Proc) Eprintf(format string, args ...any) {
	fmt.Fprintf(&p.Stderr, format, args...)
}

// Crash aborts the process with a simulated memory error.
func (p *Proc) Crash(format string, args ...any) {
	panic(&Crash{Msg: fmt.Sprintf(format, args...)})
}

// CopyBounded models the classic unchecked strcpy into a fixed buffer: if
// src exceeds the buffer, the process crashes (simulating the memory
// corruption a real overflow causes). It returns the number of bytes
// copied.
func (p *Proc) CopyBounded(dst []byte, src []byte) int {
	if len(src) > len(dst) {
		p.Crash("buffer overflow: copying %d bytes into %d-byte buffer", len(src), len(dst))
	}
	return copy(dst, src)
}

// SetEUID changes the effective uid. Permitted when the process is
// privileged, or when switching among the real and saved uids (seteuid
// semantics — a set-UID program may drop privilege and regain it).
func (p *Proc) SetEUID(uid int) error {
	if p.Cred.EUID != 0 && uid != p.Cred.UID && uid != p.Cred.SUID {
		return fmt.Errorf("%w: seteuid(%d) from euid %d", ErrPerm, uid, p.Cred.EUID)
	}
	p.Cred.EUID = uid
	return nil
}

// begin stamps and dispatches a call through the bus.
func (p *Proc) begin(c *interpose.Call) *interpose.Call {
	c.UID = p.Cred.UID
	c.EUID = p.Cred.EUID
	c.GID = p.Cred.GID
	c.EGID = p.Cred.EGID
	c.Cwd = p.Cwd
	p.K.Bus.Begin(c)
	return c
}

// end completes the call on the bus.
func (p *Proc) end(c *interpose.Call, r *interpose.Result, resolved string) {
	p.K.Bus.End(c, r, resolved)
}
