package kernel

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim/proc"
	"repro/internal/sim/vfs"
)

// sanitizeName maps arbitrary bytes to a legal path component.
func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > 0x20 && r < 0x7f && r != '/' && r != '.' {
			b.WriteRune(r)
		}
	}
	out := b.String()
	if len(out) > vfs.MaxNameLen {
		out = out[:vfs.MaxNameLen]
	}
	return out
}

// Property: create-write-read round-trips arbitrary content.
func TestWriteReadRoundTrip(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	f := func(name string, content []byte) bool {
		n := sanitizeName(name)
		if n == "" {
			return true
		}
		path := "/tmp/" + n
		fh, err := p.Create("prop:create", path, 0o644)
		if err != nil {
			return false
		}
		if _, err := p.Write("prop:write", fh, content); err != nil {
			return false
		}
		if err := p.Close(fh); err != nil {
			return false
		}
		got, err := p.ReadFile("prop:read", path)
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the kernel's open-for-read decision agrees with vfs.Allows for
// arbitrary modes and subjects.
func TestOpenAgreesWithAllows(t *testing.T) {
	t.Parallel()
	f := func(mode uint16, uid, gid uint8) bool {
		k := newWorld(t)
		m := vfs.Mode(mode) & vfs.ModePermMask
		if err := k.FS.WriteFile("/tmp/probe", []byte("x"), m, 100, 100); err != nil {
			return false
		}
		subject := k.NewProc(proc.NewCred(int(uid), int(gid)), nil, "/")
		n, err := k.FS.Lookup("/", "/tmp/probe")
		if err != nil {
			return false
		}
		want := vfs.Allows(n, int(uid), int(gid), vfs.WantRead)
		_, err = subject.Open("prop:open", "/tmp/probe", ORead, 0)
		return (err == nil) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: a successful open pins the inode — renaming the path afterward
// never changes what the handle reads.
func TestHandlePinsInode(t *testing.T) {
	t.Parallel()
	f := func(content []byte) bool {
		k := newWorld(t)
		p := alice(k)
		if err := k.FS.WriteFile("/tmp/pinned", content, 0o644, 100, 100); err != nil {
			return false
		}
		fh, err := p.Open("prop:open", "/tmp/pinned", ORead, 0)
		if err != nil {
			return false
		}
		// Swap the path out from under the handle.
		if err := k.FS.Rename("/", "/tmp/pinned", "/tmp/elsewhere"); err != nil {
			return false
		}
		if err := k.FS.WriteFile("/tmp/pinned", []byte("imposter"), 0o644, 666, 666); err != nil {
			return false
		}
		got, err := p.ReadAll("prop:read", fh)
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every syscall leaves exactly one event on the trace, with
// monotonically increasing sequence numbers.
func TestTraceSequenceMonotone(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	p := alice(k)
	ops := []func(){
		func() { _, _ = p.Stat("m:a", "/etc/passwd") },
		func() { _ = p.Getenv("m:b", "PATH") },
		func() { _, _ = p.ReadDir("m:c", "/etc") },
		func() { _, _ = p.Create("m:d", "/tmp/x", 0o644) },
		func() { _ = p.Chdir("m:e", "/tmp") },
		func() { _ = p.Arg("m:f", 0) },
	}
	for _, op := range ops {
		op()
	}
	trace := k.Bus.Trace()
	if len(trace) != len(ops) {
		t.Fatalf("trace = %d events, want %d", len(trace), len(ops))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Call.Seq <= trace[i-1].Call.Seq {
			t.Errorf("sequence not monotone at %d", i)
		}
	}
}

// Property: umask only ever removes bits from the requested mode.
func TestUmaskOnlyRemovesBits(t *testing.T) {
	t.Parallel()
	f := func(reqMode, mask uint16) bool {
		k := newWorld(t)
		p := alice(k)
		p.SetUmask(vfs.Mode(mask))
		req := vfs.Mode(reqMode) & 0o777
		fh, err := p.Create("prop:create", "/tmp/masked", req)
		if err != nil {
			return false
		}
		_ = fh
		n, err := k.FS.Lookup("/", "/tmp/masked")
		if err != nil {
			return false
		}
		// Every granted bit was requested.
		return n.Mode&^req == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestReadDirPermission: listing requires read on the directory.
func TestReadDirPermission(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	if err := k.FS.MkdirAll("/", "/secret", 0o700, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := alice(k)
	if _, err := p.ReadDir("t:rd", "/secret"); !errors.Is(err, ErrPerm) {
		t.Errorf("readdir of 0700 root dir err = %v", err)
	}
}

// TestExecChildEnvIsolated: mutating the child's environment does not leak
// into the parent.
func TestExecChildEnvIsolated(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	if err := k.FS.WriteFile("/usr/bin/mutator", []byte("#!"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram("/usr/bin/mutator", func(p *Proc) int {
		p.Setenv("child:setenv", "PATH", "/poisoned")
		return 0
	})
	p := alice(k)
	if _, err := p.Exec("t:exec", "/usr/bin/mutator"); err != nil {
		t.Fatal(err)
	}
	if p.Env["PATH"] != "/usr/bin" {
		t.Errorf("parent PATH = %q after child mutation", p.Env["PATH"])
	}
}

// TestExecTrusted covers the atomic check-and-exec primitive.
func TestExecTrusted(t *testing.T) {
	t.Parallel()
	k := newWorld(t)
	if err := k.FS.WriteFile("/usr/bin/rootbin", []byte("#!"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.FS.WriteFile("/usr/bin/userbin", []byte("#!"), 0o755, 666, 666); err != nil {
		t.Fatal(err)
	}
	if err := k.FS.WriteFile("/usr/bin/groupwrit", []byte("#!"), 0o775, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := alice(k)
	if _, err := p.ExecTrusted("t:e1", "/usr/bin/rootbin", 0); err != nil {
		t.Errorf("trusted exec of root-owned 0755: %v", err)
	}
	if _, err := p.ExecTrusted("t:e2", "/usr/bin/userbin", 0); !errors.Is(err, ErrPerm) {
		t.Errorf("trusted exec of non-root binary err = %v", err)
	}
	if _, err := p.ExecTrusted("t:e3", "/usr/bin/groupwrit", 0); !errors.Is(err, ErrPerm) {
		t.Errorf("trusted exec of group-writable binary err = %v", err)
	}
	if _, err := p.ExecTrusted("t:e4", "/usr/bin/missing", 0); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("trusted exec of missing binary err = %v", err)
	}
}

// TestRunResetBetweenWorlds: two worlds from the same factory do not share
// filesystem state.
func TestWorldsIndependent(t *testing.T) {
	t.Parallel()
	k1 := newWorld(t)
	k2 := newWorld(t)
	if err := k1.FS.WriteFile("/tmp/only-in-1", []byte("x"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if k2.FS.Exists("/tmp/only-in-1") {
		t.Error("worlds share a filesystem")
	}
}
